/**
 * @file
 * Dense-vs-sparse kernel differential tests.
 *
 * The event-wheel kernel (sim/simulator.cc, runSparse) is required to
 * be *bit-identical* to the dense cycle-by-cycle reference kernel: the
 * wheel may only skip cycles in which no component would have changed
 * state, and span-weighted statistics accounting must reproduce the
 * per-cycle sums exactly. These tests run every figure workload under
 * both kernels through the real experiment harness and assert that
 * cycle counts, retired-op counts and every exported statistic agree
 * exactly — including under the loop-discipline audit and with the
 * fault injector perturbing the recovery paths.
 *
 * runOnce() is used deliberately instead of the campaign layer: the
 * result store memoizes by configuration fingerprint, which does not
 * (and must not — the kernels are equivalent) include the kernel
 * mode, so a cached result would short-circuit the comparison.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "sim/feedback_port.hh"
#include "sim/simulator.hh"
#include "workload/workload_set.hh"

namespace loopsim
{
namespace
{

/** RAII kernel-mode selector around a run. */
class ScopedKernelMode
{
  public:
    explicit ScopedKernelMode(KernelMode mode)
        : previous(defaultKernelMode())
    {
        setDefaultKernelMode(mode);
    }
    ~ScopedKernelMode() { setDefaultKernelMode(previous); }
    ScopedKernelMode(const ScopedKernelMode &) = delete;
    ScopedKernelMode &operator=(const ScopedKernelMode &) = delete;

  private:
    KernelMode previous;
};

RunResult
runWith(KernelMode mode, const RunSpec &spec)
{
    ScopedKernelMode scope(mode);
    return runOnce(spec);
}

/** Assert two runs of the same spec are bit-identical. */
void
expectIdentical(const RunResult &dense, const RunResult &sparse,
                const std::string &what)
{
    SCOPED_TRACE(what);
    ASSERT_FALSE(dense.failed);
    ASSERT_FALSE(sparse.failed);
    EXPECT_EQ(dense.cycles, sparse.cycles);
    EXPECT_EQ(dense.retired, sparse.retired);
    EXPECT_EQ(dense.ipc, sparse.ipc);

    ASSERT_EQ(dense.scalars.size(), sparse.scalars.size());
    for (const auto &[name, value] : dense.scalars) {
        auto it = sparse.scalars.find(name);
        ASSERT_NE(it, sparse.scalars.end()) << "missing scalar " << name;
        // Exact equality on purpose: the sparse kernel's span-weighted
        // accounting is only correct if it reproduces the dense sums
        // bit for bit, not merely approximately.
        EXPECT_EQ(value, it->second) << "scalar " << name;
    }

    EXPECT_EQ(dense.operandSourceCounts, sparse.operandSourceCounts);
    EXPECT_EQ(dense.operandSourceFractions,
              sparse.operandSourceFractions);
    EXPECT_EQ(dense.gapCdf, sparse.gapCdf);
}

RunSpec
specFor(const Workload &w)
{
    RunSpec spec;
    spec.workload = w;
    // Enough ops to exercise warmup reset, measurement spans and every
    // recovery loop, while keeping the 13-workload sweep test-sized.
    spec.totalOps = 60000;
    spec.warmupOps = 20000;
    return spec;
}

/** Every figure workload (10 single-thread + 3 SMT pairs), base
 *  machine. */
TEST(KernelDifferential, AllFigureWorkloadsBaseMachine)
{
    for (const Workload &w : figureWorkloads()) {
        RunSpec spec = specFor(w);
        RunResult dense = runWith(KernelMode::Dense, spec);
        RunResult sparse = runWith(KernelMode::Sparse, spec);
        expectIdentical(dense, sparse, figureLabel(w));
    }
}

/** DRA machine: the operand-resolution loop and its recovery paths. */
TEST(KernelDifferential, DraMachine)
{
    for (const char *name : {"swim", "gcc", "go-su2cor"}) {
        RunSpec spec = specFor(resolveWorkload(name));
        spec.overrides.setBool("dra.enable", true);
        RunResult dense = runWith(KernelMode::Dense, spec);
        RunResult sparse = runWith(KernelMode::Sparse, spec);
        expectIdentical(dense, sparse, std::string("dra:") + name);
    }
}

/** Long pipelines stretch the loops the wheel must sleep across. */
TEST(KernelDifferential, LongPipeline)
{
    RunSpec spec = specFor(resolveWorkload("m88ksim"));
    setPipeline(spec.overrides, 10, 8);
    RunResult dense = runWith(KernelMode::Dense, spec);
    RunResult sparse = runWith(KernelMode::Sparse, spec);
    expectIdentical(dense, sparse, "pipe 10_8");
}

/** The loop-discipline audit must stay clean under the wheel: a
 *  skipped cycle that a feedback signal needed would surface here as
 *  a DisciplineViolation (and as a result mismatch). */
TEST(KernelDifferential, AuditClean)
{
    audit::Scoped audit_on(true);
    for (const char *name : {"compress", "apsi-swim"}) {
        RunSpec spec = specFor(resolveWorkload(name));
        RunResult dense = runWith(KernelMode::Dense, spec);
        RunResult sparse = runWith(KernelMode::Sparse, spec);
        expectIdentical(dense, sparse, std::string("audit:") + name);
    }
}

/** Fault injection perturbs exactly the recovery paths whose wake
 *  cycles the sparse kernel must predict. All draws are per-site (not
 *  per-cycle), so the streams are kernel-independent by design. */
TEST(KernelDifferential, FaultInjection)
{
    RunSpec spec = specFor(resolveWorkload("go"));
    spec.overrides.setBool("integrity.fault.enable", true);
    spec.overrides.setUint("integrity.fault.seed", 7);
    spec.overrides.setDouble("integrity.fault.wakeup_delay", 0.01);
    spec.overrides.setDouble("integrity.fault.load_delay", 0.01);
    spec.overrides.setDouble("integrity.fault.branch_corrupt", 0.005);
    spec.overrides.setDouble("integrity.fault.port_stall", 0.01);
    RunResult dense = runWith(KernelMode::Dense, spec);
    RunResult sparse = runWith(KernelMode::Sparse, spec);
    expectIdentical(dense, sparse, "faulted go");
}

/** Stress the incremental ready tracking's hardest mutation paths:
 *  kill-all-in-shadow load recovery makes every miss a reissue storm
 *  (victims revert to InIq through the readyRecheck path), a tiny
 *  memDep clear interval flips store-wait bits back and forth under
 *  the wheel, and a small IQ keeps the confirm/free interleaving
 *  under constant occupancy pressure. Any timer armed a cycle late,
 *  or a recheck skipped after a kill, diverges here. */
TEST(KernelDifferential, ReadyTrackingStress)
{
    for (const char *recovery : {"reissue", "refetch"}) {
        RunSpec spec = specFor(resolveWorkload("swim"));
        spec.overrides.set("core.load_recovery", recovery);
        spec.overrides.setBool("core.kill_all_in_shadow", true);
        spec.overrides.setBool("core.memdep.enable", true);
        spec.overrides.setUint("core.memdep.clear", 512);
        spec.overrides.setUint("core.memdep.entries", 64);
        spec.overrides.setUint("core.iq.entries", 16);
        RunResult dense = runWith(KernelMode::Dense, spec);
        RunResult sparse = runWith(KernelMode::Sparse, spec);
        expectIdentical(dense, sparse,
                        std::string("stress:") + recovery);
    }

    // The same storm with recovery kills *and* fault-injected wakeup
    // and port perturbation on an SMT pair: two threads sharing the
    // IQ maximises cross-thread confirm/free interleavings.
    RunSpec spec = specFor(resolveWorkload("go-su2cor"));
    spec.overrides.setBool("core.kill_all_in_shadow", true);
    spec.overrides.setBool("core.memdep.enable", true);
    spec.overrides.setUint("core.memdep.clear", 1024);
    spec.overrides.setBool("integrity.fault.enable", true);
    spec.overrides.setUint("integrity.fault.seed", 11);
    spec.overrides.setDouble("integrity.fault.wakeup_delay", 0.02);
    spec.overrides.setDouble("integrity.fault.port_stall", 0.02);
    RunResult dense = runWith(KernelMode::Dense, spec);
    RunResult sparse = runWith(KernelMode::Sparse, spec);
    expectIdentical(dense, sparse, "stress:smt-faulted");
}

/** Per-Simulator override beats the process default. */
TEST(KernelDifferential, PerInstanceModeOverride)
{
    Simulator sim;
    EXPECT_EQ(sim.kernelMode(), defaultKernelMode());
    sim.setKernelMode(KernelMode::Dense);
    EXPECT_EQ(sim.kernelMode(), KernelMode::Dense);
    sim.setKernelMode(KernelMode::Sparse);
    EXPECT_EQ(sim.kernelMode(), KernelMode::Sparse);
}

} // anonymous namespace
} // namespace loopsim
