/**
 * @file
 * Parameterized calibration checks: for every SPEC95-like profile, the
 * generated stream's measurable rates must track the profile's
 * declared parameters. These are the contract between the profiles
 * (DESIGN.md §1) and the figures built on them.
 */

#include <gtest/gtest.h>

#include <map>

#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace loopsim;

namespace
{

class ProfileCalibration : public ::testing::TestWithParam<std::string>
{
  protected:
    static constexpr std::uint64_t numOps = 60000;

    void
    SetUp() override
    {
        prof = spec95Profile(GetParam());
        SyntheticTraceGenerator gen(prof, 0, numOps);
        MicroOp op;
        while (gen.next(op))
            ops.push_back(op);
    }

    BenchmarkProfile prof;
    std::vector<MicroOp> ops;
};

} // anonymous namespace

TEST_P(ProfileCalibration, InstructionMixTracksProfile)
{
    std::map<OpClass, double> counts;
    for (const auto &op : ops)
        counts[op.opClass] += 1.0;
    double n = static_cast<double>(ops.size());
    EXPECT_NEAR(counts[OpClass::Load] / n, prof.loadFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::Store] / n, prof.storeFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::BranchCond] / n, prof.condBranchFrac,
                0.02);
    double fp = (counts[OpClass::FpAdd] + counts[OpClass::FpMult] +
                 counts[OpClass::FpDiv]) /
                n;
    EXPECT_NEAR(fp, prof.fpAddFrac + prof.fpMultFrac + prof.fpDivFrac,
                0.03);
}

TEST_P(ProfileCalibration, MispredictRateTracksProfile)
{
    int branches = 0;
    int mispredicts = 0;
    for (const auto &op : ops) {
        if (!op.isCondBranch())
            continue;
        ++branches;
        mispredicts += op.forceMispredict ? 1 : 0;
    }
    ASSERT_GT(branches, 300);
    EXPECT_NEAR(double(mispredicts) / branches, prof.mispredictRate,
                std::max(0.015, prof.mispredictRate * 0.35));
}

TEST_P(ProfileCalibration, MemoryPatternTracksProfile)
{
    std::uint64_t mem = 0;
    std::uint64_t far = 0;
    std::uint64_t l2set = 0;
    for (const auto &op : ops) {
        if (!op.isLoad() && !op.isStore())
            continue;
        ++mem;
        Addr region = (op.effAddr >> 28) & 0xf;
        if (region == 0x4)
            ++far;
        else if (region == 0x3)
            ++l2set;
    }
    ASSERT_GT(mem, 5000u);
    EXPECT_NEAR(double(far) / mem, prof.farFrac, 0.01);
    EXPECT_NEAR(double(l2set) / mem, prof.l2ResidentFrac, 0.02);
}

TEST_P(ProfileCalibration, BranchTargetsStayInTheCodeLoop)
{
    for (const auto &op : ops) {
        if (!op.isBranch())
            continue;
        EXPECT_GE(op.target, 0x1010000000ULL);
        EXPECT_LT(op.target,
                  0x1010000000ULL + 4ULL * prof.codeLoopLength);
    }
}

TEST_P(ProfileCalibration, TakenRateIsPlausible)
{
    // The bimodal site-bias population should land the taken rate in a
    // wide band around the profile's bias parameter.
    int branches = 0;
    int taken = 0;
    for (const auto &op : ops) {
        if (!op.isCondBranch())
            continue;
        ++branches;
        taken += op.taken ? 1 : 0;
    }
    double rate = double(taken) / branches;
    EXPECT_GT(rate, 0.15);
    EXPECT_LT(rate, 0.95);
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ProfileCalibration,
                         ::testing::ValuesIn(spec95Names()),
                         [](const ::testing::TestParamInfo<std::string>
                                &pinfo) { return pinfo.param; });
