/**
 * @file
 * Tests for MachineConfig: parsing, validation, and the DRA pipeline
 * transformation of §6.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "core/machine_config.hh"
#include "sim/config.hh"

using namespace loopsim;

TEST(MachineConfig, DefaultsAreThePaperBaseMachine)
{
    Config cfg;
    MachineConfig m = MachineConfig::fromConfig(cfg);
    EXPECT_EQ(m.width, 8u);
    EXPECT_EQ(m.iqEntries, 128u);
    EXPECT_EQ(m.robEntries, 256u);
    EXPECT_EQ(m.numClusters, 8u);
    EXPECT_EQ(m.decIqLatency, 5u);
    EXPECT_EQ(m.iqExLatency, 5u);
    EXPECT_EQ(m.regfileLatency, 3u);
    EXPECT_EQ(m.fwdBufferDepth, 9u);
    EXPECT_EQ(m.loadFeedback, 3u);
    EXPECT_FALSE(m.dra);
    EXPECT_EQ(m.loadRecovery, LoadRecovery::Reissue);
    EXPECT_EQ(m.branchMode, BranchMode::Profile);
    EXPECT_EQ(m.pipeLabel(), "5_5");
}

TEST(MachineConfig, OverridesApply)
{
    Config cfg;
    cfg.setUint("core.width", 4);
    cfg.setUint("core.iq.entries", 64);
    cfg.setUint("core.clusters", 4);
    cfg.set("core.load_recovery", "stall");
    cfg.set("core.fetch_policy", "rr");
    cfg.setBool("core.kill_all_in_shadow", true);
    MachineConfig m = MachineConfig::fromConfig(cfg);
    EXPECT_EQ(m.width, 4u);
    EXPECT_EQ(m.iqEntries, 64u);
    EXPECT_EQ(m.loadRecovery, LoadRecovery::Stall);
    EXPECT_EQ(m.fetchPolicy, FetchPolicy::RoundRobin);
    EXPECT_TRUE(m.killAllInShadow);
}

TEST(MachineConfig, DraTransformationRf3)
{
    // §6: rf=3 -> base 5_5 becomes DRA 5_3.
    Config cfg;
    cfg.setBool("dra.enable", true);
    MachineConfig m = MachineConfig::fromConfig(cfg);
    EXPECT_TRUE(m.dra);
    EXPECT_EQ(m.decIqLatency, 5u);
    EXPECT_EQ(m.iqExLatency, 3u);
    EXPECT_EQ(m.pipeLabel(), "5_3");
}

TEST(MachineConfig, DraTransformationRf5AndRf7)
{
    // §6: rf=5 -> base 5_7 becomes DRA 7_3; rf=7 -> base 5_9 -> 9_3.
    Config cfg5;
    cfg5.setBool("dra.enable", true);
    cfg5.setUint("core.regfile_latency", 5);
    cfg5.setUint("core.iq_ex", 7);
    MachineConfig m5 = MachineConfig::fromConfig(cfg5);
    EXPECT_EQ(m5.pipeLabel(), "7_3");

    Config cfg7;
    cfg7.setBool("dra.enable", true);
    cfg7.setUint("core.regfile_latency", 7);
    cfg7.setUint("core.iq_ex", 9);
    MachineConfig m7 = MachineConfig::fromConfig(cfg7);
    EXPECT_EQ(m7.pipeLabel(), "9_3");
}

TEST(MachineConfig, ValidationRejectsNonsense)
{
    auto with = [](auto setup) {
        Config cfg;
        setup(cfg);
        return MachineConfig::fromConfig(cfg);
    };
    EXPECT_THROW(with([](Config &c) { c.setUint("core.width", 0); }),
                 FatalError);
    EXPECT_THROW(with([](Config &c) { c.setUint("core.iq.entries", 4); }),
                 FatalError);
    EXPECT_THROW(
        with([](Config &c) { c.setUint("core.rob.entries", 64); }),
        FatalError);
    EXPECT_THROW(with([](Config &c) { c.setUint("core.phys_regs", 100); }),
                 FatalError);
    // Base IQ-EX must cover the RF access.
    EXPECT_THROW(
        with([](Config &c) { c.setUint("core.regfile_latency", 4); }),
        FatalError);
    EXPECT_THROW(with([](Config &c) { c.set("core.load_recovery", "x"); }),
                 FatalError);
    EXPECT_THROW(with([](Config &c) { c.set("branch.mode", "psychic"); }),
                 FatalError);
    EXPECT_THROW(
        with([](Config &c) {
            c.setBool("dra.enable", true);
            c.setUint("dra.insertion_bits", 0);
        }),
        FatalError);
}

TEST(MachineConfig, PrintListsKeyParameters)
{
    Config cfg;
    cfg.setBool("dra.enable", true);
    MachineConfig m = MachineConfig::fromConfig(cfg);
    std::ostringstream os;
    m.print(os);
    std::string text = os.str();
    EXPECT_NE(text.find("iq entries"), std::string::npos);
    EXPECT_NE(text.find("dec-iq latency"), std::string::npos);
    EXPECT_NE(text.find("dra                   yes"), std::string::npos);
    EXPECT_NE(text.find("crc entries/cluster"), std::string::npos);
}
