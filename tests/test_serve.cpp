/**
 * @file
 * Tests for the campaign service (src/serve/): wire-protocol codecs
 * round-tripping bit-exactly, framing corruption reading as Corrupt
 * (never wrong bytes), an in-process CampaignServer answering plans
 * byte-identically to the local executor on cold and warm caches,
 * concurrent tenants deduplicating overlapping plans, worker crash
 * degradation, client disconnect/reconnect resume via the campaign
 * journal (across a server restart too), and drain semantics.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/supervisor.hh"
#include "serve/client.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"
#include "store/fingerprint.hh"
#include "store/journal.hh"
#include "store/result_store.hh"
#include "workload/workload_set.hh"

using namespace loopsim;
namespace fs = std::filesystem;

namespace
{

RunSpec
smallSpec(const std::string &workload, std::uint64_t ops = 4000)
{
    RunSpec spec;
    spec.workload = resolveWorkload(workload);
    spec.totalOps = ops;
    spec.warmupOps = 1000;
    return spec;
}

/** Process-fault overrides: crash the forked worker once it has
 *  retired @p at ops; supervision kept fast. */
Config
crashConfig(std::uint64_t at, int sig, unsigned attempts)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.crash_at_op", at);
    cfg.setUint("integrity.fault.crash_signal",
                static_cast<std::uint64_t>(sig));
    cfg.setUint("integrity.supervisor.attempts", attempts);
    cfg.setUint("integrity.supervisor.backoff_ms", 1);
    return cfg;
}

fs::path
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) /
                   (name + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Restore every process-wide knob the serve tests touch. */
struct ServeScope
{
    ~ServeScope()
    {
        serve::setServeEndpoint("");
        serve::clearDrainRequest();
        store::setJournalPath("");
        store::resetProcessStore();
        setCampaignJobs(0);
        setDeadlineMs(0);
    }
};

/** Bit-exact equality of everything the figures can see. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workloadLabel, b.workloadLabel);
    EXPECT_EQ(a.pipeLabel, b.pipeLabel);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.failKind, b.failKind);
    EXPECT_EQ(a.error, b.error);
    if (!a.failed) {
        EXPECT_EQ(a.ipc, b.ipc);
    } else {
        EXPECT_EQ(pointFailKind(a.ipc), pointFailKind(b.ipc));
    }
    EXPECT_EQ(a.operandSourceFractions, b.operandSourceFractions);
    EXPECT_EQ(a.operandSourceCounts, b.operandSourceCounts);
    EXPECT_EQ(a.gapCdf, b.gapCdf);
    EXPECT_EQ(a.scalars, b.scalars);
}

void
expectSameResults(const std::vector<RunResult> &a,
                  const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameResult(a[i], b[i]);
    }
}

CampaignPlan
twoCellPlan()
{
    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc");
    plan.add(smallSpec("swim"), "swim");
    return plan;
}

serve::SubmitOptions
optionsFor(const serve::CampaignServer &server,
           const std::string &tenant = "test")
{
    serve::SubmitOptions opts;
    opts.endpoint = "127.0.0.1:" + std::to_string(server.port());
    opts.tenant = tenant;
    return opts;
}

/** Raw TCP connection to a test server, for protocol-level tests. */
int
connectLoopback(unsigned short port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // anonymous namespace

TEST(ServeProtocolTest, PlanRoundTripPreservesFingerprints)
{
    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "fig gcc");
    plan.add(smallSpec("apsi-swim", 6000), "fig pair");
    Config cfg;
    cfg.setUint("core.iq_ex", 7);
    RunSpec tuned = smallSpec("m88");
    tuned.overrides = cfg;
    plan.add(std::move(tuned), "fig tuned");

    RetryPolicy policy;
    policy.attempts = 5;
    policy.budgetGrowth = 3.5;
    policy.seedStride = 11;
    policy.failSoft = false;

    const std::string payload = serve::encodePlan(plan, policy);
    CampaignPlan decoded;
    RetryPolicy decoded_policy;
    ASSERT_TRUE(serve::decodePlan(payload, decoded, decoded_policy));

    EXPECT_EQ(decoded_policy.attempts, policy.attempts);
    EXPECT_EQ(decoded_policy.budgetGrowth, policy.budgetGrowth);
    EXPECT_EQ(decoded_policy.seedStride, policy.seedStride);
    EXPECT_EQ(decoded_policy.failSoft, policy.failSoft);

    ASSERT_EQ(decoded.size(), plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        EXPECT_EQ(decoded.at(i).label, plan.at(i).label);
        // The decisive property: the server fingerprints the decoded
        // spec to the same cache key the client's spec hashes to.
        EXPECT_EQ(store::fingerprintRun(decoded.at(i).spec, policy),
                  store::fingerprintRun(plan.at(i).spec, policy));
    }
    EXPECT_EQ(fingerprintPlan(decoded, decoded_policy),
              fingerprintPlan(plan, policy));
}

TEST(ServeProtocolTest, ResultAndTelemetryRoundTrip)
{
    RunResult res;
    res.workloadLabel = "gcc";
    res.pipeLabel = "2_5";
    res.cycles = 12345;
    res.retired = 4000;
    res.ipc = 1.75;
    res.gapCdf = {0.25, 0.5, 1.0};
    res.scalars["core.retired"] = 4000.0;

    const std::string payload = serve::encodeResult(7, res);
    std::uint64_t index = 0;
    RunResult back;
    ASSERT_TRUE(serve::decodeResult(payload, index, back));
    EXPECT_EQ(index, 7u);
    expectSameResult(back, res);

    serve::ServeTelemetry tele;
    tele.tenant = "fig8";
    tele.cells = 13;
    tele.queued = 4;
    tele.simulated = 4;
    tele.cacheHits = 8;
    tele.dedupHits = 1;
    tele.failures = 2;
    tele.wallSeconds = 1.5;
    serve::ServeTelemetry tback;
    ASSERT_TRUE(
        serve::decodeTelemetry(serve::encodeTelemetry(tele), tback));
    EXPECT_EQ(tback.tenant, tele.tenant);
    EXPECT_EQ(tback.cells, tele.cells);
    EXPECT_EQ(tback.queued, tele.queued);
    EXPECT_EQ(tback.simulated, tele.simulated);
    EXPECT_EQ(tback.cacheHits, tele.cacheHits);
    EXPECT_EQ(tback.dedupHits, tele.dedupHits);
    EXPECT_EQ(tback.failures, tele.failures);
    EXPECT_EQ(tback.wallSeconds, tele.wallSeconds);
}

TEST(ServeProtocolTest, FramingCorruptionReadsAsCorruptNeverWrongBytes)
{
    RunResult res;
    res.workloadLabel = "gcc";
    res.pipeLabel = "2_5";
    res.cycles = 999;
    res.ipc = 2.0;
    const std::string frame =
        serve::encodeFrame(serve::FrameType::Result,
                           serve::encodeResult(3, res));

    // Flip one byte anywhere in the frame: the reader must reject it.
    // (Skipping no offsets: header corruption fails magic/type/len/CRC
    // checks, payload corruption fails the frame CRC.)
    for (std::size_t at = 0; at < frame.size(); ++at) {
        std::string bad = frame;
        bad[at] = static_cast<char>(bad[at] ^ 0x40);

        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], bad.data(), bad.size()),
                  static_cast<ssize_t>(bad.size()));
        ::close(fds[1]);
        serve::Frame got;
        const serve::ReadStatus rs = serve::readFrame(fds[0], got);
        ::close(fds[0]);

        if (rs != serve::ReadStatus::Ok) {
            EXPECT_EQ(rs, serve::ReadStatus::Corrupt)
                << "offset " << at;
            continue;
        }
        // The frame CRC cannot catch a flip inside its own CRC field
        // combined with nothing else — but any frame that does read Ok
        // must still carry a payload whose embedded record validates
        // or is rejected; either way the decoded bytes are never
        // silently wrong.
        std::uint64_t index = 0;
        RunResult back;
        if (serve::decodeResult(got.payload, index, back)) {
            EXPECT_EQ(index, 3u) << "offset " << at;
            expectSameResult(back, res);
        }
    }

    // A truncated frame (header promises more payload than arrives)
    // is corruption, not a short read of wrong data.
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], frame.data(), frame.size() - 5),
              static_cast<ssize_t>(frame.size() - 5));
    ::close(fds[1]);
    serve::Frame got;
    EXPECT_EQ(serve::readFrame(fds[0], got),
              serve::ReadStatus::Corrupt);
    ::close(fds[0]);

    // An orderly close before any header is Eof, not corruption.
    ASSERT_EQ(::pipe(fds), 0);
    ::close(fds[1]);
    EXPECT_EQ(serve::readFrame(fds[0], got), serve::ReadStatus::Eof);
    ::close(fds[0]);
}

TEST(ServeProtocolTest, HugeThreadCountReadsAsMalformedPlanNotBadAlloc)
{
    // A CRC-valid frame can still carry a garbage element count; the
    // decoder must reject it from the payload bounds, never feed it to
    // resize() (which would throw bad_alloc/length_error and, escaping
    // a session thread, std::terminate the whole daemon).
    std::string payload;
    auto put32 = [&payload](std::uint32_t v) {
        for (int i = 0; i < 4; ++i)
            payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    auto put64 = [&payload](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    put32(3);                    // policy.attempts
    put64(0x4000000000000000ull); // policy.budgetGrowth = 2.0
    put64(1);                    // policy.seedStride
    put32(1);                    // policy.failSoft
    put64(1);                    // one cell
    put32(0);                    // empty cell label
    put32(0);                    // empty workload label
    put32(0xFFFFFFFFu);          // thread count far beyond the payload

    CampaignPlan plan;
    RetryPolicy policy;
    EXPECT_FALSE(serve::decodePlan(payload, plan, policy));
    EXPECT_EQ(plan.size(), 0u);
}

TEST(ServeServerTest, StalledMidFrameClientTimesOutInsteadOfHangingDrain)
{
    ServeScope scope;
    serve::CampaignServer server(
        {.host = "127.0.0.1", .jobs = 1, .ioTimeoutMs = 200});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::writeFrame(fd, serve::FrameType::Hello,
                                  serve::encodeHello("staller")));
    serve::Frame frame;
    ASSERT_EQ(serve::readFrame(fd, frame), serve::ReadStatus::Ok);
    ASSERT_EQ(frame.type, serve::FrameType::HelloOk);

    // Four bytes of a valid frame, then silence: the session's poll
    // sees readable data and enters readFrame, which blocks mid-header
    // on the remaining twelve bytes that never come.
    const std::string whole = serve::encodeFrame(
        serve::FrameType::Submit,
        serve::encodePlan(twoCellPlan(), RetryPolicy{}));
    ASSERT_EQ(::send(fd, whole.data(), 4, 0), 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // Without SO_RCVTIMEO on the accepted socket this join never
    // returns — the stalled client pins the session thread and with it
    // the daemon's SIGTERM drain.
    server.stop();
    ::close(fd);
}

TEST(ServeServerTest, BindAddressAcceptsHostnames)
{
    ServeScope scope;
    // The client resolves endpoints with getaddrinfo; the listener
    // must accept the same spellings (notably "localhost").
    serve::CampaignServer server({.host = "localhost", .jobs = 1});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;
    EXPECT_NE(server.port(), 0);
    server.stop();

    serve::CampaignServer bad({.host = "no.such.host.invalid", .jobs = 1});
    std::string bad_error;
    EXPECT_FALSE(bad.start(bad_error));
    EXPECT_NE(bad_error.find("unusable bind address"), std::string::npos)
        << bad_error;
}

TEST(ServeServerTest, ColdAndWarmSubmissionsMatchLocalByteForByte)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    const CampaignPlan plan = twoCellPlan();
    std::vector<RunResult> remote;
    serve::ServeTelemetry tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server), remote, tele,
                                        error))
        << error;
    EXPECT_EQ(tele.cells, plan.size());
    EXPECT_EQ(tele.simulated, plan.size());
    EXPECT_EQ(tele.cacheHits, 0u);
    EXPECT_EQ(tele.failures, 0u);

    // Warm submission: everything answered from the shared cache tier.
    std::vector<RunResult> warm;
    serve::ServeTelemetry warm_tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server), warm, warm_tele,
                                        error))
        << error;
    EXPECT_EQ(warm_tele.simulated, 0u);
    EXPECT_EQ(warm_tele.cacheHits, plan.size());
    expectSameResults(warm, remote);

    server.stop();

    // Local reference on a cold memo: byte-identical assembly.
    store::processMemo().clear();
    const std::vector<RunResult> local =
        runCampaign(plan, RetryPolicy{}, 2);
    expectSameResults(remote, local);
}

TEST(ServeServerTest, ConcurrentTenantsDedupOverlappingPlans)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Both tenants submit the same two cells; tenant B adds a third.
    CampaignPlan plan_a = twoCellPlan();
    CampaignPlan plan_b = twoCellPlan();
    plan_b.add(smallSpec("m88"), "m88");

    std::vector<RunResult> res_a;
    std::vector<RunResult> res_b;
    serve::ServeTelemetry tele_a;
    serve::ServeTelemetry tele_b;
    std::string err_a;
    std::string err_b;
    bool ok_a = false;
    bool ok_b = false;
    std::thread ta([&] {
        ok_a = serve::submitPlanRemote(plan_a, RetryPolicy{},
                                       optionsFor(server, "tenant-a"),
                                       res_a, tele_a, err_a);
    });
    std::thread tb([&] {
        ok_b = serve::submitPlanRemote(plan_b, RetryPolicy{},
                                       optionsFor(server, "tenant-b"),
                                       res_b, tele_b, err_b);
    });
    ta.join();
    tb.join();
    ASSERT_TRUE(ok_a) << err_a;
    ASSERT_TRUE(ok_b) << err_b;

    // 3 unique fingerprints total: every overlap cell simulated once
    // server-wide, the other tenant answered by cache or in-flight
    // subscription.
    EXPECT_EQ(tele_a.simulated + tele_b.simulated, 3u);
    EXPECT_EQ(tele_a.cacheHits + tele_a.dedupHits + tele_b.cacheHits +
                  tele_b.dedupHits,
              2u);
    EXPECT_LT(std::min(tele_a.simulated, tele_b.simulated),
              plan_a.size());

    // Overlapping cells are byte-identical across tenants.
    expectSameResult(res_a[0], res_b[0]);
    expectSameResult(res_a[1], res_b[1]);

    const serve::ServeTelemetry totals = server.totals();
    EXPECT_EQ(totals.cells, plan_a.size() + plan_b.size());
    EXPECT_EQ(totals.simulated, 3u);
    server.stop();
}

TEST(ServeServerTest, DuplicatePlanPointsSimulateOnce)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc#0");
    plan.add(smallSpec("gcc"), "gcc#1");

    std::vector<RunResult> results;
    serve::ServeTelemetry tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server), results, tele,
                                        error))
        << error;
    EXPECT_EQ(tele.simulated, 1u);
    EXPECT_EQ(tele.dedupHits + tele.cacheHits, 1u);
    expectSameResult(results[0], results[1]);
    server.stop();
}

TEST(ServeServerTest, WorkerCrashDegradesToCrashCell)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 1});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    CampaignPlan plan;
    RunSpec poison = smallSpec("gcc");
    poison.overrides = crashConfig(2000, SIGSEGV, 2);
    plan.add(std::move(poison), "poison");
    plan.add(smallSpec("swim"), "healthy");

    std::vector<RunResult> results;
    serve::ServeTelemetry tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server), results, tele,
                                        error))
        << error;

    ASSERT_EQ(results.size(), 2u);
    EXPECT_TRUE(results[0].failed);
    EXPECT_EQ(results[0].failKind, FailKind::Crash);
    EXPECT_EQ(pointFailKind(results[0].ipc), FailKind::Crash);
    EXPECT_FALSE(results[1].failed);
    EXPECT_EQ(tele.failures, 1u);
    EXPECT_GE(tele.crashes, 2u); // both spawn attempts died
    server.stop();
}

TEST(ServeServerTest, ClientReconnectResumesFromJournal)
{
    ServeScope scope;
    store::resetProcessStore();
    const fs::path journal_dir = freshDir("serve_reconnect_journal");
    store::setJournalPath(journal_dir.string());

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    CampaignPlan plan = twoCellPlan();
    plan.add(smallSpec("m88"), "m88");

    // Reference first, so the resumed output can be compared.
    std::vector<RunResult> reference;
    serve::ServeTelemetry ref_tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server), reference,
                                        ref_tele, error))
        << error;

    // Fresh caches: only the journal survives into the "new" client's
    // submission below.
    store::processMemo().clear();

    serve::SubmitOptions opts = optionsFor(server, "droppy");
    opts.dropAfterResults = 1;
    opts.reconnectAttempts = 3;
    opts.reconnectBackoffMs = 10;
    std::vector<RunResult> resumed;
    serve::ServeTelemetry tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{}, opts,
                                        resumed, tele, error))
        << error;
    EXPECT_GE(tele.reconnects, 1u);
    // The replay answered the reconnect: nothing simulated twice, and
    // the journal (which outranks the caches) covered completed cells.
    EXPECT_GT(tele.resumed, 0u);
    expectSameResults(resumed, reference);
    server.stop();
}

TEST(ServeServerTest, JournalResumesAcrossServerRestart)
{
    ServeScope scope;
    store::resetProcessStore();
    const fs::path journal_dir = freshDir("serve_restart_journal");
    store::setJournalPath(journal_dir.string());

    CampaignPlan plan = twoCellPlan();
    std::vector<RunResult> reference;

    {
        serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
        std::string error;
        ASSERT_TRUE(server.start(error)) << error;

        // The client vanishes mid-stream and never reconnects; the
        // server still finishes and journals the whole plan.
        serve::SubmitOptions opts = optionsFor(server, "vanished");
        opts.dropAfterResults = 1;
        opts.reconnectAttempts = 1;
        std::vector<RunResult> dropped;
        serve::ServeTelemetry tele;
        std::string err;
        EXPECT_FALSE(serve::submitPlanRemote(plan, RetryPolicy{}, opts,
                                             dropped, tele, err));
        reference = runCampaign(plan, RetryPolicy{}, 2);
        server.stop(); // drains: every cell completed and journaled
    }

    // "Restart": new server, cold memo, same journal directory.
    store::processMemo().clear();
    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    std::vector<RunResult> resumed;
    serve::ServeTelemetry tele;
    ASSERT_TRUE(serve::submitPlanRemote(plan, RetryPolicy{},
                                        optionsFor(server, "returned"),
                                        resumed, tele, error))
        << error;
    EXPECT_EQ(tele.simulated, 0u);
    EXPECT_EQ(tele.resumed, plan.size());
    expectSameResults(resumed, reference);
    server.stop();
}

TEST(ServeServerTest, DrainRefusesNewPlansButFinishesInFlight)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    // Raw connection: handshake, submit, read the first result, THEN
    // drain — the in-flight plan must still stream to completion.
    int fd = connectLoopback(server.port());
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(serve::writeFrame(fd, serve::FrameType::Hello,
                                  serve::encodeHello("drain-test")));
    serve::Frame frame;
    ASSERT_EQ(serve::readFrame(fd, frame), serve::ReadStatus::Ok);
    ASSERT_EQ(frame.type, serve::FrameType::HelloOk);

    const CampaignPlan plan = twoCellPlan();
    ASSERT_TRUE(serve::writeFrame(
        fd, serve::FrameType::Submit,
        serve::encodePlan(plan, RetryPolicy{})));
    ASSERT_EQ(serve::readFrame(fd, frame), serve::ReadStatus::Ok);
    ASSERT_EQ(frame.type, serve::FrameType::Result);

    server.beginDrain();

    std::size_t results = 1;
    bool done = false;
    while (serve::readFrame(fd, frame) == serve::ReadStatus::Ok) {
        if (frame.type == serve::FrameType::Result)
            ++results;
        if (frame.type == serve::FrameType::Done) {
            done = true;
            break;
        }
    }
    EXPECT_EQ(results, plan.size());
    EXPECT_TRUE(done);

    // The now-idle session is told the server is draining.
    ASSERT_EQ(serve::readFrame(fd, frame), serve::ReadStatus::Ok);
    EXPECT_EQ(frame.type, serve::FrameType::Error);
    std::string message;
    ASSERT_TRUE(serve::decodeError(frame.payload, message));
    EXPECT_EQ(message, "draining");
    ::close(fd);

    // New connections are refused once draining.
    std::vector<RunResult> late;
    serve::ServeTelemetry tele;
    EXPECT_FALSE(serve::submitPlanRemote(plan, RetryPolicy{},
                                         optionsFor(server), late, tele,
                                         error));
    server.stop();
}

TEST(ServeServerTest, SigtermRequestsDrain)
{
    ServeScope scope;
    serve::clearDrainRequest();
    EXPECT_FALSE(serve::drainRequested());

    serve::installDrainSignalHandlers();
    ASSERT_EQ(::raise(SIGTERM), 0);
    EXPECT_TRUE(serve::drainRequested());
    serve::clearDrainRequest();

    // Restore default handlers so a later real SIGTERM still kills
    // the test binary.
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
}

TEST(ServeClientTest, JobsSpecParsesNumbersAndAuto)
{
    bool ok = false;
    EXPECT_EQ(parseJobsSpec("4", ok), 4u);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseJobsSpec("auto", ok), hostCpus());
    EXPECT_TRUE(ok);
    EXPECT_GE(hostCpus(), 1u);
    parseJobsSpec("fast", ok);
    EXPECT_FALSE(ok);
    parseJobsSpec("", ok);
    EXPECT_FALSE(ok);
    parseJobsSpec("4x", ok);
    EXPECT_FALSE(ok);
}

TEST(ServeClientTest, EndpointPrecedenceAndFailFast)
{
    ServeScope scope;
    serve::setServeEndpoint("127.0.0.1:1");
    EXPECT_TRUE(serve::serveConfigured());
    EXPECT_EQ(serve::serveEndpoint(), "127.0.0.1:1");
    serve::setServeEndpoint("");
    EXPECT_FALSE(serve::serveConfigured());

    // Unusable endpoints fail with a diagnostic, not a hang.
    std::string error;
    EXPECT_FALSE(serve::pingServer("no-port-here", error));
    EXPECT_FALSE(error.empty());
    error.clear();
    // Port 1 on loopback: connection refused (nothing listens there).
    EXPECT_FALSE(serve::pingServer("127.0.0.1:1", error));
    EXPECT_FALSE(error.empty());
}

TEST(ServeClientTest, RunCampaignDelegatesToServerAndRecordsTelemetry)
{
    ServeScope scope;
    store::resetProcessStore();

    serve::CampaignServer server({.host = "127.0.0.1", .jobs = 2});
    std::string error;
    ASSERT_TRUE(server.start(error)) << error;

    const CampaignPlan plan = twoCellPlan();
    const std::vector<RunResult> local = runCampaign(plan, RetryPolicy{}, 2);
    store::processMemo().clear();
    resetCampaignTotals();

    serve::setServeEndpoint("127.0.0.1:" +
                            std::to_string(server.port()));
    const std::vector<RunResult> remote = runCampaign(plan);
    serve::setServeEndpoint("");

    expectSameResults(remote, local);
    const CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.runs, plan.size());
    EXPECT_EQ(t.simulated, plan.size());
    EXPECT_EQ(campaignTotals().runs, plan.size());
    const serve::ServeTelemetry s = serve::lastClientTelemetry();
    EXPECT_EQ(s.cells, plan.size());
    EXPECT_EQ(s.simulated, plan.size());
    server.stop();
}
