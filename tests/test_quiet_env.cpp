/**
 * @file
 * Silences warn()/inform()/panic() console output for the whole test
 * binary; the tests assert on exceptions, not on stderr.
 */

#include "base/logging.hh"

namespace
{

struct QuietEnv
{
    QuietEnv() { loopsim::detail::setQuiet(true); }
};

QuietEnv quiet_env;

} // anonymous namespace
