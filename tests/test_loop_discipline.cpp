/**
 * @file
 * The checked loop discipline: FeedbackPort unit behaviour, end-to-end
 * audit catches of deliberately-early feedback reads (the
 * integrity.fault.early_*_read discipline breakers), audit-mode
 * transparency on clean runs, and the zero-cycle-budget regression.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core_test_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "integrity/sim_error.hh"
#include "sim/feedback_port.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

/** Kernel with one forced branch mispredict (resolution feedback). */
std::vector<MicroOp>
mispredictKernel()
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i)));
    ops.push_back(branch(0, true, /*mispredict=*/true));
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(10 + i)));
    return ops;
}

/**
 * Kernel + config forcing a DRA operand miss (from the CoreDra
 * saturated-consumers test): a 1-bit insertion table drained by an
 * early consumer leaves the late same-cluster consumer to miss and
 * recover through the payload path.
 */
std::vector<MicroOp>
operandMissKernel()
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(2));    // chain head
    ops.push_back(alu(1));    // producer
    ops.push_back(alu(4, 1)); // early consumer drains the count
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(2, 2)); // delay chain
    MicroOp late = alu(3, 2);
    late.src[1] = 1; // late same-cluster consumer of r1
    ops.push_back(late);
    return ops;
}

Config
operandMissConfig()
{
    Config cfg;
    cfg.setBool("dra.enable", true);
    cfg.setUint("dra.insertion_bits", 1);
    cfg.setUint("core.clusters", 1);
    return cfg;
}

} // anonymous namespace

TEST(FeedbackPort, DeliversAtVisibilityUnderAudit)
{
    audit::Scoped on(true);
    FeedbackPort<int> port("stage", "signal");
    std::uint64_t id = port.send(/*write_cycle=*/10, /*loop_delay=*/3, 42);
    EXPECT_EQ(port.inFlight(), 1u);
    EXPECT_EQ(port.read(id, /*now=*/13), 42); // exactly visibleAt: legal
    EXPECT_EQ(port.inFlight(), 0u);
    EXPECT_EQ(port.sent(), 1u);
    EXPECT_EQ(port.delivered(), 1u);
}

TEST(FeedbackPort, EarlyReadRaisesStructuredViolation)
{
    audit::Scoped on(true);
    FeedbackPort<int> port("core.fetch", "branch-resolution");
    std::uint64_t id = port.send(100, 5, 7);
    try {
        port.read(id, /*now=*/103,
                  [] { return std::string("op [ fetch 90 ]"); });
        FAIL() << "early read did not raise";
    } catch (const DisciplineViolation &v) {
        EXPECT_EQ(v.kind(), "loop-discipline");
        EXPECT_EQ(v.component(), "core.fetch");
        EXPECT_EQ(v.signalKind(), "branch-resolution");
        EXPECT_EQ(v.writeCycle(), 100u);
        EXPECT_EQ(v.loopDelay(), 5u);
        EXPECT_EQ(v.readCycle(), 103u);
        EXPECT_EQ(v.cyclesEarly(), 2u);
        EXPECT_EQ(v.timeline(), "op [ fetch 90 ]");
        std::string msg = v.what();
        EXPECT_NE(msg.find("core.fetch"), std::string::npos);
        EXPECT_NE(msg.find("2 cycle(s) early"), std::string::npos);
        EXPECT_NE(msg.find("offending instruction"), std::string::npos);
    }
    // The signal was consumed by the failed read; nothing leaks.
    EXPECT_EQ(port.inFlight(), 0u);
}

TEST(FeedbackPort, EarlyReadUnwrapsWhenAuditOff)
{
    audit::Scoped off(false);
    FeedbackPort<int> port("stage", "signal");
    std::uint64_t id = port.send(100, 5, 7);
    // No audit: the cheat goes unnoticed (which is exactly why the
    // audit leg exists in CI).
    EXPECT_EQ(port.read(id, 101), 7);
    EXPECT_EQ(port.delivered(), 1u);
}

TEST(FeedbackPort, AbandonedSignalsVanishWithThePort)
{
    audit::Scoped on(true);
    FeedbackPort<int> port("stage", "signal");
    port.send(1, 1, 1); // never read: squashed speculation
    std::uint64_t id = port.send(2, 1, 2);
    EXPECT_EQ(port.read(id, 3), 2);
    EXPECT_EQ(port.inFlight(), 1u);
    EXPECT_EQ(port.sent(), 2u);
    EXPECT_EQ(port.delivered(), 1u);
    // Destruction with one in flight must not panic.
}

TEST(LoopDiscipline, EarlyBranchResolutionReadIsCaught)
{
    // The discipline breaker delivers the branch-resolution feedback
    // one cycle before its declared loop delay has elapsed; the fetch
    // stage's audited read must catch the cheat and name the culprit.
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.early_branch_read", 1);
    auto h = makeHarness(mispredictKernel(), cfg);
    audit::Scoped on(true);
    h.sim.add(h.core.get());
    try {
        h.sim.run(200000);
        FAIL() << "early branch-resolution read was not caught";
    } catch (const DisciplineViolation &v) {
        EXPECT_EQ(v.component(), "core.fetch");
        EXPECT_EQ(v.signalKind(), "branch-resolution");
        EXPECT_EQ(v.cyclesEarly(), 1u);
        // The offending branch is in flight: its timeline is reported.
        EXPECT_NE(v.timeline().find("fetch"), std::string::npos);
    }
}

TEST(LoopDiscipline, EarlyOperandMissReadIsCaught)
{
    Config cfg = operandMissConfig();
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.early_operand_read", 1);
    auto h = makeHarness(operandMissKernel(), cfg);
    audit::Scoped on(true);
    h.sim.add(h.core.get());
    try {
        h.sim.run(200000);
        FAIL() << "early operand-miss read was not caught";
    } catch (const DisciplineViolation &v) {
        EXPECT_EQ(v.component(), "core.issue");
        EXPECT_EQ(v.signalKind(), "dra-operand-miss");
        EXPECT_EQ(v.cyclesEarly(), 1u);
    }
}

TEST(LoopDiscipline, CheatRunsSilentlyWithoutAudit)
{
    // The same early-read cheat with auditing off: the run completes
    // and every op retires — the violation is invisible, the model
    // just quietly got a shorter loop. This is the failure mode the
    // audit leg exists to catch.
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.early_branch_read", 1);
    auto h = makeHarness(mispredictKernel(), cfg);
    audit::Scoped off(false);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 11u);
    EXPECT_EQ(h.stat("branchMispredicts"), 1.0);
}

TEST(LoopDiscipline, CleanRunIsViolationFreeUnderAudit)
{
    // All three loops exercised with auditing on: branch resolution
    // (mispredict), load resolution (L1 miss kill/reissue), and the
    // run completes untouched — every delivery flowed through a port
    // at or after its visibility cycle.
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x5000000));
    for (int i = 0; i < 12; ++i)
        ops.push_back(alu(1, 1)); // hold the load behind the store
    ops.push_back(load(2, 1, 0x5000000 + 256)); // TLB hit, L1 miss
    ops.push_back(alu(3, 2)); // speculatively woken consumer
    ops.push_back(branch(0, true, /*mispredict=*/true));
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(10 + i)));
    auto h = makeHarness(ops);
    audit::Scoped on(true);
    h.run();
    EXPECT_GE(h.stat("branchMispredicts"), 1.0);
    EXPECT_GE(h.stat("loadMissEvents"), 1.0);
    EXPECT_GE(h.core->branchResolvePort().delivered(), 1u);
    EXPECT_GE(h.core->loadResolvePort().delivered(), 1u);
}

TEST(LoopDiscipline, DraRecoveryIsViolationFreeUnderAudit)
{
    auto h = makeHarness(operandMissKernel(), operandMissConfig());
    audit::Scoped on(true);
    h.run();
    EXPECT_GE(h.stat("operandMissEvents"), 1.0);
    // Kill and payload delivery both redeemed their signals.
    EXPECT_GE(h.core->operandMissPort().delivered(), 2u);
}

TEST(LoopDiscipline, AuditDoesNotPerturbFigure8StyleSweep)
{
    // A Figure-8-shaped sweep (DRA vs base machine) with auditing on
    // must be violation-free and produce byte-identical output to the
    // unaudited sweep: the checks are pure observers.
    Config base;
    Config dra;
    dra.setBool("dra.enable", true);

    auto render = [&](bool audit_on) {
        audit::Scoped scoped(audit_on);
        FigureData fig = sweepConfigs(
            "fig8-style audit transparency sweep", {"m88ksim", "turb3d"},
            {{"base", base}, {"dra", dra}}, 4000);
        EXPECT_TRUE(fig.failures.empty());
        for (const Series &col : fig.columns)
            for (double v : col.values)
                EXPECT_TRUE(std::isfinite(v));
        std::ostringstream os;
        printCsv(os, fig);
        return os.str();
    };

    std::string unaudited = render(false);
    std::string audited = render(true);
    EXPECT_FALSE(audited.empty());
    EXPECT_EQ(audited, unaudited);
}

TEST(SimulatorRun, ZeroCycleBudgetIsStructuredError)
{
    auto h = makeHarness({alu(0)});
    h.sim.add(h.core.get());
    try {
        h.sim.run(0);
        FAIL() << "zero-cycle budget did not raise";
    } catch (const SimError &e) {
        EXPECT_EQ(e.kind(), "invalid-budget");
        EXPECT_NE(std::string(e.what()).find("zero cycle budget"),
                  std::string::npos);
    }
}
