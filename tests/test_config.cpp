/**
 * @file
 * Unit tests for the typed configuration store and the simulation
 * kernel.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"

using namespace loopsim;

TEST(Config, TypedRoundTrip)
{
    Config c;
    c.setInt("a", -5);
    c.setUint("b", 42);
    c.setDouble("d", 0.25);
    c.setBool("t", true);
    c.set("s", "hello");
    EXPECT_EQ(c.getInt("a", 0), -5);
    EXPECT_EQ(c.getUint("b", 0), 42u);
    EXPECT_DOUBLE_EQ(c.getDouble("d", 0), 0.25);
    EXPECT_TRUE(c.getBool("t", false));
    EXPECT_EQ(c.getString("s", ""), "hello");
}

TEST(Config, DefaultsWhenAbsent)
{
    Config c;
    EXPECT_EQ(c.getInt("missing", 7), 7);
    EXPECT_EQ(c.getUint("missing2", 9), 9u);
    EXPECT_DOUBLE_EQ(c.getDouble("missing3", 1.5), 1.5);
    EXPECT_FALSE(c.getBool("missing4", false));
    EXPECT_EQ(c.getString("missing5", "z"), "z");
    EXPECT_FALSE(c.has("missing"));
}

TEST(Config, BoolSpellings)
{
    Config c;
    for (const char *t : {"true", "1", "yes", "on", "TRUE", "Yes"}) {
        c.set("k", t);
        EXPECT_TRUE(c.getBool("k", false)) << t;
    }
    for (const char *f : {"false", "0", "no", "off", "False"}) {
        c.set("k", f);
        EXPECT_FALSE(c.getBool("k", true)) << f;
    }
    c.set("k", "maybe");
    EXPECT_THROW(c.getBool("k", false), FatalError);
}

TEST(Config, ParseAssignments)
{
    Config c;
    c.parseAssignment(" core.iq.entries = 64 ");
    EXPECT_EQ(c.getUint("core.iq.entries", 0), 64u);
    c.parseArgs({"a=1", "b.c=2"});
    EXPECT_EQ(c.getInt("a", 0), 1);
    EXPECT_EQ(c.getInt("b.c", 0), 2);
    EXPECT_THROW(c.parseAssignment("novalue"), FatalError);
    EXPECT_THROW(c.parseAssignment("=5"), FatalError);
}

TEST(Config, HexAndNegativeIntegers)
{
    Config c;
    c.set("h", "0x40");
    EXPECT_EQ(c.getInt("h", 0), 64);
    c.set("n", "-12");
    EXPECT_EQ(c.getInt("n", 0), -12);
    EXPECT_THROW(c.getUint("n", 0), FatalError);
    c.set("bad", "12abc");
    EXPECT_THROW(c.getInt("bad", 0), FatalError);
}

TEST(Config, UnreadKeysDetected)
{
    Config c;
    c.set("used", "1");
    c.set("typo.key", "1");
    c.getInt("used", 0);
    auto unread = c.unreadKeys();
    ASSERT_EQ(unread.size(), 1u);
    EXPECT_EQ(unread[0], "typo.key");
}

TEST(Config, OverlayWins)
{
    Config base;
    base.set("a", "1");
    base.set("b", "2");
    Config over;
    over.set("b", "20");
    over.set("c", "30");
    base.overlay(over);
    EXPECT_EQ(base.getInt("a", 0), 1);
    EXPECT_EQ(base.getInt("b", 0), 20);
    EXPECT_EQ(base.getInt("c", 0), 30);
}

TEST(Config, EffectiveDumpRecordsReads)
{
    Config c;
    c.set("x", "5");
    c.getInt("x", 0);
    c.getInt("y", 9);
    std::ostringstream os;
    c.dumpEffective(os);
    std::string text = os.str();
    EXPECT_NE(text.find("x = 5"), std::string::npos);
    EXPECT_NE(text.find("y = 9"), std::string::npos);
}

namespace
{

/** Ticks for a fixed number of cycles, then reports done. */
class CountdownClocked : public Clocked
{
  public:
    explicit CountdownClocked(int n) : remaining(n) {}
    void
    tick(Cycle) override
    {
        ++ticks;
        if (remaining > 0)
            --remaining;
    }
    bool done() const override { return remaining == 0; }

    int ticks = 0;

  private:
    int remaining;
};

} // anonymous namespace

TEST(Simulator, RunsUntilAllDone)
{
    CountdownClocked a(5);
    CountdownClocked b(9);
    Simulator sim;
    sim.add(&a);
    sim.add(&b);
    Cycle ran = sim.run(100);
    EXPECT_EQ(ran, 9u);
    EXPECT_FALSE(sim.hitCycleLimit());
    EXPECT_EQ(a.ticks, 9); // still ticked while b finished
    EXPECT_EQ(sim.now(), 9u);
}

TEST(Simulator, HonoursCycleLimit)
{
    CountdownClocked a(50);
    Simulator sim;
    sim.add(&a);
    Cycle ran = sim.run(10);
    EXPECT_EQ(ran, 10u);
    EXPECT_TRUE(sim.hitCycleLimit());
    // Continuing picks up where it stopped.
    ran = sim.run(100);
    EXPECT_EQ(ran, 40u);
    EXPECT_FALSE(sim.hitCycleLimit());
    EXPECT_EQ(sim.now(), 50u);
}

TEST(Simulator, ErrorsPanic)
{
    Simulator sim;
    EXPECT_THROW(sim.add(nullptr), PanicError);
    EXPECT_THROW(sim.run(10), PanicError); // no components
}
