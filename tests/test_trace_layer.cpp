/**
 * @file
 * Tests for the loop-event trace layer: name tables, golden sink
 * output, the process-wide collector, end-to-end event capture on
 * hand-written kernels (all three paper loops), campaign trace
 * determinism at any worker count, the loop-occupancy statistics, and
 * the kernel self-profiling hooks.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "../bench/bench_util.hh"
#include "core_test_util.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "integrity/sim_error.hh"
#include "trace/loop_trace.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

// End-to-end capture tests need the recording macro compiled in; a
// -DLOOPSIM_TRACE_DISABLED=ON build correctly records nothing, so
// they skip themselves there (sinks, collector and stats still run).
#ifdef LOOPSIM_TRACE_DISABLED
#define SKIP_WITHOUT_RECORDING() \
    GTEST_SKIP() << "built with LOOPSIM_TRACE_DISABLED"
#else
#define SKIP_WITHOUT_RECORDING() \
    do {                         \
    } while (false)
#endif

/** RAII guard: force trace collection on/off, drain and restore. */
struct CollectionGuard
{
    explicit CollectionGuard(bool on)
    {
        trace::takeCollectedRuns();
        trace::setCollection(on);
    }
    ~CollectionGuard()
    {
        trace::takeCollectedRuns();
        trace::setCollection(false);
    }
};

/** A two-run trace with every event type, built by hand so sink
 *  output can be compared against golden strings. */
std::vector<trace::RunTrace>
goldenRuns()
{
    std::vector<trace::RunTrace> runs;
    trace::RunTrace a;
    a.label = "gcc 5_5";
    a.events.push_back({trace::LoopEventType::BranchResolution, 0,
                        100, 7, 107, 42});
    a.events.push_back({trace::LoopEventType::LoadKill, 1,
                        200, 5, 205, 43});
    runs.push_back(std::move(a));
    trace::RunTrace b;
    b.label = "swim, dra"; // comma: exercises CSV quoting
    b.events.push_back({trace::LoopEventType::OperandKill, 0,
                        300, 3, 303, 44});
    runs.push_back(std::move(b));
    return runs;
}

/** Serialize @p runs through a ChromeTraceSink into a string. */
std::string
chromeString(const std::vector<trace::RunTrace> &runs)
{
    std::ostringstream os;
    trace::ChromeTraceSink sink(os);
    trace::writeTrace(sink, runs);
    return os.str();
}

/** Every event must carry honest loop geometry. */
void
expectHonestStamps(const std::vector<trace::LoopEvent> &events)
{
    for (const trace::LoopEvent &ev : events) {
        EXPECT_EQ(ev.writeCycle + ev.loopDelay, ev.consumeCycle)
            << trace::loopEventName(ev.type) << " at write cycle "
            << ev.writeCycle;
        EXPECT_GT(ev.loopDelay, 0u);
    }
}

bool
hasEvent(const std::vector<trace::LoopEvent> &events,
         trace::LoopEventType type)
{
    for (const trace::LoopEvent &ev : events) {
        if (ev.type == type)
            return true;
    }
    return false;
}

/** Kernel forcing a branch mispredict: the branch-resolution loop. */
std::vector<MicroOp>
mispredictKernel()
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(branch(1, true, /*mispredict=*/true));
    for (int i = 0; i < 20; ++i)
        ops.push_back(alu(static_cast<ArchReg>(2 + i % 8)));
    return ops;
}

/** Kernel forcing a load-miss kill: the load-resolution loop. */
std::vector<MicroOp>
loadMissKernel()
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x5000000));
    for (int i = 0; i < 12; ++i)
        ops.push_back(alu(1, 1));
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    ops.push_back(alu(3, 2)); // killed + reissued consumer
    return ops;
}

/** Kernel + config forcing a DRA operand miss (kill and payload):
 *  the operand-resolution loop (same recipe as test_core_dra). */
std::vector<MicroOp>
operandMissKernel()
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(2));    // chain head
    ops.push_back(alu(1));    // producer
    ops.push_back(alu(4, 1)); // early consumer drains the count
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(2, 2));
    MicroOp late = alu(3, 2);
    late.src[1] = 1; // late same-cluster consumer of r1
    ops.push_back(late);
    return ops;
}

Config
operandMissConfig()
{
    Config cfg;
    cfg.setBool("dra.enable", true);
    cfg.setUint("dra.insertion_bits", 1);
    cfg.setUint("core.clusters", 1);
    return cfg;
}

RunSpec
smallSpec(const std::string &workload, const Config &cfg = Config{})
{
    RunSpec spec;
    spec.workload = resolveWorkload(workload);
    spec.totalOps = 4000;
    spec.warmupOps = 1000;
    spec.overrides = cfg;
    return spec;
}

} // anonymous namespace

TEST(TraceNames, KindsEventsAndMapping)
{
    using trace::LoopEventType;
    using trace::LoopKind;
    EXPECT_STREQ(trace::loopKindName(LoopKind::Branch), "branch-loop");
    EXPECT_STREQ(trace::loopKindName(LoopKind::Load), "load-loop");
    EXPECT_STREQ(trace::loopKindName(LoopKind::Operand),
                 "operand-loop");

    EXPECT_EQ(trace::loopKindOf(LoopEventType::BranchResolution),
              LoopKind::Branch);
    EXPECT_EQ(trace::loopKindOf(LoopEventType::LoadKill),
              LoopKind::Load);
    EXPECT_EQ(trace::loopKindOf(LoopEventType::TlbTrap),
              LoopKind::Load);
    EXPECT_EQ(trace::loopKindOf(LoopEventType::OrderTrap),
              LoopKind::Load);
    EXPECT_EQ(trace::loopKindOf(LoopEventType::OperandKill),
              LoopKind::Operand);
    EXPECT_EQ(trace::loopKindOf(LoopEventType::OperandPayload),
              LoopKind::Operand);

    EXPECT_STREQ(trace::loopEventName(LoopEventType::BranchResolution),
                 "branch-resolution");
    EXPECT_STREQ(trace::loopEventName(LoopEventType::OperandPayload),
                 "operand-payload");
}

TEST(TraceSinks, ChromeGolden)
{
    const std::string expected =
        "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"gcc 5_5\"}},\n"
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"branch-loop\"}},\n"
        "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"load-loop\"}},\n"
        "{\"ph\":\"M\",\"pid\":0,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"operand-loop\"}},\n"
        "{\"ph\":\"X\",\"pid\":0,\"tid\":0,"
        "\"name\":\"branch-resolution\",\"cat\":\"branch-loop\","
        "\"ts\":100,\"dur\":7,\"args\":{\"write_cycle\":100,"
        "\"loop_delay\":7,\"consume_cycle\":107,\"tid\":0,"
        "\"fetch_stamp\":42}},\n"
        "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"load-kill\","
        "\"cat\":\"load-loop\",\"ts\":200,\"dur\":5,"
        "\"args\":{\"write_cycle\":200,\"loop_delay\":5,"
        "\"consume_cycle\":205,\"tid\":1,\"fetch_stamp\":43}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"swim, dra\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"branch-loop\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"load-loop\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"operand-loop\"}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":2,\"name\":\"operand-kill\","
        "\"cat\":\"operand-loop\",\"ts\":300,\"dur\":3,"
        "\"args\":{\"write_cycle\":300,\"loop_delay\":3,"
        "\"consume_cycle\":303,\"tid\":0,\"fetch_stamp\":44}}\n"
        "]}\n";
    EXPECT_EQ(chromeString(goldenRuns()), expected);
}

TEST(TraceSinks, CsvGolden)
{
    std::ostringstream os;
    trace::CsvTraceSink sink(os);
    trace::writeTrace(sink, goldenRuns());
    const std::string expected =
        "run,label,loop,event,tid,write_cycle,loop_delay,"
        "consume_cycle,fetch_stamp\n"
        "0,gcc 5_5,branch-loop,branch-resolution,0,100,7,107,42\n"
        "0,gcc 5_5,load-loop,load-kill,1,200,5,205,43\n"
        "1,\"swim, dra\",operand-loop,operand-kill,0,300,3,303,44\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(TraceSinks, EmptyTraceIsValidJson)
{
    const std::string out = chromeString({});
    EXPECT_EQ(out, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n]}\n");
}

TEST(TraceSinks, WriteTraceFileChoosesSinkByExtension)
{
    const std::string json = "loopsim_trace_test.json";
    const std::string csv = "loopsim_trace_test.csv";
    ASSERT_TRUE(trace::writeTraceFile(json, goldenRuns()));
    ASSERT_TRUE(trace::writeTraceFile(csv, goldenRuns()));

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        std::ostringstream buf;
        buf << in.rdbuf();
        return buf.str();
    };
    EXPECT_EQ(slurp(json), chromeString(goldenRuns()));
    EXPECT_NE(slurp(csv).find("run,label,loop"), std::string::npos);
    std::remove(json.c_str());
    std::remove(csv.c_str());

    EXPECT_FALSE(trace::writeTraceFile(
        "no-such-dir/loopsim_trace_test.json", goldenRuns()));
}

TEST(TraceCollector, ToggleBufferAndDrain)
{
    CollectionGuard guard(false);
    EXPECT_FALSE(trace::collectionActive());
    trace::setCollection(true);
    EXPECT_TRUE(trace::collectionActive());

    EXPECT_EQ(trace::collectedRunCount(), 0u);
    trace::RunTrace rt;
    rt.label = "probe";
    rt.events.push_back({trace::LoopEventType::LoadKill, 0, 1, 2, 3, 4});
    trace::collectRun(rt);
    trace::collectRun(std::move(rt));
    EXPECT_EQ(trace::collectedRunCount(), 2u);

    std::vector<trace::RunTrace> drained = trace::takeCollectedRuns();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].label, "probe");
    ASSERT_EQ(drained[0].events.size(), 1u);
    EXPECT_EQ(drained[0].events[0].consumeCycle, 3u);
    EXPECT_EQ(trace::collectedRunCount(), 0u);
}

TEST(CoreTrace, OffByDefaultAndCostsNothing)
{
    CollectionGuard guard(false);
    auto h = makeHarness(loadMissKernel());
    h.run();
    EXPECT_FALSE(h.core->loopTraceActive());
    EXPECT_TRUE(h.core->takeLoopTrace().empty());
    // The kill still happened; only the recording was off.
    EXPECT_GE(h.stat("loadMissEvents"), 1.0);
}

TEST(CoreTrace, BranchLoopEventsCarryHonestStamps)
{
    SKIP_WITHOUT_RECORDING();
    CollectionGuard guard(true);
    auto h = makeHarness(mispredictKernel());
    h.run();
    ASSERT_TRUE(h.core->loopTraceActive());
    std::vector<trace::LoopEvent> events = h.core->takeLoopTrace();
    EXPECT_TRUE(hasEvent(events, trace::LoopEventType::BranchResolution));
    expectHonestStamps(events);
    // take() drains: a second call returns nothing.
    EXPECT_TRUE(h.core->takeLoopTrace().empty());
}

TEST(CoreTrace, LoadLoopEventsCarryHonestStamps)
{
    SKIP_WITHOUT_RECORDING();
    CollectionGuard guard(true);
    auto h = makeHarness(loadMissKernel());
    h.run();
    std::vector<trace::LoopEvent> events = h.core->takeLoopTrace();
    EXPECT_TRUE(hasEvent(events, trace::LoopEventType::LoadKill));
    expectHonestStamps(events);
}

TEST(CoreTrace, OperandLoopEmitsKillAndPayload)
{
    SKIP_WITHOUT_RECORDING();
    CollectionGuard guard(true);
    auto h = makeHarness(operandMissKernel(), operandMissConfig());
    h.run();
    std::vector<trace::LoopEvent> events = h.core->takeLoopTrace();
    EXPECT_TRUE(hasEvent(events, trace::LoopEventType::OperandKill));
    EXPECT_TRUE(hasEvent(events, trace::LoopEventType::OperandPayload));
    expectHonestStamps(events);
}

TEST(LoopOccupancy, OpenLoopCyclesCountWhenLoopsAreInFlight)
{
    // Each kernel opens its loop for at least the loop's delay.
    auto hb = makeHarness(mispredictKernel());
    hb.run();
    EXPECT_GT(hb.stat("branchLoopOpenCycles"), 0.0);

    auto hl = makeHarness(loadMissKernel());
    hl.run();
    EXPECT_GT(hl.stat("loadLoopOpenCycles"), 0.0);

    auto ho = makeHarness(operandMissKernel(), operandMissConfig());
    ho.run();
    EXPECT_GT(ho.stat("operandLoopOpenCycles"), 0.0);
}

TEST(LoopOccupancy, QuietKernelOpensNoLoops)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 30; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 8)));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.stat("branchLoopOpenCycles"), 0.0);
    EXPECT_EQ(h.stat("operandLoopOpenCycles"), 0.0);
}

TEST(CampaignTrace, RunResultsCarryEventsIntoTheCollector)
{
    SKIP_WITHOUT_RECORDING();
    CollectionGuard guard(true);
    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc/base");
    plan.add(smallSpec("swim", operandMissConfig()), "swim/dra");

    std::vector<RunResult> results = runCampaign(plan, {}, 1);
    ASSERT_EQ(results.size(), 2u);
    // The executor moved each run's events into the collector.
    for (const RunResult &r : results)
        EXPECT_TRUE(r.loopEvents.empty());
    std::vector<trace::RunTrace> runs = trace::takeCollectedRuns();
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].label, "gcc/base");
    EXPECT_EQ(runs[1].label, "swim/dra");
    EXPECT_FALSE(runs[0].events.empty());
    EXPECT_FALSE(runs[1].events.empty());
    expectHonestStamps(runs[0].events);
    expectHonestStamps(runs[1].events);
}

TEST(CampaignTrace, AssembledTraceIdenticalAtJobs1And8)
{
    SKIP_WITHOUT_RECORDING();
    CollectionGuard guard(true);
    CampaignPlan plan;
    for (const char *w : {"gcc", "swim", "turb3d"}) {
        plan.add(smallSpec(w), std::string(w) + "/base");
        plan.add(smallSpec(w, operandMissConfig()),
                 std::string(w) + "/dra");
    }

    runCampaign(plan, {}, 1);
    const std::string serial = chromeString(trace::takeCollectedRuns());
    runCampaign(plan, {}, 8);
    const std::string parallel =
        chromeString(trace::takeCollectedRuns());

    EXPECT_FALSE(serial.empty());
    EXPECT_NE(serial.find("branch-resolution"), std::string::npos);
    EXPECT_NE(serial.find("load-kill"), std::string::npos);
    EXPECT_NE(serial.find("operand-kill"), std::string::npos);
    EXPECT_EQ(serial, parallel);
}

TEST(SimulatorKernel, SinglePassScanPreservesCycleCounts)
{
    /** Finishes after a fixed number of ticks. */
    struct Countdown : Clocked
    {
        explicit Countdown(Cycle n) : left(n) {}
        void tick(Cycle) override { if (left) --left; }
        bool done() const override { return left == 0; }
        std::string name() const override { return "countdown"; }
        Cycle left;
    };

    // The run lasts until the slowest component drains, regardless of
    // registration order (the early-exit scan must not starve later
    // components).
    Countdown fast(3), slow(9);
    Simulator sim;
    sim.add(&fast);
    sim.add(&slow);
    EXPECT_EQ(sim.run(100), 9u);
    EXPECT_FALSE(sim.hitCycleLimit());
    EXPECT_EQ(sim.now(), 9u);

    Countdown slow2(9), fast2(3);
    Simulator sim2;
    sim2.add(&slow2);
    sim2.add(&fast2);
    EXPECT_EQ(sim2.run(100), 9u);

    // Cycle-limit and zero-budget behaviour are unchanged.
    Countdown never(1000);
    Simulator sim3;
    sim3.add(&never);
    EXPECT_EQ(sim3.run(5), 5u);
    EXPECT_TRUE(sim3.hitCycleLimit());
    EXPECT_THROW(sim3.run(0), SimError);
}

TEST(SimulatorKernel, ProfilingCountsEveryTick)
{
    struct Countdown : Clocked
    {
        explicit Countdown(Cycle n, std::string label)
            : left(n), lbl(std::move(label)) {}
        void tick(Cycle) override { if (left) --left; }
        bool done() const override { return left == 0; }
        std::string name() const override { return lbl; }
        Cycle left;
        std::string lbl;
    };

    Countdown a(4, "a"), b(6, "b");
    Simulator sim;
    sim.add(&a);
    sim.add(&b);
    EXPECT_FALSE(sim.profilingEnabled());
    sim.enableProfiling(true);
    EXPECT_TRUE(sim.profilingEnabled());
    EXPECT_EQ(sim.run(100), 6u);

    std::vector<ComponentProfile> prof = sim.profile();
    ASSERT_EQ(prof.size(), 2u);
    EXPECT_EQ(prof[0].name, "a");
    EXPECT_EQ(prof[1].name, "b");
    // Every component ticks every simulated cycle.
    EXPECT_EQ(prof[0].ticks, 6u);
    EXPECT_EQ(prof[1].ticks, 6u);
    EXPECT_GE(prof[0].seconds, 0.0);
}

TEST(BenchCli, TraceFlagNeverMisreadAsOpsOrJobs)
{
    auto argv = [](std::vector<const char *> args) {
        return const_cast<char **>(args.data());
    };
    // --trace consumes its value: neither the op count nor the job
    // count may swallow the path (or a numeric-looking path).
    {
        std::vector<const char *> a{"bench", "--trace", "out.json"};
        EXPECT_EQ(benchutil::benchJobs(3, argv(a)), 0u);
        EXPECT_EQ(benchutil::benchOps(3, argv(a), 1234), 1234u);
        EXPECT_EQ(benchutil::benchTrace(3, argv(a)), "out.json");
    }
    {
        std::vector<const char *> a{"bench", "--trace", "out.json",
                                    "--jobs", "3", "8000"};
        EXPECT_EQ(benchutil::benchJobs(6, argv(a)), 3u);
        EXPECT_EQ(benchutil::benchOps(6, argv(a)), 8000u);
    }
    {
        std::vector<const char *> a{"bench", "--trace=o.csv",
                                    "--jobs=4"};
        EXPECT_EQ(benchutil::benchJobs(3, argv(a)), 4u);
        EXPECT_EQ(benchutil::benchTrace(3, argv(a)), "o.csv");
    }
    {
        // No --trace flag: falls back to the process trace path.
        trace::setTracePath("env.json");
        std::vector<const char *> a{"bench", "4000"};
        EXPECT_EQ(benchutil::benchTrace(2, argv(a)), "env.json");
        trace::setTracePath("");
        EXPECT_EQ(benchutil::benchTrace(2, argv(a)), "");
    }
}

TEST(TickProfiling, RunOnceReportsAMergedProfile)
{
    setTickProfiling(true);
    RunResult r = runOnce(smallSpec("gcc"));
    setTickProfiling(false);
    ASSERT_FALSE(r.failed);
    ASSERT_FALSE(r.tickProfile.empty());
    EXPECT_GT(r.tickProfile[0].ticks, 0u);
    EXPECT_FALSE(r.tickProfile[0].name.empty());

    // Off again: the next run carries no profile.
    EXPECT_TRUE(runOnce(smallSpec("gcc")).tickProfile.empty());
}
