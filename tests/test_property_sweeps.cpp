/**
 * @file
 * Property-based sweeps: every benchmark profile on a matrix of machine
 * configurations must drain completely, leak nothing, keep its
 * statistics self-consistent, and respect basic performance bounds.
 */

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/core.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

namespace
{

struct MachineVariant
{
    const char *label;
    void (*apply)(Config &);
};

void applyBase(Config &) {}

void
applyDra(Config &cfg)
{
    cfg.setBool("dra.enable", true);
}

void
applyLongPipe(Config &cfg)
{
    cfg.setUint("core.dec_iq", 9);
    cfg.setUint("core.iq_ex", 9);
    cfg.setUint("core.regfile_latency", 7);
}

void
applySmallWindow(Config &cfg)
{
    cfg.setUint("core.iq.entries", 32);
    cfg.setUint("core.rob.entries", 64);
}

void
applyStall(Config &cfg)
{
    cfg.set("core.load_recovery", "stall");
}

void
applyRefetch(Config &cfg)
{
    cfg.set("core.load_recovery", "refetch");
}

void
applyShadowKill(Config &cfg)
{
    cfg.setBool("core.kill_all_in_shadow", true);
}

void
applyPredictorMode(Config &cfg)
{
    cfg.set("branch.mode", "predictor");
    cfg.set("branch.predictor", "tournament");
}

void
applyNoWrongPath(Config &cfg)
{
    cfg.setBool("core.wrong_path", false);
}

constexpr MachineVariant variants[] = {
    {"base", applyBase},
    {"dra", applyDra},
    {"longpipe", applyLongPipe},
    {"smallwindow", applySmallWindow},
    {"stall", applyStall},
    {"refetch", applyRefetch},
    {"shadowkill", applyShadowKill},
    {"predictor", applyPredictorMode},
    {"nowrongpath", applyNoWrongPath},
};

using SweepParam = std::tuple<std::string, std::size_t>;

class CoreSweep : public ::testing::TestWithParam<SweepParam>
{
};

} // anonymous namespace

TEST_P(CoreSweep, DrainsCleanlyWithSaneStats)
{
    const auto &[bench, variant_idx] = GetParam();
    const MachineVariant &variant = variants[variant_idx];

    Config cfg;
    variant.apply(cfg);

    constexpr std::uint64_t ops = 12000;
    SyntheticTraceGenerator gen(spec95Profile(bench), 0, ops);
    std::vector<TraceSource *> srcs{&gen};
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(5000000);
    ASSERT_FALSE(sim.hitCycleLimit()) << bench << "/" << variant.label;

    // Everything retires; nothing leaks.
    EXPECT_EQ(core.retiredOps(), ops);
    core.checkQuiescent();

    // Performance bounds: positive and below the machine width.
    double ipc = core.ipc();
    EXPECT_GT(ipc, 0.01) << bench << "/" << variant.label;
    EXPECT_LE(ipc, 8.0) << bench << "/" << variant.label;

    const auto &sg = core.statGroup();
    // Issue accounting: every retired op issued at least once, and
    // first-issues (issued - reissued) cover at least the retired
    // stream (wrong-path instructions may add more).
    EXPECT_GE(sg.lookupValue("core.issued"),
              sg.lookupValue("core.retired"));
    EXPECT_GE(sg.lookupValue("core.issued") -
                  sg.lookupValue("core.reissued"),
              sg.lookupValue("core.retired"));
    // Squashed work never exceeds what was renamed.
    EXPECT_LE(sg.lookupValue("core.squashed"),
              sg.lookupValue("core.renamed"));

    // Stall mode never speculates on loads, so nothing can be killed.
    if (std::string(variant.label) == "stall" && !core.machine().dra) {
        EXPECT_EQ(sg.lookupValue("core.loadKilledOps"), 0.0);
    }

    // Operand-source accounting covers both sources of every valid
    // execution (including wrong-path and replayed executions), so it
    // is bounded by two reads per issue event.
    double operands = core.operandSourceStat().value();
    EXPECT_GT(operands, 0.5 * double(ops));
    EXPECT_LE(operands, 2.0 * sg.lookupValue("core.issued"));

    if (!core.machine().dra) {
        // The base machine cannot take operand misses (§2.2.1).
        EXPECT_EQ(sg.lookupValue("core.operandMissEvents"), 0.0);
        EXPECT_EQ(core.operandSourceStat().bin(0), 0.0); // no pre-reads
        EXPECT_EQ(core.operandSourceStat().bin(2), 0.0); // no CRC
    } else {
        // The DRA machine never reads the RF in the IQ-EX path.
        EXPECT_EQ(core.operandSourceStat().bin(3), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllMachines, CoreSweep,
    ::testing::Combine(::testing::Values("compress", "gcc", "go",
                                         "m88ksim", "apsi", "hydro2d",
                                         "mgrid", "su2cor", "swim",
                                         "turb3d"),
                       ::testing::Range<std::size_t>(0,
                                                     std::size(variants))),
    [](const ::testing::TestParamInfo<SweepParam> &pinfo) {
        return std::get<0>(pinfo.param) + "_" +
               variants[std::get<1>(pinfo.param)].label;
    });

namespace
{

class SmtSweep : public ::testing::TestWithParam<std::string>
{
};

} // anonymous namespace

TEST_P(SmtSweep, PairsDrainAndShareTheMachine)
{
    Workload w = resolveWorkload(GetParam());
    ASSERT_EQ(w.threads.size(), 2u);

    constexpr std::uint64_t per_thread = 8000;
    SyntheticTraceGenerator g0(w.threads[0], 0, per_thread);
    SyntheticTraceGenerator g1(w.threads[1], 1, per_thread);
    std::vector<TraceSource *> srcs{&g0, &g1};
    Config cfg;
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(5000000);
    ASSERT_FALSE(sim.hitCycleLimit());

    EXPECT_EQ(core.retiredOps(0), per_thread);
    EXPECT_EQ(core.retiredOps(1), per_thread);
    core.checkQuiescent();
}

INSTANTIATE_TEST_SUITE_P(PaperPairs, SmtSweep,
                         ::testing::Values("m88-comp", "go-su2cor",
                                           "apsi-swim"),
                         [](const ::testing::TestParamInfo<std::string>
                                &pinfo) {
                             std::string n = pinfo.param;
                             for (char &c : n)
                                 if (c == '-')
                                     c = '_';
                             return n;
                         });

TEST(CoreDeterminism, IdenticalRunsIdenticalCycles)
{
    auto run_once = [] {
        SyntheticTraceGenerator gen(spec95Profile("gcc"), 0, 15000);
        std::vector<TraceSource *> srcs{&gen};
        Config cfg;
        Core core(cfg, srcs);
        Simulator sim;
        sim.add(&core);
        sim.run(5000000);
        return core.cyclesRun();
    };
    Cycle a = run_once();
    Cycle b = run_once();
    EXPECT_EQ(a, b);
}

TEST(CoreDeterminism, DifferentSeedsDifferentTiming)
{
    auto run_with_seed = [](std::uint64_t seed) {
        BenchmarkProfile p = spec95Profile("gcc");
        p.seed = seed;
        SyntheticTraceGenerator gen(p, 0, 15000);
        std::vector<TraceSource *> srcs{&gen};
        Config cfg;
        Core core(cfg, srcs);
        Simulator sim;
        sim.add(&core);
        sim.run(5000000);
        return core.cyclesRun();
    };
    EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(CoreProperty, LongerPipelineNeverHelps)
{
    // Monotonicity of Figure 4, per benchmark: stretching the decode-
    // to-execute path cannot make the machine meaningfully faster.
    for (const char *bench : {"gcc", "swim", "m88ksim"}) {
        auto cycles_for = [&](unsigned dec_iq, unsigned iq_ex) {
            Config cfg;
            cfg.setUint("core.dec_iq", dec_iq);
            cfg.setUint("core.iq_ex", iq_ex);
            cfg.setUint("core.regfile_latency", iq_ex - 2);
            SyntheticTraceGenerator gen(spec95Profile(bench), 0, 20000);
            std::vector<TraceSource *> srcs{&gen};
            Core core(cfg, srcs);
            Simulator sim;
            sim.add(&core);
            sim.run(5000000);
            return core.cyclesRun();
        };
        Cycle short_pipe = cycles_for(3, 3);
        Cycle long_pipe = cycles_for(9, 9);
        EXPECT_GT(double(long_pipe), 0.99 * double(short_pipe)) << bench;
    }
}
