/**
 * @file
 * End-to-end tests of the DRA operand-delivery paths on hand-written
 * kernels: pre-read, forwarding, CRC, and the operand resolution loop
 * with payload recovery.
 */

#include <gtest/gtest.h>

#include "core_test_util.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

Config
draConfig()
{
    Config cfg;
    cfg.setBool("dra.enable", true);
    return cfg;
}

/** Bin indices of the operandSource stat vector. */
enum SrcBin
{
    binPreRead = 0,
    binForward = 1,
    binCrc = 2,
    binRegFile = 3,
    binPayload = 4,
    binMiss = 5,
};

} // anonymous namespace

TEST(CoreDra, CompletedOperandsArePreRead)
{
    // r1 is produced, written back (producer retires long before), and
    // then read by a much later consumer: a completed operand.
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    // Enough filler that the consumer is *renamed* (not just executed)
    // well after r1's value lands in the RF (~25 cycles at 8-wide
    // rename: >200 ops).
    for (int i = 0; i < 240; ++i)
        ops.push_back(alu(static_cast<ArchReg>(2 + i % 30)));
    ops.push_back(alu(40, 1)); // decoded long after r1 wrote back
    auto h = makeHarness(ops, draConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 242u);
    EXPECT_GE(h.core->operandSourceStat().bin(binPreRead), 1.0);
    EXPECT_EQ(h.stat("operandMissEvents"), 0.0);
}

TEST(CoreDra, TimelyOperandsForward)
{
    // Back-to-back chain: every operand comes from the forwarding
    // buffer.
    std::vector<MicroOp> ops;
    ops.push_back(alu(0));
    for (int i = 0; i < 50; ++i)
        ops.push_back(alu(0, 0));
    auto h = makeHarness(ops, draConfig());
    h.run();
    EXPECT_EQ(h.core->operandSourceStat().bin(binCrc), 0.0);
    EXPECT_GE(h.core->operandSourceStat().bin(binForward), 50.0);
    EXPECT_EQ(h.stat("operandMissEvents"), 0.0);
}

TEST(CoreDra, CachedOperandsHitTheCrc)
{
    // r1's consumer is decoded while r1's producer is in flight (so no
    // pre-read) but executes long after production (so no forwarding):
    // the CRC must deliver it.
    std::vector<MicroOp> ops;
    ops.push_back(alu(2));        // chain head
    ops.push_back(alu(1));        // producer of the cached operand
    for (int i = 0; i < 30; ++i) // delay chain
        ops.push_back(alu(2, 2));
    MicroOp consumer = alu(3, 2);
    consumer.src[1] = 1;          // reads r1 late
    ops.push_back(consumer);
    auto h = makeHarness(ops, draConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 33u);
    EXPECT_GE(h.core->operandSourceStat().bin(binCrc), 1.0);
    EXPECT_EQ(h.stat("operandMissEvents"), 0.0);
}

TEST(CoreDra, SaturatedConsumersMissAndRecover)
{
    // With a 1-bit insertion table, a second same-cluster consumer of
    // r1 whose first consumer forwarded drains the count to zero; the
    // value never enters the CRC and the late consumer takes an
    // operand miss, recovering through the payload path.
    Config cfg = draConfig();
    cfg.setUint("dra.insertion_bits", 1);
    cfg.setUint("core.clusters", 1); // force same-cluster consumers

    std::vector<MicroOp> ops;
    ops.push_back(alu(2)); // chain head
    ops.push_back(alu(1)); // producer P
    ops.push_back(alu(4, 1)); // early consumer: forwards, drains count
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(2, 2)); // delay chain
    MicroOp late = alu(3, 2);
    late.src[1] = 1; // late same-cluster consumer of r1
    ops.push_back(late);
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 44u);
    EXPECT_GE(h.stat("operandMissEvents"), 1.0);
    EXPECT_GE(h.core->operandSourceStat().bin(binMiss), 1.0);
    EXPECT_GT(h.stat("recoveryStallCycles"), 0.0);
}

TEST(CoreDra, MissWithTwoBitTableIsAvoided)
{
    // The identical kernel with the paper's 2-bit table does not miss:
    // the count survives the early consumer's forwarding hit.
    Config cfg = draConfig();
    cfg.setUint("dra.insertion_bits", 2);
    cfg.setUint("core.clusters", 1);

    std::vector<MicroOp> ops;
    ops.push_back(alu(2));
    ops.push_back(alu(1));
    ops.push_back(alu(4, 1));
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(2, 2));
    MicroOp late = alu(3, 2);
    late.src[1] = 1;
    ops.push_back(late);
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.stat("operandMissEvents"), 0.0);
    EXPECT_GE(h.core->operandSourceStat().bin(binCrc), 1.0);
}

TEST(CoreDra, MissKillsIssuedDependents)
{
    Config cfg = draConfig();
    cfg.setUint("dra.insertion_bits", 1);
    cfg.setUint("core.clusters", 1);

    std::vector<MicroOp> ops;
    ops.push_back(alu(2));
    ops.push_back(alu(1));
    ops.push_back(alu(4, 1));
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(2, 2));
    MicroOp late = alu(3, 2);
    late.src[1] = 1;
    ops.push_back(late);
    ops.push_back(alu(5, 3)); // dependent of the faulting instruction
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 45u);
    EXPECT_GE(h.stat("operandMissEvents"), 1.0);
    // The dependent issued on the faulter's speculative wakeup and was
    // reverted when the fault was signalled.
    EXPECT_GE(h.stat("loadKilledOps"), 1.0);
    EXPECT_GE(h.stat("reissued"), 1.0);
}

TEST(CoreDra, SmallCrcEvictsAndMisses)
{
    // A 1-entry CRC cannot hold the working set of late operands.
    Config cfg = draConfig();
    cfg.setUint("dra.crc.entries", 1);
    cfg.setUint("core.clusters", 1);

    std::vector<MicroOp> ops;
    ops.push_back(alu(10)); // chain head r10
    // Several values produced in flight and consumed late.
    for (ArchReg r = 1; r <= 4; ++r)
        ops.push_back(alu(r));
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(10, 10));
    for (ArchReg r = 1; r <= 4; ++r) {
        MicroOp c = alu(static_cast<ArchReg>(20 + r), 10);
        c.src[1] = r;
        ops.push_back(c);
    }
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_GE(h.stat("operandMissEvents"), 1.0);

    // The 16-entry design point handles the same kernel cleanly.
    Config big = draConfig();
    big.setUint("core.clusters", 1);
    auto h2 = makeHarness(ops, big);
    h2.run();
    EXPECT_EQ(h2.stat("operandMissEvents"), 0.0);
}

TEST(CoreDra, LruCrcCanBeSelected)
{
    Config cfg = draConfig();
    cfg.set("dra.crc.repl", "lru");
    std::vector<MicroOp> ops;
    for (int i = 0; i < 100; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 40)));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 100u);
}

TEST(CoreDra, GapStatisticIsSampled)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(alu(2));
    for (int i = 0; i < 20; ++i)
        ops.push_back(alu(3, 1, 2));
    auto h = makeHarness(ops, draConfig());
    h.run();
    EXPECT_GT(h.core->operandGapStat().samples(), 20u);
}

TEST(CoreDra, DraRunsUnderSmt)
{
    std::vector<MicroOp> t0;
    std::vector<MicroOp> t1;
    for (int i = 0; i < 150; ++i) {
        t0.push_back(alu(static_cast<ArchReg>(i % 30)));
        t1.push_back(alu(static_cast<ArchReg>(i % 20),
                         static_cast<ArchReg>((i + 1) % 20)));
    }
    auto h = makeSmtHarness(t0, t1, draConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(0), 150u);
    EXPECT_EQ(h.core->retiredOps(1), 150u);
}
