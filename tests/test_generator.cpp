/**
 * @file
 * Tests for the synthetic trace generator: determinism, calibration of
 * the emitted stream against its profile, dependence structure, and
 * wrong-path isolation. Statistical checks use wide tolerances so they
 * are robust to seed changes but still catch calibration regressions.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/logging.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace loopsim;

namespace
{

std::vector<MicroOp>
drain(SyntheticTraceGenerator &gen)
{
    std::vector<MicroOp> ops;
    MicroOp op;
    while (gen.next(op))
        ops.push_back(op);
    return ops;
}

} // anonymous namespace

TEST(Generator, ProducesExactlyRequestedLength)
{
    SyntheticTraceGenerator gen(spec95Profile("gcc"), 0, 1234);
    auto ops = drain(gen);
    EXPECT_EQ(ops.size(), 1234u);
    MicroOp op;
    EXPECT_FALSE(gen.next(op)); // stays exhausted
}

TEST(Generator, SequenceNumbersAreDense)
{
    SyntheticTraceGenerator gen(spec95Profile("swim"), 0, 500);
    auto ops = drain(gen);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        EXPECT_EQ(ops[i].seq, i);
        EXPECT_EQ(ops[i].tid, 0);
        EXPECT_FALSE(ops[i].wrongPath);
    }
}

TEST(Generator, ResetReproducesIdenticalStream)
{
    SyntheticTraceGenerator gen(spec95Profile("turb3d"), 0, 2000);
    auto first = drain(gen);
    gen.reset();
    auto second = drain(gen);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].pc, second[i].pc);
        EXPECT_EQ(first[i].opClass, second[i].opClass);
        EXPECT_EQ(first[i].src[0], second[i].src[0]);
        EXPECT_EQ(first[i].src[1], second[i].src[1]);
        EXPECT_EQ(first[i].dest, second[i].dest);
        EXPECT_EQ(first[i].effAddr, second[i].effAddr);
        EXPECT_EQ(first[i].taken, second[i].taken);
        EXPECT_EQ(first[i].forceMispredict, second[i].forceMispredict);
    }
}

TEST(Generator, WrongPathDoesNotPerturbMainStream)
{
    SyntheticTraceGenerator a(spec95Profile("gcc"), 0, 2000);
    SyntheticTraceGenerator b(spec95Profile("gcc"), 0, 2000);
    MicroOp op;
    MicroOp wp;
    for (int i = 0; i < 2000; ++i) {
        // Interleave wrong-path requests into b only.
        if (i % 7 == 0) {
            for (int j = 0; j < 5; ++j)
                b.nextWrongPath(wp, i);
        }
        MicroOp oa;
        MicroOp ob;
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.opClass, ob.opClass);
        EXPECT_EQ(oa.src[0], ob.src[0]);
        EXPECT_EQ(oa.effAddr, ob.effAddr);
        EXPECT_EQ(oa.forceMispredict, ob.forceMispredict);
    }
    (void)op;
}

TEST(Generator, WrongPathOpsAreMarked)
{
    SyntheticTraceGenerator gen(spec95Profile("gcc"), 2, 100);
    MicroOp wp;
    for (int i = 0; i < 50; ++i) {
        gen.nextWrongPath(wp, 10);
        EXPECT_TRUE(wp.wrongPath);
        EXPECT_EQ(wp.tid, 2);
        EXPECT_FALSE(wp.forceMispredict);
    }
}

TEST(Generator, WrongPathDeterministicPerResumePoint)
{
    SyntheticTraceGenerator a(spec95Profile("gcc"), 0, 100);
    SyntheticTraceGenerator b(spec95Profile("gcc"), 0, 100);
    for (int round = 0; round < 3; ++round) {
        MicroOp wa;
        MicroOp wb;
        for (int i = 0; i < 20; ++i) {
            a.nextWrongPath(wa, 55);
            b.nextWrongPath(wb, 55);
            EXPECT_EQ(wa.opClass, wb.opClass);
            EXPECT_EQ(wa.src[0], wb.src[0]);
        }
    }
}

TEST(Generator, StaticCodeIsStableAcrossLoopIterations)
{
    BenchmarkProfile p = spec95Profile("compress");
    p.codeLoopLength = 64;
    SyntheticTraceGenerator gen(p, 0, 64 * 10);
    auto ops = drain(gen);
    // Same pc => same op class on every loop iteration.
    std::map<Addr, OpClass> code;
    for (const auto &op : ops) {
        auto it = code.find(op.pc);
        if (it == code.end())
            code[op.pc] = op.opClass;
        else
            EXPECT_EQ(it->second, op.opClass) << "pc " << op.pc;
    }
    EXPECT_EQ(code.size(), 64u);
}

TEST(Generator, MixTracksProfile)
{
    BenchmarkProfile p = spec95Profile("gcc");
    SyntheticTraceGenerator gen(p, 0, 60000);
    auto ops = drain(gen);
    std::map<OpClass, int> counts;
    for (const auto &op : ops)
        ++counts[op.opClass];
    double n = static_cast<double>(ops.size());
    EXPECT_NEAR(counts[OpClass::Load] / n, p.loadFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::Store] / n, p.storeFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::BranchCond] / n, p.condBranchFrac, 0.02);
    EXPECT_NEAR(counts[OpClass::BranchUncond] / n, p.uncondBranchFrac,
                0.01);
}

TEST(Generator, MispredictRateTracksProfile)
{
    BenchmarkProfile p = spec95Profile("go");
    SyntheticTraceGenerator gen(p, 0, 80000);
    auto ops = drain(gen);
    int branches = 0;
    int mispredicts = 0;
    for (const auto &op : ops) {
        if (op.isCondBranch()) {
            ++branches;
            mispredicts += op.forceMispredict ? 1 : 0;
        }
    }
    ASSERT_GT(branches, 1000);
    EXPECT_NEAR(double(mispredicts) / branches, p.mispredictRate, 0.02);
}

TEST(Generator, AddressesLandInTheRightRegions)
{
    BenchmarkProfile p = spec95Profile("swim");
    SyntheticTraceGenerator gen(p, 0, 50000);
    auto ops = drain(gen);
    std::uint64_t mem_ops = 0;
    std::uint64_t far = 0;
    std::uint64_t l2set = 0;
    std::uint64_t hot = 0;
    for (const auto &op : ops) {
        if (!op.isLoad() && !op.isStore())
            continue;
        ++mem_ops;
        Addr region = (op.effAddr >> 28) & 0xf;
        if (region == 0x2)
            ++hot;
        else if (region == 0x3)
            ++l2set;
        else if (region == 0x4)
            ++far;
        else
            FAIL() << "address outside known regions";
        EXPECT_EQ(op.effAddr % 8, 0u) << "unaligned access";
    }
    ASSERT_GT(mem_ops, 10000u);
    EXPECT_NEAR(double(far) / mem_ops, p.farFrac, 0.01);
    EXPECT_NEAR(double(l2set) / mem_ops, p.l2ResidentFrac, 0.02);
    EXPECT_NEAR(double(hot) / mem_ops,
                1.0 - p.farFrac - p.l2ResidentFrac, 0.02);
}

TEST(Generator, ThreadsGetDisjointAddressSpaces)
{
    SyntheticTraceGenerator g0(spec95Profile("swim"), 0, 1000);
    SyntheticTraceGenerator g1(spec95Profile("swim"), 1, 1000);
    auto o0 = drain(g0);
    auto o1 = drain(g1);
    Addr hi0 = 0;
    Addr lo1 = ~Addr(0);
    for (const auto &op : o0)
        if (op.isLoad() || op.isStore())
            hi0 = std::max(hi0, op.effAddr);
    for (const auto &op : o1)
        if (op.isLoad() || op.isStore())
            lo1 = std::min(lo1, op.effAddr);
    EXPECT_LT(hi0, lo1);
}

TEST(Generator, SerialChainLinksToPreviousProducer)
{
    BenchmarkProfile p = spec95Profile("apsi");
    p.serialChainFrac = 1.0;
    p.hotSrcFrac = 0.0;
    p.longLivedSrcFrac = 0.0;
    SyntheticTraceGenerator gen(p, 0, 5000);
    auto ops = drain(gen);
    ArchReg last_dest = invalidArchReg;
    std::uint64_t chained = 0;
    std::uint64_t chances = 0;
    for (const auto &op : ops) {
        if (op.numSrcs() > 0 && last_dest != invalidArchReg &&
            !op.isStore()) {
            ++chances;
            chained += op.src[0] == last_dest ? 1 : 0;
        }
        if (op.hasDest())
            last_dest = op.dest;
    }
    ASSERT_GT(chances, 1000u);
    EXPECT_GT(double(chained) / chances, 0.95);
}

TEST(Generator, GlobalRegistersAreReadButRarelyWritten)
{
    BenchmarkProfile p = spec95Profile("gcc");
    SyntheticTraceGenerator gen(p, 0, 40000);
    auto ops = drain(gen);
    std::uint64_t global_reads = 0;
    std::uint64_t global_writes = 0;
    std::uint64_t src_count = 0;
    for (const auto &op : ops) {
        for (ArchReg s : op.src) {
            if (s == invalidArchReg)
                continue;
            ++src_count;
            if (s >= RegLayout::globalBase)
                ++global_reads;
        }
        if (op.hasDest() && op.dest >= RegLayout::globalBase)
            ++global_writes;
    }
    EXPECT_NEAR(double(global_reads) / src_count, p.longLivedSrcFrac,
                0.03);
    // Globals are rewritten roughly once per 8k instructions.
    EXPECT_LT(global_writes, 12u);
    EXPECT_GE(global_writes, 4u);
}

TEST(Generator, EmptyTraceRequestFatal)
{
    EXPECT_THROW(
        { SyntheticTraceGenerator gen(spec95Profile("gcc"), 0, 0); },
        FatalError);
}
