/**
 * @file
 * Helpers for driving the Core with hand-written kernels in tests.
 */

#ifndef LOOPSIM_TESTS_CORE_TEST_UTIL_HH
#define LOOPSIM_TESTS_CORE_TEST_UTIL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/core.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/programmed_source.hh"

namespace loopsim::testutil
{

/** A core plus everything needed to keep it alive and run it. */
struct CoreHarness
{
    std::vector<std::unique_ptr<ProgrammedTraceSource>> sources;
    std::unique_ptr<Core> core;
    Simulator sim;

    /** Run to completion; panics on livelock. */
    void
    run(Cycle max_cycles = 200000)
    {
        sim.add(core.get());
        sim.run(max_cycles);
        panic_if(sim.hitCycleLimit(), "test core run hit cycle limit");
        core->checkQuiescent();
    }

    double stat(const std::string &name) const
    {
        return core->statGroup().lookupValue("core." + name);
    }
};

/** Build a single-thread harness from a kernel and config overrides. */
inline CoreHarness
makeHarness(std::vector<MicroOp> ops, const Config &cfg = Config{})
{
    CoreHarness h;
    h.sources.push_back(
        std::make_unique<ProgrammedTraceSource>(std::move(ops)));
    std::vector<TraceSource *> srcs{h.sources[0].get()};
    h.core = std::make_unique<Core>(cfg, srcs);
    return h;
}

/** Build a two-thread harness. */
inline CoreHarness
makeSmtHarness(std::vector<MicroOp> t0, std::vector<MicroOp> t1,
               const Config &cfg = Config{})
{
    CoreHarness h;
    h.sources.push_back(
        std::make_unique<ProgrammedTraceSource>(std::move(t0)));
    h.sources.push_back(
        std::make_unique<ProgrammedTraceSource>(std::move(t1)));
    std::vector<TraceSource *> srcs{h.sources[0].get(),
                                    h.sources[1].get()};
    h.core = std::make_unique<Core>(cfg, srcs);
    return h;
}

} // namespace loopsim::testutil

#endif // LOOPSIM_TESTS_CORE_TEST_UTIL_HH
