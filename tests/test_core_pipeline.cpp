/**
 * @file
 * Behavioural tests of the core pipeline using hand-written kernels:
 * basic flow, dependence timing, issue width, and the three loose
 * loops (branch, load, operand) with their recovery mechanisms.
 */

#include <gtest/gtest.h>

#include "core_test_util.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

/** N fully independent single-cycle ops on distinct registers. */
std::vector<MicroOp>
independentAlus(int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 48)));
    return ops;
}

/** A serial chain r0 <- r0 of length n. */
std::vector<MicroOp>
aluChain(int n)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(0));
    for (int i = 1; i < n; ++i)
        ops.push_back(alu(0, 0));
    return ops;
}

/**
 * Warm the page and line at @p addr with a store, then delay register
 * @p base behind a short chain so a later load through @p base cannot
 * overtake the store (the model has no store-to-load ordering).
 */
std::vector<MicroOp>
warmThenDelay(ArchReg base, Addr addr, int delay = 12)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(base));
    ops.push_back(storeOp(base, base, addr));
    ops.push_back(alu(base, base));
    for (int i = 1; i < delay; ++i)
        ops.push_back(alu(base, base));
    return ops;
}

} // anonymous namespace

TEST(CorePipeline, SingleOpTraversesThePipe)
{
    auto h = makeHarness({alu(0)});
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 1u);
    // fetch(0) + front(4) + rename(2) + rest of DEC-IQ(3) + issue(+1)
    // + IQ-EX(5) + execute + confirm(issue+9): about 20 cycles.
    EXPECT_GE(h.core->cyclesRun(), 18u);
    EXPECT_LE(h.core->cyclesRun(), 24u);
}

TEST(CorePipeline, RetiresEverythingInOrder)
{
    auto h = makeHarness(independentAlus(500));
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 500u);
    EXPECT_EQ(h.stat("retired"), 500.0);
    EXPECT_EQ(h.stat("squashed"), 0.0);
}

TEST(CorePipeline, IssueWidthBoundsThroughput)
{
    // 800 independent ops on an 8-cluster machine: at most 8 per
    // cycle, so at least 100 issue cycles; with full pipelining the
    // total should be little more than that.
    auto h = makeHarness(independentAlus(800));
    h.run();
    EXPECT_GE(h.core->cyclesRun(), 100u + 15u);
    EXPECT_LE(h.core->cyclesRun(), 160u);
    EXPECT_GT(h.core->ipc(), 5.0);
}

TEST(CorePipeline, DependentChainRunsBackToBack)
{
    // A 100-op single-cycle chain issues 1 per cycle thanks to the
    // forwarding loop: ~100 cycles plus pipeline fill.
    auto h = makeHarness(aluChain(100));
    h.run();
    EXPECT_GE(h.core->cyclesRun(), 100u);
    EXPECT_LE(h.core->cyclesRun(), 140u);
}

TEST(CorePipeline, LongLatencyOpsStallDependents)
{
    // Chain of 20 FP ops (latency 4): ~80 cycles minimum.
    std::vector<MicroOp> ops;
    ops.push_back(fp(0, 1));
    for (int i = 1; i < 20; ++i)
        ops.push_back(fp(0, 0));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_GE(h.core->cyclesRun(), 20u * 4u);
    EXPECT_LE(h.core->cyclesRun(), 20u * 4u + 40u);
}

TEST(CorePipeline, NopsAndStoresRetire)
{
    std::vector<MicroOp> ops;
    ops.push_back(nop());
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x2000000));
    ops.push_back(nop());
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 4u);
}

TEST(CorePipeline, PipelineLengthStretchesTheChainLeadIn)
{
    // The same kernel on a longer DEC-IQ/IQ-EX pipe finishes later by
    // (roughly) the added stage count.
    Config longer;
    longer.setUint("core.dec_iq", 9);
    longer.setUint("core.iq_ex", 9);
    longer.setUint("core.regfile_latency", 7);

    auto short_h = makeHarness(aluChain(10));
    short_h.run();
    auto long_h = makeHarness(aluChain(10), longer);
    long_h.run();
    EXPECT_GE(long_h.core->cyclesRun(), short_h.core->cyclesRun() + 6);
}

TEST(CorePipeline, LoadHitFeedsConsumerQuickly)
{
    // Store warms the TLB page and the line; the load (held behind an
    // address chain so it cannot overtake the store) hits L1 and its
    // consumer issues under hit speculation with no reissue.
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    ops.push_back(load(2, 1, 0x5000000));
    ops.push_back(alu(3, 2));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 16u);
    EXPECT_EQ(h.stat("loadMissEvents"), 0.0);
    EXPECT_EQ(h.stat("reissued"), 0.0);
    // The warming store itself pays the cold dTLB trap; the load
    // must not.
    EXPECT_EQ(h.stat("tlbTraps"), 1.0);
}

TEST(CorePipeline, ColdLoadTrapsAndRecovers)
{
    // A cold access misses the dTLB: a memory trap squashes and
    // refetches the younger ops, and everything still retires.
    std::vector<MicroOp> ops;
    ops.push_back(load(2, invalidArchReg, 0x5000000));
    for (int i = 0; i < 20; ++i)
        ops.push_back(alu(static_cast<ArchReg>(3 + i % 10)));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 21u);
    EXPECT_EQ(h.stat("tlbTraps"), 1.0);
    EXPECT_GT(h.stat("squashed"), 0.0);
}

TEST(CorePipeline, LoadMissKillsAndReissuesTheDependencyTree)
{
    // Warm the page (one line) so the later load TLB-hits but
    // L1-misses (different line, same page).
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    ops.push_back(load(2, 1, 0x5000000 + 256));
    ops.push_back(alu(3, 2));     // direct consumer: issued speculatively
    ops.push_back(alu(4, 3));     // indirect consumer
    ops.push_back(alu(5));        // independent: must NOT be killed
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 18u);
    EXPECT_EQ(h.stat("tlbTraps"), 1.0); // only the warming store traps
    EXPECT_GE(h.stat("loadMissEvents"), 1.0);
    // Both consumers were killed and reissued.
    EXPECT_GE(h.stat("loadKilledOps"), 2.0);
    EXPECT_GE(h.stat("reissued"), 2.0);
}

TEST(CorePipeline, StallModeNeverSpeculatesOnLoads)
{
    Config cfg;
    cfg.set("core.load_recovery", "stall");
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    ops.push_back(alu(3, 2));
    ops.push_back(alu(4, 3));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 17u);
    EXPECT_EQ(h.stat("loadKilledOps"), 0.0);
    EXPECT_EQ(h.stat("reissued"), 0.0);
}

TEST(CorePipeline, StallModeIsSlowerOnHits)
{
    // With hit speculation a load-use chain runs near back-to-back; in
    // stall mode each load adds the notification round trip.
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    for (int i = 0; i < 20; ++i) {
        ops.push_back(load(2, 1, 0x5000000 + 8 * (i % 8)));
        ops.push_back(alu(1, 2));
    }
    auto spec = makeHarness(ops);
    spec.run();
    Config cfg;
    cfg.set("core.load_recovery", "stall");
    auto stall = makeHarness(ops, cfg);
    stall.run();
    EXPECT_GT(stall.core->cyclesRun(), spec.core->cyclesRun() + 40);
}

TEST(CorePipeline, RefetchModeRecoversFromTheFront)
{
    Config cfg;
    cfg.set("core.load_recovery", "refetch");
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    std::size_t before = ops.size();
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    for (int i = 0; i < 10; ++i)
        ops.push_back(alu(static_cast<ArchReg>(3 + i)));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), before + 11);
    EXPECT_GT(h.stat("squashed"), 0.0); // front-of-pipe recovery
}

TEST(CorePipeline, MispredictedBranchSquashesWrongPath)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i)));
    ops.push_back(branch(0, true, /*mispredict=*/true));
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(10 + i)));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 11u);
    EXPECT_EQ(h.stat("branchMispredicts"), 1.0);
    EXPECT_GT(h.stat("wrongPathFetched"), 0.0);
    EXPECT_GT(h.stat("squashed"), 0.0);
}

TEST(CorePipeline, MispredictWithoutWrongPathFetchStalls)
{
    Config cfg;
    cfg.setBool("core.wrong_path", false);
    std::vector<MicroOp> ops;
    ops.push_back(branch(invalidArchReg, true, true));
    for (int i = 0; i < 5; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i)));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 6u);
    EXPECT_EQ(h.stat("wrongPathFetched"), 0.0);
    EXPECT_EQ(h.stat("branchMispredicts"), 1.0);
}

TEST(CorePipeline, MispredictPenaltyScalesWithPipelineLength)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 40; ++i) {
        ops.push_back(branch(invalidArchReg, true, true));
        ops.push_back(alu(static_cast<ArchReg>(i % 40)));
    }
    auto short_h = makeHarness(ops);
    short_h.run();

    Config longer;
    longer.setUint("core.dec_iq", 9);
    longer.setUint("core.iq_ex", 9);
    longer.setUint("core.regfile_latency", 7);
    auto long_h = makeHarness(ops, longer);
    long_h.run();
    // 40 mispredicts x 8 added stages.
    EXPECT_GE(long_h.core->cyclesRun(),
              short_h.core->cyclesRun() + 40 * 6);
}

TEST(CorePipeline, CorrectlyPredictedBranchesAreFree)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < 50; ++i) {
        ops.push_back(branch(invalidArchReg, i % 2 == 0, false));
        ops.push_back(alu(static_cast<ArchReg>(i % 40)));
    }
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 100u);
    EXPECT_EQ(h.stat("branchMispredicts"), 0.0);
    EXPECT_EQ(h.stat("wrongPathFetched"), 0.0);
    EXPECT_EQ(h.stat("branches"), 50.0);
}

TEST(CorePipeline, KillAllInShadowKillsMore)
{
    std::vector<MicroOp> ops = warmThenDelay(1, 0x5000000);
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    ops.push_back(alu(3, 2)); // dependent
    // Load-independent ops that become ready together with the load,
    // so they issue inside its shadow.
    for (int i = 0; i < 12; ++i)
        ops.push_back(alu(static_cast<ArchReg>(10 + i), 1));
    auto tree = makeHarness(ops);
    tree.run();

    Config cfg;
    cfg.setBool("core.kill_all_in_shadow", true);
    auto shadow = makeHarness(ops, cfg);
    shadow.run();
    EXPECT_GT(shadow.stat("loadKilledOps"), tree.stat("loadKilledOps"));
    EXPECT_EQ(shadow.core->retiredOps(), tree.core->retiredOps());
}

TEST(CorePipeline, IqCapacityThrottlesTheWindow)
{
    // A long-latency producer with many dependents fills a small IQ;
    // execution still completes and the IQ never exceeds its size.
    Config cfg;
    cfg.setUint("core.iq.entries", 16);
    std::vector<MicroOp> ops;
    ops.push_back(fp(0, 1));
    for (int i = 0; i < 200; ++i)
        ops.push_back(alu(static_cast<ArchReg>(2 + i % 40), 0));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 201u);
    EXPECT_LE(h.stat("iqOccupancy"), 16.0);
}

TEST(CorePipeline, SmtThreadsBothComplete)
{
    auto h = makeSmtHarness(independentAlus(300), aluChain(100));
    h.run();
    EXPECT_EQ(h.core->retiredOps(0), 300u);
    EXPECT_EQ(h.core->retiredOps(1), 100u);
    EXPECT_EQ(h.core->numThreads(), 2u);
}

TEST(CorePipeline, SmtFasterThanSum)
{
    // Two chains overlap: the pair must finish well before the sum of
    // their solo runtimes.
    auto solo0 = makeHarness(aluChain(200));
    solo0.run();
    auto solo1 = makeHarness(aluChain(200));
    solo1.run();
    auto both = makeSmtHarness(aluChain(200), aluChain(200));
    both.run();
    EXPECT_LT(both.core->cyclesRun(),
              solo0.core->cyclesRun() + solo1.core->cyclesRun() - 50);
}

TEST(CorePipeline, RoundRobinFetchPolicyWorks)
{
    Config cfg;
    cfg.set("core.fetch_policy", "rr");
    auto h = makeSmtHarness(independentAlus(100), independentAlus(100),
                            cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 200u);
}

TEST(CorePipeline, MispredictInOneThreadDoesNotKillTheOther)
{
    std::vector<MicroOp> bad;
    for (int i = 0; i < 30; ++i) {
        bad.push_back(branch(invalidArchReg, true, true));
        bad.push_back(alu(static_cast<ArchReg>(i % 40)));
    }
    auto h = makeSmtHarness(bad, independentAlus(200));
    h.run();
    EXPECT_EQ(h.core->retiredOps(0), 60u);
    EXPECT_EQ(h.core->retiredOps(1), 200u);
}
