/**
 * @file
 * Tests for the experiment harness and report rendering: run
 * construction, pipeline helpers, determinism, figure drivers on small
 * inputs, and table/CSV output.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

TEST(Experiment, DefaultConfigIsTheBaseMachine)
{
    Config cfg = defaultFigureConfig();
    EXPECT_EQ(cfg.getUint("core.iq.entries", 0), 128u);
    EXPECT_EQ(cfg.getUint("core.dec_iq", 0), 5u);
    EXPECT_EQ(cfg.getUint("core.iq_ex", 0), 5u);
    EXPECT_EQ(cfg.getString("branch.mode", ""), "profile");
}

TEST(Experiment, SetPipelineDerivesRegfileLatency)
{
    Config cfg;
    setPipeline(cfg, 7, 5);
    EXPECT_EQ(cfg.getUint("core.dec_iq", 0), 7u);
    EXPECT_EQ(cfg.getUint("core.iq_ex", 0), 5u);
    EXPECT_EQ(cfg.getUint("core.regfile_latency", 0), 3u);
    EXPECT_THROW(setPipeline(cfg, 3, 2), FatalError);
}

TEST(Experiment, DraAndBasePipelineHelpers)
{
    Config base;
    setBasePipeline(base, 5);
    EXPECT_FALSE(base.getBool("dra.enable", true));
    EXPECT_EQ(base.getUint("core.iq_ex", 0), 7u);

    Config dra;
    setDraPipeline(dra, 5);
    EXPECT_TRUE(dra.getBool("dra.enable", false));
}

TEST(Experiment, RunOnceProducesConsistentResult)
{
    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 15000;
    spec.warmupOps = 5000;
    RunResult r = runOnce(spec);

    EXPECT_EQ(r.workloadLabel, "m88");
    EXPECT_EQ(r.pipeLabel, "5_5");
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_LE(r.retired, 15000u);
    EXPECT_GT(r.retired, 10000u);

    // Operand fractions form a distribution.
    double sum = 0.0;
    for (double f : r.operandSourceFractions)
        sum += f;
    EXPECT_NEAR(sum, 1.0, 1e-9);

    // The gap CDF is monotone in [0,1].
    ASSERT_EQ(r.gapCdf.size(), 129u);
    for (std::size_t i = 1; i < r.gapCdf.size(); ++i)
        EXPECT_GE(r.gapCdf[i], r.gapCdf[i - 1]);
    EXPECT_LE(r.gapCdf.back(), 1.0);

    EXPECT_GT(r.scalar("retired"), 0.0);
    EXPECT_THROW(r.scalar("not-a-stat"), FatalError);
}

TEST(Experiment, RunOnceIsDeterministic)
{
    RunSpec spec;
    spec.workload = resolveWorkload("gcc");
    spec.totalOps = 10000;
    spec.warmupOps = 2000;
    RunResult a = runOnce(spec);
    RunResult b = runOnce(spec);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Experiment, SpeedupIsAnIpcRatio)
{
    RunResult fast;
    fast.ipc = 2.0;
    RunResult slow;
    slow.ipc = 1.0;
    EXPECT_DOUBLE_EQ(speedup(fast, slow), 2.0);
    RunResult zero;
    EXPECT_THROW(speedup(fast, zero), FatalError);
}

TEST(Experiment, SmtRunSplitsOps)
{
    RunSpec spec;
    spec.workload = resolveWorkload("m88-comp");
    spec.totalOps = 12000;
    spec.warmupOps = 4000;
    RunResult r = runOnce(spec);
    EXPECT_GT(r.ipc, 0.1);
    EXPECT_LE(r.retired, 12000u);
}

TEST(Figures, Figure6ShapeMatchesThePaper)
{
    FigureData fig = figure6(40000, {"turb3d"});
    ASSERT_EQ(fig.columns.size(), 1u);
    ASSERT_EQ(fig.rowLabels.size(), 65u);
    const auto &cdf = fig.columns[0].values;
    // Monotone, ends high.
    for (std::size_t i = 1; i < cdf.size(); ++i)
        EXPECT_GE(cdf[i], cdf[i - 1]);
    // The paper's headline observations: the 9-cycle forwarding buffer
    // covers only about half of all instructions, and a quarter still
    // wait at 25 cycles.
    EXPECT_GT(cdf[9], 0.40);
    EXPECT_LT(cdf[9], 0.80);
    EXPECT_LT(cdf[25], 0.90);
}

TEST(Figures, AblationDriversRunOnTinyInputs)
{
    std::vector<std::string> w{"m88ksim"};
    FigureData recovery = ablationLoadRecovery(6000, w);
    EXPECT_EQ(recovery.columns.size(), 3u);
    ASSERT_EQ(recovery.columns[0].values.size(), 1u);
    EXPECT_DOUBLE_EQ(recovery.columns[0].values[0], 1.0); // self-relative

    FigureData shadow = ablationKillShadow(6000, w);
    EXPECT_EQ(shadow.columns.size(), 2u);

    FigureData bits = ablationInsertionBits(6000, w);
    EXPECT_EQ(bits.columns.size(), 3u);
    for (const auto &col : bits.columns)
        EXPECT_LE(col.values[0], 1.0);
}

TEST(Report, PrintFigureAlignsAndFormats)
{
    FigureData fig;
    fig.title = "A Test Figure";
    fig.valueUnit = "speedup";
    fig.rowLabels = {"alpha", "beta"};
    fig.columns.push_back(Series{"c1", {1.0, 0.954}});
    fig.columns.push_back(Series{"c2", {1.104, 0.5}});

    std::ostringstream os;
    printFigure(os, fig);
    std::string text = os.str();
    EXPECT_NE(text.find("A Test Figure"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("95.4%"), std::string::npos);
    EXPECT_NE(text.find("110.4%"), std::string::npos);

    std::ostringstream os2;
    printFigure(os2, fig, ValueFormat::Ratio);
    EXPECT_NE(os2.str().find("0.954"), std::string::npos);
}

TEST(Report, PrintFigureHandlesShortColumns)
{
    FigureData fig;
    fig.title = "Ragged";
    fig.rowLabels = {"a", "b"};
    fig.columns.push_back(Series{"c1", {1.0}}); // missing row b
    std::ostringstream os;
    printFigure(os, fig);
    EXPECT_NE(os.str().find("-"), std::string::npos);
}

TEST(Report, CsvOutput)
{
    FigureData fig;
    fig.title = "CSV";
    fig.rowLabels = {"r1"};
    fig.columns.push_back(Series{"a", {0.25}});
    fig.columns.push_back(Series{"b", {0.5}});
    std::ostringstream os;
    printCsv(os, fig);
    EXPECT_EQ(os.str(), "label,a,b\nr1,0.250000,0.500000\n");
}
