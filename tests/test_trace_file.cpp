/**
 * @file
 * Tests for the on-disk trace format.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "base/logging.hh"
#include "workload/generator.hh"
#include "workload/trace_file.hh"

using namespace loopsim;

namespace
{

/** Temp-file path helper; removed in the destructor. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {}
    ~TempPath() { std::remove(path.c_str()); }
    const std::string path;
};

} // anonymous namespace

TEST(TraceFile, RoundTripPreservesEverything)
{
    TempPath tmp("roundtrip.ltrc");
    SyntheticTraceGenerator gen(spec95Profile("turb3d"), 1, 3000);

    std::vector<MicroOp> original;
    {
        TraceWriter writer(tmp.path);
        MicroOp op;
        while (gen.next(op)) {
            writer.append(op);
            original.push_back(op);
        }
        writer.finish();
        EXPECT_EQ(writer.written(), 3000u);
    }

    TraceReader reader(tmp.path);
    EXPECT_EQ(reader.length(), 3000u);
    MicroOp op;
    for (const MicroOp &want : original) {
        ASSERT_TRUE(reader.next(op));
        EXPECT_EQ(op.seq, want.seq);
        EXPECT_EQ(op.tid, want.tid);
        EXPECT_EQ(op.pc, want.pc);
        EXPECT_EQ(op.opClass, want.opClass);
        EXPECT_EQ(op.src[0], want.src[0]);
        EXPECT_EQ(op.src[1], want.src[1]);
        EXPECT_EQ(op.dest, want.dest);
        EXPECT_EQ(op.effAddr, want.effAddr);
        EXPECT_EQ(op.target, want.target);
        EXPECT_EQ(op.taken, want.taken);
        EXPECT_EQ(op.forceMispredict, want.forceMispredict);
    }
    EXPECT_FALSE(reader.next(op));
}

TEST(TraceFile, ResetRestartsTheStream)
{
    TempPath tmp("reset.ltrc");
    {
        TraceWriter writer(tmp.path);
        for (int i = 0; i < 10; ++i) {
            MicroOp op;
            op.seq = i;
            op.pc = 100 + i;
            writer.append(op);
        }
    } // destructor finishes

    TraceReader reader(tmp.path);
    MicroOp op;
    ASSERT_TRUE(reader.next(op));
    EXPECT_EQ(op.pc, 100u);
    while (reader.next(op)) {
    }
    reader.reset();
    ASSERT_TRUE(reader.next(op));
    EXPECT_EQ(op.pc, 100u);
}

TEST(TraceFile, MissingFileFatal)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/x.ltrc"), FatalError);
}

TEST(TraceFile, BadMagicFatal)
{
    TempPath tmp("badmagic.ltrc");
    {
        std::FILE *f = std::fopen(tmp.path.c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fwrite("NOPE", 1, 4, f);
        std::uint32_t v = 1;
        std::uint64_t n = 0;
        std::fwrite(&v, sizeof v, 1, f);
        std::fwrite(&n, sizeof n, 1, f);
        std::fclose(f);
    }
    EXPECT_THROW(TraceReader(tmp.path), FatalError);
}

TEST(TraceFile, TruncatedBodyFatal)
{
    TempPath tmp("truncated.ltrc");
    {
        TraceWriter writer(tmp.path);
        MicroOp op;
        writer.append(op);
        writer.append(op);
        writer.finish();
    }
    // Chop off the last record's tail.
    {
        std::FILE *f = std::fopen(tmp.path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        std::fseek(f, 0, SEEK_END);
        long len = std::ftell(f);
        std::fclose(f);
        ASSERT_EQ(truncate(tmp.path.c_str(), len - 8), 0);
    }
    TraceReader reader(tmp.path);
    MicroOp op;
    EXPECT_TRUE(reader.next(op));
    EXPECT_THROW(reader.next(op), FatalError);
}

TEST(TraceFile, ReaderIsATraceSource)
{
    TempPath tmp("source.ltrc");
    {
        TraceWriter writer(tmp.path);
        MicroOp op;
        op.opClass = OpClass::IntAlu;
        writer.append(op);
    }
    TraceReader reader(tmp.path);
    TraceSource &src = reader;
    MicroOp op;
    EXPECT_TRUE(src.next(op));
    // Wrong-path default implementation provides filler ops.
    src.nextWrongPath(op, 0);
    EXPECT_TRUE(op.wrongPath);
}
