/**
 * @file
 * End-to-end tests of predictor-mode branch handling: real direction
 * predictors + BTB drive the wrong-path/squash machinery instead of
 * the profile's calibrated tags.
 */

#include <gtest/gtest.h>

#include "core_test_util.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

Config
predictorConfig(const std::string &kind = "tournament")
{
    Config cfg;
    cfg.set("branch.mode", "predictor");
    cfg.set("branch.predictor", kind);
    return cfg;
}

/** n repetitions of a biased branch at a stable pc + filler. */
std::vector<MicroOp>
biasedBranchKernel(int n, bool taken)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i) {
        MicroOp b = branch(invalidArchReg, taken);
        b.pc = 0x4000;
        b.target = 0x5000;
        b.forceMispredict = false; // ignored in predictor mode
        ops.push_back(b);
        ops.push_back(alu(static_cast<ArchReg>(i % 40)));
    }
    return ops;
}

} // anonymous namespace

TEST(PredictorMode, LearnsABiasedBranch)
{
    // A always-not-taken branch: after warmup, essentially no
    // mispredicts (not-taken needs no BTB entry).
    auto h = makeHarness(biasedBranchKernel(300, false),
                         predictorConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 600u);
    EXPECT_LT(h.stat("branchMispredicts"), 15.0);
}

TEST(PredictorMode, TakenBranchesNeedTheBtb)
{
    // Always-taken: first encounters miss in the BTB (a target
    // mispredict), then the entry sticks and mispredicts stop.
    auto h = makeHarness(biasedBranchKernel(300, true),
                         predictorConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 600u);
    EXPECT_GE(h.stat("branchMispredicts"), 1.0); // the cold BTB miss
    EXPECT_LT(h.stat("branchMispredicts"), 20.0);
}

TEST(PredictorMode, AlternatingPatternIsLearnable)
{
    // T,N,T,N... at one pc: history-based predictors learn it; the
    // mispredict rate must end far below 50%.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 600; ++i) {
        MicroOp b = branch(invalidArchReg, i % 2 == 0);
        b.pc = 0x4000;
        b.target = 0x5000;
        ops.push_back(b);
    }
    auto h = makeHarness(ops, predictorConfig());
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 600u);
    EXPECT_LT(h.stat("branchMispredicts"), 150.0);
}

TEST(PredictorMode, AllPredictorKindsRunProfiles)
{
    for (const char *kind : {"bimodal", "gshare", "tournament"}) {
        Config cfg = predictorConfig(kind);
        SyntheticTraceGenerator gen(spec95Profile("compress"), 0, 60000);
        std::vector<TraceSource *> srcs{&gen};
        Core core(cfg, srcs);
        Simulator sim;
        sim.add(&core);
        // Warm the predictors and BTB (every static site needs a few
        // visits), then measure the steady-state mispredict rate.
        while (core.retiredOps() < 30000 && !core.done())
            sim.run(1024);
        core.beginMeasurement();
        sim.run(5000000);
        ASSERT_FALSE(sim.hitCycleLimit()) << kind;
        EXPECT_EQ(core.retiredOps(), 60000u) << kind;
        core.checkQuiescent();
        // Warm real predictors on the biased synthetic branch
        // population must do much better than chance.
        double mr = core.statGroup().lookupValue(
                        "core.branchMispredicts") /
                    std::max(1.0, core.statGroup().lookupValue(
                                      "core.branches"));
        EXPECT_LT(mr, 0.35) << kind;
    }
}

TEST(PredictorMode, TournamentBeatsBimodalOnProfiles)
{
    auto mispredicts = [](const char *kind) {
        Config cfg = predictorConfig(kind);
        SyntheticTraceGenerator gen(spec95Profile("gcc"), 0, 20000);
        std::vector<TraceSource *> srcs{&gen};
        Core core(cfg, srcs);
        Simulator sim;
        sim.add(&core);
        sim.run(5000000);
        return core.statGroup().lookupValue("core.branchMispredicts");
    };
    // Allow slack: the tournament needs warmup, but should not be
    // meaningfully worse than plain bimodal.
    EXPECT_LT(mispredicts("tournament"), mispredicts("bimodal") * 1.1);
}
