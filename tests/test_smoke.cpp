#include <gtest/gtest.h>

#include "harness/experiment.hh"

using namespace loopsim;

TEST(Smoke, BaseMachineRunsSwim)
{
    RunSpec spec;
    spec.workload = resolveWorkload("swim");
    spec.totalOps = 20000;
    spec.warmupOps = 10000;
    RunResult r = runOnce(spec);
    // The warmup boundary lands mid-chunk, so the measured count can
    // undershoot by up to one sampling chunk.
    EXPECT_LE(r.retired, 20000u);
    EXPECT_GT(r.retired, 14000u);
    EXPECT_GT(r.ipc, 0.1);
}
