/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "base/logging.hh"
#include "stats/statistics.hh"

using namespace loopsim;
using namespace loopsim::stats;

TEST(ScalarStat, AccumulatesAndResets)
{
    StatGroup sg;
    Scalar &s = sg.newScalar("count", "a counter");
    ++s;
    s += 4.5;
    EXPECT_DOUBLE_EQ(s.value(), 5.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(AverageStat, MeanOfSamples)
{
    StatGroup sg;
    Average &a = sg.newAverage("avg", "an average");
    EXPECT_DOUBLE_EQ(a.value(), 0.0); // no samples
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.value(), 4.0);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_DOUBLE_EQ(a.total(), 12.0);
    a.reset();
    EXPECT_EQ(a.samples(), 0u);
}

TEST(VectorStat, BinsAndFractions)
{
    StatGroup sg;
    Vector &v = sg.newVector("v", "bins", {"a", "b", "c"});
    v.add(0, 1.0);
    v.add(1, 3.0);
    v.add(1);
    EXPECT_DOUBLE_EQ(v.bin(0), 1.0);
    EXPECT_DOUBLE_EQ(v.bin(1), 4.0);
    EXPECT_DOUBLE_EQ(v.bin(2), 0.0);
    EXPECT_DOUBLE_EQ(v.value(), 5.0);
    EXPECT_DOUBLE_EQ(v.fraction(1), 0.8);
    EXPECT_EQ(v.binName(2), "c");
    EXPECT_THROW(v.add(3), PanicError);
    v.reset();
    EXPECT_DOUBLE_EQ(v.value(), 0.0);
    EXPECT_DOUBLE_EQ(v.fraction(0), 0.0); // no division by zero
}

TEST(VectorStat, EmptyBinListPanics)
{
    StatGroup sg;
    EXPECT_THROW(sg.newVector("bad", "x", {}), PanicError);
}

TEST(DistributionStat, BucketsAndMoments)
{
    StatGroup sg;
    Distribution &d = sg.newDistribution("d", "dist", 0, 10, 2);
    EXPECT_EQ(d.numBuckets(), 5u);
    d.sample(0);
    d.sample(1);
    d.sample(5);
    d.sample(9.5);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_EQ(d.bucketCount(0), 2u); // [0,2)
    EXPECT_EQ(d.bucketCount(2), 1u); // [4,6)
    EXPECT_EQ(d.bucketCount(4), 1u); // [8,10)
    EXPECT_DOUBLE_EQ(d.minSample(), 0.0);
    EXPECT_DOUBLE_EQ(d.maxSample(), 9.5);
    EXPECT_NEAR(d.mean(), 15.5 / 4, 1e-12);
}

TEST(DistributionStat, UnderAndOverflow)
{
    StatGroup sg;
    Distribution &d = sg.newDistribution("d", "dist", 10, 20, 5);
    d.sample(5);
    d.sample(25);
    d.sample(12);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 1u);
    EXPECT_EQ(d.samples(), 3u);
}

TEST(DistributionStat, WeightedSamples)
{
    StatGroup sg;
    Distribution &d = sg.newDistribution("d", "dist", 0, 10, 1);
    d.sample(3, 7);
    EXPECT_EQ(d.samples(), 7u);
    EXPECT_EQ(d.bucketCount(3), 7u);
}

TEST(DistributionStat, Cdf)
{
    StatGroup sg;
    Distribution &d = sg.newDistribution("d", "dist", 0, 100, 1);
    for (int i = 0; i < 100; ++i)
        d.sample(i);
    EXPECT_DOUBLE_EQ(d.cdf(-1), 0.0);
    EXPECT_NEAR(d.cdf(0), 0.01, 1e-9);
    EXPECT_NEAR(d.cdf(49), 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(d.cdf(99), 1.0);
    EXPECT_DOUBLE_EQ(d.cdf(1000), 1.0);
}

TEST(DistributionStat, CdfEmptyIsZero)
{
    StatGroup sg;
    Distribution &d = sg.newDistribution("d", "dist", 0, 10, 1);
    EXPECT_DOUBLE_EQ(d.cdf(5), 0.0);
}

TEST(DistributionStat, BadParamsPanic)
{
    StatGroup sg;
    EXPECT_THROW(sg.newDistribution("a", "x", 0, 10, 0), PanicError);
    EXPECT_THROW(sg.newDistribution("b", "x", 10, 10, 1), PanicError);
}

TEST(FormulaStat, ComputesOnDemand)
{
    StatGroup sg;
    Scalar &num = sg.newScalar("num", "numerator");
    Scalar &den = sg.newScalar("den", "denominator");
    Formula &f = sg.newFormula("ratio", "num/den", [&] {
        return den.value() > 0 ? num.value() / den.value() : 0.0;
    });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    num += 6;
    den += 3;
    EXPECT_DOUBLE_EQ(f.value(), 2.0);
}

TEST(StatGroup, NamesAndLookup)
{
    StatGroup sg("core");
    Scalar &s = sg.newScalar("cycles", "c");
    s += 10;
    EXPECT_EQ(s.name(), "core.cycles");
    EXPECT_DOUBLE_EQ(sg.lookupValue("cycles"), 10.0);
    EXPECT_DOUBLE_EQ(sg.lookupValue("core.cycles"), 10.0);
    EXPECT_EQ(sg.find("nope"), nullptr);
    EXPECT_THROW(sg.lookupValue("nope"), FatalError);
}

TEST(StatGroup, DuplicateRegistrationFatal)
{
    StatGroup sg;
    sg.newScalar("x", "first");
    EXPECT_THROW(sg.newScalar("x", "second"), FatalError);
}

TEST(StatGroup, ResetAllAndDump)
{
    StatGroup sg("g");
    Scalar &s = sg.newScalar("s", "scalar stat");
    Average &a = sg.newAverage("a", "average stat");
    s += 5;
    a.sample(3);
    sg.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(a.samples(), 0u);

    s += 2;
    std::ostringstream os;
    sg.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("g.s"), std::string::npos);
    EXPECT_NE(text.find("scalar stat"), std::string::npos);
    EXPECT_NE(text.find("g.a"), std::string::npos);
}
