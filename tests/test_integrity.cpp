/**
 * @file
 * Tests for the simulation integrity layer: the invariant watchdog
 * (synthetic wedges, structural sweeps), deterministic fault
 * injection, and the fail-soft experiment/figure harness.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "base/logging.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "integrity/fault_injector.hh"
#include "integrity/sim_error.hh"
#include "integrity/watchdog.hh"
#include "sim/simulator.hh"

using namespace loopsim;

namespace
{

/**
 * A component that holds the simulation open but never retires:
 * programmable probe state for exercising the watchdog's culprit
 * heuristics and structural sweeps without a real core.
 */
class WedgedComponent : public Clocked, public IntegrityProbe
{
  public:
    void tick(Cycle) override {}
    bool done() const override { return false; }
    std::string name() const override { return "wedge"; }

    IntegritySample
    integritySample(Cycle now) const override
    {
        IntegritySample s;
        s.cycle = now;
        s.retired = retired;
        s.issued = retired;
        s.inFlight = inFlight;
        s.windowCapacity = 256;
        s.iqOccupancy = iqOccupancy;
        s.iqCapacity = 128;
        s.renamePipe = 0;
        s.pendingEvents = pendingEvents;
        s.frontendWork = 0;
        s.done = false;
        return s;
    }

    std::vector<std::string>
    structuralViolations() const override
    {
        return violations;
    }

    void
    dumpState(std::ostream &os) const override
    {
        os << "wedge state dump\n";
    }

    std::string probeName() const override { return "wedge"; }

    std::uint64_t retired = 0;
    std::size_t inFlight = 4;
    std::size_t iqOccupancy = 4;
    std::size_t pendingEvents = 0;
    std::vector<std::string> violations;
};

Config
faultConfig(double rate, const char *key)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setDouble(key, rate);
    return cfg;
}

} // namespace

TEST(Watchdog, ConfigFromKeys)
{
    Config cfg;
    cfg.setUint("integrity.watchdog.window", 5000);
    cfg.setUint("integrity.watchdog.history", 16);
    cfg.setBool("integrity.checks.enable", true);
    cfg.setUint("integrity.checks.interval", 8);
    WatchdogConfig wc = WatchdogConfig::fromConfig(cfg);
    EXPECT_EQ(wc.window, 5000u);
    EXPECT_EQ(wc.historyDepth, 16u);
    EXPECT_TRUE(wc.structuralChecks);
    EXPECT_EQ(wc.checkInterval, 8u);

    Config bad;
    bad.setUint("integrity.watchdog.window", 0);
    EXPECT_THROW(WatchdogConfig::fromConfig(bad), FatalError);
}

TEST(Watchdog, DetectsSyntheticDeadlockWithDiagnostic)
{
    WedgedComponent wedge;
    WatchdogConfig wc;
    wc.window = 500;
    wc.historyDepth = 8;
    InvariantWatchdog dog(wedge, wc);

    Simulator sim;
    sim.add(&wedge);
    sim.add(&dog);

    try {
        sim.run(100000);
        FAIL() << "watchdog did not trip on a wedged component";
    } catch (const WatchdogError &err) {
        const WatchdogReport &rep = err.report();
        EXPECT_EQ(rep.component, "wedge");
        EXPECT_EQ(rep.window, 500u);
        EXPECT_GE(rep.now - rep.lastProgressCycle, 500u);
        // 4 IQ entries, no events in flight: the heuristic must point
        // at a lost wakeup/feedback signal.
        EXPECT_NE(rep.culprit.find("lost"), std::string::npos)
            << rep.culprit;
        EXPECT_FALSE(rep.timeline.empty());
        EXPECT_NE(rep.stateDump.find("wedge state dump"),
                  std::string::npos);
        // The rendered report carries the headline and the timeline.
        std::string text = err.what();
        EXPECT_NE(text.find("no retire progress"), std::string::npos);
        EXPECT_NE(text.find("timeline"), std::string::npos);
        EXPECT_NE(text.find("suspected stall"), std::string::npos);
    }
}

TEST(Watchdog, CulpritNamesTheStalledStructure)
{
    WedgedComponent wedge;
    WatchdogConfig wc;
    wc.window = 100;
    InvariantWatchdog dog(wedge, wc);

    // Empty machine with a wedged front end.
    wedge.inFlight = 0;
    wedge.iqOccupancy = 0;
    WatchdogReport rep = dog.buildReport(0, {});
    EXPECT_NE(rep.culprit.find("front end"), std::string::npos);

    // Full IQ: capacity-pressure deadlock.
    wedge.inFlight = 130;
    wedge.iqOccupancy = 128;
    wedge.pendingEvents = 3;
    rep = dog.buildReport(0, {});
    EXPECT_NE(rep.culprit.find("IQ full"), std::string::npos);

    // Full window, IQ drained: retire blocked at the ROB head.
    wedge.inFlight = 256;
    wedge.iqOccupancy = 1;
    rep = dog.buildReport(0, {});
    EXPECT_NE(rep.culprit.find("window full"), std::string::npos);
}

TEST(Watchdog, QuietWhileProgressing)
{
    WedgedComponent wedge;
    WatchdogConfig wc;
    wc.window = 100;
    InvariantWatchdog dog(wedge, wc);

    Simulator sim;
    sim.add(&wedge);
    sim.add(&dog);
    // Retire one op per 50-cycle chunk: always inside the window.
    for (int i = 0; i < 40; ++i) {
        wedge.retired += 1;
        sim.run(50);
    }
    SUCCEED();
}

TEST(Watchdog, StructuralSweepTripsOnViolation)
{
    WedgedComponent wedge;
    wedge.violations = {"rob out of program order: stamp 7 after 9"};
    WatchdogConfig wc;
    wc.window = 1000000; // progress check must not be the trigger
    wc.structuralChecks = true;
    wc.checkInterval = 4;
    InvariantWatchdog dog(wedge, wc);

    Simulator sim;
    sim.add(&wedge);
    sim.add(&dog);
    try {
        sim.run(100);
        FAIL() << "structural sweep did not trip";
    } catch (const WatchdogError &err) {
        ASSERT_EQ(err.report().violations.size(), 1u);
        EXPECT_NE(std::string(err.what()).find("rob out of program"),
                  std::string::npos);
    }
}

TEST(FaultInjector, DeterministicPerSeedAndIndependentStreams)
{
    FaultPlan plan;
    plan.enable = true;
    plan.seed = 42;
    plan.wakeupDelayRate = 0.25;
    plan.loadDelayRate = 0.25;

    FaultInjector a(plan), b(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.wakeupDelay(), b.wakeupDelay());
        EXPECT_EQ(a.loadDelay(), b.loadDelay());
    }
    EXPECT_EQ(a.totalInjected(), b.totalInjected());
    EXPECT_GT(a.totalInjected(), 0u);

    // Per-kind streams: draining one kind must not perturb another.
    FaultInjector c(plan);
    for (int i = 0; i < 500; ++i)
        c.wakeupDelay();
    FaultInjector d(plan);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c.loadDelay(), d.loadDelay());

    FaultPlan other = plan;
    other.seed = 43;
    FaultInjector e(other);
    std::uint64_t diff = 0;
    for (int i = 0; i < 1000; ++i)
        diff += (e.wakeupDelay() > 0) ? 1 : 0;
    EXPECT_NE(diff, a.injected(FaultKind::WakeupDelay));
}

TEST(FaultInjector, PlanFromConfigAndValidation)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.seed", 7);
    cfg.setDouble("integrity.fault.wakeup_drop", 0.01);
    cfg.setDouble("integrity.fault.load_delay", 0.02);
    cfg.setUint("integrity.fault.load_delay_cycles", 20);
    FaultPlan plan = FaultPlan::fromConfig(cfg);
    EXPECT_TRUE(plan.enable);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.wakeupDropRate, 0.01);
    EXPECT_DOUBLE_EQ(plan.loadDelayRate, 0.02);
    EXPECT_EQ(plan.loadDelayCycles, 20u);

    Config bad;
    bad.setBool("integrity.fault.enable", true);
    bad.setDouble("integrity.fault.wakeup_drop", 1.5);
    EXPECT_THROW(FaultPlan::fromConfig(bad), FatalError);
}

namespace
{

/** Run a small workload with one fault knob set; must still drain. */
RunResult
runFaulted(const char *key, double rate)
{
    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 8000;
    spec.warmupOps = 0;
    spec.overrides = faultConfig(rate, key);
    return runOnce(spec);
}

} // namespace

TEST(FaultInjector, ConvergentKindsDrainUnderInjection)
{
    // Each transient kind is expressed through the model's own
    // recovery machinery, so the run completes with the watchdog
    // armed; the injected count proves the knob actually fired.
    static const char *keys[] = {
        "integrity.fault.wakeup_delay",
        "integrity.fault.load_delay",
        "integrity.fault.branch_corrupt",
        "integrity.fault.port_stall",
    };
    for (const char *key : keys) {
        RunResult r = runFaulted(key, 0.02);
        EXPECT_EQ(r.retired, 8000u) << key;
        EXPECT_GT(r.scalar("faultsInjected"), 0.0) << key;
    }
}

TEST(FaultInjector, FaultedRunsAreSeedReproducible)
{
    RunResult a = runFaulted("integrity.fault.load_delay", 0.05);
    RunResult b = runFaulted("integrity.fault.load_delay", 0.05);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.scalar("faultsInjected"),
                     b.scalar("faultsInjected"));
}

TEST(Integrity, PermanentWakeupDropTripsTheWatchdog)
{
    // The acceptance scenario: a lost wakeup wedges the machine; the
    // watchdog must name the stalled structure and the non-retiring
    // window instead of a bare cycle-limit abort.
    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 8000;
    spec.warmupOps = 0;
    spec.overrides = faultConfig(1.0, "integrity.fault.wakeup_drop");
    spec.overrides.setUint("integrity.watchdog.window", 2000);

    try {
        runOnce(spec);
        FAIL() << "wedged run completed";
    } catch (const WatchdogError &err) {
        const WatchdogReport &rep = err.report();
        EXPECT_EQ(rep.component, "core");
        EXPECT_GE(rep.now - rep.lastProgressCycle, 2000u);
        EXPECT_NE(rep.culprit.find("lost"), std::string::npos)
            << rep.culprit;
        EXPECT_FALSE(rep.timeline.empty());
        // The diagnostic embeds the core's own state dump.
        EXPECT_NE(rep.stateDump.find("core"), std::string::npos);
    }
}

TEST(Integrity, StructuralChecksPassOnAHealthyRun)
{
    RunSpec spec;
    spec.workload = resolveWorkload("gcc");
    spec.totalOps = 6000;
    spec.warmupOps = 0;
    spec.overrides.setBool("integrity.checks.enable", true);
    spec.overrides.setUint("integrity.checks.interval", 16);
    RunResult r = runOnce(spec);
    EXPECT_EQ(r.retired, 6000u);
}

TEST(Experiment, CycleLimitThrowsSimErrorWithPhase)
{
    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 50000;
    spec.warmupOps = 0;
    spec.maxCycles = 64; // far too small to drain
    spec.overrides.setBool("integrity.watchdog.enable", false);

    try {
        runOnce(spec);
        FAIL() << "run finished inside an impossible budget";
    } catch (const CycleLimitError &err) {
        EXPECT_EQ(err.phase(), "measure");
        EXPECT_EQ(err.limit(), 64u);
        EXPECT_FALSE(err.stateDump().empty());
        EXPECT_EQ(err.kind(), "cycle-limit");
    }

    spec.warmupOps = 40000;
    try {
        runOnce(spec);
        FAIL() << "warmup finished inside an impossible budget";
    } catch (const CycleLimitError &err) {
        EXPECT_EQ(err.phase(), "warmup");
    }
}

TEST(Experiment, SmtOpBudgetKeepsTheRemainder)
{
    // 10001 ops over two threads used to truncate to 2 x 5000; the
    // remainder must be distributed so every requested op retires.
    RunSpec spec;
    spec.workload = resolveWorkload("m88-comp");
    spec.totalOps = 10001;
    spec.warmupOps = 0;
    RunResult r = runOnce(spec);
    EXPECT_EQ(r.retired, 10001u);
}

TEST(Experiment, RunOnceResilientFailSoft)
{
    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 4000;
    spec.warmupOps = 0;
    spec.overrides = faultConfig(1.0, "integrity.fault.wakeup_drop");
    spec.overrides.setUint("integrity.watchdog.window", 1500);
    spec.overrides.setUint("integrity.retry.attempts", 2);

    RunResult r = runOnceResilient(spec);
    EXPECT_TRUE(r.failed);
    EXPECT_TRUE(std::isnan(r.ipc));
    EXPECT_NE(r.error.find("watchdog"), std::string::npos);
    EXPECT_EQ(r.workloadLabel, "m88");
    EXPECT_FALSE(r.pipeLabel.empty());

    // fail_soft=false rethrows after the last attempt instead.
    spec.overrides.setBool("integrity.retry.fail_soft", false);
    spec.overrides.setUint("integrity.retry.attempts", 1);
    EXPECT_THROW(runOnceResilient(spec), WatchdogError);

    // A healthy run passes straight through.
    RunSpec ok;
    ok.workload = resolveWorkload("m88ksim");
    ok.totalOps = 4000;
    ok.warmupOps = 0;
    RunResult good = runOnceResilient(ok);
    EXPECT_FALSE(good.failed);
    EXPECT_GT(good.ipc, 0.1);
}

TEST(Experiment, SpeedupIsNanOnFailedRuns)
{
    RunResult ok;
    ok.ipc = 2.0;
    RunResult bad;
    bad.failed = true;
    EXPECT_TRUE(std::isnan(speedup(ok, bad)));
    EXPECT_TRUE(std::isnan(speedup(bad, ok)));
}

TEST(Experiment, RunOverlayAppliesToEveryRun)
{
    Config overlay;
    overlay.setBool("integrity.fault.enable", true);
    overlay.setDouble("integrity.fault.branch_corrupt", 0.05);
    setRunOverlay(overlay);

    RunSpec spec;
    spec.workload = resolveWorkload("m88ksim");
    spec.totalOps = 5000;
    spec.warmupOps = 0;
    RunResult faulted = runOnce(spec);
    clearRunOverlay();
    RunResult clean = runOnce(spec);

    EXPECT_GT(faulted.scalar("faultsInjected"), 0.0);
    EXPECT_THROW(clean.scalar("faultsInjected"), FatalError);
}

TEST(Figures, SweepCompletesAroundAWedgedPoint)
{
    // Acceptance: one configuration of the sweep is wedged on purpose;
    // the rest of the figure must still be produced, with the bad
    // point marked failed.
    Config healthy;

    Config wedged = faultConfig(1.0, "integrity.fault.wakeup_drop");
    wedged.setUint("integrity.watchdog.window", 1500);
    wedged.setUint("integrity.retry.attempts", 1);

    FigureData fig = sweepConfigs(
        "sweep with one wedged point", {"m88ksim"},
        {{"healthy", healthy}, {"wedged", wedged}}, 4000);

    ASSERT_EQ(fig.columns.size(), 2u);
    ASSERT_EQ(fig.columns[0].values.size(), 1u);
    EXPECT_TRUE(std::isfinite(fig.columns[0].values[0]));
    EXPECT_GT(fig.columns[0].values[0], 0.1);
    EXPECT_TRUE(std::isnan(fig.columns[1].values[0]));
    ASSERT_EQ(fig.failures.size(), 1u);
    EXPECT_NE(fig.failures[0].find("watchdog"), std::string::npos);

    // The report renders the failed point and the failure footer.
    std::ostringstream os;
    printFigure(os, fig, ValueFormat::Ratio);
    EXPECT_NE(os.str().find("fail"), std::string::npos);
    EXPECT_NE(os.str().find("failed points"), std::string::npos);

    std::ostringstream csv;
    printCsv(csv, fig);
    EXPECT_EQ(csv.str().find("nan"), std::string::npos);
}
