/**
 * @file
 * Tests for the load/store reorder trap loop: the MemDepPredictor wait
 * table and the end-to-end trap/retrain behaviour (paper Figure 2,
 * "memory trap loop"), plus the §5.5 CRC timeout alternative.
 */

#include <gtest/gtest.h>

#include "core/mem_dep.hh"
#include "core_test_util.hh"
#include "dra/crc.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

TEST(MemDepPredictor, TrainsAndWaits)
{
    MemDepPredictor pred(256, 0);
    EXPECT_FALSE(pred.shouldWait(0x100, 10));
    pred.trainTrap(0x100);
    EXPECT_TRUE(pred.shouldWait(0x100, 11));
    EXPECT_FALSE(pred.shouldWait(0x104, 11)); // different pc
    EXPECT_EQ(pred.traps(), 1u);
    EXPECT_GE(pred.waits(), 1u);
}

TEST(MemDepPredictor, PeriodicClearForgets)
{
    MemDepPredictor pred(256, 100);
    pred.trainTrap(0x100);
    EXPECT_TRUE(pred.shouldWait(0x100, 50));
    EXPECT_FALSE(pred.shouldWait(0x100, 150)); // cleared
}

TEST(MemDepPredictor, NoClearWhenDisabled)
{
    MemDepPredictor pred(256, 0);
    pred.trainTrap(0x100);
    EXPECT_TRUE(pred.shouldWait(0x100, 1u << 30));
}

TEST(MemDepPredictor, ResetAndErrors)
{
    MemDepPredictor pred(256, 0);
    pred.trainTrap(0x100);
    pred.reset();
    EXPECT_FALSE(pred.shouldWait(0x100, 1));
    EXPECT_EQ(pred.traps(), 0u);
    EXPECT_THROW(MemDepPredictor(100, 0), FatalError);
    EXPECT_THROW(MemDepPredictor(0, 0), FatalError);
}

namespace
{

/**
 * A kernel where a load overtakes an older store to the same address:
 * the store's data is delayed behind a chain while the load's address
 * is ready immediately, so the load reads first.
 */
std::vector<MicroOp>
reorderKernel(Addr addr)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1)); // address base, ready early
    // Warm the TLB page and line.
    ops.push_back(storeOp(1, 1, addr));
    // Long chain producing the store data.
    ops.push_back(alu(2));
    for (int i = 0; i < 20; ++i)
        ops.push_back(alu(2, 2));
    // The conflicting store: waits for r2 (the chain).
    ops.push_back(storeOp(1, 2, addr));
    // The load: address ready immediately; executes before the store.
    ops.push_back(load(3, 1, addr));
    ops.push_back(alu(4, 3));
    return ops;
}

} // anonymous namespace

TEST(MemoryOrdering, ReorderTrapSquashesAndRetires)
{
    auto ops = reorderKernel(0x6000000);
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), ops.size());
    EXPECT_GE(h.stat("memOrderTraps"), 1.0);
    EXPECT_GT(h.stat("squashed"), 0.0);
}

TEST(MemoryOrdering, DisabledModeNeverTraps)
{
    Config cfg;
    cfg.setBool("core.memdep.enable", false);
    auto ops = reorderKernel(0x6000000);
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), ops.size());
    EXPECT_EQ(h.stat("memOrderTraps"), 0.0);
}

TEST(MemoryOrdering, WaitTableSuppressesRepeatTraps)
{
    // The same conflicting load PC recurs; after the first trap the
    // wait table holds the load until the store has executed, so the
    // trap count stays far below the recurrence count.
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x6000000));
    for (int rep = 0; rep < 20; ++rep) {
        ops.push_back(alu(2));
        for (int i = 0; i < 12; ++i)
            ops.push_back(alu(2, 2));
        MicroOp st = storeOp(1, 2, 0x6000000);
        st.pc = 0x9000; // stable static sites
        ops.push_back(st);
        MicroOp ld = load(3, 1, 0x6000000);
        ld.pc = 0x9004;
        ops.push_back(ld);
        ops.push_back(alu(4, 3));
    }
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), ops.size());
    EXPECT_GE(h.stat("memOrderTraps"), 1.0);
    EXPECT_LE(h.stat("memOrderTraps"), 6.0); // suppressed after training
}

TEST(MemoryOrdering, DifferentDwordsDoNotConflict)
{
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x6000000));
    ops.push_back(alu(2));
    for (int i = 0; i < 20; ++i)
        ops.push_back(alu(2, 2));
    ops.push_back(storeOp(1, 2, 0x6000000));
    ops.push_back(load(3, 1, 0x6000008)); // adjacent dword
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.stat("memOrderTraps"), 0.0);
}

TEST(MemoryOrdering, TrapsAreRareOnProfiles)
{
    // Statistical sanity: reorder traps exist but stay a small
    // fraction of loads under the wait-table predictor.
    Config cfg;
    SyntheticTraceGenerator gen(spec95Profile("swim"), 0, 30000);
    std::vector<TraceSource *> srcs{&gen};
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(5000000);
    ASSERT_FALSE(sim.hitCycleLimit());
    double traps = core.statGroup().lookupValue("core.memOrderTraps");
    EXPECT_LT(traps, 300.0); // < 1% of ~10k loads
}

TEST(CrcTimeout, EntriesExpire)
{
    ClusterRegisterCache crc(4, CrcRepl::Fifo, 50);
    crc.insert(7, 100);
    EXPECT_TRUE(crc.lookup(7, 120));
    EXPECT_FALSE(crc.lookup(7, 151)); // timed out
    EXPECT_EQ(crc.timeouts(), 1u);
    // The expired entry is gone for good.
    EXPECT_FALSE(crc.lookup(7, 120));
}

TEST(CrcTimeout, ReinsertRefreshesAge)
{
    ClusterRegisterCache crc(4, CrcRepl::Fifo, 50);
    crc.insert(7, 100);
    crc.insert(7, 140); // refresh
    EXPECT_TRUE(crc.lookup(7, 170));
    EXPECT_EQ(crc.timeouts(), 0u);
}

TEST(CrcTimeout, ZeroTimeoutNeverExpires)
{
    ClusterRegisterCache crc(4, CrcRepl::Fifo, 0);
    crc.insert(7, 1);
    EXPECT_TRUE(crc.lookup(7, 1u << 30));
}

TEST(CrcTimeout, EndToEndConfig)
{
    Config cfg;
    cfg.setBool("dra.enable", true);
    cfg.setUint("dra.crc.timeout", 64);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 300; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 40),
                          static_cast<ArchReg>((i + 7) % 40)));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 300u);
}
