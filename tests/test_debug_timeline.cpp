/**
 * @file
 * Tests for the debug-trace flags and the pipeline timeline recorder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "base/debug.hh"
#include "core/dyn_inst.hh"
#include "core/timeline.hh"
#include "core_test_util.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

/** RAII guard: restores a clean flag state after each test. */
struct FlagGuard
{
    ~FlagGuard() { debug::clearFlags(); }
};

} // anonymous namespace

TEST(DebugFlags, SetAndTest)
{
    FlagGuard guard;
    debug::clearFlags();
    EXPECT_FALSE(debug::anyEnabled());
    debug::setFlags("Issue,Squash");
    EXPECT_TRUE(debug::enabled(debug::Flag::Issue));
    EXPECT_TRUE(debug::enabled(debug::Flag::Squash));
    EXPECT_FALSE(debug::enabled(debug::Flag::Fetch));
    EXPECT_TRUE(debug::anyEnabled());
}

TEST(DebugFlags, AllAndCaseInsensitive)
{
    FlagGuard guard;
    debug::clearFlags();
    debug::setFlags("all");
    for (unsigned f = 0;
         f < static_cast<unsigned>(debug::Flag::NumFlags); ++f) {
        EXPECT_TRUE(debug::enabled(static_cast<debug::Flag>(f)));
    }
    debug::clearFlags();
    debug::setFlags("iSsUe");
    EXPECT_TRUE(debug::enabled(debug::Flag::Issue));
}

TEST(DebugFlags, UnknownFlagFatal)
{
    FlagGuard guard;
    EXPECT_THROW(debug::setFlags("Bogus"), FatalError);
}

TEST(DebugFlags, NamesAreDistinct)
{
    std::set<std::string> names;
    for (unsigned f = 0;
         f < static_cast<unsigned>(debug::Flag::NumFlags); ++f) {
        names.insert(debug::flagName(static_cast<debug::Flag>(f)));
    }
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(debug::Flag::NumFlags));
}

TEST(Timeline, RecordsRetiredInstructions)
{
    Config cfg;
    cfg.setUint("core.timeline", 16);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 40; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 20)));
    auto h = makeHarness(ops, cfg);
    h.run();
    ASSERT_NE(h.core->timeline(), nullptr);
    const auto &entries = h.core->timeline()->entries();
    // Ring keeps only the newest 16.
    EXPECT_EQ(entries.size(), 16u);
    EXPECT_EQ(entries.back().seq, 39u);
    // Stage ordering invariants on every record.
    for (const auto &e : entries) {
        EXPECT_LE(e.fetch, e.rename);
        EXPECT_LE(e.rename, e.insert);
        EXPECT_LT(e.insert, e.firstIssue);
        EXPECT_LE(e.firstIssue, e.lastIssue);
        EXPECT_LT(e.lastIssue, e.execStart);
        EXPECT_LE(e.execStart, e.produce);
        EXPECT_LE(e.produce, e.retire);
        EXPECT_GE(e.timesIssued, 1u);
    }
}

TEST(Timeline, OffByDefault)
{
    auto h = makeHarness({alu(1)});
    h.run();
    EXPECT_EQ(h.core->timeline(), nullptr);
}

TEST(Timeline, ReissueShowsInTheRecord)
{
    Config cfg;
    cfg.setUint("core.timeline", 32);
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x5000000));
    ops.push_back(alu(1, 1));
    for (int i = 0; i < 12; ++i)
        ops.push_back(alu(1, 1));
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    ops.push_back(alu(3, 2)); // killed + reissued consumer
    auto h = makeHarness(ops, cfg);
    h.run();
    bool saw_reissue = false;
    for (const auto &e : h.core->timeline()->entries()) {
        if (e.timesIssued > 1) {
            saw_reissue = true;
            EXPECT_GT(e.lastIssue, e.firstIssue);
        }
    }
    EXPECT_TRUE(saw_reissue);
}

TEST(Timeline, PrintFormats)
{
    Config cfg;
    cfg.setUint("core.timeline", 8);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 10; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i)));
    auto h = makeHarness(ops, cfg);
    h.run();

    std::ostringstream gantt;
    h.core->timeline()->print(gantt);
    EXPECT_NE(gantt.str().find("cycles"), std::string::npos);
    EXPECT_NE(gantt.str().find('f'), std::string::npos);
    EXPECT_NE(gantt.str().find('c'), std::string::npos);

    std::ostringstream table;
    h.core->timeline()->printTable(table);
    EXPECT_NE(table.str().find("fetch"), std::string::npos);
    EXPECT_NE(table.str().find("IntAlu"), std::string::npos);
}

TEST(Timeline, EmptyPrintIsSafe)
{
    TimelineRecorder rec(4);
    std::ostringstream os;
    rec.print(os);
    EXPECT_NE(os.str().find("empty"), std::string::npos);
    EXPECT_THROW(TimelineRecorder(0), FatalError);
}

TEST(Timeline, EmptyPrintTableIsHeaderOnly)
{
    TimelineRecorder rec(4);
    std::ostringstream os;
    rec.printTable(os);
    const std::string table = os.str();
    // Header row only: no entry lines follow it.
    EXPECT_NE(table.find("seq"), std::string::npos);
    EXPECT_NE(table.find("fetch"), std::string::npos);
    EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 1);
}

TEST(Timeline, RingNeverExceedsCapacityWhileRecording)
{
    TimelineRecorder rec(5);
    EXPECT_EQ(rec.capacity(), 5u);
    DynInst inst;
    for (std::uint64_t i = 0; i < 12; ++i) {
        inst.op.seq = i;
        inst.fetchCycle = i;
        rec.record(inst, i + 10);
        EXPECT_LE(rec.entries().size(), 5u);
        EXPECT_EQ(rec.entries().back().seq, i);
    }
    // The survivors are exactly the newest five, oldest first.
    ASSERT_EQ(rec.entries().size(), 5u);
    EXPECT_EQ(rec.entries().front().seq, 7u);
}

TEST(Timeline, ReissueMarkRendersInTheGantt)
{
    Config cfg;
    cfg.setUint("core.timeline", 32);
    std::vector<MicroOp> ops;
    ops.push_back(alu(1));
    ops.push_back(storeOp(1, 1, 0x5000000));
    for (int i = 0; i < 12; ++i)
        ops.push_back(alu(1, 1));
    ops.push_back(load(2, 1, 0x5000000 + 256)); // L1 miss
    ops.push_back(alu(3, 2)); // killed + reissued consumer
    auto h = makeHarness(ops, cfg);
    h.run();

    std::ostringstream os;
    h.core->timeline()->print(os);
    // The reissued consumer's last issue renders as 'I' (first issue
    // stays lowercase 'i').
    EXPECT_NE(os.str().find('I'), std::string::npos);
    EXPECT_NE(os.str().find('i'), std::string::npos);
}
