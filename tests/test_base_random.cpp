/**
 * @file
 * Unit tests for the deterministic RNG and discrete distributions.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "base/logging.hh"
#include "base/random.hh"

using namespace loopsim;

TEST(Pcg32, SameSeedSameStream)
{
    Pcg32 a(42, 7);
    Pcg32 b(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiverge)
{
    Pcg32 a(42, 7);
    Pcg32 b(43, 7);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiverge)
{
    Pcg32 a(42, 1);
    Pcg32 b(42, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 5);
}

TEST(Pcg32, BoundedStaysInBounds)
{
    Pcg32 rng(1);
    for (std::uint32_t bound : {1u, 2u, 3u, 17u, 1000u}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Pcg32, BoundedIsRoughlyUniform)
{
    Pcg32 rng(99);
    std::vector<int> counts(8, 0);
    const int n = 80000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(8)];
    for (int c : counts) {
        EXPECT_GT(c, n / 8 * 0.9);
        EXPECT_LT(c, n / 8 * 1.1);
    }
}

TEST(Pcg32, BoundedZeroPanics)
{
    Pcg32 rng(1);
    EXPECT_THROW(rng.nextBounded(0), PanicError);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(5);
    for (int i = 0; i < 1000; ++i) {
        double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Pcg32, ChanceExtremes)
{
    Pcg32 rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Pcg32, ChanceTracksProbability)
{
    Pcg32 rng(7);
    int hits = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= v == 10;
        saw_hi |= v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, RangeSingleton)
{
    Pcg32 rng(11);
    EXPECT_EQ(rng.range(5, 5), 5u);
}

TEST(Pcg32, RangeBackwardsPanics)
{
    Pcg32 rng(11);
    EXPECT_THROW(rng.range(6, 5), PanicError);
}

TEST(Pcg32, RangeWide)
{
    Pcg32 rng(13);
    std::uint64_t lo = 1ULL << 40;
    std::uint64_t hi = (1ULL << 40) + (1ULL << 36);
    for (int i = 0; i < 200; ++i) {
        auto v = rng.range(lo, hi);
        EXPECT_GE(v, lo);
        EXPECT_LE(v, hi);
    }
}

TEST(Pcg32, GeometricRespectsCap)
{
    Pcg32 rng(17);
    for (int i = 0; i < 500; ++i)
        EXPECT_LE(rng.geometric(0.01, 7), 7u);
    EXPECT_EQ(rng.geometric(1.0, 100), 0u);
    EXPECT_EQ(rng.geometric(0.0, 9), 9u);
}

TEST(DiscreteDistribution, SamplesTrackWeights)
{
    Pcg32 rng(23);
    DiscreteDistribution dist({1.0, 3.0, 6.0});
    std::vector<int> counts(3, 0);
    const int n = 60000;
    for (int i = 0; i < n; ++i)
        ++counts[dist.sample(rng)];
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.02);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / double(n), 0.6, 0.02);
}

TEST(DiscreteDistribution, ZeroWeightNeverSampled)
{
    Pcg32 rng(29);
    DiscreteDistribution dist({1.0, 0.0, 1.0});
    for (int i = 0; i < 5000; ++i)
        EXPECT_NE(dist.sample(rng), 1u);
}

TEST(DiscreteDistribution, SingleBucket)
{
    Pcg32 rng(31);
    DiscreteDistribution dist({2.5});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(dist.sample(rng), 0u);
}

TEST(DiscreteDistribution, EmptySamplePanics)
{
    Pcg32 rng(31);
    DiscreteDistribution dist;
    EXPECT_TRUE(dist.empty());
    EXPECT_THROW(dist.sample(rng), PanicError);
}

TEST(DiscreteDistribution, NegativeWeightPanics)
{
    EXPECT_THROW(DiscreteDistribution({1.0, -0.1}), PanicError);
}

TEST(DiscreteDistribution, AllZeroWeightsPanics)
{
    EXPECT_THROW(DiscreteDistribution({0.0, 0.0}), PanicError);
}
