/**
 * @file
 * Tests for the persistent content-addressed result store: fingerprint
 * canonicality (permutation/channel independence, total input
 * coverage), record round-trips and tamper rejection, the campaign
 * executor's lookup-before-simulate path (memo dedup, warm-store
 * byte-identity at any job count, corruption degrading to a miss),
 * the trace-collection bypass, and the maintenance operations behind
 * the loopsim-store CLI (verify, gc eviction order).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "store/fingerprint.hh"
#include "store/record.hh"
#include "store/result_store.hh"
#include "trace/loop_trace.hh"

using namespace loopsim;
namespace fs = std::filesystem;

namespace
{

RunSpec
storeSpec(const std::string &workload, std::uint64_t ops)
{
    RunSpec spec;
    spec.workload = resolveWorkload(workload);
    spec.totalOps = ops;
    spec.warmupOps = 800;
    return spec;
}

/** Same deliberately-wedged configuration the campaign tests use: the
 *  fail-soft path fires quickly and deterministically. */
Config
wedgeConfig()
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setDouble("integrity.fault.wakeup_drop", 1.0);
    cfg.setUint("integrity.watchdog.window", 10000);
    cfg.setUint("integrity.retry.attempts", 1);
    return cfg;
}

/** A fresh, empty store directory under the test temp root.  The pid suffix
 *  keeps the aggregate and label-specific test binaries (which compile the
 *  same sources) from clobbering each other when ctest runs them in
 *  parallel. */
fs::path
freshDir(const std::string &name)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / (name + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

/** Flip one byte of the file at @p path. */
void
flipByte(const std::string &path, std::size_t offset)
{
    std::string bytes = readFile(path);
    ASSERT_LT(offset, bytes.size());
    bytes[offset] = static_cast<char>(bytes[offset] ^ 0x5a);
    writeFile(path, bytes);
}

/** A RunResult exercising every persisted field. */
RunResult
sampleResult(std::uint32_t salt)
{
    RunResult r;
    r.workloadLabel = "synthetic-" + std::to_string(salt);
    r.pipeLabel = "5_5";
    r.cycles = 123456789 + salt;
    r.retired = 424242 + salt;
    r.ipc = 1.25 + 0.001 * salt;
    r.operandSourceFractions = {0.1, 0.2, 0.3, 0.15, 0.15, 0.1};
    r.operandSourceCounts = {10, 20, 30, 15, 15, 10};
    for (int i = 0; i <= 128; ++i)
        r.gapCdf.push_back(std::min(1.0, i / 100.0));
    r.scalars["core.retired"] = 424242.0 + salt;
    r.scalars["dra.preread_hits"] = 77.5;
    return r;
}

/** Two workloads x {base, dra}: the smallest plan that still has a
 *  figure-shaped row/column structure. */
CampaignPlan
fourCellPlan(std::uint64_t ops)
{
    CampaignPlan plan;
    for (const char *w : {"gcc", "swim"}) {
        RunSpec base = storeSpec(w, ops);
        plan.add(std::move(base), std::string(w) + "/base");
        RunSpec dra = storeSpec(w, ops);
        setDraPipeline(dra.overrides, 5);
        plan.add(std::move(dra), std::string(w) + "/dra");
    }
    return plan;
}

/** Assemble + render the 4-cell plan's results the way the figure
 *  drivers do; byte-identity of this string is the acceptance bar. */
std::string
renderFourCells(const std::vector<RunResult> &results)
{
    FigureData fig;
    fig.title = "store determinism probe";
    fig.valueUnit = "IPC";
    fig.columns.push_back(Series{"base", {}});
    fig.columns.push_back(Series{"dra", {}});
    for (std::size_t wi = 0; wi < 2; ++wi) {
        fig.rowLabels.push_back(results[wi * 2].workloadLabel);
        for (std::size_t p = 0; p < 2; ++p) {
            const RunResult &r = results[wi * 2 + p];
            fig.columns[p].values.push_back(
                r.failed ? std::nan("") : r.ipc);
        }
    }
    std::ostringstream os;
    printFigure(os, fig);
    printCsv(os, fig);
    return os.str();
}

/** Hermetic store state around every test: no store directory (even
 *  if LOOPSIM_STORE is exported), an empty memo, automatic jobs. */
class StoreEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        store::resetProcessStore();
        store::setStorePath("");
        setCampaignJobs(0);
    }

    void
    TearDown() override
    {
        trace::setCollection(false);
        trace::takeCollectedRuns();
        clearRunOverlay();
        store::resetProcessStore();
        store::setStorePath("");
        setCampaignJobs(0);
    }
};

} // anonymous namespace

TEST(StoreFingerprint, HexRoundTripAndParseRejects)
{
    store::Fingerprint fp{0x0123456789abcdefull, 0xfedcba9876543210ull};
    EXPECT_EQ(fp.hex(), "0123456789abcdeffedcba9876543210");

    store::Fingerprint parsed;
    ASSERT_TRUE(store::Fingerprint::parse(fp.hex(), parsed));
    EXPECT_EQ(parsed, fp);

    EXPECT_FALSE(store::Fingerprint::parse("", parsed));
    EXPECT_FALSE(store::Fingerprint::parse(fp.hex().substr(1), parsed));
    EXPECT_FALSE(store::Fingerprint::parse(
        "0123456789abcdeffedcba987654321g", parsed));
}

TEST(StoreFingerprint, TaggedFieldsCannotAlias)
{
    // "" + "ab" must not collide with "a" + "b": every value is
    // length-prefixed behind its field tag.
    store::Hasher h1;
    h1.str("x", "");
    h1.str("y", "ab");
    store::Hasher h2;
    h2.str("x", "a");
    h2.str("y", "b");
    EXPECT_NE(h1.digest(), h2.digest());
}

TEST_F(StoreEnv, FingerprintIgnoresKeyOrderAndOverlayChannel)
{
    const RetryPolicy policy;

    // Same assignments, opposite insertion order.
    RunSpec a = storeSpec("gcc", 3100);
    a.overrides.setUint("integrity.watchdog.window", 123456);
    a.overrides.setUint("integrity.retry.attempts", 2);
    RunSpec b = storeSpec("gcc", 3100);
    b.overrides.setUint("integrity.retry.attempts", 2);
    b.overrides.setUint("integrity.watchdog.window", 123456);
    EXPECT_EQ(store::fingerprintRun(a, policy),
              store::fingerprintRun(b, policy));

    // Same assignment arriving through the programmatic overlay
    // instead of the spec overrides: the fingerprint hashes the
    // *resolved* configuration, so the channel is invisible.
    RunSpec c = storeSpec("gcc", 3100);
    c.overrides.setUint("integrity.retry.attempts", 2);
    Config overlay;
    overlay.setUint("integrity.watchdog.window", 123456);
    setRunOverlay(overlay);
    store::Fingerprint viaOverlay = store::fingerprintRun(c, policy);
    clearRunOverlay();
    EXPECT_EQ(viaOverlay, store::fingerprintRun(a, policy));

    // And with the overlay cleared the fingerprint must differ: the
    // cache key reflects the overlays in force at plan time.
    EXPECT_NE(store::fingerprintRun(c, policy),
              store::fingerprintRun(a, policy));
}

TEST_F(StoreEnv, FingerprintCoversEveryResultShapingInput)
{
    const RetryPolicy policy;
    const RunSpec base = storeSpec("gcc", 3100);

    std::vector<store::Fingerprint> fps;
    fps.push_back(store::fingerprintRun(base, policy));

    RunSpec cfgChange = base;
    cfgChange.overrides.setUint("integrity.watchdog.window", 999999);
    fps.push_back(store::fingerprintRun(cfgChange, policy));

    RunSpec seedChange = base;
    ASSERT_FALSE(seedChange.workload.threads.empty());
    seedChange.workload.threads[0].seed += 1;
    fps.push_back(store::fingerprintRun(seedChange, policy));

    RunSpec opsChange = base;
    opsChange.totalOps += 1;
    fps.push_back(store::fingerprintRun(opsChange, policy));

    RunSpec warmupChange = base;
    warmupChange.warmupOps += 1;
    fps.push_back(store::fingerprintRun(warmupChange, policy));

    RunSpec budgetChange = base;
    budgetChange.maxCycles += 1;
    fps.push_back(store::fingerprintRun(budgetChange, policy));

    RunSpec workloadChange = base;
    workloadChange.workload = resolveWorkload("swim");
    fps.push_back(store::fingerprintRun(workloadChange, policy));

    RetryPolicy moreAttempts;
    moreAttempts.attempts = 5;
    fps.push_back(store::fingerprintRun(base, moreAttempts));

    RetryPolicy wideStride;
    wideStride.seedStride = 7;
    fps.push_back(store::fingerprintRun(base, wideStride));

    for (std::size_t i = 0; i < fps.size(); ++i) {
        for (std::size_t j = i + 1; j < fps.size(); ++j) {
            EXPECT_NE(fps[i], fps[j])
                << "variant " << i << " aliases variant " << j;
        }
    }
}

TEST(StoreRecord, RoundTripPreservesEveryField)
{
    const store::Fingerprint fp{0xdeadbeefcafef00dull, 0x42ull};
    const RunResult in = sampleResult(7);
    const std::string bytes = store::encodeRecord(fp, in);
    ASSERT_GE(bytes.size(), store::kRecordHeaderBytes);

    RunResult out;
    ASSERT_TRUE(store::decodeRecord(bytes, fp, out));
    EXPECT_EQ(out.workloadLabel, in.workloadLabel);
    EXPECT_EQ(out.pipeLabel, in.pipeLabel);
    EXPECT_EQ(out.cycles, in.cycles);
    EXPECT_EQ(out.retired, in.retired);
    EXPECT_EQ(out.ipc, in.ipc);
    EXPECT_FALSE(out.failed);
    EXPECT_TRUE(out.error.empty());
    EXPECT_EQ(out.operandSourceFractions, in.operandSourceFractions);
    EXPECT_EQ(out.operandSourceCounts, in.operandSourceCounts);
    EXPECT_EQ(out.gapCdf, in.gapCdf);
    EXPECT_EQ(out.scalars, in.scalars);

    // A failed result round-trips too (the store never persists one,
    // but the format must not depend on that policy).
    RunResult wedged;
    wedged.workloadLabel = "wedge";
    wedged.pipeLabel = "5_5";
    wedged.failed = true;
    wedged.error = "watchdog: no retirement in window";
    const std::string wbytes = store::encodeRecord(fp, wedged);
    RunResult wout;
    ASSERT_TRUE(store::decodeRecord(wbytes, fp, wout));
    EXPECT_TRUE(wout.failed);
    EXPECT_EQ(wout.error, wedged.error);
}

TEST(StoreRecord, RejectsTamperTruncationAndWrongFingerprint)
{
    const store::Fingerprint fp{0x1111111111111111ull, 0x2222ull};
    const std::string bytes = store::encodeRecord(fp, sampleResult(1));
    RunResult out;

    // Wrong fingerprint: a renamed/misplaced record must not decode.
    EXPECT_FALSE(store::decodeRecord(
        bytes, store::Fingerprint{0x1111111111111111ull, 0x2223ull},
        out));

    // Truncations: shorter than a header, and one byte short.
    EXPECT_FALSE(store::decodeRecord(
        bytes.substr(0, store::kRecordHeaderBytes - 1), fp, out));
    EXPECT_FALSE(store::decodeRecord(
        bytes.substr(0, bytes.size() - 1), fp, out));

    // Trailing garbage: size field no longer matches the buffer.
    EXPECT_FALSE(store::decodeRecord(bytes + "x", fp, out));

    // Payload bit-rot: CRC catches it.
    std::string corrupt = bytes;
    corrupt[store::kRecordHeaderBytes + 3] ^= 0x10;
    EXPECT_FALSE(store::decodeRecord(corrupt, fp, out));

    // Damaged magic.
    std::string badMagic = bytes;
    badMagic[0] ^= 0x01;
    EXPECT_FALSE(store::decodeRecord(badMagic, fp, out));
    store::Fingerprint peeked;
    std::uint32_t schema = 0;
    EXPECT_FALSE(store::peekRecord(badMagic, peeked, schema));

    // The header peek works on a valid record.
    ASSERT_TRUE(store::peekRecord(bytes, peeked, schema));
    EXPECT_EQ(peeked, fp);
    EXPECT_EQ(schema, store::kSchemaVersion);
}

TEST(StoreRecord, SchemaVersionBumpInvalidates)
{
    const store::Fingerprint fp{0xabcdull, 0xef01ull};
    std::string bytes = store::encodeRecord(fp, sampleResult(2));

    // Patch the schema field (offset 4, little-endian u32) to the next
    // version: the record must read as a miss, not as data.
    bytes[4] = static_cast<char>(bytes[4] + 1);
    RunResult out;
    EXPECT_FALSE(store::decodeRecord(bytes, fp, out));

    store::Fingerprint peeked;
    std::uint32_t schema = 0;
    ASSERT_TRUE(store::peekRecord(bytes, peeked, schema));
    EXPECT_EQ(schema, store::kSchemaVersion + 1);
}

TEST_F(StoreEnv, ResultStoreLookupInsertAndCorruptionAsMiss)
{
    const fs::path dir = freshDir("lsr_basic");
    store::ResultStore st(dir.string());
    const store::Fingerprint fp{0x77ull << 56, 0x1234ull};

    EXPECT_FALSE(st.lookup(fp).has_value());
    EXPECT_EQ(st.stats().misses, 1u);
    EXPECT_EQ(st.stats().crcRejects, 0u);

    const RunResult in = sampleResult(3);
    ASSERT_TRUE(st.insert(fp, in));
    EXPECT_EQ(st.stats().inserts, 1u);
    EXPECT_GT(st.stats().bytesWritten, 0u);
    ASSERT_TRUE(fs::exists(st.recordPath(fp)));

    auto hit = st.lookup(fp);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->ipc, in.ipc);
    EXPECT_EQ(st.stats().hits, 1u);
    EXPECT_GT(st.stats().bytesRead, 0u);

    // Payload corruption: a miss plus a CRC reject, never bad data.
    flipByte(st.recordPath(fp), store::kRecordHeaderBytes + 5);
    EXPECT_FALSE(st.lookup(fp).has_value());
    EXPECT_EQ(st.stats().crcRejects, 1u);
    EXPECT_EQ(st.stats().misses, 2u);

    // A schema bump on disk reads as a miss the same way.
    ASSERT_TRUE(st.insert(fp, in));
    {
        std::string bytes = readFile(st.recordPath(fp));
        bytes[4] = static_cast<char>(bytes[4] + 1);
        writeFile(st.recordPath(fp), bytes);
    }
    EXPECT_FALSE(st.lookup(fp).has_value());
    EXPECT_EQ(st.stats().crcRejects, 2u);

    // Truncation below a header too.
    ASSERT_TRUE(st.insert(fp, in));
    writeFile(st.recordPath(fp), "short");
    EXPECT_FALSE(st.lookup(fp).has_value());
    EXPECT_EQ(st.stats().crcRejects, 3u);

    // Re-insert heals the store.
    ASSERT_TRUE(st.insert(fp, in));
    EXPECT_TRUE(st.lookup(fp).has_value());
}

TEST_F(StoreEnv, CampaignMemoDeduplicatesWithoutStoreDir)
{
    ASSERT_FALSE(store::storeConfigured());

    CampaignPlan plan;
    plan.add(storeSpec("gcc", 2300), "a");
    plan.add(storeSpec("gcc", 2300), "a-again"); // identical plan point
    plan.add(storeSpec("swim", 2300), "b");

    std::vector<RunResult> results = runCampaign(plan, {}, 2);
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.runs, 3u);
    EXPECT_EQ(t.simulated, 2u);
    EXPECT_EQ(t.memoHits, 1u);
    EXPECT_EQ(t.store.hits + t.store.misses + t.store.inserts, 0u);

    ASSERT_FALSE(results[0].failed);
    EXPECT_EQ(results[0].ipc, results[1].ipc);
    EXPECT_EQ(results[0].cycles, results[1].cycles);
    EXPECT_EQ(results[0].workloadLabel, results[1].workloadLabel);

    // A second campaign over the same plan is answered entirely from
    // the in-process memo.
    runCampaign(plan, {}, 2);
    t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 0u);
    EXPECT_EQ(t.memoHits, 3u);
}

TEST_F(StoreEnv, WarmStoreRerunIsByteIdenticalAtAnyJobs)
{
    const fs::path dir = freshDir("lsr_warm");
    store::setStorePath(dir.string());

    CampaignPlan plan = fourCellPlan(2400);

    // Cold, serial.
    std::string cold = renderFourCells(runCampaign(plan, {}, 1));
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 4u);
    EXPECT_EQ(t.store.misses, 4u);
    EXPECT_EQ(t.store.inserts, 4u);
    EXPECT_EQ(t.store.hits, 0u);
    EXPECT_GT(t.store.bytesWritten, 0u);

    // Warm, parallel: drop the memo so every answer must come off
    // disk, then demand zero simulations and byte-identical output.
    store::processMemo().clear();
    std::string warm = renderFourCells(runCampaign(plan, {}, 8));
    t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 0u);
    EXPECT_EQ(t.store.hits, 4u);
    EXPECT_EQ(t.store.misses, 0u);
    EXPECT_EQ(t.store.inserts, 0u);
    EXPECT_EQ(warm, cold);
}

TEST_F(StoreEnv, CorruptRecordDegradesToOneResimulation)
{
    const fs::path dir = freshDir("lsr_corrupt");
    store::setStorePath(dir.string());

    CampaignPlan plan = fourCellPlan(2450);
    std::string cold = renderFourCells(runCampaign(plan, {}, 1));

    // Rot one record on disk.
    const store::Fingerprint fp =
        store::fingerprintRun(plan.at(0).spec, RetryPolicy{});
    ASSERT_NE(store::processStore(), nullptr);
    const std::string path = store::processStore()->recordPath(fp);
    ASSERT_TRUE(fs::exists(path));
    flipByte(path, store::kRecordHeaderBytes + 2);

    // The damaged cell re-simulates; the figure is still identical,
    // and the fresh result heals the store.
    store::processMemo().clear();
    std::string healed = renderFourCells(runCampaign(plan, {}, 4));
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 1u);
    EXPECT_EQ(t.store.hits, 3u);
    EXPECT_EQ(t.store.crcRejects, 1u);
    EXPECT_EQ(t.store.inserts, 1u);
    EXPECT_EQ(healed, cold);

    const store::VerifyReport report = store::verifyStore(dir.string());
    EXPECT_EQ(report.records, 4u);
    EXPECT_EQ(report.corrupt, 0u);
}

TEST_F(StoreEnv, FailedRunsMemoizedButNeverPersisted)
{
    const fs::path dir = freshDir("lsr_failsoft");
    store::setStorePath(dir.string());

    CampaignPlan plan;
    RunSpec wedge = storeSpec("gcc", 2600);
    wedge.overrides = wedgeConfig();
    plan.add(std::move(wedge), "wedge");
    plan.add(storeSpec("swim", 2600), "healthy");

    runCampaign(plan, {}, 2);
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.failures, 1u);
    EXPECT_EQ(t.simulated, 2u);
    EXPECT_EQ(t.store.inserts, 1u); // only the healthy cell

    const store::Fingerprint wedgeFp =
        store::fingerprintRun(plan.at(0).spec, RetryPolicy{});
    EXPECT_FALSE(
        fs::exists(store::processStore()->recordPath(wedgeFp)));

    // Within the process the wedge answer comes from the memo...
    std::vector<RunResult> again = runCampaign(plan, {}, 2);
    t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 0u);
    EXPECT_TRUE(again[0].failed);

    // ...but a "new binary" (cleared memo) retries it against the
    // store and simulates only the wedge again.
    store::processMemo().clear();
    runCampaign(plan, {}, 2);
    t = lastCampaignTelemetry();
    EXPECT_EQ(t.simulated, 1u);
    EXPECT_EQ(t.store.hits, 1u);
    EXPECT_EQ(t.failures, 1u);
}

TEST_F(StoreEnv, TraceCollectionBypassesMemoAndStore)
{
    const fs::path dir = freshDir("lsr_trace");
    store::setStorePath(dir.string());

    CampaignPlan plan;
    plan.add(storeSpec("gcc", 2700), "t0");
    plan.add(storeSpec("swim", 2700), "t1");

    runCampaign(plan, {}, 1); // warm everything
    ASSERT_EQ(lastCampaignTelemetry().store.inserts, 2u);

    trace::setCollection(true);
    runCampaign(plan, {}, 1);
    CampaignTelemetry t = lastCampaignTelemetry();
    trace::setCollection(false);

    // Both caches are warm, yet every cell simulated: traces must come
    // from real executions, and nothing is inserted either.
    EXPECT_EQ(t.simulated, 2u);
    EXPECT_EQ(t.memoHits, 0u);
    EXPECT_EQ(t.store.hits + t.store.misses + t.store.inserts, 0u);

    std::vector<trace::RunTrace> collected = trace::takeCollectedRuns();
    ASSERT_EQ(collected.size(), 2u);
    EXPECT_FALSE(collected[0].events.empty());
    EXPECT_EQ(store::scanStore(dir.string(), false).size(), 2u);
}

TEST_F(StoreEnv, VerifyReportsCorruptionAndGcEvictsInvalidThenOldest)
{
    const fs::path dir = freshDir("lsr_gc");
    store::ResultStore st(dir.string());

    // Four records in distinct fan-out directories.
    std::vector<store::Fingerprint> fps;
    for (std::uint64_t i = 0; i < 4; ++i) {
        fps.push_back(store::Fingerprint{(i + 1) << 56 | 0x7ull,
                                         0x1000 + i});
        ASSERT_TRUE(st.insert(fps.back(),
                              sampleResult(static_cast<std::uint32_t>(i))));
    }

    // scanStore lists them sorted by fingerprint.
    auto entries = store::scanStore(dir.string(), true);
    ASSERT_EQ(entries.size(), 4u);
    for (std::size_t i = 1; i < entries.size(); ++i)
        EXPECT_TRUE(entries[i - 1].fp < entries[i].fp);
    for (const store::StoreEntry &e : entries)
        EXPECT_TRUE(e.valid);

    store::VerifyReport clean = store::verifyStore(dir.string());
    EXPECT_EQ(clean.records, 4u);
    EXPECT_EQ(clean.corrupt, 0u);

    // Corrupt record 3; age records 0 < 1 < 2 by mtime.
    flipByte(st.recordPath(fps[3]), store::kRecordHeaderBytes + 1);
    const auto now = fs::last_write_time(st.recordPath(fps[2]));
    fs::last_write_time(st.recordPath(fps[0]),
                        now - std::chrono::hours(3));
    fs::last_write_time(st.recordPath(fps[1]),
                        now - std::chrono::hours(2));

    store::VerifyReport damaged = store::verifyStore(dir.string());
    EXPECT_EQ(damaged.corrupt, 1u);
    ASSERT_EQ(damaged.corruptPaths.size(), 1u);
    EXPECT_EQ(damaged.corruptPaths[0], st.recordPath(fps[3]));

    // Budget for exactly the two newest valid records: gc removes the
    // corrupt record first, then the oldest valid one.
    const std::uint64_t budget =
        fs::file_size(st.recordPath(fps[1])) +
        fs::file_size(st.recordPath(fps[2]));
    store::GcReport gc = store::gcStore(dir.string(), budget);
    EXPECT_EQ(gc.scanned, 4u);
    EXPECT_EQ(gc.removed, 2u);
    EXPECT_LE(gc.bytesAfter, budget);
    EXPECT_FALSE(fs::exists(st.recordPath(fps[0])));
    EXPECT_FALSE(fs::exists(st.recordPath(fps[3])));
    EXPECT_TRUE(fs::exists(st.recordPath(fps[1])));
    EXPECT_TRUE(fs::exists(st.recordPath(fps[2])));

    // gc to zero empties the store and prunes the fan-out dirs.
    store::GcReport drain = store::gcStore(dir.string(), 0);
    EXPECT_EQ(drain.removed, 2u);
    EXPECT_EQ(drain.bytesAfter, 0u);
    EXPECT_TRUE(store::scanStore(dir.string(), false).empty());
    // Only the advisory lock file survives a gc-to-zero; every record
    // and fan-out directory is gone.
    for (const fs::directory_entry &entry : fs::directory_iterator(dir))
        EXPECT_EQ(entry.path().filename(), ".lock");
}

TEST(StoreBenchFlag, StoreWithoutPathExitsWithUsage)
{
    char bench[] = "bench";
    char flagBare[] = "--store";
    // A trailing bare --store is caught by the generic flag parser,
    // --store= by the store-specific check; both are usage errors.
    char *bare[] = {bench, flagBare};
    EXPECT_EXIT(benchutil::benchStore(2, bare),
                ::testing::ExitedWithCode(2), "--store needs a");

    char flagEq[] = "--store=";
    char *eq[] = {bench, flagEq};
    EXPECT_EXIT(benchutil::benchStore(2, eq),
                ::testing::ExitedWithCode(2),
                "--store needs a directory path");
}

TEST(StoreBenchFlag, StoreValueParsesInBothSpellings)
{
    char bench[] = "bench";
    char flag[] = "--store";
    char dir[] = "/tmp/lsr-cli";
    char *split[] = {bench, flag, dir};
    EXPECT_EQ(benchutil::benchStore(3, split), "/tmp/lsr-cli");

    char joined[] = "--store=/tmp/lsr-cli2";
    char *eq[] = {bench, joined};
    EXPECT_EQ(benchutil::benchStore(2, eq), "/tmp/lsr-cli2");
}

// ---------------------------------------------------------------------------
// Concurrent-writer hardening: a live server (or several local
// campaigns) may be inserting into the same store directory that a
// maintenance gc is sweeping. The advisory lock (shared for writers,
// exclusive for gc) must keep every acknowledged insert durable —
// gc may evict by policy, but it must never tear an in-flight write
// or delete the fan-out directory out from under a rename.

TEST_F(StoreEnv, ConcurrentInsertersSurviveLiveGc)
{
    const fs::path dir = freshDir("store_gc_race");
    constexpr int kThreads = 4;
    constexpr int kPerThread = 32;

    std::atomic<bool> stop_gc{false};
    std::atomic<int> failed_inserts{0};

    // Each writer opens its own handle, the way separate processes
    // (server + CLI campaigns) would.
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        writers.emplace_back([&, t] {
            store::ResultStore local(dir.string());
            for (int i = 0; i < kPerThread; ++i) {
                const store::Fingerprint fp{
                    static_cast<std::uint64_t>(t) + 1,
                    static_cast<std::uint64_t>(i) + 1};
                if (!local.insert(fp, sampleResult(
                        static_cast<std::uint32_t>(t * kPerThread + i))))
                    failed_inserts.fetch_add(1);
            }
        });
    }
    std::thread gc([&] {
        // Generous budget: this gc only sweeps invalid records and
        // empty fan-out directories — exactly the tear window the
        // exclusive lock closes.
        while (!stop_gc.load())
            store::gcStore(dir.string(), 1ull << 40);
    });
    for (std::thread &w : writers)
        w.join();
    stop_gc.store(true);
    gc.join();

    EXPECT_EQ(failed_inserts.load(), 0);

    // Every acknowledged insert is durable and intact (full CRC pass).
    store::ResultStore reader(dir.string());
    for (int t = 0; t < kThreads; ++t) {
        for (int i = 0; i < kPerThread; ++i) {
            const store::Fingerprint fp{
                static_cast<std::uint64_t>(t) + 1,
                static_cast<std::uint64_t>(i) + 1};
            EXPECT_TRUE(reader.lookup(fp).has_value())
                << "lost record " << fp.hex();
        }
    }
    const store::VerifyReport verify = store::verifyStore(dir.string());
    EXPECT_EQ(verify.records,
              static_cast<std::size_t>(kThreads * kPerThread));
    EXPECT_EQ(verify.corrupt, 0u);

    // The advisory lock file is part of the layout now.
    EXPECT_TRUE(fs::exists(dir / ".lock"));
}

TEST_F(StoreEnv, SummaryJsonSharesOneSchemaAcrossCliAndServer)
{
    const fs::path dir = freshDir("store_stat_json");
    store::ResultStore writer(dir.string());
    ASSERT_TRUE(writer.insert(store::Fingerprint{1, 1}, sampleResult(1)));
    ASSERT_TRUE(writer.insert(store::Fingerprint{2, 2}, sampleResult(2)));

    const store::StoreSummary summary =
        store::summarizeStore(dir.string());
    EXPECT_EQ(summary.records, 2u);
    EXPECT_GT(summary.bytes, 0u);
    EXPECT_EQ(summary.invalid, 0u);

    // CLI shape (loopsim-store stat --json): no open handle, so no
    // "stats" object.
    const std::string cli = store::storeSummaryJson(summary, nullptr);
    EXPECT_NE(cli.find("\"dir\""), std::string::npos);
    EXPECT_NE(cli.find("\"records\": 2"), std::string::npos);
    EXPECT_NE(cli.find("\"bytes\""), std::string::npos);
    EXPECT_NE(cli.find("\"invalid\": 0"), std::string::npos);
    EXPECT_EQ(cli.find("\"stats\""), std::string::npos);

    // Server shape (loopsim-serve --stats-json): same summary fields
    // plus the live counters.
    const store::StoreStats stats = writer.stats();
    EXPECT_EQ(stats.inserts, 2u);
    const std::string served = store::storeSummaryJson(summary, &stats);
    EXPECT_NE(served.find("\"records\": 2"), std::string::npos);
    EXPECT_NE(served.find("\"stats\""), std::string::npos);
    EXPECT_NE(served.find("\"inserts\": 2"), std::string::npos);
    EXPECT_NE(served.find("\"crc_rejects\": 0"), std::string::npos);

    // A header-invalid file is counted, not silently skipped.
    writeFile((dir / "00" / "junk.lsr").string(), "not a record");
    const store::StoreSummary dirty =
        store::summarizeStore(dir.string());
    EXPECT_EQ(dirty.records, 3u);
    EXPECT_EQ(dirty.invalid, 1u);
}
