/**
 * @file
 * Tests for the branch prediction substrate: direction predictors,
 * BTB, and return-address stack.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "base/random.hh"
#include "branch/bimodal.hh"
#include "branch/btb.hh"
#include "branch/gshare.hh"
#include "branch/predictor.hh"
#include "branch/ras.hh"
#include "branch/tournament.hh"
#include "sim/config.hh"

using namespace loopsim;

namespace
{

/** Train and score a predictor on a synthetic branch stream. */
double
accuracy(DirectionPredictor &pred,
         const std::vector<std::pair<Addr, bool>> &stream, ThreadId tid = 0)
{
    int correct = 0;
    for (const auto &[pc, taken] : stream) {
        if (pred.predict(pc, tid) == taken)
            ++correct;
        pred.update(pc, tid, taken);
    }
    return double(correct) / double(stream.size());
}

std::vector<std::pair<Addr, bool>>
biasedStream(int n, double bias, Addr pc = 0x100)
{
    Pcg32 rng(1234);
    std::vector<std::pair<Addr, bool>> s;
    for (int i = 0; i < n; ++i)
        s.emplace_back(pc, rng.chance(bias));
    return s;
}

} // anonymous namespace

TEST(Bimodal, LearnsStrongBias)
{
    BimodalPredictor pred(1024);
    EXPECT_GT(accuracy(pred, biasedStream(4000, 0.95)), 0.9);
    BimodalPredictor pred2(1024);
    EXPECT_GT(accuracy(pred2, biasedStream(4000, 0.05)), 0.9);
}

TEST(Bimodal, SeparateCountersPerPc)
{
    BimodalPredictor pred(1024);
    for (int i = 0; i < 50; ++i) {
        pred.update(0x100, 0, true);
        pred.update(0x104, 0, false);
    }
    EXPECT_TRUE(pred.predict(0x100, 0));
    EXPECT_FALSE(pred.predict(0x104, 0));
}

TEST(Bimodal, ResetRestoresNeutrality)
{
    BimodalPredictor pred(64);
    for (int i = 0; i < 100; ++i)
        pred.update(0x10, 0, false);
    EXPECT_FALSE(pred.predict(0x10, 0));
    pred.reset();
    // Weakly-taken initial state.
    EXPECT_TRUE(pred.predict(0x10, 0));
}

TEST(Bimodal, NonPowerOfTwoFatal)
{
    EXPECT_THROW(BimodalPredictor(1000), FatalError);
}

TEST(Gshare, LearnsAlternatingPattern)
{
    // A strict alternation is invisible to bimodal but trivial with
    // global history.
    GsharePredictor gshare(4096, 8);
    BimodalPredictor bimodal(4096);
    std::vector<std::pair<Addr, bool>> stream;
    for (int i = 0; i < 4000; ++i)
        stream.emplace_back(0x200, i % 2 == 0);
    double g = accuracy(gshare, stream);
    double b = accuracy(bimodal, stream);
    EXPECT_GT(g, 0.95);
    EXPECT_LT(b, 0.7);
}

TEST(Gshare, PerThreadHistories)
{
    GsharePredictor pred(4096, 10);
    pred.update(0x10, 0, true);
    pred.update(0x10, 0, true);
    EXPECT_NE(pred.history(0), pred.history(1));
    EXPECT_EQ(pred.history(1), 0u);
}

TEST(Gshare, BadGeometryFatal)
{
    EXPECT_THROW(GsharePredictor(1000, 8), FatalError);
    EXPECT_THROW(GsharePredictor(256, 10), FatalError); // history > index
    EXPECT_THROW(GsharePredictor(256, 0), FatalError);
}

TEST(Tournament, BeatsComponentsOnMixedStream)
{
    // Half the branches follow a per-branch bias (local predictor
    // territory), half follow an alternation (global territory).
    Pcg32 rng(7);
    std::vector<std::pair<Addr, bool>> stream;
    int phase = 0;
    for (int i = 0; i < 20000; ++i) {
        if (i % 2 == 0) {
            stream.emplace_back(0x400, (phase++ % 2) == 0);
        } else {
            stream.emplace_back(0x800, rng.chance(0.97));
        }
    }
    TournamentPredictor t;
    double acc = accuracy(t, stream);
    EXPECT_GT(acc, 0.9);
}

TEST(Tournament, LearnsLocalPeriodicPattern)
{
    // Period-4 pattern TTTN needs local history, not bias.
    TournamentPredictor t;
    std::vector<std::pair<Addr, bool>> stream;
    for (int i = 0; i < 8000; ++i)
        stream.emplace_back(0x300, i % 4 != 3);
    EXPECT_GT(accuracy(t, stream), 0.9);
}

TEST(Tournament, BadGeometryFatal)
{
    EXPECT_THROW(TournamentPredictor(1000, 10, 4096, 12), FatalError);
    EXPECT_THROW(TournamentPredictor(1024, 0, 4096, 12), FatalError);
    EXPECT_THROW(TournamentPredictor(1024, 10, 4096, 13), FatalError);
}

TEST(PredictorFactory, BuildsAllKinds)
{
    Config cfg;
    for (const char *kind : {"bimodal", "gshare", "tournament"}) {
        auto p = makeDirectionPredictor(kind, cfg);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(p->name(), kind);
    }
    EXPECT_THROW(makeDirectionPredictor("neural", cfg), FatalError);
}

TEST(PredictorFactory, HonoursConfigSizes)
{
    Config cfg;
    cfg.setUint("branch.bimodal.entries", 128);
    auto p = makeDirectionPredictor("bimodal", cfg);
    auto *b = dynamic_cast<BimodalPredictor *>(p.get());
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(b->size(), 128u);
}

TEST(Btb, MissThenHitAfterUpdate)
{
    Btb btb(256, 4);
    EXPECT_FALSE(btb.lookup(0x1000, 0).has_value());
    btb.update(0x1000, 0, 0x2000);
    auto t = btb.lookup(0x1000, 0);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(*t, 0x2000u);
}

TEST(Btb, PerThreadTags)
{
    Btb btb(256, 4);
    btb.update(0x1000, 0, 0x2000);
    EXPECT_FALSE(btb.lookup(0x1000, 1).has_value());
}

TEST(Btb, UpdateOverwritesTarget)
{
    Btb btb(256, 4);
    btb.update(0x1000, 0, 0x2000);
    btb.update(0x1000, 0, 0x3000);
    EXPECT_EQ(*btb.lookup(0x1000, 0), 0x3000u);
}

TEST(Btb, LruEvictionWithinSet)
{
    Btb btb(16, 4); // 4 sets x 4 ways
    // Five conflicting branches in one set (same set index bits).
    Addr base = 0x1000;
    std::size_t sets = btb.sets();
    for (int i = 0; i < 5; ++i)
        btb.update(base + i * 4 * sets, 0, 0x9000 + i);
    // The first-inserted (LRU) entry is gone, the rest survive.
    EXPECT_FALSE(btb.lookup(base + 0 * 4 * sets, 0).has_value());
    for (int i = 1; i < 5; ++i)
        EXPECT_TRUE(btb.lookup(base + i * 4 * sets, 0).has_value());
}

TEST(Btb, ResetForgetsEverything)
{
    Btb btb(64, 4);
    btb.update(0x42, 0, 0x43);
    btb.reset();
    EXPECT_FALSE(btb.lookup(0x42, 0).has_value());
}

TEST(Btb, BadGeometryFatal)
{
    EXPECT_THROW(Btb(100, 3), FatalError);
    EXPECT_THROW(Btb(128, 0), FatalError);
}

TEST(Ras, PushPopMatch)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_TRUE(ras.empty());
    EXPECT_EQ(ras.pop(), 0u); // empty pops are harmless
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
}

TEST(Ras, CheckpointRestoreRepairsSpeculation)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    auto cp = ras.checkpoint();

    // Wrong path: pops the good entry and pushes junk over it.
    EXPECT_EQ(ras.pop(), 0x200u);
    ras.push(0xdead);
    ras.push(0xbeef);

    ras.restore(cp);
    EXPECT_EQ(ras.size(), 2u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, RestoreToEmpty)
{
    ReturnAddressStack ras(4);
    auto cp = ras.checkpoint();
    ras.push(0x1);
    ras.push(0x2);
    ras.restore(cp);
    EXPECT_TRUE(ras.empty());
}

TEST(Ras, ZeroCapacityFatal)
{
    EXPECT_THROW(ReturnAddressStack(0), FatalError);
}
