/**
 * @file
 * Unit tests for base utilities: integer math, strings, saturating
 * counters, circular buffers, and the logging macros.
 */

#include <gtest/gtest.h>

#include "base/circular_buffer.hh"
#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/sat_counter.hh"
#include "base/str.hh"

using namespace loopsim;

TEST(IntMath, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(IntMath, Logs)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
    EXPECT_EQ(ceilLog2(1), 0u);
}

TEST(IntMath, DivCeilAndRounding)
{
    EXPECT_EQ(divCeil(10, 3), 4u);
    EXPECT_EQ(divCeil(9, 3), 3u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(roundDown(13, 8), 8u);
}

TEST(Str, TrimAndSplit)
{
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
    auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(parts[3], "c");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Str, PrefixAndCase)
{
    EXPECT_TRUE(startsWith("core.iq", "core."));
    EXPECT_FALSE(startsWith("co", "core"));
    EXPECT_EQ(toLower("SwIm"), "swim");
}

TEST(Str, Formatting)
{
    EXPECT_EQ(formatDouble(1.23456, 2), "1.23");
    EXPECT_EQ(formatPercent(0.1234, 1), "12.3%");
    EXPECT_EQ(padLeft("x", 3), "  x");
    EXPECT_EQ(padRight("x", 3), "x  ");
    EXPECT_EQ(padLeft("abcd", 3), "abcd");
}

TEST(SatCounter, SaturatesBothWays)
{
    SatCounter c(2, 0);
    EXPECT_EQ(c.max(), 3u);
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, MsbThreshold)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.msb()); // 0
    c.increment();
    EXPECT_FALSE(c.msb()); // 1
    c.increment();
    EXPECT_TRUE(c.msb()); // 2
    c.increment();
    EXPECT_TRUE(c.msb()); // 3
}

TEST(SatCounter, SetClampsAndReset)
{
    SatCounter c(3);
    c.set(100);
    EXPECT_EQ(c.value(), 7u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, BadWidthPanics)
{
    EXPECT_THROW(SatCounter(0), PanicError);
    EXPECT_THROW(SatCounter(17), PanicError);
    EXPECT_THROW(SatCounter(2, 4), PanicError);
}

TEST(CircularBuffer, FifoOrder)
{
    CircularBuffer<int> buf(4);
    EXPECT_TRUE(buf.empty());
    buf.push(1);
    buf.push(2);
    buf.push(3);
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf.front(), 1);
    EXPECT_EQ(buf.back(), 3);
    EXPECT_EQ(buf.pop(), 1);
    EXPECT_EQ(buf.pop(), 2);
    buf.push(4);
    buf.push(5);
    buf.push(6);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.pop(), 3);
    EXPECT_EQ(buf.pop(), 4);
}

TEST(CircularBuffer, IndexedAccess)
{
    CircularBuffer<int> buf(3);
    buf.push(10);
    buf.push(20);
    buf.pop();
    buf.push(30);
    buf.push(40); // storage wrapped
    EXPECT_EQ(buf[0], 20);
    EXPECT_EQ(buf[1], 30);
    EXPECT_EQ(buf[2], 40);
}

TEST(CircularBuffer, PopBack)
{
    CircularBuffer<int> buf(3);
    buf.push(1);
    buf.push(2);
    EXPECT_EQ(buf.popBack(), 2);
    EXPECT_EQ(buf.back(), 1);
}

TEST(CircularBuffer, ErrorsPanic)
{
    CircularBuffer<int> buf(2);
    EXPECT_THROW(buf.pop(), PanicError);
    EXPECT_THROW(buf.front(), PanicError);
    EXPECT_THROW(buf[0], PanicError);
    buf.push(1);
    buf.push(2);
    EXPECT_THROW(buf.push(3), PanicError);
    EXPECT_THROW(CircularBuffer<int>(0), PanicError);
}

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    EXPECT_THROW(fatal("user error ", "x"), FatalError);
    EXPECT_THROW(panic_if(true, "cond"), PanicError);
    EXPECT_NO_THROW(panic_if(false, "cond"));
    EXPECT_THROW(fatal_if(true, "cond"), FatalError);
    EXPECT_NO_THROW(fatal_if(false, "cond"));
}

TEST(Logging, MessagesCarryContent)
{
    try {
        panic("value=", 7, " name=", "x");
        FAIL() << "panic did not throw";
    } catch (const PanicError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("value=7"), std::string::npos);
        EXPECT_NE(msg.find("name=x"), std::string::npos);
    }
}
