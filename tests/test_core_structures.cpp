/**
 * @file
 * Tests for the core's bookkeeping structures: the instruction pool,
 * physical register file / scoreboard, rename map, reorder buffer,
 * instruction queue, and forwarding buffer.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "core/dyn_inst.hh"
#include "core/forwarding_buffer.hh"
#include "core/instruction_queue.hh"
#include "core/register_file.hh"
#include "core/rename.hh"
#include "core/rob.hh"

using namespace loopsim;

TEST(InstPool, AllocReleaseCycle)
{
    InstPool pool(4);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_EQ(pool.inUse(), 0u);
    InstRef a = pool.alloc();
    InstRef b = pool.alloc();
    EXPECT_EQ(pool.inUse(), 2u);
    EXPECT_TRUE(pool.live(a));
    pool.release(a);
    EXPECT_FALSE(pool.live(a));
    EXPECT_TRUE(pool.live(b));
    EXPECT_EQ(pool.inUse(), 1u);
}

TEST(InstPool, StaleRefDetectedAfterRecycle)
{
    InstPool pool(1);
    InstRef a = pool.alloc();
    pool.release(a);
    InstRef b = pool.alloc(); // recycles the same slot
    EXPECT_EQ(a.idx, b.idx);
    EXPECT_NE(a.gen, b.gen);
    EXPECT_FALSE(pool.live(a));
    EXPECT_TRUE(pool.live(b));
    EXPECT_THROW(pool.get(a), PanicError);
}

TEST(InstPool, ExhaustionAndDoubleReleasePanic)
{
    InstPool pool(2);
    pool.alloc();
    InstRef b = pool.alloc();
    EXPECT_TRUE(pool.full());
    EXPECT_THROW(pool.alloc(), PanicError);
    pool.release(b);
    EXPECT_THROW(pool.release(b), PanicError);
}

TEST(InstPool, AllocResetsEntryState)
{
    InstPool pool(1);
    InstRef a = pool.alloc();
    DynInst &inst = pool.get(a);
    inst.timesIssued = 5;
    inst.consumers.push_back(a);
    pool.release(a);
    InstRef b = pool.alloc();
    EXPECT_EQ(pool.get(b).timesIssued, 0u);
    EXPECT_TRUE(pool.get(b).consumers.empty());
    EXPECT_EQ(pool.get(b).state, InstState::Renamed);
}

TEST(PhysRegFile, AllocFreeRoundTrip)
{
    PhysRegFile prf(8);
    EXPECT_EQ(prf.numFree(), 8u);
    PhysReg r = prf.alloc(InstRef{});
    EXPECT_EQ(prf.numFree(), 7u);
    EXPECT_TRUE(prf.live(r));
    EXPECT_FALSE(prf.issueReady(r, 100)); // starts not ready
    prf.free(r);
    EXPECT_FALSE(prf.live(r));
    EXPECT_EQ(prf.numFree(), 8u);
}

TEST(PhysRegFile, ArchRegsStartReady)
{
    PhysRegFile prf(8);
    PhysReg r = prf.allocArch();
    EXPECT_TRUE(prf.issueReady(r, 0));
    EXPECT_TRUE(prf.actualReady(r, 0));
    EXPECT_TRUE(prf.writtenBack(r, 0));
}

TEST(PhysRegFile, ScoreboardTransitions)
{
    PhysRegFile prf(8);
    PhysReg r = prf.alloc(InstRef{});
    prf.setIssueReady(r, 10);
    EXPECT_FALSE(prf.issueReady(r, 9));
    EXPECT_TRUE(prf.issueReady(r, 10));
    prf.setActualReady(r, 15);
    EXPECT_FALSE(prf.actualReady(r, 14));
    EXPECT_TRUE(prf.actualReady(r, 15));
    EXPECT_EQ(prf.actualReadyAt(r), 15u);
    prf.clearIssueReady(r);
    prf.clearActualReady(r);
    EXPECT_FALSE(prf.issueReady(r, 1000000));
    EXPECT_FALSE(prf.actualReady(r, 1000000));
    prf.setWriteback(r, 24);
    EXPECT_FALSE(prf.writtenBack(r, 23));
    EXPECT_TRUE(prf.writtenBack(r, 24));
}

TEST(PhysRegFile, ReallocResetsState)
{
    PhysRegFile prf(1);
    PhysReg r = prf.alloc(InstRef{});
    prf.setIssueReady(r, 5);
    prf.setActualReady(r, 5);
    prf.setWriteback(r, 14);
    prf.free(r);
    PhysReg r2 = prf.alloc(InstRef{});
    EXPECT_EQ(r, r2);
    EXPECT_FALSE(prf.issueReady(r2, 1000));
    EXPECT_FALSE(prf.writtenBack(r2, 1000));
}

TEST(PhysRegFile, ErrorsPanic)
{
    PhysRegFile prf(2);
    PhysReg r = prf.alloc(InstRef{});
    prf.free(r);
    EXPECT_THROW(prf.free(r), PanicError); // double free
    EXPECT_THROW(prf.issueReady(99, 0), PanicError);
    prf.alloc(InstRef{});
    prf.alloc(InstRef{});
    EXPECT_THROW(prf.alloc(InstRef{}), PanicError); // exhausted
}

TEST(PhysRegFile, ProducerTracking)
{
    InstPool pool(2);
    PhysRegFile prf(4);
    InstRef producer = pool.alloc();
    PhysReg r = prf.alloc(producer);
    EXPECT_TRUE(prf.producer(r) == producer);
}

TEST(RenameMap, LookupRenameRestore)
{
    PhysRegFile prf(16);
    RenameMap map(4, prf);
    EXPECT_EQ(prf.numFree(), 12u); // 4 arch regs allocated

    PhysReg old = map.lookup(2);
    PhysReg fresh = prf.alloc(InstRef{});
    PhysReg prev = map.rename(2, fresh);
    EXPECT_EQ(prev, old);
    EXPECT_EQ(map.lookup(2), fresh);

    map.restore(2, prev);
    EXPECT_EQ(map.lookup(2), old);
    EXPECT_THROW(map.lookup(4), PanicError);
}

TEST(Rob, OrderAndWalks)
{
    InstPool pool(8);
    ReorderBuffer rob;
    InstRef a = pool.alloc();
    InstRef b = pool.alloc();
    InstRef c = pool.alloc();
    rob.push(a);
    rob.push(b);
    rob.push(c);
    EXPECT_EQ(rob.size(), 3u);
    EXPECT_TRUE(rob.head() == a);
    EXPECT_TRUE(rob.tail() == c);
    EXPECT_TRUE(rob.at(1) == b);
    rob.popTail();
    EXPECT_TRUE(rob.tail() == b);
    rob.popHead();
    EXPECT_TRUE(rob.head() == b);
    rob.popHead();
    EXPECT_TRUE(rob.empty());
    EXPECT_THROW(rob.head(), PanicError);
    EXPECT_THROW(rob.popTail(), PanicError);
}

TEST(Iq, InsertRemoveTracksSlots)
{
    InstPool pool(8);
    InstructionQueue iq(4);
    InstRef a = pool.alloc();
    InstRef b = pool.alloc();
    InstRef c = pool.alloc();
    iq.insert(pool, a);
    iq.insert(pool, b);
    iq.insert(pool, c);
    EXPECT_EQ(iq.size(), 3u);
    EXPECT_TRUE(iq.contains(pool, b));

    // Removing from the middle swap-fills; back-pointers stay valid.
    iq.remove(pool, a);
    EXPECT_FALSE(iq.contains(pool, a));
    EXPECT_TRUE(iq.contains(pool, b));
    EXPECT_TRUE(iq.contains(pool, c));
    iq.remove(pool, c);
    iq.remove(pool, b);
    EXPECT_EQ(iq.size(), 0u);
}

TEST(Iq, CapacityEnforced)
{
    InstPool pool(8);
    InstructionQueue iq(2);
    iq.insert(pool, pool.alloc());
    iq.insert(pool, pool.alloc());
    EXPECT_TRUE(iq.full());
    EXPECT_EQ(iq.freeSlots(), 0u);
    InstRef extra = pool.alloc();
    EXPECT_THROW(iq.insert(pool, extra), PanicError);
}

TEST(Iq, DoubleInsertAndGhostRemovePanic)
{
    InstPool pool(4);
    InstructionQueue iq(4);
    InstRef a = pool.alloc();
    iq.insert(pool, a);
    EXPECT_THROW(iq.insert(pool, a), PanicError);
    InstRef b = pool.alloc();
    EXPECT_THROW(iq.remove(pool, b), PanicError);
}

TEST(ForwardingBuffer, WindowEdges)
{
    ForwardingBuffer fwd(9);
    // Forwardable in the production cycle through depth-1 later.
    EXPECT_TRUE(fwd.covers(100, 100));
    EXPECT_TRUE(fwd.covers(100, 108));
    EXPECT_FALSE(fwd.covers(100, 109)); // written back now
    EXPECT_FALSE(fwd.covers(100, 99));  // not produced yet
    EXPECT_FALSE(fwd.covers(invalidCycle, 50));
    EXPECT_EQ(fwd.writebackCycle(100), 109u);
}

TEST(ForwardingBuffer, NoGapBetweenForwardAndWriteback)
{
    // The architectural identity of §2.2.1: the cycle a value leaves
    // the buffer is exactly the cycle it becomes readable from the RF.
    for (unsigned depth : {1u, 5u, 9u, 17u}) {
        ForwardingBuffer fwd(depth);
        Cycle produce = 1000;
        for (Cycle t = produce; t < produce + 2 * depth; ++t) {
            bool in_buffer = fwd.covers(produce, t);
            bool in_rf = t >= fwd.writebackCycle(produce);
            EXPECT_TRUE(in_buffer || in_rf) << "gap at " << t;
            EXPECT_FALSE(in_buffer && in_rf) << "overlap at " << t;
        }
    }
}

TEST(ForwardingBuffer, LookupCountsStats)
{
    ForwardingBuffer fwd(9);
    fwd.lookup(10, 12);   // hit
    fwd.lookup(10, 50);   // miss
    EXPECT_EQ(fwd.lookups(), 2u);
    EXPECT_EQ(fwd.hits(), 1u);
    fwd.resetStats();
    EXPECT_EQ(fwd.lookups(), 0u);
}

TEST(ForwardingBuffer, ZeroDepthFatal)
{
    EXPECT_THROW(ForwardingBuffer(0), FatalError);
}

TEST(OperandSourceNames, AllDefined)
{
    EXPECT_STREQ(operandSourceName(OperandSource::PreRead), "preread");
    EXPECT_STREQ(operandSourceName(OperandSource::Forward), "forward");
    EXPECT_STREQ(operandSourceName(OperandSource::Crc), "crc");
    EXPECT_STREQ(operandSourceName(OperandSource::RegFile), "regfile");
    EXPECT_STREQ(operandSourceName(OperandSource::Payload), "payload");
    EXPECT_STREQ(operandSourceName(OperandSource::Miss), "miss");
}
