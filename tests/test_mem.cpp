/**
 * @file
 * Tests for the memory substrate: caches, TLB, and the hierarchy.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"
#include "sim/config.hh"

using namespace loopsim;

TEST(Cache, GeometryMath)
{
    Cache c(64 * 1024, 2, 64);
    EXPECT_EQ(c.numSets(), 512u);
    EXPECT_EQ(c.lineBytes(), 64u);
    EXPECT_EQ(c.associativity(), 2u);
}

TEST(Cache, MissThenHitSameLine)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13f)); // same 64B line
    EXPECT_FALSE(c.access(0x140)); // next line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
}

TEST(Cache, LruKeepsRecentlyUsed)
{
    // 2-way set: A, B fill it; touching A then inserting C must evict B.
    Cache c(2 * 64 * 4, 2, 64); // 4 sets, 2 ways
    Addr set_stride = 4 * 64;
    Addr a = 0x0;
    Addr b = a + set_stride;
    Addr d = a + 2 * set_stride;
    c.access(a);
    c.access(b);
    c.access(a);       // refresh A
    c.access(d);       // evicts B (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, FifoIgnoresReuse)
{
    Cache c(2 * 64 * 4, 2, 64, ReplPolicy::FIFO);
    Addr set_stride = 4 * 64;
    Addr a = 0x0;
    Addr b = a + set_stride;
    Addr d = a + 2 * set_stride;
    c.access(a);
    c.access(b);
    c.access(a);       // reuse does NOT refresh under FIFO
    c.access(d);       // evicts A (oldest insertion)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, RandomPolicyStillCaches)
{
    Cache c(4096, 4, 64, ReplPolicy::Random);
    c.access(0x40);
    EXPECT_TRUE(c.access(0x40));
}

TEST(Cache, ProbeDoesNotAllocateOrCount)
{
    Cache c(1024, 2, 64);
    EXPECT_FALSE(c.probe(0x100));
    EXPECT_FALSE(c.probe(0x100)); // still absent
    EXPECT_EQ(c.hits() + c.misses(), 0u);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(1024, 2, 64);
    c.access(0x100);
    c.invalidate(0x100);
    EXPECT_FALSE(c.probe(0x100));
    c.invalidate(0x9999); // absent invalidate is a no-op
}

TEST(Cache, WorkingSetFitsAfterWarmup)
{
    Cache c(16 * 1024, 4, 64);
    // Touch a 8KB set twice; second pass must be all hits.
    for (Addr a = 0; a < 8192; a += 64)
        c.access(a);
    std::uint64_t misses_before = c.misses();
    for (Addr a = 0; a < 8192; a += 64)
        EXPECT_TRUE(c.access(a));
    EXPECT_EQ(c.misses(), misses_before);
}

TEST(Cache, BankSelection)
{
    Cache c(64 * 1024, 2, 64, ReplPolicy::LRU, 8);
    EXPECT_EQ(c.numBanks(), 8u);
    EXPECT_EQ(c.bank(0x0), 0u);
    EXPECT_EQ(c.bank(0x40), 1u);
    EXPECT_EQ(c.bank(0x40 * 8), 0u);
    EXPECT_EQ(c.bank(0x3f), c.bank(0x0)); // same line, same bank
}

TEST(Cache, ResetClearsContentAndStats)
{
    Cache c(1024, 2, 64);
    c.access(0x100);
    c.access(0x100);
    c.reset();
    EXPECT_EQ(c.hits(), 0u);
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, BadGeometryFatal)
{
    EXPECT_THROW(Cache(1000, 2, 64), FatalError); // non-2^n sets
    EXPECT_THROW(Cache(1024, 0, 64), FatalError);
    EXPECT_THROW(Cache(1024, 2, 63), FatalError);
    EXPECT_THROW(Cache(1024, 2, 64, ReplPolicy::LRU, 3), FatalError);
    EXPECT_THROW(Cache(32, 2, 64), FatalError); // smaller than one set
}

TEST(Cache, ParseReplPolicy)
{
    EXPECT_EQ(parseReplPolicy("LRU"), ReplPolicy::LRU);
    EXPECT_EQ(parseReplPolicy("fifo"), ReplPolicy::FIFO);
    EXPECT_EQ(parseReplPolicy("random"), ReplPolicy::Random);
    EXPECT_THROW(parseReplPolicy("plru"), FatalError);
}

TEST(Tlb, MissFillsEntry)
{
    Tlb tlb(4, 8192);
    EXPECT_FALSE(tlb.access(0x10000, 0));
    EXPECT_TRUE(tlb.access(0x10000, 0));
    EXPECT_TRUE(tlb.access(0x10000 + 8191, 0)); // same page
    EXPECT_FALSE(tlb.access(0x10000 + 8192, 0)); // next page
    EXPECT_EQ(tlb.hits(), 2u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruEviction)
{
    Tlb tlb(2, 8192);
    tlb.access(0 * 8192, 0);
    tlb.access(1 * 8192, 0);
    tlb.access(0 * 8192, 0); // refresh page 0
    tlb.access(2 * 8192, 0); // evicts page 1
    EXPECT_TRUE(tlb.probe(0 * 8192, 0));
    EXPECT_FALSE(tlb.probe(1 * 8192, 0));
    EXPECT_TRUE(tlb.probe(2 * 8192, 0));
}

TEST(Tlb, PerThreadEntries)
{
    Tlb tlb(8, 8192);
    tlb.access(0x4000, 0);
    EXPECT_FALSE(tlb.probe(0x4000, 1));
    EXPECT_TRUE(tlb.probe(0x4000, 0));
}

TEST(Tlb, BadGeometryFatal)
{
    EXPECT_THROW(Tlb(0, 8192), FatalError);
    EXPECT_THROW(Tlb(8, 1000), FatalError);
}

namespace
{

Config
hierarchyConfig()
{
    Config cfg;
    cfg.setUint("mem.l1.size", 4096);
    cfg.setUint("mem.l1.assoc", 2);
    cfg.setUint("mem.l1.latency", 3);
    cfg.setUint("mem.l2.size", 65536);
    cfg.setUint("mem.l2.latency", 12);
    cfg.setUint("mem.latency", 150);
    cfg.setUint("mem.tlb.entries", 4);
    return cfg;
}

} // anonymous namespace

TEST(Hierarchy, LatencyByLevel)
{
    Config cfg = hierarchyConfig();
    MemoryHierarchy mem(cfg);

    // Cold access: misses everywhere.
    auto r0 = mem.access(0x100, 0, false, 1);
    EXPECT_EQ(r0.level, MemLevel::Memory);
    EXPECT_EQ(r0.latency, 3u + 12u + 150u);
    EXPECT_TRUE(r0.tlbMiss);

    // Now L1 resident.
    auto r1 = mem.access(0x100, 0, false, 2);
    EXPECT_EQ(r1.level, MemLevel::L1);
    EXPECT_EQ(r1.latency, 3u);
    EXPECT_FALSE(r1.tlbMiss);
    EXPECT_TRUE(r1.isPredictableHit());
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    Config cfg = hierarchyConfig();
    MemoryHierarchy mem(cfg);
    // Fill well beyond L1 (4KB) but within L2 (64KB).
    for (Addr a = 0; a < 32768; a += 64)
        mem.access(a, 0, false, a / 64 + 1);
    // Address 0 was evicted from L1 but lives in L2.
    auto r = mem.access(0x0, 0, false, 10000);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.latency, 3u + 12u);
}

TEST(Hierarchy, SameCycleSameBankLoadsConflict)
{
    Config cfg = hierarchyConfig();
    cfg.setUint("mem.l1.banks", 4);
    MemoryHierarchy mem(cfg);
    // Warm both lines first.
    mem.access(0x0, 0, false, 1);
    mem.access(0x0 + 4 * 64, 0, false, 2);

    auto a = mem.access(0x0, 0, false, 10);
    auto b = mem.access(0x0 + 4 * 64, 0, false, 10); // same bank
    EXPECT_FALSE(a.bankConflict);
    EXPECT_TRUE(b.bankConflict);
    EXPECT_EQ(b.latency, a.latency + 1);
    EXPECT_FALSE(b.isPredictableHit());

    // A new cycle clears the arbitration.
    auto c = mem.access(0x0 + 4 * 64, 0, false, 11);
    EXPECT_FALSE(c.bankConflict);
}

TEST(Hierarchy, StoresDoNotContendForLoadBanks)
{
    Config cfg = hierarchyConfig();
    cfg.setUint("mem.l1.banks", 4);
    MemoryHierarchy mem(cfg);
    mem.access(0x0, 0, false, 1);
    mem.access(0x0, 0, true, 5);  // store
    auto r = mem.access(0x0, 0, false, 5); // same cycle load
    EXPECT_FALSE(r.bankConflict);
}

TEST(Hierarchy, DifferentBanksNoConflict)
{
    Config cfg = hierarchyConfig();
    cfg.setUint("mem.l1.banks", 4);
    MemoryHierarchy mem(cfg);
    mem.access(0x0, 0, false, 1);
    mem.access(0x40, 0, false, 1); // adjacent line, different bank
    EXPECT_EQ(mem.bankConflicts(), 0u);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    Config cfg = hierarchyConfig();
    MemoryHierarchy mem(cfg);
    mem.access(0x100, 0, false, 1);
    mem.reset();
    auto r = mem.access(0x100, 0, false, 2);
    EXPECT_EQ(r.level, MemLevel::Memory);
    EXPECT_EQ(mem.accesses(), 1u);
}

TEST(Hierarchy, LevelNames)
{
    EXPECT_STREQ(memLevelName(MemLevel::L1), "L1");
    EXPECT_STREQ(memLevelName(MemLevel::L2), "L2");
    EXPECT_STREQ(memLevelName(MemLevel::Memory), "Memory");
}
