/**
 * @file
 * Tests for benchmark profiles, workload resolution, and the micro-op
 * model.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "sim/config.hh"
#include "workload/generator.hh"
#include "workload/micro_op.hh"
#include "workload/profile.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

TEST(MicroOp, ClassPredicates)
{
    MicroOp op;
    op.opClass = OpClass::Load;
    EXPECT_TRUE(op.isLoad());
    EXPECT_FALSE(op.isStore());
    EXPECT_FALSE(op.isBranch());
    op.opClass = OpClass::BranchCond;
    EXPECT_TRUE(op.isBranch());
    EXPECT_TRUE(op.isCondBranch());
    op.opClass = OpClass::BranchUncond;
    EXPECT_TRUE(op.isBranch());
    EXPECT_FALSE(op.isCondBranch());
}

TEST(MicroOp, SourceAndDestCounting)
{
    MicroOp op;
    EXPECT_EQ(op.numSrcs(), 0u);
    EXPECT_FALSE(op.hasDest());
    op.src[0] = 3;
    EXPECT_EQ(op.numSrcs(), 1u);
    op.src[1] = 4;
    EXPECT_EQ(op.numSrcs(), 2u);
    op.dest = 9;
    EXPECT_TRUE(op.hasDest());
}

TEST(MicroOp, ClassNamesAndLatencies)
{
    for (std::size_t i = 0; i < numOpClasses; ++i) {
        OpClass cls = static_cast<OpClass>(i);
        EXPECT_NE(opClassName(cls), nullptr);
        EXPECT_GE(opClassLatency(cls), 1u);
    }
    EXPECT_EQ(opClassLatency(OpClass::IntAlu), 1u);
    EXPECT_GT(opClassLatency(OpClass::FpDiv),
              opClassLatency(OpClass::FpAdd));
}

TEST(MicroOp, ToStringMentionsKeyFields)
{
    MicroOp op;
    op.seq = 12;
    op.opClass = OpClass::Load;
    op.dest = 5;
    op.src[0] = 7;
    op.effAddr = 0xabc;
    std::string s = op.toString();
    EXPECT_NE(s.find("#12"), std::string::npos);
    EXPECT_NE(s.find("Load"), std::string::npos);
    EXPECT_NE(s.find("d=r5"), std::string::npos);
    EXPECT_NE(s.find("s0=r7"), std::string::npos);
}

TEST(Profile, AllSpec95ProfilesValidate)
{
    for (const auto &name : spec95Names()) {
        BenchmarkProfile p = spec95Profile(name);
        EXPECT_NO_THROW(p.validate()) << name;
        EXPECT_EQ(p.name, name);
    }
    EXPECT_EQ(spec95Names().size(), 10u);
}

TEST(Profile, ShortAliasesResolve)
{
    EXPECT_EQ(spec95Profile("comp").name, "compress");
    EXPECT_EQ(spec95Profile("m88").name, "m88ksim");
    EXPECT_EQ(spec95Profile("hydro").name, "hydro2d");
    EXPECT_EQ(spec95Profile("SWIM").name, "swim"); // case-insensitive
}

TEST(Profile, UnknownNameFatal)
{
    EXPECT_THROW(spec95Profile("doom"), FatalError);
}

TEST(Profile, ValidationCatchesBadValues)
{
    BenchmarkProfile p = spec95Profile("swim");
    p.loadFrac = 1.5;
    EXPECT_THROW(p.validate(), FatalError);

    p = spec95Profile("swim");
    p.loadFrac = 0.8;
    p.storeFrac = 0.5; // mix > 1
    EXPECT_THROW(p.validate(), FatalError);

    p = spec95Profile("swim");
    p.depDistWeights = {1, 2, 3}; // wrong length
    EXPECT_THROW(p.validate(), FatalError);

    p = spec95Profile("swim");
    p.l2ResidentFrac = 0.7;
    p.farFrac = 0.5;
    EXPECT_THROW(p.validate(), FatalError);

    p = spec95Profile("swim");
    p.hotRegCount = 9;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Profile, CalibrationShape)
{
    // The cross-benchmark ordering the paper's analysis rests on.
    auto comp = spec95Profile("compress");
    auto m88 = spec95Profile("m88ksim");
    auto go = spec95Profile("go");
    auto swim = spec95Profile("swim");
    auto hydro = spec95Profile("hydro2d");
    auto apsi = spec95Profile("apsi");

    // Integer codes are branchier and less predictable than m88ksim.
    EXPECT_GT(comp.condBranchFrac, m88.condBranchFrac);
    EXPECT_GT(go.mispredictRate, m88.mispredictRate);
    // swim misses into the L2; hydro2d misses into memory.
    EXPECT_GT(swim.l2ResidentFrac, hydro.l2ResidentFrac);
    EXPECT_GT(hydro.farFrac, swim.farFrac);
    // apsi is the serial-chain, high-fan-out program.
    EXPECT_GT(apsi.serialChainFrac, 0.5);
    EXPECT_GT(apsi.hotSrcFrac, 0.0);
    EXPECT_DOUBLE_EQ(swim.serialChainFrac, 0.0);
}

TEST(WorkloadSet, SingleBenchmarks)
{
    Workload w = resolveWorkload("gcc");
    EXPECT_EQ(w.threads.size(), 1u);
    EXPECT_FALSE(w.multiThreaded());
    EXPECT_EQ(w.threads[0].name, "gcc");
}

TEST(WorkloadSet, PaperPairs)
{
    Workload w = resolveWorkload("m88-comp");
    ASSERT_EQ(w.threads.size(), 2u);
    EXPECT_TRUE(w.multiThreaded());
    EXPECT_EQ(w.threads[0].name, "m88ksim");
    EXPECT_EQ(w.threads[1].name, "compress");

    EXPECT_EQ(resolveWorkload("go-su2cor").threads[1].name, "su2cor");
    EXPECT_EQ(resolveWorkload("apsi-swim").threads[0].name, "apsi");
}

TEST(WorkloadSet, GenericPairs)
{
    Workload w = resolveWorkload("swim-gcc");
    ASSERT_EQ(w.threads.size(), 2u);
    EXPECT_EQ(w.threads[0].name, "swim");
    EXPECT_EQ(w.threads[1].name, "gcc");
}

TEST(WorkloadSet, UnresolvableFatal)
{
    EXPECT_THROW(resolveWorkload("swim-doom"), FatalError);
    EXPECT_THROW(resolveWorkload(""), FatalError);
}

TEST(WorkloadSet, FigureWorkloadsMatchPaperOrder)
{
    const auto &all = figureWorkloads();
    ASSERT_EQ(all.size(), 13u);
    EXPECT_EQ(figureLabel(all[0]), "comp");
    EXPECT_EQ(figureLabel(all[3]), "m88");
    EXPECT_EQ(figureLabel(all[5]), "hydro");
    EXPECT_EQ(figureLabel(all[9]), "turb3d");
    EXPECT_EQ(figureLabel(all[10]), "m88-comp");
    EXPECT_EQ(figureLabel(all[12]), "apsi-swim");
    for (std::size_t i = 10; i < 13; ++i)
        EXPECT_TRUE(all[i].multiThreaded());
}

TEST(ProfileFromConfig, DefaultsAndOverrides)
{
    Config cfg;
    cfg.set("workload.base", "swim");
    cfg.setDouble("workload.load_frac", 0.4);
    cfg.setUint("workload.seed", 99);
    BenchmarkProfile p = profileFromConfig(cfg);
    EXPECT_EQ(p.name, "swim");
    EXPECT_DOUBLE_EQ(p.loadFrac, 0.4);
    EXPECT_EQ(p.seed, 99u);
    // Untouched fields keep the base profile's values.
    EXPECT_DOUBLE_EQ(p.l2ResidentFrac,
                     spec95Profile("swim").l2ResidentFrac);
}

TEST(ProfileFromConfig, NoBaseUsesDefaults)
{
    Config cfg;
    cfg.set("workload.name", "mine");
    BenchmarkProfile p = profileFromConfig(cfg);
    EXPECT_EQ(p.name, "mine");
    EXPECT_DOUBLE_EQ(p.loadFrac, BenchmarkProfile{}.loadFrac);
}

TEST(ProfileFromConfig, ValidatesResult)
{
    Config cfg;
    cfg.setDouble("workload.load_frac", 0.9);
    cfg.setDouble("workload.store_frac", 0.5);
    EXPECT_THROW(profileFromConfig(cfg), FatalError);
}

TEST(ProfileFromConfig, RunsEndToEnd)
{
    Config cfg;
    cfg.set("workload.base", "m88ksim");
    cfg.setDouble("workload.mispredict", 0.2);
    BenchmarkProfile p = profileFromConfig(cfg);
    SyntheticTraceGenerator gen(p, 0, 3000);
    MicroOp op;
    std::uint64_t n = 0;
    while (gen.next(op))
        ++n;
    EXPECT_EQ(n, 3000u);
}
