/**
 * @file
 * Tests for the substrate extensions: memory barriers (the paper's §1
 * stall-managed loop), the optional I-cache model, and the MSHR limit
 * on memory-level parallelism.
 */

#include <gtest/gtest.h>

#include "core_test_util.hh"
#include "mem/hierarchy.hh"

using namespace loopsim;
using namespace loopsim::opbuild;
using namespace loopsim::testutil;

namespace
{

MicroOp
barrier()
{
    MicroOp op;
    op.opClass = OpClass::MemBarrier;
    return op;
}

} // anonymous namespace

TEST(MemBarrier, OpClassBasics)
{
    MicroOp b = barrier();
    EXPECT_TRUE(b.isBarrier());
    EXPECT_FALSE(b.isBranch());
    EXPECT_EQ(b.numSrcs(), 0u);
    EXPECT_STREQ(opClassName(OpClass::MemBarrier), "MemBarrier");
}

TEST(MemBarrier, DrainsThePipelineBeforeProceeding)
{
    // ops, barrier, ops: everything retires, and the barrier costs a
    // full pipeline drain, so the run is much slower than without it.
    std::vector<MicroOp> with;
    std::vector<MicroOp> without;
    for (int rep = 0; rep < 10; ++rep) {
        for (int i = 0; i < 16; ++i) {
            with.push_back(alu(static_cast<ArchReg>(i % 40)));
            without.push_back(alu(static_cast<ArchReg>(i % 40)));
        }
        with.push_back(barrier());
        without.push_back(nop());
    }
    auto h_with = makeHarness(with);
    h_with.run();
    auto h_without = makeHarness(without);
    h_without.run();
    EXPECT_EQ(h_with.core->retiredOps(), with.size());
    // Each barrier costs roughly a pipeline refill (~20 cycles).
    EXPECT_GT(h_with.core->cyclesRun(),
              h_without.core->cyclesRun() + 10 * 12);
}

TEST(MemBarrier, BarrierFirstDoesNotDeadlock)
{
    std::vector<MicroOp> ops;
    ops.push_back(barrier());
    ops.push_back(alu(1));
    auto h = makeHarness(ops);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 2u);
}

TEST(MemBarrier, ProfileKnobGeneratesBarriers)
{
    BenchmarkProfile p = spec95Profile("m88ksim");
    p.barrierFrac = 0.01;
    p.validate();
    SyntheticTraceGenerator gen(p, 0, 20000);
    MicroOp op;
    int barriers = 0;
    while (gen.next(op))
        barriers += op.isBarrier() ? 1 : 0;
    EXPECT_NEAR(barriers / 20000.0, 0.01, 0.005);
}

TEST(MemBarrier, ProfileWorkloadRunsEndToEnd)
{
    BenchmarkProfile p = spec95Profile("m88ksim");
    p.barrierFrac = 0.005;
    SyntheticTraceGenerator gen(p, 0, 10000);
    std::vector<TraceSource *> srcs{&gen};
    Config cfg;
    Core core(cfg, srcs);
    Simulator sim;
    sim.add(&core);
    sim.run(5000000);
    ASSERT_FALSE(sim.hitCycleLimit());
    EXPECT_EQ(core.retiredOps(), 10000u);
    core.checkQuiescent();
}

TEST(ICache, DisabledByDefault)
{
    Config cfg;
    MemoryHierarchy mem(cfg);
    EXPECT_FALSE(mem.icacheEnabled());
    auto res = mem.fetchAccess(0x1000, 0);
    EXPECT_EQ(res.latency, 0u);
}

TEST(ICache, MissThenHit)
{
    Config cfg;
    cfg.setBool("mem.icache.enable", true);
    MemoryHierarchy mem(cfg);
    ASSERT_TRUE(mem.icacheEnabled());
    auto miss = mem.fetchAccess(0x1000, 0);
    EXPECT_GT(miss.latency, 0u);
    auto hit = mem.fetchAccess(0x1000, 0);
    EXPECT_EQ(hit.latency, 0u);
    auto same_line = mem.fetchAccess(0x103c, 0);
    EXPECT_EQ(same_line.latency, 0u);
}

TEST(ICache, ColdFetchStallsButCompletes)
{
    Config cfg;
    cfg.setBool("mem.icache.enable", true);
    std::vector<MicroOp> ops;
    for (int i = 0; i < 200; ++i)
        ops.push_back(alu(static_cast<ArchReg>(i % 40)));
    auto h = makeHarness(ops, cfg);
    h.run();
    EXPECT_EQ(h.core->retiredOps(), 200u);

    // The same kernel without the I-cache is faster (no cold refills).
    auto h2 = makeHarness(ops);
    h2.run();
    EXPECT_GT(h.core->cyclesRun(), h2.core->cyclesRun());
}

TEST(Mshr, LimitSerialisesMissBursts)
{
    // Ten same-cycle misses with 2 MSHRs must queue: the last fill
    // completes much later than with 16 MSHRs.
    auto fill_time = [](unsigned mshrs) {
        Config cfg;
        cfg.setUint("mem.mshrs", mshrs);
        MemoryHierarchy mem(cfg);
        // Warm the TLB pages so only the cache misses matter.
        for (int i = 0; i < 10; ++i)
            mem.access(0x10000 + i * 64, 0, false, 1);
        mem.reset();
        for (int i = 0; i < 10; ++i)
            mem.access(0x10000 + i * 64, 0, false, 1);
        unsigned max_latency = 0;
        // Replay the same lines after reset: all miss again.
        mem.reset();
        for (int i = 0; i < 10; ++i) {
            auto r = mem.access(0x20000 + i * 64, 0, false, 5);
            max_latency = std::max(max_latency, r.latency);
        }
        return max_latency;
    };
    EXPECT_GT(fill_time(2), fill_time(16) + 100);
}

TEST(Mshr, StallsAreCounted)
{
    Config cfg;
    cfg.setUint("mem.mshrs", 1);
    MemoryHierarchy mem(cfg);
    mem.access(0x10000, 0, false, 1);
    mem.access(0x20000, 0, false, 1); // second miss waits for the first
    EXPECT_GT(mem.mshrStallCycles(), 0u);
}

TEST(Mshr, HitsNeverWaitForMshrs)
{
    Config cfg;
    cfg.setUint("mem.mshrs", 1);
    MemoryHierarchy mem(cfg);
    mem.access(0x10000, 0, false, 1); // miss occupies the single MSHR
    mem.access(0x20000, 0, false, 1); // miss queues
    auto hit = mem.access(0x10000, 0, false, 2);
    EXPECT_EQ(hit.level, MemLevel::L1);
    EXPECT_LE(hit.latency, 4u);
}
