/**
 * @file
 * Tests for crash-isolated campaign supervision: forked workers
 * round-tripping results bit-exactly, injected worker crashes
 * (including SIGKILL) and wall-clock deadline overruns degrading to
 * crash/timeout cells after backoff respawns, campaign journals
 * replaying completed and poison cells on resume, journal maintenance
 * (torn tails, pruning), plan fingerprint sensitivity, and a real
 * SIGINT drain of a forked campaign that resumes from its journal.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"
#include "harness/supervisor.hh"
#include "store/fingerprint.hh"
#include "store/journal.hh"
#include "store/result_store.hh"

using namespace loopsim;
namespace fs = std::filesystem;

namespace
{

RunSpec
smallSpec(const std::string &workload, std::uint64_t ops = 4000)
{
    RunSpec spec;
    spec.workload = resolveWorkload(workload);
    spec.totalOps = ops;
    spec.warmupOps = 1000;
    return spec;
}

/** The campaign tests' deliberately-wedged configuration: the
 *  in-process fail-soft path fires quickly and deterministically. */
Config
wedgeConfig()
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setDouble("integrity.fault.wakeup_drop", 1.0);
    cfg.setUint("integrity.watchdog.window", 10000);
    cfg.setUint("integrity.retry.attempts", 1);
    return cfg;
}

/** Process-fault overrides: crash (or hang) the worker once it has
 *  retired @p at ops. Supervision kept fast: no backoff to speak of. */
Config
crashConfig(std::uint64_t at, int sig, unsigned attempts)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.crash_at_op", at);
    cfg.setUint("integrity.fault.crash_signal",
                static_cast<std::uint64_t>(sig));
    cfg.setUint("integrity.supervisor.attempts", attempts);
    cfg.setUint("integrity.supervisor.backoff_ms", 1);
    return cfg;
}

Config
hangConfig(std::uint64_t at, std::uint64_t deadline_ms)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setUint("integrity.fault.hang_at_op", at);
    cfg.setUint("integrity.supervisor.attempts", 1);
    cfg.setUint("integrity.supervisor.deadline_ms", deadline_ms);
    return cfg;
}

/** A fresh, empty directory under the test temp root.  The pid suffix keeps
 *  the aggregate and label-specific test binaries (which compile the same
 *  sources) from clobbering each other when ctest runs them in parallel. */
fs::path
freshDir(const std::string &name)
{
    fs::path dir =
        fs::path(::testing::TempDir()) / (name + "." + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Restore every process-wide supervision knob on scope exit, so one
 *  failing test cannot poison the rest of the binary. */
struct SupervisionScope
{
    ~SupervisionScope()
    {
        setIsolation(false);
        setDeadlineMs(0);
        store::setJournalPath("");
        store::resetProcessStore();
        clearRunOverlay();
        setCampaignJobs(0);
    }
};

/** Bit-exact equality of everything the figures can see. */
void
expectSameResult(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.workloadLabel, b.workloadLabel);
    EXPECT_EQ(a.pipeLabel, b.pipeLabel);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.failKind, b.failKind);
    EXPECT_EQ(a.error, b.error);
    if (!a.failed) {
        EXPECT_EQ(a.ipc, b.ipc);
    } else {
        EXPECT_EQ(pointFailKind(a.ipc), pointFailKind(b.ipc));
    }
    EXPECT_EQ(a.operandSourceFractions, b.operandSourceFractions);
    EXPECT_EQ(a.operandSourceCounts, b.operandSourceCounts);
    EXPECT_EQ(a.gapCdf, b.gapCdf);
    EXPECT_EQ(a.scalars, b.scalars);
}

void
expectSameResults(const std::vector<RunResult> &a,
                  const std::vector<RunResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expectSameResult(a[i], b[i]);
    }
}

} // anonymous namespace

TEST(SupervisorPolicyTest, FromConfigDefaultsAndOverrides)
{
    SupervisionScope scope;
    setDeadlineMs(0);

    SupervisorPolicy def = SupervisorPolicy::fromConfig(Config{});
    EXPECT_EQ(def.attempts, 2u);
    EXPECT_EQ(def.deadlineMs, 0u);
    EXPECT_EQ(def.backoffMs, 100u);
    EXPECT_DOUBLE_EQ(def.backoffGrowth, 2.0);
    EXPECT_EQ(def.backoffMaxMs, 2000u);

    // The process-wide deadline is the .deadline_ms default...
    setDeadlineMs(750);
    EXPECT_EQ(SupervisorPolicy::fromConfig(Config{}).deadlineMs, 750u);

    // ...and explicit keys win over both defaults.
    Config cfg;
    cfg.setUint("integrity.supervisor.attempts", 5);
    cfg.setUint("integrity.supervisor.deadline_ms", 123);
    cfg.setUint("integrity.supervisor.backoff_ms", 7);
    cfg.setDouble("integrity.supervisor.backoff_growth", 3.0);
    cfg.setUint("integrity.supervisor.backoff_max_ms", 11);
    SupervisorPolicy p = SupervisorPolicy::fromConfig(cfg);
    EXPECT_EQ(p.attempts, 5u);
    EXPECT_EQ(p.deadlineMs, 123u);
    EXPECT_EQ(p.backoffMs, 7u);
    EXPECT_DOUBLE_EQ(p.backoffGrowth, 3.0);
    EXPECT_EQ(p.backoffMaxMs, 11u);
}

TEST(SupervisorFlags, SettersWinOverEnvironment)
{
    SupervisionScope scope;
    ASSERT_TRUE(isolationSupported());

    setIsolation(true);
    EXPECT_TRUE(isolationActive());
    setIsolation(false);
    EXPECT_FALSE(isolationActive());

    setDeadlineMs(4321);
    EXPECT_EQ(deadlineMs(), 4321u);
    setDeadlineMs(0);
    EXPECT_EQ(deadlineMs(), 0u);
}

TEST(SupervisedRun, HealthyCellMatchesInProcessBitExactly)
{
    SupervisionScope scope;
    RunSpec spec = smallSpec("gcc");

    RunResult inproc = runOnce(spec);
    SupervisedOutcome so = runCellSupervised(spec, {}, "gcc cell");

    EXPECT_EQ(so.attempts, 1u);
    EXPECT_EQ(so.crashes, 0u);
    EXPECT_EQ(so.timeouts, 0u);
    EXPECT_FALSE(so.interrupted);
    expectSameResult(so.result, inproc);
}

TEST(SupervisedRun, SimFailureTravelsTheWireAsFailNotCrash)
{
    SupervisionScope scope;
    RunSpec spec = smallSpec("gcc");
    spec.overrides = wedgeConfig();

    SupervisedOutcome so = runCellSupervised(spec, {}, "wedge cell");

    // The child fail-softed in-process and exited cleanly: the wire
    // carries a Sim verdict, not a worker death.
    EXPECT_EQ(so.crashes, 0u);
    EXPECT_TRUE(so.result.failed);
    EXPECT_EQ(so.result.failKind, FailKind::Sim);
    EXPECT_EQ(pointFailKind(so.result.ipc), FailKind::Sim);
}

TEST(SupervisedRun, CrashDegradesAfterBackoffRespawns)
{
    SupervisionScope scope;
    RunSpec spec = smallSpec("gcc");
    spec.overrides = crashConfig(500, SIGABRT, 2);

    SupervisedOutcome so = runCellSupervised(spec, {}, "crash cell");

    EXPECT_EQ(so.attempts, 2u);
    EXPECT_EQ(so.crashes, 2u);
    EXPECT_EQ(so.timeouts, 0u);
    EXPECT_EQ(so.backoffWaits, 1u);
    EXPECT_TRUE(so.result.failed);
    EXPECT_EQ(so.result.failKind, FailKind::Crash);
    EXPECT_EQ(pointFailKind(so.result.ipc), FailKind::Crash);
    EXPECT_NE(so.result.error.find("signal"), std::string::npos);
    // Crash cells still render like any other cell.
    EXPECT_FALSE(so.result.workloadLabel.empty());
    EXPECT_FALSE(so.result.pipeLabel.empty());
}

TEST(SupervisedRun, SigkilledWorkerIsACrash)
{
    SupervisionScope scope;
    RunSpec spec = smallSpec("gcc");
    spec.overrides = crashConfig(500, SIGKILL, 1);

    SupervisedOutcome so = runCellSupervised(spec, {}, "kill cell");

    EXPECT_EQ(so.attempts, 1u);
    EXPECT_EQ(so.crashes, 1u);
    EXPECT_TRUE(so.result.failed);
    EXPECT_EQ(so.result.failKind, FailKind::Crash);
    EXPECT_NE(so.result.error.find("signal 9"), std::string::npos);
}

TEST(SupervisedRun, DeadlineReapsHungWorker)
{
    SupervisionScope scope;
    RunSpec spec = smallSpec("gcc");
    spec.overrides = hangConfig(500, 300);

    SupervisedOutcome so = runCellSupervised(spec, {}, "hang cell");

    EXPECT_EQ(so.attempts, 1u);
    EXPECT_EQ(so.timeouts, 1u);
    EXPECT_EQ(so.crashes, 0u);
    EXPECT_TRUE(so.result.failed);
    EXPECT_EQ(so.result.failKind, FailKind::Timeout);
    EXPECT_EQ(pointFailKind(so.result.ipc), FailKind::Timeout);
    EXPECT_NE(so.result.error.find("deadline"), std::string::npos);
}

TEST(JournalTest, AppendReopenReplaysVerdictsIncluded)
{
    fs::path dir = freshDir("journal_replay");
    store::Fingerprint plan_fp{0x1111u, 0x2222u};
    store::Fingerprint fp_ok{0xaaaau, 1u};
    store::Fingerprint fp_bad{0xbbbbu, 2u};

    RunResult ok = runOnce(smallSpec("gcc", 2000));
    RunResult bad;
    bad.failed = true;
    bad.failKind = FailKind::Crash;
    bad.error = "worker died on signal 11";
    bad.workloadLabel = "gcc";
    bad.pipeLabel = "5_5";
    bad.ipc = failPoint(FailKind::Crash);

    {
        store::CampaignJournal j(dir.string(), plan_fp, 3);
        ASSERT_TRUE(j.ok());
        EXPECT_TRUE(j.replayed().empty());
        j.append(fp_ok, ok);
        j.append(fp_bad, bad);
    }

    store::CampaignJournal j(dir.string(), plan_fp, 3);
    ASSERT_TRUE(j.ok());
    ASSERT_EQ(j.replayed().size(), 2u);
    expectSameResult(j.replayed().at(fp_ok), ok);
    const RunResult &poison = j.replayed().at(fp_bad);
    EXPECT_TRUE(poison.failed);
    EXPECT_EQ(poison.failKind, FailKind::Crash);
    EXPECT_EQ(poison.error, "worker died on signal 11");

    auto scanned = store::scanJournals(dir.string());
    ASSERT_EQ(scanned.size(), 1u);
    EXPECT_TRUE(scanned[0].headerOk);
    EXPECT_EQ(scanned[0].entries, 2u);
    EXPECT_EQ(scanned[0].poison, 1u);
    EXPECT_EQ(scanned[0].planCells, 3u);
    EXPECT_FALSE(scanned[0].complete());
    EXPECT_FALSE(scanned[0].truncatedTail());
}

TEST(JournalTest, TornTailIsDetectedAndTruncatedOnReopen)
{
    fs::path dir = freshDir("journal_torn");
    store::Fingerprint plan_fp{0x3333u, 0x4444u};
    store::Fingerprint fp{0xccccu, 3u};
    RunResult ok = runOnce(smallSpec("gcc", 2000));

    std::string path;
    {
        store::CampaignJournal j(dir.string(), plan_fp, 2);
        ASSERT_TRUE(j.ok());
        j.append(fp, ok);
        path = j.path();
    }

    // A crash mid-append leaves a short, garbled tail.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write("\x40\x00\x00\x00torn", 8);
    }
    auto scanned = store::scanJournals(dir.string());
    ASSERT_EQ(scanned.size(), 1u);
    EXPECT_TRUE(scanned[0].headerOk);
    EXPECT_EQ(scanned[0].entries, 1u);
    EXPECT_TRUE(scanned[0].truncatedTail());

    // Reopening replays the valid prefix and truncates the tail, so
    // the next append lands on clean framing.
    {
        store::CampaignJournal j(dir.string(), plan_fp, 2);
        ASSERT_TRUE(j.ok());
        EXPECT_EQ(j.replayed().size(), 1u);
        j.append(store::Fingerprint{0xddddu, 4u}, ok);
    }
    scanned = store::scanJournals(dir.string());
    ASSERT_EQ(scanned.size(), 1u);
    EXPECT_EQ(scanned[0].entries, 2u);
    EXPECT_FALSE(scanned[0].truncatedTail());
    EXPECT_TRUE(scanned[0].complete());
}

TEST(JournalTest, MismatchedHeaderStartsOver)
{
    fs::path dir = freshDir("journal_foreign");
    store::Fingerprint plan_fp{0x5555u, 0x6666u};
    RunResult ok = runOnce(smallSpec("gcc", 2000));

    std::string path;
    {
        store::CampaignJournal j(dir.string(), plan_fp, 2);
        ASSERT_TRUE(j.ok());
        j.append(store::Fingerprint{1u, 1u}, ok);
        path = j.path();
    }

    // Same plan fingerprint, different plan size: a stale journal from
    // an edited campaign must not replay into the new one.
    store::CampaignJournal j(dir.string(), plan_fp, 7);
    ASSERT_TRUE(j.ok());
    EXPECT_TRUE(j.replayed().empty());
}

TEST(JournalTest, PruneRemovesCompletedKeepsResumable)
{
    fs::path dir = freshDir("journal_prune");
    RunResult ok = runOnce(smallSpec("gcc", 2000));

    {
        store::CampaignJournal complete(dir.string(),
                                        store::Fingerprint{1u, 0u}, 1);
        complete.append(store::Fingerprint{10u, 0u}, ok);
        store::CampaignJournal partial(dir.string(),
                                       store::Fingerprint{2u, 0u}, 5);
        partial.append(store::Fingerprint{20u, 0u}, ok);
    }
    ASSERT_EQ(store::scanJournals(dir.string()).size(), 2u);

    EXPECT_EQ(store::pruneJournals(dir.string()), 1u);
    auto left = store::scanJournals(dir.string());
    ASSERT_EQ(left.size(), 1u);
    EXPECT_FALSE(left[0].complete());
}

TEST(PlanFingerprintTest, StableAndSensitive)
{
    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "a");
    plan.add(smallSpec("swim"), "b");

    CampaignPlan same;
    same.add(smallSpec("gcc"), "renamed"); // labels are diagnostic only
    same.add(smallSpec("swim"));
    EXPECT_EQ(fingerprintPlan(plan), fingerprintPlan(same));

    CampaignPlan reordered;
    reordered.add(smallSpec("swim"));
    reordered.add(smallSpec("gcc"));
    EXPECT_NE(fingerprintPlan(plan), fingerprintPlan(reordered));

    CampaignPlan grown = plan;
    grown.add(smallSpec("turb3d"));
    EXPECT_NE(fingerprintPlan(plan), fingerprintPlan(grown));

    CampaignPlan tweaked;
    tweaked.add(smallSpec("gcc", 4001));
    tweaked.add(smallSpec("swim"));
    EXPECT_NE(fingerprintPlan(plan), fingerprintPlan(tweaked));

    RetryPolicy other;
    other.attempts = 7;
    EXPECT_NE(fingerprintPlan(plan), fingerprintPlan(plan, other));
}

TEST(CampaignIsolation, CrashedCellLosesOnlyItself)
{
    SupervisionScope scope;
    store::resetProcessStore();

    // Campaign-wide fault overlay, targeted at one workload: only the
    // swim cell crashes, the rest of the sweep must stay healthy.
    Config overlay;
    overlay.setBool("integrity.fault.enable", true);
    overlay.setUint("integrity.fault.crash_at_op", 500);
    overlay.set("integrity.fault.crash_target", "swim");
    overlay.setUint("integrity.supervisor.attempts", 1);
    setRunOverlay(overlay);
    setIsolation(true);

    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc");
    plan.add(smallSpec("swim"), "swim");
    plan.add(smallSpec("turb3d"), "turb3d");
    std::vector<RunResult> results = runCampaign(plan, {}, 2);

    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_TRUE(results[1].failed);
    EXPECT_EQ(results[1].failKind, FailKind::Crash);
    EXPECT_FALSE(results[2].failed);

    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.isolatedRuns, 3u);
    EXPECT_EQ(t.crashes, 1u);
    EXPECT_EQ(t.timeouts, 0u);
    EXPECT_EQ(t.failures, 1u);
    EXPECT_FALSE(t.interrupted);
}

TEST(CampaignIsolation, HungCellTimesOutOthersHealthy)
{
    SupervisionScope scope;
    store::resetProcessStore();

    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc");
    RunSpec hung = smallSpec("swim");
    hung.overrides = hangConfig(500, 300);
    plan.add(std::move(hung), "swim hang");
    setIsolation(true);

    std::vector<RunResult> results = runCampaign(plan, {}, 2);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_EQ(results[1].failKind, FailKind::Timeout);

    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.timeouts, 1u);
    EXPECT_EQ(t.crashes, 0u);
}

TEST(CampaignIsolation, IsolatedMatchesInProcessBitExactly)
{
    SupervisionScope scope;
    store::resetProcessStore();

    // Healthy cells plus a wedged one, so the fail-soft footer crosses
    // the pipe too.
    CampaignPlan plan;
    for (const char *w : {"gcc", "swim", "turb3d"}) {
        plan.add(smallSpec(w), std::string(w) + "/base");
        RunSpec dra = smallSpec(w);
        setDraPipeline(dra.overrides, 5);
        plan.add(std::move(dra), std::string(w) + "/dra");
    }
    RunSpec wedged = smallSpec("gcc");
    wedged.overrides = wedgeConfig();
    plan.add(std::move(wedged), "gcc/wedge");

    setIsolation(false);
    std::vector<RunResult> inproc = runCampaign(plan, {}, 4);
    EXPECT_EQ(lastCampaignTelemetry().isolatedRuns, 0u);

    store::resetProcessStore(); // clear the memo: really re-execute
    setIsolation(true);
    std::vector<RunResult> isolated = runCampaign(plan, {}, 4);
    EXPECT_EQ(lastCampaignTelemetry().isolatedRuns, plan.size());
    EXPECT_EQ(lastCampaignTelemetry().crashes, 0u);

    expectSameResults(inproc, isolated);
}

TEST(CampaignResume, JournalReplaysCompletedCells)
{
    SupervisionScope scope;
    store::resetProcessStore();
    fs::path dir = freshDir("campaign_resume");

    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc");
    plan.add(smallSpec("swim"), "swim");
    plan.add(smallSpec("turb3d"), "turb3d");
    plan.add(smallSpec("gcc", 5000), "gcc long");

    // The reference: a clean, journal-less run.
    std::vector<RunResult> reference = runCampaign(plan, {}, 2);

    // Fake an interrupted campaign: a journal holding the first two
    // cells only, exactly as a SIGINT drain would have left it.
    {
        store::CampaignJournal j(dir.string(), fingerprintPlan(plan),
                                 plan.size());
        ASSERT_TRUE(j.ok());
        j.append(store::fingerprintRun(plan.at(0).spec, {}),
                 reference[0]);
        j.append(store::fingerprintRun(plan.at(1).spec, {}),
                 reference[1]);
    }

    store::resetProcessStore(); // the journal, not the memo, must answer
    store::setJournalPath(dir.string());
    std::vector<RunResult> resumed = runCampaign(plan, {}, 2);

    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.resumed, 2u);
    EXPECT_EQ(t.simulated, 2u);
    EXPECT_EQ(t.memoHits, 0u);
    expectSameResults(reference, resumed);

    // The journal now covers the whole plan: a second resume replays
    // everything and simulates nothing.
    store::resetProcessStore();
    std::vector<RunResult> warm = runCampaign(plan, {}, 2);
    t = lastCampaignTelemetry();
    EXPECT_EQ(t.resumed, plan.size());
    EXPECT_EQ(t.simulated, 0u);
    expectSameResults(reference, warm);
    auto scanned = store::scanJournals(dir.string());
    ASSERT_EQ(scanned.size(), 1u);
    EXPECT_TRUE(scanned[0].complete());
}

TEST(CampaignResume, PoisonVerdictIsReplayedNotReExecuted)
{
    SupervisionScope scope;
    store::resetProcessStore();
    fs::path dir = freshDir("campaign_poison");
    store::setJournalPath(dir.string());
    setIsolation(true);

    CampaignPlan plan;
    plan.add(smallSpec("gcc"), "gcc");
    RunSpec doomed = smallSpec("swim");
    doomed.overrides = crashConfig(500, SIGABRT, 1);
    plan.add(std::move(doomed), "swim crash");

    std::vector<RunResult> first = runCampaign(plan, {}, 2);
    EXPECT_EQ(lastCampaignTelemetry().crashes, 1u);
    EXPECT_EQ(first[1].failKind, FailKind::Crash);
    auto scanned = store::scanJournals(dir.string());
    ASSERT_EQ(scanned.size(), 1u);
    EXPECT_EQ(scanned[0].poison, 1u);

    // Resume with isolation off: if the poison cell were re-executed
    // it would crash this very process, so surviving the rerun *is*
    // the assertion — and the telemetry must show pure replay.
    store::resetProcessStore();
    setIsolation(false);
    std::vector<RunResult> second = runCampaign(plan, {}, 2);
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.resumed, plan.size());
    EXPECT_EQ(t.simulated, 0u);
    EXPECT_EQ(t.crashes, 0u);
    expectSameResults(first, second);
}

TEST(CampaignInterrupt, SigintDrainsJournalsAndResumes)
{
    SupervisionScope scope;
    store::resetProcessStore();
    fs::path dir = freshDir("campaign_sigint");

    CampaignPlan plan;
    for (std::uint64_t i = 0; i < 8; ++i) {
        plan.add(smallSpec(i % 2 == 0 ? "gcc" : "swim", 20000 + i),
                 "cell " + std::to_string(i));
    }

    // The reference, computed before anything forks.
    std::vector<RunResult> reference = runCampaign(plan, {}, 2);
    store::resetProcessStore();

    std::fflush(nullptr);
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: run the campaign with a journal; on SIGINT the drain
        // exits 128+SIGINT by itself, on completion exit 0.
        store::setJournalPath(dir.string());
        runCampaign(plan, {}, 2);
        ::_exit(0);
    }

    // Wait for the child to journal at least one cell, then interrupt.
    bool saw_entry = false;
    for (int spin = 0; spin < 3000; ++spin) {
        for (const auto &j : store::scanJournals(dir.string())) {
            if (j.entries > 0)
                saw_entry = true;
        }
        if (saw_entry)
            break;
        ::usleep(10000);
    }
    ::kill(pid, SIGINT);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    // 130 when the signal landed mid-campaign; 0 when the campaign won
    // the race and finished first. Both leave a resumable journal.
    const int code = WEXITSTATUS(status);
    EXPECT_TRUE(code == 130 || code == 0) << "exit status " << code;

    // Resume in this process: replay what the child journaled,
    // simulate only the rest, and match the reference bit-exactly.
    store::setJournalPath(dir.string());
    std::vector<RunResult> resumed = runCampaign(plan, {}, 2);
    CampaignTelemetry t = lastCampaignTelemetry();
    EXPECT_EQ(t.resumed + t.simulated, plan.size());
    if (saw_entry && code == 130) {
        EXPECT_GE(t.resumed, 1u);
    }
    if (code == 0) {
        EXPECT_EQ(t.resumed, plan.size());
    }
    expectSameResults(reference, resumed);
}
