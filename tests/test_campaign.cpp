/**
 * @file
 * Tests for the parallel campaign executor: job-count resolution,
 * byte-identical results at any worker count (including fail-soft
 * footers from a deliberately wedged cell), worker exceptions
 * surfacing as failed cells, the overlay's thread-safety contract,
 * and telemetry accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

namespace
{

RunSpec
smallSpec(const std::string &workload, std::uint64_t ops = 4000)
{
    RunSpec spec;
    spec.workload = resolveWorkload(workload);
    spec.totalOps = ops;
    spec.warmupOps = 1000;
    return spec;
}

/** A configuration that wedges the machine: every wakeup dropped,
 *  tight watchdog window, no retries — the fail-soft path fires
 *  quickly and deterministically. */
Config
wedgeConfig()
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setDouble("integrity.fault.wakeup_drop", 1.0);
    cfg.setUint("integrity.watchdog.window", 10000);
    cfg.setUint("integrity.retry.attempts", 1);
    return cfg;
}

/** Build the shared 12-cell plan: 3 workloads x 4 configs, one of
 *  which is wedged on purpose. */
CampaignPlan
twelveCellPlan()
{
    std::vector<std::pair<std::string, Config>> configs;
    configs.emplace_back("base", Config{});
    Config deep;
    setPipeline(deep, 7, 7);
    configs.emplace_back("7_7", deep);
    Config dra;
    setDraPipeline(dra, 5);
    configs.emplace_back("dra", dra);
    configs.emplace_back("wedge", wedgeConfig());

    CampaignPlan plan;
    for (const char *w : {"gcc", "swim", "turb3d"}) {
        for (const auto &[label, cfg] : configs) {
            RunSpec spec = smallSpec(w);
            spec.overrides = cfg;
            plan.add(std::move(spec), std::string(w) + "/" + label);
        }
    }
    return plan;
}

/** Assemble the plan's results into a figure exactly the way the
 *  drivers do: rows by workload, columns by config, plan order. */
FigureData
assemble(const CampaignPlan &plan)
{
    FigureData fig;
    fig.title = "campaign determinism probe";
    fig.valueUnit = "IPC";
    for (const char *c : {"base", "7_7", "dra", "wedge"})
        fig.columns.push_back(Series{c, {}});

    std::vector<RunResult> results = runPlan(fig, plan);
    for (std::size_t wi = 0; wi < 3; ++wi) {
        fig.rowLabels.push_back(results[wi * 4].workloadLabel);
        for (std::size_t p = 0; p < 4; ++p) {
            const RunResult &r = results[wi * 4 + p];
            fig.columns[p].values.push_back(
                r.failed ? std::nan("") : r.ipc);
        }
    }
    return fig;
}

std::string
render(const FigureData &fig)
{
    std::ostringstream os;
    printFigure(os, fig);
    printCsv(os, fig);
    return os.str();
}

} // anonymous namespace

TEST(CampaignJobs, ExplicitWinsAndAutoIsPositive)
{
    setCampaignJobs(3);
    EXPECT_EQ(campaignJobs(), 3u);
    setCampaignJobs(0);
    EXPECT_GE(campaignJobs(), 1u);
}

TEST(CampaignPlanTest, IndicesAreStable)
{
    CampaignPlan plan;
    EXPECT_TRUE(plan.empty());
    EXPECT_EQ(plan.add(smallSpec("gcc"), "a"), 0u);
    EXPECT_EQ(plan.add(smallSpec("swim"), "b"), 1u);
    EXPECT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan.at(0).label, "a");
    EXPECT_EQ(plan.at(1).label, "b");
}

TEST(CampaignDeterminism, TwelveCellsIdenticalAtJobs1And8)
{
    CampaignPlan plan = twelveCellPlan();
    ASSERT_EQ(plan.size(), 12u);

    setCampaignJobs(1);
    FigureData serial = assemble(plan);
    setCampaignJobs(8);
    FigureData parallel = assemble(plan);
    setCampaignJobs(0);

    // The wedged column must have failed — the footer is part of the
    // determinism contract, not an empty-vs-empty comparison.
    EXPECT_EQ(serial.failures.size(), 3u);
    for (std::size_t wi = 0; wi < 3; ++wi)
        EXPECT_TRUE(std::isnan(serial.columns[3].values[wi]));

    EXPECT_EQ(serial.failures, parallel.failures);
    EXPECT_EQ(render(serial), render(parallel));
}

TEST(CampaignFailSoft, WorkerExceptionBecomesFailedCell)
{
    CampaignPlan plan;
    plan.add(smallSpec("gcc", 2000), "good0");
    RunSpec bad = smallSpec("gcc", 2000);
    bad.totalOps = 0; // fatal(): malformed spec -> FatalError in worker
    plan.add(std::move(bad), "bad");
    plan.add(smallSpec("swim", 2000), "good2");

    std::vector<RunResult> results = runCampaign(plan, {}, 3);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_FALSE(results[0].failed);
    EXPECT_TRUE(results[1].failed);
    EXPECT_NE(results[1].error.find("zero-length"), std::string::npos);
    EXPECT_TRUE(std::isnan(results[1].ipc));
    EXPECT_FALSE(results[2].failed);
    EXPECT_GT(results[0].ipc, 0.0);
    EXPECT_GT(results[2].ipc, 0.0);
}

TEST(CampaignOverlay, ConcurrentRunsObserveInstalledOverlay)
{
    Config overlay;
    overlay.setUint("core.iq_ex", 7);
    setRunOverlay(overlay);

    constexpr int nthreads = 8;
    std::vector<RunResult> results(nthreads);
    {
        std::vector<std::jthread> pool;
        for (int t = 0; t < nthreads; ++t) {
            pool.emplace_back([&results, t] {
                results[t] = runOnce(smallSpec("gcc", 2000));
            });
        }
    }
    clearRunOverlay();

    for (const RunResult &r : results) {
        EXPECT_FALSE(r.failed);
        EXPECT_EQ(r.pipeLabel, "5_7");
    }
    // After the clear the default pipeline is back.
    EXPECT_EQ(runOnce(smallSpec("gcc", 2000)).pipeLabel, "5_5");
}

TEST(CampaignTelemetryTest, TotalsAccumulateAcrossCampaigns)
{
    resetCampaignTotals();

    CampaignPlan plan;
    plan.add(smallSpec("gcc", 2000));
    plan.add(smallSpec("swim", 2000));
    runCampaign(plan, {}, 2);

    CampaignTelemetry last = lastCampaignTelemetry();
    EXPECT_EQ(last.runs, 2u);
    EXPECT_EQ(last.failures, 0u);
    EXPECT_GE(last.jobs, 1u);
    EXPECT_GT(last.wallSeconds, 0.0);
    EXPECT_GT(last.runsPerSecond(), 0.0);

    runCampaign(plan, {}, 1);
    CampaignTelemetry totals = campaignTotals();
    EXPECT_EQ(totals.runs, 4u);
    resetCampaignTotals();
    EXPECT_EQ(campaignTotals().runs, 0u);
}
