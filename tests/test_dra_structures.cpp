/**
 * @file
 * Tests for the DRA hardware structures: RPFT, insertion tables,
 * cluster register caches, and the assembled DraUnit protocol.
 */

#include <gtest/gtest.h>

#include "base/logging.hh"
#include "dra/crc.hh"
#include "dra/dra_unit.hh"
#include "dra/insertion_table.hh"
#include "dra/rpft.hh"

using namespace loopsim;

TEST(Rpft, SetClearTest)
{
    Rpft rpft(16);
    EXPECT_FALSE(rpft.test(3));
    rpft.set(3);
    EXPECT_TRUE(rpft.test(3));
    EXPECT_EQ(rpft.popcount(), 1u);
    rpft.clear(3);
    EXPECT_FALSE(rpft.test(3));
    rpft.set(1);
    rpft.set(2);
    rpft.reset();
    EXPECT_EQ(rpft.popcount(), 0u);
    EXPECT_THROW(rpft.test(16), PanicError);
}

TEST(InsertionTable, CountsAndSaturates)
{
    InsertionTable tbl(8, 2);
    EXPECT_EQ(tbl.maxCount(), 3u);
    for (int i = 0; i < 5; ++i)
        tbl.increment(4);
    EXPECT_EQ(tbl.count(4), 3u);
    EXPECT_EQ(tbl.saturationDrops(), 2u);
    tbl.decrement(4);
    EXPECT_EQ(tbl.count(4), 2u);
    tbl.clear(4);
    EXPECT_EQ(tbl.count(4), 0u);
    tbl.decrement(4); // underflow is clamped
    EXPECT_EQ(tbl.count(4), 0u);
}

TEST(InsertionTable, WidthControlsSaturation)
{
    InsertionTable narrow(4, 1);
    InsertionTable wide(4, 3);
    for (int i = 0; i < 4; ++i) {
        narrow.increment(0);
        wide.increment(0);
    }
    EXPECT_EQ(narrow.count(0), 1u);
    EXPECT_EQ(wide.count(0), 4u);
    EXPECT_EQ(narrow.saturationDrops(), 3u);
    EXPECT_EQ(wide.saturationDrops(), 0u);
}

TEST(InsertionTable, BadParamsFatal)
{
    EXPECT_THROW(InsertionTable(0, 2), FatalError);
    EXPECT_THROW(InsertionTable(8, 0), FatalError);
    EXPECT_THROW(InsertionTable(8, 9), FatalError);
}

TEST(Crc, LookupAfterInsert)
{
    ClusterRegisterCache crc(4, CrcRepl::Fifo);
    EXPECT_FALSE(crc.lookup(7));
    crc.insert(7);
    EXPECT_TRUE(crc.lookup(7));
    EXPECT_TRUE(crc.lookup(7)); // hits do not consume the entry
    EXPECT_EQ(crc.hits(), 2u);
    EXPECT_EQ(crc.misses(), 1u);
    EXPECT_EQ(crc.occupancy(), 1u);
}

TEST(Crc, FifoEvictsOldestInsertion)
{
    ClusterRegisterCache crc(2, CrcRepl::Fifo);
    crc.insert(1);
    crc.insert(2);
    crc.lookup(1); // reuse must NOT refresh under FIFO
    crc.insert(3); // evicts 1
    EXPECT_FALSE(crc.lookup(1));
    EXPECT_TRUE(crc.lookup(2));
    EXPECT_TRUE(crc.lookup(3));
    EXPECT_EQ(crc.evictions(), 1u);
}

TEST(Crc, LruKeepsRecentlyRead)
{
    ClusterRegisterCache crc(2, CrcRepl::Lru);
    crc.insert(1);
    crc.insert(2);
    crc.lookup(1); // refreshes 1
    crc.insert(3); // evicts 2
    EXPECT_TRUE(crc.lookup(1));
    EXPECT_FALSE(crc.lookup(2));
}

TEST(Crc, ReinsertRefreshesExistingEntry)
{
    ClusterRegisterCache crc(2, CrcRepl::Fifo);
    crc.insert(1);
    crc.insert(2);
    crc.insert(1); // refresh, no duplicate / eviction
    EXPECT_EQ(crc.occupancy(), 2u);
    EXPECT_EQ(crc.evictions(), 0u);
    crc.insert(3); // now evicts 2 (oldest stamp)
    EXPECT_TRUE(crc.lookup(1));
    EXPECT_FALSE(crc.lookup(2));
}

TEST(Crc, InvalidateOnReallocation)
{
    ClusterRegisterCache crc(4, CrcRepl::Fifo);
    crc.insert(5);
    crc.invalidate(5);
    EXPECT_FALSE(crc.lookup(5));
    EXPECT_EQ(crc.invalidations(), 1u);
    crc.invalidate(6); // absent: no-op
    EXPECT_EQ(crc.invalidations(), 1u);
}

TEST(Crc, ParseReplAndErrors)
{
    EXPECT_EQ(parseCrcRepl("FIFO"), CrcRepl::Fifo);
    EXPECT_EQ(parseCrcRepl("lru"), CrcRepl::Lru);
    EXPECT_THROW(parseCrcRepl("rrip"), FatalError);
    EXPECT_THROW(ClusterRegisterCache(0, CrcRepl::Fifo), FatalError);
}

namespace
{

DraUnit
makeDra()
{
    return DraUnit(32, 4, 4, CrcRepl::Fifo, 2);
}

} // anonymous namespace

TEST(DraUnit, CompletedOperandIsPreRead)
{
    DraUnit dra = makeDra();
    dra.writeback(3); // value sits in the RF
    EXPECT_TRUE(dra.renameSource(3, 0));
    EXPECT_EQ(dra.preReads(), 1u);
    // Pre-read sources never enter the insertion table.
    EXPECT_EQ(dra.insertionTable(0).count(3), 0u);
}

TEST(DraUnit, InFlightSourceRegistersInSlottedCluster)
{
    DraUnit dra = makeDra();
    EXPECT_FALSE(dra.renameSource(3, 2));
    EXPECT_EQ(dra.insertionTable(2).count(3), 1u);
    EXPECT_EQ(dra.insertionTable(0).count(3), 0u); // other clusters no
}

TEST(DraUnit, WritebackInsertsOnlyWhereConsumersWait)
{
    DraUnit dra = makeDra();
    dra.renameSource(3, 1);
    dra.renameSource(3, 1);
    dra.renameSource(3, 2);
    dra.writeback(3);
    EXPECT_TRUE(dra.rpft().test(3));
    EXPECT_TRUE(dra.lookupCached(3, 1));
    EXPECT_TRUE(dra.lookupCached(3, 2));
    EXPECT_FALSE(dra.lookupCached(3, 0));
    EXPECT_FALSE(dra.lookupCached(3, 3));
    // Consumer counts were consumed by the insertion.
    EXPECT_EQ(dra.insertionTable(1).count(3), 0u);
}

TEST(DraUnit, ForwardingHitsDrainTheCount)
{
    // The paper's saturation pathology (§5.4): more consumers than the
    // counter can express, and the forwarding hits of the early ones
    // zero the count, so the value never enters the CRC.
    DraUnit dra = makeDra();
    for (int i = 0; i < 5; ++i)
        dra.renameSource(7, 0); // count saturates at 3
    EXPECT_EQ(dra.insertionTable(0).count(7), 3u);
    for (int i = 0; i < 3; ++i)
        dra.forwardHit(7, 0); // first three consumers forward
    EXPECT_EQ(dra.insertionTable(0).count(7), 0u);
    dra.writeback(7);
    // Remaining consumers take an operand miss.
    EXPECT_FALSE(dra.lookupCached(7, 0));
}

TEST(DraUnit, RenameDestInvalidatesEverything)
{
    DraUnit dra = makeDra();
    dra.renameSource(9, 0);
    dra.writeback(9);
    EXPECT_TRUE(dra.rpft().test(9));
    EXPECT_TRUE(dra.lookupCached(9, 0));

    dra.renameDest(9); // register reallocated (§5.5)
    EXPECT_FALSE(dra.rpft().test(9));
    EXPECT_FALSE(dra.lookupCached(9, 0));
    EXPECT_EQ(dra.insertionTable(0).count(9), 0u);
}

TEST(DraUnit, RegFreedCleansUp)
{
    DraUnit dra = makeDra();
    dra.renameSource(9, 1);
    dra.writeback(9);
    dra.regFreed(9);
    EXPECT_FALSE(dra.rpft().test(9));
    EXPECT_FALSE(dra.lookupCached(9, 1));
}

TEST(DraUnit, AggregateCounters)
{
    DraUnit dra = makeDra();
    dra.renameSource(1, 0);
    dra.renameSource(2, 1);
    dra.writeback(1);
    dra.writeback(2);
    EXPECT_EQ(dra.crcInsertions(), 2u);
    for (int i = 0; i < 6; ++i)
        dra.renameSource(3, 2);
    EXPECT_EQ(dra.saturationDrops(), 3u);
    dra.reset();
    EXPECT_EQ(dra.crcInsertions(), 0u);
    EXPECT_EQ(dra.preReads(), 0u);
}

TEST(DraUnit, ClusterBoundsChecked)
{
    DraUnit dra = makeDra();
    EXPECT_THROW(dra.renameSource(1, 4), PanicError);
    EXPECT_THROW(dra.lookupCached(1, 9), PanicError);
    EXPECT_THROW(dra.crc(4), PanicError);
}
