// DRA design-space ablations (DESIGN.md section 5): CRC capacity and
// replacement, insertion-table width, forwarding-buffer depth.
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv, 100000);
    benchutil::CampaignRecorder record("ablation_dra", ops, argc, argv);
    auto w = benchutil::ablationWorkloads();
    printFigure(std::cout, ablationCrcSize(ops, w));
    printFigure(std::cout, ablationCrcRepl(ops, w), ValueFormat::Percent);
    printFigure(std::cout, ablationInsertionBits(ops, w),
                ValueFormat::Percent);
    printFigure(std::cout, ablationFwdDepth(ops, w));
    printFigure(std::cout, ablationCrcTimeout(ops, w),
                ValueFormat::Percent);
    return 0;
}
