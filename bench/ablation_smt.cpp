// SMT policy ablation: ICOUNT vs round-robin fetch on the paper's
// multithreaded pairings, plus single-thread overhead of the SMT
// partitioning (paper section 3.1 discusses multithreaded behaviour).
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv, 100000);

    FigureData fig;
    fig.title = "Ablation: SMT fetch policy (pair throughput, ICOUNT "
                "relative to round-robin)";
    fig.valueUnit = "speedup";
    fig.columns.push_back(Series{"roundrobin", {}});
    fig.columns.push_back(Series{"icount", {}});

    for (const char *pair : {"m88-comp", "go-su2cor", "apsi-swim",
                             "swim-swim", "gcc-gcc"}) {
        fig.rowLabels.push_back(pair);

        RunSpec rr;
        rr.workload = resolveWorkload(pair);
        rr.totalOps = ops;
        rr.overrides.set("core.fetch_policy", "rr");
        RunResult rr_res = runOnce(rr);

        RunSpec ic;
        ic.workload = resolveWorkload(pair);
        ic.totalOps = ops;
        ic.overrides.set("core.fetch_policy", "icount");
        RunResult ic_res = runOnce(ic);

        fig.columns[0].values.push_back(1.0);
        fig.columns[1].values.push_back(speedup(ic_res, rr_res));
    }
    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig);
    return 0;
}
