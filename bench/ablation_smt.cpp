// SMT policy ablation: ICOUNT vs round-robin fetch on the paper's
// multithreaded pairings, plus single-thread overhead of the SMT
// partitioning (paper section 3.1 discusses multithreaded behaviour).
#include <iostream>

#include "bench_util.hh"
#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv, 100000);
    benchutil::CampaignRecorder record("ablation_smt", ops, argc, argv);

    FigureData fig;
    fig.title = "Ablation: SMT fetch policy (pair throughput, ICOUNT "
                "relative to round-robin)";
    fig.valueUnit = "speedup";
    fig.columns.push_back(Series{"roundrobin", {}});
    fig.columns.push_back(Series{"icount", {}});

    const std::vector<const char *> pairs = {
        "m88-comp", "go-su2cor", "apsi-swim", "swim-swim", "gcc-gcc"};

    // Enumerate both fetch policies per pairing into one plan so the
    // whole ablation runs on the campaign pool; results land by plan
    // index, so the figure is identical at any --jobs value.
    CampaignPlan plan;
    for (const char *pair : pairs) {
        for (const char *policy : {"rr", "icount"}) {
            RunSpec spec;
            spec.workload = resolveWorkload(pair);
            spec.totalOps = ops;
            spec.overrides.set("core.fetch_policy", policy);
            plan.add(std::move(spec),
                     std::string(pair) + "/" + policy);
        }
    }

    std::vector<RunResult> results = runPlan(fig, plan);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        fig.rowLabels.push_back(pairs[i]);
        const RunResult &rr_res = results[i * 2];
        const RunResult &ic_res = results[i * 2 + 1];
        fig.columns[0].values.push_back(1.0);
        fig.columns[1].values.push_back(speedup(ic_res, rr_res));
    }
    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig);
    return 0;
}
