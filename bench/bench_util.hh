/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Common CLI surface: `<bench> [OPS] [--jobs N|auto] [--csv]
 * [--trace PATH] [--profile] [--store DIR] [--isolate]
 * [--deadline-ms N] [--journal DIR] [--server HOST:PORT]` in any
 * argument order, plus the LOOPSIM_BENCH_OPS, LOOPSIM_JOBS,
 * LOOPSIM_TRACE, LOOPSIM_PROFILE, LOOPSIM_STORE, LOOPSIM_ISOLATE,
 * LOOPSIM_DEADLINE_MS, LOOPSIM_JOURNAL and LOOPSIM_SERVER environment
 * variables. `--server` delegates every campaign to a loopsim-serve
 * daemon (results stay byte-identical to local runs; the entry grows a
 * "serve" telemetry object); `--jobs auto` means the host CPU count. Every binary records campaign telemetry (wall clock,
 * runs/sec, cache activity, supervision counters, and the kernel
 * tick profile when --profile is on) into BENCH_campaign.json on
 * exit — including on a SIGINT/SIGTERM drain, via the campaign
 * interrupt-flush hook; --trace additionally writes the campaign's
 * loop-event trace (Chrome JSON, or CSV for *.csv paths — see
 * src/trace/loop_trace.hh and DESIGN.md §11); --store points the
 * persistent result store at a directory, so reruns replay cached
 * cells instead of simulating (src/store/, DESIGN.md §12); --isolate
 * runs each cell in a supervised forked worker with --deadline-ms as
 * its wall-clock watchdog, and --journal makes the campaign resumable
 * after a crash or interrupt (DESIGN.md §13).
 */

#ifndef LOOPSIM_BENCH_BENCH_UTIL_HH
#define LOOPSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "harness/supervisor.hh"
#include "serve/client.hh"
#include "store/journal.hh"
#include "store/result_store.hh"
#include "trace/loop_trace.hh"

namespace loopsim::benchutil
{

namespace detail
{

/** Parse a non-negative integer; exits with a diagnostic otherwise. */
inline std::uint64_t
parseCount(const std::string &text, const char *what)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end == text.c_str() || *end != '\0' ||
        text[0] == '-') {
        std::fprintf(stderr, "invalid %s: \"%s\" (expected a "
                     "non-negative integer)\n", what, text.c_str());
        std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
}

/** True for flags that consume the following argument. */
inline bool
flagTakesValue(const std::string &flag)
{
    return flag == "--jobs" || flag == "-j" || flag == "--trace" ||
           flag == "--store" || flag == "--deadline-ms" ||
           flag == "--journal" || flag == "--server";
}

/** Value of a `--flag V` / `--flag=V` option, or "" when absent. */
inline std::string
flagValue(int argc, char **argv, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a.rfind(prefix, 0) == 0)
            return a.substr(prefix.size());
        if (a != flag)
            continue;
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", flag.c_str());
            std::exit(2);
        }
        return argv[i + 1];
    }
    return "";
}

/** True when @p flag appears anywhere in argv. */
inline bool
hasFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (flag == argv[i])
            return true;
    }
    return false;
}

} // namespace detail

/**
 * Correct-path ops per run: the first non-flag argument wherever it
 * sits on the command line (flags like --csv / --jobs N / --jobs=N are
 * skipped, never misread as a count), else LOOPSIM_BENCH_OPS, else
 * @p def. A non-numeric or zero count is rejected with exit code 2
 * instead of silently becoming 0 ops.
 */
inline std::uint64_t
benchOps(int argc, char **argv, std::uint64_t def = 200000)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (!a.empty() && a[0] == '-') {
            if (detail::flagTakesValue(a))
                ++i; // skip the flag's value too
            continue;
        }
        std::uint64_t ops = detail::parseCount(a, "op count");
        if (ops == 0) {
            std::fprintf(stderr, "op count must be positive\n");
            std::exit(2);
        }
        return ops;
    }
    if (const char *env = std::getenv("LOOPSIM_BENCH_OPS")) {
        std::uint64_t ops = detail::parseCount(env, "LOOPSIM_BENCH_OPS");
        if (ops > 0)
            return ops;
    }
    return def;
}

/**
 * Worker count from `--jobs N|auto`, `--jobs=N|auto` or `-j N`; "auto"
 * resolves to the host's hardware thread count. 0 (automatic:
 * LOOPSIM_JOBS, then hardware_concurrency) when absent.
 */
inline unsigned
benchJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string value;
        if (a.rfind("--jobs=", 0) == 0) {
            value = a.substr(7);
        } else if (a == "--jobs" || a == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            value = argv[++i];
        } else {
            // Other value-taking flags (--trace PATH): skip the value
            // so it is never misread as a job count.
            if (detail::flagTakesValue(a))
                ++i;
            continue;
        }
        bool ok = false;
        unsigned jobs = parseJobsSpec(value, ok);
        if (!ok) {
            std::fprintf(stderr, "invalid job count: \"%s\" (expected "
                         "a number or \"auto\")\n", value.c_str());
            std::exit(2);
        }
        return jobs;
    }
    return 0;
}

/** True when the user asked for CSV output (--csv anywhere in argv). */
inline bool
wantCsv(int argc, char **argv)
{
    return detail::hasFlag(argc, argv, "--csv");
}

/**
 * Loop-event trace output path: `--trace PATH` / `--trace=PATH`, else
 * the LOOPSIM_TRACE environment variable; "" when tracing is off.
 */
inline std::string
benchTrace(int argc, char **argv)
{
    std::string path = detail::flagValue(argc, argv, "--trace");
    return !path.empty() ? path : trace::tracePath();
}

/** Kernel self-profiling: `--profile`, else LOOPSIM_PROFILE. */
inline bool
benchProfile(int argc, char **argv)
{
    return detail::hasFlag(argc, argv, "--profile") ||
           tickProfilingActive();
}

/**
 * Persistent result-store directory: `--store DIR` / `--store=DIR`,
 * else the LOOPSIM_STORE environment variable; "" when the store is
 * off. A `--store` with a missing or empty path is a usage error
 * (exit 2) rather than a silently disabled cache.
 */
inline std::string
benchStore(int argc, char **argv)
{
    bool present = detail::hasFlag(argc, argv, "--store");
    std::string path = detail::flagValue(argc, argv, "--store");
    if (path.empty() && (present || detail::hasFlag(argc, argv,
                                                    "--store="))) {
        std::fprintf(stderr, "--store needs a directory path "
                     "(usage: --store DIR or --store=DIR)\n");
        std::exit(2);
    }
    return !path.empty() ? path : store::storePath();
}

/** Crash isolation: `--isolate`, else LOOPSIM_ISOLATE. */
inline bool
benchIsolate(int argc, char **argv)
{
    return detail::hasFlag(argc, argv, "--isolate") ||
           isolationActive();
}

/**
 * Per-cell wall-clock deadline in ms: `--deadline-ms N` /
 * `--deadline-ms=N`, else LOOPSIM_DEADLINE_MS; 0 = no deadline.
 */
inline std::uint64_t
benchDeadlineMs(int argc, char **argv)
{
    std::string value = detail::flagValue(argc, argv, "--deadline-ms");
    if (!value.empty())
        return detail::parseCount(value, "deadline");
    return deadlineMs();
}

/**
 * Campaign journal directory: `--journal DIR` / `--journal=DIR`, else
 * the LOOPSIM_JOURNAL environment variable; "" when journaling is
 * off. A `--journal` with a missing path is a usage error (exit 2).
 */
inline std::string
benchJournal(int argc, char **argv)
{
    bool present = detail::hasFlag(argc, argv, "--journal");
    std::string path = detail::flagValue(argc, argv, "--journal");
    if (path.empty() && (present || detail::hasFlag(argc, argv,
                                                    "--journal="))) {
        std::fprintf(stderr, "--journal needs a directory path "
                     "(usage: --journal DIR or --journal=DIR)\n");
        std::exit(2);
    }
    return !path.empty() ? path : store::journalPath();
}

/**
 * Campaign-service endpoint: `--server HOST:PORT` / `--server=...`,
 * else the LOOPSIM_SERVER environment variable; "" when local. A
 * `--server` with a missing endpoint is a usage error (exit 2).
 */
inline std::string
benchServer(int argc, char **argv)
{
    bool present = detail::hasFlag(argc, argv, "--server");
    std::string endpoint = detail::flagValue(argc, argv, "--server");
    if (endpoint.empty() && (present || detail::hasFlag(argc, argv,
                                                        "--server="))) {
        std::fprintf(stderr, "--server needs an endpoint (usage: "
                     "--server HOST:PORT)\n");
        std::exit(2);
    }
    return !endpoint.empty() ? endpoint : serve::serveEndpoint();
}

/** Workloads used by ablation benches (a representative subset). */
inline std::vector<std::string>
ablationWorkloads()
{
    return {"gcc", "swim", "turb3d", "apsi"};
}

/**
 * Records one bench invocation's campaign telemetry into
 * BENCH_campaign.json (override the path with LOOPSIM_BENCH_JSON).
 * Construct it at the top of main(); the destructor appends a JSON
 * entry with the cumulative campaign wall clock and runs/sec, so the
 * perf trajectory of the figure suite is recorded run over run. The
 * constructor also installs the --jobs worker count, enables trace
 * collection when --trace/LOOPSIM_TRACE names a path (the destructor
 * writes the collected trace there), turns on kernel tick profiling
 * under --profile/LOOPSIM_PROFILE (recorded as the entry's
 * "tick_profile" array), arms crash isolation / deadlines /
 * journaling from their flags, and registers itself as the campaign
 * interrupt-flush hook so a SIGINT/SIGTERM drain still writes the
 * (partial) telemetry entry before the process exits.
 */
class CampaignRecorder
{
  public:
    CampaignRecorder(std::string bench_name, std::uint64_t ops,
                     int argc, char **argv)
        : name(std::move(bench_name)), totalOps(ops),
          tracePath(benchTrace(argc, argv)),
          start(std::chrono::steady_clock::now())
    {
        setCampaignJobs(benchJobs(argc, argv));
        if (!tracePath.empty()) {
            trace::setTracePath(tracePath);
            trace::setCollection(true);
        }
        if (benchProfile(argc, argv))
            setTickProfiling(true);
        std::string store_dir = benchStore(argc, argv);
        if (!store_dir.empty())
            store::setStorePath(store_dir);
        if (benchIsolate(argc, argv))
            setIsolation(true);
        setDeadlineMs(benchDeadlineMs(argc, argv));
        std::string journal_dir = benchJournal(argc, argv);
        if (!journal_dir.empty())
            store::setJournalPath(journal_dir);
        std::string server = benchServer(argc, argv);
        if (!server.empty())
            serve::setServeEndpoint(server);
        // The campaign executor runs on this thread, so the hook fires
        // with this object alive and no concurrent flush possible.
        setCampaignInterruptFlush([this] { flush(); });
    }

    ~CampaignRecorder()
    {
        setCampaignInterruptFlush(nullptr);
        flush();
    }

    CampaignRecorder(const CampaignRecorder &) = delete;
    CampaignRecorder &operator=(const CampaignRecorder &) = delete;

    /** Write the telemetry entry (and the trace, when tracing). Runs
     *  once: the interrupt hook and the destructor share the guard. */
    void
    flush()
    {
        if (flushed)
            return;
        flushed = true;
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        CampaignTelemetry t = campaignTotals();
        std::ostringstream entry;
        entry << "  {\"bench\": \"" << name << "\""
              << ", \"ops\": " << totalOps
              << ", \"jobs\": " << t.jobs
              << ", \"host_cpus\": " << t.hostCpus
              << ", \"runs\": " << t.runs
              << ", \"failures\": " << t.failures
              << ", \"simulated\": " << t.simulated
              << ", \"campaign_wall_s\": " << t.wallSeconds
              << ", \"runs_per_s\": " << t.runsPerSecond()
              << ", \"process_wall_s\": " << wall.count()
              << ", \"interrupted\": "
              << (t.interrupted ? "true" : "false")
              << ", \"store\": {\"dir\": \"" << store::storePath()
              << "\", \"memo_hits\": " << t.memoHits
              << ", \"hits\": " << t.store.hits
              << ", \"misses\": " << t.store.misses
              << ", \"inserts\": " << t.store.inserts
              << ", \"crc_rejects\": " << t.store.crcRejects
              << ", \"bytes_read\": " << t.store.bytesRead
              << ", \"bytes_written\": " << t.store.bytesWritten << "}"
              << ", \"supervision\": {\"isolate\": "
              << (isolationActive() ? "true" : "false")
              << ", \"deadline_ms\": " << deadlineMs()
              << ", \"journal\": \"" << store::journalPath()
              << "\", \"isolated_runs\": " << t.isolatedRuns
              << ", \"crashes\": " << t.crashes
              << ", \"timeouts\": " << t.timeouts
              << ", \"spawn_retries\": " << t.spawnRetries
              << ", \"backoff_waits\": " << t.backoffWaits
              << ", \"backoff_wait_ms\": " << t.backoffWaitMs
              << ", \"resumed\": " << t.resumed << "}";
        if (serve::serveConfigured()) {
            const serve::ServeTelemetry s = serve::lastClientTelemetry();
            entry << ", \"serve\": {\"endpoint\": \""
                  << serve::serveEndpoint()
                  << "\", \"tenant\": \"" << s.tenant
                  << "\", \"cells\": " << s.cells
                  << ", \"queued\": " << s.queued
                  << ", \"simulated\": " << s.simulated
                  << ", \"cache_hits\": " << s.cacheHits
                  << ", \"dedup_hits\": " << s.dedupHits
                  << ", \"resumed\": " << s.resumed
                  << ", \"failures\": " << s.failures
                  << ", \"crashes\": " << s.crashes
                  << ", \"timeouts\": " << s.timeouts
                  << ", \"reconnects\": " << s.reconnects
                  << ", \"wall_s\": " << s.wallSeconds << "}";
        }
        if (!t.workers.empty()) {
            entry << ", \"workers\": [";
            for (std::size_t i = 0; i < t.workers.size(); ++i) {
                const WorkerTelemetry &w = t.workers[i];
                entry << (i ? ", " : "") << "{\"id\": " << w.id
                      << ", \"cells\": " << w.cells
                      << ", \"busy_s\": " << w.busySeconds
                      << ", \"claim_wait_s\": " << w.claimWaitSeconds
                      << ", \"idle_s\": " << w.idleSeconds << "}";
            }
            entry << "]";
        }
        if (!t.tickProfile.empty()) {
            // "seconds" is scaled up from the strided sample of tick
            // timings the kernel actually measures ("measured_ticks"
            // of "ticks" — see Simulator::setProfilingStride), so it
            // estimates the full cost while the clock reads that
            // would have made --profile runs crawl are batched away.
            entry << ", \"tick_profile\": [";
            for (std::size_t i = 0; i < t.tickProfile.size(); ++i) {
                const ComponentProfile &p = t.tickProfile[i];
                entry << (i ? ", " : "") << "{\"component\": \""
                      << p.name << "\", \"ticks\": " << p.ticks
                      << ", \"measured_ticks\": " << p.measuredTicks
                      << ", \"scan_ticks\": " << p.scanTicks
                      << ", \"seconds\": " << p.seconds << "}";
            }
            entry << "]";
        }
        entry << "}";
        append(entry.str());

        if (!tracePath.empty() &&
            !trace::writeTraceFile(tracePath,
                                   trace::takeCollectedRuns())) {
            std::fprintf(stderr, "could not write trace file %s\n",
                         tracePath.c_str());
        }
    }

  private:
    /** Append @p entry to the JSON array, creating the file if absent.
     *  The file is rewritten whole: read, splice before the closing
     *  bracket, write back. Bench binaries run one at a time. */
    void
    append(const std::string &entry) const
    {
        const char *env = std::getenv("LOOPSIM_BENCH_JSON");
        std::string path = env && *env ? env : "BENCH_campaign.json";

        std::string body;
        {
            std::ifstream in(path);
            std::ostringstream buf;
            buf << in.rdbuf();
            body = buf.str();
        }
        std::size_t close = body.rfind(']');
        std::string out;
        if (close == std::string::npos) {
            out = "[\n" + entry + "\n]\n";
        } else {
            std::string head = body.substr(0, close);
            while (!head.empty() &&
                   (head.back() == '\n' || head.back() == ' ')) {
                head.pop_back();
            }
            bool first = head.find('{') == std::string::npos;
            out = head + (first ? "\n" : ",\n") + entry + "\n]\n";
        }
        std::ofstream of(path, std::ios::trunc);
        of << out;
    }

    std::string name;
    std::uint64_t totalOps;
    std::string tracePath;
    std::chrono::steady_clock::time_point start;
    bool flushed = false;
};

} // namespace loopsim::benchutil

#endif // LOOPSIM_BENCH_BENCH_UTIL_HH
