/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 */

#ifndef LOOPSIM_BENCH_BENCH_UTIL_HH
#define LOOPSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

namespace loopsim::benchutil
{

/**
 * Correct-path ops per run. Default 200k balances statistical noise
 * against wall-clock time; override with LOOPSIM_BENCH_OPS (or argv[1])
 * for a higher-fidelity pass.
 */
inline std::uint64_t
benchOps(int argc, char **argv, std::uint64_t def = 200000)
{
    if (argc > 1 && std::string(argv[1]) != "--csv")
        return std::strtoull(argv[1], nullptr, 0);
    if (const char *env = std::getenv("LOOPSIM_BENCH_OPS"))
        return std::strtoull(env, nullptr, 0);
    return def;
}

/** True when the user asked for CSV output (--csv anywhere in argv). */
inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv")
            return true;
    }
    return false;
}

/** Workloads used by ablation benches (a representative subset). */
inline std::vector<std::string>
ablationWorkloads()
{
    return {"gcc", "swim", "turb3d", "apsi"};
}

} // namespace loopsim::benchutil

#endif // LOOPSIM_BENCH_BENCH_UTIL_HH
