/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries.
 *
 * Common CLI surface: `<bench> [OPS] [--jobs N] [--csv]` in any
 * argument order, plus the LOOPSIM_BENCH_OPS and LOOPSIM_JOBS
 * environment variables. Every binary records campaign telemetry
 * (wall clock, runs/sec) into BENCH_campaign.json on exit.
 */

#ifndef LOOPSIM_BENCH_BENCH_UTIL_HH
#define LOOPSIM_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "harness/campaign.hh"

namespace loopsim::benchutil
{

namespace detail
{

/** Parse a non-negative integer; exits with a diagnostic otherwise. */
inline std::uint64_t
parseCount(const std::string &text, const char *what)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end == text.c_str() || *end != '\0' ||
        text[0] == '-') {
        std::fprintf(stderr, "invalid %s: \"%s\" (expected a "
                     "non-negative integer)\n", what, text.c_str());
        std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
}

/** True for flags that consume the following argument. */
inline bool
flagTakesValue(const std::string &flag)
{
    return flag == "--jobs" || flag == "-j";
}

} // namespace detail

/**
 * Correct-path ops per run: the first non-flag argument wherever it
 * sits on the command line (flags like --csv / --jobs N / --jobs=N are
 * skipped, never misread as a count), else LOOPSIM_BENCH_OPS, else
 * @p def. A non-numeric or zero count is rejected with exit code 2
 * instead of silently becoming 0 ops.
 */
inline std::uint64_t
benchOps(int argc, char **argv, std::uint64_t def = 200000)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (!a.empty() && a[0] == '-') {
            if (detail::flagTakesValue(a))
                ++i; // skip the flag's value too
            continue;
        }
        std::uint64_t ops = detail::parseCount(a, "op count");
        if (ops == 0) {
            std::fprintf(stderr, "op count must be positive\n");
            std::exit(2);
        }
        return ops;
    }
    if (const char *env = std::getenv("LOOPSIM_BENCH_OPS")) {
        std::uint64_t ops = detail::parseCount(env, "LOOPSIM_BENCH_OPS");
        if (ops > 0)
            return ops;
    }
    return def;
}

/**
 * Worker count from `--jobs N`, `--jobs=N` or `-j N`; 0 (automatic:
 * LOOPSIM_JOBS, then hardware_concurrency) when absent.
 */
inline unsigned
benchJobs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        std::string value;
        if (a.rfind("--jobs=", 0) == 0) {
            value = a.substr(7);
        } else if (detail::flagTakesValue(a)) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(2);
            }
            value = argv[++i];
        } else {
            continue;
        }
        return static_cast<unsigned>(
            detail::parseCount(value, "job count"));
    }
    return 0;
}

/** True when the user asked for CSV output (--csv anywhere in argv). */
inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--csv")
            return true;
    }
    return false;
}

/** Workloads used by ablation benches (a representative subset). */
inline std::vector<std::string>
ablationWorkloads()
{
    return {"gcc", "swim", "turb3d", "apsi"};
}

/**
 * Records one bench invocation's campaign telemetry into
 * BENCH_campaign.json (override the path with LOOPSIM_BENCH_JSON).
 * Construct it at the top of main(); the destructor appends a JSON
 * entry with the cumulative campaign wall clock and runs/sec, so the
 * perf trajectory of the figure suite is recorded run over run. The
 * constructor also installs the --jobs worker count.
 */
class CampaignRecorder
{
  public:
    CampaignRecorder(std::string bench_name, std::uint64_t ops,
                     int argc, char **argv)
        : name(std::move(bench_name)), totalOps(ops),
          start(std::chrono::steady_clock::now())
    {
        setCampaignJobs(benchJobs(argc, argv));
    }

    ~CampaignRecorder()
    {
        std::chrono::duration<double> wall =
            std::chrono::steady_clock::now() - start;
        CampaignTelemetry t = campaignTotals();
        std::ostringstream entry;
        entry << "  {\"bench\": \"" << name << "\""
              << ", \"ops\": " << totalOps
              << ", \"jobs\": " << t.jobs
              << ", \"runs\": " << t.runs
              << ", \"failures\": " << t.failures
              << ", \"campaign_wall_s\": " << t.wallSeconds
              << ", \"runs_per_s\": " << t.runsPerSecond()
              << ", \"process_wall_s\": " << wall.count() << "}";
        append(entry.str());
    }

    CampaignRecorder(const CampaignRecorder &) = delete;
    CampaignRecorder &operator=(const CampaignRecorder &) = delete;

  private:
    /** Append @p entry to the JSON array, creating the file if absent.
     *  The file is rewritten whole: read, splice before the closing
     *  bracket, write back. Bench binaries run one at a time. */
    void
    append(const std::string &entry) const
    {
        const char *env = std::getenv("LOOPSIM_BENCH_JSON");
        std::string path = env && *env ? env : "BENCH_campaign.json";

        std::string body;
        {
            std::ifstream in(path);
            std::ostringstream buf;
            buf << in.rdbuf();
            body = buf.str();
        }
        std::size_t close = body.rfind(']');
        std::string out;
        if (close == std::string::npos) {
            out = "[\n" + entry + "\n]\n";
        } else {
            std::string head = body.substr(0, close);
            while (!head.empty() &&
                   (head.back() == '\n' || head.back() == ' ')) {
                head.pop_back();
            }
            bool first = head.find('{') == std::string::npos;
            out = head + (first ? "\n" : ",\n") + entry + "\n]\n";
        }
        std::ofstream of(path, std::ios::trunc);
        of << out;
    }

    std::string name;
    std::uint64_t totalOps;
    std::chrono::steady_clock::time_point start;
};

} // namespace loopsim::benchutil

#endif // LOOPSIM_BENCH_BENCH_UTIL_HH
