// Fault-injection campaign: re-measures a representative workload set
// under each transient fault kind (and a fault-free control column),
// proving the recovery paths converge and quantifying their cost. A
// final column wedges the machine on purpose (permanent wakeup drop)
// to demonstrate the fail-soft path: the point comes back as "fail"
// with a watchdog diagnostic in the footer, and the campaign still
// completes.
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

namespace
{

Config
faulted(const char *key, double rate)
{
    Config cfg;
    cfg.setBool("integrity.fault.enable", true);
    cfg.setDouble(key, rate);
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv, 100000);
    benchutil::CampaignRecorder record("fault_campaign", ops, argc, argv);
    auto w = benchutil::ablationWorkloads();

    Config wedge = faulted("integrity.fault.wakeup_drop", 1.0);
    wedge.setUint("integrity.watchdog.window", 20000);
    wedge.setUint("integrity.retry.attempts", 1);

    std::vector<std::pair<std::string, Config>> configs = {
        {"control", Config{}},
        {"wakeup-delay", faulted("integrity.fault.wakeup_delay", 0.01)},
        {"load-delay", faulted("integrity.fault.load_delay", 0.01)},
        {"branch-flip", faulted("integrity.fault.branch_corrupt", 0.005)},
        {"port-stall", faulted("integrity.fault.port_stall", 0.01)},
        {"wakeup-drop", wedge},
    };

    FigureData fig = sweepConfigs(
        "Fault-injection campaign: IPC under transient faults "
        "(wakeup-drop is a deliberate permanent wedge)",
        w, configs, ops);

    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig, ValueFormat::Ratio);
    return 0;
}
