// Regenerates Figure 4 of "Loose Loops Sink Chips" (HPCA 2002).
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv);
    benchutil::CampaignRecorder record("fig4_pipeline_length", ops,
                                       argc, argv);
    FigureData fig = figure4(ops);
    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig);
    return 0;
}
