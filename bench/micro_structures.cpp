/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot structures:
 * predictors, caches, CRC CAM lookups, the IQ select scan, and whole-
 * core simulation throughput. These measure the *simulator*, not the
 * simulated machine; use them when optimising loopsim itself.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "base/random.hh"
#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/tournament.hh"
#include "core/core.hh"
#include "dra/crc.hh"
#include "mem/cache.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/profile.hh"

using namespace loopsim;

namespace
{

void
BM_Pcg32(benchmark::State &state)
{
    Pcg32 rng(42);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Pcg32);

void
BM_BimodalPredict(benchmark::State &state)
{
    BimodalPredictor pred(4096);
    Pcg32 rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(pred.predict(pc, 0));
        pred.update(pc, 0, taken);
        pc = 0x1000 + (rng.next() & 0xfff);
    }
}
BENCHMARK(BM_BimodalPredict);

void
BM_GsharePredict(benchmark::State &state)
{
    GsharePredictor pred(16384, 12);
    Pcg32 rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(pred.predict(pc, 0));
        pred.update(pc, 0, taken);
        pc = 0x1000 + (rng.next() & 0xfff);
    }
}
BENCHMARK(BM_GsharePredict);

void
BM_TournamentPredict(benchmark::State &state)
{
    TournamentPredictor pred;
    Pcg32 rng(1);
    Addr pc = 0x1000;
    for (auto _ : state) {
        bool taken = rng.chance(0.6);
        benchmark::DoNotOptimize(pred.predict(pc, 0));
        pred.update(pc, 0, taken);
        pc = 0x1000 + (rng.next() & 0xfff);
    }
}
BENCHMARK(BM_TournamentPredict);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(64 * 1024, 2, 64);
    Pcg32 rng(7);
    for (auto _ : state) {
        Addr a = (rng.next() & 0x3ffff);
        benchmark::DoNotOptimize(cache.access(a));
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CrcLookup(benchmark::State &state)
{
    ClusterRegisterCache crc(static_cast<unsigned>(state.range(0)),
                             CrcRepl::Fifo);
    Pcg32 rng(7);
    for (unsigned r = 0; r < state.range(0); ++r)
        crc.insert(static_cast<PhysReg>(r));
    for (auto _ : state) {
        PhysReg r = static_cast<PhysReg>(rng.nextBounded(64));
        benchmark::DoNotOptimize(crc.lookup(r));
    }
}
BENCHMARK(BM_CrcLookup)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void
BM_TraceGeneration(benchmark::State &state)
{
    SyntheticTraceGenerator gen(spec95Profile("gcc"), 0,
                                1ULL << 40);
    MicroOp op;
    for (auto _ : state) {
        gen.next(op);
        benchmark::DoNotOptimize(op);
    }
}
BENCHMARK(BM_TraceGeneration);

/** Whole-core simulation rate in simulated instructions per second. */
void
BM_CoreSimulationRate(benchmark::State &state)
{
    bool dra = state.range(0) != 0;
    std::uint64_t total = 0;
    for (auto _ : state) {
        state.PauseTiming();
        Config cfg;
        if (dra)
            cfg.setBool("dra.enable", true);
        auto gen = std::make_unique<SyntheticTraceGenerator>(
            spec95Profile("swim"), 0, 20000);
        std::vector<TraceSource *> srcs{gen.get()};
        Core core(cfg, srcs);
        Simulator sim;
        sim.add(&core);
        state.ResumeTiming();

        sim.run(10000000);
        total += core.retiredOps();
    }
    state.counters["ops_per_sec"] = benchmark::Counter(
        static_cast<double>(total), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CoreSimulationRate)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
