// Load mis-speculation recovery ablations (paper section 2.2.2):
// reissue vs refetch vs stall, and dependence-tree vs shadow kills.
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv, 100000);
    benchutil::CampaignRecorder record("ablation_recovery", ops,
                                       argc, argv);
    auto w = benchutil::ablationWorkloads();
    printFigure(std::cout, ablationLoadRecovery(ops, w));
    printFigure(std::cout, ablationKillShadow(ops, w));
    printFigure(std::cout, ablationMemDep(ops, w));
    return 0;
}
