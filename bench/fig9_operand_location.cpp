// Regenerates Figure 9: operand-location breakdown under the DRA.
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv);
    benchutil::CampaignRecorder record("fig9_operand_location", ops,
                                       argc, argv);
    FigureData fig = figure9(ops);
    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig);
    return 0;
}
