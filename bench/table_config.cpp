// Regenerates the machine-parameter summary of paper §2.
#include <iostream>

#include "core/machine_config.hh"
#include "harness/experiment.hh"

using namespace loopsim;

int main()
{
    std::cout << "=== Base machine configuration (paper section 2) ===\n";
    Config cfg = defaultFigureConfig();
    MachineConfig::fromConfig(cfg).print(std::cout);
    std::cout << "\n=== DRA machine (3-cycle register file) ===\n";
    Config dra_cfg = defaultFigureConfig();
    setDraPipeline(dra_cfg, 3);
    MachineConfig::fromConfig(dra_cfg).print(std::cout);
    return 0;
}
