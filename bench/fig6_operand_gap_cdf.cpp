// Regenerates Figure 6: CDF of cycles between operand availability.
#include <iostream>

#include "bench_util.hh"
#include "harness/figures.hh"
#include "harness/report.hh"

using namespace loopsim;

int
main(int argc, char **argv)
{
    auto ops = benchutil::benchOps(argc, argv);
    benchutil::CampaignRecorder record("fig6_operand_gap_cdf", ops,
                                       argc, argv);
    // The paper plots turb3d and notes other benchmarks look similar;
    // print a second benchmark to substantiate that claim.
    FigureData fig = figure6(ops, {"turb3d", "swim"});
    if (benchutil::wantCsv(argc, argv))
        printCsv(std::cout, fig);
    else
        printFigure(std::cout, fig);
    return 0;
}
