#!/usr/bin/env python3
"""Loop-discipline lint for the loopsim tree.

The simulator's central methodological rule ("Loose Loops Sink Chips"
section 6, inherited from ASIM) is that no pipeline stage may act on
global knowledge: feedback signals must travel through the typed
FeedbackPort layer (src/sim/feedback_port.hh), which stamps each
message with its write cycle and declared loop delay so audit builds
can verify the discipline. This linter statically rejects the code
shapes that would let a refactor sneak around that layer:

  feedback-bypass   A feedback event type (EventType::BranchRedirect,
                    LoadMissKill, OperandMissKill, TlbTrap, OrderTrap,
                    PayloadDelivery) or a migrated signal struct
                    (BranchResolveMsg / LoadResolveMsg / OperandMissMsg
                    brace-construction) is used with no FeedbackPort
                    send()/read() call nearby: the signal would skip
                    the stamped port and the audit check with it.

  determinism       rand()/srand()/time()/std::chrono::*_clock::now()
                    in simulation code. Runs must be exactly
                    reproducible from their seeds; the only sanctioned
                    randomness is the seeded PCG in base/random.

  bare-output       std::cout / printf() outside base/logging, and raw
                    std::cerr outside base/logging + base/debug. All
                    user-facing output goes through the logging layer
                    (or an ostream parameter the caller controls) so
                    quiet mode and report capture keep working; debug
                    traces go through debug::emit, whose
                    one-write-per-line discipline keeps them
                    unscrambled under parallel campaigns.

A finding is waived by annotating the offending line (or the line
directly above it) with `// loop:exempt(<reason>)`. The reason is
mandatory; the annotation is the reviewable record of why the pattern
is legitimate (e.g. wall-clock telemetry that never feeds simulated
time). Reasons prefixed `analyze:` target the loopsim-analyze AST
checks (tools/analyze, DESIGN.md §15) rather than these regexes, and
are ignored by --check-stale-exempts.

When the loopsim-analyze binary is built (it needs the Clang dev
package), the feedback-bypass and determinism regexes are superseded
by its AST versions, which see through typedefs, helper functions and
`using clock = ...` aliases; run with --analyzer-available to retire
them and keep only the rules the analyzer does not cover. The full
regex set remains the documented fallback for LLVM-less builds.

--check-stale-exempts flags `loop:exempt(...)` annotations whose line
(or the line below, the two places a waiver can cover) no longer
triggers any regex rule: a waiver that outlives its hazard is a
misleading review record and must be deleted.

Exit status: 0 when clean, 1 when findings were printed, 2 on usage
errors. Run with --self-test to check the linter against the fixture
tree (tools/lint_fixtures), which contains every banned pattern once
plus exempted uses that must stay clean.
"""

import argparse
import re
import sys
from pathlib import Path

SOURCE_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp"}

EXEMPT_RE = re.compile(r"//\s*loop:exempt\([^)]+\)")
EXEMPT_REASON_RE = re.compile(r"//\s*loop:exempt\(([^)]+)\)")

ALL_RULES = frozenset({"feedback-bypass", "determinism", "bare-output"})
# Rules with AST successors in loopsim-analyze (tools/analyze); the
# regex versions retire when the analyzer is available.
SUPERSEDED_BY_ANALYZER = frozenset({"feedback-bypass", "determinism"})

# --- feedback-bypass -------------------------------------------------
FEEDBACK_EVENT_RE = re.compile(
    r"EventType::(BranchRedirect|LoadMissKill|OperandMissKill|"
    r"TlbTrap|OrderTrap|PayloadDelivery)\b")
SIGNAL_STRUCT_RE = re.compile(
    r"\b(BranchResolveMsg|LoadResolveMsg|OperandMissMsg)\s*\{")
PORT_CALL_RE = re.compile(
    r"\.\s*(send|read|readStamped)\s*\(|Port\.(send|read|readStamped)\b")
# A port call within this many lines of the event/struct use counts as
# "the signal goes through the port".
PORT_PROXIMITY = 15
# Directories whose sources carry the migrated loops.
FEEDBACK_DIRS = ("core", "dra")

# --- determinism -----------------------------------------------------
DETERMINISM_RES = [
    (re.compile(r"\b(std::)?rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"\b(std::)?srand\s*\("), "srand()"),
    (re.compile(r"\b(std::)?time\s*\(\s*(NULL|nullptr|0)?\s*\)"),
     "time()"),
    (re.compile(
        r"(steady_clock|system_clock|high_resolution_clock)::now"),
     "std::chrono::*_clock::now()"),
]
# The seeded PCG implementation is the one sanctioned randomness source.
DETERMINISM_ALLOWED = ("base/random.hh", "base/random.cc")

# --- bare-output -----------------------------------------------------
OUTPUT_ALLOWED = ("base/logging.hh", "base/logging.cc")
# std::cerr is additionally sanctioned in base/debug.cc: debug::emit is
# the single-write line sink the raw-cerr ban funnels everyone toward.
CERR_ALLOWED = OUTPUT_ALLOWED + ("base/debug.cc",)
OUTPUT_RES = [
    (re.compile(r"\bstd::cout\b"), "std::cout", OUTPUT_ALLOWED),
    (re.compile(r"\b(std::)?printf\s*\("), "printf()", OUTPUT_ALLOWED),
    (re.compile(r"\bstd::cerr\b"), "std::cerr", CERR_ALLOWED),
]


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_line_comment(line):
    """Drop // comments so commented-out code is not flagged (the
    exemption annotation is read from the raw line instead)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def is_exempt(raw_lines, i):
    """Line i (0-based) is waived by an annotation on it or above it."""
    if EXEMPT_RE.search(raw_lines[i]):
        return True
    return i > 0 and EXEMPT_RE.search(raw_lines[i - 1]) is not None


def rel_posix(path, root):
    return path.relative_to(root).as_posix()


def lint_file(path, display, findings, rules=ALL_RULES,
              honor_exempts=True):
    try:
        raw_lines = path.read_text(errors="replace").splitlines()
    except OSError as err:
        findings.append(Finding(display, 0, "io", str(err)))
        return
    code_lines = [strip_line_comment(line) for line in raw_lines]

    def waived(i):
        return honor_exempts and is_exempt(raw_lines, i)

    in_feedback_dir = any(f"/{d}/" in f"/{display}" or
                          display.startswith(f"{d}/")
                          for d in FEEDBACK_DIRS)
    port_lines = {i for i, line in enumerate(code_lines)
                  if PORT_CALL_RE.search(line)}

    def port_nearby(i):
        return any(abs(i - j) <= PORT_PROXIMITY for j in port_lines)

    for i, line in enumerate(code_lines):
        if in_feedback_dir and "feedback-bypass" in rules:
            m = FEEDBACK_EVENT_RE.search(line)
            if m and not port_nearby(i) and not waived(i):
                findings.append(Finding(
                    display, i + 1, "feedback-bypass",
                    f"feedback event EventType::{m.group(1)} with no "
                    f"FeedbackPort send()/read() within "
                    f"{PORT_PROXIMITY} lines: the signal bypasses the "
                    f"stamped port"))
            m = SIGNAL_STRUCT_RE.search(line)
            if m and not port_nearby(i) and not waived(i):
                findings.append(Finding(
                    display, i + 1, "feedback-bypass",
                    f"signal struct {m.group(1)} constructed outside a "
                    f"FeedbackPort send()/read(): feedback payloads "
                    f"travel only through ports"))

        if display not in DETERMINISM_ALLOWED and \
                "determinism" in rules:
            for pattern, name in DETERMINISM_RES:
                if pattern.search(line) and not waived(i):
                    findings.append(Finding(
                        display, i + 1, "determinism",
                        f"{name} in simulation code: runs must be "
                        f"reproducible from their seeds (use the "
                        f"seeded base/random PCG)"))

        if "bare-output" not in rules:
            continue
        for pattern, name, allowed in OUTPUT_RES:
            if display in allowed:
                continue
            if pattern.search(line) and not waived(i):
                findings.append(Finding(
                    display, i + 1, "bare-output",
                    f"{name} outside its sanctioned files: route "
                    f"output through the logging layer, debug::emit, "
                    f"or an ostream parameter"))


def lint_tree(root, rules=ALL_RULES, honor_exempts=True):
    findings = []
    files = sorted(p for p in root.rglob("*")
                   if p.suffix in SOURCE_SUFFIXES and p.is_file())
    for path in files:
        lint_file(path, rel_posix(path, root), findings, rules,
                  honor_exempts)
    return findings


def stale_exempts(root):
    """Exempt annotations whose line (or the line below) no longer
    trips any regex rule. `analyze:`-prefixed reasons are waivers for
    the AST checks in tools/analyze and are skipped here."""
    findings = lint_tree(root, honor_exempts=False)
    live = {}
    for f in findings:
        live.setdefault(f.path, set()).add(f.line)
    stale = []
    files = sorted(p for p in root.rglob("*")
                   if p.suffix in SOURCE_SUFFIXES and p.is_file())
    for path in files:
        display = rel_posix(path, root)
        try:
            raw_lines = path.read_text(errors="replace").splitlines()
        except OSError:
            continue
        covered = live.get(display, set())
        for i, line in enumerate(raw_lines):
            m = EXEMPT_REASON_RE.search(line)
            if not m:
                continue
            if m.group(1).strip().startswith("analyze:"):
                continue
            # A waiver covers its own line and the line below it.
            if (i + 1) in covered or (i + 2) in covered:
                continue
            stale.append(Finding(
                display, i + 1, "stale-exempt",
                f"loop:exempt({m.group(1).strip()}) no longer "
                f"matches any rule here: delete the waiver or prefix "
                f"the reason with `analyze:` if it targets the AST "
                f"checks"))
    return stale


def self_test(fixture_root):
    """The fixture tree must trip every rule and honour exemptions."""
    findings = lint_tree(fixture_root)
    by_rule = {}
    for f in findings:
        by_rule.setdefault(f.rule, []).append(f)

    failures = []
    expected = {
        "feedback-bypass": 3,  # event schedule, case label, struct
        "determinism": 4,      # rand, srand, time, clock::now
        "bare-output": 3,      # std::cout, printf, std::cerr
    }
    for rule, count in expected.items():
        got = len(by_rule.get(rule, []))
        if got != count:
            failures.append(
                f"rule {rule}: expected {count} fixture findings, "
                f"got {got}")
    flagged_clean = [f for f in findings
                     if Path(f.path).name.startswith("clean_")]
    for f in flagged_clean:
        failures.append(f"clean/exempted fixture flagged: {f}")

    # --analyzer-available retires the superseded rules and nothing
    # else: only the bare-output findings must remain.
    reduced = lint_tree(fixture_root,
                        rules=ALL_RULES - SUPERSEDED_BY_ANALYZER)
    leftover = {f.rule for f in reduced}
    if leftover != {"bare-output"}:
        failures.append(
            f"--analyzer-available mode kept rules {sorted(leftover)},"
            f" expected only bare-output")

    # Stale-waiver detection: the deliberate stale fixture must be
    # the one and only report — live waivers and analyze:-prefixed
    # waivers stay silent.
    stale = stale_exempts(fixture_root)
    stale_names = sorted(Path(f.path).name for f in stale)
    if stale_names != ["stale_exempt.cc"]:
        failures.append(
            f"stale-exempt check reported {stale_names}, expected "
            f"exactly ['stale_exempt.cc']")

    if failures:
        for line in failures:
            print(f"self-test FAILED: {line}", file=sys.stderr)
        for f in findings:
            print(f"  (finding) {f}", file=sys.stderr)
        return 1
    print(f"self-test OK: {len(findings)} expected findings across "
          f"{len(expected)} rules, clean fixtures untouched")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="loop-discipline lint for loopsim")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="tree to scan (default: <repo>/src next to this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="scan tools/lint_fixtures and verify expected findings")
    parser.add_argument(
        "--analyzer-available", action="store_true",
        help="retire the regex rules superseded by loopsim-analyze "
             "(feedback-bypass, determinism); use when the AST "
             "checks run in the same pipeline")
    parser.add_argument(
        "--check-stale-exempts", action="store_true",
        help="flag loop:exempt(...) waivers whose line no longer "
             "trips any regex rule (analyze:-prefixed reasons are "
             "the AST checks' waivers and are skipped)")
    args = parser.parse_args(argv)

    script_dir = Path(__file__).resolve().parent
    if args.self_test:
        return self_test(script_dir / "lint_fixtures")

    root = args.root or script_dir.parent / "src"
    if not root.is_dir():
        print(f"loop_lint: no such tree: {root}", file=sys.stderr)
        return 2

    if args.check_stale_exempts:
        stale = stale_exempts(root.resolve())
        for f in stale:
            print(f)
        if stale:
            print(f"loop_lint: {len(stale)} stale waiver(s) in "
                  f"{root}", file=sys.stderr)
            return 1
        print(f"loop_lint: no stale waivers ({root})")
        return 0

    rules = ALL_RULES
    if args.analyzer_available:
        rules = ALL_RULES - SUPERSEDED_BY_ANALYZER
    findings = lint_tree(root.resolve(), rules)
    for f in findings:
        print(f)
    if findings:
        print(f"loop_lint: {len(findings)} finding(s) in {root}",
              file=sys.stderr)
        return 1
    print(f"loop_lint: clean ({root})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
