#!/usr/bin/env python3
"""Perf smoke test: the trace layer must be observably free.

Runs one small figure campaign twice — once plain, once with
`--trace` — and asserts:

  1. the figure output is byte-identical with and without tracing
     (recording must not perturb the simulation),
  2. the traced run's runs/sec is within a (generous) noise bound of
     the untraced run's (the layer's overhead claim from DESIGN.md
     §11: one pointer test per feedback delivery when off, one
     push_back per delivery when on),
  3. the emitted file is schema-valid Chrome trace JSON in which every
     span satisfies write_cycle + loop_delay == consume_cycle and all
     three of the paper's loops appear.

CI runs this as the perf-smoke job and uploads the trace as an
artifact; locally:

    python3 tools/perf_smoke.py --bench build/bench/fig8_dra_speedup

A second mode, `--baseline`, benchmarks the sparse event-driven
kernel against the dense reference kernel (DESIGN.md §14): it runs
the same figure campaign under both kernels (the dense one selected
via LOOPSIM_DENSE_KERNEL=1), asserts the figure output is
byte-identical between them, and writes BENCH_kernel.json with both
kernels' median runs/sec, ops/sec, p50 campaign wall time, core
scan fraction (from one extra self-profiled run per kernel), and
the host context the numbers were measured on. The
sparse kernel must not be slower than --min-kernel-ratio times the
dense kernel measured in the same job — a same-machine comparison,
so CI noise cancels out of the ratio:

    python3 tools/perf_smoke.py --baseline \\
        --bench build/bench/fig5_pipeline_config --ops 8000

Exit status: 0 on success, 1 on any failed assertion, 2 on usage or
subprocess errors.
"""

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

LOOP_KINDS = ("branch-loop", "load-loop", "operand-loop")

# Below this many repeats the medians are dominated by scheduler
# noise on a shared CI host; the baseline still runs, but the report
# flags itself as statistically weak.
REPEATS_FLOOR = 5


def round_floats(value, digits=3):
    """Round every float in a JSON-ish structure to a stable number
    of decimals, so committed benchmark files do not churn on raw
    float repr noise (53022.159999999996 vs 53022.16)."""
    if isinstance(value, float):
        return round(value, digits)
    if isinstance(value, dict):
        return {k: round_floats(v, digits) for k, v in value.items()}
    if isinstance(value, list):
        return [round_floats(v, digits) for v in value]
    return value


def host_context():
    """Host metadata embedded in baseline reports: a committed
    BENCH_kernel.json is meaningless without knowing what machine
    produced it."""
    ctx = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "cpu_model": None,
        "cpu_mhz": None,
    }
    try:
        for line in Path("/proc/cpuinfo").read_text().splitlines():
            if ctx["cpu_model"] is None and line.startswith("model name"):
                ctx["cpu_model"] = line.split(":", 1)[1].strip()
            elif ctx["cpu_mhz"] is None and line.startswith("cpu MHz"):
                ctx["cpu_mhz"] = float(line.split(":", 1)[1].strip())
            if ctx["cpu_model"] is not None and ctx["cpu_mhz"] is not None:
                break
    except OSError:
        pass
    return ctx


def run_bench(bench, ops, jobs, bench_json, extra_args, extra_env=None):
    cmd = [str(bench), str(ops), "--jobs", str(jobs)] + extra_args
    env = dict(os.environ)
    env["LOOPSIM_BENCH_JSON"] = str(bench_json)
    env.pop("LOOPSIM_TRACE", None)
    env.pop("LOOPSIM_PROFILE", None)
    env.pop("LOOPSIM_DENSE_KERNEL", None)
    if extra_env:
        env.update(extra_env)
    try:
        proc = subprocess.run(cmd, env=env, capture_output=True,
                              text=True, check=True)
    except OSError as err:
        print(f"perf_smoke: cannot run {cmd[0]}: {err}",
              file=sys.stderr)
        sys.exit(2)
    except subprocess.CalledProcessError as err:
        print(f"perf_smoke: {' '.join(cmd)} exited {err.returncode}\n"
              f"{err.stderr}", file=sys.stderr)
        sys.exit(2)
    return proc.stdout


def last_entry(bench_json):
    entries = json.loads(Path(bench_json).read_text())
    if not isinstance(entries, list) or not entries:
        print(f"perf_smoke: no campaign entries in {bench_json}",
              file=sys.stderr)
        sys.exit(1)
    return entries[-1]


def check_trace(path, failures):
    try:
        doc = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        failures.append(f"trace file {path} is not valid JSON: {err}")
        return
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        failures.append("trace has no traceEvents array")
        return
    spans = [e for e in events if e.get("ph") == "X"]
    if not spans:
        failures.append("trace contains no loop-event spans")
        return
    seen_kinds = set()
    for e in spans:
        args = e.get("args", {})
        write = args.get("write_cycle")
        delay = args.get("loop_delay")
        consume = args.get("consume_cycle")
        if write is None or delay is None or consume is None:
            failures.append(f"span missing loop geometry: {e}")
            break
        if write + delay != consume:
            failures.append(
                f"dishonest stamp: write {write} + delay {delay} != "
                f"consume {consume} in {e.get('name')}")
            break
        if e.get("ts") != write or e.get("dur") != delay:
            failures.append(
                f"span ts/dur disagree with args in {e.get('name')}")
            break
        seen_kinds.add(e.get("cat"))
    missing = [k for k in LOOP_KINDS if k not in seen_kinds]
    if missing:
        failures.append(
            f"trace is missing loop kind(s): {', '.join(missing)} "
            f"(saw {sorted(seen_kinds)})")
    print(f"perf_smoke: trace OK — {len(spans)} spans across "
          f"{sorted(seen_kinds)}")


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def measure_kernel(args, label, extra_env, failures, tmp):
    """Run the campaign --repeats times under one kernel; return the
    (stdout, medians-dict) pair. Any campaign failure is fatal."""
    outputs = []
    walls, rps = [], []
    runs = 0
    for rep in range(args.repeats):
        bench_json = Path(tmp) / f"{label}_{rep}.json"
        out = run_bench(args.bench, args.ops, args.jobs, bench_json,
                        [], extra_env)
        entry = last_entry(bench_json)
        if entry.get("failures", 0):
            failures.append(
                f"{label} kernel: campaign reported "
                f"{entry['failures']} failed run(s)")
        outputs.append(out)
        walls.append(entry.get("campaign_wall_s", 0.0))
        rps.append(entry.get("runs_per_s", 0.0))
        runs = entry.get("runs", 0)
    if len(set(outputs)) != 1:
        failures.append(
            f"{label} kernel: figure output varies across repeats — "
            f"the campaign is not deterministic")
    med_rps = median(rps)
    return outputs[0], {
        "runs": runs,
        "runs_per_s": med_rps,
        "ops_per_s": med_rps * args.ops,
        "p50_wall_s": median(walls),
    }


def measure_scan_fraction(args, label, extra_env, failures, tmp):
    """One profiled campaign run under one kernel; return the core's
    scan fraction (full-IQ-scan ticks / total core ticks) or None if
    the profile lacks a core component. The profiled run is separate
    from the timing repeats: self-profiling adds clock reads that
    would contaminate the runs/sec medians."""
    env = dict(extra_env or {})
    env["LOOPSIM_PROFILE"] = "1"
    bench_json = Path(tmp) / f"{label}_profile.json"
    run_bench(args.bench, args.ops, args.jobs, bench_json, [], env)
    entry = last_entry(bench_json)
    for comp in entry.get("tick_profile", []):
        if comp.get("component") == "core" and comp.get("ticks"):
            return comp.get("scan_ticks", 0) / comp["ticks"]
    failures.append(
        f"{label} kernel: profiled run produced no core tick profile "
        f"(scan-fraction telemetry is broken)")
    return None


def run_baseline(args):
    """--baseline: dense vs sparse kernel on the same figure campaign.

    Byte-identical figures are the correctness bar (the differential
    suite `ctest -L kernel` checks the per-profile statistics; this
    checks the shipped figure end to end), and the sparse kernel's
    median runs/sec must be at least --min-kernel-ratio of the dense
    kernel's, measured back to back on the same machine.
    """
    failures = []
    if args.repeats < REPEATS_FLOOR:
        print(f"perf_smoke: WARNING — only {args.repeats} repeat(s) "
              f"per kernel; medians below {REPEATS_FLOOR} repeats are "
              f"noise-dominated on shared hosts, treat the ratio as "
              f"indicative only", file=sys.stderr)
    with tempfile.TemporaryDirectory() as tmp:
        dense_out, dense = measure_kernel(
            args, "dense", {"LOOPSIM_DENSE_KERNEL": "1"}, failures, tmp)
        sparse_out, sparse = measure_kernel(
            args, "sparse", None, failures, tmp)
        dense["scan_fraction"] = measure_scan_fraction(
            args, "dense", {"LOOPSIM_DENSE_KERNEL": "1"}, failures,
            tmp)
        sparse["scan_fraction"] = measure_scan_fraction(
            args, "sparse", None, failures, tmp)

    if dense_out != sparse_out:
        failures.append(
            "figure output differs between the dense and sparse "
            "kernels — the event-driven kernel diverged")

    speedup = (sparse["runs_per_s"] / dense["runs_per_s"]
               if dense["runs_per_s"] > 0 else 0.0)
    print(f"perf_smoke: dense {dense['runs_per_s']:.2f} runs/s "
          f"(p50 wall {dense['p50_wall_s']:.2f}s), "
          f"sparse {sparse['runs_per_s']:.2f} runs/s "
          f"(p50 wall {sparse['p50_wall_s']:.2f}s), "
          f"speedup {speedup:.3f}x")
    if dense["runs_per_s"] <= 0.0 or sparse["runs_per_s"] <= 0.0:
        failures.append("campaign telemetry reported zero runs/sec")
    elif speedup < args.min_kernel_ratio:
        failures.append(
            f"sparse kernel regressed: {sparse['runs_per_s']:.2f} < "
            f"{args.min_kernel_ratio} * {dense['runs_per_s']:.2f} "
            f"runs/s (speedup {speedup:.3f}x)")
    if sparse["scan_fraction"] is not None:
        print(f"perf_smoke: core scan fraction — "
              f"dense {dense['scan_fraction']:.4f}, "
              f"sparse {sparse['scan_fraction']:.4f}")
        if sparse["scan_fraction"] > args.max_scan_fraction:
            failures.append(
                f"sparse kernel fell back to full IQ scans on "
                f"{sparse['scan_fraction']:.1%} of core ticks "
                f"(limit {args.max_scan_fraction:.1%}) — the "
                f"incremental ready tracking is not carrying the "
                f"issue stage")

    report = {
        "bench": args.bench.name,
        "ops": args.ops,
        "jobs": args.jobs,
        "repeats": args.repeats,
        "repeats_floor": REPEATS_FLOOR,
        "host": host_context(),
        "dense": dense,
        "sparse": sparse,
        "sparse_speedup": speedup,
        "figures_identical": dense_out == sparse_out,
    }
    args.out.write_text(
        json.dumps(round_floats(report), indent=2) + "\n")
    print(f"perf_smoke: wrote {args.out}")

    if failures:
        for f in failures:
            print(f"perf_smoke FAILED: {f}", file=sys.stderr)
        return 1
    print("perf_smoke baseline OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="trace-layer perf smoke test")
    parser.add_argument(
        "--baseline", action="store_true",
        help="benchmark the sparse kernel against the dense reference "
             "kernel instead of the trace-layer check, and write "
             "BENCH_kernel.json")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="baseline mode: campaign repeats per kernel (medians "
             "are reported)")
    parser.add_argument(
        "--out", type=Path, default=Path("BENCH_kernel.json"),
        help="baseline mode: where the kernel comparison is written")
    parser.add_argument(
        "--min-kernel-ratio", type=float, default=0.85,
        help="baseline mode: sparse runs/sec must be at least this "
             "fraction of dense runs/sec (same-machine comparison)")
    parser.add_argument(
        "--max-scan-fraction", type=float, default=0.2,
        help="baseline mode: at most this fraction of the sparse "
             "kernel's core ticks may run the full O(IQ) reference "
             "scan (the incremental path reports 0; the bound "
             "catches a silent fallback)")
    parser.add_argument(
        "--bench", type=Path,
        default=Path("build/bench/fig8_dra_speedup"),
        help="figure binary to drive (default: fig8)")
    parser.add_argument(
        "--ops", type=int, default=3000,
        help="correct-path ops per run (small: this is a smoke test)")
    parser.add_argument(
        "--jobs", type=int, default=2, help="campaign worker count")
    parser.add_argument(
        "--trace-out", type=Path, default=Path("perf_smoke_trace.json"),
        help="where the traced run writes its trace")
    parser.add_argument(
        "--min-ratio", type=float, default=0.5,
        help="traced runs/sec must be at least this fraction of "
             "untraced (generous: CI machines are noisy)")
    args = parser.parse_args(argv)

    if not args.bench.exists():
        print(f"perf_smoke: no such bench binary: {args.bench} "
              f"(build the project first)", file=sys.stderr)
        return 2

    if args.baseline:
        return run_baseline(args)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        plain_json = Path(tmp) / "plain.json"
        traced_json = Path(tmp) / "traced.json"

        plain_out = run_bench(args.bench, args.ops, args.jobs,
                              plain_json, [])
        traced_out = run_bench(args.bench, args.ops, args.jobs,
                               traced_json,
                               ["--trace", str(args.trace_out)])

        if plain_out != traced_out:
            failures.append(
                "figure output differs with tracing enabled — "
                "recording perturbed the simulation")

        plain = last_entry(plain_json)
        traced = last_entry(traced_json)
        for entry in (plain, traced):
            if entry.get("failures", 0):
                failures.append(
                    f"campaign reported {entry['failures']} failed "
                    f"run(s) in {entry.get('bench')}")
        plain_rps = plain.get("runs_per_s", 0.0)
        traced_rps = traced.get("runs_per_s", 0.0)
        print(f"perf_smoke: untraced {plain_rps:.2f} runs/s, "
              f"traced {traced_rps:.2f} runs/s")
        if plain_rps <= 0.0 or traced_rps <= 0.0:
            failures.append("campaign telemetry reported zero runs/sec")
        elif traced_rps < args.min_ratio * plain_rps:
            failures.append(
                f"tracing slowed the campaign beyond noise: "
                f"{traced_rps:.2f} < {args.min_ratio} * "
                f"{plain_rps:.2f} runs/s")

        check_trace(args.trace_out, failures)

    if failures:
        for f in failures:
            print(f"perf_smoke FAILED: {f}", file=sys.stderr)
        return 1
    print("perf_smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
