/**
 * @file
 * loopsim-submit: submit a campaign plan to a loopsim-serve daemon.
 *
 *   loopsim-submit --server HOST:PORT --ping
 *   loopsim-submit [--server HOST:PORT] [--tenant NAME]
 *                  [--workloads a,b,c] [--ops N] [--warmup N]
 *                  [--set key=value]...
 *
 * Builds one plan cell per named workload (default: the paper's
 * thirteen figure workloads) under the given config overrides, submits
 * it, and prints one result line per cell in plan order plus a service
 * telemetry JSON object — assembled output is byte-identical to
 * running the same cells locally. The figure binaries reach the same
 * code path via their own --server flag (bench/bench_util.hh); this
 * tool exists for scripting and smoke tests.
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "harness/campaign.hh"
#include "serve/client.hh"
#include "workload/workload_set.hh"

using namespace loopsim;

namespace
{

int
usage(std::ostream &os, int exit_code)
{
    os << "usage: loopsim-submit [options]\n"
          "\n"
          "options:\n"
          "  --server HOST:PORT  daemon endpoint (default: "
          "$LOOPSIM_SERVER)\n"
          "  --ping              handshake only; exit 0 when the "
          "server answers\n"
          "  --tenant NAME       tenant label for server telemetry "
          "(default: $LOOPSIM_TENANT)\n"
          "  --workloads a,b,c   workload labels (default: all figure "
          "workloads)\n"
          "  --ops N             measured micro-ops per cell\n"
          "  --warmup N          warmup micro-ops per cell\n"
          "  --set key=value     config override (repeatable)\n";
    return exit_code;
}

std::string
flagValue(const std::vector<std::string> &args, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i].rfind(prefix, 0) == 0)
            return args[i].substr(prefix.size());
        if (args[i] != flag)
            continue;
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            std::exit(2);
        }
        return args[i + 1];
    }
    return "";
}

bool
hasFlag(const std::vector<std::string> &args, const std::string &flag)
{
    for (const std::string &arg : args) {
        if (arg == flag)
            return true;
    }
    return false;
}

std::vector<std::string>
splitCommas(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t at = 0;
    while (at <= text.size()) {
        const std::size_t comma = text.find(',', at);
        const std::size_t end =
            comma == std::string::npos ? text.size() : comma;
        if (end > at)
            out.push_back(text.substr(at, end - at));
        if (comma == std::string::npos)
            break;
        at = comma + 1;
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
    }

    const std::string server = flagValue(args, "--server");
    if (!server.empty())
        serve::setServeEndpoint(server);
    if (!serve::serveConfigured()) {
        std::cerr << "loopsim-submit: no server (pass --server "
                     "HOST:PORT or set LOOPSIM_SERVER)\n";
        return 2;
    }

    std::string error;
    if (hasFlag(args, "--ping")) {
        if (!serve::pingServer("", error)) {
            std::cerr << "loopsim-submit: " << error << "\n";
            return 1;
        }
        std::cout << "loopsim-submit: " << serve::serveEndpoint()
                  << " answers\n";
        return 0;
    }

    Config overrides;
    for (std::size_t i = 0; i < args.size(); ++i) {
        std::string kv;
        if (args[i].rfind("--set=", 0) == 0) {
            kv = args[i].substr(6);
        } else if (args[i] == "--set") {
            if (i + 1 >= args.size()) {
                std::cerr << "--set needs key=value\n";
                return 2;
            }
            kv = args[++i];
        } else {
            continue;
        }
        const std::size_t eq = kv.find('=');
        if (eq == std::string::npos || eq == 0) {
            std::cerr << "loopsim-submit: invalid --set \"" << kv
                      << "\" (want key=value)\n";
            return 2;
        }
        overrides.set(kv.substr(0, eq), kv.substr(eq + 1));
    }

    CampaignPlan plan;
    const std::string workloads = flagValue(args, "--workloads");
    const std::string ops = flagValue(args, "--ops");
    const std::string warmup = flagValue(args, "--warmup");
    auto addCell = [&](const Workload &w) {
        RunSpec spec;
        spec.workload = w;
        spec.overrides = overrides;
        if (!ops.empty())
            spec.totalOps = std::stoull(ops);
        if (!warmup.empty())
            spec.warmupOps = std::stoull(warmup);
        plan.add(std::move(spec), figureLabel(w));
    };
    if (workloads.empty()) {
        for (const Workload &w : figureWorkloads())
            addCell(w);
    } else {
        for (const std::string &label : splitCommas(workloads))
            addCell(resolveWorkload(label));
    }

    serve::SubmitOptions opts;
    opts.tenant = flagValue(args, "--tenant");
    std::vector<RunResult> results;
    serve::ServeTelemetry tele;
    if (!serve::submitPlanRemote(plan, RetryPolicy{}, opts, results, tele,
                                 error)) {
        std::cerr << "loopsim-submit: " << error << "\n";
        return 1;
    }

    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::cout << plan.at(i).label << "  " << r.workloadLabel << " ["
                  << r.pipeLabel << "]";
        if (r.failed)
            std::cout << "  FAILED (" << failKindName(r.failKind) << ")";
        else
            std::cout << "  ipc=" << r.ipc << "  cycles=" << r.cycles;
        std::cout << "\n";
    }
    std::cout << "{\n"
              << "  \"tenant\": \"" << tele.tenant << "\",\n"
              << "  \"cells\": " << tele.cells << ",\n"
              << "  \"queued\": " << tele.queued << ",\n"
              << "  \"simulated\": " << tele.simulated << ",\n"
              << "  \"cache_hits\": " << tele.cacheHits << ",\n"
              << "  \"dedup_hits\": " << tele.dedupHits << ",\n"
              << "  \"resumed\": " << tele.resumed << ",\n"
              << "  \"failures\": " << tele.failures << ",\n"
              << "  \"crashes\": " << tele.crashes << ",\n"
              << "  \"timeouts\": " << tele.timeouts << ",\n"
              << "  \"reconnects\": " << tele.reconnects << ",\n"
              << "  \"wall_seconds\": " << tele.wallSeconds << "\n"
              << "}\n";
    return 0;
}
