/**
 * @file
 * loopsim-serve: the multi-tenant campaign service daemon.
 *
 *   loopsim-serve [--host A] [--port N] [--jobs N|auto]
 *                 [--store DIR] [--journal DIR] [--deadline-ms N]
 *                 [--stats-json PATH]
 *
 * Binds a TCP listener (default loopback, ephemeral port — the bound
 * address is printed as "listening on HOST:PORT" for scripts to
 * parse), serves campaign plans until SIGTERM/SIGINT, then drains:
 * in-flight plans finish streaming and queued cells are completed and
 * journaled before exit. --stats-json writes the shared cache-tier
 * schema (see `loopsim-store stat --json`) on shutdown.
 *
 * The store (--store/LOOPSIM_STORE) is the daemon's shared cache tier;
 * the journal directory (--journal/LOOPSIM_JOURNAL) makes every
 * submitted plan resumable across client reconnects and daemon
 * restarts. Run the daemon without LOOPSIM_OVERLAY: clients flatten
 * their own overlays into the plans they submit, and a daemon-side
 * overlay would skew every tenant's cache keys (DESIGN.md §16).
 */

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "harness/campaign.hh"
#include "harness/experiment.hh"
#include "harness/supervisor.hh"
#include "serve/server.hh"
#include "store/journal.hh"
#include "store/result_store.hh"

using namespace loopsim;

namespace
{

int
usage(std::ostream &os, int exit_code)
{
    os << "usage: loopsim-serve [options]\n"
          "\n"
          "options:\n"
          "  --host A           bind address (default 127.0.0.1)\n"
          "  --port N           TCP port (default 0 = ephemeral; the "
          "bound port is printed)\n"
          "  --jobs N|auto      executor pool width (default: --jobs "
          "auto = host CPUs)\n"
          "  --store DIR        persistent result store (default: "
          "$LOOPSIM_STORE)\n"
          "  --journal DIR      campaign journal directory (default: "
          "$LOOPSIM_JOURNAL)\n"
          "  --deadline-ms N    per-cell wall-clock deadline for "
          "workers\n"
          "  --io-timeout-ms N  per-call socket I/O deadline for "
          "client connections (default 30000; 0 = none)\n"
          "  --stats-json PATH  write cache-tier stats JSON on "
          "shutdown\n";
    return exit_code;
}

/** Strict decimal parse (cf. parseJobsSpec): no sign, no trailing
 *  junk, no silent wrap — a daemon flag that doesn't parse is a usage
 *  error, never an uncaught throw or a truncated value. */
bool
parseU64Flag(const std::string &s, std::uint64_t &out)
{
    if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || errno == ERANGE)
        return false;
    out = v;
    return true;
}

std::string
flagValue(const std::vector<std::string> &args, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i].rfind(prefix, 0) == 0)
            return args[i].substr(prefix.size());
        if (args[i] != flag)
            continue;
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            std::exit(2);
        }
        return args[i + 1];
    }
    return "";
}

std::uint64_t
numericFlag(const std::vector<std::string> &args, const std::string &flag,
            std::uint64_t fallback, std::uint64_t max_value,
            const char *what)
{
    const std::string value = flagValue(args, flag);
    if (value.empty())
        return fallback;
    std::uint64_t parsed = 0;
    if (!parseU64Flag(value, parsed) || parsed > max_value) {
        std::cerr << "loopsim-serve: invalid " << flag << " \"" << value
                  << "\" (want " << what << ")\n";
        std::exit(2);
    }
    return parsed;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    for (const std::string &arg : args) {
        if (arg == "--help" || arg == "-h")
            return usage(std::cout, 0);
    }

    serve::ServerOptions opts;
    const std::string host = flagValue(args, "--host");
    if (!host.empty())
        opts.host = host;
    opts.port = static_cast<unsigned short>(
        numericFlag(args, "--port", opts.port, 65535, "a TCP port, 0-65535"));
    opts.ioTimeoutMs = static_cast<unsigned>(
        numericFlag(args, "--io-timeout-ms", opts.ioTimeoutMs,
                    std::numeric_limits<unsigned>::max(),
                    "a millisecond count (0 disables)"));

    // Default to the full host width: the daemon is the only tenant of
    // its machine, unlike a figure binary sharing a dev box.
    std::string jobs_spec = flagValue(args, "--jobs");
    if (jobs_spec.empty())
        jobs_spec = "auto";
    bool jobs_ok = false;
    opts.jobs = parseJobsSpec(jobs_spec, jobs_ok);
    if (!jobs_ok) {
        std::cerr << "loopsim-serve: invalid --jobs \"" << jobs_spec
                  << "\" (want a number or \"auto\")\n";
        return 2;
    }

    const std::string store_dir = flagValue(args, "--store");
    if (!store_dir.empty())
        store::setStorePath(store_dir);
    const std::string journal_dir = flagValue(args, "--journal");
    if (!journal_dir.empty())
        store::setJournalPath(journal_dir);
    const std::uint64_t deadline_ms = numericFlag(
        args, "--deadline-ms", 0, std::numeric_limits<std::uint64_t>::max(),
        "a millisecond count");
    if (deadline_ms != 0)
        setDeadlineMs(deadline_ms);
    const std::string stats_json = flagValue(args, "--stats-json");

    // Clients flatten their own overlays into the plans they submit; a
    // daemon-side overlay would skew every tenant's results and cache
    // keys, so drop an inherited one before anything can latch it
    // (DESIGN.md §16).
    if (std::getenv("LOOPSIM_OVERLAY") != nullptr) { // NOLINT(concurrency-mt-unsafe)
        std::cerr << "loopsim-serve: ignoring LOOPSIM_OVERLAY (clients "
                     "own their overlays)\n";
        ::unsetenv("LOOPSIM_OVERLAY"); // NOLINT(concurrency-mt-unsafe)
    }
    clearRunOverlay();

    serve::installDrainSignalHandlers();
    serve::CampaignServer server(opts);
    std::string error;
    if (!server.start(error)) {
        std::cerr << "loopsim-serve: " << error << "\n";
        return 1;
    }
    std::cout << "loopsim-serve: listening on " << opts.host << ":"
              << server.port() << " (" << server.jobs() << " worker"
              << (server.jobs() == 1 ? "" : "s");
    if (store::storeConfigured())
        std::cout << ", store " << store::storePath();
    if (store::journalConfigured())
        std::cout << ", journal " << store::journalPath();
    std::cout << ")" << std::endl;

    while (!serve::drainRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    std::cout << "loopsim-serve: draining" << std::endl;
    server.stop();

    const serve::ServeTelemetry totals = server.totals();
    std::cout << "loopsim-serve: served " << totals.cells
              << " cell(s): " << totals.simulated << " simulated, "
              << totals.cacheHits << " cache hit(s), "
              << totals.dedupHits << " dedup hit(s), " << totals.resumed
              << " resumed, " << totals.failures << " failure(s)"
              << std::endl;

    if (!stats_json.empty()) {
        store::StoreStats stats;
        if (store::ResultStore *ps = store::processStore())
            stats = ps->stats();
        std::ofstream out(stats_json, std::ios::trunc);
        out << store::storeSummaryJson(
            store::summarizeStore(store::storePath()),
            store::storeConfigured() ? &stats : nullptr);
        if (!out) {
            std::cerr << "loopsim-serve: cannot write " << stats_json
                      << "\n";
            return 1;
        }
    }
    return 0;
}
