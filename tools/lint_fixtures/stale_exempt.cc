// Fixture: a `loop:exempt(...)` waiver whose line no longer trips
// any rule — `--check-stale-exempts` must flag exactly this one.
// The analyze:-prefixed waiver below targets the AST checks in
// tools/analyze and must NOT be reported as stale here.

namespace loopsim_fixture
{

int stalePattern()
{
    // loop:exempt(the printf this waived was deleted in a refactor)
    return 42;
}

int analyzerWaiver()
{
    // loop:exempt(analyze: wake obligation carried by the caller)
    return 7;
}

} // namespace loopsim_fixture
