// Fixture: bare-output shapes loop_lint.py must reject.
// Never compiled; consumed by `loop_lint.py --self-test`.

#include <cstdio>
#include <iostream>

namespace loopsim_fixture
{

void chattyStage(int ipc)
{
    std::cout << "ipc=" << ipc << "\n";
}

void chattyStageC(int ipc)
{
    printf("ipc=%d\n", ipc);
}

void chattyTraceHook(int slot)
{
    // Raw cerr interleaves mid-line under parallel campaigns; trace
    // hooks must go through debug::emit instead.
    std::cerr << "[pool " << slot << "] alloc\n";
}

} // namespace loopsim_fixture
