// Fixture: bare-output shapes loop_lint.py must reject.
// Never compiled; consumed by `loop_lint.py --self-test`.

#include <cstdio>
#include <iostream>

namespace loopsim_fixture
{

void chattyStage(int ipc)
{
    std::cout << "ipc=" << ipc << "\n";
}

void chattyStageC(int ipc)
{
    printf("ipc=%d\n", ipc);
}

} // namespace loopsim_fixture
