// Fixture: patterns that hit the lint regexes but carry a
// `loop:exempt` annotation with a reason — --self-test fails if any
// of these are flagged.

#include <chrono>
#include <iostream>

namespace loopsim_fixture
{

double telemetry()
{
    // loop:exempt(wall-clock telemetry, never feeds simulated time)
    auto t0 = std::chrono::steady_clock::now();
    return static_cast<double>(t0.time_since_epoch().count());
}

void sanctionedBanner()
{
    std::cout << "banner\n"; // loop:exempt(CLI banner outside sim loop)
}

} // namespace loopsim_fixture
