// Fixture: every feedback-bypass shape loop_lint.py must reject.
// This file is never compiled; it exists so --self-test can prove the
// linter catches code that schedules or handles a feedback event
// without going through a FeedbackPort.

#include <cstdint>

namespace loopsim_fixture
{

void scheduleWithoutPort(std::uint64_t resolve)
{
    // Writer side: a branch-resolution event scheduled directly, with
    // no branchPort.send() stamping the message. The audit layer never
    // sees this signal.
    schedule(Event{resolve + 2, EventType::BranchRedirect, ref});
}

// Padding so the next violation sits outside the proximity window of
// anything above.
//
//
//
//
//
//
//
//
//
//
//
//
//

void handleWithoutPort(const Event &ev)
{
    switch (ev.type) {
    case EventType::LoadMissKill: // reader side, no port.read() nearby
        killLoadShadow(ev.ref);
        break;
    default:
        break;
    }
}

// Padding.
//
//
//
//
//
//
//
//
//
//
//
//
//

void constructOutsidePort()
{
    // Signal payloads travel only through ports; a loose construction
    // means some stage is passing feedback around by hand.
    auto msg = BranchResolveMsg{0, 42};
    consume(msg);
}

} // namespace loopsim_fixture
