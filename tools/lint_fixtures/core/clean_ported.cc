// Fixture: the sanctioned feedback shape — event scheduling and
// handling with the FeedbackPort send()/read() adjacent. Must produce
// zero findings.

#include <cstdint>

namespace loopsim_fixture
{

void scheduleThroughPort(std::uint64_t resolve, std::uint64_t delay)
{
    auto sid = branchPort.send(resolve, delay, BranchResolveMsg{0, 42});
    schedule(Event{resolve + delay, EventType::BranchRedirect, ref,
                   0, 0, sid});
}

void handleThroughPort(const Event &ev, std::uint64_t now)
{
    switch (ev.type) {
    case EventType::BranchRedirect: {
        auto msg = branchPort.read(ev.signalId, now);
        squashYounger(msg.tid, msg.squashStamp, now);
        break;
    }
    default:
        break;
    }
}

} // namespace loopsim_fixture
