// Fixture: every determinism hazard loop_lint.py must reject.
// Never compiled; consumed by `loop_lint.py --self-test`.

#include <chrono>
#include <cstdlib>
#include <ctime>

namespace loopsim_fixture
{

int unseededNoise()
{
    return std::rand();
}

void reseedFromWallClock()
{
    std::srand(12345u);
}

long wallClockSeed()
{
    return time(nullptr);
}

double wallClockTiming()
{
    auto t0 = std::chrono::steady_clock::now();
    return static_cast<double>(t0.time_since_epoch().count());
}

} // namespace loopsim_fixture
