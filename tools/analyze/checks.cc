/**
 * @file
 * The four loopsim AST checks (DESIGN.md §15).
 *
 *  wake-soundness    A function that mutates LOOPSIM_WAKE_STATE
 *                    fields (or calls a wake_state function) must
 *                    also call a LOOPSIM_WAKE_HOOK, or the sparse
 *                    event-wheel kernel can sleep through the state
 *                    change (the PR-7 dense/sparse divergence class).
 *                    Deliberately function-granular, not path
 *                    sensitive: processEvents hooks conservatively
 *                    up front under a condition the CFG cannot
 *                    correlate with the event switch below it, so
 *                    "hook on every path" would flag paths the event
 *                    vocabulary makes infeasible.
 *
 *  feedback-bypass   Constructions of the feedback signal structs
 *                    and uses of the six feedback EventTypes must sit
 *                    in functions that talk to a FeedbackPort
 *                    (send/read/readStamped). The AST successor to
 *                    loop_lint's 15-line proximity regex: canonical
 *                    types see through typedefs and aliases, and
 *                    whole-function containment replaces the line
 *                    window.
 *
 *  determinism       Range-for over unordered (or pointer-keyed
 *                    ordered) containers whose body reaches an
 *                    order-observable sink — stats export, trace
 *                    sinks, store fingerprinting, figure assembly,
 *                    ostream output — plus wall-clock / rand /
 *                    random_device outside base/random. Sees through
 *                    `using clock = std::chrono::steady_clock` where
 *                    the regex cannot.
 *
 *  campaign-statics  Mutable namespace-scope or function-local
 *                    static state in src/ that is not atomic, not a
 *                    mutex-family type, not thread_local, and not
 *                    annotated LOOPSIM_CAMPAIGN_GUARDED(how): the
 *                    parallel campaign executor shares it between
 *                    workers.
 *
 * All checks honour `// loop:exempt(<reason>)` (AnalyzeContext).
 */

#include "analyze_context.hh"

#include <clang/AST/DeclCXX.h>
#include <clang/AST/DeclTemplate.h>
#include <clang/AST/ExprCXX.h>
#include <clang/AST/RecursiveASTVisitor.h>
#include <clang/AST/StmtCXX.h>

using namespace clang;
using llvm::StringRef;

namespace loopsim_analyze
{
namespace
{

constexpr const char *kCheckWake = "wake-soundness";
constexpr const char *kCheckBypass = "feedback-bypass";
constexpr const char *kCheckDeterminism = "determinism";
constexpr const char *kCheckStatics = "campaign-statics";

bool
nameIs(const NamedDecl *d, std::initializer_list<StringRef> names)
{
    if (!d || !d->getIdentifier())
        return false;
    StringRef n = d->getName();
    for (StringRef want : names)
        if (n == want)
            return true;
    return false;
}

/** The wake_state field a member chain ultimately writes, if any. */
const FieldDecl *
wakeFieldOf(const Expr *e)
{
    if (!e)
        return nullptr;
    const Expr *stripped = e->IgnoreParenImpCasts();
    const auto *member = dyn_cast<MemberExpr>(stripped);
    if (!member)
        return nullptr;
    const auto *field = dyn_cast<FieldDecl>(member->getMemberDecl());
    if (field && hasAnnotation(field, kWakeState))
        return field;
    return nullptr;
}

// --- wake-soundness --------------------------------------------------

/** Collects wake-state mutations and wake-hook calls in one body. */
class WakeBodyScanner : public RecursiveASTVisitor<WakeBodyScanner>
{
  public:
    struct Mutation
    {
        SourceLocation loc;
        std::string what;
    };

    bool hookCalled = false;
    /** Unresolved callees (dependent code): stay silent, not wrong. */
    bool unresolvedCall = false;
    std::vector<Mutation> mutations;

    bool
    VisitBinaryOperator(BinaryOperator *bo)
    {
        if (bo->isAssignmentOp())
            noteFieldWrite(bo->getLHS(), bo->getOperatorLoc());
        return true;
    }

    bool
    VisitUnaryOperator(UnaryOperator *uo)
    {
        if (uo->isIncrementDecrementOp())
            noteFieldWrite(uo->getSubExpr(), uo->getOperatorLoc());
        return true;
    }

    bool
    VisitCXXOperatorCallExpr(CXXOperatorCallExpr *oc)
    {
        if ((oc->isAssignmentOp() ||
             oc->getOperator() == OO_PlusPlus ||
             oc->getOperator() == OO_MinusMinus) &&
            oc->getNumArgs() > 0)
            noteFieldWrite(oc->getArg(0), oc->getOperatorLoc());
        return true;
    }

    bool
    VisitCallExpr(CallExpr *ce)
    {
        const FunctionDecl *callee = ce->getDirectCallee();
        if (!callee) {
            unresolvedCall = true;
            return true;
        }
        if (hasAnnotation(callee, kWakeHook)) {
            hookCalled = true;
            return true;
        }
        if (hasAnnotation(callee, kWakeState))
            mutations.push_back(
                {ce->getBeginLoc(),
                 "call to wake-state function '" +
                     callee->getNameAsString() + "'"});
        return true;
    }

    bool
    VisitCXXMemberCallExpr(CXXMemberCallExpr *mc)
    {
        const CXXMethodDecl *method = mc->getMethodDecl();
        if (!method || method->isConst())
            return true;
        if (const FieldDecl *field =
                wakeFieldOf(mc->getImplicitObjectArgument()))
            mutations.push_back(
                {mc->getBeginLoc(),
                 "non-const call '" + method->getNameAsString() +
                     "' on wake-state field '" +
                     field->getNameAsString() + "'"});
        return true;
    }

  private:
    void
    noteFieldWrite(const Expr *target, SourceLocation loc)
    {
        if (const FieldDecl *field = wakeFieldOf(target))
            mutations.push_back(
                {loc, "write to wake-state field '" +
                          field->getNameAsString() + "'"});
    }
};

// --- feedback-bypass -------------------------------------------------

bool
isSignalStructName(StringRef n)
{
    return n == "BranchResolveMsg" || n == "LoadResolveMsg" ||
           n == "OperandMissMsg";
}

bool
isFeedbackEventName(StringRef n)
{
    return n == "BranchRedirect" || n == "LoadMissKill" ||
           n == "OperandMissKill" || n == "TlbTrap" ||
           n == "OrderTrap" || n == "PayloadDelivery";
}

/** Collects port traffic and raw signal/event uses in one body. */
class PortBodyScanner : public RecursiveASTVisitor<PortBodyScanner>
{
  public:
    struct Use
    {
        SourceLocation loc;
        std::string what;
    };

    bool portCall = false;
    std::vector<Use> signalUses;
    std::vector<Use> eventUses;

    bool
    VisitCXXMemberCallExpr(CXXMemberCallExpr *mc)
    {
        const CXXMethodDecl *method = mc->getMethodDecl();
        if (method &&
            nameIs(method, {"send", "read", "readStamped"}) &&
            nameIs(method->getParent(), {"FeedbackPort"}))
            portCall = true;
        return true;
    }

    bool
    VisitCXXConstructExpr(CXXConstructExpr *ce)
    {
        noteSignalType(ce->getType(), ce->getBeginLoc());
        return true;
    }

    bool
    VisitInitListExpr(InitListExpr *ile)
    {
        noteSignalType(ile->getType(), ile->getBeginLoc());
        return true;
    }

    bool
    VisitDeclRefExpr(DeclRefExpr *dre)
    {
        const auto *enumerator =
            dyn_cast<EnumConstantDecl>(dre->getDecl());
        if (!enumerator ||
            !isFeedbackEventName(enumerator->getName()))
            return true;
        const auto *parent =
            dyn_cast<EnumDecl>(enumerator->getDeclContext());
        if (parent && nameIs(parent, {"EventType"}))
            eventUses.push_back({dre->getBeginLoc(),
                                 enumerator->getNameAsString()});
        return true;
    }

  private:
    void
    noteSignalType(QualType type, SourceLocation loc)
    {
        // Canonical type: sees through typedefs and using-aliases,
        // the shapes loop_lint's name regex cannot follow.
        const RecordDecl *record =
            type.getCanonicalType()->getAsRecordDecl();
        if (record && record->getIdentifier() &&
            isSignalStructName(record->getName()))
            signalUses.push_back({loc, record->getNameAsString()});
    }
};

// --- determinism -----------------------------------------------------

bool
isUnorderedContainerName(StringRef n)
{
    return n == "unordered_map" || n == "unordered_set" ||
           n == "unordered_multimap" || n == "unordered_multiset";
}

bool
isOrderedAssocContainerName(StringRef n)
{
    return n == "map" || n == "set" || n == "multimap" ||
           n == "multiset";
}

/**
 * Classify a range-for's range as iteration-order hazardous; returns
 * a human description or the empty string.
 */
std::string
hazardousRange(QualType type)
{
    const RecordDecl *record = type.getNonReferenceType()
                                   .getCanonicalType()
                                   ->getAsRecordDecl();
    if (!record || !record->getIdentifier())
        return {};
    StringRef n = record->getName();
    if (isUnorderedContainerName(n))
        return "std::" + n.str() + " (hash order)";
    if (!isOrderedAssocContainerName(n))
        return {};
    const auto *spec =
        dyn_cast<ClassTemplateSpecializationDecl>(record);
    if (!spec || spec->getTemplateArgs().size() == 0)
        return {};
    const TemplateArgument &key = spec->getTemplateArgs()[0];
    if (key.getKind() == TemplateArgument::Type &&
        key.getAsType().getCanonicalType()->isPointerType())
        return "pointer-keyed std::" + n.str() +
               " (address order varies run to run)";
    return {};
}

/** Does a loop body reach an order-observable sink? */
class SinkScanner : public RecursiveASTVisitor<SinkScanner>
{
  public:
    explicit SinkScanner(const SourceManager &sm) : sm(sm) {}

    bool sinkFound = false;
    std::string sinkName;

    bool
    VisitCallExpr(CallExpr *ce)
    {
        const FunctionDecl *callee = ce->getDirectCallee();
        if (!callee || sinkFound)
            return true;
        if (hasAnnotation(callee, kOrderSink)) {
            found(callee);
            return true;
        }
        if (callee->getDeclName().getCXXOverloadedOperator() ==
                OO_LessLess &&
            streamInsert(ce)) {
            found(callee);
            return true;
        }
        std::string file =
            AnalyzeContext::fileOf(sm, callee->getLocation());
        for (const char *dir :
             {"/src/stats/", "/src/trace/", "/src/store/",
              "/src/harness/report", "/src/harness/figures"})
            if (file.find(dir) != std::string::npos) {
                found(callee);
                return true;
            }
        return true;
    }

  private:
    bool
    streamInsert(const CallExpr *ce) const
    {
        if (ce->getNumArgs() == 0)
            return false;
        const RecordDecl *record = ce->getArg(0)
                                       ->getType()
                                       .getNonReferenceType()
                                       .getCanonicalType()
                                       ->getAsRecordDecl();
        return record && record->getIdentifier() &&
               record->getName() == "basic_ostream";
    }

    void
    found(const FunctionDecl *callee)
    {
        sinkFound = true;
        sinkName = callee->getNameAsString();
    }

    const SourceManager &sm;
};

bool
isClockNowCall(const FunctionDecl *callee)
{
    if (!nameIs(callee, {"now"}))
        return false;
    const auto *record =
        dyn_cast<CXXRecordDecl>(callee->getDeclContext());
    return nameIs(record, {"steady_clock", "system_clock",
                           "high_resolution_clock"});
}

bool
isBannedTimeSource(const FunctionDecl *callee, std::string &what)
{
    if (nameIs(callee, {"rand", "srand"})) {
        what = callee->getNameAsString() + "()";
        return true;
    }
    if (nameIs(callee, {"time"}) && callee->getNumParams() <= 1 &&
        !isa<CXXMethodDecl>(callee)) {
        what = "time()";
        return true;
    }
    if (isClockNowCall(callee)) {
        const auto *clock =
            dyn_cast<CXXRecordDecl>(callee->getDeclContext());
        what = "std::chrono::" +
               (clock ? clock->getNameAsString()
                      : std::string("clock")) +
               "::now()";
        return true;
    }
    return false;
}

/** Per-body scan for both determinism hazards. */
class DeterminismScanner
    : public RecursiveASTVisitor<DeterminismScanner>
{
  public:
    struct Hazard
    {
        SourceLocation loc;
        std::string what;
    };

    explicit DeterminismScanner(const SourceManager &sm) : sm(sm) {}

    std::vector<Hazard> orderHazards;
    std::vector<Hazard> timeHazards;

    bool
    VisitCXXForRangeStmt(CXXForRangeStmt *loop)
    {
        const Expr *range = loop->getRangeInit();
        if (!range)
            return true;
        std::string container = hazardousRange(range->getType());
        if (container.empty())
            return true;
        SinkScanner sinks(sm);
        sinks.TraverseStmt(loop->getBody());
        if (sinks.sinkFound)
            orderHazards.push_back(
                {loop->getBeginLoc(),
                 "iteration over " + container + " reaches '" +
                     sinks.sinkName +
                     "', an order-observable sink; iterate a sorted "
                     "view instead"});
        return true;
    }

    bool
    VisitCallExpr(CallExpr *ce)
    {
        const FunctionDecl *callee = ce->getDirectCallee();
        std::string what;
        if (callee && isBannedTimeSource(callee, what))
            timeHazards.push_back({ce->getBeginLoc(), what});
        return true;
    }

    bool
    VisitCXXConstructExpr(CXXConstructExpr *ce)
    {
        const RecordDecl *record =
            ce->getType().getCanonicalType()->getAsRecordDecl();
        if (record && record->getIdentifier() &&
            record->getName() == "random_device")
            timeHazards.push_back(
                {ce->getBeginLoc(), "std::random_device"});
        return true;
    }

  private:
    const SourceManager &sm;
};

// --- campaign-statics ------------------------------------------------

bool
isSynchronisationType(QualType type)
{
    const RecordDecl *record =
        type.getCanonicalType()->getAsRecordDecl();
    if (!record || !record->getIdentifier())
        return false;
    return nameIs(record,
                  {"atomic", "atomic_flag", "mutex", "timed_mutex",
                   "recursive_mutex", "recursive_timed_mutex",
                   "shared_mutex", "shared_timed_mutex", "once_flag",
                   "condition_variable", "condition_variable_any"});
}

// --- driving visitor -------------------------------------------------

/**
 * One pass over the TU: function definitions feed the three
 * body-scoped checks, VarDecls feed campaign-statics.
 */
class TreeVisitor : public RecursiveASTVisitor<TreeVisitor>
{
  public:
    TreeVisitor(ASTContext &ast, AnalyzeContext &ctx)
        : ast(ast), ctx(ctx), sm(ast.getSourceManager())
    {
    }

    bool
    VisitFunctionDecl(FunctionDecl *fd)
    {
        if (!fd->doesThisDeclarationHaveABody() || !fd->getBody())
            return true;
        if (fd->isImplicit() || fd->isDefaulted())
            return true;
        // Lambda call operators are scanned as part of the function
        // that contains the lambda, never on their own — a hook in
        // the enclosing body discharges the obligation.
        if (const auto *method = dyn_cast<CXXMethodDecl>(fd))
            if (method->getParent()->isLambda())
                return true;

        if (ctx.options().checkEnabled(kCheckWake))
            checkWakeSoundness(fd);
        if (ctx.options().checkEnabled(kCheckBypass))
            checkFeedbackBypass(fd);
        if (ctx.options().checkEnabled(kCheckDeterminism))
            checkDeterminism(fd);
        return true;
    }

    bool
    VisitVarDecl(VarDecl *vd)
    {
        if (!ctx.options().checkEnabled(kCheckStatics))
            return true;
        if (isa<ParmVarDecl>(vd) || !vd->hasGlobalStorage() ||
            !vd->isThisDeclarationADefinition())
            return true;
        if (!ctx.inSimTree(sm, vd->getLocation()))
            return true;
        if (vd->isConstexpr() || vd->getType().isConstant(ast) ||
            vd->getTLSKind() != VarDecl::TLS_None)
            return true;
        if (isSynchronisationType(vd->getType()))
            return true;
        if (hasAnnotationPrefix(vd, kGuardedPrefix))
            return true;
        ctx.report(sm, vd->getLocation(), kCheckStatics,
                   "mutable static '" + vd->getNameAsString() +
                       "' is not atomic, not a mutex/once_flag, not "
                       "thread_local and not annotated "
                       "LOOPSIM_CAMPAIGN_GUARDED(how): campaign "
                       "workers share this state");
        return true;
    }

  private:
    void
    checkWakeSoundness(FunctionDecl *fd)
    {
        if (!ctx.inSimTree(sm, fd->getLocation()))
            return;
        // wake_state functions carry the obligation to their call
        // sites; wake_hook functions are the discharge itself.
        if (hasAnnotation(fd, kWakeState) ||
            hasAnnotation(fd, kWakeHook))
            return;
        WakeBodyScanner scan;
        scan.TraverseStmt(fd->getBody());
        if (scan.hookCalled || scan.unresolvedCall)
            return;
        for (const WakeBodyScanner::Mutation &m : scan.mutations)
            ctx.report(sm, m.loc, kCheckWake,
                       "'" + fd->getNameAsString() + "' has a " +
                           m.what +
                           " but never declares a wake: call a "
                           "LOOPSIM_WAKE_HOOK (noteIqWake/wakeReg/"
                           "schedule) or annotate the function "
                           "LOOPSIM_WAKE_STATE so callers inherit "
                           "the obligation");
    }

    void
    checkFeedbackBypass(FunctionDecl *fd)
    {
        if (!ctx.inFeedbackScope(sm, fd->getLocation()))
            return;
        PortBodyScanner scan;
        scan.TraverseStmt(fd->getBody());
        if (scan.portCall)
            return;
        for (const PortBodyScanner::Use &use : scan.signalUses)
            ctx.report(sm, use.loc, kCheckBypass,
                       "signal struct " + use.what +
                           " constructed in '" +
                           fd->getNameAsString() +
                           "', which never calls FeedbackPort::"
                           "send()/read()/readStamped(): feedback "
                           "payloads travel only through the "
                           "stamped port");
        for (const PortBodyScanner::Use &use : scan.eventUses)
            ctx.report(sm, use.loc, kCheckBypass,
                       "feedback event EventType::" + use.what +
                           " used in '" + fd->getNameAsString() +
                           "', which never calls FeedbackPort::"
                           "send()/read()/readStamped(): the signal "
                           "bypasses the stamped port");
    }

    void
    checkDeterminism(FunctionDecl *fd)
    {
        if (!ctx.inSimTree(sm, fd->getLocation()))
            return;
        std::string file =
            AnalyzeContext::fileOf(sm, fd->getLocation());
        // The seeded PCG is the sanctioned randomness source.
        if (file.find("base/random.") != std::string::npos)
            return;
        DeterminismScanner scan(sm);
        scan.TraverseStmt(fd->getBody());
        for (const DeterminismScanner::Hazard &h : scan.orderHazards)
            ctx.report(sm, h.loc, kCheckDeterminism, h.what);
        for (const DeterminismScanner::Hazard &h : scan.timeHazards)
            ctx.report(sm, h.loc, kCheckDeterminism,
                       h.what +
                           " in simulation code: runs must be "
                           "reproducible from their seeds (use the "
                           "seeded base/random PCG, or waive "
                           "host-side telemetry with loop:exempt)");
    }

    ASTContext &ast;
    AnalyzeContext &ctx;
    const SourceManager &sm;
};

} // anonymous namespace

void
runChecks(ASTContext &ast, AnalyzeContext &ctx)
{
    TreeVisitor visitor(ast, ctx);
    visitor.TraverseDecl(ast.getTranslationUnitDecl());
}

} // namespace loopsim_analyze
