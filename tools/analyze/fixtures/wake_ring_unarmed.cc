/**
 * @file
 * POSITIVE wake-soundness fixtures for the incremental ready-tracking
 * mutation surface (src/core/core.hh TimerRing + per-cluster ready
 * sets, DESIGN.md §14): a structural copy of the arm-helper pattern
 * with the self-noting discharge "refactored" away. Each mutation
 * here can delay a sparse-kernel wake past the cycle the dense scan
 * would act on — exactly the class of silent divergence the analyzer
 * exists to catch at compile time.
 */

#include "fixture_world.hh"

namespace fixture
{

/** Stand-in for core.hh's calendar-ring timer. */
struct TimerRing
{
    void push(Cycle at, unsigned ref);
    Cycle nextDue() const;
    void reset();
};

struct ReadyList
{
    void push_back(unsigned ref);
    void clear();
};

class UnarmedCore
{
  public:
    LOOPSIM_WAKE_HOOK void noteIqWake(Cycle c);
    LOOPSIM_WAKE_STATE void revertToInIq(unsigned slot, Cycle now);

    void armWakeBare(Cycle at, unsigned ref);
    void rearmConfirm(Cycle at, unsigned ref);
    void queueRecheckBare(unsigned ref);
    void killPath(unsigned slot, Cycle now);
    void gateReset(Cycle now);
    Cycle peekDue() const;

  private:
    LOOPSIM_WAKE_STATE TimerRing wakeTimer;
    LOOPSIM_WAKE_STATE TimerRing confirmTimer;
    LOOPSIM_WAKE_STATE ReadyList readyRecheck;
    LOOPSIM_WAKE_STATE Cycle iqWakeAt = 0;
};

/**
 * The mutant: the real armWakeTimer pairs the ring push with
 * noteIqWake(at) so the issue-stage gate can never sleep through the
 * armed cycle; this copy kept the push and dropped the note.
 */
void
UnarmedCore::armWakeBare(Cycle at, unsigned ref)
{
    wakeTimer.push(at, ref); // expect: wake-soundness
}

/** Same drop on the confirm-free ring. */
void
UnarmedCore::rearmConfirm(Cycle at, unsigned ref)
{
    confirmTimer.push(at, ref); // expect: wake-soundness
}

/** A recheck enqueue without the cycle-0 note never gets drained. */
void
UnarmedCore::queueRecheckBare(unsigned ref)
{
    readyRecheck.push_back(ref); // expect: wake-soundness
}

/** Calling a wake_state function passes the obligation to us. */
void
UnarmedCore::killPath(unsigned slot, Cycle now)
{
    revertToInIq(slot, now); // expect: wake-soundness
}

/** Writing the gate itself is the sharpest mutation of all. */
void
UnarmedCore::gateReset(Cycle now)
{
    iqWakeAt = now + 4; // expect: wake-soundness
}

/** Const reads of the rings are never mutations. */
Cycle
UnarmedCore::peekDue() const
{
    return wakeTimer.nextDue();
}

} // namespace fixture
