/**
 * @file
 * NEGATIVE wake-soundness fixtures: every mutation here is paired
 * with a hook, carried by an annotation, or explicitly waived. The
 * analyzer must stay silent on this file.
 */

#include "fixture_world.hh"

namespace fixture
{

class PairedCore
{
  public:
    LOOPSIM_WAKE_HOOK void noteIqWake(Cycle c);
    LOOPSIM_WAKE_HOOK void wakeReg(unsigned reg, Cycle at);
    LOOPSIM_WAKE_STATE void killEntry(unsigned slot, Cycle now);

    void issueStage(Cycle now);
    void drive(Cycle now);
    void teardown();
    unsigned occupancy() const;

  private:
    LOOPSIM_WAKE_STATE Cycle iqWakeAt = 0;
    LOOPSIM_WAKE_STATE unsigned iqOccupancy = 0;
};

/** The healthy issue stage: mutation paired with the hook. */
void
PairedCore::issueStage(Cycle now)
{
    iqWakeAt = now + 1;
    noteIqWake(now + 1);
}

/** The wake_state body itself is exempt — callers carry the duty. */
LOOPSIM_WAKE_STATE void
PairedCore::killEntry(unsigned slot, Cycle now)
{
    (void)slot;
    (void)now;
    iqOccupancy -= 1;
}

/** A wake_state call discharged by a hook in the same function. */
void
PairedCore::drive(Cycle now)
{
    killEntry(0, now);
    wakeReg(3, now + 2);
}

/** A reviewed waiver keeps cold paths out of the report. */
void
PairedCore::teardown()
{
    // loop:exempt(analyze: teardown, queue is rebuilt before reuse)
    iqOccupancy = 0;
}

/** Reads are never mutations. */
unsigned
PairedCore::occupancy() const
{
    return iqOccupancy;
}

} // namespace fixture
