/**
 * @file
 * POSITIVE campaign-statics fixtures: mutable static state with no
 * synchronisation story — exactly what the parallel campaign
 * executor's workers would race on.
 */

#include <cstdint>
#include <vector>

namespace fixture
{

std::uint64_t runCounter = 0; // expect: campaign-statics

std::uint64_t
nextRunId()
{
    static std::uint64_t lastId = 0; // expect: campaign-statics
    return ++lastId;
}

std::vector<int> &
scratchPool()
{
    static std::vector<int> pool; // expect: campaign-statics
    return pool;
}

} // namespace fixture
