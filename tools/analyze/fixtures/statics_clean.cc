/**
 * @file
 * NEGATIVE campaign-statics fixtures: every static here is either
 * immutable, synchronised by type, thread-local, annotated with its
 * guard, or waived. The analyzer must stay silent on this file.
 */

#include <atomic>
#include <cstdint>
#include <mutex>

#include "base/annotations.hh"

namespace fixture
{

constexpr std::uint64_t kSeed = 42;
const char *const kLabel = "fixture";

std::atomic<std::uint64_t> liveCounter{0};
std::mutex tableMutex;
std::once_flag initOnce;
thread_local std::uint64_t scratch = 0;

LOOPSIM_CAMPAIGN_GUARDED("tableMutex") std::uint64_t guardedTotal = 0;

// loop:exempt(analyze: fixture-only knob, never touched by workers)
std::uint64_t waivedKnob = 0;

std::uint64_t
bump()
{
    std::lock_guard<std::mutex> hold(tableMutex);
    guardedTotal += 1;
    return guardedTotal;
}

} // namespace fixture
