/**
 * @file
 * NEGATIVE determinism fixtures: ordered iteration into sinks,
 * order-insensitive unordered iteration, and a waived host-telemetry
 * clock read. The analyzer must stay silent on this file.
 */

#include <chrono>
#include <map>
#include <string>
#include <unordered_map>

#include "fixture_world.hh"

namespace fixture
{

LOOPSIM_ORDER_SINK void exportStat(const char *name, double value);
void note(double value);

/** Sorted iteration into the sink is the sanctioned shape. */
void
dumpSorted(const std::map<std::string, double> &stats)
{
    for (const auto &entry : stats)
        exportStat(entry.first.c_str(), entry.second);
}

/** Unordered iteration is fine when the fold is order-insensitive
 *  and nothing order-observable is called. */
double
total(const std::unordered_map<std::string, double> &stats)
{
    double sum = 0.0;
    for (const auto &entry : stats) {
        note(entry.second);
        sum += entry.second;
    }
    return sum;
}

/** Host-side profiling telemetry carries a reviewed waiver. */
Cycle
profileTick()
{
    // loop:exempt(analyze: host profiling telemetry)
    const auto t = std::chrono::steady_clock::now();
    return static_cast<Cycle>(t.time_since_epoch().count());
}

} // namespace fixture
