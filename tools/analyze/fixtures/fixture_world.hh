/**
 * @file
 * Miniature world for the loopsim-analyze fixture corpus: the same
 * names and shapes the real tree uses (FeedbackPort, the feedback
 * EventTypes, the resolve-message structs), small enough to parse
 * standalone. The checks match by name and annotation, so these
 * stand-ins exercise exactly the code paths the real tree does.
 *
 * Compiled with `-I<repo>/src` so the real annotation macros
 * (base/annotations.hh) are the ones under test.
 */

#ifndef LOOPSIM_TOOLS_ANALYZE_FIXTURES_FIXTURE_WORLD_HH
#define LOOPSIM_TOOLS_ANALYZE_FIXTURES_FIXTURE_WORLD_HH

#include <cstdint>

#include "base/annotations.hh"

namespace fixture
{

using Cycle = std::uint64_t;

struct BranchResolveMsg
{
    unsigned tid;
    std::uint64_t stamp;
};

struct LoadResolveMsg
{
    unsigned tid;
    std::uint64_t stamp;
};

struct OperandMissMsg
{
    unsigned missMask;
};

enum class EventType
{
    Writeback,
    ExecStart,
    BranchRedirect,
    LoadMissKill,
    OperandMissKill,
    TlbTrap,
    OrderTrap,
    PayloadDelivery,
};

struct Event
{
    Cycle at;
    EventType type;
};

template <typename MsgT>
class FeedbackPort
{
  public:
    std::uint64_t
    send(Cycle at, Cycle delay, const MsgT &msg)
    {
        (void)at;
        (void)delay;
        last = msg;
        return ++ids;
    }

    MsgT
    read(Cycle now) const
    {
        (void)now;
        return last;
    }

    MsgT
    readStamped(std::uint64_t id, Cycle now) const
    {
        (void)id;
        (void)now;
        return last;
    }

  private:
    MsgT last{};
    std::uint64_t ids = 0;
};

} // namespace fixture

#endif // LOOPSIM_TOOLS_ANALYZE_FIXTURES_FIXTURE_WORLD_HH
