/**
 * @file
 * NEGATIVE feedback-bypass fixtures: everything here either talks to
 * a FeedbackPort in the same function or carries a reviewed waiver.
 * The analyzer must stay silent on this file.
 */

#include "fixture_world.hh"

namespace fixture
{

class PortedCore
{
  public:
    void resolveBranch(Cycle now);
    void consumeRedirect(Cycle now);
    void replayOffline(Cycle now);

  private:
    FeedbackPort<BranchResolveMsg> branchPort;
    Event pending{};
};

/** The healthy shape: the payload flows into the stamped port. */
void
PortedCore::resolveBranch(Cycle now)
{
    branchPort.send(now, 2, BranchResolveMsg{0, now});
}

/**
 * Reading the port and scheduling the matching event in the same
 * function is the wheel's delivery pattern (Core::processEvents).
 */
void
PortedCore::consumeRedirect(Cycle now)
{
    BranchResolveMsg msg = branchPort.read(now);
    pending = Event{now + 1, EventType::BranchRedirect};
    (void)msg;
}

/** A reviewed waiver for offline tooling that rebuilds signals. */
void
PortedCore::replayOffline(Cycle now)
{
    // loop:exempt(analyze: replay tool reconstructs signals offline)
    BranchResolveMsg msg{1, now};
    (void)msg;
}

} // namespace fixture
