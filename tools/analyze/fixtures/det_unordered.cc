/**
 * @file
 * POSITIVE determinism fixtures: unordered and pointer-keyed
 * iteration reaching an order-observable sink, and wall-clock reads
 * — including the `using clock = ...` alias shape the regex linter
 * cannot see.
 */

#include <chrono>
#include <map>
#include <string>
#include <unordered_map>

#include "fixture_world.hh"

namespace fixture
{

LOOPSIM_ORDER_SINK void exportStat(const char *name, double value);

struct DynInst
{
    unsigned seq;
};

/** Hash order leaks straight into the exported report. */
void
dumpStats(const std::unordered_map<std::string, double> &stats)
{
    for (const auto &entry : stats) // expect: determinism
        exportStat(entry.first.c_str(), entry.second);
}

/** Ordered container, but the key is an address: order varies. */
void
dumpCosts(const std::map<const DynInst *, double> &costs)
{
    for (const auto &entry : costs) // expect: determinism
        exportStat("inst-cost", entry.second);
}

/** Wall clock behind a local alias; canonical types see through. */
Cycle
stampNow()
{
    using clock = std::chrono::steady_clock;
    const auto t = clock::now(); // expect: determinism
    return static_cast<Cycle>(t.time_since_epoch().count());
}

} // namespace fixture
