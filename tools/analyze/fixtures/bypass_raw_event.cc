/**
 * @file
 * POSITIVE feedback-bypass fixtures: signal structs and feedback
 * EventTypes used in functions that never talk to a FeedbackPort —
 * including the typedef/alias shape loop_lint's name regex cannot
 * see (the AST check matches canonical types).
 */

#include "fixture_world.hh"

namespace fixture
{

class RawCore
{
  public:
    void resolveBranchRaw(Cycle now);
    void stashAliasedMsg(Cycle now);
    void recordMiss(unsigned mask);

  private:
    FeedbackPort<BranchResolveMsg> branchPort;
    Event pending{};
    OperandMissMsg lastMiss{};
};

/** The redirect event scheduled directly, skipping the port. */
void
RawCore::resolveBranchRaw(Cycle now)
{
    pending = Event{now + 2, EventType::BranchRedirect}; // expect: feedback-bypass
}

/** Alias shape: the regex looks for the struct name, the AST looks
 *  through the alias to the canonical type. */
using Redirect = BranchResolveMsg;

void
RawCore::stashAliasedMsg(Cycle now)
{
    Redirect msg{0, now}; // expect: feedback-bypass
    (void)msg;
}

/** Signal payload built and squirrelled away outside any port. */
void
RawCore::recordMiss(unsigned mask)
{
    lastMiss = OperandMissMsg{mask}; // expect: feedback-bypass
}

} // namespace fixture
