/**
 * @file
 * NEGATIVE wake-soundness fixtures for the incremental ready-tracking
 * mutation surface: the same ring/recheck mutations as
 * wake_ring_unarmed.cc, but discharged the way the real tree does it
 * (self-noting LOOPSIM_WAKE_HOOK arm helpers, wake_state drain
 * bodies, an explicit rebuild waiver). The analyzer must stay silent
 * on this file.
 */

#include "fixture_world.hh"

namespace fixture
{

struct TimerRing
{
    void push(Cycle at, unsigned ref);
    Cycle nextDue() const;
    void reset();
};

struct ReadyList
{
    void push_back(unsigned ref);
    void clear();
};

class ArmedCore
{
  public:
    LOOPSIM_WAKE_HOOK void noteIqWake(Cycle c);
    LOOPSIM_WAKE_HOOK void armWakeTimer(Cycle at, unsigned ref);
    LOOPSIM_WAKE_HOOK void queueReadyRecheck(unsigned ref);
    LOOPSIM_WAKE_STATE void drainConfirm(Cycle now);

    void insertPath(Cycle now, unsigned ref);
    void killPath(unsigned slot, Cycle now);
    void issuePass(Cycle now);
    void rebuildForKernelSwap();

  private:
    LOOPSIM_WAKE_STATE TimerRing wakeTimer;
    LOOPSIM_WAKE_STATE TimerRing confirmTimer;
    LOOPSIM_WAKE_STATE ReadyList readyRecheck;
    LOOPSIM_WAKE_STATE Cycle iqWakeAt = 0;
};

/** The hook body is the discharge itself: push + self-note. */
LOOPSIM_WAKE_HOOK void
ArmedCore::armWakeTimer(Cycle at, unsigned ref)
{
    wakeTimer.push(at, ref);
    noteIqWake(at);
}

/** Recheck enqueues self-note cycle 0 ("do not skip the next tick"). */
LOOPSIM_WAKE_HOOK void
ArmedCore::queueReadyRecheck(unsigned ref)
{
    readyRecheck.push_back(ref);
    noteIqWake(0);
}

/** Arming through the hook discharges the caller. */
void
ArmedCore::insertPath(Cycle now, unsigned ref)
{
    armWakeTimer(now + 1, ref);
}

/** A kill site routed through the recheck hook. */
void
ArmedCore::killPath(unsigned slot, Cycle now)
{
    (void)slot;
    (void)now;
    queueReadyRecheck(3);
}

/** The wake_state drain body is exempt — callers carry the duty. */
LOOPSIM_WAKE_STATE void
ArmedCore::drainConfirm(Cycle now)
{
    (void)now;
    confirmTimer.reset();
}

/** A mutation discharged by a hook later in the same function. */
void
ArmedCore::issuePass(Cycle now)
{
    iqWakeAt = now + 1;
    noteIqWake(now + 1);
}

/** prepareKernel()-style rebuild: waived line by line — the rings are
 *  re-armed from queue contents before the next tick. */
void
ArmedCore::rebuildForKernelSwap()
{
    wakeTimer.reset();    // loop:exempt(analyze: rebuilt before reuse)
    confirmTimer.reset(); // loop:exempt(analyze: rebuilt before reuse)
    readyRecheck.clear(); // loop:exempt(analyze: rebuilt before reuse)
}

} // namespace fixture
