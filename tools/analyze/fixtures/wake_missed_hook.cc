/**
 * @file
 * POSITIVE wake-soundness fixtures, including the deliberate PR-7
 * mutant: a structural copy of the issue-stage hook pattern
 * (src/core/core_backend.cc Core::issueStage) with the one
 * noteIqWake call deleted. Under the sparse event-wheel kernel that
 * drop silently desyncs dense/sparse equivalence at runtime; the
 * analyzer must catch it at compile time.
 */

#include "fixture_world.hh"

namespace fixture
{

struct EventQueue
{
    void push(Event ev);
    Event pop();
    bool empty() const;
};

class MiniCore
{
  public:
    LOOPSIM_WAKE_HOOK void noteIqWake(Cycle c);
    LOOPSIM_WAKE_HOOK void wakeReg(unsigned reg, Cycle at);
    LOOPSIM_WAKE_STATE void killEntry(unsigned slot, Cycle now);

    void issueStage(Cycle now);
    void reclaim(Cycle now);
    void scheduleRaw(Event ev);

  private:
    LOOPSIM_WAKE_STATE Cycle iqWakeAt = 0;
    LOOPSIM_WAKE_STATE unsigned iqOccupancy = 0;
    LOOPSIM_WAKE_STATE EventQueue events;
    unsigned issuedThisCycle = 0;
};

/**
 * The mutant: the real issueStage ends its IQ bookkeeping with
 * noteIqWake(now + 1) so the wheel re-examines the queue; this copy
 * "refactored" the hook away.
 */
void
MiniCore::issueStage(Cycle now)
{
    issuedThisCycle = 0;
    while (iqOccupancy > 0 && issuedThisCycle < 4) {
        iqOccupancy -= 1; // expect: wake-soundness
        issuedThisCycle += 1;
    }
    iqWakeAt = now + 1; // expect: wake-soundness
}

/** Calling a wake_state function passes the obligation to us. */
void
MiniCore::reclaim(Cycle now)
{
    killEntry(0, now); // expect: wake-soundness
}

/** Non-const call on a wake-state field is a mutation too. */
void
MiniCore::scheduleRaw(Event ev)
{
    events.push(ev); // expect: wake-soundness
}

} // namespace fixture
