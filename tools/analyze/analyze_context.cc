#include "analyze_context.hh"

#include <clang/Basic/FileManager.h>
#include <llvm/ADT/SmallVector.h>
#include <llvm/Support/Path.h>

using clang::SourceLocation;
using clang::SourceManager;
using llvm::StringRef;

namespace loopsim_analyze
{

namespace
{

// StringRef::startswith/endswith were removed in LLVM 18 and the
// snake_case spellings only appeared in 16; spell out the comparison
// so one source builds against Clang 14 through 18.
bool
prefixed(StringRef s, StringRef prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

bool
suffixed(StringRef s, StringRef suffix)
{
    return s.size() >= suffix.size() &&
           s.substr(s.size() - suffix.size()) == suffix;
}

/** Normalise to forward slashes so scoping works on every host. */
std::string
normalise(StringRef path)
{
    std::string out = path.str();
    for (char &c : out)
        if (c == '\\')
            c = '/';
    return out;
}

bool
pathContains(StringRef file, StringRef needle)
{
    return normalise(file).find(needle.str()) != std::string::npos;
}

/** The line carries `// ... loop:exempt(<reason>)`. */
bool
lineHasExempt(StringRef line)
{
    size_t comment = line.find("//");
    if (comment == StringRef::npos)
        return false;
    StringRef tail = line.substr(comment);
    size_t tag = tail.find("loop:exempt(");
    if (tag == StringRef::npos)
        return false;
    // The reason is mandatory: reject an empty `loop:exempt()`.
    StringRef reason = tail.substr(tag + strlen("loop:exempt("));
    return !reason.empty() && reason.front() != ')';
}

} // anonymous namespace

std::string
AnalyzeContext::fileOf(const SourceManager &sm, SourceLocation loc)
{
    if (loc.isInvalid())
        return {};
    clang::PresumedLoc ploc = sm.getPresumedLoc(sm.getExpansionLoc(loc));
    if (ploc.isInvalid())
        return {};
    return normalise(ploc.getFilename());
}

bool
AnalyzeContext::inSimTree(const SourceManager &sm,
                          SourceLocation loc) const
{
    std::string file = fileOf(sm, loc);
    if (file.empty() || sm.isInSystemHeader(sm.getExpansionLoc(loc)))
        return false;
    if (opts.allPaths)
        return true;
    return pathContains(file, "/src/") || prefixed(file, "src/");
}

bool
AnalyzeContext::inFeedbackScope(const SourceManager &sm,
                                SourceLocation loc) const
{
    std::string file = fileOf(sm, loc);
    if (file.empty() || sm.isInSystemHeader(sm.getExpansionLoc(loc)))
        return false;
    if (isPortImplementation(file))
        return false;
    if (opts.allPaths)
        return true;
    return pathContains(file, "/src/core/") ||
           pathContains(file, "/src/dra/") ||
           prefixed(file, "src/core/") || prefixed(file, "src/dra/");
}

bool
AnalyzeContext::isPortImplementation(StringRef file)
{
    std::string n = normalise(file);
    return suffixed(n, "sim/feedback_port.hh") ||
           suffixed(n, "sim/feedback_port.cc");
}

const std::set<unsigned> &
AnalyzeContext::exemptLines(const SourceManager &sm, clang::FileID fid)
{
    std::string name;
    if (const clang::FileEntry *fe = sm.getFileEntryForID(fid))
        name = normalise(fe->getName());
    auto it = exemptCache.find(name);
    if (it != exemptCache.end())
        return it->second;

    std::set<unsigned> &lines = exemptCache[name];
    bool invalid = false;
    StringRef buffer = sm.getBufferData(fid, &invalid);
    if (invalid)
        return lines;
    unsigned lineno = 1;
    while (!buffer.empty()) {
        auto split = buffer.split('\n');
        if (lineHasExempt(split.first))
            lines.insert(lineno);
        buffer = split.second;
        ++lineno;
    }
    return lines;
}

bool
AnalyzeContext::isExempt(const SourceManager &sm, SourceLocation loc)
{
    SourceLocation expansion = sm.getExpansionLoc(loc);
    clang::FileID fid = sm.getFileID(expansion);
    unsigned line = sm.getExpansionLineNumber(expansion);
    const std::set<unsigned> &lines = exemptLines(sm, fid);
    return lines.count(line) != 0 ||
           (line > 1 && lines.count(line - 1) != 0);
}

void
AnalyzeContext::report(const SourceManager &sm, SourceLocation loc,
                       StringRef check, StringRef message)
{
    if (isExempt(sm, loc))
        return;
    Finding f;
    f.file = fileOf(sm, loc);
    f.line = sm.getExpansionLineNumber(sm.getExpansionLoc(loc));
    f.check = check.str();
    f.message = message.str();
    findings.insert(std::move(f));
}

bool
hasAnnotation(const clang::Decl *d, StringRef tag)
{
    if (!d)
        return false;
    for (const clang::Decl *redecl : d->redecls())
        for (const auto *attr :
             redecl->specific_attrs<clang::AnnotateAttr>())
            if (attr->getAnnotation() == tag)
                return true;
    return false;
}

bool
hasAnnotationPrefix(const clang::Decl *d, StringRef prefix)
{
    if (!d)
        return false;
    for (const clang::Decl *redecl : d->redecls())
        for (const auto *attr :
             redecl->specific_attrs<clang::AnnotateAttr>())
            if (prefixed(attr->getAnnotation(), prefix))
                return true;
    return false;
}

} // namespace loopsim_analyze
