#!/usr/bin/env python3
"""Expected-findings test for loopsim-analyze (ctest -L analyze).

Each fixture in tools/analyze/fixtures marks the lines the analyzer
must flag with a trailing `// expect: <check>` comment; files without
markers (the *_paired / *_ported / *_clean negatives) must come back
silent. The runner invokes the analyzer once over the whole corpus,
compares the (file, line, check) sets exactly — missing findings and
surprise findings both fail — and then re-runs with --sarif to check
the report is well-formed and complete.

Exit status: 0 when the corpus behaves, 1 on any mismatch, 2 on
usage/environment errors.
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")
FINDING_RE = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+): "
                        r"\[(?P<check>[a-z-]+)\] ")


def expected_findings(fixtures):
    expected = set()
    for path in sorted(fixtures.glob("*.cc")):
        for lineno, line in enumerate(
                path.read_text().splitlines(), start=1):
            m = EXPECT_RE.search(line)
            if m:
                expected.add((path.name, lineno, m.group(1)))
    return expected


def run_analyzer(analyzer, fixtures, src, extra=None):
    cmd = [str(analyzer), "--all-paths"]
    cmd += extra or []
    cmd += [str(p) for p in sorted(fixtures.glob("*.cc"))]
    cmd += ["--", "-std=c++20", f"-I{src}", f"-I{fixtures}"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 2:
        print("analyzer reported tool/parse errors:", file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    return proc


def parse_findings(stdout):
    actual = set()
    for line in stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            actual.add((Path(m.group("file")).name,
                        int(m.group("line")), m.group("check")))
    return actual


def main(argv):
    parser = argparse.ArgumentParser(
        description="expected-findings test for loopsim-analyze")
    parser.add_argument("--analyzer", type=Path, required=True)
    parser.add_argument("--fixtures", type=Path, required=True)
    parser.add_argument("--src", type=Path, required=True,
                        help="repo src/ dir (for base/annotations.hh)")
    args = parser.parse_args(argv)
    if not args.analyzer.exists():
        print(f"no analyzer at {args.analyzer}", file=sys.stderr)
        return 2
    if not args.fixtures.is_dir():
        print(f"no fixture dir {args.fixtures}", file=sys.stderr)
        return 2

    expected = expected_findings(args.fixtures)
    if not expected:
        print("fixture corpus has no expect markers", file=sys.stderr)
        return 2

    proc = run_analyzer(args.analyzer, args.fixtures, args.src)
    actual = parse_findings(proc.stdout)

    failures = []
    for item in sorted(expected - actual):
        failures.append(f"MISSED  {item[0]}:{item[1]} [{item[2]}]")
    for item in sorted(actual - expected):
        failures.append(f"SURPRISE {item[0]}:{item[1]} [{item[2]}]")
    if proc.returncode != 1:
        failures.append(
            f"exit status {proc.returncode}, expected 1 (findings)")

    # The four checks must each demonstrably fire at least once.
    for check in ("wake-soundness", "feedback-bypass", "determinism",
                  "campaign-statics"):
        if not any(f[2] == check for f in actual):
            failures.append(f"check {check} never fired")

    # SARIF report: well-formed 2.1.0 with one result per finding.
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = Path(tmp) / "findings.sarif"
        run_analyzer(args.analyzer, args.fixtures, args.src,
                     extra=[f"--sarif={sarif_path}"])
        try:
            sarif = json.loads(sarif_path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"SARIF unreadable: {err}")
            sarif = None
        if sarif is not None:
            if sarif.get("version") != "2.1.0":
                failures.append("SARIF version is not 2.1.0")
            results = sarif.get("runs", [{}])[0].get("results", [])
            if len(results) != len(actual):
                failures.append(
                    f"SARIF has {len(results)} results, stdout had "
                    f"{len(actual)} findings")

    if failures:
        for f in failures:
            print(f"fixture check FAILED: {f}", file=sys.stderr)
        print("--- analyzer stdout ---", file=sys.stderr)
        sys.stderr.write(proc.stdout)
        return 1
    print(f"fixture corpus OK: {len(actual)} expected findings, "
          f"all four checks fired, SARIF well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
