/**
 * @file
 * loopsim-analyze: Clang LibTooling driver for the four loopsim AST
 * checks (checks.cc, DESIGN.md §15).
 *
 * Runs over compile_commands.json like clang-tidy:
 *
 *   loopsim-analyze -p build src/core/core.cc src/core/core_backend.cc
 *   loopsim-analyze --all-paths fixture.cc -- -std=c++20 -Isrc
 *
 * Findings print as `file:line: [check] message` — the same shape as
 * tools/loop_lint.py — and are deduplicated across translation units
 * (a header finding appears once, not once per includer). --sarif
 * additionally writes a SARIF 2.1.0 report for CI upload.
 *
 * Exit status: 0 clean, 1 findings, 2 tool/parse errors.
 */

#include <memory>
#include <string>
#include <vector>

#include <clang/AST/ASTConsumer.h>
#include <clang/AST/ASTContext.h>
#include <clang/Frontend/CompilerInstance.h>
#include <clang/Frontend/FrontendAction.h>
#include <clang/Tooling/ArgumentsAdjusters.h>
#include <clang/Tooling/CommonOptionsParser.h>
#include <clang/Tooling/Tooling.h>
#include <llvm/Support/CommandLine.h>
#include <llvm/Support/FileSystem.h>
#include <llvm/Support/JSON.h>
#include <llvm/Support/raw_ostream.h>

#include "analyze_context.hh"

namespace cl = llvm::cl;
using namespace loopsim_analyze;

namespace
{

cl::OptionCategory analyzeCategory("loopsim-analyze options");

cl::opt<std::string> sarifPath(
    "sarif",
    cl::desc("Write a SARIF 2.1.0 report to this path"),
    cl::value_desc("path"), cl::cat(analyzeCategory));

cl::opt<bool> allPaths(
    "all-paths",
    cl::desc("Scope every check to all non-system files (fixtures); "
             "by default checks are scoped to the src/ tree"),
    cl::cat(analyzeCategory));

cl::list<std::string> onlyChecks(
    "check", cl::CommaSeparated,
    cl::desc("Run only the named checks (wake-soundness, "
             "feedback-bypass, determinism, campaign-statics)"),
    cl::value_desc("name[,name...]"), cl::cat(analyzeCategory));

struct CheckDoc
{
    const char *id;
    const char *description;
};

constexpr CheckDoc checkCatalog[] = {
    {"wake-soundness",
     "wake-state mutations must be paired with a wake-hook call"},
    {"feedback-bypass",
     "feedback signals and events must travel through FeedbackPort"},
    {"determinism",
     "no order-observable unordered iteration or wall-clock/rand in "
     "simulation code"},
    {"campaign-statics",
     "no mutable unguarded static state under the parallel campaign "
     "executor"},
};

class AnalyzeConsumer : public clang::ASTConsumer
{
  public:
    explicit AnalyzeConsumer(AnalyzeContext &ctx) : ctx(ctx) {}

    void
    HandleTranslationUnit(clang::ASTContext &ast) override
    {
        runChecks(ast, ctx);
    }

  private:
    AnalyzeContext &ctx;
};

class AnalyzeAction : public clang::ASTFrontendAction
{
  public:
    explicit AnalyzeAction(AnalyzeContext &ctx) : ctx(ctx) {}

    std::unique_ptr<clang::ASTConsumer>
    CreateASTConsumer(clang::CompilerInstance &,
                      llvm::StringRef) override
    {
        return std::make_unique<AnalyzeConsumer>(ctx);
    }

  private:
    AnalyzeContext &ctx;
};

class AnalyzeActionFactory : public clang::tooling::FrontendActionFactory
{
  public:
    explicit AnalyzeActionFactory(AnalyzeContext &ctx) : ctx(ctx) {}

    std::unique_ptr<clang::FrontendAction>
    create() override
    {
        return std::make_unique<AnalyzeAction>(ctx);
    }

  private:
    AnalyzeContext &ctx;
};

llvm::json::Object
sarifReport(const std::set<Finding> &findings)
{
    llvm::json::Array rules;
    for (const CheckDoc &doc : checkCatalog)
        rules.push_back(llvm::json::Object{
            {"id", doc.id},
            {"shortDescription",
             llvm::json::Object{{"text", doc.description}}},
        });

    llvm::json::Array results;
    for (const Finding &f : findings)
        results.push_back(llvm::json::Object{
            {"ruleId", f.check},
            {"level", "error"},
            {"message", llvm::json::Object{{"text", f.message}}},
            {"locations",
             llvm::json::Array{llvm::json::Object{
                 {"physicalLocation",
                  llvm::json::Object{
                      {"artifactLocation",
                       llvm::json::Object{{"uri", f.file}}},
                      {"region",
                       llvm::json::Object{
                           {"startLine",
                            static_cast<int64_t>(f.line)}}},
                  }},
             }}},
        });

    return llvm::json::Object{
        {"$schema",
         "https://json.schemastore.org/sarif-2.1.0.json"},
        {"version", "2.1.0"},
        {"runs",
         llvm::json::Array{llvm::json::Object{
             {"tool",
              llvm::json::Object{
                  {"driver",
                   llvm::json::Object{
                       {"name", "loopsim-analyze"},
                       {"informationUri",
                        "https://example.invalid/loopsim/DESIGN.md"},
                       {"rules", std::move(rules)},
                   }},
              }},
             {"results", std::move(results)},
         }}},
    };
}

bool
writeSarif(const std::set<Finding> &findings, const std::string &path)
{
    std::error_code ec;
    llvm::raw_fd_ostream out(path, ec, llvm::sys::fs::OF_Text);
    if (ec) {
        llvm::errs() << "loopsim-analyze: cannot write SARIF to "
                     << path << ": " << ec.message() << "\n";
        return false;
    }
    out << llvm::json::Value(sarifReport(findings)) << "\n";
    return true;
}

} // anonymous namespace

int
main(int argc, const char **argv)
{
    auto parser = clang::tooling::CommonOptionsParser::create(
        argc, argv, analyzeCategory);
    if (!parser) {
        llvm::errs() << llvm::toString(parser.takeError()) << "\n";
        return 2;
    }

    Options opts;
    opts.allPaths = allPaths;
    for (const std::string &name : onlyChecks) {
        bool known = false;
        for (const CheckDoc &doc : checkCatalog)
            known = known || name == doc.id;
        if (!known) {
            llvm::errs() << "loopsim-analyze: unknown check '" << name
                         << "'\n";
            return 2;
        }
        opts.onlyChecks.insert(name);
    }
    AnalyzeContext ctx(std::move(opts));

    clang::tooling::ClangTool tool(parser->getCompilations(),
                                   parser->getSourcePathList());
    // The compile database records the project compiler's warning
    // flags; compiler diagnostics are clang-tidy's and the build's
    // business, not ours.
    tool.appendArgumentsAdjuster(
        clang::tooling::getInsertArgumentAdjuster(
            "-Wno-everything",
            clang::tooling::ArgumentInsertPosition::END));
#ifdef LOOPSIM_CLANG_RESOURCE_DIR
    // Baked in by CMake from `clang -print-resource-dir` so builtin
    // headers resolve no matter which compiler wrote the compile
    // database.
    if (llvm::sys::fs::is_directory(LOOPSIM_CLANG_RESOURCE_DIR))
        tool.appendArgumentsAdjuster(
            clang::tooling::getInsertArgumentAdjuster(
                "-resource-dir=" LOOPSIM_CLANG_RESOURCE_DIR,
                clang::tooling::ArgumentInsertPosition::END));
#endif

    AnalyzeActionFactory factory(ctx);
    int status = tool.run(&factory);
    if (status != 0) {
        llvm::errs() << "loopsim-analyze: parse errors; findings "
                        "below may be incomplete\n";
    }

    for (const Finding &f : ctx.results())
        llvm::outs() << f.file << ":" << f.line << ": [" << f.check
                     << "] " << f.message << "\n";

    if (!sarifPath.empty() && !writeSarif(ctx.results(), sarifPath))
        return 2;

    if (status != 0)
        return 2;
    if (!ctx.results().empty()) {
        llvm::errs() << "loopsim-analyze: " << ctx.results().size()
                     << " finding(s)\n";
        return 1;
    }
    llvm::outs() << "loopsim-analyze: clean\n";
    return 0;
}
