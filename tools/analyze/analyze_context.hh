/**
 * @file
 * Shared plumbing for the loopsim-analyze AST checks.
 *
 * Findings, path scoping, the `loop:exempt` waiver index, and the
 * [[clang::annotate]] vocabulary lookups (src/base/annotations.hh)
 * live here so the four checks in checks.cc stay about semantics.
 *
 * Written against the stable subset of the Clang C API surface
 * (RecursiveASTVisitor, AnnotateAttr, SourceManager buffers) so one
 * source builds from Clang 14 through 18.
 */

#ifndef LOOPSIM_TOOLS_ANALYZE_ANALYZE_CONTEXT_HH
#define LOOPSIM_TOOLS_ANALYZE_ANALYZE_CONTEXT_HH

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <clang/AST/ASTContext.h>
#include <clang/AST/Attr.h>
#include <clang/AST/Decl.h>
#include <clang/Basic/SourceManager.h>
#include <llvm/ADT/StringRef.h>

namespace loopsim_analyze
{

/** One diagnostic: file:line: [check] message, deduped across TUs. */
struct Finding
{
    std::string file;
    unsigned line = 0;
    std::string check;
    std::string message;

    bool
    operator<(const Finding &o) const
    {
        return std::tie(file, line, check, message) <
               std::tie(o.file, o.line, o.check, o.message);
    }
};

/** Which checks run and how paths are scoped. */
struct Options
{
    /**
     * Treat every non-system file as in scope for every check. Used
     * by the fixture tests, whose sources do not live under src/.
     */
    bool allPaths = false;
    /** Empty set means "all checks". */
    std::set<std::string> onlyChecks;

    bool
    checkEnabled(llvm::StringRef name) const
    {
        return onlyChecks.empty() || onlyChecks.count(name.str()) != 0;
    }
};

/**
 * Accumulates findings for one tool run; exempt-comment lookups are
 * cached per file. ClangTool runs TUs sequentially, so no locking.
 */
class AnalyzeContext
{
  public:
    explicit AnalyzeContext(Options opts) : opts(std::move(opts)) {}

    const Options &options() const { return opts; }

    /**
     * Record a finding at @p loc unless the line (or the line above
     * it) carries a `// loop:exempt(<reason>)` waiver — the same
     * convention tools/loop_lint.py honours.
     */
    void report(const clang::SourceManager &sm, clang::SourceLocation loc,
                llvm::StringRef check, llvm::StringRef message);

    /** True when the waiver comment covers @p loc. */
    bool isExempt(const clang::SourceManager &sm,
                  clang::SourceLocation loc);

    const std::set<Finding> &results() const { return findings; }

    // --- path scoping ----------------------------------------------

    /** Filename of the expansion location; empty for invalid locs. */
    static std::string fileOf(const clang::SourceManager &sm,
                              clang::SourceLocation loc);

    /**
     * Simulator-tree scope: the file lives under src/ (or allPaths is
     * set). Checks 1, 3 and 4 use this — tests legitimately poke wake
     * state and host clocks.
     */
    bool inSimTree(const clang::SourceManager &sm,
                   clang::SourceLocation loc) const;

    /**
     * Feedback-loop scope for the port-bypass check: src/core and
     * src/dra, matching loop_lint's FEEDBACK_DIRS, minus the port
     * implementation itself (or allPaths, minus nothing).
     */
    bool inFeedbackScope(const clang::SourceManager &sm,
                         clang::SourceLocation loc) const;

    /** The FeedbackPort implementation files themselves. */
    static bool isPortImplementation(llvm::StringRef file);

  private:
    const std::set<unsigned> &exemptLines(const clang::SourceManager &sm,
                                          clang::FileID fid);

    Options opts;
    std::set<Finding> findings;
    /** FileID keys are only unique per TU; key by filename instead. */
    std::map<std::string, std::set<unsigned>> exemptCache;
};

// --- annotation vocabulary (src/base/annotations.hh) ----------------

inline constexpr llvm::StringLiteral kWakeState{"loopsim::wake_state"};
inline constexpr llvm::StringLiteral kWakeHook{"loopsim::wake_hook"};
inline constexpr llvm::StringLiteral kGuardedPrefix{"loopsim::guarded:"};
inline constexpr llvm::StringLiteral kOrderSink{"loopsim::order_sink"};

/** The decl (any redeclaration) carries annotate("<tag>"). */
bool hasAnnotation(const clang::Decl *d, llvm::StringRef tag);

/** The decl carries an annotate attribute starting with @p prefix. */
bool hasAnnotationPrefix(const clang::Decl *d, llvm::StringRef prefix);

/** Run all enabled checks over one parsed TU (defined in checks.cc). */
void runChecks(clang::ASTContext &ast, AnalyzeContext &ctx);

} // namespace loopsim_analyze

#endif // LOOPSIM_TOOLS_ANALYZE_ANALYZE_CONTEXT_HH
