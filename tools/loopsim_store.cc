/**
 * @file
 * loopsim-store: inspect and prune a persistent campaign result store
 * and its campaign journals.
 *
 *   loopsim-store list   [--store DIR]              one line per record
 *   loopsim-store stat   [--store DIR]              aggregate summary
 *   loopsim-store verify [--store DIR]              full CRC validation
 *   loopsim-store gc     [--store DIR] --max-bytes N   prune to budget
 *   loopsim-store journal list|stat|verify|prune [--journal DIR]
 *
 * The store directory comes from --store or the LOOPSIM_STORE
 * environment variable, the journal directory from --journal or
 * LOOPSIM_JOURNAL, matching the bench binaries. Exit status: 0 on
 * success (verify: everything fully valid), 1 when verify found
 * corrupt records / journals, 2 on usage errors.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "store/fingerprint.hh"
#include "store/journal.hh"
#include "store/result_store.hh"

using namespace loopsim;

namespace
{

int
usage(std::ostream &os, int exit_code)
{
    os << "usage: loopsim-store <command> [options]\n"
          "\n"
          "commands:\n"
          "  list                 one line per record: fingerprint, "
          "bytes, workload, pipe, IPC\n"
          "  stat [--json]        aggregate summary (records, bytes, "
          "schema versions); --json emits the shared cache-tier "
          "schema\n"
          "  verify               validate every record's CRC; exit 1 "
          "if any is corrupt\n"
          "  gc --max-bytes N     evict invalid then oldest records "
          "until <= N bytes\n"
          "  journal list         one line per campaign journal: plan, "
          "progress, verdicts\n"
          "  journal stat         aggregate journal summary\n"
          "  journal verify       validate every journal; exit 1 on "
          "corruption or torn tails\n"
          "  journal prune        remove completed and unreadable "
          "journals\n"
          "\n"
          "options:\n"
          "  --store DIR          store directory (default: "
          "$LOOPSIM_STORE)\n"
          "  --journal DIR        journal directory (default: "
          "$LOOPSIM_JOURNAL)\n";
    return exit_code;
}

/** Value of `--flag V` / `--flag=V`; exit 2 when the value is absent. */
std::string
flagValue(const std::vector<std::string> &args, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (args[i].rfind(prefix, 0) == 0)
            return args[i].substr(prefix.size());
        if (args[i] != flag)
            continue;
        if (i + 1 >= args.size()) {
            std::cerr << flag << " needs a value\n";
            std::exit(2);
        }
        return args[i + 1];
    }
    return "";
}

std::string
resolveDir(const std::vector<std::string> &args)
{
    std::string dir = flagValue(args, "--store");
    if (dir.empty())
        dir = store::storePath();
    if (dir.empty()) {
        std::cerr << "loopsim-store: no store directory (pass --store "
                     "DIR or set LOOPSIM_STORE)\n";
        std::exit(2);
    }
    return dir;
}

int
cmdList(const std::string &dir)
{
    const auto entries = store::scanStore(dir, /*decode=*/true);
    for (const store::StoreEntry &e : entries) {
        std::cout << e.fp.hex() << "  " << e.bytes << "B";
        if (!e.valid) {
            std::cout << "  CORRUPT  " << e.path << "\n";
            continue;
        }
        std::cout << "  " << e.result.workloadLabel << " ["
                  << e.result.pipeLabel << "]";
        if (e.result.failed)
            std::cout << "  FAILED";
        else
            std::cout << "  ipc=" << e.result.ipc << "  cycles="
                      << e.result.cycles;
        std::cout << "\n";
    }
    std::cout << entries.size() << " record(s) in " << dir << "\n";
    return 0;
}

/** Whether a bare flag (no value) is present. */
bool
hasFlag(const std::vector<std::string> &args, const std::string &flag)
{
    for (const std::string &arg : args) {
        if (arg == flag)
            return true;
    }
    return false;
}

int
cmdStat(const std::string &dir, bool json)
{
    if (json) {
        // One schema with the daemon's --stats-json (which adds a
        // "stats" object of live counters the CLI does not have).
        std::cout << store::storeSummaryJson(store::summarizeStore(dir),
                                             nullptr);
        return 0;
    }
    const auto entries = store::scanStore(dir, /*decode=*/true);
    std::uint64_t bytes = 0;
    std::size_t corrupt = 0;
    std::size_t failed = 0;
    std::map<std::uint32_t, std::size_t> by_schema;
    for (const store::StoreEntry &e : entries) {
        bytes += e.bytes;
        ++by_schema[e.schema];
        if (!e.valid)
            ++corrupt;
        else if (e.result.failed)
            ++failed;
    }
    std::cout << "store:          " << dir << "\n"
              << "records:        " << entries.size() << "\n"
              << "bytes:          " << bytes << "\n"
              << "corrupt:        " << corrupt << "\n"
              << "failed-runs:    " << failed << "\n"
              << "schema-current: " << store::kSchemaVersion << "\n"
              << "model-epoch:    " << store::kModelEpoch << "\n";
    for (const auto &[schema, count] : by_schema)
        std::cout << "schema[" << schema << "]:      " << count << "\n";
    return 0;
}

int
cmdVerify(const std::string &dir)
{
    const store::VerifyReport report = store::verifyStore(dir);
    for (const std::string &path : report.corruptPaths)
        std::cout << "CORRUPT  " << path << "\n";
    std::cout << report.records << " record(s), " << report.corrupt
              << " corrupt\n";
    return report.corrupt == 0 ? 0 : 1;
}

int
cmdGc(const std::string &dir, const std::vector<std::string> &args)
{
    std::string text = flagValue(args, "--max-bytes");
    if (text.empty()) {
        std::cerr << "gc needs --max-bytes N\n";
        return 2;
    }
    char *end = nullptr;
    unsigned long long max_bytes = std::strtoull(text.c_str(), &end, 0);
    if (end == text.c_str() || *end != '\0' || text[0] == '-') {
        std::cerr << "invalid --max-bytes: \"" << text
                  << "\" (expected a non-negative byte count)\n";
        return 2;
    }
    const store::GcReport report = store::gcStore(dir, max_bytes);
    std::cout << "scanned " << report.scanned << " record(s), removed "
              << report.removed << ": " << report.bytesBefore << "B -> "
              << report.bytesAfter << "B (budget " << max_bytes
              << "B)\n";
    return 0;
}

std::string
resolveJournalDir(const std::vector<std::string> &args)
{
    std::string dir = flagValue(args, "--journal");
    if (dir.empty())
        dir = store::journalPath();
    if (dir.empty()) {
        std::cerr << "loopsim-store: no journal directory (pass "
                     "--journal DIR or set LOOPSIM_JOURNAL)\n";
        std::exit(2);
    }
    return dir;
}

void
printJournalLine(const store::JournalInfo &j)
{
    std::cout << j.planFp.hex() << "  " << j.bytes << "B  ";
    if (!j.headerOk) {
        std::cout << "UNREADABLE  " << j.path << "\n";
        return;
    }
    std::cout << j.entries << "/" << j.planCells << " cells";
    if (j.poison > 0)
        std::cout << " (" << j.poison << " poison)";
    if (j.complete())
        std::cout << "  complete";
    if (j.truncatedTail())
        std::cout << "  torn-tail";
    std::cout << "\n";
}

int
cmdJournalList(const std::string &dir)
{
    const auto journals = store::scanJournals(dir);
    for (const store::JournalInfo &j : journals)
        printJournalLine(j);
    std::cout << journals.size() << " journal(s) in " << dir << "\n";
    return 0;
}

int
cmdJournalStat(const std::string &dir)
{
    const auto journals = store::scanJournals(dir);
    std::uint64_t bytes = 0;
    std::size_t unreadable = 0;
    std::size_t complete = 0;
    std::size_t torn = 0;
    std::size_t entries = 0;
    std::size_t poison = 0;
    for (const store::JournalInfo &j : journals) {
        bytes += j.bytes;
        entries += j.entries;
        poison += j.poison;
        if (!j.headerOk)
            ++unreadable;
        if (j.complete())
            ++complete;
        if (j.headerOk && j.truncatedTail())
            ++torn;
    }
    std::cout << "journals:       " << dir << "\n"
              << "files:          " << journals.size() << "\n"
              << "bytes:          " << bytes << "\n"
              << "complete:       " << complete << "\n"
              << "unreadable:     " << unreadable << "\n"
              << "torn-tails:     " << torn << "\n"
              << "cells:          " << entries << "\n"
              << "poison-cells:   " << poison << "\n"
              << "schema-current: " << store::kSchemaVersion << "\n";
    return 0;
}

int
cmdJournalVerify(const std::string &dir)
{
    std::size_t bad = 0;
    const auto journals = store::scanJournals(dir);
    for (const store::JournalInfo &j : journals) {
        if (!j.headerOk) {
            std::cout << "UNREADABLE  " << j.path << "\n";
            ++bad;
        } else if (j.truncatedTail()) {
            std::cout << "TORN-TAIL   " << j.path << " ("
                      << (j.bytes - j.validBytes)
                      << "B past the valid prefix)\n";
            ++bad;
        }
    }
    std::cout << journals.size() << " journal(s), " << bad
              << " damaged\n";
    return bad == 0 ? 0 : 1;
}

int
cmdJournalPrune(const std::string &dir)
{
    const std::size_t before = store::scanJournals(dir).size();
    const std::size_t removed = store::pruneJournals(dir);
    std::cout << "scanned " << before << " journal(s), removed "
              << removed << " (completed or unreadable)\n";
    return 0;
}

int
cmdJournal(const std::vector<std::string> &args)
{
    if (args.empty()) {
        std::cerr << "journal needs a subcommand "
                     "(list|stat|verify|prune)\n";
        return 2;
    }
    const std::string sub = args[0];
    std::vector<std::string> rest(args.begin() + 1, args.end());
    const std::string dir = resolveJournalDir(rest);
    if (sub == "list")
        return cmdJournalList(dir);
    if (sub == "stat")
        return cmdJournalStat(dir);
    if (sub == "verify")
        return cmdJournalVerify(dir);
    if (sub == "prune")
        return cmdJournalPrune(dir);
    std::cerr << "loopsim-store: unknown journal subcommand \"" << sub
              << "\"\n";
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(std::cerr, 2);
    const std::string command = argv[1];
    if (command == "--help" || command == "-h" || command == "help")
        return usage(std::cout, 0);

    std::vector<std::string> args(argv + 2, argv + argc);
    if (command == "journal")
        return cmdJournal(args);

    const std::string dir = resolveDir(args);

    if (command == "list")
        return cmdList(dir);
    if (command == "stat")
        return cmdStat(dir, hasFlag(args, "--json"));
    if (command == "verify")
        return cmdVerify(dir);
    if (command == "gc")
        return cmdGc(dir, args);

    std::cerr << "loopsim-store: unknown command \"" << command
              << "\"\n";
    return usage(std::cerr, 2);
}
