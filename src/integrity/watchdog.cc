#include "integrity/watchdog.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "base/logging.hh"
#include "sim/config.hh"

namespace loopsim
{

WatchdogConfig
WatchdogConfig::fromConfig(const Config &cfg)
{
    WatchdogConfig wc;
    wc.window = cfg.getUint("integrity.watchdog.window", wc.window);
    wc.historyDepth = static_cast<unsigned>(
        cfg.getUint("integrity.watchdog.history", wc.historyDepth));
    const char *env = std::getenv("LOOPSIM_CHECK");
    bool env_checks = env && *env;
    wc.structuralChecks =
        cfg.getBool("integrity.checks.enable", env_checks);
    wc.checkInterval =
        cfg.getUint("integrity.checks.interval", wc.checkInterval);
    fatal_if(wc.window == 0, "integrity.watchdog.window must be > 0");
    fatal_if(wc.historyDepth == 0,
             "integrity.watchdog.history must be > 0");
    fatal_if(wc.checkInterval == 0,
             "integrity.checks.interval must be > 0");
    return wc;
}

std::string
WatchdogReport::format() const
{
    std::ostringstream os;
    os << "watchdog: " << component << " made no retire progress for "
       << (now - lastProgressCycle) << " cycles (window " << window
       << ", cycle " << now << ", last retire @ " << lastProgressCycle
       << ")\n";
    os << "  suspected stall: " << culprit << "\n";
    for (const auto &v : violations)
        os << "  invariant violated: " << v << "\n";
    if (!timeline.empty()) {
        os << "  timeline (cycle retired issued inflight iq pipe "
              "events frontend):\n";
        for (const IntegritySample &s : timeline) {
            os << "    " << s.cycle << " " << s.retired << " "
               << s.issued << " " << s.inFlight << "/"
               << s.windowCapacity << " " << s.iqOccupancy << "/"
               << s.iqCapacity << " " << s.renamePipe << " "
               << s.pendingEvents << " " << s.frontendWork << "\n";
        }
    }
    if (!stateDump.empty())
        os << stateDump;
    return os.str();
}

InvariantWatchdog::InvariantWatchdog(const IntegrityProbe &integrity_probe,
                                     const WatchdogConfig &config)
    : probe(integrity_probe), cfg(config)
{
    // Spread the kept history across the whole stall window so the
    // report shows the onset of the wedge, not just its last cycles.
    sampleEvery = std::max<Cycle>(1, cfg.window / cfg.historyDepth);
}

std::string
InvariantWatchdog::analyzeCulprit(const IntegritySample &s)
{
    std::ostringstream os;
    if (s.inFlight == 0 && s.iqOccupancy == 0) {
        os << "no instructions in flight: front end wedged ("
           << s.frontendWork << " ops in fetch/replay, " << s.renamePipe
           << " in the DEC-IQ pipe)";
    } else if (s.iqOccupancy > 0 && s.pendingEvents == 0) {
        os << "IQ holds " << s.iqOccupancy
           << " instructions with no loop events in flight: lost "
              "wakeup or feedback signal";
    } else if (s.iqCapacity > 0 && s.iqOccupancy >= s.iqCapacity) {
        os << "IQ full (" << s.iqOccupancy << "/" << s.iqCapacity
           << "): capacity-pressure deadlock";
    } else if (s.windowCapacity > 0 && s.inFlight >= s.windowCapacity) {
        os << "in-flight window full (" << s.inFlight << "/"
           << s.windowCapacity << "): retire blocked at the ROB head";
    } else if (s.iqOccupancy == 0 && s.inFlight > 0) {
        os << s.inFlight << " instructions in flight but none in the "
           << "IQ: rename/insert path wedged";
    } else {
        os << "ROB head blocked: " << s.inFlight
           << " in flight, IQ " << s.iqOccupancy << ", "
           << s.pendingEvents << " events outstanding";
    }
    return os.str();
}

WatchdogReport
InvariantWatchdog::buildReport(Cycle now,
                               std::vector<std::string> violations) const
{
    WatchdogReport rep;
    rep.component = probe.probeName();
    rep.now = now;
    rep.lastProgressCycle = lastProgress;
    rep.window = cfg.window;
    rep.violations = std::move(violations);
    rep.timeline.assign(timeline.begin(), timeline.end());
    IntegritySample latest =
        timeline.empty() ? probe.integritySample(now) : timeline.back();
    rep.culprit = analyzeCulprit(latest);
    std::ostringstream os;
    probe.dumpState(os);
    rep.stateDump = os.str();
    return rep;
}

Cycle
InvariantWatchdog::nextActivity(Cycle now) const
{
    if (!sawSample)
        return now; // never sampled: establish the progress baseline
    auto next_multiple = [](Cycle at, Cycle step) {
        return ((at + step - 1) / step) * step;
    };
    Cycle wake = next_multiple(now, sampleEvery);
    if (cfg.structuralChecks)
        wake = std::min(wake, next_multiple(now, cfg.checkInterval));
    // The wedge deadline: the first cycle the no-progress window can
    // expire. If progress happens before then, it happens at a wheel
    // cycle and this is recomputed.
    wake = std::min(wake, lastProgress + cfg.window);
    return std::max(wake, now);
}

void
InvariantWatchdog::tick(Cycle now)
{
    IntegritySample s = probe.integritySample(now);

    if (!sawSample || s.retired != lastRetired || s.done) {
        sawSample = true;
        lastRetired = s.retired;
        lastProgress = now;
    }

    if (now % sampleEvery == 0 || now - lastProgress >= cfg.window) {
        timeline.push_back(s);
        while (timeline.size() > cfg.historyDepth)
            timeline.pop_front();
    }

    if (cfg.structuralChecks && now % cfg.checkInterval == 0) {
        std::vector<std::string> violations =
            probe.structuralViolations();
        if (!violations.empty())
            throw WatchdogError(buildReport(now, std::move(violations)));
    }

    if (!s.done && now - lastProgress >= cfg.window)
        throw WatchdogError(buildReport(now, {}));
}

} // namespace loopsim
