/**
 * @file
 * Livelock/deadlock watchdog for simulated components.
 *
 * The watchdog is a Clocked component registered with the Simulator
 * alongside the Core. Every cycle it samples the watched probe; if the
 * component stops retiring for a configurable window while still
 * holding work, the watchdog assembles a structured diagnostic — a
 * coarse timeline of the last samples, per-stage occupancies, a
 * culprit heuristic naming the stalled structure, and the probe's own
 * state dump — and throws WatchdogError. Optionally (debug-gated, off
 * by default) it also sweeps the probe's structural invariants every
 * few cycles and trips on the first violation.
 */

#ifndef LOOPSIM_INTEGRITY_WATCHDOG_HH
#define LOOPSIM_INTEGRITY_WATCHDOG_HH

#include <deque>
#include <string>
#include <vector>

#include "integrity/probe.hh"
#include "integrity/sim_error.hh"
#include "sim/simulator.hh"

namespace loopsim
{

class Config;

/** Tunables; read from "integrity.*" keys by fromConfig(). */
struct WatchdogConfig
{
    /** Cycles without a retire (while work remains) before the run is
     *  declared wedged. Must be generous: a legitimate SMT run can sit
     *  behind back-to-back memory misses for hundreds of cycles. */
    Cycle window = 100000;
    /** Number of timeline samples kept for the diagnostic dump. */
    unsigned historyDepth = 64;
    /** Run structuralViolations() sweeps (debug-gated fast path:
     *  disabled costs one branch per cycle). */
    bool structuralChecks = false;
    /** Cycles between structural sweeps when enabled. */
    Cycle checkInterval = 64;

    /**
     * integrity.watchdog.window / .history, integrity.checks.enable /
     * .interval. The LOOPSIM_CHECK environment variable (non-empty)
     * also enables structural checks.
     */
    static WatchdogConfig fromConfig(const Config &cfg);
};

/** Everything known about a wedge at the moment it was declared. */
struct WatchdogReport
{
    std::string component;
    Cycle now = 0;
    /** Cycle of the last observed retire (start of the stall). */
    Cycle lastProgressCycle = 0;
    /** The configured no-progress window that expired. */
    Cycle window = 0;
    /** Heuristic naming the stalled structure. */
    std::string culprit;
    /** Structural invariant violations (empty for pure stalls). */
    std::vector<std::string> violations;
    /** Coarse occupancy/progress timeline, oldest first. */
    std::vector<IntegritySample> timeline;
    /** The probe's free-form state dump. */
    std::string stateDump;

    /** Render the full multi-line diagnostic. */
    std::string format() const;
};

/** Thrown by the watchdog; carries the structured diagnostic. */
class WatchdogError : public SimError
{
  public:
    explicit WatchdogError(WatchdogReport r)
        : SimError("watchdog", r.format()), rep(std::move(r))
    {}

    const WatchdogReport &report() const { return rep; }

  private:
    WatchdogReport rep;
};

class InvariantWatchdog : public Clocked
{
  public:
    InvariantWatchdog(const IntegrityProbe &probe,
                      const WatchdogConfig &cfg);

    /** Samples, checks progress and (optionally) invariants; throws
     *  WatchdogError on a wedge or violation. */
    void tick(Cycle now) override;

    /** The watchdog never holds the simulation open. */
    bool done() const override { return true; }

    /**
     * Sparse-kernel schedule. Progress (a retire-count change) can
     * only happen at cycles where the watched core ticks — and the
     * wheel ticks every component at every wheel cycle, so those are
     * observed for free. What the watchdog itself must schedule are
     * its time-driven actions: the next timeline sample (multiples of
     * sampleEvery), the next structural sweep (multiples of
     * checkInterval, when enabled), and the no-progress deadline at
     * lastProgress + window, where a wedged run throws exactly as the
     * dense kernel would.
     */
    Cycle nextActivity(Cycle now) const override;

    std::string name() const override { return "watchdog"; }

    Cycle lastProgressCycle() const { return lastProgress; }
    const WatchdogConfig &config() const { return cfg; }

    /** Build (without throwing) the report for the current state. */
    WatchdogReport buildReport(Cycle now,
                               std::vector<std::string> violations) const;

  private:
    /** Name the structure most plausibly responsible for the stall. */
    static std::string analyzeCulprit(const IntegritySample &s);

    const IntegrityProbe &probe;
    WatchdogConfig cfg;
    Cycle sampleEvery = 1;
    std::uint64_t lastRetired = 0;
    Cycle lastProgress = 0;
    bool sawSample = false;
    std::deque<IntegritySample> timeline;
};

} // namespace loopsim

#endif // LOOPSIM_INTEGRITY_WATCHDOG_HH
