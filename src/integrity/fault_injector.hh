/**
 * @file
 * Deterministic fault injection for recovery-path stress testing.
 *
 * The paper's machinery is mostly *recovery* — squash, reissue and
 * replay after branch, load and DRA operand loop mis-speculations — so
 * the injector perturbs exactly those feedback paths: speculative
 * wakeups are delayed or dropped, load-hit data arrives late (forcing
 * the load-loop kill/reissue), predicted branch outcomes are flipped
 * (forcing the branch-loop squash), and cache ports stall. All draws
 * come from per-kind PCG streams seeded from the configuration, so a
 * faulted run is exactly reproducible from its seed.
 *
 * Every kind except WakeupDrop converges by construction: the
 * perturbation is expressed through the model's own retiming/recovery
 * machinery. WakeupDrop deliberately loses the wakeup forever — it
 * exists to wedge the machine on purpose and prove the watchdog
 * detects and reports the stall.
 */

#ifndef LOOPSIM_INTEGRITY_FAULT_INJECTOR_HH
#define LOOPSIM_INTEGRITY_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>

#include "base/random.hh"
#include "base/types.hh"

namespace loopsim
{

class Config;

enum class FaultKind : unsigned
{
    WakeupDrop,    ///< speculative wakeup lost forever (wedges!)
    WakeupDelay,   ///< speculative wakeup arrives late
    LoadDelay,     ///< load-hit data arrives late (reissue recovery)
    BranchCorrupt, ///< predicted outcome flipped (squash recovery)
    PortStall,     ///< cache port busy: extra access latency
    NumKinds
};

const char *faultKindName(FaultKind kind);

/** Rates and magnitudes; read from "integrity.fault.*" keys. */
struct FaultPlan
{
    bool enable = false;
    std::uint64_t seed = 1;
    double wakeupDropRate = 0.0;
    double wakeupDelayRate = 0.0;
    Cycle wakeupDelayCycles = 8;
    double loadDelayRate = 0.0;
    Cycle loadDelayCycles = 12;
    double branchCorruptRate = 0.0;
    double portStallRate = 0.0;
    Cycle portStallCycles = 4;
    /**
     * Deliberate loop-discipline breakers (not random draws): deliver
     * every branch-resolution / DRA operand-miss feedback this many
     * cycles before its declared loop delay has elapsed. The port
     * stamp keeps the honest delay, so audit builds
     * (sim/feedback_port.hh) catch each early read with a structured
     * DisciplineViolation — these knobs exist to prove that.
     */
    Cycle earlyBranchReadCycles = 0;
    Cycle earlyOperandReadCycles = 0;
    /**
     * Process-level faults (not random draws; 0 = off): when the
     * core's Nth retired micro-op (warmup included) completes, kill
     * the host process with @p crashSignal / spin forever on the wall
     * clock. These exist to prove the supervision layer
     * (harness/supervisor.hh) end-to-end — without --isolate they
     * take the whole campaign down, which is precisely the failure
     * mode the supervisor is for. Scoped to matching cells via
     * integrity.fault.crash_target / .hang_target (figure-label
     * substrings; see gateProcessFaults() in harness/experiment.cc).
     */
    std::uint64_t crashAtOp = 0;
    std::uint64_t hangAtOp = 0;
    /** Signal delivered by crashAtOp (default SIGABRT; SIGKILL for
     *  the kill-a-worker-mid-run tests). */
    int crashSignal = 0;

    /**
     * integrity.fault.enable, .seed, .wakeup_drop, .wakeup_delay /
     * .wakeup_delay_cycles, .load_delay / .load_delay_cycles,
     * .branch_corrupt, .port_stall / .port_stall_cycles,
     * .early_branch_read, .early_operand_read, .crash_at_op /
     * .crash_signal, .hang_at_op.
     */
    static FaultPlan fromConfig(const Config &cfg);
};

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    /** @name Per-site draws (called from the Core's hot paths) */
    /// @{
    /** Lose this speculative wakeup forever. */
    bool dropWakeup();
    /** Extra cycles before the speculative wakeup lands (0 = none). */
    Cycle wakeupDelay();
    /** Extra latency on a load's data return (0 = none). */
    Cycle loadDelay();
    /** Flip this branch's predicted outcome. */
    bool corruptBranch();
    /** Cycles the cache port is stalled for this access (0 = none). */
    Cycle portStall();
    /** Cycles to deliver branch feedback early (discipline breaker). */
    Cycle earlyBranchRead() const { return cfg.earlyBranchReadCycles; }
    /** Cycles to deliver operand-miss feedback early. */
    Cycle earlyOperandRead() const { return cfg.earlyOperandReadCycles; }
    /**
     * Process-fault trigger, called by the retire stage with the
     * core's cumulative retired micro-op count. Crashes the host
     * process (raise(crash_signal)) or hangs it on the wall clock when
     * the count reaches crash_at_op / hang_at_op — never returns in
     * either case. No-op (one compare) when both knobs are 0.
     */
    void opRetired(std::uint64_t total_retired);
    /** True when either process-level fault is armed. */
    bool
    processFaultsArmed() const
    {
        return cfg.crashAtOp != 0 || cfg.hangAtOp != 0;
    }
    /// @}

    std::uint64_t injected(FaultKind kind) const;
    std::uint64_t totalInjected() const;
    const FaultPlan &plan() const { return cfg; }
    std::string summary() const;

  private:
    /** Bernoulli draw on @p kind's private stream; counts hits. */
    bool draw(FaultKind kind, double rate);

    FaultPlan cfg;
    std::array<Pcg32, static_cast<std::size_t>(FaultKind::NumKinds)>
        streams;
    std::array<std::uint64_t,
               static_cast<std::size_t>(FaultKind::NumKinds)>
        counts{};
};

} // namespace loopsim

#endif // LOOPSIM_INTEGRITY_FAULT_INJECTOR_HH
