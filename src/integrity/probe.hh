/**
 * @file
 * The observation interface between a simulated component and the
 * integrity watchdog.
 *
 * The watchdog must not depend on the Core's internals (and tests must
 * be able to feed it synthetic wedges), so the component under watch
 * exposes a narrow probe: a cheap per-cycle occupancy/progress sample,
 * an on-demand structural invariant sweep, and a free-form state dump
 * for diagnostics.
 */

#ifndef LOOPSIM_INTEGRITY_PROBE_HH
#define LOOPSIM_INTEGRITY_PROBE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

/** One cycle's worth of progress and occupancy observations. */
struct IntegritySample
{
    Cycle cycle = 0;
    /** Cumulative retired ops (monotone; progress detector input). */
    std::uint64_t retired = 0;
    /** Cumulative issue events (distinguishes livelock from deadlock:
     *  a machine reissuing forever shows issue churn but no retires). */
    std::uint64_t issued = 0;
    std::size_t inFlight = 0;       ///< instructions in the window
    std::size_t windowCapacity = 0; ///< in-flight limit (ROB entries)
    std::size_t iqOccupancy = 0;
    std::size_t iqCapacity = 0;
    std::size_t renamePipe = 0;     ///< DEC-IQ pipe occupancy
    std::size_t pendingEvents = 0;  ///< scheduled loop events in flight
    std::size_t frontendWork = 0;   ///< fetch buffers + replay queues
    bool done = false;              ///< component reports completion
};

/** What the watchdog is allowed to see of a watched component. */
class IntegrityProbe
{
  public:
    virtual ~IntegrityProbe() = default;

    /** Cheap per-cycle snapshot; called every watchdog tick. */
    virtual IntegritySample integritySample(Cycle now) const = 0;

    /**
     * Full structural invariant sweep (O(in-flight); debug-gated).
     * Returns one human-readable description per violated invariant,
     * empty when the structures are consistent.
     */
    virtual std::vector<std::string> structuralViolations() const = 0;

    /** Free-form state dump attached to watchdog diagnostics. */
    virtual void dumpState(std::ostream &os) const = 0;

    virtual std::string probeName() const { return "core"; }
};

} // namespace loopsim

#endif // LOOPSIM_INTEGRITY_PROBE_HH
