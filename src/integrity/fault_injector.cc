#include "integrity/fault_injector.hh"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <thread>

#include "base/logging.hh"
#include "sim/config.hh"

namespace loopsim
{

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::WakeupDrop: return "wakeup-drop";
      case FaultKind::WakeupDelay: return "wakeup-delay";
      case FaultKind::LoadDelay: return "load-delay";
      case FaultKind::BranchCorrupt: return "branch-corrupt";
      case FaultKind::PortStall: return "port-stall";
      default: panic("unknown fault kind");
    }
}

namespace
{

double
rate(const Config &cfg, const std::string &key)
{
    double r = cfg.getDouble(key, 0.0);
    fatal_if(r < 0.0 || r > 1.0, key, " must be in [0, 1], got ", r);
    return r;
}

} // anonymous namespace

FaultPlan
FaultPlan::fromConfig(const Config &cfg)
{
    FaultPlan p;
    p.enable = cfg.getBool("integrity.fault.enable", false);
    p.seed = cfg.getUint("integrity.fault.seed", p.seed);
    p.wakeupDropRate = rate(cfg, "integrity.fault.wakeup_drop");
    p.wakeupDelayRate = rate(cfg, "integrity.fault.wakeup_delay");
    p.wakeupDelayCycles = cfg.getUint("integrity.fault.wakeup_delay_cycles",
                                      p.wakeupDelayCycles);
    p.loadDelayRate = rate(cfg, "integrity.fault.load_delay");
    p.loadDelayCycles =
        cfg.getUint("integrity.fault.load_delay_cycles", p.loadDelayCycles);
    p.branchCorruptRate = rate(cfg, "integrity.fault.branch_corrupt");
    p.portStallRate = rate(cfg, "integrity.fault.port_stall");
    p.portStallCycles =
        cfg.getUint("integrity.fault.port_stall_cycles", p.portStallCycles);
    p.earlyBranchReadCycles =
        cfg.getUint("integrity.fault.early_branch_read",
                    p.earlyBranchReadCycles);
    p.earlyOperandReadCycles =
        cfg.getUint("integrity.fault.early_operand_read",
                    p.earlyOperandReadCycles);
    p.crashAtOp = cfg.getUint("integrity.fault.crash_at_op", p.crashAtOp);
    p.hangAtOp = cfg.getUint("integrity.fault.hang_at_op", p.hangAtOp);
    p.crashSignal = static_cast<int>(
        cfg.getUint("integrity.fault.crash_signal", SIGABRT));
    return p;
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : cfg(plan),
      // One PCG stream per fault kind: a draw for one kind never
      // perturbs the sequence of another, so enabling an extra fault
      // does not re-randomise the rest of the campaign.
      streams{Pcg32(plan.seed, 0x100), Pcg32(plan.seed, 0x101),
              Pcg32(plan.seed, 0x102), Pcg32(plan.seed, 0x103),
              Pcg32(plan.seed, 0x104)}
{}

bool
FaultInjector::draw(FaultKind kind, double p)
{
    if (p <= 0.0)
        return false;
    auto i = static_cast<std::size_t>(kind);
    if (!streams[i].chance(p))
        return false;
    ++counts[i];
    return true;
}

bool
FaultInjector::dropWakeup()
{
    return draw(FaultKind::WakeupDrop, cfg.wakeupDropRate);
}

Cycle
FaultInjector::wakeupDelay()
{
    return draw(FaultKind::WakeupDelay, cfg.wakeupDelayRate)
               ? cfg.wakeupDelayCycles
               : 0;
}

Cycle
FaultInjector::loadDelay()
{
    return draw(FaultKind::LoadDelay, cfg.loadDelayRate)
               ? cfg.loadDelayCycles
               : 0;
}

bool
FaultInjector::corruptBranch()
{
    return draw(FaultKind::BranchCorrupt, cfg.branchCorruptRate);
}

void
FaultInjector::opRetired(std::uint64_t total_retired)
{
    if (cfg.crashAtOp != 0 && total_retired == cfg.crashAtOp) {
        // stderr straight through stdio: the process is about to die
        // and must not unwind or flush through C++ stream state.
        std::fprintf(stderr,
                     "injected crash_at_op=%llu: raising signal %d\n",
                     static_cast<unsigned long long>(cfg.crashAtOp),
                     cfg.crashSignal);
        std::fflush(stderr);
        std::raise(cfg.crashSignal != 0 ? cfg.crashSignal : SIGABRT);
        // SIGKILL cannot be caught; for catchable signals a handler in
        // the embedding process might return — make death certain.
        std::abort();
    }
    if (cfg.hangAtOp != 0 && total_retired == cfg.hangAtOp) {
        std::fprintf(stderr,
                     "injected hang_at_op=%llu: spinning on the wall "
                     "clock\n",
                     static_cast<unsigned long long>(cfg.hangAtOp));
        std::fflush(stderr);
        for (;;) {
            // loop:exempt(deliberate real-time hang; the supervisor's
            // wall-clock deadline is what reaps it)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
    }
}

Cycle
FaultInjector::portStall()
{
    return draw(FaultKind::PortStall, cfg.portStallRate)
               ? cfg.portStallCycles
               : 0;
}

std::uint64_t
FaultInjector::injected(FaultKind kind) const
{
    return counts[static_cast<std::size_t>(kind)];
}

std::uint64_t
FaultInjector::totalInjected() const
{
    return std::accumulate(counts.begin(), counts.end(),
                           std::uint64_t{0});
}

std::string
FaultInjector::summary() const
{
    std::ostringstream os;
    os << "faults injected (seed " << cfg.seed << "):";
    for (unsigned k = 0;
         k < static_cast<unsigned>(FaultKind::NumKinds); ++k) {
        os << " " << faultKindName(static_cast<FaultKind>(k)) << "="
           << counts[k];
    }
    return os.str();
}

} // namespace loopsim
