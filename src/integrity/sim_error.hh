/**
 * @file
 * Recoverable simulation errors.
 *
 * The logging taxonomy (base/logging.hh) distinguishes panic() — a
 * simulator bug — from fatal() — an impossible user request. Both are
 * terminal. SimError is the third category: *this run* failed (wedged
 * pipeline, exhausted cycle budget, tripped watchdog), but the process
 * and every other run in a sweep are fine. The harness catches
 * SimError, retries with a perturbed seed and widened budget, and
 * fail-softs the point into the figure report instead of aborting the
 * whole regeneration.
 */

#ifndef LOOPSIM_INTEGRITY_SIM_ERROR_HH
#define LOOPSIM_INTEGRITY_SIM_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

#include "base/types.hh"

namespace loopsim
{

/** A single simulation run failed; the process can continue. */
class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, const std::string &msg)
        : std::runtime_error(msg), errorKind(std::move(kind))
    {}

    /** Machine-readable category ("cycle-limit", "watchdog", ...). */
    const std::string &kind() const { return errorKind; }

  private:
    std::string errorKind;
};

/** The run exhausted its cycle budget without draining. */
class CycleLimitError : public SimError
{
  public:
    CycleLimitError(std::string run_phase, Cycle limit,
                    const std::string &msg, std::string state_dump)
        : SimError("cycle-limit", msg), phaseName(std::move(run_phase)),
          cycleLimit(limit), dump(std::move(state_dump))
    {}

    /** "warmup" or "measure". */
    const std::string &phase() const { return phaseName; }
    Cycle limit() const { return cycleLimit; }
    /** Pipeline state at the moment the budget ran out. */
    const std::string &stateDump() const { return dump; }

  private:
    std::string phaseName;
    Cycle cycleLimit;
    std::string dump;
};

/**
 * The loop discipline was broken: a stage observed a feedback signal
 * (branch resolution, load hit/miss, DRA operand miss) before the
 * declared loop delay had elapsed — a decision based on global
 * knowledge, which the paper's methodology forbids (§6). Raised by
 * FeedbackPort::read() in audit builds (sim/feedback_port.hh).
 */
class DisciplineViolation : public SimError
{
  public:
    /**
     * @param component_name the reading stage ("core.fetch", ...)
     * @param signal_kind    "branch-resolution", "load-resolution",
     *                       "dra-operand-miss", ...
     * @param write_cycle    when the outcome was produced
     * @param loop_delay     the declared feedback-loop length
     * @param read_cycle     when the stage observed it
     * @param inst_timeline  the offending instruction's timeline (may
     *                       be empty when no instruction is live)
     */
    DisciplineViolation(std::string component_name,
                        std::string signal_kind, Cycle write_cycle,
                        Cycle loop_delay, Cycle read_cycle,
                        std::string inst_timeline)
        : SimError("loop-discipline",
                   formatMessage(component_name, signal_kind,
                                 write_cycle, loop_delay, read_cycle,
                                 inst_timeline)),
          componentName(std::move(component_name)),
          signalKindName(std::move(signal_kind)),
          writtenAt(write_cycle), delay(loop_delay), readAt(read_cycle),
          timelineDump(std::move(inst_timeline))
    {}

    const std::string &component() const { return componentName; }
    const std::string &signalKind() const { return signalKindName; }
    Cycle writeCycle() const { return writtenAt; }
    Cycle loopDelay() const { return delay; }
    Cycle readCycle() const { return readAt; }
    /** How many cycles before legal visibility the read happened. */
    Cycle cyclesEarly() const { return writtenAt + delay - readAt; }
    /** Timeline of the offending instruction (empty if unavailable). */
    const std::string &timeline() const { return timelineDump; }

  private:
    static std::string
    formatMessage(const std::string &component, const std::string &kind,
                  Cycle write_cycle, Cycle loop_delay, Cycle read_cycle,
                  const std::string &timeline)
    {
        std::ostringstream os;
        os << "loop-discipline violation: " << component << " read "
           << kind << " signal " << (write_cycle + loop_delay - read_cycle)
           << " cycle(s) early (written at cycle " << write_cycle
           << ", loop delay " << loop_delay << ", visible at cycle "
           << write_cycle + loop_delay << ", read at cycle "
           << read_cycle << ")";
        if (!timeline.empty())
            os << "\n  offending instruction: " << timeline;
        return os.str();
    }

    std::string componentName;
    std::string signalKindName;
    Cycle writtenAt;
    Cycle delay;
    Cycle readAt;
    std::string timelineDump;
};

} // namespace loopsim

#endif // LOOPSIM_INTEGRITY_SIM_ERROR_HH
