/**
 * @file
 * Recoverable simulation errors.
 *
 * The logging taxonomy (base/logging.hh) distinguishes panic() — a
 * simulator bug — from fatal() — an impossible user request. Both are
 * terminal. SimError is the third category: *this run* failed (wedged
 * pipeline, exhausted cycle budget, tripped watchdog), but the process
 * and every other run in a sweep are fine. The harness catches
 * SimError, retries with a perturbed seed and widened budget, and
 * fail-softs the point into the figure report instead of aborting the
 * whole regeneration.
 */

#ifndef LOOPSIM_INTEGRITY_SIM_ERROR_HH
#define LOOPSIM_INTEGRITY_SIM_ERROR_HH

#include <stdexcept>
#include <string>

#include "base/types.hh"

namespace loopsim
{

/** A single simulation run failed; the process can continue. */
class SimError : public std::runtime_error
{
  public:
    SimError(std::string kind, const std::string &msg)
        : std::runtime_error(msg), errorKind(std::move(kind))
    {}

    /** Machine-readable category ("cycle-limit", "watchdog", ...). */
    const std::string &kind() const { return errorKind; }

  private:
    std::string errorKind;
};

/** The run exhausted its cycle budget without draining. */
class CycleLimitError : public SimError
{
  public:
    CycleLimitError(std::string run_phase, Cycle limit,
                    const std::string &msg, std::string state_dump)
        : SimError("cycle-limit", msg), phaseName(std::move(run_phase)),
          cycleLimit(limit), dump(std::move(state_dump))
    {}

    /** "warmup" or "measure". */
    const std::string &phase() const { return phaseName; }
    Cycle limit() const { return cycleLimit; }
    /** Pipeline state at the moment the budget ran out. */
    const std::string &stateDump() const { return dump; }

  private:
    std::string phaseName;
    Cycle cycleLimit;
    std::string dump;
};

} // namespace loopsim

#endif // LOOPSIM_INTEGRITY_SIM_ERROR_HH
