#include "branch/gshare.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

GsharePredictor::GsharePredictor(std::size_t entries, unsigned history_bits)
    : table(entries, SatCounter(2, 2)), historyBits(history_bits),
      historyMask((1ULL << history_bits) - 1)
{
    fatal_if(!isPowerOf2(entries), "gshare table size must be 2^n");
    fatal_if(history_bits == 0 || history_bits > 32,
             "gshare history bits out of range");
    fatal_if((1ULL << history_bits) > entries,
             "gshare history longer than the index space");
}

std::size_t
GsharePredictor::index(Addr pc, std::uint64_t hist) const
{
    return ((pc >> 2) ^ hist) & (table.size() - 1);
}

bool
GsharePredictor::predict(Addr pc, ThreadId tid)
{
    panic_if(tid >= maxThreads, "thread id out of range");
    return table[index(pc, histories[tid])].msb();
}

void
GsharePredictor::update(Addr pc, ThreadId tid, bool taken)
{
    panic_if(tid >= maxThreads, "thread id out of range");
    // History is maintained non-speculatively: it advances only when a
    // branch resolves, so squashes never leave it corrupted.
    SatCounter &c = table[index(pc, histories[tid])];
    if (taken)
        c.increment();
    else
        c.decrement();
    histories[tid] = ((histories[tid] << 1) | (taken ? 1u : 0u)) &
                     historyMask;
}

void
GsharePredictor::reset()
{
    for (auto &c : table)
        c.set(2);
    histories.fill(0);
}

std::uint64_t
GsharePredictor::history(ThreadId tid) const
{
    panic_if(tid >= maxThreads, "thread id out of range");
    return histories[tid];
}

} // namespace loopsim
