#include "branch/bimodal.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

BimodalPredictor::BimodalPredictor(std::size_t entries,
                                   unsigned counter_bits)
    : table(entries, SatCounter(counter_bits, (1u << counter_bits) / 2))
{
    fatal_if(!isPowerOf2(entries), "bimodal table size must be 2^n");
}

std::size_t
BimodalPredictor::index(Addr pc) const
{
    return (pc >> 2) & (table.size() - 1);
}

bool
BimodalPredictor::predict(Addr pc, ThreadId)
{
    return table[index(pc)].msb();
}

void
BimodalPredictor::update(Addr pc, ThreadId, bool taken)
{
    SatCounter &c = table[index(pc)];
    if (taken)
        c.increment();
    else
        c.decrement();
}

void
BimodalPredictor::reset()
{
    for (auto &c : table)
        c.set(c.max() / 2 + 1);
}

} // namespace loopsim
