#include "branch/ras.hh"

#include "base/logging.hh"

namespace loopsim
{

ReturnAddressStack::ReturnAddressStack(std::size_t entries)
    : stack(entries, 0)
{
    fatal_if(entries == 0, "RAS must have at least one entry");
}

void
ReturnAddressStack::push(Addr return_pc)
{
    stack[top] = return_pc;
    top = (top + 1) % stack.size();
    if (depth < stack.size())
        ++depth;
}

Addr
ReturnAddressStack::pop()
{
    if (depth == 0)
        return 0; // empty stack predicts nothing useful
    top = (top + stack.size() - 1) % stack.size();
    --depth;
    return stack[top];
}

ReturnAddressStack::Checkpoint
ReturnAddressStack::checkpoint() const
{
    Checkpoint cp;
    cp.top = top;
    cp.depth = depth;
    cp.topValue = depth > 0
        ? stack[(top + stack.size() - 1) % stack.size()] : 0;
    return cp;
}

void
ReturnAddressStack::restore(const Checkpoint &cp)
{
    // The pointer and depth are restored exactly; the value under the
    // restored top is repaired as well, which fixes the common
    // corruption where a wrong-path call overwrote the caller's entry.
    top = cp.top;
    depth = cp.depth;
    if (depth > 0) {
        std::size_t prev = (top + stack.size() - 1) % stack.size();
        stack[prev] = cp.topValue;
    }
}

void
ReturnAddressStack::reset()
{
    top = 0;
    depth = 0;
    for (auto &a : stack)
        a = 0;
}

} // namespace loopsim
