#include "branch/predictor.hh"

#include "base/logging.hh"
#include "base/str.hh"
#include "branch/bimodal.hh"
#include "branch/gshare.hh"
#include "branch/tournament.hh"
#include "sim/config.hh"

namespace loopsim
{

std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind, const Config &cfg)
{
    std::string k = toLower(trim(kind));
    if (k == "bimodal") {
        return std::make_unique<BimodalPredictor>(
            cfg.getUint("branch.bimodal.entries", 4096),
            static_cast<unsigned>(cfg.getUint("branch.bimodal.bits", 2)));
    }
    if (k == "gshare") {
        return std::make_unique<GsharePredictor>(
            cfg.getUint("branch.gshare.entries", 16384),
            static_cast<unsigned>(
                cfg.getUint("branch.gshare.history", 12)));
    }
    if (k == "tournament") {
        return std::make_unique<TournamentPredictor>(
            cfg.getUint("branch.tournament.local_histories", 1024),
            static_cast<unsigned>(
                cfg.getUint("branch.tournament.local_bits", 10)),
            cfg.getUint("branch.tournament.global_entries", 4096),
            static_cast<unsigned>(
                cfg.getUint("branch.tournament.global_bits", 12)));
    }
    fatal("unknown direction predictor kind: ", kind);
}

} // namespace loopsim
