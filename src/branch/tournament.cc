#include "branch/tournament.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

TournamentPredictor::TournamentPredictor(std::size_t local_histories,
                                         unsigned local_bits,
                                         std::size_t global_entries,
                                         unsigned global_bits)
    : localHistory(local_histories, 0),
      localCounters(std::size_t(1) << local_bits, SatCounter(3, 4)),
      globalCounters(global_entries, SatCounter(2, 2)),
      choiceCounters(global_entries, SatCounter(2, 2)),
      localBits(local_bits), globalBits(global_bits)
{
    fatal_if(!isPowerOf2(local_histories),
             "local history table size must be 2^n");
    fatal_if(!isPowerOf2(global_entries), "global table size must be 2^n");
    fatal_if(local_bits == 0 || local_bits > 16,
             "local history bits out of range");
    fatal_if(global_bits == 0 || (1ULL << global_bits) > global_entries,
             "global history bits out of range");
}

bool
TournamentPredictor::localPredict(Addr pc) const
{
    std::size_t h_idx = (pc >> 2) & (localHistory.size() - 1);
    std::uint32_t hist = localHistory[h_idx] & ((1u << localBits) - 1);
    return localCounters[hist].msb();
}

bool
TournamentPredictor::globalPredict(ThreadId tid) const
{
    std::size_t idx = globalHistory[tid] & (globalCounters.size() - 1);
    return globalCounters[idx].msb();
}

bool
TournamentPredictor::predict(Addr pc, ThreadId tid)
{
    panic_if(tid >= maxThreads, "thread id out of range");
    std::size_t c_idx = globalHistory[tid] & (choiceCounters.size() - 1);
    bool use_global = choiceCounters[c_idx].msb();
    return use_global ? globalPredict(tid) : localPredict(pc);
}

void
TournamentPredictor::update(Addr pc, ThreadId tid, bool taken)
{
    panic_if(tid >= maxThreads, "thread id out of range");

    bool local_pred = localPredict(pc);
    bool global_pred = globalPredict(tid);

    // Train the chooser toward whichever component was right, when
    // they disagree.
    std::size_t c_idx = globalHistory[tid] & (choiceCounters.size() - 1);
    if (local_pred != global_pred) {
        if (global_pred == taken)
            choiceCounters[c_idx].increment();
        else
            choiceCounters[c_idx].decrement();
    }

    // Train the components.
    std::size_t h_idx = (pc >> 2) & (localHistory.size() - 1);
    std::uint32_t hist = localHistory[h_idx] & ((1u << localBits) - 1);
    if (taken)
        localCounters[hist].increment();
    else
        localCounters[hist].decrement();
    localHistory[h_idx] = ((hist << 1) | (taken ? 1u : 0u)) &
                          ((1u << localBits) - 1);

    std::size_t g_idx = globalHistory[tid] & (globalCounters.size() - 1);
    if (taken)
        globalCounters[g_idx].increment();
    else
        globalCounters[g_idx].decrement();
    globalHistory[tid] = ((globalHistory[tid] << 1) | (taken ? 1u : 0u)) &
                         ((1ULL << globalBits) - 1);
}

void
TournamentPredictor::reset()
{
    for (auto &h : localHistory)
        h = 0;
    for (auto &c : localCounters)
        c.set(4);
    for (auto &c : globalCounters)
        c.set(2);
    for (auto &c : choiceCounters)
        c.set(2);
    globalHistory.fill(0);
}

} // namespace loopsim
