/**
 * @file
 * Branch target buffer: set-associative PC-to-target cache with LRU
 * replacement and per-thread tagging.
 */

#ifndef LOOPSIM_BRANCH_BTB_HH
#define LOOPSIM_BRANCH_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class Btb
{
  public:
    /**
     * @param entries total entries (power of two)
     * @param ways    associativity (divides entries)
     */
    explicit Btb(std::size_t entries = 4096, unsigned ways = 4);

    /** Predicted target of the branch at @p pc, if any. */
    std::optional<Addr> lookup(Addr pc, ThreadId tid);

    /** Install/refresh the target of @p pc. */
    void update(Addr pc, ThreadId tid, Addr target);

    void reset();

    std::size_t sets() const { return numSets; }
    unsigned associativity() const { return numWays; }

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        ThreadId tid = 0;
        Addr target = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setIndex(Addr pc) const;
    Entry *findEntry(Addr pc, ThreadId tid);

    std::size_t numSets;
    unsigned numWays;
    std::vector<Entry> entries;
    std::uint64_t stamp = 0;
};

} // namespace loopsim

#endif // LOOPSIM_BRANCH_BTB_HH
