/**
 * @file
 * Classic bimodal (Smith) predictor: a table of 2-bit counters indexed
 * by the branch PC.
 */

#ifndef LOOPSIM_BRANCH_BIMODAL_HH
#define LOOPSIM_BRANCH_BIMODAL_HH

#include <vector>

#include "base/sat_counter.hh"
#include "branch/predictor.hh"

namespace loopsim
{

class BimodalPredictor : public DirectionPredictor
{
  public:
    /** @param entries table size; must be a power of two. */
    explicit BimodalPredictor(std::size_t entries = 4096,
                              unsigned counter_bits = 2);

    bool predict(Addr pc, ThreadId tid) override;
    void update(Addr pc, ThreadId tid, bool taken) override;
    void reset() override;
    std::string name() const override { return "bimodal"; }

    std::size_t size() const { return table.size(); }

  private:
    std::size_t index(Addr pc) const;

    std::vector<SatCounter> table;
};

} // namespace loopsim

#endif // LOOPSIM_BRANCH_BIMODAL_HH
