/**
 * @file
 * Gshare predictor: 2-bit counters indexed by PC xor global history,
 * with per-thread history registers (SMT-safe).
 */

#ifndef LOOPSIM_BRANCH_GSHARE_HH
#define LOOPSIM_BRANCH_GSHARE_HH

#include <array>
#include <vector>

#include "base/sat_counter.hh"
#include "branch/predictor.hh"

namespace loopsim
{

class GsharePredictor : public DirectionPredictor
{
  public:
    static constexpr unsigned maxThreads = 4;

    /**
     * @param entries       counter-table size (power of two)
     * @param history_bits  global-history length; <= log2(entries)
     */
    explicit GsharePredictor(std::size_t entries = 16384,
                             unsigned history_bits = 12);

    bool predict(Addr pc, ThreadId tid) override;
    void update(Addr pc, ThreadId tid, bool taken) override;
    void reset() override;
    std::string name() const override { return "gshare"; }

    /** Current (speculatively updated) history of @p tid. */
    std::uint64_t history(ThreadId tid) const;

  private:
    std::size_t index(Addr pc, std::uint64_t hist) const;

    std::vector<SatCounter> table;
    unsigned historyBits;
    std::uint64_t historyMask;
    std::array<std::uint64_t, maxThreads> histories{};
};

} // namespace loopsim

#endif // LOOPSIM_BRANCH_GSHARE_HH
