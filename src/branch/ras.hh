/**
 * @file
 * Return-address stack with checkpoint/restore, so a squash can repair
 * speculative pushes and pops.
 */

#ifndef LOOPSIM_BRANCH_RAS_HH
#define LOOPSIM_BRANCH_RAS_HH

#include <cstddef>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class ReturnAddressStack
{
  public:
    /** A restorable snapshot (top-of-stack pointer and its value). */
    struct Checkpoint
    {
        std::size_t top;
        std::size_t depth;
        Addr topValue;
    };

    explicit ReturnAddressStack(std::size_t entries = 32);

    /** Push a return address (a call was fetched). */
    void push(Addr return_pc);

    /** Pop the predicted return target (a return was fetched). */
    Addr pop();

    /** Current speculative state, for later restore(). */
    Checkpoint checkpoint() const;

    /** Undo back to @p cp (mis-speculation repair). */
    void restore(const Checkpoint &cp);

    void reset();

    bool empty() const { return depth == 0; }
    std::size_t size() const { return depth; }
    std::size_t capacity() const { return stack.size(); }

  private:
    std::vector<Addr> stack;
    std::size_t top = 0;   ///< index of the next free slot (mod N)
    std::size_t depth = 0; ///< live entries (saturates at capacity)
};

} // namespace loopsim

#endif // LOOPSIM_BRANCH_RAS_HH
