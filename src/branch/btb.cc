#include "branch/btb.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

Btb::Btb(std::size_t num_entries, unsigned ways)
    : numSets(ways ? num_entries / ways : 0), numWays(ways),
      entries(num_entries)
{
    fatal_if(ways == 0 || num_entries % ways != 0,
             "BTB ways must divide entries");
    fatal_if(!isPowerOf2(numSets), "BTB set count must be 2^n");
}

std::size_t
Btb::setIndex(Addr pc) const
{
    return (pc >> 2) & (numSets - 1);
}

Btb::Entry *
Btb::findEntry(Addr pc, ThreadId tid)
{
    std::size_t base = setIndex(pc) * numWays;
    for (unsigned w = 0; w < numWays; ++w) {
        Entry &e = entries[base + w];
        if (e.valid && e.tag == pc && e.tid == tid)
            return &e;
    }
    return nullptr;
}

std::optional<Addr>
Btb::lookup(Addr pc, ThreadId tid)
{
    Entry *e = findEntry(pc, tid);
    if (!e)
        return std::nullopt;
    e->lruStamp = ++stamp;
    return e->target;
}

void
Btb::update(Addr pc, ThreadId tid, Addr target)
{
    Entry *e = findEntry(pc, tid);
    if (!e) {
        // Choose the LRU way of the set as the victim.
        std::size_t base = setIndex(pc) * numWays;
        e = &entries[base];
        for (unsigned w = 1; w < numWays; ++w) {
            Entry &cand = entries[base + w];
            if (!cand.valid) {
                e = &cand;
                break;
            }
            if (cand.lruStamp < e->lruStamp)
                e = &cand;
        }
        e->valid = true;
        e->tag = pc;
        e->tid = tid;
    }
    e->target = target;
    e->lruStamp = ++stamp;
}

void
Btb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    stamp = 0;
}

} // namespace loopsim
