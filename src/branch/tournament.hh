/**
 * @file
 * Alpha-21264-style tournament predictor: a local predictor (per-branch
 * history feeding a counter table), a global predictor, and a choice
 * table selecting between them per global history.
 */

#ifndef LOOPSIM_BRANCH_TOURNAMENT_HH
#define LOOPSIM_BRANCH_TOURNAMENT_HH

#include <array>
#include <vector>

#include "base/sat_counter.hh"
#include "branch/predictor.hh"

namespace loopsim
{

class TournamentPredictor : public DirectionPredictor
{
  public:
    static constexpr unsigned maxThreads = 4;

    /**
     * @param local_histories  entries in the per-branch history table
     * @param local_bits       length of each local history
     * @param global_entries   size of global and choice tables
     * @param global_bits      global history length
     */
    TournamentPredictor(std::size_t local_histories = 1024,
                        unsigned local_bits = 10,
                        std::size_t global_entries = 4096,
                        unsigned global_bits = 12);

    bool predict(Addr pc, ThreadId tid) override;
    void update(Addr pc, ThreadId tid, bool taken) override;
    void reset() override;
    std::string name() const override { return "tournament"; }

  private:
    bool localPredict(Addr pc) const;
    bool globalPredict(ThreadId tid) const;

    std::vector<std::uint32_t> localHistory;
    std::vector<SatCounter> localCounters; ///< 3-bit, indexed by history
    std::vector<SatCounter> globalCounters;
    std::vector<SatCounter> choiceCounters; ///< msb => use global
    unsigned localBits;
    unsigned globalBits;
    std::array<std::uint64_t, maxThreads> globalHistory{};
};

} // namespace loopsim

#endif // LOOPSIM_BRANCH_TOURNAMENT_HH
