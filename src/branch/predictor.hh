/**
 * @file
 * Direction-predictor interface and factory.
 *
 * The core can run branches in two modes (see DESIGN.md): "predictor"
 * mode uses these real predictors; "profile" mode uses the workload's
 * calibrated per-branch mispredict tags. Both share this interface so
 * the pipeline code is identical.
 */

#ifndef LOOPSIM_BRANCH_PREDICTOR_HH
#define LOOPSIM_BRANCH_PREDICTOR_HH

#include <memory>
#include <string>

#include "base/types.hh"

namespace loopsim
{

class Config;

/** Predicts conditional-branch directions. */
class DirectionPredictor
{
  public:
    virtual ~DirectionPredictor() = default;

    /** Predict the direction of the branch at @p pc on thread @p tid. */
    virtual bool predict(Addr pc, ThreadId tid) = 0;

    /**
     * Train with the resolved outcome. Implementations also repair
     * their speculative history here.
     */
    virtual void update(Addr pc, ThreadId tid, bool taken) = 0;

    /** Clear all state. */
    virtual void reset() = 0;

    virtual std::string name() const = 0;
};

/**
 * Build a predictor by kind: "bimodal", "gshare" or "tournament".
 * Table sizes are read from @p cfg under "branch.<kind>.*" keys.
 * fatal() for unknown kinds.
 */
std::unique_ptr<DirectionPredictor>
makeDirectionPredictor(const std::string &kind, const Config &cfg);

} // namespace loopsim

#endif // LOOPSIM_BRANCH_PREDICTOR_HH
