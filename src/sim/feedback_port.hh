/**
 * @file
 * Typed feedback ports: the machine-checked loop discipline.
 *
 * The paper's central methodological rule (§6, inherited from ASIM) is
 * that no stage may act on global knowledge: a feedback signal — a
 * branch resolution, a load hit/miss outcome, a DRA operand miss —
 * becomes visible to its initiation stage only after the configured
 * loop delay. The simulation kernel cannot enforce this (it guarantees
 * only a monotonic cycle count), so the discipline is made structural
 * here instead:
 *
 *  - the *writer* stamps every message with the cycle the outcome was
 *    produced and the loop delay it declared (`send()`), and
 *  - the *reader* unwraps the message through `read(now)`, which in
 *    normal builds is an inline unwrap and in audit builds (the
 *    LOOPSIM_AUDIT CMake option, the LOOPSIM_AUDIT environment
 *    variable, or audit::setEnabled()) verifies
 *    `now >= write_cycle + loop_delay`, raising a structured
 *    DisciplineViolation (integrity/sim_error.hh) naming the
 *    component, the signal kind, how many cycles early the read was,
 *    and the offending instruction's timeline.
 *
 * A refactor that shrinks a loop — delivering a resolution to fetch or
 * issue a cycle before the feedback path could physically carry it —
 * therefore fails an audit run instead of silently inflating IPC.
 * tools/loop_lint.py statically rejects feedback-event scheduling that
 * bypasses a port (see the `loop:exempt` annotation policy there).
 */

#ifndef LOOPSIM_SIM_FEEDBACK_PORT_HH
#define LOOPSIM_SIM_FEEDBACK_PORT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/logging.hh"
#include "base/types.hh"

namespace loopsim
{

namespace audit
{

/** Is loop-discipline auditing on? One relaxed atomic load. */
bool enabled();

/** Force audit mode on/off (tests, harness); overrides the default. */
void setEnabled(bool on);

/** RAII toggle for test scopes. */
class Scoped
{
  public:
    explicit Scoped(bool on) : previous(enabled()) { setEnabled(on); }
    ~Scoped() { setEnabled(previous); }
    Scoped(const Scoped &) = delete;
    Scoped &operator=(const Scoped &) = delete;

  private:
    bool previous;
};

} // namespace audit

/**
 * Raise a DisciplineViolation for a read @p now of a signal written at
 * @p write_cycle with declared loop delay @p loop_delay. Out of line so
 * the template read path stays small; @p context is the offending
 * instruction's timeline (may be empty).
 */
[[noreturn]] void raiseDisciplineViolation(const std::string &component,
                                           const std::string &kind,
                                           Cycle write_cycle,
                                           Cycle loop_delay, Cycle now,
                                           const std::string &context);

/**
 * One in-flight feedback message: a payload plus the write stamp the
 * audit check verifies against.
 */
template <typename T>
struct DelayedSignal
{
    T value{};
    Cycle writeCycle = invalidCycle; ///< when the outcome was produced
    Cycle loopDelay = 0;             ///< declared feedback-loop length

    /** First cycle the initiation stage may legally observe this. */
    Cycle visibleAt() const { return writeCycle + loopDelay; }
};

/**
 * A typed, named feedback path between a producing stage and the stage
 * that initiated the speculation. Writers obtain a signal id from
 * send(); readers exchange the id for the payload with read(now).
 * Signals in flight at destruction simply vanish with the port (a
 * squashed speculation whose feedback never needed delivery).
 */
template <typename T>
class FeedbackPort
{
  public:
    /**
     * @param component_name the reading stage ("core.fetch", ...)
     * @param kind_name      the signal kind ("branch-resolution", ...)
     */
    FeedbackPort(std::string component_name, std::string kind_name)
        : componentName(std::move(component_name)),
          kindName(std::move(kind_name))
    {}

    /**
     * Writer side: stamp @p value with @p write_cycle and the declared
     * @p loop_delay and put it in flight.
     * @return the id the reader redeems.
     */
    std::uint64_t
    send(Cycle write_cycle, Cycle loop_delay, T value)
    {
        std::uint64_t id = ++lastId;
        pending.push_back(
            {id, DelayedSignal<T>{std::move(value), write_cycle,
                                  loop_delay}});
        ++sentCount;
        return id;
    }

    /**
     * Reader side: unwrap signal @p id at cycle @p now, keeping the
     * write stamp. The trace layer uses this form so every loop-event
     * row carries the full geometry (write cycle, declared loop delay,
     * consume cycle). In audit mode the loop discipline is verified
     * first; @p context() is evaluated only on a violation and should
     * describe the offending instruction's timeline.
     */
    template <typename ContextFn>
    DelayedSignal<T>
    readStamped(std::uint64_t id, Cycle now, ContextFn &&context)
    {
        DelayedSignal<T> sig = take(id);
        if (audit::enabled() && now < sig.visibleAt()) [[unlikely]] {
            raiseDisciplineViolation(componentName, kindName,
                                     sig.writeCycle, sig.loopDelay, now,
                                     context());
        }
        ++deliveredCount;
        return sig;
    }

    DelayedSignal<T>
    readStamped(std::uint64_t id, Cycle now)
    {
        return readStamped(id, now, [] { return std::string(); });
    }

    /** Reader side, payload only: the common non-traced unwrap. */
    template <typename ContextFn>
    T
    read(std::uint64_t id, Cycle now, ContextFn &&context)
    {
        return std::move(
            readStamped(id, now, std::forward<ContextFn>(context))
                .value);
    }

    T
    read(std::uint64_t id, Cycle now)
    {
        return read(id, now, [] { return std::string(); });
    }

    /** @name Introspection (tests, audit reports) */
    /// @{
    const std::string &component() const { return componentName; }
    const std::string &kind() const { return kindName; }
    std::size_t inFlight() const { return pending.size(); }
    std::uint64_t sent() const { return sentCount; }
    std::uint64_t delivered() const { return deliveredCount; }
    /// @}

  private:
    DelayedSignal<T>
    take(std::uint64_t id)
    {
        // The in-flight set is tiny (bounded by outstanding
        // mis-speculations), so a linear scan beats hashing.
        for (std::size_t i = 0; i < pending.size(); ++i) {
            if (pending[i].first != id)
                continue;
            DelayedSignal<T> sig = std::move(pending[i].second);
            pending[i] = std::move(pending.back());
            pending.pop_back();
            return sig;
        }
        panic("feedback port ", componentName, "/", kindName,
              ": reading unknown signal id ", id);
    }

    std::string componentName;
    std::string kindName;
    std::vector<std::pair<std::uint64_t, DelayedSignal<T>>> pending;
    std::uint64_t lastId = 0;
    std::uint64_t sentCount = 0;
    std::uint64_t deliveredCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_SIM_FEEDBACK_PORT_HH
