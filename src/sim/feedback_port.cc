/**
 * @file
 * Loop-discipline audit mode: the process-wide toggle FeedbackPort
 * consults, and the out-of-line violation raise.
 *
 * The default comes from the build (the LOOPSIM_AUDIT CMake option
 * defines LOOPSIM_AUDIT_BUILD) or, at runtime, the LOOPSIM_AUDIT
 * environment variable ("0"/"" off, anything else on) — so an audit
 * sweep needs no reconfigure. Tests and the harness may override
 * either with audit::setEnabled(). The flag is one relaxed atomic: the
 * campaign executor runs cores on many threads, and toggles are only
 * expected between campaigns.
 */

#include "sim/feedback_port.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "integrity/sim_error.hh"

namespace loopsim
{

namespace audit
{

namespace
{

bool
defaultEnabled()
{
#ifdef LOOPSIM_AUDIT_BUILD
    bool on = true;
#else
    bool on = false;
#endif
    if (const char *env = std::getenv("LOOPSIM_AUDIT"))
        on = std::strcmp(env, "0") != 0 && std::strcmp(env, "") != 0;
    return on;
}

std::atomic<bool> &
flag()
{
    static std::atomic<bool> on{defaultEnabled()};
    return on;
}

} // anonymous namespace

bool
enabled()
{
    return flag().load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    flag().store(on, std::memory_order_relaxed);
}

} // namespace audit

void
raiseDisciplineViolation(const std::string &component,
                         const std::string &kind, Cycle write_cycle,
                         Cycle loop_delay, Cycle now,
                         const std::string &context)
{
    throw DisciplineViolation(component, kind, write_cycle, loop_delay,
                              now, context);
}

} // namespace loopsim
