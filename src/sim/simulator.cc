#include "sim/simulator.hh"

#include "base/logging.hh"
#include "integrity/sim_error.hh"

namespace loopsim
{

void
Simulator::add(Clocked *component)
{
    panic_if(!component, "registering a null component");
    components.push_back(component);
}

Cycle
Simulator::run(Cycle max_cycles)
{
    panic_if(components.empty(), "Simulator::run with no components");
    // A zero budget used to return 0 with hitCycleLimit() == false —
    // indistinguishable from a successful drain. Make it a structured,
    // recoverable error instead of a silent no-op.
    if (max_cycles == 0) {
        throw SimError("invalid-budget",
                       "Simulator::run with a zero cycle budget: no "
                       "component can make progress, but the run would "
                       "report hitCycleLimit() == false");
    }
    Cycle start = currentCycle;
    cycleLimited = false;

    while (currentCycle - start < max_cycles) {
        bool all_done = true;
        for (Clocked *c : components) {
            if (!c->done())
                all_done = false;
        }
        if (all_done)
            return currentCycle - start;

        for (Clocked *c : components)
            c->tick(currentCycle);
        ++currentCycle;
    }
    cycleLimited = true;
    return currentCycle - start;
}

} // namespace loopsim
