#include "sim/simulator.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>

#include "base/logging.hh"
#include "integrity/sim_error.hh"

namespace loopsim
{

namespace
{

/** -1: no override; otherwise a KernelMode value. */
std::atomic<int> modeOverride{-1};

KernelMode
builtinKernelMode()
{
    static const KernelMode resolved = [] {
        const char *env = std::getenv("LOOPSIM_DENSE_KERNEL");
        if (env && *env)
            return KernelMode::Dense;
#ifdef LOOPSIM_DENSE_KERNEL_DEFAULT
        return KernelMode::Dense;
#else
        return KernelMode::Sparse;
#endif
    }();
    return resolved;
}

} // anonymous namespace

KernelMode
defaultKernelMode()
{
    int forced = modeOverride.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<KernelMode>(forced);
    return builtinKernelMode();
}

void
setDefaultKernelMode(KernelMode mode)
{
    modeOverride.store(static_cast<int>(mode),
                       std::memory_order_relaxed);
}

void
Simulator::add(Clocked *component)
{
    panic_if(!component, "registering a null component");
    components.push_back(component);
    doneFlags.push_back(0);
    tickCounts.push_back(0);
    tickMeasured.push_back(0);
    tickSeconds.push_back(0.0);
}

void
Simulator::enableProfiling(bool on)
{
    profiling = on;
}

void
Simulator::setProfilingStride(unsigned stride)
{
    panic_if(stride == 0, "profiling stride must be >= 1");
    profileStride = stride;
}

std::vector<ComponentProfile>
Simulator::profile() const
{
    std::vector<ComponentProfile> out;
    out.reserve(components.size());
    for (std::size_t i = 0; i < components.size(); ++i) {
        // Scale the sampled time up to the full tick count; with a
        // stride of 1 this is exact, otherwise an estimate whose
        // sampling is part of the published tick_profile schema.
        double seconds = tickSeconds[i];
        if (tickMeasured[i] > 0 && tickCounts[i] != tickMeasured[i]) {
            seconds *= static_cast<double>(tickCounts[i]) /
                       static_cast<double>(tickMeasured[i]);
        }
        out.push_back({components[i]->name(), tickCounts[i],
                       tickMeasured[i], seconds,
                       components[i]->fullScanTicks()});
    }
    return out;
}

void
Simulator::tickAll()
{
    for (std::size_t i = 0; i < components.size(); ++i) {
        components[i]->tick(currentCycle);
        ++tickCounts[i];
    }
}

void
Simulator::tickAllTimed()
{
    // Host wall-clock only: the measurements describe the simulator
    // itself and never reach the simulated machine.
    using clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < components.size(); ++i) {
        // loop:exempt(analyze: kernel self-profiling, host time never feeds simulated time)
        const clock::time_point begin = clock::now();
        components[i]->tick(currentCycle);
        // loop:exempt(analyze: kernel self-profiling, host time never feeds simulated time)
        const clock::time_point end = clock::now();
        tickSeconds[i] +=
            std::chrono::duration<double>(end - begin).count();
        ++tickCounts[i];
        ++tickMeasured[i];
    }
}

Cycle
Simulator::run(Cycle max_cycles)
{
    panic_if(components.empty(), "Simulator::run with no components");
    // A zero budget used to return 0 with hitCycleLimit() == false —
    // indistinguishable from a successful drain. Make it a structured,
    // recoverable error instead of a silent no-op.
    if (max_cycles == 0) {
        throw SimError("invalid-budget",
                       "Simulator::run with a zero cycle budget: no "
                       "component can make progress, but the run would "
                       "report hitCycleLimit() == false");
    }
    // Let components shed (or arm) their sparse-only tick machinery
    // before the first cycle of this run.
    for (Clocked *c : components)
        c->prepareKernel(mode);
    return mode == KernelMode::Dense ? runDense(max_cycles)
                                     : runSparse(max_cycles);
}

Cycle
Simulator::runDense(Cycle max_cycles)
{
    // The reference kernel: tick every component every cycle. Kept
    // compilable (and selectable at runtime) so the sparse kernel can
    // be differentially tested against it — see tests/ -L kernel.
    Cycle start = currentCycle;
    cycleLimited = false;

    const std::size_t count = components.size();
    while (currentCycle - start < max_cycles) {
        // All-done check with early exit: stop scanning at the first
        // component that still has work. Components finish roughly in
        // registration order (front-end drains last), so this usually
        // inspects one element instead of all of them.
        std::size_t busy = 0;
        while (busy < count && components[busy]->done())
            ++busy;
        if (busy == count)
            return currentCycle - start;

        if (profiling && profileCursor++ % profileStride == 0)
            tickAllTimed();
        else
            tickAll();
        ++currentCycle;
    }
    cycleLimited = true;
    return currentCycle - start;
}

Cycle
Simulator::runSparse(Cycle max_cycles)
{
    Cycle start = currentCycle;
    cycleLimited = false;

    const std::size_t count = components.size();
    const Cycle end = start + max_cycles;

    // Seed the cached done() flags once; afterwards a component's flag
    // is refreshed only when it ticks (nothing else can change it), so
    // the per-iteration scan touches no component state.
    for (std::size_t i = 0; i < count; ++i)
        doneFlags[i] = components[i]->done() ? 1 : 0;

    while (currentCycle < end) {
        std::size_t busy = 0;
        while (busy < count && doneFlags[busy])
            ++busy;
        if (busy == count)
            return currentCycle - start;

        // The wheel: jump straight to the earliest declared activity.
        // Clamped to the last budget cycle so every component gets a
        // final tick there and closes its span accounting before the
        // budget expires (dense ticks that cycle too).
        Cycle next = invalidCycle;
        for (const Clocked *c : components) {
            Cycle at = c->nextActivity(currentCycle);
            if (at < next)
                next = at;
        }
        if (next < currentCycle)
            next = currentCycle;
        if (next >= end)
            next = end - 1;
        currentCycle = next;

        // Tick every component at the chosen cycle, not only the one
        // that scheduled it: a tick at a cycle with no work is a no-op
        // up to span accounting (the Clocked contract), and observers
        // such as the watchdog see exactly the cycles at which state
        // can change.
        if (profiling && profileCursor++ % profileStride == 0)
            tickAllTimed();
        else
            tickAll();
        for (std::size_t i = 0; i < count; ++i)
            doneFlags[i] = components[i]->done() ? 1 : 0;
        ++currentCycle;
    }
    cycleLimited = true;
    return currentCycle - start;
}

} // namespace loopsim
