#include "sim/simulator.hh"

#include <chrono>

#include "base/logging.hh"
#include "integrity/sim_error.hh"

namespace loopsim
{

void
Simulator::add(Clocked *component)
{
    panic_if(!component, "registering a null component");
    components.push_back(component);
    tickCounts.push_back(0);
    tickSeconds.push_back(0.0);
}

void
Simulator::enableProfiling(bool on)
{
    profiling = on;
}

std::vector<ComponentProfile>
Simulator::profile() const
{
    std::vector<ComponentProfile> out;
    out.reserve(components.size());
    for (std::size_t i = 0; i < components.size(); ++i)
        out.push_back({components[i]->name(), tickCounts[i],
                       tickSeconds[i]});
    return out;
}

void
Simulator::tickAllProfiled()
{
    // Host wall-clock only: the measurements describe the simulator
    // itself and never reach the simulated machine.
    using clock = std::chrono::steady_clock;
    for (std::size_t i = 0; i < components.size(); ++i) {
        // loop:exempt(kernel self-profiling; host time never feeds simulated time)
        const clock::time_point begin = clock::now();
        components[i]->tick(currentCycle);
        // loop:exempt(kernel self-profiling; host time never feeds simulated time)
        const clock::time_point end = clock::now();
        tickSeconds[i] +=
            std::chrono::duration<double>(end - begin).count();
        ++tickCounts[i];
    }
}

Cycle
Simulator::run(Cycle max_cycles)
{
    panic_if(components.empty(), "Simulator::run with no components");
    // A zero budget used to return 0 with hitCycleLimit() == false —
    // indistinguishable from a successful drain. Make it a structured,
    // recoverable error instead of a silent no-op.
    if (max_cycles == 0) {
        throw SimError("invalid-budget",
                       "Simulator::run with a zero cycle budget: no "
                       "component can make progress, but the run would "
                       "report hitCycleLimit() == false");
    }
    Cycle start = currentCycle;
    cycleLimited = false;

    const std::size_t count = components.size();
    while (currentCycle - start < max_cycles) {
        // All-done check with early exit: stop scanning at the first
        // component that still has work. Components finish roughly in
        // registration order (front-end drains last), so this usually
        // inspects one element instead of all of them.
        std::size_t busy = 0;
        while (busy < count && components[busy]->done())
            ++busy;
        if (busy == count)
            return currentCycle - start;

        if (profiling) {
            tickAllProfiled();
        } else {
            for (Clocked *c : components)
                c->tick(currentCycle);
        }
        ++currentCycle;
    }
    cycleLimited = true;
    return currentCycle - start;
}

} // namespace loopsim
