#include "sim/simulator.hh"

#include "base/logging.hh"

namespace loopsim
{

void
Simulator::add(Clocked *component)
{
    panic_if(!component, "registering a null component");
    components.push_back(component);
}

Cycle
Simulator::run(Cycle max_cycles)
{
    panic_if(components.empty(), "Simulator::run with no components");
    Cycle start = currentCycle;
    cycleLimited = false;

    while (currentCycle - start < max_cycles) {
        bool all_done = true;
        for (Clocked *c : components) {
            if (!c->done())
                all_done = false;
        }
        if (all_done)
            return currentCycle - start;

        for (Clocked *c : components)
            c->tick(currentCycle);
        ++currentCycle;
    }
    cycleLimited = true;
    return currentCycle - start;
}

} // namespace loopsim
