/**
 * @file
 * Typed key=value configuration store with dotted namespaces.
 *
 * A Config is a flat map from dotted names ("iq.entries") to string
 * values with typed accessors. Consumers read through get<T>(key,
 * default); the set of keys actually read is recorded so a run can dump
 * its effective configuration, and unread explicitly-set keys can be
 * flagged as probable typos.
 */

#ifndef LOOPSIM_SIM_CONFIG_HH
#define LOOPSIM_SIM_CONFIG_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace loopsim
{

class Config
{
  public:
    Config() = default;

    /** Set a key from a raw string value. */
    void set(const std::string &key, const std::string &value);

    /** Convenience typed setters. */
    void setInt(const std::string &key, std::int64_t value);
    void setUint(const std::string &key, std::uint64_t value);
    void setDouble(const std::string &key, double value);
    void setBool(const std::string &key, bool value);

    /** Parse "a.b=c" assignments; fatal() on malformed input. */
    void parseAssignment(const std::string &assignment);
    /** Parse a list of "k=v" strings, e.g.\ CLI arguments. */
    void parseArgs(const std::vector<std::string> &args);

    bool has(const std::string &key) const;

    /**
     * Typed getters with defaults. Reading records the key and its
     * effective value for later dumping. fatal() on unconvertible text.
     */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;
    std::uint64_t getUint(const std::string &key, std::uint64_t def) const;
    double getDouble(const std::string &key, double def) const;
    bool getBool(const std::string &key, bool def) const;
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Keys explicitly set but never read (likely typos). */
    std::vector<std::string> unreadKeys() const;

    /** Every key that was read, with its effective value. */
    void dumpEffective(std::ostream &os) const;

    /** Merge @p other on top of this config (other wins). */
    void overlay(const Config &other);

    /**
     * All explicitly-set keys with their raw values, in sorted key
     * order. This is the store's fingerprint canonicalization: a fully
     * overlaid Config exposes one flat sorted map, so the hash cannot
     * depend on how the same assignments were spread across overlays.
     */
    const std::map<std::string, std::string> &entries() const;

    /** entries() rendered one "key = value" per line (debugging, and
     *  the store CLI's record provenance dump). */
    std::string canonicalText() const;

  private:
    std::map<std::string, std::string> values;
    mutable std::map<std::string, std::string> effective;
    mutable std::set<std::string> readKeys;
};

} // namespace loopsim

#endif // LOOPSIM_SIM_CONFIG_HH
