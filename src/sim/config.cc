#include "sim/config.hh"

#include <cstdlib>

#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim
{

void
Config::set(const std::string &key, const std::string &value)
{
    fatal_if(key.empty(), "empty config key");
    values[key] = value;
}

void
Config::setInt(const std::string &key, std::int64_t value)
{
    set(key, std::to_string(value));
}

void
Config::setUint(const std::string &key, std::uint64_t value)
{
    set(key, std::to_string(value));
}

void
Config::setDouble(const std::string &key, double value)
{
    set(key, formatDouble(value, 9));
}

void
Config::setBool(const std::string &key, bool value)
{
    set(key, value ? "true" : "false");
}

void
Config::parseAssignment(const std::string &assignment)
{
    auto pos = assignment.find('=');
    fatal_if(pos == std::string::npos,
             "malformed config assignment (need k=v): ", assignment);
    std::string key = trim(assignment.substr(0, pos));
    std::string value = trim(assignment.substr(pos + 1));
    fatal_if(key.empty(), "empty key in assignment: ", assignment);
    set(key, value);
}

void
Config::parseArgs(const std::vector<std::string> &args)
{
    for (const auto &a : args)
        parseAssignment(a);
}

bool
Config::has(const std::string &key) const
{
    return values.count(key) != 0;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        effective[key] = std::to_string(def);
        return def;
    }
    char *end = nullptr;
    long long v = std::strtoll(it->second.c_str(), &end, 0);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key ", key, " is not an integer: ", it->second);
    effective[key] = it->second;
    return v;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    std::int64_t v = getInt(key, static_cast<std::int64_t>(def));
    fatal_if(v < 0, "config key ", key, " must be non-negative");
    return static_cast<std::uint64_t>(v);
}

double
Config::getDouble(const std::string &key, double def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        effective[key] = formatDouble(def, 9);
        return def;
    }
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    fatal_if(end == it->second.c_str() || *end != '\0',
             "config key ", key, " is not a number: ", it->second);
    effective[key] = it->second;
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    if (it == values.end()) {
        effective[key] = def ? "true" : "false";
        return def;
    }
    std::string v = toLower(trim(it->second));
    effective[key] = v;
    if (v == "true" || v == "1" || v == "yes" || v == "on")
        return true;
    if (v == "false" || v == "0" || v == "no" || v == "off")
        return false;
    fatal("config key ", key, " is not a boolean: ", it->second);
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    readKeys.insert(key);
    auto it = values.find(key);
    std::string v = it == values.end() ? def : it->second;
    effective[key] = v;
    return v;
}

std::vector<std::string>
Config::unreadKeys() const
{
    std::vector<std::string> out;
    for (const auto &[k, v] : values) {
        if (!readKeys.count(k))
            out.push_back(k);
    }
    return out;
}

void
Config::dumpEffective(std::ostream &os) const
{
    for (const auto &[k, v] : effective)
        os << k << " = " << v << "\n";
}

void
Config::overlay(const Config &other)
{
    for (const auto &[k, v] : other.values)
        values[k] = v;
}

const std::map<std::string, std::string> &
Config::entries() const
{
    return values;
}

std::string
Config::canonicalText() const
{
    std::string out;
    for (const auto &[k, v] : values) {
        out += k;
        out += " = ";
        out += v;
        out += "\n";
    }
    return out;
}

} // namespace loopsim
