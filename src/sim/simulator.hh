/**
 * @file
 * Event-driven simulation kernel with a dense reference mode.
 *
 * The kernel drives every registered Clocked component, in registration
 * order, until all components report completion or a cycle limit is
 * reached. Components model their own internal pipelining and
 * propagation delays; the kernel guarantees only a global,
 * monotonically increasing cycle count.
 *
 * Two kernels share that contract:
 *
 *  - Sparse (the default): an event wheel. Each component declares,
 *    via nextActivity(), the earliest future cycle at which it has
 *    anything to do; the kernel advances currentCycle directly to the
 *    minimum over all components and ticks every component there.
 *    A component whose state is frozen between wake-ups must account
 *    for the skipped span inside its next tick() (span-weighted
 *    statistics — see DESIGN.md §14), which makes a sparse run
 *    bit-identical to a dense one.
 *  - Dense (LOOPSIM_DENSE_KERNEL, or setDefaultKernelMode): the
 *    original cycle-by-cycle loop, kept as the differential-testing
 *    reference.
 *
 * The kernel cannot see a component cheating its own loop delays.
 * Cross-stage feedback (branch resolution, load hit/miss, DRA operand
 * miss) must travel through sim/feedback_port.hh, whose audit mode
 * turns the paper's no-global-knowledge rule into a checked invariant.
 */

#ifndef LOOPSIM_SIM_SIMULATOR_HH
#define LOOPSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

/** Kernel flavour: the sparse event wheel or the dense reference. */
enum class KernelMode : std::uint8_t
{
    Sparse, ///< event-wheel kernel (production default)
    Dense,  ///< cycle-by-cycle reference kernel
};

/** Anything driven by the global clock. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle; @p now is the cycle being executed. */
    virtual void tick(Cycle now) = 0;

    /** True once this component has no further work. */
    virtual bool done() const = 0;

    /**
     * Sparse-kernel contract: the earliest cycle >= @p now at which
     * this component needs to tick. Returning @p now asks to be ticked
     * every cycle (the dense-compatible default, correct for any
     * component). Returning invalidCycle means "nothing self-scheduled:
     * wake me whenever anything else ticks" — the kernel still ticks
     * every component at every wheel cycle, so a component may always
     * react to state other components changed.
     *
     * The contract is conservative-complete: waking earlier than
     * necessary is always safe (a tick at any cycle with no work must
     * be a no-op up to span accounting); waking later than the first
     * cycle at which the component would have acted is a correctness
     * bug the dense differential test catches.
     */
    virtual Cycle nextActivity(Cycle now) const { return now; }

    /**
     * Kernel-mode hint, delivered by Simulator::run() before the first
     * tick of each run. Components that carry sparse-only machinery on
     * their tick path (wake computation, scan gates) may switch it off
     * under the dense reference kernel so the baseline stays pure.
     * Default: ignore the hint.
     */
    virtual void prepareKernel(KernelMode mode) { (void)mode; }

    /**
     * Number of ticks so far in which this component ran a full
     * (occupancy-proportional) state scan instead of incremental
     * bookkeeping. The kernel publishes it per component in the tick
     * profile, where scanTicks/ticks is the scan fraction — the
     * "how often does sparse degenerate to dense work" metric that
     * DESIGN.md §14 tracks. Components without such a scan keep the
     * default of zero.
     */
    virtual std::uint64_t fullScanTicks() const { return 0; }

    /** Human-readable identity for error messages. */
    virtual std::string name() const { return "clocked"; }
};

/**
 * The process-wide default mode new Simulators start in. Resolution
 * order: setDefaultKernelMode() override, then the LOOPSIM_DENSE_KERNEL
 * environment variable (non-empty enables dense), then the
 * LOOPSIM_DENSE_KERNEL CMake option's compiled-in default, then Sparse.
 */
KernelMode defaultKernelMode();

/** Override the process-wide default (tests, bench --dense-kernel). */
void setDefaultKernelMode(KernelMode mode);

/**
 * Kernel self-profiling result: where the host's time went for one
 * registered component. Wall-clock only — the numbers describe the
 * simulator, never the simulated machine, and cannot feed back into
 * simulated time.
 */
struct ComponentProfile
{
    std::string name;         ///< Clocked::name() at profiling time
    std::uint64_t ticks = 0;  ///< total tick() invocations
    /** tick() invocations actually timed: the profiler batch-samples
     *  one wheel iteration in profilingStride(), so `seconds` is the
     *  measured time scaled by ticks/measuredTicks. */
    std::uint64_t measuredTicks = 0;
    double seconds = 0.0;     ///< estimated host seconds inside tick()
    /** Ticks that ran a full state scan (Clocked::fullScanTicks());
     *  scanTicks/ticks is the component's scan fraction. */
    std::uint64_t scanTicks = 0;
};

/** The global clock driver. */
class Simulator
{
  public:
    Simulator() : mode(defaultKernelMode()) {}

    /** Register a component; the simulator does not take ownership. */
    void add(Clocked *component);

    /**
     * Run until every component is done or @p max_cycles elapse.
     * Throws SimError (kind "invalid-budget") when @p max_cycles is
     * zero: a zero budget would otherwise look like a successful
     * drain (hitCycleLimit() == false with nothing simulated).
     * @return the number of cycles actually simulated.
     */
    Cycle run(Cycle max_cycles);

    /** Current cycle (the next cycle to be executed). */
    Cycle now() const { return currentCycle; }

    /** True iff the last run() ended because of the cycle limit. */
    bool hitCycleLimit() const { return cycleLimited; }

    /** Per-instance kernel selection (defaults to defaultKernelMode()
     *  at construction). */
    void setKernelMode(KernelMode m) { mode = m; }
    KernelMode kernelMode() const { return mode; }

    /**
     * Opt-in kernel self-profiling: when enabled, run() batch-samples
     * tick() durations with the host's monotonic clock (one wheel
     * iteration in profilingStride() is timed; counts stay exact and
     * seconds are scaled). Off by default — the unprofiled loop
     * carries no timing calls at all.
     */
    void enableProfiling(bool on);
    bool profilingEnabled() const { return profiling; }

    /** Sampling stride of the batch profiler (>= 1). */
    void setProfilingStride(unsigned stride);
    unsigned profilingStride() const { return profileStride; }

    /** Per-component host-time estimates accumulated while profiling. */
    std::vector<ComponentProfile> profile() const;

  private:
    Cycle runDense(Cycle max_cycles);
    Cycle runSparse(Cycle max_cycles);
    void tickAll();
    void tickAllTimed();

    std::vector<Clocked *> components;
    /** done() flags cached after each component's most recent tick, so
     *  the all-done scan never re-queries a component that has not
     *  ticked since the last scan. */
    std::vector<char> doneFlags;
    Cycle currentCycle = 0;
    bool cycleLimited = false;
    KernelMode mode;
    bool profiling = false;
    unsigned profileStride = 32;
    std::uint64_t profileCursor = 0;
    std::vector<std::uint64_t> tickCounts;
    std::vector<std::uint64_t> tickMeasured;
    std::vector<double> tickSeconds;
};

} // namespace loopsim

#endif // LOOPSIM_SIM_SIMULATOR_HH
