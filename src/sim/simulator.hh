/**
 * @file
 * Cycle-driven simulation kernel.
 *
 * The kernel is deliberately simple: every registered Clocked component
 * is ticked once per simulated cycle, in registration order, until all
 * components report completion or a cycle limit is reached. Components
 * model their own internal pipelining and propagation delays; the kernel
 * guarantees only a global, monotonically increasing cycle count.
 *
 * The kernel therefore cannot see a component cheating its own loop
 * delays. Cross-stage feedback (branch resolution, load hit/miss, DRA
 * operand miss) must travel through sim/feedback_port.hh, whose audit
 * mode turns the paper's no-global-knowledge rule into a checked
 * invariant.
 */

#ifndef LOOPSIM_SIM_SIMULATOR_HH
#define LOOPSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

/** Anything driven by the global clock. */
class Clocked
{
  public:
    virtual ~Clocked() = default;

    /** Advance one cycle; @p now is the cycle being executed. */
    virtual void tick(Cycle now) = 0;

    /** True once this component has no further work. */
    virtual bool done() const = 0;

    /** Human-readable identity for error messages. */
    virtual std::string name() const { return "clocked"; }
};

/**
 * Kernel self-profiling result: where the host's time went for one
 * registered component. Wall-clock only — the numbers describe the
 * simulator, never the simulated machine, and cannot feed back into
 * simulated time.
 */
struct ComponentProfile
{
    std::string name;         ///< Clocked::name() at profiling time
    std::uint64_t ticks = 0;  ///< tick() invocations measured
    double seconds = 0.0;     ///< host seconds spent inside tick()
};

/** The global clock driver. */
class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; the simulator does not take ownership. */
    void add(Clocked *component);

    /**
     * Run until every component is done or @p max_cycles elapse.
     * Throws SimError (kind "invalid-budget") when @p max_cycles is
     * zero: a zero budget would otherwise look like a successful
     * drain (hitCycleLimit() == false with nothing simulated).
     * @return the number of cycles actually simulated.
     */
    Cycle run(Cycle max_cycles);

    /** Current cycle (the next cycle to be executed). */
    Cycle now() const { return currentCycle; }

    /** True iff the last run() ended because of the cycle limit. */
    bool hitCycleLimit() const { return cycleLimited; }

    /**
     * Opt-in kernel self-profiling: when enabled, run() times every
     * component's tick() with the host's monotonic clock. Off by
     * default — the unprofiled loop carries no timing calls at all.
     */
    void enableProfiling(bool on);
    bool profilingEnabled() const { return profiling; }

    /** Per-component host-time totals accumulated while profiling. */
    std::vector<ComponentProfile> profile() const;

  private:
    void tickAllProfiled();

    std::vector<Clocked *> components;
    Cycle currentCycle = 0;
    bool cycleLimited = false;
    bool profiling = false;
    std::vector<std::uint64_t> tickCounts;
    std::vector<double> tickSeconds;
};

} // namespace loopsim

#endif // LOOPSIM_SIM_SIMULATOR_HH
