/**
 * @file
 * Saturating up/down counter, the workhorse of predictors and the DRA
 * insertion tables.
 */

#ifndef LOOPSIM_BASE_SAT_COUNTER_HH
#define LOOPSIM_BASE_SAT_COUNTER_HH

#include <cstdint>

#include "base/logging.hh"

namespace loopsim
{

/**
 * An n-bit saturating counter. Increments stick at 2^bits - 1 and
 * decrements stick at 0.
 */
class SatCounter
{
  public:
    /** Construct a @p bits wide counter with initial value @p initial. */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxVal((1u << bits) - 1), count(initial)
    {
        panic_if(bits == 0 || bits > 16, "SatCounter width out of range");
        panic_if(initial > maxVal, "SatCounter initial value > max");
    }

    /** Increment, saturating at the maximum. Returns the new value. */
    unsigned
    increment()
    {
        if (count < maxVal)
            ++count;
        return count;
    }

    /** Decrement, saturating at zero. Returns the new value. */
    unsigned
    decrement()
    {
        if (count > 0)
            --count;
        return count;
    }

    /** Reset to zero. */
    void reset() { count = 0; }

    /** Force a specific (clamped) value. */
    void
    set(unsigned v)
    {
        count = v > maxVal ? maxVal : v;
    }

    unsigned value() const { return count; }
    unsigned max() const { return maxVal; }
    bool saturated() const { return count == maxVal; }

    /** Most-significant-bit test, the usual taken/not-taken decision. */
    bool msb() const { return count > maxVal / 2; }

  private:
    unsigned maxVal;
    unsigned count;
};

} // namespace loopsim

#endif // LOOPSIM_BASE_SAT_COUNTER_HH
