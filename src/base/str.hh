/**
 * @file
 * String helpers used by the config parser and report formatting.
 */

#ifndef LOOPSIM_BASE_STR_HH
#define LOOPSIM_BASE_STR_HH

#include <string>
#include <vector>

namespace loopsim
{

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &s);

/** Split @p s on character @p sep; empty fields are preserved. */
std::vector<std::string> split(const std::string &s, char sep);

/** Case-sensitive prefix test. */
bool startsWith(const std::string &s, const std::string &prefix);

/** Lower-case an ASCII string. */
std::string toLower(const std::string &s);

/** Render a double with fixed @p precision digits after the point. */
std::string formatDouble(double v, int precision);

/** Render @p v as a percentage string, e.g.\ "12.3%". */
std::string formatPercent(double v, int precision = 1);

/** Left/right pad @p s to @p width with spaces. */
std::string padLeft(const std::string &s, std::size_t width);
std::string padRight(const std::string &s, std::size_t width);

} // namespace loopsim

#endif // LOOPSIM_BASE_STR_HH
