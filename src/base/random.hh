/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (synthetic workloads, random
 * replacement, tie-breaking) draws from Pcg32 streams seeded explicitly,
 * so a run is exactly reproducible from its configuration.
 */

#ifndef LOOPSIM_BASE_RANDOM_HH
#define LOOPSIM_BASE_RANDOM_HH

#include <cstdint>
#include <vector>

namespace loopsim
{

/**
 * PCG32 generator (O'Neill 2014, pcg32_random_r). Small, fast, and of far
 * better statistical quality than an LCG; a single 64-bit state plus a
 * stream-selection constant.
 */
class Pcg32
{
  public:
    using result_type = std::uint32_t;

    /** Construct a generator for @p seed on stream @p stream. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL);

    /** Next raw 32-bit output. */
    std::uint32_t next();

    std::uint32_t operator()() { return next(); }

    static constexpr std::uint32_t min() { return 0; }
    static constexpr std::uint32_t max() { return 0xffffffffu; }

    /** Uniform integer in [0, bound) with Lemire rejection (unbiased). */
    std::uint32_t nextBounded(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw: true with probability @p p (clamped to [0,1]). */
    bool chance(double p);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

    /**
     * Geometric-ish draw: number of failures before a success with
     * success probability @p p, capped at @p cap.
     */
    std::uint32_t geometric(double p, std::uint32_t cap);

  private:
    std::uint64_t state;
    std::uint64_t inc;
};

/**
 * A discrete distribution over arbitrary weights, sampled by binary
 * search over the cumulative weight table.
 */
class DiscreteDistribution
{
  public:
    DiscreteDistribution() = default;

    /** Build from (possibly unnormalised) non-negative weights. */
    explicit DiscreteDistribution(const std::vector<double> &weights);

    /** Sample an index in [0, size()). */
    std::size_t sample(Pcg32 &rng) const;

    std::size_t size() const { return cumulative.size(); }
    bool empty() const { return cumulative.empty(); }

  private:
    std::vector<double> cumulative;
};

} // namespace loopsim

#endif // LOOPSIM_BASE_RANDOM_HH
