/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef LOOPSIM_BASE_TYPES_HH
#define LOOPSIM_BASE_TYPES_HH

#include <cstdint>
#include <limits>

namespace loopsim
{

/** Simulated time, measured in core clock cycles. */
using Cycle = std::uint64_t;

/** Dynamic instruction sequence number (program order within a run). */
using SeqNum = std::uint64_t;

/** Architectural register index within one thread's register space. */
using ArchReg = std::uint16_t;

/** Physical register index in the unified physical register file. */
using PhysReg = std::uint16_t;

/** Hardware thread (SMT context) identifier. */
using ThreadId = std::uint8_t;

/** Functional-unit cluster identifier. */
using ClusterId = std::uint8_t;

/** Virtual address of an instruction or datum. */
using Addr = std::uint64_t;

/** Sentinel for "no physical register" (e.g.\ an absent source operand). */
constexpr PhysReg invalidPhysReg = std::numeric_limits<PhysReg>::max();

/** Sentinel for "no architectural register". */
constexpr ArchReg invalidArchReg = std::numeric_limits<ArchReg>::max();

/** Sentinel for "event has not happened / time unknown". */
constexpr Cycle invalidCycle = std::numeric_limits<Cycle>::max();

/** Sentinel sequence number used before an instruction is numbered. */
constexpr SeqNum invalidSeqNum = std::numeric_limits<SeqNum>::max();

} // namespace loopsim

#endif // LOOPSIM_BASE_TYPES_HH
