#include "base/random.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace loopsim
{

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t stream)
    : state(0), inc((stream << 1u) | 1u)
{
    next();
    state += seed;
    next();
}

std::uint32_t
Pcg32::next()
{
    std::uint64_t old = state;
    state = old * 6364136223846793005ULL + inc;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((0u - rot) & 31u));
}

std::uint32_t
Pcg32::nextBounded(std::uint32_t bound)
{
    panic_if(bound == 0, "nextBounded(0) is undefined");
    // Lemire's nearly-divisionless unbiased method.
    std::uint64_t m = std::uint64_t(next()) * bound;
    std::uint32_t l = static_cast<std::uint32_t>(m);
    if (l < bound) {
        std::uint32_t t = (0u - bound) % bound;
        while (l < t) {
            m = std::uint64_t(next()) * bound;
            l = static_cast<std::uint32_t>(m);
        }
    }
    return static_cast<std::uint32_t>(m >> 32);
}

double
Pcg32::nextDouble()
{
    return next() * (1.0 / 4294967296.0);
}

bool
Pcg32::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Pcg32::range(std::uint64_t lo, std::uint64_t hi)
{
    panic_if(lo > hi, "range(lo > hi)");
    std::uint64_t span = hi - lo + 1;
    if (span == 0) {
        // Full 64-bit range: compose two 32-bit draws.
        return (std::uint64_t(next()) << 32) | next();
    }
    if (span <= 0xffffffffULL)
        return lo + nextBounded(static_cast<std::uint32_t>(span));
    // Wide span: rejection over two words.
    std::uint64_t mask = ~0ULL >> __builtin_clzll(span | 1);
    std::uint64_t draw;
    do {
        draw = ((std::uint64_t(next()) << 32) | next()) & mask;
    } while (draw >= span);
    return lo + draw;
}

std::uint32_t
Pcg32::geometric(double p, std::uint32_t cap)
{
    if (p >= 1.0)
        return 0;
    if (p <= 0.0)
        return cap;
    std::uint32_t n = 0;
    while (n < cap && !chance(p))
        ++n;
    return n;
}

DiscreteDistribution::DiscreteDistribution(const std::vector<double> &weights)
{
    cumulative.reserve(weights.size());
    double sum = 0.0;
    for (double w : weights) {
        panic_if(w < 0.0, "negative weight in DiscreteDistribution");
        sum += w;
        cumulative.push_back(sum);
    }
    panic_if(!cumulative.empty() && sum <= 0.0,
             "DiscreteDistribution with all-zero weights");
}

std::size_t
DiscreteDistribution::sample(Pcg32 &rng) const
{
    panic_if(cumulative.empty(), "sampling an empty distribution");
    double total = cumulative.back();
    double u = rng.nextDouble() * total;
    auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
    if (it == cumulative.end())
        --it;
    return static_cast<std::size_t>(it - cumulative.begin());
}

} // namespace loopsim
