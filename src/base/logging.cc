#include "base/logging.hh"

#include <atomic>
#include <iostream>

namespace loopsim
{
namespace detail
{

namespace
{
// Read on every warn()/inform() from any campaign worker; tests flip
// it around run blocks, so it is atomic rather than a plain bool.
std::atomic<bool> quietFlag{false};

// Per-thread warn() prefix (the campaign executor's cell tag). A
// forked worker inherits the forking thread's value, so a child
// process's diagnostics stay attributable too.
thread_local std::string diagPrefix;
} // anonymous namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
quiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    if (!quiet())
        std::cerr << os.str() + "\n";
    throw PanicError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    if (!quiet())
        std::cerr << os.str() + "\n";
    throw FatalError(os.str());
}

void
setDiagContext(const std::string &prefix)
{
    diagPrefix = prefix;
}

const std::string &
diagContext()
{
    return diagPrefix;
}

void
warnImpl(const std::string &msg)
{
    // Single buffered insertion per message so lines from concurrent
    // campaign workers cannot interleave mid-line.
    if (!quiet())
        std::cerr << "warn: " + diagPrefix + msg + "\n";
}

void
informImpl(const std::string &msg)
{
    if (!quiet())
        std::cout << "info: " + msg + "\n" << std::flush;
}

} // namespace detail
} // namespace loopsim
