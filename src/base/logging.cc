#include "base/logging.hh"

#include <iostream>

namespace loopsim
{
namespace detail
{

namespace
{
bool quietFlag = false;
} // anonymous namespace

void
setQuiet(bool quiet)
{
    quietFlag = quiet;
}

bool
quiet()
{
    return quietFlag;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "panic: " << msg << " @ " << file << ":" << line;
    if (!quietFlag)
        std::cerr << os.str() << std::endl;
    throw PanicError(os.str());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << "fatal: " << msg << " @ " << file << ":" << line;
    if (!quietFlag)
        std::cerr << os.str() << std::endl;
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quietFlag)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail
} // namespace loopsim
