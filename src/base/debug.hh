/**
 * @file
 * Named debug-trace flags, in the spirit of gem5's DPRINTF.
 *
 * Tracing is off by default and costs one boolean test per site. Flags
 * are enabled programmatically (debug::setFlags) or via the
 * LOOPSIM_DEBUG environment variable, e.g.
 *
 *   LOOPSIM_DEBUG=Issue,Squash ./build/examples/quickstart gcc
 *
 * Each line is prefixed with the cycle and the flag name.
 */

#ifndef LOOPSIM_BASE_DEBUG_HH
#define LOOPSIM_BASE_DEBUG_HH

#include <sstream>
#include <string>

#include "base/types.hh"

namespace loopsim::debug
{

/** Trace categories; keep in sync with flagName()/parse. */
enum class Flag : unsigned
{
    Fetch,
    Rename,
    Issue,
    Exec,
    Retire,
    Squash,
    Kill,
    Dra,
    Mem,
    Pool, ///< instruction-pool slot transitions (LOOPSIM_TRACE_POOL)
    Reg,  ///< physical-register transitions (LOOPSIM_TRACE_REG)
    NumFlags
};

/** Printable name of @p flag. */
const char *flagName(Flag flag);

/** Is @p flag enabled? Inline-cheap: one mask test. */
bool enabled(Flag flag);

/** Enable a comma-separated flag list ("Issue,Squash" or "All"). */
void setFlags(const std::string &csv);

/** Disable everything. */
void clearFlags();

/** True when any flag is on (fast path guard). */
bool anyEnabled();

/** Emit one trace line (already guarded by enabled()). */
void emit(Flag flag, Cycle cycle, const std::string &message);

/** Emit a trace line with no meaningful cycle (structure-level hooks
 *  like pool/regfile transitions that fire outside stage code). */
void emit(Flag flag, const std::string &message);

/**
 * Trace macro: evaluates its message arguments only when the flag is
 * enabled.
 */
#define LTRACE(flag, cycle, ...)                                          \
    do {                                                                  \
        if (::loopsim::debug::enabled(::loopsim::debug::Flag::flag)) {    \
            std::ostringstream ltrace_os;                                 \
            ltrace_os << __VA_ARGS__;                                     \
            ::loopsim::debug::emit(::loopsim::debug::Flag::flag, cycle,   \
                                   ltrace_os.str());                      \
        }                                                                 \
    } while (false)

} // namespace loopsim::debug

#endif // LOOPSIM_BASE_DEBUG_HH
