/**
 * @file
 * Small integer-math helpers for cache indexing and sizing.
 */

#ifndef LOOPSIM_BASE_INTMATH_HH
#define LOOPSIM_BASE_INTMATH_HH

#include <cstdint>

namespace loopsim
{

/** True iff @p n is a power of two (0 is not). */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** Floor of log2(n); log2(0) is defined as 0 for convenience. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    unsigned r = 0;
    while (n > 1) {
        n >>= 1;
        ++r;
    }
    return r;
}

/** Ceiling of log2(n). */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return isPowerOf2(n) ? floorLog2(n) : floorLog2(n) + 1;
}

/** Integer division rounding up. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** Round @p n up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t n, std::uint64_t align)
{
    return (n + align - 1) & ~(align - 1);
}

/** Round @p n down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t n, std::uint64_t align)
{
    return n & ~(align - 1);
}

} // namespace loopsim

#endif // LOOPSIM_BASE_INTMATH_HH
