/**
 * @file
 * gem5-flavoured status and error reporting.
 *
 * panic()  - an internal simulator invariant was violated (a bug); aborts.
 * fatal()  - the user asked for something impossible (bad config); exits.
 * warn()   - something questionable happened but simulation continues.
 * inform() - plain status output.
 *
 * Both panic() and fatal() are terminal for the process. The third
 * failure category — *this run* failed (wedged pipeline, exhausted
 * cycle budget) but the process and every other run in a sweep are
 * fine — is SimError in src/integrity/sim_error.hh, which the harness
 * catches, retries and fail-softs. See DESIGN.md §8.
 */

#ifndef LOOPSIM_BASE_LOGGING_HH
#define LOOPSIM_BASE_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace loopsim
{

/** Thrown by panic(); signals a simulator bug. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(); signals a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

/** Fold a parameter pack into one message string via operator<<. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Suppress or restore warn()/inform() output (used by tests). */
void setQuiet(bool quiet);
bool quiet();

/** Thread-local diagnostic prefix prepended to every warn() line
 *  emitted by this thread ("" clears). The campaign executor tags each
 *  worker with its cell's plan-index label so interleaved stderr from
 *  parallel workers stays attributable. */
void setDiagContext(const std::string &prefix);
const std::string &diagContext();

} // namespace detail

/** RAII diag-context scope: prefixes this thread's warn() lines for
 *  the lifetime of the object, restoring the previous prefix after. */
class DiagContext
{
  public:
    explicit DiagContext(std::string prefix)
        : saved(detail::diagContext())
    {
        detail::setDiagContext(std::move(prefix));
    }
    ~DiagContext() { detail::setDiagContext(saved); }
    DiagContext(const DiagContext &) = delete;
    DiagContext &operator=(const DiagContext &) = delete;

  private:
    std::string saved;
};

#define panic(...)                                                          \
    ::loopsim::detail::panicImpl(                                           \
        __FILE__, __LINE__, ::loopsim::detail::formatMessage(__VA_ARGS__))

#define fatal(...)                                                          \
    ::loopsim::detail::fatalImpl(                                           \
        __FILE__, __LINE__, ::loopsim::detail::formatMessage(__VA_ARGS__))

#define warn(...)                                                           \
    ::loopsim::detail::warnImpl(::loopsim::detail::formatMessage(__VA_ARGS__))

#define inform(...)                                                         \
    ::loopsim::detail::informImpl(                                          \
        ::loopsim::detail::formatMessage(__VA_ARGS__))

/** panic() unless the stated invariant holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic("panic condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (false)

/** fatal() unless the stated user-facing requirement holds. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal("fatal condition (" #cond ") occurred: ", __VA_ARGS__);   \
        }                                                                   \
    } while (false)

} // namespace loopsim

#endif // LOOPSIM_BASE_LOGGING_HH
