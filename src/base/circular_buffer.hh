/**
 * @file
 * Fixed-capacity circular FIFO used for pipeline latches, the forwarding
 * buffer, and the reorder buffer.
 */

#ifndef LOOPSIM_BASE_CIRCULAR_BUFFER_HH
#define LOOPSIM_BASE_CIRCULAR_BUFFER_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "base/logging.hh"

namespace loopsim
{

/**
 * A bounded FIFO over contiguous storage. Indexing via operator[](i)
 * addresses the i-th oldest element. Pushing into a full buffer panics;
 * callers are expected to model back-pressure explicitly.
 */
template <typename T>
class CircularBuffer
{
  public:
    explicit CircularBuffer(std::size_t capacity)
        : store(capacity), head(0), count(0)
    {
        panic_if(capacity == 0, "CircularBuffer capacity must be > 0");
    }

    std::size_t capacity() const { return store.size(); }
    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool full() const { return count == store.size(); }
    std::size_t freeSlots() const { return store.size() - count; }

    /** Append to the tail. */
    void
    push(T value)
    {
        panic_if(full(), "push into full CircularBuffer");
        store[index(count)] = std::move(value);
        ++count;
    }

    /** Remove and return the oldest element. */
    T
    pop()
    {
        panic_if(empty(), "pop from empty CircularBuffer");
        T value = std::move(store[head]);
        head = (head + 1) % store.size();
        --count;
        return value;
    }

    /** Discard the newest element (used for squash-from-tail walks). */
    T
    popBack()
    {
        panic_if(empty(), "popBack from empty CircularBuffer");
        --count;
        return std::move(store[index(count)]);
    }

    /** The oldest element. */
    T &front() { return const_cast<T &>(std::as_const(*this).front()); }
    const T &
    front() const
    {
        panic_if(empty(), "front of empty CircularBuffer");
        return store[head];
    }

    /** The newest element. */
    T &back() { return const_cast<T &>(std::as_const(*this).back()); }
    const T &
    back() const
    {
        panic_if(empty(), "back of empty CircularBuffer");
        return store[index(count - 1)];
    }

    /** The i-th oldest element (0 == front). */
    T &operator[](std::size_t i)
    {
        return const_cast<T &>(std::as_const(*this)[i]);
    }
    const T &
    operator[](std::size_t i) const
    {
        panic_if(i >= count, "CircularBuffer index out of range");
        return store[index(i)];
    }

    void
    clear()
    {
        head = 0;
        count = 0;
    }

  private:
    std::size_t index(std::size_t i) const
    {
        return (head + i) % store.size();
    }

    std::vector<T> store;
    std::size_t head;
    std::size_t count;
};

} // namespace loopsim

#endif // LOOPSIM_BASE_CIRCULAR_BUFFER_HH
