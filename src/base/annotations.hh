/**
 * @file
 * Source annotations consumed by the static analyzer.
 *
 * tools/analyze (loopsim-analyze, DESIGN.md §15) checks project
 * invariants that neither the compiler nor the regex linter can see.
 * The checks are driven by [[clang::annotate]] attributes attached
 * through these macros; under non-clang compilers they expand to
 * nothing, so annotated headers build identically everywhere.
 *
 * Annotation vocabulary:
 *
 *  LOOPSIM_WAKE_STATE
 *      On a field: mutating it can advance the cycle at which a stage
 *      could act, so every function that writes it (or calls a
 *      non-const method on it) must also declare a wake — call a
 *      LOOPSIM_WAKE_HOOK function — or the sparse kernel can sleep
 *      through the change (dense/sparse divergence, the PR-7 bug
 *      class).
 *      On a function: calling it mutates wake-relevant state on the
 *      caller's behalf; the *caller* inherits the pairing obligation.
 *      The body of a wake_state function is itself exempt from the
 *      check (its obligation lives at its call sites).
 *
 *  LOOPSIM_WAKE_HOOK
 *      This function IS a wake declaration (noteIqWake, wakeReg,
 *      schedule, computeWake). Calling it anywhere in a function
 *      discharges that function's wake-pairing obligation; its own
 *      body is exempt from the check.
 *
 *  LOOPSIM_CAMPAIGN_GUARDED(how)
 *      This static/global is mutable but safe under the parallel
 *      campaign executor; @p how is the reviewable reason (the mutex
 *      or synchronization discipline that guards it). Without the
 *      annotation, mutable non-atomic statics reachable from
 *      runCampaign workers are rejected by the campaign-statics check.
 *
 *  LOOPSIM_ORDER_SINK
 *      Calls to this function make iteration order observable (stats
 *      export, trace sinks, figure assembly, fingerprinting). The
 *      determinism check rejects unordered-container iteration whose
 *      body reaches an order sink. Sinks in src/stats, src/trace,
 *      src/store and the report/figure assembly are recognized by
 *      location without the annotation; use it for sinks that live
 *      elsewhere.
 *
 * A finding at an annotated-checked site is waived with the shared
 * `// loop:exempt` comment carrying a reason, on the flagged line or
 * the line above it, exactly as for tools/loop_lint.py. Use an
 * `analyze:` prefix in the reason when the waiver targets an
 * analyzer-only rule, so loop_lint's --check-stale-exempts mode does
 * not flag it as stale.
 */

#ifndef LOOPSIM_BASE_ANNOTATIONS_HH
#define LOOPSIM_BASE_ANNOTATIONS_HH

#if defined(__clang__)
#define LOOPSIM_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define LOOPSIM_ANNOTATE(tag)
#endif

#define LOOPSIM_WAKE_STATE LOOPSIM_ANNOTATE("loopsim::wake_state")
#define LOOPSIM_WAKE_HOOK LOOPSIM_ANNOTATE("loopsim::wake_hook")
#define LOOPSIM_CAMPAIGN_GUARDED(how) \
    LOOPSIM_ANNOTATE("loopsim::guarded:" how)
#define LOOPSIM_ORDER_SINK LOOPSIM_ANNOTATE("loopsim::order_sink")

#endif // LOOPSIM_BASE_ANNOTATIONS_HH
