#include "base/str.hh"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace loopsim
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            out.push_back(s.substr(start));
            break;
        }
        out.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
    return out;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.size() >= prefix.size() &&
           s.compare(0, prefix.size(), prefix) == 0;
}

std::string
toLower(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
formatPercent(double v, int precision)
{
    return formatDouble(v * 100.0, precision) + "%";
}

std::string
padLeft(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, std::size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace loopsim
