#include "base/debug.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <sstream>

#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim::debug
{

namespace
{

// Campaign workers query these every traced cycle; the mask is an
// atomic read on the fast path and all mutation (env parse, explicit
// setFlags/clearFlags) serialises on one mutex. The flag set is
// install-then-read: installers run before the sweep, workers only
// load.
std::atomic<unsigned> flagMask{0};
std::atomic<bool> envParsed{false};

std::mutex &
flagMutex()
{
    static std::mutex m;
    return m;
}

constexpr unsigned allMask =
    (1u << static_cast<unsigned>(Flag::NumFlags)) - 1;

unsigned
maskOf(Flag flag)
{
    return 1u << static_cast<unsigned>(flag);
}

void
parseEnvOnce()
{
    if (envParsed.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(flagMutex());
    if (envParsed.load(std::memory_order_relaxed))
        return;
    // Guarded by flagMutex and only ever read, never set, by us.
    const char *env = std::getenv("LOOPSIM_DEBUG"); // NOLINT(concurrency-mt-unsafe)
    if (env) {
        // setFlags re-enters flagMutex-free paths only; it marks
        // envParsed itself, so release the lock around the call by
        // doing the work inline instead.
        envParsed.store(true, std::memory_order_release);
        setFlags(env);
        return;
    }
    envParsed.store(true, std::memory_order_release);
}

} // anonymous namespace

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Flag::Fetch: return "Fetch";
      case Flag::Rename: return "Rename";
      case Flag::Issue: return "Issue";
      case Flag::Exec: return "Exec";
      case Flag::Retire: return "Retire";
      case Flag::Squash: return "Squash";
      case Flag::Kill: return "Kill";
      case Flag::Dra: return "Dra";
      case Flag::Mem: return "Mem";
      case Flag::Pool: return "Pool";
      case Flag::Reg: return "Reg";
      default: panic("unknown debug flag");
    }
}

bool
enabled(Flag flag)
{
    parseEnvOnce();
    return (flagMask.load(std::memory_order_relaxed) & maskOf(flag)) != 0;
}

bool
anyEnabled()
{
    parseEnvOnce();
    return flagMask.load(std::memory_order_relaxed) != 0;
}

void
setFlags(const std::string &csv)
{
    envParsed.store(true, std::memory_order_release);
    unsigned add = 0;
    for (const std::string &raw : split(csv, ',')) {
        std::string name = toLower(trim(raw));
        if (name.empty())
            continue;
        if (name == "all") {
            add |= allMask;
            continue;
        }
        bool found = false;
        for (unsigned f = 0;
             f < static_cast<unsigned>(Flag::NumFlags); ++f) {
            if (toLower(flagName(static_cast<Flag>(f))) == name) {
                add |= 1u << f;
                found = true;
                break;
            }
        }
        fatal_if(!found, "unknown debug flag: ", raw);
    }
    flagMask.fetch_or(add, std::memory_order_relaxed);
}

void
clearFlags()
{
    envParsed.store(true, std::memory_order_release);
    flagMask.store(0, std::memory_order_relaxed);
}

void
emit(Flag flag, Cycle cycle, const std::string &message)
{
    // One formatted string per line so concurrent workers cannot
    // interleave mid-line.
    std::ostringstream os;
    os << cycle << ": " << flagName(flag) << ": " << message << "\n";
    std::cerr << os.str();
}

void
emit(Flag flag, const std::string &message)
{
    std::ostringstream os;
    os << "-: " << flagName(flag) << ": " << message << "\n";
    std::cerr << os.str();
}

} // namespace loopsim::debug
