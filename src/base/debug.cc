#include "base/debug.hh"

#include <cstdlib>
#include <iostream>

#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim::debug
{

namespace
{

unsigned flagMask = [] {
    const char *env = std::getenv("LOOPSIM_DEBUG");
    if (!env)
        return 0u;
    // Deferred: setFlags needs the name table below, so parse lazily
    // through a helper that runs after static init of this TU.
    return ~0u; // sentinel: replaced by the first enabled() call
}();

bool envParsed = false;

constexpr unsigned allMask =
    (1u << static_cast<unsigned>(Flag::NumFlags)) - 1;

unsigned
maskOf(Flag flag)
{
    return 1u << static_cast<unsigned>(flag);
}

void
parseEnvOnce()
{
    if (envParsed)
        return;
    envParsed = true;
    const char *env = std::getenv("LOOPSIM_DEBUG");
    flagMask = 0;
    if (env)
        setFlags(env);
}

} // anonymous namespace

const char *
flagName(Flag flag)
{
    switch (flag) {
      case Flag::Fetch: return "Fetch";
      case Flag::Rename: return "Rename";
      case Flag::Issue: return "Issue";
      case Flag::Exec: return "Exec";
      case Flag::Retire: return "Retire";
      case Flag::Squash: return "Squash";
      case Flag::Kill: return "Kill";
      case Flag::Dra: return "Dra";
      case Flag::Mem: return "Mem";
      default: panic("unknown debug flag");
    }
}

bool
enabled(Flag flag)
{
    parseEnvOnce();
    return (flagMask & maskOf(flag)) != 0;
}

bool
anyEnabled()
{
    parseEnvOnce();
    return flagMask != 0;
}

void
setFlags(const std::string &csv)
{
    envParsed = true;
    for (const std::string &raw : split(csv, ',')) {
        std::string name = toLower(trim(raw));
        if (name.empty())
            continue;
        if (name == "all") {
            flagMask = allMask;
            continue;
        }
        bool found = false;
        for (unsigned f = 0;
             f < static_cast<unsigned>(Flag::NumFlags); ++f) {
            if (toLower(flagName(static_cast<Flag>(f))) == name) {
                flagMask |= 1u << f;
                found = true;
                break;
            }
        }
        fatal_if(!found, "unknown debug flag: ", raw);
    }
}

void
clearFlags()
{
    envParsed = true;
    flagMask = 0;
}

void
emit(Flag flag, Cycle cycle, const std::string &message)
{
    std::cerr << cycle << ": " << flagName(flag) << ": " << message
              << "\n";
}

} // namespace loopsim::debug
