/**
 * @file
 * Experiment runner: builds a core + workload from a specification,
 * runs it to completion, and extracts the measurements the paper's
 * figures are built from.
 */

#ifndef LOOPSIM_HARNESS_EXPERIMENT_HH
#define LOOPSIM_HARNESS_EXPERIMENT_HH

#include <map>
#include <string>
#include <vector>

#include "base/types.hh"
#include "sim/config.hh"
#include "sim/simulator.hh"
#include "trace/loop_trace.hh"
#include "workload/workload_set.hh"

namespace loopsim
{

/** One simulation run. */
struct RunSpec
{
    Workload workload;
    /** Machine/memory/branch configuration overlaid on the defaults. */
    Config overrides;
    /** Measured correct-path micro-ops across all threads. */
    std::uint64_t totalOps = 200000;
    /**
     * Warmup micro-ops (across all threads) run before statistics are
     * reset, mirroring the paper's warmed measurement methodology:
     * caches, predictors and DRA structures keep their state.
     */
    std::uint64_t warmupOps = 60000;
    /** Safety valve against configuration-induced livelock. */
    Cycle maxCycles = 50000000;
};

/**
 * How a fail-soft cell died. `Sim` is the PR-1 state: the simulation
 * itself reported a SimError (wedge, exhausted budget) inside a
 * healthy process. `Crash` and `Timeout` are the process-level states
 * the supervisor (harness/supervisor.hh) adds: the isolated worker
 * process died on a signal (SIGSEGV, abort, OOM kill) or overran its
 * wall-clock deadline. Figures render them as distinct `crash` /
 * `timeout` cells next to the existing `fail`.
 */
enum class FailKind : std::uint8_t
{
    None = 0,    ///< healthy result
    Sim = 1,     ///< in-process SimError after retries ("fail")
    Crash = 2,   ///< worker process died on a signal
    Timeout = 3, ///< worker process overran the wall-clock deadline
};

/** Figure-cell label: "fail" / "crash" / "timeout" ("" for None). */
const char *failKindName(FailKind kind);

/**
 * NaN tagged with a FailKind in its quiet-NaN payload, so fail-soft
 * figure cells keep their verdict through assembly (speedup ratios,
 * fraction columns) without widening every Series with a side channel.
 * The tag survives copies — never arithmetic — which is exactly how
 * assembled figure values treat failed points.
 */
double failPoint(FailKind kind);

/** Recover the tag: None for finite values, Sim for untagged NaNs. */
FailKind pointFailKind(double v);

/** Measurements extracted from a finished run. */
struct RunResult
{
    std::string workloadLabel;
    std::string pipeLabel;
    Cycle cycles = 0;
    std::uint64_t retired = 0;
    double ipc = 0.0;

    /** Fail-soft marker: the run (and its retries) never finished.
     *  All measurement fields are meaningless when set. */
    bool failed = false;
    /** Failure taxonomy (None when !failed). */
    FailKind failKind = FailKind::None;
    /** Diagnostic from the last failed attempt (empty when !failed). */
    std::string error;

    /** Figure 9: fractions of operand reads by location
     *  (preread, forward, crc, regfile, payload, miss). */
    std::vector<double> operandSourceFractions;
    /** Raw operand-source counts in the same order. */
    std::vector<double> operandSourceCounts;

    /** Figure 6: empirical CDF of the operand-availability gap,
     *  cdf[i] = P(gap <= i cycles), i in [0, 128]. */
    std::vector<double> gapCdf;

    /** Selected scalar statistics by name (core.<stat>). */
    std::map<std::string, double> scalars;

    /**
     * This run's loop-event trace, in simulation order (empty unless
     * trace collection is on — see trace::collectionActive()). The
     * campaign executor moves these into the process-wide collector in
     * plan order, keeping assembled traces deterministic at any
     * --jobs count.
     */
    std::vector<trace::LoopEvent> loopEvents;

    /**
     * Kernel self-profiling: per-component host time spent in tick()
     * (empty unless tick profiling is on — see tickProfilingActive()).
     * Wall clock, so NOT deterministic; telemetry only.
     */
    std::vector<ComponentProfile> tickProfile;

    double scalar(const std::string &name) const;
};

/**
 * Process-wide kernel self-profiling toggle. Defaults to whether the
 * LOOPSIM_PROFILE environment variable is set (latched once); the
 * bench binaries' --profile flag forces it via setTickProfiling().
 * When on, every runOnce() times its components' tick() calls and
 * reports them in RunResult::tickProfile.
 */
bool tickProfilingActive();
void setTickProfiling(bool on);

/**
 * Build the default configuration for figure reproduction: the base
 * machine of §2 with profile-mode branches.
 */
Config defaultFigureConfig();

/**
 * Apply a pipeline configuration in the paper's X_Y notation:
 * DEC-IQ = @p dec_iq, IQ-EX = @p iq_ex. The register file latency is
 * derived as iq_ex - 2 (issue + payload cycles), matching §2.1's
 * decomposition of the base 5-cycle IQ-EX path.
 */
void setPipeline(Config &cfg, unsigned dec_iq, unsigned iq_ex);

/**
 * Apply the DRA transformation of §6 for a given register file
 * latency: the base machine gets IQ-EX = rf + 2; the DRA machine gets
 * IQ-EX = 3 and DEC-IQ = max(5, rf + 2).
 */
void setDraPipeline(Config &cfg, unsigned regfile_latency);
void setBasePipeline(Config &cfg, unsigned regfile_latency);

/**
 * Run one simulation to completion.
 *
 * Throws CycleLimitError when the run exhausts spec.maxCycles and
 * WatchdogError when the integrity watchdog detects a wedge or an
 * invariant violation (see src/integrity/). fatal() is reserved for
 * malformed specifications (empty workload, zero ops).
 *
 * The effective configuration is, in increasing precedence:
 * defaultFigureConfig() < spec.overrides < the LOOPSIM_OVERLAY
 * environment variable (comma/space-separated k=v assignments) < the
 * process-wide overlay installed with setRunOverlay(). The overlays
 * exist so whole figure campaigns can be re-run under fault injection
 * or altered integrity settings without touching driver code.
 *
 * Thread safety: runOnce() is safe to call concurrently — every run
 * builds its own Core, Simulator, watchdog and statistics, and reads
 * the overlays through an internal mutex (each run takes a private
 * Config snapshot, so Config's read-tracking never crosses threads).
 * The caller must not mutate @p spec during the call; distinct calls
 * need distinct specs only in the trivial sense that each gets its
 * own copy via the campaign plan or the stack.
 */
RunResult runOnce(const RunSpec &spec);

/**
 * The configuration runOnce() would resolve for @p spec right now:
 * defaults < spec.overrides < LOOPSIM_OVERLAY < the programmatic
 * overlay, as one flat Config. The result store fingerprints this
 * (store/fingerprint.hh), so a run's cache key reflects the overlays
 * in force at plan time, not just the spec.
 */
Config effectiveRunConfig(const RunSpec &spec);

/**
 * Install / clear the process-wide configuration overlay.
 *
 * Thread-safety contract: both calls take the same mutex the run path
 * reads through, so an install is atomic with respect to concurrent
 * runOnce() calls — every run observes either the whole old overlay
 * or the whole new one, never a torn mix. Installing while a campaign
 * is in flight is still discouraged (cells before and after the swap
 * would disagree); install before launching the campaign, clear after
 * it drains.
 */
void setRunOverlay(const Config &overlay);
void clearRunOverlay();

/** How runOnceResilient() retries failed runs. */
struct RetryPolicy
{
    /** Total attempts (first try included). */
    unsigned attempts = 3;
    /** Cycle-budget growth per retry (backoff against starvation). */
    double budgetGrowth = 2.0;
    /** Added to every thread's workload seed per retry, perturbing
     *  the instruction stream away from the wedge. */
    std::uint64_t seedStride = 1;
    /** Return a failed RunResult after the last attempt instead of
     *  rethrowing the SimError. */
    bool failSoft = true;
};

/**
 * runOnce() with fail-soft retry: on SimError the run is retried with
 * a perturbed workload seed and a widened cycle budget, up to
 * policy.attempts tries. The policy defaults can be overridden per
 * run via integrity.retry.attempts / .budget_growth / .seed_stride /
 * .fail_soft configuration keys. After the last failure the result is
 * returned with failed=true (or the error rethrown if !failSoft).
 */
RunResult runOnceResilient(const RunSpec &spec,
                           const RetryPolicy &policy = {});

/**
 * runOnceResilient() against an already-resolved configuration
 * (effectiveRunConfig()), skipping overlay resolution entirely. The
 * fork-isolated supervisor uses this in the child so a freshly forked
 * worker never takes the overlay mutex another parent thread might
 * have held at fork time.
 */
RunResult runOnceResilientWith(const RunSpec &spec, const Config &resolved,
                               const RetryPolicy &policy = {});

/**
 * Relative speedup of @p test over @p baseline (IPC ratio). NaN when
 * either run is a fail-soft failure; fatal() on a healthy baseline
 * that retired nothing.
 */
double speedup(const RunResult &test, const RunResult &baseline);

} // namespace loopsim

#endif // LOOPSIM_HARNESS_EXPERIMENT_HH
