/**
 * @file
 * Crash-isolated cell execution: forked worker processes, wall-clock
 * deadlines, and backoff respawns.
 *
 * The campaign executor (harness/campaign.hh) normally runs cells on
 * threads inside one process, which means one segfaulting, aborting or
 * livelocked cell takes the whole multi-hour figure campaign with it.
 * Under isolation (--isolate / LOOPSIM_ISOLATE) each cell instead runs
 * in a fork()ed worker: the child executes runOnceResilient() against
 * a pre-resolved configuration, serializes its RunResult over a pipe
 * (the store's record codec, so doubles survive bit-exactly and a
 * truncated write is detected by CRC) and _exit()s. The parent reaps
 * every outcome:
 *
 *  - clean exit + valid record  -> the result, healthy or fail-soft
 *  - death by signal (SIGSEGV, abort, OOM kill), nonzero exit, or a
 *    garbled record             -> FailKind::Crash
 *  - wall-clock deadline overrun (--deadline-ms) -> SIGKILL + reap ->
 *    FailKind::Timeout — a *real-time* watchdog complementing the
 *    PR-1 cycle-budget watchdog, which cannot fire when the process
 *    stops ticking simulated time at all
 *
 * Crashes and timeouts are respawned with exponential backoff up to a
 * capped attempt budget, then degrade to a crash/timeout figure cell
 * next to the existing fail state. Results are byte-identical to an
 * in-process run: the child computes exactly what the thread would
 * have, and the record codec round-trips every figure-visible field.
 *
 * Fork-safety: the parent is multi-threaded (campaign workers fork
 * concurrently), so the child must not touch a lock another parent
 * thread held at fork time. The child therefore runs against the
 * configuration resolved *before* the fork (runOnceResilientWith(),
 * no overlay mutex), and glibc's atfork handlers keep malloc usable.
 * Loop-event traces only exist in real in-process executions, so the
 * campaign executor bypasses isolation while trace collection is on
 * (the same contract the result store follows); tick profiles are
 * shipped back through the pipe as a wire extension.
 */

#ifndef LOOPSIM_HARNESS_SUPERVISOR_HH
#define LOOPSIM_HARNESS_SUPERVISOR_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "harness/experiment.hh"

namespace loopsim
{

/** How the supervisor respawns crashed / timed-out workers. */
struct SupervisorPolicy
{
    /** Total spawn attempts per cell (first try included). */
    unsigned attempts = 2;
    /** Wall-clock deadline per attempt in ms; 0 = none. */
    std::uint64_t deadlineMs = 0;
    /** First respawn backoff wait in ms (doubled per retry by
     *  backoffGrowth, capped at backoffMaxMs). */
    std::uint64_t backoffMs = 100;
    double backoffGrowth = 2.0;
    std::uint64_t backoffMaxMs = 2000;

    /**
     * integrity.supervisor.attempts / .deadline_ms / .backoff_ms /
     * .backoff_growth / .backoff_max_ms, with the process-wide
     * deadline (deadlineMs()) as the .deadline_ms default — so whole
     * campaigns tune supervision through overlays, like retries.
     */
    static SupervisorPolicy fromConfig(const Config &cfg);
};

/** What supervising one cell cost, for campaign telemetry. */
struct SupervisedOutcome
{
    RunResult result;
    /** Spawn attempts actually made (1 when the first child lived). */
    unsigned attempts = 1;
    /** Worker deaths observed across attempts (signal/exit/garble). */
    unsigned crashes = 0;
    /** Deadline overruns observed across attempts. */
    unsigned timeouts = 0;
    /** Backoff sleeps taken between respawns, and their total. */
    unsigned backoffWaits = 0;
    std::uint64_t backoffWaitMs = 0;
    /** A graceful shutdown interrupted this cell: the in-flight child
     *  was reaped early and result must not be journaled or used. */
    bool interrupted = false;
};

/** @name Process-wide isolation configuration
 * Precedence: setIsolation() (the bench binaries' --isolate flag) >
 * the LOOPSIM_ISOLATE environment variable ("0"/"" = off) > off.
 * The deadline follows the same scheme with --deadline-ms /
 * LOOPSIM_DEADLINE_MS; 0 means no deadline. */
/// @{
bool isolationSupported(); ///< false on platforms without fork()
void setIsolation(bool on);
bool isolationActive();
void setDeadlineMs(std::uint64_t ms);
std::uint64_t deadlineMs();
/// @}

/**
 * Cooperative shutdown: while @p flag (owned by the caller, may be
 * null to detach) reads true, in-flight children are SIGKILLed and
 * reaped, backoff sleeps cut short, and outcomes come back with
 * interrupted set. The campaign executor points this at its
 * SIGINT/SIGTERM flag for the duration of a run.
 */
void setSupervisorStopFlag(const std::atomic<bool> *flag);

/**
 * Run one cell in a supervised forked worker. @p policy is the retry
 * policy forwarded to the in-child runOnceResilient() (per-run
 * integrity.retry.* keys still win inside the child); the supervisor's
 * own spawn policy is resolved from the cell's effective config. The
 * result's labels are always filled (from @p fallback_label when the
 * spec itself is unprintable), so crash/timeout cells render like any
 * other fail-soft cell.
 */
SupervisedOutcome runCellSupervised(const RunSpec &spec,
                                    const RetryPolicy &policy,
                                    const std::string &fallback_label);

} // namespace loopsim

#endif // LOOPSIM_HARNESS_SUPERVISOR_HH
