#include "harness/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

#include <map>

#include "base/logging.hh"
#include "core/machine_config.hh"
#include "store/fingerprint.hh"
#include "trace/loop_trace.hh"

namespace loopsim
{

namespace
{

/** Merge @p add into @p into by component name (append new names in
 *  first-seen order, so the merged profile is stable). */
void
mergeTickProfile(std::vector<ComponentProfile> &into,
                 const std::vector<ComponentProfile> &add)
{
    for (const ComponentProfile &p : add) {
        bool merged = false;
        for (ComponentProfile &q : into) {
            if (q.name == p.name) {
                q.ticks += p.ticks;
                q.seconds += p.seconds;
                merged = true;
                break;
            }
        }
        if (!merged)
            into.push_back(p);
    }
}

std::mutex telemetryMutex;
CampaignTelemetry lastTelemetry;
CampaignTelemetry totalTelemetry;

std::atomic<unsigned> explicitJobs{0};

/** LOOPSIM_JOBS, parsed once; 0 when unset or unusable. */
unsigned
envJobs()
{
    static const unsigned jobs = [] {
        const char *env = std::getenv("LOOPSIM_JOBS");
        if (!env || !*env)
            return 0u;
        char *end = nullptr;
        unsigned long v = std::strtoul(env, &end, 10);
        if (end == env || *end != '\0')
            return 0u;
        return static_cast<unsigned>(std::min(v, 1024ul));
    }();
    return jobs;
}

/**
 * Run one cell. runOnceResilient() already fail-softs SimError; this
 * additionally catches everything else (fatal() on a malformed spec,
 * a rethrown SimError under integrity.retry.fail_soft=false, ...) so
 * a worker can never unwind out of its thread and abort the pool.
 */
RunResult
runCell(const PlannedRun &cell, const RetryPolicy &policy)
{
    try {
        return runOnceResilient(cell.spec, policy);
    } catch (const std::exception &err) {
        RunResult res;
        res.failed = true;
        res.error = err.what();
        res.ipc = std::numeric_limits<double>::quiet_NaN();
        try {
            res.workloadLabel = cell.spec.workload.threads.empty()
                                    ? cell.spec.workload.label
                                    : figureLabel(cell.spec.workload);
            res.pipeLabel = MachineConfig::fromConfig(cell.spec.overrides)
                                .pipeLabel();
        } catch (const std::exception &) {
            // The spec itself is unprintable; keep whatever stuck.
        }
        if (res.workloadLabel.empty())
            res.workloadLabel = cell.label.empty() ? "?" : cell.label;
        if (res.pipeLabel.empty())
            res.pipeLabel = "?";
        return res;
    }
}

/** Per-campaign store activity: counters after minus counters before. */
store::StoreStats
storeDelta(const store::StoreStats &after, const store::StoreStats &before)
{
    store::StoreStats d;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.inserts = after.inserts - before.inserts;
    d.crcRejects = after.crcRejects - before.crcRejects;
    d.bytesRead = after.bytesRead - before.bytesRead;
    d.bytesWritten = after.bytesWritten - before.bytesWritten;
    return d;
}

} // anonymous namespace

void
CampaignTelemetry::accumulate(const CampaignTelemetry &other)
{
    jobs = std::max(jobs, other.jobs);
    runs += other.runs;
    failures += other.failures;
    simulated += other.simulated;
    memoHits += other.memoHits;
    store.accumulate(other.store);
    wallSeconds += other.wallSeconds;
    mergeTickProfile(tickProfile, other.tickProfile);
}

void
setCampaignJobs(unsigned jobs)
{
    explicitJobs.store(jobs, std::memory_order_relaxed);
}

unsigned
campaignJobs()
{
    unsigned jobs = explicitJobs.load(std::memory_order_relaxed);
    if (jobs == 0)
        jobs = envJobs();
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    return std::max(jobs, 1u);
}

std::vector<RunResult>
runCampaign(const CampaignPlan &plan, const RetryPolicy &policy,
            unsigned jobs)
{
    if (jobs == 0)
        jobs = campaignJobs();
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(plan.size(), 1)));

    // loop:exempt(wall-clock telemetry only; never feeds simulated time)
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> results(plan.size());

    // Lookup-before-simulate. Trace collection needs the loop events
    // only a real execution produces, so while it is on every cell
    // simulates and neither cache is consulted (fresh results are not
    // inserted either: their cached form would be indistinguishable
    // from a non-traced run's, but skipping keeps the traced path
    // completely inert). Otherwise each cell is answered by the
    // in-process memo, then the persistent store, and only the
    // remaining misses reach the worker pool. `pending` holds miss
    // plan indices in plan order; `dupOf[i]` marks a cell whose
    // fingerprint already appeared earlier in this plan, which waits
    // for that first occurrence instead of simulating again.
    const bool memoize = !trace::collectionActive();
    store::ResultStore *pstore = memoize ? store::processStore() : nullptr;
    const store::StoreStats storeBefore =
        pstore ? pstore->stats() : store::StoreStats{};

    constexpr std::size_t kNotDup = static_cast<std::size_t>(-1);
    std::vector<store::Fingerprint> fps(plan.size());
    std::vector<std::size_t> dupOf(plan.size(), kNotDup);
    std::vector<std::size_t> pending;
    std::size_t memoHits = 0;

    if (memoize) {
        std::map<store::Fingerprint, std::size_t> firstMiss;
        for (std::size_t i = 0; i < plan.size(); ++i) {
            fps[i] = store::fingerprintRun(plan.at(i).spec, policy);
            if (auto hit = store::processMemo().lookup(fps[i])) {
                results[i] = std::move(*hit);
                ++memoHits;
                continue;
            }
            if (pstore) {
                if (auto hit = pstore->lookup(fps[i])) {
                    store::processMemo().insert(fps[i], *hit);
                    results[i] = std::move(*hit);
                    continue;
                }
            }
            auto [it, fresh] = firstMiss.emplace(fps[i], i);
            if (!fresh) {
                dupOf[i] = it->second;
                ++memoHits;
                continue;
            }
            pending.push_back(i);
        }
    } else {
        pending.resize(plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i)
            pending[i] = i;
    }

    const unsigned workers_wanted = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(
                                        pending.size(), 1)));
    if (workers_wanted <= 1) {
        for (std::size_t i : pending)
            results[i] = runCell(plan.at(i), policy);
    } else {
        // Work-stealing by atomic cursor: each worker claims the next
        // unclaimed pending entry and writes its result slot. Slots
        // are disjoint, so results need no lock; ordering is by plan
        // index regardless of which worker finishes when.
        std::atomic<std::size_t> cursor{0};
        {
            std::vector<std::jthread> workers;
            workers.reserve(workers_wanted);
            for (unsigned t = 0; t < workers_wanted; ++t) {
                workers.emplace_back([&] {
                    for (;;) {
                        std::size_t k = cursor.fetch_add(
                            1, std::memory_order_relaxed);
                        if (k >= pending.size())
                            return;
                        std::size_t i = pending[k];
                        results[i] = runCell(plan.at(i), policy);
                    }
                });
            }
        } // jthread joins here
    }

    if (memoize) {
        // Publish fresh results: every simulated cell enters the memo
        // (failures included — a wedge is deterministic within this
        // process), but only healthy results are persisted, so a
        // future epoch or widened budget gets to retry failures.
        for (std::size_t i : pending) {
            store::processMemo().insert(fps[i], results[i]);
            if (pstore && !results[i].failed)
                pstore->insert(fps[i], results[i]);
        }
        // Duplicate plan points copy through the memo so they carry
        // exactly what a memo hit would (no tick profile: the host
        // time was already attributed to the first occurrence).
        for (std::size_t i = 0; i < plan.size(); ++i) {
            if (dupOf[i] == kNotDup)
                continue;
            if (auto hit = store::processMemo().lookup(fps[i]))
                results[i] = std::move(*hit);
            else
                results[i] = results[dupOf[i]];
        }
    }

    std::chrono::duration<double> wall =
        // loop:exempt(wall-clock telemetry only; never feeds simulated time)
        std::chrono::steady_clock::now() - start;

    // Feed the process-wide trace collector strictly in plan order,
    // from this (single) thread, after the pool has drained: the
    // assembled trace is therefore byte-identical at any worker
    // count, exactly like the figure outputs.
    if (trace::collectionActive()) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            trace::RunTrace rt;
            rt.label = !plan.at(i).label.empty()
                           ? plan.at(i).label
                           : results[i].workloadLabel + " " +
                                 results[i].pipeLabel;
            rt.events = std::move(results[i].loopEvents);
            trace::collectRun(std::move(rt));
        }
    }

    CampaignTelemetry t;
    t.jobs = jobs;
    t.runs = plan.size();
    t.simulated = pending.size();
    t.memoHits = memoHits;
    if (pstore)
        t.store = storeDelta(pstore->stats(), storeBefore);
    t.wallSeconds = wall.count();
    for (const RunResult &r : results) {
        t.failures += r.failed ? 1 : 0;
        mergeTickProfile(t.tickProfile, r.tickProfile);
    }

    {
        std::lock_guard<std::mutex> lock(telemetryMutex);
        lastTelemetry = t;
        totalTelemetry.accumulate(t);
    }
    return results;
}

CampaignTelemetry
lastCampaignTelemetry()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    return lastTelemetry;
}

CampaignTelemetry
campaignTotals()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    return totalTelemetry;
}

void
resetCampaignTotals()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    lastTelemetry = CampaignTelemetry{};
    totalTelemetry = CampaignTelemetry{};
}

} // namespace loopsim
