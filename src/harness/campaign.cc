#include "harness/campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include <map>

#include "base/annotations.hh"
#include "base/logging.hh"
#include "core/machine_config.hh"
#include "harness/supervisor.hh"
#include "serve/client.hh"
#include "store/fingerprint.hh"
#include "store/journal.hh"
#include "trace/loop_trace.hh"

namespace loopsim
{

namespace
{

/** Merge @p add into @p into by component name (append new names in
 *  first-seen order, so the merged profile is stable). */
void
mergeTickProfile(std::vector<ComponentProfile> &into,
                 const std::vector<ComponentProfile> &add)
{
    for (const ComponentProfile &p : add) {
        bool merged = false;
        for (ComponentProfile &q : into) {
            if (q.name == p.name) {
                q.ticks += p.ticks;
                q.measuredTicks += p.measuredTicks;
                q.seconds += p.seconds;
                q.scanTicks += p.scanTicks;
                merged = true;
                break;
            }
        }
        if (!merged)
            into.push_back(p);
    }
}

std::mutex telemetryMutex;
LOOPSIM_CAMPAIGN_GUARDED("telemetryMutex")
CampaignTelemetry lastTelemetry;
LOOPSIM_CAMPAIGN_GUARDED("telemetryMutex")
CampaignTelemetry totalTelemetry;

std::atomic<unsigned> explicitJobs{0};

std::mutex flushHookMutex;
LOOPSIM_CAMPAIGN_GUARDED("flushHookMutex")
std::function<void()> interruptFlushHook;

/** Graceful-shutdown state, set from the signal handler. */
std::atomic<bool> shutdownRequested{false};
std::atomic<int> shutdownSignal{0};

/** Async-signal-safe: only atomic stores. */
void
onShutdownSignal(int sig)
{
    shutdownSignal.store(sig, std::memory_order_relaxed);
    shutdownRequested.store(true, std::memory_order_release);
}

/**
 * Installs the SIGINT/SIGTERM drain handlers for one campaign and
 * restores the previous dispositions on scope exit. SA_RESETHAND so
 * an impatient second signal gets the default (immediate) action.
 */
class ShutdownGuard
{
  public:
    ShutdownGuard()
    {
        shutdownRequested.store(false, std::memory_order_release);
        struct sigaction sa = {};
        sa.sa_handler = onShutdownSignal;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESETHAND;
        ::sigaction(SIGINT, &sa, &oldInt);
        ::sigaction(SIGTERM, &sa, &oldTerm);
    }

    ~ShutdownGuard() { restore(); }

    void
    restore()
    {
        if (restored)
            return;
        restored = true;
        ::sigaction(SIGINT, &oldInt, nullptr);
        ::sigaction(SIGTERM, &oldTerm, nullptr);
    }

  private:
    struct sigaction oldInt = {};
    struct sigaction oldTerm = {};
    bool restored = false;
};

/** LOOPSIM_JOBS, parsed once; 0 when unset or unusable. */
unsigned
envJobs()
{
    static const unsigned jobs = [] {
        const char *env = std::getenv("LOOPSIM_JOBS");
        if (!env || !*env)
            return 0u;
        bool ok = false;
        const unsigned v = parseJobsSpec(env, ok);
        return ok ? v : 0u;
    }();
    return jobs;
}

/**
 * Run one cell. runOnceResilient() already fail-softs SimError; this
 * additionally catches everything else (fatal() on a malformed spec,
 * a rethrown SimError under integrity.retry.fail_soft=false, ...) so
 * a worker can never unwind out of its thread and abort the pool.
 */
RunResult
failSoftCell(const PlannedRun &cell, const char *what)
{
    RunResult res;
    res.failed = true;
    res.failKind = FailKind::Sim;
    res.error = what;
    res.ipc = failPoint(FailKind::Sim);
    try {
        res.workloadLabel = cell.spec.workload.threads.empty()
                                ? cell.spec.workload.label
                                : figureLabel(cell.spec.workload);
        res.pipeLabel = MachineConfig::fromConfig(cell.spec.overrides)
                            .pipeLabel();
    } catch (const std::exception &) {
        // The spec itself is unprintable; keep whatever stuck.
    }
    if (res.workloadLabel.empty())
        res.workloadLabel = cell.label.empty() ? "?" : cell.label;
    if (res.pipeLabel.empty())
        res.pipeLabel = "?";
    return res;
}

RunResult
runCell(const PlannedRun &cell, const Config &resolved,
        const RetryPolicy &policy)
{
    try {
        return runOnceResilientWith(cell.spec, resolved, policy);
    } catch (const std::exception &err) {
        return failSoftCell(cell, err.what());
    }
}

/** Thread warn() prefix: "[cell 7: fig4 swim 7_7] ". */
std::string
cellTag(std::size_t index, const PlannedRun &cell)
{
    std::string tag = "[cell " + std::to_string(index);
    if (!cell.label.empty())
        tag += ": " + cell.label;
    else if (!cell.spec.workload.label.empty())
        tag += ": " + cell.spec.workload.label;
    return tag + "] ";
}

/** Atomic supervision counters shared by the pool workers. */
struct SupervisionCounters
{
    std::atomic<std::size_t> isolatedRuns{0};
    std::atomic<std::size_t> crashes{0};
    std::atomic<std::size_t> timeouts{0};
    std::atomic<std::size_t> spawnRetries{0};
    std::atomic<std::size_t> backoffWaits{0};
    std::atomic<std::uint64_t> backoffWaitMs{0};
};

void
loadSupervisionCounters(CampaignTelemetry &t,
                        const SupervisionCounters &c)
{
    t.isolatedRuns = c.isolatedRuns.load(std::memory_order_relaxed);
    t.crashes = c.crashes.load(std::memory_order_relaxed);
    t.timeouts = c.timeouts.load(std::memory_order_relaxed);
    t.spawnRetries = c.spawnRetries.load(std::memory_order_relaxed);
    t.backoffWaits = c.backoffWaits.load(std::memory_order_relaxed);
    t.backoffWaitMs = c.backoffWaitMs.load(std::memory_order_relaxed);
}

store::Fingerprint
planFingerprintFromCells(const std::vector<store::Fingerprint> &fps)
{
    store::Hasher h;
    h.u64("plan.cells", fps.size());
    for (std::size_t i = 0; i < fps.size(); ++i) {
        h.u64("cell.index", i);
        h.u64("cell.fp.hi", fps[i].hi);
        h.u64("cell.fp.lo", fps[i].lo);
    }
    return h.digest();
}

/** Per-campaign store activity: counters after minus counters before. */
store::StoreStats
storeDelta(const store::StoreStats &after, const store::StoreStats &before)
{
    store::StoreStats d;
    d.hits = after.hits - before.hits;
    d.misses = after.misses - before.misses;
    d.inserts = after.inserts - before.inserts;
    d.crcRejects = after.crcRejects - before.crcRejects;
    d.bytesRead = after.bytesRead - before.bytesRead;
    d.bytesWritten = after.bytesWritten - before.bytesWritten;
    return d;
}

} // anonymous namespace

void
CampaignTelemetry::accumulate(const CampaignTelemetry &other)
{
    jobs = std::max(jobs, other.jobs);
    hostCpus = std::max(hostCpus, other.hostCpus);
    runs += other.runs;
    failures += other.failures;
    simulated += other.simulated;
    memoHits += other.memoHits;
    resumed += other.resumed;
    isolatedRuns += other.isolatedRuns;
    crashes += other.crashes;
    timeouts += other.timeouts;
    spawnRetries += other.spawnRetries;
    backoffWaits += other.backoffWaits;
    backoffWaitMs += other.backoffWaitMs;
    interrupted = interrupted || other.interrupted;
    store.accumulate(other.store);
    wallSeconds += other.wallSeconds;
    mergeTickProfile(tickProfile, other.tickProfile);
    for (const WorkerTelemetry &w : other.workers) {
        if (w.id >= workers.size())
            workers.resize(w.id + 1);
        WorkerTelemetry &mine = workers[w.id];
        mine.id = w.id;
        mine.cells += w.cells;
        mine.busySeconds += w.busySeconds;
        mine.claimWaitSeconds += w.claimWaitSeconds;
        mine.idleSeconds += w.idleSeconds;
    }
}

void
setCampaignJobs(unsigned jobs)
{
    explicitJobs.store(jobs, std::memory_order_relaxed);
}

unsigned
hostCpus()
{
    return std::max(std::thread::hardware_concurrency(), 1u);
}

unsigned
parseJobsSpec(const std::string &spec, bool &ok)
{
    ok = false;
    if (spec.empty())
        return 0;
    if (spec == "auto") {
        ok = true;
        return hostCpus();
    }
    char *end = nullptr;
    unsigned long v = std::strtoul(spec.c_str(), &end, 10);
    if (end == spec.c_str() || *end != '\0')
        return 0;
    ok = true;
    return static_cast<unsigned>(std::min(v, 1024ul));
}

unsigned
campaignJobs()
{
    unsigned jobs = explicitJobs.load(std::memory_order_relaxed);
    if (jobs == 0)
        jobs = envJobs();
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    return std::max(jobs, 1u);
}

std::vector<RunResult>
runCampaign(const CampaignPlan &plan, const RetryPolicy &policy,
            unsigned jobs)
{
    // Remote delegation (--server / LOOPSIM_SERVER): ship the plan to
    // a loopsim-serve daemon instead of simulating here. Trace
    // collection opts out (loop events never cross the wire), and any
    // failure falls back to local execution so a dead server costs a
    // warning, not the figure.
    if (!plan.empty() && serve::serveConfigured() &&
        !trace::collectionActive()) {
        std::vector<RunResult> remote;
        std::string err;
        if (serve::runCampaignRemote(plan, policy, remote, err))
            return remote;
        warn("campaign: remote submission to ", serve::serveEndpoint(),
             " failed (", err, "); falling back to local execution");
    }

    if (jobs == 0)
        jobs = campaignJobs();
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(plan.size(), 1)));

    // Oversubscription is the usual answer to "why doesn't --jobs N
    // scale": workers beyond the hardware thread count timeslice one
    // another, so throughput stays flat while per-worker busy time
    // still sums past wall clock. Say so once, up front, instead of
    // leaving the flat curve to look like executor contention.
    const unsigned host_cpus = std::thread::hardware_concurrency();
    if (host_cpus > 0 && jobs > host_cpus) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            warn("campaign --jobs ", jobs, " exceeds the ", host_cpus,
                 " hardware thread", host_cpus == 1 ? "" : "s",
                 " on this host; extra workers timeslice and add no "
                 "throughput (use --jobs auto for the host width)");
        }
    }

    // loop:exempt(wall-clock telemetry only; never feeds simulated time)
    auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> results(plan.size());

    // Lookup-before-simulate. Trace collection needs the loop events
    // only a real execution produces, so while it is on every cell
    // simulates and neither cache is consulted (fresh results are not
    // inserted either: their cached form would be indistinguishable
    // from a non-traced run's, but skipping keeps the traced path
    // completely inert). Otherwise each cell is answered by the
    // in-process memo, then the persistent store, and only the
    // remaining misses reach the worker pool. `pending` holds miss
    // plan indices in plan order; `dupOf[i]` marks a cell whose
    // fingerprint already appeared earlier in this plan, which waits
    // for that first occurrence instead of simulating again.
    const bool memoize = !trace::collectionActive();
    store::ResultStore *pstore = memoize ? store::processStore() : nullptr;
    const store::StoreStats storeBefore =
        pstore ? pstore->stats() : store::StoreStats{};

    // Isolation and the journal ride the same gate as the caches:
    // trace collection needs real in-process executions, and a traced
    // campaign is a diagnostic run, not one worth resuming.
    const bool isolate = memoize && isolationActive();
    if (!memoize && isolationActive()) {
        warn("trace collection forces in-process execution; "
             "--isolate is bypassed for this campaign");
    }

    constexpr std::size_t kNotDup = static_cast<std::size_t>(-1);
    std::vector<store::Fingerprint> fps(plan.size());
    std::vector<std::size_t> dupOf(plan.size(), kNotDup);
    std::vector<std::size_t> pending;
    std::size_t memoHits = 0;
    std::size_t resumed = 0;

    std::unique_ptr<store::CampaignJournal> journal;
    if (memoize && store::journalConfigured() && !plan.empty()) {
        for (std::size_t i = 0; i < plan.size(); ++i)
            fps[i] = store::fingerprintRun(plan.at(i).spec, policy);
        journal = std::make_unique<store::CampaignJournal>(
            store::journalPath(), planFingerprintFromCells(fps),
            plan.size());
        if (!journal->ok())
            journal.reset();
    }

    if (memoize) {
        std::map<store::Fingerprint, std::size_t> firstMiss;
        for (std::size_t i = 0; i < plan.size(); ++i) {
            if (!journal)
                fps[i] = store::fingerprintRun(plan.at(i).spec, policy);
            // Journal replay outranks the caches: it carries recorded
            // fail/crash/timeout verdicts, and resuming must not send
            // a known-poison cell back to crash another worker.
            if (journal) {
                auto it = journal->replayed().find(fps[i]);
                if (it != journal->replayed().end()) {
                    results[i] = it->second;
                    store::processMemo().insert(fps[i], it->second);
                    ++resumed;
                    continue;
                }
            }
            if (auto hit = store::processMemo().lookup(fps[i])) {
                results[i] = std::move(*hit);
                ++memoHits;
                continue;
            }
            if (pstore) {
                if (auto hit = pstore->lookup(fps[i])) {
                    store::processMemo().insert(fps[i], *hit);
                    results[i] = std::move(*hit);
                    continue;
                }
            }
            auto [it, fresh] = firstMiss.emplace(fps[i], i);
            if (!fresh) {
                dupOf[i] = it->second;
                ++memoHits;
                continue;
            }
            pending.push_back(i);
        }
    } else {
        pending.resize(plan.size());
        for (std::size_t i = 0; i < plan.size(); ++i)
            pending[i] = i;
    }

    // Resolve each miss's effective configuration once, up front, on
    // this thread. Workers then run against the pre-resolved Config
    // through runOnceResilientWith(), so the pool never serializes on
    // the process-wide overlay mutex and never rebuilds the
    // string-map-heavy figure defaults per cell (or per retry
    // attempt) — the first measurable contention point of the --jobs
    // scaling investigation: with short cells, every worker re-took
    // the overlay lock and re-built the default Config each time.
    // This also pins the whole campaign to the overlays in force at
    // plan time, matching what the fingerprints hashed. The isolated
    // path resolves per cell in the supervisor instead (the child
    // must run against the pre-fork snapshot), so it skips this.
    std::vector<Config> resolved(isolate ? 0 : plan.size());
    if (!isolate) {
        for (std::size_t i : pending)
            resolved[i] = effectiveRunConfig(plan.at(i).spec);
    }

    // Graceful shutdown scope: SIGINT/SIGTERM flips the drain flag,
    // workers stop claiming cells, in-flight forked children are
    // SIGKILLed and reaped by their supervising worker. `done[i]`
    // marks slots whose result is real — an interrupted drain must
    // not journal or publish a default-constructed RunResult.
    ShutdownGuard shutdownGuard;
    setSupervisorStopFlag(&shutdownRequested);
    std::vector<std::atomic<bool>> done(plan.size());
    SupervisionCounters counters;

    auto executeOne = [&](std::size_t i) {
        DiagContext diag(cellTag(i, plan.at(i)));
        if (isolate) {
            SupervisedOutcome so;
            try {
                so = runCellSupervised(plan.at(i).spec, policy,
                                       plan.at(i).label);
            } catch (const std::exception &err) {
                so.result = failSoftCell(plan.at(i), err.what());
            }
            counters.isolatedRuns.fetch_add(1,
                                            std::memory_order_relaxed);
            counters.crashes.fetch_add(so.crashes,
                                       std::memory_order_relaxed);
            counters.timeouts.fetch_add(so.timeouts,
                                        std::memory_order_relaxed);
            counters.spawnRetries.fetch_add(
                so.attempts - 1, std::memory_order_relaxed);
            counters.backoffWaits.fetch_add(so.backoffWaits,
                                            std::memory_order_relaxed);
            counters.backoffWaitMs.fetch_add(so.backoffWaitMs,
                                             std::memory_order_relaxed);
            if (so.interrupted)
                return;
            results[i] = std::move(so.result);
        } else {
            results[i] = runCell(plan.at(i), resolved[i], policy);
        }
        // Journal as cells finish, not after the pool drains: a
        // killed campaign then loses at most the entries in flight.
        if (journal)
            journal->append(fps[i], results[i]);
        done[i].store(true, std::memory_order_release);
    };

    const unsigned workers_wanted = static_cast<unsigned>(
        std::min<std::size_t>(jobs, std::max<std::size_t>(
                                        pending.size(), 1)));
    // Per-worker busy/claim-wait/idle accounting (wall clock,
    // telemetry only). Each slot is written by exactly one worker.
    std::vector<WorkerTelemetry> workerStats(workers_wanted);
    auto seconds = [](std::chrono::steady_clock::duration d) {
        return std::chrono::duration<double>(d).count();
    };
    if (workers_wanted <= 1) {
        WorkerTelemetry &w = workerStats[0];
        // loop:exempt(wall-clock telemetry only)
        const auto born = std::chrono::steady_clock::now();
        for (std::size_t i : pending) {
            if (shutdownRequested.load(std::memory_order_acquire))
                break;
            // loop:exempt(wall-clock telemetry only)
            const auto t0 = std::chrono::steady_clock::now();
            executeOne(i);
            // loop:exempt(wall-clock telemetry only)
            w.busySeconds += seconds(std::chrono::steady_clock::now() - t0);
            ++w.cells;
        }
        // loop:exempt(wall-clock telemetry only)
        w.idleSeconds = seconds(std::chrono::steady_clock::now() - born) -
                        w.busySeconds;
    } else {
        // Work-stealing by atomic cursor: each worker claims the next
        // unclaimed pending entry and writes its result slot. Slots
        // are disjoint, so results need no lock; ordering is by plan
        // index regardless of which worker finishes when.
        std::atomic<std::size_t> cursor{0};
        {
            std::vector<std::jthread> workers;
            workers.reserve(workers_wanted);
            for (unsigned t = 0; t < workers_wanted; ++t) {
                workers.emplace_back([&, t] {
                    WorkerTelemetry &w = workerStats[t];
                    w.id = t;
                    // loop:exempt(wall-clock telemetry only)
                    const auto born = std::chrono::steady_clock::now();
                    for (;;) {
                        if (shutdownRequested.load(
                                std::memory_order_acquire))
                            break;
                        const auto claim0 =
                            // loop:exempt(wall-clock telemetry only)
                            std::chrono::steady_clock::now();
                        std::size_t k = cursor.fetch_add(
                            1, std::memory_order_relaxed);
                        const auto claim1 =
                            // loop:exempt(wall-clock telemetry only)
                            std::chrono::steady_clock::now();
                        w.claimWaitSeconds += seconds(claim1 - claim0);
                        if (k >= pending.size())
                            break;
                        executeOne(pending[k]);
                        w.busySeconds += seconds(
                            // loop:exempt(wall-clock telemetry only)
                            std::chrono::steady_clock::now() - claim1);
                        ++w.cells;
                    }
                    w.idleSeconds =
                        // loop:exempt(wall-clock telemetry only)
                        seconds(std::chrono::steady_clock::now() - born) -
                        w.busySeconds - w.claimWaitSeconds;
                });
            }
        } // jthread joins here
    }
    setSupervisorStopFlag(nullptr);
    const bool interrupted =
        shutdownRequested.load(std::memory_order_acquire);

    if (memoize) {
        // Publish fresh results: every simulated cell enters the memo
        // (failures included — a wedge is deterministic within this
        // process), but only healthy results are persisted, so a
        // future epoch or widened budget gets to retry failures.
        for (std::size_t i : pending) {
            if (!done[i].load(std::memory_order_acquire))
                continue;
            store::processMemo().insert(fps[i], results[i]);
            if (pstore && !results[i].failed)
                pstore->insert(fps[i], results[i]);
        }
        // Duplicate plan points copy through the memo so they carry
        // exactly what a memo hit would (no tick profile: the host
        // time was already attributed to the first occurrence).
        for (std::size_t i = 0; i < plan.size(); ++i) {
            if (dupOf[i] == kNotDup ||
                !done[dupOf[i]].load(std::memory_order_acquire))
                continue;
            if (auto hit = store::processMemo().lookup(fps[i]))
                results[i] = std::move(*hit);
            else
                results[i] = results[dupOf[i]];
        }
    }

    if (interrupted) {
        // Drained: record what completed, flush, and exit with the
        // conventional 128+signal status. The journal already holds
        // every finished cell, so the next invocation resumes.
        std::size_t completed = 0;
        CampaignTelemetry t;
        t.jobs = jobs;
        t.runs = plan.size();
        t.memoHits = memoHits;
        t.resumed = resumed;
        t.interrupted = true;
        loadSupervisionCounters(t, counters);
        for (std::size_t i : pending) {
            if (!done[i].load(std::memory_order_acquire))
                continue;
            ++completed;
            t.failures += results[i].failed ? 1 : 0;
            mergeTickProfile(t.tickProfile, results[i].tickProfile);
        }
        t.simulated = completed;
        t.workers = workerStats;
        if (pstore)
            t.store = storeDelta(pstore->stats(), storeBefore);
        auto drained =
            // loop:exempt(wall-clock telemetry only)
            std::chrono::steady_clock::now();
        t.wallSeconds =
            std::chrono::duration<double>(drained - start).count();
        std::function<void()> flush;
        {
            std::lock_guard<std::mutex> lock(telemetryMutex);
            lastTelemetry = t;
            totalTelemetry.accumulate(t);
        }
        {
            std::lock_guard<std::mutex> lock(flushHookMutex);
            flush = interruptFlushHook;
        }
        if (flush)
            flush();
        const int sig = shutdownSignal.load(std::memory_order_relaxed);
        warn("campaign interrupted by ",
             sig == SIGINT ? "SIGINT" : "SIGTERM", ": ", completed,
             " of ", pending.size(), " pending cells finished",
             journal ? " and were journaled for resume" : "",
             "; exiting ", 128 + sig);
        std::exit(128 + sig); // NOLINT(concurrency-mt-unsafe)
    }

    std::chrono::duration<double> wall =
        // loop:exempt(wall-clock telemetry only; never feeds simulated time)
        std::chrono::steady_clock::now() - start;

    // Feed the process-wide trace collector strictly in plan order,
    // from this (single) thread, after the pool has drained: the
    // assembled trace is therefore byte-identical at any worker
    // count, exactly like the figure outputs.
    if (trace::collectionActive()) {
        for (std::size_t i = 0; i < results.size(); ++i) {
            trace::RunTrace rt;
            rt.label = !plan.at(i).label.empty()
                           ? plan.at(i).label
                           : results[i].workloadLabel + " " +
                                 results[i].pipeLabel;
            rt.events = std::move(results[i].loopEvents);
            trace::collectRun(std::move(rt));
        }
    }

    CampaignTelemetry t;
    t.jobs = jobs;
    t.hostCpus = host_cpus;
    t.runs = plan.size();
    t.simulated = pending.size();
    t.memoHits = memoHits;
    t.resumed = resumed;
    loadSupervisionCounters(t, counters);
    t.workers = std::move(workerStats);
    if (pstore)
        t.store = storeDelta(pstore->stats(), storeBefore);
    t.wallSeconds = wall.count();
    for (const RunResult &r : results) {
        t.failures += r.failed ? 1 : 0;
        mergeTickProfile(t.tickProfile, r.tickProfile);
    }

    {
        std::lock_guard<std::mutex> lock(telemetryMutex);
        lastTelemetry = t;
        totalTelemetry.accumulate(t);
    }
    return results;
}

store::Fingerprint
fingerprintPlan(const CampaignPlan &plan, const RetryPolicy &policy)
{
    std::vector<store::Fingerprint> fps;
    fps.reserve(plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i)
        fps.push_back(store::fingerprintRun(plan.at(i).spec, policy));
    return planFingerprintFromCells(fps);
}

void
setCampaignInterruptFlush(std::function<void()> hook)
{
    std::lock_guard<std::mutex> lock(flushHookMutex);
    interruptFlushHook = std::move(hook);
}

void
recordCampaignTelemetry(const CampaignTelemetry &t)
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    lastTelemetry = t;
    totalTelemetry.accumulate(t);
}

CampaignTelemetry
lastCampaignTelemetry()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    return lastTelemetry;
}

CampaignTelemetry
campaignTotals()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    return totalTelemetry;
}

void
resetCampaignTotals()
{
    std::lock_guard<std::mutex> lock(telemetryMutex);
    lastTelemetry = CampaignTelemetry{};
    totalTelemetry = CampaignTelemetry{};
}

} // namespace loopsim
