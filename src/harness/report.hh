/**
 * @file
 * Text rendering of figure data: fixed-width tables (the paper's
 * "rows/series") plus optional CSV output for plotting.
 */

#ifndef LOOPSIM_HARNESS_REPORT_HH
#define LOOPSIM_HARNESS_REPORT_HH

#include <ostream>

#include "harness/figures.hh"

namespace loopsim
{

/** How values are rendered in printFigure(). */
enum class ValueFormat
{
    Percent, ///< 0.954 -> "95.4%"
    Ratio,   ///< 0.954 -> "0.954"
};

/** Render @p fig as an aligned table. */
void printFigure(std::ostream &os, const FigureData &fig,
                 ValueFormat format = ValueFormat::Percent);

/** Render @p fig as CSV (header row then one row per label). */
void printCsv(std::ostream &os, const FigureData &fig);

} // namespace loopsim

#endif // LOOPSIM_HARNESS_REPORT_HH
