#include "harness/report.hh"

#include <algorithm>
#include <cmath>

#include "base/str.hh"
#include "harness/experiment.hh"

namespace loopsim
{

void
printFigure(std::ostream &os, const FigureData &fig, ValueFormat format)
{
    os << fig.title << "\n";
    if (!fig.valueUnit.empty())
        os << "(values: " << fig.valueUnit << ")\n";

    std::size_t label_w = 9;
    for (const auto &l : fig.rowLabels)
        label_w = std::max(label_w, l.size() + 1);

    std::size_t col_w = 9;
    for (const auto &c : fig.columns)
        col_w = std::max(col_w, c.label.size() + 2);

    os << padRight("", label_w);
    for (const auto &c : fig.columns)
        os << padLeft(c.label, col_w);
    os << "\n";

    for (std::size_t row = 0; row < fig.rowLabels.size(); ++row) {
        os << padRight(fig.rowLabels[row], label_w);
        for (const auto &c : fig.columns) {
            std::string cell = "-";
            if (row < c.values.size()) {
                // Fail-soft runs leave tagged NaN points; render the
                // verdict ("fail" / "crash" / "timeout") instead of
                // printing "nan".
                if (!std::isfinite(c.values[row]))
                    cell = failKindName(pointFailKind(c.values[row]));
                else if (format == ValueFormat::Percent)
                    cell = formatPercent(c.values[row], 1);
                else
                    cell = formatDouble(c.values[row], 3);
            }
            os << padLeft(cell, col_w);
        }
        os << "\n";
    }
    if (!fig.failures.empty()) {
        os << "failed points (after retries):\n";
        for (const auto &f : fig.failures)
            os << "  " << f << "\n";
    }
    os << "\n";
}

void
printCsv(std::ostream &os, const FigureData &fig)
{
    os << "label";
    for (const auto &c : fig.columns)
        os << "," << c.label;
    os << "\n";
    for (std::size_t row = 0; row < fig.rowLabels.size(); ++row) {
        os << fig.rowLabels[row];
        for (const auto &c : fig.columns) {
            os << ",";
            // Failed (NaN) points become empty CSV cells.
            if (row < c.values.size() && std::isfinite(c.values[row]))
                os << formatDouble(c.values[row], 6);
        }
        os << "\n";
    }
}

} // namespace loopsim
