#include "harness/experiment.hh"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "base/annotations.hh"
#include "base/logging.hh"
#include "base/str.hh"
#include "core/core.hh"
#include "core/machine_config.hh"
#include "integrity/fault_injector.hh"
#include "integrity/sim_error.hh"
#include "integrity/watchdog.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace loopsim
{

namespace
{

/**
 * Process-wide overlay installed by setRunOverlay(). Guarded by a
 * mutex because concurrent campaign workers snapshot it per run;
 * readers take a copy so Config's mutable read-tracking members are
 * never shared across threads.
 */
std::mutex &
overlayMutex()
{
    static std::mutex m;
    return m;
}

Config &
runOverlayLocked()
{
    LOOPSIM_CAMPAIGN_GUARDED("overlayMutex(); workers take snapshots")
    static Config overlay;
    return overlay;
}

Config
runOverlaySnapshot()
{
    std::lock_guard<std::mutex> lock(overlayMutex());
    return runOverlayLocked();
}

/** Parse LOOPSIM_OVERLAY ("a.b=c,d.e=f" or space-separated) once. */
const Config &
envOverlay()
{
    static const Config cfg = [] {
        Config c;
        const char *env = std::getenv("LOOPSIM_OVERLAY");
        if (!env)
            return c;
        for (const std::string &chunk : split(env, ',')) {
            for (const std::string &assign : split(chunk, ' ')) {
                if (!assign.empty())
                    c.parseAssignment(assign);
            }
        }
        return c;
    }();
    return cfg;
}

/** Defaults < spec overrides < env overlay < programmatic overlay. */
Config
effectiveConfig(const RunSpec &spec)
{
    Config cfg = defaultFigureConfig();
    cfg.overlay(spec.overrides);
    cfg.overlay(envOverlay());
    cfg.overlay(runOverlaySnapshot());
    return cfg;
}

/** Kernel self-profiling gate; defaults from LOOPSIM_PROFILE. */
std::atomic<bool> profilingFlag{false};
std::atomic<bool> profilingInitialized{false};

} // anonymous namespace

bool
tickProfilingActive()
{
    if (!profilingInitialized.load(std::memory_order_acquire)) {
        // Benign race: both racers compute the same env-derived value.
        const char *env = std::getenv("LOOPSIM_PROFILE"); // NOLINT(concurrency-mt-unsafe)
        profilingFlag.store(env != nullptr && *env != '\0',
                            std::memory_order_relaxed);
        profilingInitialized.store(true, std::memory_order_release);
    }
    return profilingFlag.load(std::memory_order_relaxed);
}

void
setTickProfiling(bool on)
{
    profilingInitialized.store(true, std::memory_order_release);
    profilingFlag.store(on, std::memory_order_relaxed);
}

void
setRunOverlay(const Config &overlay)
{
    std::lock_guard<std::mutex> lock(overlayMutex());
    runOverlayLocked() = overlay;
}

void
clearRunOverlay()
{
    std::lock_guard<std::mutex> lock(overlayMutex());
    runOverlayLocked() = Config{};
}

Config
effectiveRunConfig(const RunSpec &spec)
{
    return effectiveConfig(spec);
}

double
RunResult::scalar(const std::string &name) const
{
    auto it = scalars.find(name);
    fatal_if(it == scalars.end(), "no such scalar in RunResult: ", name);
    return it->second;
}

const char *
failKindName(FailKind kind)
{
    switch (kind) {
      case FailKind::None: return "";
      case FailKind::Sim: return "fail";
      case FailKind::Crash: return "crash";
      case FailKind::Timeout: return "timeout";
    }
    return "fail";
}

namespace
{
/** Quiet-NaN bit base; the low bits carry the FailKind tag. */
constexpr std::uint64_t kQuietNanBits = 0x7ff8000000000000ull;
} // anonymous namespace

double
failPoint(FailKind kind)
{
    return std::bit_cast<double>(kQuietNanBits |
                                 static_cast<std::uint64_t>(kind));
}

FailKind
pointFailKind(double v)
{
    if (std::isfinite(v))
        return FailKind::None;
    switch (std::bit_cast<std::uint64_t>(v) & 0x7u) {
      case static_cast<std::uint64_t>(FailKind::Crash):
        return FailKind::Crash;
      case static_cast<std::uint64_t>(FailKind::Timeout):
        return FailKind::Timeout;
      default:
        // Untagged NaNs (std::nan(""), arithmetic on a failed point)
        // degrade to the generic in-process failure.
        return FailKind::Sim;
    }
}

Config
defaultFigureConfig()
{
    Config cfg;
    // The paper's base machine (§2); all values are also the
    // MachineConfig defaults, set explicitly here for documentation.
    cfg.setUint("core.width", 8);
    cfg.setUint("core.iq.entries", 128);
    cfg.setUint("core.rob.entries", 256);
    cfg.setUint("core.clusters", 8);
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", 5);
    cfg.setUint("core.regfile_latency", 3);
    cfg.setUint("core.fwd_depth", 9);
    cfg.setUint("core.load_feedback", 3);
    cfg.set("core.load_recovery", "reissue");
    cfg.set("branch.mode", "profile");
    return cfg;
}

void
setPipeline(Config &cfg, unsigned dec_iq, unsigned iq_ex)
{
    fatal_if(iq_ex < 3, "IQ-EX latency must be >= 3 for a sweep point");
    cfg.setUint("core.dec_iq", dec_iq);
    cfg.setUint("core.iq_ex", iq_ex);
    cfg.setUint("core.regfile_latency", iq_ex - 2);
}

void
setBasePipeline(Config &cfg, unsigned regfile_latency)
{
    cfg.setBool("dra.enable", false);
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", regfile_latency + 2);
    cfg.setUint("core.regfile_latency", regfile_latency);
}

void
setDraPipeline(Config &cfg, unsigned regfile_latency)
{
    cfg.setBool("dra.enable", true);
    // MachineConfig::applyDra() derives IQ-EX = 3 and
    // DEC-IQ = max(5, rf + 2) from the base values.
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", regfile_latency + 2);
    cfg.setUint("core.regfile_latency", regfile_latency);
}

namespace
{

/**
 * Process-fault targeting: the crash_at_op / hang_at_op knobs apply
 * only to cells whose figure label contains the corresponding target
 * substring, so a campaign-wide overlay can poison selected cells
 * while the rest of the sweep stays byte-identical to a clean run.
 * An empty target means every cell.
 */
void
gateProcessFaults(Config &cfg, const Workload &workload)
{
    if (!cfg.getBool("integrity.fault.enable", false))
        return;
    const std::string label = figureLabel(workload);
    const auto gate = [&](const char *target_key, const char *op_key) {
        std::string target = cfg.getString(target_key, "");
        if (!target.empty() && label.find(target) == std::string::npos)
            cfg.setUint(op_key, 0);
    };
    gate("integrity.fault.crash_target", "integrity.fault.crash_at_op");
    gate("integrity.fault.hang_target", "integrity.fault.hang_at_op");
}

RunResult
runOnceWith(const RunSpec &spec, Config cfg)
{
    fatal_if(spec.workload.threads.empty(), "empty workload");
    fatal_if(spec.totalOps == 0, "zero-length run");

    gateProcessFaults(cfg, spec.workload);

    // Distribute the op budget across threads, spreading the division
    // remainder over the first threads so SMT pairings run exactly the
    // requested total instead of silently dropping up to n-1 ops.
    std::size_t n_threads = spec.workload.threads.size();
    std::uint64_t total = spec.totalOps + spec.warmupOps;
    std::uint64_t per_thread_base = total / n_threads;
    std::uint64_t remainder = total % n_threads;
    std::uint64_t warmup_total = spec.warmupOps;

    std::vector<std::unique_ptr<SyntheticTraceGenerator>> gens;
    std::vector<TraceSource *> sources;
    std::uint64_t assigned = 0;
    for (std::size_t t = 0; t < n_threads; ++t) {
        std::uint64_t ops = per_thread_base + (t < remainder ? 1 : 0);
        assigned += ops;
        gens.push_back(std::make_unique<SyntheticTraceGenerator>(
            spec.workload.threads[t], static_cast<ThreadId>(t), ops));
        sources.push_back(gens.back().get());
    }
    panic_if(assigned != total, "op distribution does not reconcile: ",
             assigned, " assigned of ", total);

    Core core(cfg, sources);
    Simulator sim;
    sim.add(&core);
    if (tickProfilingActive())
        sim.enableProfiling(true);

    std::unique_ptr<InvariantWatchdog> watchdog;
    if (cfg.getBool("integrity.watchdog.enable", true)) {
        watchdog = std::make_unique<InvariantWatchdog>(
            core, WatchdogConfig::fromConfig(cfg));
        sim.add(watchdog.get());
    }

    auto cycle_limit_error = [&](const char *phase) {
        std::ostringstream dump;
        core.debugDump(dump);
        std::ostringstream msg;
        msg << spec.workload.label << ": " << phase
            << " exhausted the cycle budget of " << spec.maxCycles
            << " (deadlock or starvation?)";
        return CycleLimitError(phase, spec.maxCycles, msg.str(),
                               dump.str());
    };

    // Warmup phase: run until the warmup ops retired, then reset the
    // statistics and measure the rest of the trace.
    while (warmup_total > 0 && core.retiredOps() < warmup_total &&
           !core.done()) {
        sim.run(1024);
        if (sim.now() > spec.maxCycles)
            throw cycle_limit_error("warmup");
    }
    core.beginMeasurement();

    sim.run(spec.maxCycles);
    if (sim.hitCycleLimit())
        throw cycle_limit_error("measure");

    RunResult res;
    res.workloadLabel = figureLabel(spec.workload);
    res.pipeLabel = core.machine().pipeLabel();
    res.cycles = core.cyclesRun();
    res.ipc = core.ipc();

    const auto &src_vec = core.operandSourceStat();
    for (std::size_t i = 0; i < src_vec.size(); ++i) {
        res.operandSourceFractions.push_back(src_vec.fraction(i));
        res.operandSourceCounts.push_back(src_vec.bin(i));
    }

    const auto &gap = core.operandGapStat();
    res.gapCdf.reserve(129);
    for (unsigned c = 0; c <= 128; ++c)
        res.gapCdf.push_back(gap.cdf(static_cast<double>(c)));

    // Extraction goes through the handles the core cached at
    // construction, not string lookups in the stat registry.
    for (const auto &[name, stat] : core.exportedStats())
        res.scalars[name] = stat->value();
    res.retired = static_cast<std::uint64_t>(res.scalar("retired"));
    if (const FaultInjector *fi = core.faultInjector())
        res.scalars["faultsInjected"] =
            static_cast<double>(fi->totalInjected());

    // Observability extractions: the loop-event trace (empty unless
    // collection is on) and the kernel self-profile (profiling only).
    res.loopEvents = core.takeLoopTrace();
    if (sim.profilingEnabled())
        res.tickProfile = sim.profile();

    return res;
}

} // anonymous namespace

RunResult
runOnce(const RunSpec &spec)
{
    return runOnceWith(spec, effectiveConfig(spec));
}

RunResult
runOnceResilient(const RunSpec &spec, const RetryPolicy &policy)
{
    return runOnceResilientWith(spec, effectiveConfig(spec), policy);
}

RunResult
runOnceResilientWith(const RunSpec &spec, const Config &resolved,
                     const RetryPolicy &policy)
{
    const Config &cfg = resolved;
    // Per-run configuration can override the caller's policy, so whole
    // campaigns tune retry behaviour through overlays.
    RetryPolicy pol = policy;
    pol.attempts = static_cast<unsigned>(
        cfg.getUint("integrity.retry.attempts", pol.attempts));
    pol.budgetGrowth =
        cfg.getDouble("integrity.retry.budget_growth", pol.budgetGrowth);
    pol.seedStride =
        cfg.getUint("integrity.retry.seed_stride", pol.seedStride);
    pol.failSoft = cfg.getBool("integrity.retry.fail_soft", pol.failSoft);
    fatal_if(pol.attempts == 0, "retry policy with zero attempts");

    RunSpec attempt_spec = spec;
    std::string last_error;
    for (unsigned attempt = 0; attempt < pol.attempts; ++attempt) {
        try {
            return runOnceWith(attempt_spec, cfg);
        } catch (const SimError &err) {
            last_error = err.what();
            warn("run \"", spec.workload.label, "\" attempt ",
                 attempt + 1, "/", pol.attempts, " failed (", err.kind(),
                 "): ", err.what());
            if (attempt + 1 == pol.attempts) {
                if (!pol.failSoft)
                    throw;
                break;
            }
            // Perturb the instruction stream away from the wedge and
            // widen the cycle budget against plain starvation.
            for (BenchmarkProfile &t : attempt_spec.workload.threads)
                t.seed += pol.seedStride;
            attempt_spec.maxCycles = static_cast<Cycle>(
                static_cast<double>(attempt_spec.maxCycles) *
                pol.budgetGrowth);
        }
    }

    RunResult res;
    res.failed = true;
    res.failKind = FailKind::Sim;
    res.error = last_error;
    res.workloadLabel = figureLabel(spec.workload);
    res.pipeLabel = MachineConfig::fromConfig(cfg).pipeLabel();
    res.ipc = failPoint(FailKind::Sim);
    return res;
}

double
speedup(const RunResult &test, const RunResult &baseline)
{
    // Fail-soft points propagate their verdict through the ratio so
    // the figure cell still renders as fail/crash/timeout.
    if (test.failed)
        return failPoint(test.failKind);
    if (baseline.failed)
        return failPoint(baseline.failKind);
    fatal_if(baseline.ipc <= 0.0, "baseline run retired nothing");
    return test.ipc / baseline.ipc;
}

} // namespace loopsim
