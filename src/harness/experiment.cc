#include "harness/experiment.hh"

#include <memory>

#include "base/logging.hh"
#include "core/core.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace loopsim
{

double
RunResult::scalar(const std::string &name) const
{
    auto it = scalars.find(name);
    fatal_if(it == scalars.end(), "no such scalar in RunResult: ", name);
    return it->second;
}

Config
defaultFigureConfig()
{
    Config cfg;
    // The paper's base machine (§2); all values are also the
    // MachineConfig defaults, set explicitly here for documentation.
    cfg.setUint("core.width", 8);
    cfg.setUint("core.iq.entries", 128);
    cfg.setUint("core.rob.entries", 256);
    cfg.setUint("core.clusters", 8);
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", 5);
    cfg.setUint("core.regfile_latency", 3);
    cfg.setUint("core.fwd_depth", 9);
    cfg.setUint("core.load_feedback", 3);
    cfg.set("core.load_recovery", "reissue");
    cfg.set("branch.mode", "profile");
    return cfg;
}

void
setPipeline(Config &cfg, unsigned dec_iq, unsigned iq_ex)
{
    fatal_if(iq_ex < 3, "IQ-EX latency must be >= 3 for a sweep point");
    cfg.setUint("core.dec_iq", dec_iq);
    cfg.setUint("core.iq_ex", iq_ex);
    cfg.setUint("core.regfile_latency", iq_ex - 2);
}

void
setBasePipeline(Config &cfg, unsigned regfile_latency)
{
    cfg.setBool("dra.enable", false);
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", regfile_latency + 2);
    cfg.setUint("core.regfile_latency", regfile_latency);
}

void
setDraPipeline(Config &cfg, unsigned regfile_latency)
{
    cfg.setBool("dra.enable", true);
    // MachineConfig::applyDra() derives IQ-EX = 3 and
    // DEC-IQ = max(5, rf + 2) from the base values.
    cfg.setUint("core.dec_iq", 5);
    cfg.setUint("core.iq_ex", regfile_latency + 2);
    cfg.setUint("core.regfile_latency", regfile_latency);
}

RunResult
runOnce(const RunSpec &spec)
{
    fatal_if(spec.workload.threads.empty(), "empty workload");
    fatal_if(spec.totalOps == 0, "zero-length run");

    Config cfg = defaultFigureConfig();
    cfg.overlay(spec.overrides);

    std::size_t n_threads = spec.workload.threads.size();
    std::uint64_t per_thread =
        (spec.totalOps + spec.warmupOps) / n_threads;
    std::uint64_t warmup_total = spec.warmupOps;

    std::vector<std::unique_ptr<SyntheticTraceGenerator>> gens;
    std::vector<TraceSource *> sources;
    for (std::size_t t = 0; t < n_threads; ++t) {
        gens.push_back(std::make_unique<SyntheticTraceGenerator>(
            spec.workload.threads[t], static_cast<ThreadId>(t),
            per_thread));
        sources.push_back(gens.back().get());
    }

    Core core(cfg, sources);
    Simulator sim;
    sim.add(&core);

    // Warmup phase: run until the warmup ops retired, then reset the
    // statistics and measure the rest of the trace.
    while (warmup_total > 0 && core.retiredOps() < warmup_total &&
           !core.done()) {
        sim.run(1024);
        fatal_if(sim.now() > spec.maxCycles,
                 "warmup hit the cycle limit: ", spec.workload.label);
    }
    core.beginMeasurement();

    sim.run(spec.maxCycles);
    fatal_if(sim.hitCycleLimit(),
             "run hit the cycle limit (deadlock or starvation?): ",
             spec.workload.label);

    RunResult res;
    res.workloadLabel = figureLabel(spec.workload);
    res.pipeLabel = core.machine().pipeLabel();
    res.cycles = core.cyclesRun();
    res.retired = static_cast<std::uint64_t>(
        core.statGroup().lookupValue("core.retired"));
    res.ipc = core.ipc();

    const auto &src_vec = core.operandSourceStat();
    for (std::size_t i = 0; i < src_vec.size(); ++i) {
        res.operandSourceFractions.push_back(src_vec.fraction(i));
        res.operandSourceCounts.push_back(src_vec.bin(i));
    }

    const auto &gap = core.operandGapStat();
    res.gapCdf.reserve(129);
    for (unsigned c = 0; c <= 128; ++c)
        res.gapCdf.push_back(gap.cdf(static_cast<double>(c)));

    static const char *copied[] = {
        "cycles", "fetched", "wrongPathFetched", "renamed", "issued",
        "reissued", "retired", "squashed", "branches",
        "branchMispredicts", "loadMissEvents", "loadKilledOps",
        "tlbTraps", "memOrderTraps", "operandMissEvents",
        "recoveryStallCycles",
    };
    for (const char *name : copied) {
        res.scalars[name] =
            core.statGroup().lookupValue(std::string("core.") + name);
    }
    res.scalars["iqOccupancy"] =
        core.statGroup().lookupValue("core.iqOccupancy");
    res.scalars["robOccupancy"] =
        core.statGroup().lookupValue("core.robOccupancy");

    return res;
}

double
speedup(const RunResult &test, const RunResult &baseline)
{
    fatal_if(baseline.ipc <= 0.0, "baseline run retired nothing");
    return test.ipc / baseline.ipc;
}

} // namespace loopsim
