/**
 * @file
 * Thread-pool campaign executor.
 *
 * A figure or ablation campaign is an embarrassingly-parallel set of
 * independent simulation runs: each runOnce() builds its own Core,
 * Simulator and statistics, so cells share nothing but immutable
 * inputs (workload profiles, config defaults, the installed overlay).
 * The executor takes a declarative CampaignPlan of RunSpecs and runs
 * them on std::jthread workers.
 *
 * Determinism contract: results land by *plan index*, never by
 * completion order, and every cell's simulation is a pure function of
 * its RunSpec — so the assembled output of a parallel campaign is
 * byte-identical to a serial one at any job count. Only stderr
 * diagnostics (warn() lines from retries) may interleave differently.
 *
 * Failure contract: each cell runs through runOnceResilient(); a cell
 * that still fails — or throws anything at all, including fatal() on a
 * malformed spec — comes back as a failed RunResult instead of tearing
 * down the pool. A campaign always returns one result per planned run.
 *
 * Crash isolation (--isolate / LOOPSIM_ISOLATE): each miss is run in a
 * supervised forked worker (harness/supervisor.hh) instead of on the
 * pool thread, so a segfault, abort, OOM kill or wall-clock deadline
 * overrun (--deadline-ms) loses only that cell — it degrades to a
 * `crash` / `timeout` figure cell after backoff respawns. Healthy
 * results are byte-identical to an in-process run at any job count.
 *
 * Resumable journals (--journal / LOOPSIM_JOURNAL): every finished
 * cell (verdicts included) is appended to a crash-consistent journal
 * keyed by the plan fingerprint (store/journal.hh). Re-running the
 * same plan replays completed cells — poison cells keep their recorded
 * verdict instead of re-crashing a worker — and simulates only what is
 * missing, preserving byte-identical assembled output.
 *
 * Graceful shutdown: SIGINT/SIGTERM makes the pool stop claiming
 * cells, drain (and reap) what is in flight, journal every completed
 * cell, record partial telemetry, run the interrupt-flush hook, and
 * _exit with status 128+signal. A second signal kills immediately.
 */

#ifndef LOOPSIM_HARNESS_CAMPAIGN_HH
#define LOOPSIM_HARNESS_CAMPAIGN_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "store/result_store.hh"

namespace loopsim
{

/** One cell of a campaign: a run plus its coordinates in the plan. */
struct PlannedRun
{
    RunSpec spec;
    /** Optional diagnostic label ("fig4 swim 7_7"); not used for
     *  result assembly, which is strictly by plan index. */
    std::string label;
};

/** An ordered list of independent runs. */
class CampaignPlan
{
  public:
    /** Append a run; returns its plan index. */
    std::size_t
    add(RunSpec spec, std::string label = "")
    {
        cells.push_back(PlannedRun{std::move(spec), std::move(label)});
        return cells.size() - 1;
    }

    /** Convenience: build the spec from its figure-driver parts. */
    std::size_t
    add(const Workload &workload, const Config &overrides,
        std::uint64_t total_ops, std::string label = "")
    {
        RunSpec spec;
        spec.workload = workload;
        spec.overrides = overrides;
        spec.totalOps = total_ops;
        return add(std::move(spec), std::move(label));
    }

    std::size_t size() const { return cells.size(); }
    bool empty() const { return cells.empty(); }
    const PlannedRun &at(std::size_t i) const { return cells.at(i); }
    const std::vector<PlannedRun> &runs() const { return cells; }

  private:
    std::vector<PlannedRun> cells;
};

/**
 * Per-worker cost breakdown of one campaign (wall clock). The three
 * buckets partition a worker's lifetime: busy (inside a cell's
 * simulation), claimWait (claiming the next cell from the shared
 * cursor — measurable lock/cache contention shows up here), and idle
 * (everything else: thread startup/teardown and the tail wait while
 * the last cells of an uneven plan finish elsewhere). A healthy
 * campaign is busy-dominated on every worker; a flat --jobs curve
 * with high busy everywhere points at in-cell contention instead of
 * pool starvation.
 */
struct WorkerTelemetry
{
    unsigned id = 0;
    /** Cells this worker executed. */
    std::size_t cells = 0;
    double busySeconds = 0.0;
    double claimWaitSeconds = 0.0;
    double idleSeconds = 0.0;
};

/** What one campaign execution cost (wall clock, not simulated). */
struct CampaignTelemetry
{
    unsigned jobs = 1;
    /** Hardware threads reported by the host at campaign time. Jobs
     *  beyond this number timeslice rather than run in parallel, so a
     *  flat jobs→throughput curve with jobs > hostCpus is expected
     *  behaviour, not executor contention. */
    unsigned hostCpus = 0;
    std::size_t runs = 0;
    std::size_t failures = 0;
    /** Cells that actually ran the simulator: runs minus every memo
     *  and store hit. A fully warm rerun reports 0 here. */
    std::size_t simulated = 0;
    /** Cells answered by the in-process memo, including duplicate
     *  plan points deduplicated within this campaign. */
    std::size_t memoHits = 0;
    /** Cells replayed from a resumed campaign journal (recorded
     *  fail/crash/timeout verdicts included). */
    std::size_t resumed = 0;
    /** @name Supervision counters (nonzero only under --isolate) */
    /// @{
    /** Cells that actually ran in forked workers. */
    std::size_t isolatedRuns = 0;
    /** Worker deaths observed (signal, nonzero exit, garbled record). */
    std::size_t crashes = 0;
    /** Wall-clock deadline overruns (worker SIGKILLed and reaped). */
    std::size_t timeouts = 0;
    /** Extra spawn attempts beyond each cell's first. */
    std::size_t spawnRetries = 0;
    /** Backoff sleeps between respawns, and their summed duration. */
    std::size_t backoffWaits = 0;
    std::uint64_t backoffWaitMs = 0;
    /// @}
    /** A SIGINT/SIGTERM shutdown cut this campaign short; the counts
     *  above cover only what completed before the drain. */
    bool interrupted = false;
    /** Persistent-store activity attributable to this campaign
     *  (hits/misses/inserts/CRC rejects/bytes; all zero when no store
     *  directory is configured). */
    store::StoreStats store;
    double wallSeconds = 0.0;
    /** Kernel self-profile, merged by component name across runs
     *  (empty unless tick profiling was on — see
     *  tickProfilingActive()). Host seconds are summed over all
     *  workers, so they can exceed wallSeconds under --jobs > 1. */
    std::vector<ComponentProfile> tickProfile;
    /** Per-worker busy/claim-wait/idle breakdown, by worker id (the
     *  serial fast path reports itself as worker 0). */
    std::vector<WorkerTelemetry> workers;

    double
    runsPerSecond() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(runs) / wallSeconds
                   : 0.0;
    }

    /** Accumulate another campaign's cost (jobs: keep the max). */
    void accumulate(const CampaignTelemetry &other);
};

/**
 * Install the process-wide worker count: 0 restores automatic
 * resolution. Thread-safe; takes effect for subsequent campaigns.
 */
void setCampaignJobs(unsigned jobs);

/**
 * Resolve the worker count for the next campaign, in decreasing
 * precedence: setCampaignJobs() (the bench binaries' --jobs flag) >
 * the LOOPSIM_JOBS environment variable > hardware_concurrency().
 * Always at least 1.
 */
unsigned campaignJobs();

/** Hardware threads on this host (>= 1). */
unsigned hostCpus();

/**
 * Parse a --jobs / LOOPSIM_JOBS value: a number (capped at 1024) or
 * "auto", which resolves to hostCpus() — the sane full-width setting
 * shared by the local executor and the serve worker pool. @p ok is
 * false (and 0 returned) on anything else.
 */
unsigned parseJobsSpec(const std::string &spec, bool &ok);

/**
 * Execute every cell of @p plan and return one RunResult per cell, in
 * plan order. @p jobs 0 means campaignJobs(); the pool never spawns
 * more workers than cells. @p policy is forwarded to
 * runOnceResilient() (per-run integrity.retry.* keys still win).
 *
 * Lookup-before-simulate: unless loop-event trace collection is on
 * (traces must come from real executions), every cell is first looked
 * up by fingerprint in the in-process memo and then in the persistent
 * store (store/result_store.hh, when --store/LOOPSIM_STORE names a
 * directory). Hits are replayed into the results in plan order —
 * output stays byte-identical to a cold serial sweep at any job
 * count — and only the misses go to the worker pool; fresh results
 * are inserted back. Duplicate plan points within one campaign
 * simulate once.
 */
std::vector<RunResult> runCampaign(const CampaignPlan &plan,
                                   const RetryPolicy &policy = {},
                                   unsigned jobs = 0);

/**
 * Fingerprint of the whole plan as runCampaign() would key its journal
 * right now: a hash over every cell's run fingerprint in plan order
 * (so it reflects the overlays and policy in force), plus the plan
 * size. Exposed for tests and the journal CLI.
 */
store::Fingerprint fingerprintPlan(const CampaignPlan &plan,
                                   const RetryPolicy &policy = {});

/**
 * Install the graceful-shutdown flush hook (nullptr clears). When a
 * SIGINT/SIGTERM drain completes, the hook runs once — after partial
 * telemetry is recorded and the journal is flushed, before the
 * process exits with 128+signal. The bench binaries point this at
 * their BENCH_campaign.json recorder so an interrupted campaign still
 * leaves telemetry behind.
 */
void setCampaignInterruptFlush(std::function<void()> hook);

/**
 * Record one campaign's telemetry as if runCampaign() produced it
 * (updates lastCampaignTelemetry() and campaignTotals()). The remote
 * submission path (serve/client.hh) uses this so served campaigns
 * surface through the same counters as local ones.
 */
void recordCampaignTelemetry(const CampaignTelemetry &t);

/** Telemetry of the most recently completed campaign. */
CampaignTelemetry lastCampaignTelemetry();

/** Cumulative telemetry across every campaign this process ran
 *  (the bench binaries record it into BENCH_campaign.json). */
CampaignTelemetry campaignTotals();

/** Zero the cumulative totals (tests). */
void resetCampaignTotals();

} // namespace loopsim

#endif // LOOPSIM_HARNESS_CAMPAIGN_HH
