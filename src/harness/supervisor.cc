#include "harness/supervisor.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "base/logging.hh"
#include "core/machine_config.hh"
#include "store/record.hh"

namespace loopsim
{

namespace
{

/** Isolation / deadline gates; env-latched like tickProfilingActive(). */
std::atomic<bool> isolateFlag{false};
std::atomic<bool> isolateInit{false};
std::atomic<std::uint64_t> deadlineMsFlag{0};
std::atomic<bool> deadlineInit{false};

/** Campaign shutdown flag polled while a child is in flight. */
std::atomic<const std::atomic<bool> *> stopFlag{nullptr};

bool
stopRequested()
{
    const std::atomic<bool> *f = stopFlag.load(std::memory_order_acquire);
    return f != nullptr && f->load(std::memory_order_acquire);
}

/**
 * The wire record travels between two processes of the same binary, so
 * the store codec's fingerprint check only needs a fixed sentinel; the
 * CRC is what catches a child that died mid-write.
 */
const store::Fingerprint kWireFp{0x6c6f6f7073696d00ull,
                                 0x00737570657276ull};

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
readU32(const std::string &in, std::size_t &at, std::uint32_t &v)
{
    if (in.size() - at < 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 4;
    return true;
}

bool
readU64(const std::string &in, std::size_t &at, std::uint64_t &v)
{
    if (in.size() - at < 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 8;
    return true;
}

/**
 * Wire format, child -> parent:
 *   [u32 record_len][record]            store codec, kWireFp
 *   [u32 profile_count]                 tick-profile extension —
 *   per entry: [u32 len][name][u64 ticks][u64 scan_ticks]
 *              [u64 seconds bits]
 * The record codec excludes tickProfile by design (replaying wall
 * clock from the store would fabricate telemetry), but here the
 * profile is this run's real measurement, just taken in the child.
 */
std::string
encodeWire(const RunResult &result)
{
    std::string rec = store::encodeRecord(kWireFp, result);
    std::string wire;
    wire.reserve(4 + rec.size() + 64);
    appendU32(wire, static_cast<std::uint32_t>(rec.size()));
    wire.append(rec);
    appendU32(wire, static_cast<std::uint32_t>(result.tickProfile.size()));
    for (const ComponentProfile &p : result.tickProfile) {
        appendU32(wire, static_cast<std::uint32_t>(p.name.size()));
        wire.append(p.name);
        appendU64(wire, p.ticks);
        appendU64(wire, p.scanTicks);
        appendU64(wire, std::bit_cast<std::uint64_t>(p.seconds));
    }
    return wire;
}

bool
decodeWire(const std::string &wire, RunResult &result)
{
    std::size_t at = 0;
    std::uint32_t rec_len = 0;
    if (!readU32(wire, at, rec_len) || wire.size() - at < rec_len)
        return false;
    if (!store::decodeRecord(wire.substr(at, rec_len), kWireFp, result))
        return false;
    at += rec_len;
    std::uint32_t profiles = 0;
    if (!readU32(wire, at, profiles))
        return false;
    for (std::uint32_t i = 0; i < profiles; ++i) {
        ComponentProfile p;
        std::uint32_t len = 0;
        if (!readU32(wire, at, len) || wire.size() - at < len)
            return false;
        p.name.assign(wire, at, len);
        at += len;
        std::uint64_t sec_bits = 0;
        if (!readU64(wire, at, p.ticks) ||
            !readU64(wire, at, p.scanTicks) ||
            !readU64(wire, at, sec_bits)) {
            return false;
        }
        p.seconds = std::bit_cast<double>(sec_bits);
        result.tickProfile.push_back(std::move(p));
    }
    return at == wire.size();
}

bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

/**
 * The child half: reset the parent's campaign signal handlers, run the
 * cell against the pre-fork-resolved configuration (never touching the
 * overlay mutex — another parent thread may have held it at fork
 * time), ship the wire record and _exit without running atexit
 * handlers that belong to the parent's state.
 */
[[noreturn]] void
childMain(int fd, const RunSpec &spec, const Config &resolved,
          const RetryPolicy &policy)
{
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    int status = 0;
    try {
        RunResult res = runOnceResilientWith(spec, resolved, policy);
        std::string wire = encodeWire(res);
        if (!writeAll(fd, wire.data(), wire.size()))
            status = 3;
    } catch (const std::exception &err) {
        // runOnceResilientWith is fail-soft by default; anything that
        // still escapes (fatal_if on a malformed spec, bad_alloc, a
        // !fail_soft rethrow) is a real worker death.
        std::fprintf(stderr, "isolated worker: %s\n", err.what());
        status = 2;
    } catch (...) {
        status = 2;
    }
    ::close(fd);
    std::fflush(nullptr);
    ::_exit(status);
}

enum class ChildFate
{
    Ok,      ///< clean exit, wire record parsed
    Crash,   ///< signal death, nonzero exit, or garbled record
    Timeout, ///< wall-clock deadline overrun; SIGKILLed
    Interrupted,
};

/** One fork/reap round. Fills @p result only on Ok. */
ChildFate
superviseOnce(const RunSpec &spec, const Config &resolved,
              const RetryPolicy &policy, std::uint64_t deadline_ms,
              RunResult &result, std::string &why)
{
    int fds[2];
    if (::pipe(fds) != 0) {
        why = std::string("pipe failed: ") + std::strerror(errno);
        return ChildFate::Crash;
    }

    pid_t pid = ::fork();
    if (pid < 0) {
        why = std::string("fork failed: ") + std::strerror(errno);
        ::close(fds[0]);
        ::close(fds[1]);
        return ChildFate::Crash;
    }
    if (pid == 0) {
        ::close(fds[0]);
        childMain(fds[1], spec, resolved, policy);
    }
    ::close(fds[1]);

    using clock = std::chrono::steady_clock;
    // loop:exempt(analyze: wall-clock child deadline, host side only)
    const auto started = clock::now();
    const bool bounded = deadline_ms != 0;
    const auto deadline =
        started + std::chrono::milliseconds(deadline_ms);

    std::string wire;
    bool timed_out = false;
    bool interrupted = false;
    for (;;) {
        if (stopRequested()) {
            interrupted = true;
            break;
        }
        // Poll in short slices so the deadline and the shutdown flag
        // are both observed even while the child is silent.
        int slice_ms = 100;
        if (bounded) {
            auto left = std::chrono::duration_cast<
                // loop:exempt(analyze: wall-clock child deadline)
                std::chrono::milliseconds>(deadline - clock::now());
            if (left.count() <= 0) {
                timed_out = true;
                break;
            }
            slice_ms = static_cast<int>(
                std::min<long long>(slice_ms, left.count()));
        }
        struct pollfd pfd = {fds[0], POLLIN, 0};
        int pr = ::poll(&pfd, 1, slice_ms);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            timed_out = false;
            why = std::string("poll failed: ") + std::strerror(errno);
            break;
        }
        if (pr == 0)
            continue;
        char buf[4096];
        ssize_t r = ::read(fds[0], buf, sizeof(buf));
        if (r < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (r == 0)
            break; // EOF: the child finished (or died) and closed.
        wire.append(buf, static_cast<std::size_t>(r));
    }
    ::close(fds[0]);

    if (timed_out || interrupted)
        ::kill(pid, SIGKILL);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }

    if (interrupted)
        return ChildFate::Interrupted;
    if (timed_out) {
        why = "worker overran the " + std::to_string(deadline_ms) +
              " ms wall-clock deadline";
        return ChildFate::Timeout;
    }
    if (WIFSIGNALED(status)) {
        int sig = WTERMSIG(status);
        why = std::string("worker died on signal ") +
              std::to_string(sig) + " (" + strsignal(sig) + ")";
        return ChildFate::Crash;
    }
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        why = "worker exited with status " +
              std::to_string(WIFEXITED(status) ? WEXITSTATUS(status)
                                               : -1);
        return ChildFate::Crash;
    }
    if (!decodeWire(wire, result)) {
        why = "worker returned a garbled result record";
        return ChildFate::Crash;
    }
    return ChildFate::Ok;
}

/** Interruptible backoff sleep; returns false when shutdown struck. */
bool
backoffSleep(std::uint64_t ms)
{
    using clock = std::chrono::steady_clock;
    // loop:exempt(analyze: wall-clock backoff between child respawns)
    const auto until = clock::now() + std::chrono::milliseconds(ms);
    // loop:exempt(analyze: wall-clock backoff between child respawns)
    while (clock::now() < until) {
        if (stopRequested())
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
}

} // anonymous namespace

SupervisorPolicy
SupervisorPolicy::fromConfig(const Config &cfg)
{
    SupervisorPolicy p;
    p.attempts = static_cast<unsigned>(
        cfg.getUint("integrity.supervisor.attempts", p.attempts));
    p.deadlineMs = cfg.getUint("integrity.supervisor.deadline_ms",
                               loopsim::deadlineMs());
    p.backoffMs = cfg.getUint("integrity.supervisor.backoff_ms",
                              p.backoffMs);
    p.backoffGrowth = cfg.getDouble("integrity.supervisor.backoff_growth",
                                    p.backoffGrowth);
    p.backoffMaxMs = cfg.getUint("integrity.supervisor.backoff_max_ms",
                                 p.backoffMaxMs);
    fatal_if(p.attempts == 0, "supervisor policy with zero attempts");
    return p;
}

bool
isolationSupported()
{
#if defined(__unix__) || defined(__APPLE__)
    return true;
#else
    return false;
#endif
}

bool
isolationActive()
{
    if (!isolateInit.load(std::memory_order_acquire)) {
        // Benign race: both racers compute the same env-derived value.
        const char *env = std::getenv("LOOPSIM_ISOLATE"); // NOLINT(concurrency-mt-unsafe)
        bool on = env != nullptr && *env != '\0' &&
                  std::strcmp(env, "0") != 0;
        isolateFlag.store(on, std::memory_order_relaxed);
        isolateInit.store(true, std::memory_order_release);
    }
    return isolateFlag.load(std::memory_order_relaxed) &&
           isolationSupported();
}

void
setIsolation(bool on)
{
    if (on && !isolationSupported()) {
        warn("process isolation is not supported on this platform; "
             "cells will run in-process");
    }
    isolateInit.store(true, std::memory_order_release);
    isolateFlag.store(on, std::memory_order_relaxed);
}

std::uint64_t
deadlineMs()
{
    if (!deadlineInit.load(std::memory_order_acquire)) {
        const char *env = std::getenv("LOOPSIM_DEADLINE_MS"); // NOLINT(concurrency-mt-unsafe)
        std::uint64_t ms = 0;
        if (env != nullptr && *env != '\0')
            ms = std::strtoull(env, nullptr, 10);
        deadlineMsFlag.store(ms, std::memory_order_relaxed);
        deadlineInit.store(true, std::memory_order_release);
    }
    return deadlineMsFlag.load(std::memory_order_relaxed);
}

void
setDeadlineMs(std::uint64_t ms)
{
    deadlineInit.store(true, std::memory_order_release);
    deadlineMsFlag.store(ms, std::memory_order_relaxed);
}

void
setSupervisorStopFlag(const std::atomic<bool> *flag)
{
    stopFlag.store(flag, std::memory_order_release);
}

SupervisedOutcome
runCellSupervised(const RunSpec &spec, const RetryPolicy &policy,
                  const std::string &fallback_label)
{
    fatal_if(!isolationSupported(),
             "runCellSupervised on a platform without fork()");

    // Resolve the configuration before forking: the child must never
    // take the overlay mutex (see the fork-safety note in the header).
    const Config resolved = effectiveRunConfig(spec);
    const SupervisorPolicy sup = SupervisorPolicy::fromConfig(resolved);

    SupervisedOutcome out;
    FailKind last_kind = FailKind::Crash;
    std::string last_why;
    double backoff = static_cast<double>(sup.backoffMs);
    for (unsigned attempt = 1;; ++attempt) {
        out.attempts = attempt;
        std::string why;
        ChildFate fate = superviseOnce(spec, resolved, policy,
                                       sup.deadlineMs, out.result, why);
        if (fate == ChildFate::Ok)
            return out;
        if (fate == ChildFate::Interrupted) {
            out.interrupted = true;
            return out;
        }

        last_kind = fate == ChildFate::Timeout ? FailKind::Timeout
                                               : FailKind::Crash;
        last_why = why;
        if (fate == ChildFate::Timeout)
            ++out.timeouts;
        else
            ++out.crashes;
        warn("isolated run \"", spec.workload.label, "\" attempt ",
             attempt, "/", sup.attempts, " ",
             failKindName(last_kind), "ed: ", why);
        if (attempt >= sup.attempts)
            break;

        auto wait = static_cast<std::uint64_t>(backoff);
        wait = std::min(wait, sup.backoffMaxMs);
        ++out.backoffWaits;
        out.backoffWaitMs += wait;
        if (!backoffSleep(wait)) {
            out.interrupted = true;
            return out;
        }
        backoff *= sup.backoffGrowth;
    }

    // Every spawn died: degrade to a crash/timeout figure cell, the
    // same fail-soft shape runOnceResilient() produces for SimErrors.
    RunResult res;
    res.failed = true;
    res.failKind = last_kind;
    res.error = last_why;
    res.workloadLabel = figureLabel(spec.workload);
    if (res.workloadLabel.empty())
        res.workloadLabel = fallback_label;
    res.pipeLabel = MachineConfig::fromConfig(resolved).pipeLabel();
    res.ipc = failPoint(last_kind);
    out.result = std::move(res);
    return out;
}

} // namespace loopsim
