#include "harness/figures.hh"

#include <limits>

#include "base/logging.hh"
#include "harness/campaign.hh"

namespace loopsim
{

namespace
{

constexpr double failedPoint = std::numeric_limits<double>::quiet_NaN();

std::vector<Workload>
resolveAll(const std::vector<std::string> &names)
{
    std::vector<Workload> out;
    out.reserve(names.size());
    for (const auto &n : names)
        out.push_back(resolveWorkload(n));
    return out;
}

/** Operand-source fraction; a tagged NaN keeps the fail verdict. */
double
frac(const RunResult &r, std::size_t i)
{
    if (r.failed)
        return failPoint(r.failKind);
    if (i >= r.operandSourceFractions.size())
        return failedPoint;
    return r.operandSourceFractions[i];
}

/** Gap-CDF sample; a tagged NaN keeps the fail verdict. */
double
cdfAt(const RunResult &r, unsigned c)
{
    if (r.failed)
        return failPoint(r.failKind);
    if (c >= r.gapCdf.size())
        return failedPoint;
    return r.gapCdf[c];
}

} // anonymous namespace

std::vector<RunResult>
runPlan(FigureData &fig, const CampaignPlan &plan)
{
    std::vector<RunResult> results = runCampaign(plan);
    // Results land in plan order, so the failure footer reads exactly
    // as it would from a serial sweep, at any job count.
    for (const RunResult &r : results) {
        if (r.failed) {
            std::string brief = r.error.substr(0, r.error.find('\n'));
            std::string entry =
                r.workloadLabel + " [" + r.pipeLabel + "]: ";
            // Process-level verdicts read differently from in-process
            // fails: the worker died, the measurement never existed.
            if (r.failKind == FailKind::Crash ||
                r.failKind == FailKind::Timeout) {
                entry += std::string("(") + failKindName(r.failKind) +
                         ") ";
            }
            fig.failures.push_back(entry + brief);
        }
    }
    return results;
}

FigureData
figure4(std::uint64_t total_ops)
{
    // DEC-IQ/IQ-EX pairs summing to 6, 10, 14, 18 cycles.
    static const std::pair<unsigned, unsigned> points[] = {
        {3, 3}, {5, 5}, {7, 7}, {9, 9}};
    constexpr std::size_t npoints = std::size(points);

    FigureData fig;
    fig.title = "Figure 4: performance for varying pipeline length "
                "(speedup relative to 6 cycles decode-to-execute)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> workloads = figureWorkloads();
    CampaignPlan plan;
    for (const Workload &w : workloads) {
        for (const auto &[dec_iq, iq_ex] : points) {
            Config cfg;
            setPipeline(cfg, dec_iq, iq_ex);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(workloads[wi]));
        const RunResult &baseline = results[wi * npoints];
        for (std::size_t p = 0; p < npoints; ++p) {
            const RunResult &r = results[wi * npoints + p];
            if (fig.columns.size() <= p) {
                fig.columns.push_back(Series{
                    std::to_string(points[p].first + points[p].second) +
                        " cyc (" + r.pipeLabel + ")",
                    {}});
            }
            fig.columns[p].values.push_back(speedup(r, baseline));
        }
    }
    return fig;
}

FigureData
figure5(std::uint64_t total_ops)
{
    static const std::pair<unsigned, unsigned> points[] = {
        {3, 9}, {5, 7}, {7, 5}, {9, 3}};
    constexpr std::size_t npoints = std::size(points);

    FigureData fig;
    fig.title = "Figure 5: performance for a fixed 12-cycle "
                "decode-to-execute length (speedup relative to 3_9)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> workloads = figureWorkloads();
    CampaignPlan plan;
    for (const Workload &w : workloads) {
        for (const auto &[dec_iq, iq_ex] : points) {
            Config cfg;
            setPipeline(cfg, dec_iq, iq_ex);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(workloads[wi]));
        const RunResult &baseline = results[wi * npoints];
        for (std::size_t p = 0; p < npoints; ++p) {
            const RunResult &r = results[wi * npoints + p];
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{r.pipeLabel, {}});
            fig.columns[p].values.push_back(speedup(r, baseline));
        }
    }
    return fig;
}

FigureData
figure6(std::uint64_t total_ops, const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Figure 6: CDF of cycles between first- and second-"
                "operand availability (base 5_5 machine)";
    fig.valueUnit = "cumulative fraction";

    for (unsigned c = 0; c <= 64; ++c)
        fig.rowLabels.push_back(std::to_string(c));

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved)
        plan.add(w, Config{}, total_ops); // base machine defaults
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        Series s{figureLabel(resolved[wi]), {}};
        for (unsigned c = 0; c <= 64; ++c)
            s.values.push_back(cdfAt(results[wi], c));
        fig.columns.push_back(std::move(s));
    }
    return fig;
}

FigureData
figure8(std::uint64_t total_ops)
{
    static const unsigned rf_latencies[] = {3, 5, 7};
    constexpr std::size_t npoints = std::size(rf_latencies);

    FigureData fig;
    fig.title = "Figure 8: DRA speedup over the base machine for "
                "register file latencies 3, 5 and 7 cycles";
    fig.valueUnit = "speedup";

    const std::vector<Workload> workloads = figureWorkloads();
    CampaignPlan plan;
    for (const Workload &w : workloads) {
        for (unsigned rf : rf_latencies) {
            Config base_cfg;
            setBasePipeline(base_cfg, rf);
            plan.add(w, base_cfg, total_ops);
            Config dra_cfg;
            setDraPipeline(dra_cfg, rf);
            plan.add(w, dra_cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(workloads[wi]));
        for (std::size_t p = 0; p < npoints; ++p) {
            const RunResult &base = results[(wi * npoints + p) * 2];
            const RunResult &dra = results[(wi * npoints + p) * 2 + 1];
            if (fig.columns.size() <= p) {
                fig.columns.push_back(Series{
                    "DRA:" + dra.pipeLabel + " vs Base:" + base.pipeLabel,
                    {}});
            }
            fig.columns[p].values.push_back(speedup(dra, base));
        }
    }
    return fig;
}

FigureData
figure9(std::uint64_t total_ops)
{
    FigureData fig;
    fig.title = "Figure 9: operand locations for the 7_3 DRA machine "
                "(5-cycle register file)";
    fig.valueUnit = "fraction of operand reads";

    static const char *labels[] = {"pre-read", "fwd-buffer", "crc",
                                   "miss"};
    for (const char *l : labels)
        fig.columns.push_back(Series{l, {}});

    const std::vector<Workload> workloads = figureWorkloads();
    CampaignPlan plan;
    for (const Workload &w : workloads) {
        Config cfg;
        setDraPipeline(cfg, 5);
        plan.add(w, cfg, total_ops);
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(workloads[wi]));
        const RunResult &r = results[wi];
        // operandSourceFractions order:
        // preread, forward, crc, regfile, payload, miss
        fig.columns[0].values.push_back(frac(r, 0));
        fig.columns[1].values.push_back(frac(r, 1));
        fig.columns[2].values.push_back(frac(r, 2));
        fig.columns[3].values.push_back(frac(r, 5));
    }
    return fig;
}

FigureData
ablationCrcSize(std::uint64_t total_ops,
                const std::vector<std::string> &workloads)
{
    static const unsigned sizes[] = {4, 8, 16, 32, 64};
    constexpr std::size_t npoints = std::size(sizes);

    FigureData fig;
    fig.title = "Ablation: CRC capacity (7_3 DRA; speedup relative to "
                "the 16-entry design point)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (unsigned s : sizes) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.crc.entries", s);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        const RunResult *ref_run = nullptr;
        for (std::size_t p = 0; p < npoints; ++p) {
            if (sizes[p] == 16)
                ref_run = &results[wi * npoints + p];
        }
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(sizes[p]) + " entries", {}});
            }
            fig.columns[p].values.push_back(
                speedup(results[wi * npoints + p], *ref_run));
        }
    }
    return fig;
}

FigureData
ablationCrcRepl(std::uint64_t total_ops,
                const std::vector<std::string> &workloads)
{
    static const char *policies[] = {"fifo", "lru"};
    constexpr std::size_t npoints = std::size(policies);

    FigureData fig;
    fig.title = "Ablation: CRC replacement policy (7_3 DRA; operand "
                "miss rate per policy)";
    fig.valueUnit = "operand miss fraction";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (const char *policy : policies) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.set("dra.crc.repl", policy);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{policies[p], {}});
            fig.columns[p].values.push_back(
                frac(results[wi * npoints + p], 5));
        }
    }
    return fig;
}

FigureData
ablationInsertionBits(std::uint64_t total_ops,
                      const std::vector<std::string> &workloads)
{
    static const unsigned widths[] = {1, 2, 3};
    constexpr std::size_t npoints = std::size(widths);

    FigureData fig;
    fig.title = "Ablation: insertion-table counter width (7_3 DRA; "
                "operand miss rate per width)";
    fig.valueUnit = "operand miss fraction";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (unsigned bits : widths) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.insertion_bits", bits);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(widths[p]) + " bits", {}});
            }
            fig.columns[p].values.push_back(
                frac(results[wi * npoints + p], 5));
        }
    }
    return fig;
}

FigureData
ablationLoadRecovery(std::uint64_t total_ops,
                     const std::vector<std::string> &workloads)
{
    static const char *modes[] = {"reissue", "refetch", "stall"};
    constexpr std::size_t npoints = std::size(modes);

    FigureData fig;
    fig.title = "Ablation: load mis-speculation recovery policy (base "
                "5_5 machine; speedup relative to reissue)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (const char *mode : modes) {
            Config cfg;
            cfg.set("core.load_recovery", mode);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        const RunResult &ref_run = results[wi * npoints];
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{modes[p], {}});
            fig.columns[p].values.push_back(
                speedup(results[wi * npoints + p], ref_run));
        }
    }
    return fig;
}

FigureData
ablationKillShadow(std::uint64_t total_ops,
                   const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Ablation: dependency-tree reissue vs 21264-style "
                "kill-all-in-shadow (base 5_5; speedup relative to "
                "tree reissue)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        Config tree_cfg;
        tree_cfg.setBool("core.kill_all_in_shadow", false);
        plan.add(w, tree_cfg, total_ops);
        Config shadow_cfg;
        shadow_cfg.setBool("core.kill_all_in_shadow", true);
        plan.add(w, shadow_cfg, total_ops);
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    fig.columns.push_back(Series{"dep-tree", {}});
    fig.columns.push_back(Series{"kill-shadow", {}});
    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        const RunResult &tree = results[wi * 2];
        const RunResult &shadow = results[wi * 2 + 1];
        fig.columns[0].values.push_back(
            tree.failed ? failPoint(tree.failKind) : 1.0);
        fig.columns[1].values.push_back(speedup(shadow, tree));
    }
    return fig;
}

FigureData
ablationFwdDepth(std::uint64_t total_ops,
                 const std::vector<std::string> &workloads)
{
    static const unsigned depths[] = {5, 7, 9, 13, 17};
    constexpr std::size_t npoints = std::size(depths);

    FigureData fig;
    fig.title = "Ablation: forwarding-buffer depth (7_3 DRA; fraction "
                "of operands read from the forwarding buffer)";
    fig.valueUnit = "fraction of operand reads";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (unsigned depth : depths) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("core.fwd_depth", depth);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(depths[p]) + " cyc", {}});
            }
            fig.columns[p].values.push_back(
                frac(results[wi * npoints + p], 1));
        }
    }
    return fig;
}

FigureData
ablationMemDep(std::uint64_t total_ops,
               const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Ablation: the memory trap loop (base 5_5; load/store "
                "reorder traps + wait table vs no ordering model; "
                "speedup relative to ordering on)";
    fig.valueUnit = "speedup";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        Config on_cfg;
        on_cfg.setBool("core.memdep.enable", true);
        plan.add(w, on_cfg, total_ops);
        Config off_cfg;
        off_cfg.setBool("core.memdep.enable", false);
        plan.add(w, off_cfg, total_ops);
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    fig.columns.push_back(Series{"ordering on", {}});
    fig.columns.push_back(Series{"ordering off", {}});
    fig.columns.push_back(Series{"traps/op", {}});
    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        const RunResult &on = results[wi * 2];
        const RunResult &off = results[wi * 2 + 1];
        fig.columns[0].values.push_back(
            on.failed ? failPoint(on.failKind) : 1.0);
        fig.columns[1].values.push_back(speedup(off, on));
        fig.columns[2].values.push_back(
            on.failed ? failPoint(on.failKind)
                      : on.scalar("memOrderTraps") /
                            static_cast<double>(on.retired));
    }
    return fig;
}

FigureData
ablationCrcTimeout(std::uint64_t total_ops,
                   const std::vector<std::string> &workloads)
{
    static const std::uint64_t timeouts[] = {0, 256, 64, 16};
    constexpr std::size_t npoints = std::size(timeouts);

    FigureData fig;
    fig.title = "Ablation: CRC stale-entry policy (7_3 DRA; operand "
                "miss fraction for invalidate-only vs entry timeouts)";
    fig.valueUnit = "operand miss fraction";

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (std::uint64_t timeout : timeouts) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.crc.timeout", timeout);
            plan.add(w, cfg, total_ops);
        }
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        for (std::size_t p = 0; p < npoints; ++p) {
            if (fig.columns.size() <= p) {
                std::string label = timeouts[p] == 0
                    ? "invalidate" : std::to_string(timeouts[p]) + " cyc";
                fig.columns.push_back(Series{label, {}});
            }
            fig.columns[p].values.push_back(
                frac(results[wi * npoints + p], 5));
        }
    }
    return fig;
}

FigureData
sweepConfigs(const std::string &title,
             const std::vector<std::string> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             std::uint64_t total_ops)
{
    fatal_if(configs.empty(), "sweepConfigs needs at least one config");

    FigureData fig;
    fig.title = title;
    fig.valueUnit = "IPC";
    for (const auto &[label, cfg] : configs)
        fig.columns.push_back(Series{label, {}});

    const std::vector<Workload> resolved = resolveAll(workloads);
    CampaignPlan plan;
    for (const Workload &w : resolved) {
        for (const auto &[label, cfg] : configs)
            plan.add(w, cfg, total_ops, label);
    }
    const std::vector<RunResult> results = runPlan(fig, plan);

    for (std::size_t wi = 0; wi < resolved.size(); ++wi) {
        fig.rowLabels.push_back(figureLabel(resolved[wi]));
        for (std::size_t p = 0; p < configs.size(); ++p) {
            const RunResult &r = results[wi * configs.size() + p];
            fig.columns[p].values.push_back(
                r.failed ? failPoint(r.failKind) : r.ipc);
        }
    }
    return fig;
}

} // namespace loopsim
