#include "harness/figures.hh"

#include <limits>

#include "base/logging.hh"

namespace loopsim
{

namespace
{

constexpr double failedPoint = std::numeric_limits<double>::quiet_NaN();

std::vector<Workload>
resolveAll(const std::vector<std::string> &names)
{
    std::vector<Workload> out;
    out.reserve(names.size());
    for (const auto &n : names)
        out.push_back(resolveWorkload(n));
    return out;
}

/**
 * Run one figure point fail-soft: retries are handled by
 * runOnceResilient(); a run that never finishes comes back with
 * failed=true and is logged into @p fig's failure footer so the rest
 * of the sweep still completes.
 */
RunResult
runConfig(FigureData &fig, const Workload &w, const Config &overrides,
          std::uint64_t total_ops)
{
    RunSpec spec;
    spec.workload = w;
    spec.overrides = overrides;
    spec.totalOps = total_ops;
    RunResult r = runOnceResilient(spec);
    if (r.failed) {
        std::string brief = r.error.substr(0, r.error.find('\n'));
        fig.failures.push_back(
            r.workloadLabel + " [" + r.pipeLabel + "]: " + brief);
    }
    return r;
}

/** Operand-source fraction, NaN for a failed run. */
double
frac(const RunResult &r, std::size_t i)
{
    if (r.failed || i >= r.operandSourceFractions.size())
        return failedPoint;
    return r.operandSourceFractions[i];
}

/** Gap-CDF sample, NaN for a failed run. */
double
cdfAt(const RunResult &r, unsigned c)
{
    if (r.failed || c >= r.gapCdf.size())
        return failedPoint;
    return r.gapCdf[c];
}

} // anonymous namespace

FigureData
figure4(std::uint64_t total_ops)
{
    // DEC-IQ/IQ-EX pairs summing to 6, 10, 14, 18 cycles.
    static const std::pair<unsigned, unsigned> points[] = {
        {3, 3}, {5, 5}, {7, 7}, {9, 9}};

    FigureData fig;
    fig.title = "Figure 4: performance for varying pipeline length "
                "(speedup relative to 6 cycles decode-to-execute)";
    fig.valueUnit = "speedup";

    for (const Workload &w : figureWorkloads()) {
        fig.rowLabels.push_back(figureLabel(w));

        RunResult baseline;
        for (std::size_t p = 0; p < std::size(points); ++p) {
            Config cfg;
            setPipeline(cfg, points[p].first, points[p].second);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (p == 0)
                baseline = r;
            if (fig.columns.size() <= p) {
                fig.columns.push_back(Series{
                    std::to_string(points[p].first + points[p].second) +
                        " cyc (" + r.pipeLabel + ")",
                    {}});
            }
            fig.columns[p].values.push_back(speedup(r, baseline));
        }
    }
    return fig;
}

FigureData
figure5(std::uint64_t total_ops)
{
    static const std::pair<unsigned, unsigned> points[] = {
        {3, 9}, {5, 7}, {7, 5}, {9, 3}};

    FigureData fig;
    fig.title = "Figure 5: performance for a fixed 12-cycle "
                "decode-to-execute length (speedup relative to 3_9)";
    fig.valueUnit = "speedup";

    for (const Workload &w : figureWorkloads()) {
        fig.rowLabels.push_back(figureLabel(w));

        RunResult baseline;
        for (std::size_t p = 0; p < std::size(points); ++p) {
            Config cfg;
            setPipeline(cfg, points[p].first, points[p].second);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (p == 0)
                baseline = r;
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{r.pipeLabel, {}});
            fig.columns[p].values.push_back(speedup(r, baseline));
        }
    }
    return fig;
}

FigureData
figure6(std::uint64_t total_ops, const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Figure 6: CDF of cycles between first- and second-"
                "operand availability (base 5_5 machine)";
    fig.valueUnit = "cumulative fraction";

    for (unsigned c = 0; c <= 64; ++c)
        fig.rowLabels.push_back(std::to_string(c));

    for (const Workload &w : resolveAll(workloads)) {
        Config cfg; // base machine defaults
        RunResult r = runConfig(fig, w, cfg, total_ops);
        Series s{figureLabel(w), {}};
        for (unsigned c = 0; c <= 64; ++c)
            s.values.push_back(cdfAt(r, c));
        fig.columns.push_back(std::move(s));
    }
    return fig;
}

FigureData
figure8(std::uint64_t total_ops)
{
    static const unsigned rf_latencies[] = {3, 5, 7};

    FigureData fig;
    fig.title = "Figure 8: DRA speedup over the base machine for "
                "register file latencies 3, 5 and 7 cycles";
    fig.valueUnit = "speedup";

    for (const Workload &w : figureWorkloads()) {
        fig.rowLabels.push_back(figureLabel(w));

        for (std::size_t p = 0; p < std::size(rf_latencies); ++p) {
            unsigned rf = rf_latencies[p];
            Config base_cfg;
            setBasePipeline(base_cfg, rf);
            Config dra_cfg;
            setDraPipeline(dra_cfg, rf);

            RunResult base = runConfig(fig, w, base_cfg, total_ops);
            RunResult dra = runConfig(fig, w, dra_cfg, total_ops);

            if (fig.columns.size() <= p) {
                fig.columns.push_back(Series{
                    "DRA:" + dra.pipeLabel + " vs Base:" + base.pipeLabel,
                    {}});
            }
            fig.columns[p].values.push_back(speedup(dra, base));
        }
    }
    return fig;
}

FigureData
figure9(std::uint64_t total_ops)
{
    FigureData fig;
    fig.title = "Figure 9: operand locations for the 7_3 DRA machine "
                "(5-cycle register file)";
    fig.valueUnit = "fraction of operand reads";

    static const char *labels[] = {"pre-read", "fwd-buffer", "crc",
                                   "miss"};
    for (const char *l : labels)
        fig.columns.push_back(Series{l, {}});

    for (const Workload &w : figureWorkloads()) {
        fig.rowLabels.push_back(figureLabel(w));
        Config cfg;
        setDraPipeline(cfg, 5);
        RunResult r = runConfig(fig, w, cfg, total_ops);
        // operandSourceFractions order:
        // preread, forward, crc, regfile, payload, miss
        fig.columns[0].values.push_back(frac(r, 0));
        fig.columns[1].values.push_back(frac(r, 1));
        fig.columns[2].values.push_back(frac(r, 2));
        fig.columns[3].values.push_back(frac(r, 5));
    }
    return fig;
}

FigureData
ablationCrcSize(std::uint64_t total_ops,
                const std::vector<std::string> &workloads)
{
    static const unsigned sizes[] = {4, 8, 16, 32, 64};

    FigureData fig;
    fig.title = "Ablation: CRC capacity (7_3 DRA; speedup relative to "
                "the 16-entry design point)";
    fig.valueUnit = "speedup";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));

        RunResult ref_run;
        std::vector<RunResult> runs;
        for (unsigned s : sizes) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.crc.entries", s);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (s == 16)
                ref_run = r;
            runs.push_back(std::move(r));
        }
        for (std::size_t p = 0; p < std::size(sizes); ++p) {
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(sizes[p]) + " entries", {}});
            }
            fig.columns[p].values.push_back(speedup(runs[p], ref_run));
        }
    }
    return fig;
}

FigureData
ablationCrcRepl(std::uint64_t total_ops,
                const std::vector<std::string> &workloads)
{
    static const char *policies[] = {"fifo", "lru"};

    FigureData fig;
    fig.title = "Ablation: CRC replacement policy (7_3 DRA; operand "
                "miss rate per policy)";
    fig.valueUnit = "operand miss fraction";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));
        for (std::size_t p = 0; p < std::size(policies); ++p) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.set("dra.crc.repl", policies[p]);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{policies[p], {}});
            fig.columns[p].values.push_back(frac(r, 5));
        }
    }
    return fig;
}

FigureData
ablationInsertionBits(std::uint64_t total_ops,
                      const std::vector<std::string> &workloads)
{
    static const unsigned widths[] = {1, 2, 3};

    FigureData fig;
    fig.title = "Ablation: insertion-table counter width (7_3 DRA; "
                "operand miss rate per width)";
    fig.valueUnit = "operand miss fraction";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));
        for (std::size_t p = 0; p < std::size(widths); ++p) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.insertion_bits", widths[p]);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(widths[p]) + " bits", {}});
            }
            fig.columns[p].values.push_back(frac(r, 5));
        }
    }
    return fig;
}

FigureData
ablationLoadRecovery(std::uint64_t total_ops,
                     const std::vector<std::string> &workloads)
{
    static const char *modes[] = {"reissue", "refetch", "stall"};

    FigureData fig;
    fig.title = "Ablation: load mis-speculation recovery policy (base "
                "5_5 machine; speedup relative to reissue)";
    fig.valueUnit = "speedup";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));

        RunResult ref_run;
        for (std::size_t p = 0; p < std::size(modes); ++p) {
            Config cfg;
            cfg.set("core.load_recovery", modes[p]);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (p == 0)
                ref_run = r;
            if (fig.columns.size() <= p)
                fig.columns.push_back(Series{modes[p], {}});
            fig.columns[p].values.push_back(speedup(r, ref_run));
        }
    }
    return fig;
}

FigureData
ablationKillShadow(std::uint64_t total_ops,
                   const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Ablation: dependency-tree reissue vs 21264-style "
                "kill-all-in-shadow (base 5_5; speedup relative to "
                "tree reissue)";
    fig.valueUnit = "speedup";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));

        Config tree_cfg;
        tree_cfg.setBool("core.kill_all_in_shadow", false);
        RunResult tree = runConfig(fig, w, tree_cfg, total_ops);

        Config shadow_cfg;
        shadow_cfg.setBool("core.kill_all_in_shadow", true);
        RunResult shadow = runConfig(fig, w, shadow_cfg, total_ops);

        if (fig.columns.empty()) {
            fig.columns.push_back(Series{"dep-tree", {}});
            fig.columns.push_back(Series{"kill-shadow", {}});
        }
        fig.columns[0].values.push_back(tree.failed ? failedPoint : 1.0);
        fig.columns[1].values.push_back(speedup(shadow, tree));
    }
    return fig;
}

FigureData
ablationFwdDepth(std::uint64_t total_ops,
                 const std::vector<std::string> &workloads)
{
    static const unsigned depths[] = {5, 7, 9, 13, 17};

    FigureData fig;
    fig.title = "Ablation: forwarding-buffer depth (7_3 DRA; fraction "
                "of operands read from the forwarding buffer)";
    fig.valueUnit = "fraction of operand reads";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));
        for (std::size_t p = 0; p < std::size(depths); ++p) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("core.fwd_depth", depths[p]);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (fig.columns.size() <= p) {
                fig.columns.push_back(
                    Series{std::to_string(depths[p]) + " cyc", {}});
            }
            fig.columns[p].values.push_back(frac(r, 1));
        }
    }
    return fig;
}

FigureData
ablationMemDep(std::uint64_t total_ops,
               const std::vector<std::string> &workloads)
{
    FigureData fig;
    fig.title = "Ablation: the memory trap loop (base 5_5; load/store "
                "reorder traps + wait table vs no ordering model; "
                "speedup relative to ordering on)";
    fig.valueUnit = "speedup";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));

        Config on_cfg;
        on_cfg.setBool("core.memdep.enable", true);
        RunResult on = runConfig(fig, w, on_cfg, total_ops);

        Config off_cfg;
        off_cfg.setBool("core.memdep.enable", false);
        RunResult off = runConfig(fig, w, off_cfg, total_ops);

        if (fig.columns.empty()) {
            fig.columns.push_back(Series{"ordering on", {}});
            fig.columns.push_back(Series{"ordering off", {}});
            fig.columns.push_back(Series{"traps/op", {}});
        }
        fig.columns[0].values.push_back(on.failed ? failedPoint : 1.0);
        fig.columns[1].values.push_back(speedup(off, on));
        fig.columns[2].values.push_back(
            on.failed ? failedPoint
                      : on.scalar("memOrderTraps") /
                            static_cast<double>(on.retired));
    }
    return fig;
}

FigureData
ablationCrcTimeout(std::uint64_t total_ops,
                   const std::vector<std::string> &workloads)
{
    static const std::uint64_t timeouts[] = {0, 256, 64, 16};

    FigureData fig;
    fig.title = "Ablation: CRC stale-entry policy (7_3 DRA; operand "
                "miss fraction for invalidate-only vs entry timeouts)";
    fig.valueUnit = "operand miss fraction";

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));
        for (std::size_t p = 0; p < std::size(timeouts); ++p) {
            Config cfg;
            setDraPipeline(cfg, 5);
            cfg.setUint("dra.crc.timeout", timeouts[p]);
            RunResult r = runConfig(fig, w, cfg, total_ops);
            if (fig.columns.size() <= p) {
                std::string label = timeouts[p] == 0
                    ? "invalidate" : std::to_string(timeouts[p]) + " cyc";
                fig.columns.push_back(Series{label, {}});
            }
            fig.columns[p].values.push_back(frac(r, 5));
        }
    }
    return fig;
}

FigureData
sweepConfigs(const std::string &title,
             const std::vector<std::string> &workloads,
             const std::vector<std::pair<std::string, Config>> &configs,
             std::uint64_t total_ops)
{
    fatal_if(configs.empty(), "sweepConfigs needs at least one config");

    FigureData fig;
    fig.title = title;
    fig.valueUnit = "IPC";
    for (const auto &[label, cfg] : configs)
        fig.columns.push_back(Series{label, {}});

    for (const Workload &w : resolveAll(workloads)) {
        fig.rowLabels.push_back(figureLabel(w));
        for (std::size_t p = 0; p < configs.size(); ++p) {
            RunResult r =
                runConfig(fig, w, configs[p].second, total_ops);
            fig.columns[p].values.push_back(
                r.failed ? failedPoint : r.ipc);
        }
    }
    return fig;
}

} // namespace loopsim
