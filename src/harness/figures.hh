/**
 * @file
 * Per-figure experiment drivers. Each function regenerates the data of
 * one figure of the paper's evaluation; the bench binaries print the
 * results via report.hh.
 */

#ifndef LOOPSIM_HARNESS_FIGURES_HH
#define LOOPSIM_HARNESS_FIGURES_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.hh"

namespace loopsim
{

class CampaignPlan;

/** A labelled column of per-workload values. */
struct Series
{
    std::string label;
    std::vector<double> values;
};

/** A complete figure: rows are workloads (or x-values). */
struct FigureData
{
    std::string title;
    std::string valueUnit; ///< "speedup" / "fraction" / ...
    std::vector<std::string> rowLabels;
    std::vector<Series> columns;
    /**
     * Fail-soft bookkeeping: one line per run that never finished
     * (after retries). The corresponding values are NaN; the report
     * renders them as "fail" and prints these lines as a footer.
     */
    std::vector<std::string> failures;
};

/**
 * Figure 4: performance for varying pipeline length. DEC-IQ + IQ-EX is
 * swept over {6, 10, 14, 18} (configs 3_3, 5_5, 7_7, 9_9); every value
 * is speedup relative to the 6-cycle machine for that workload.
 */
FigureData figure4(std::uint64_t total_ops);

/**
 * Figure 5: performance for a fixed overall pipeline length of 12,
 * configurations 3_9, 5_7, 7_5, 9_3, relative to 3_9.
 */
FigureData figure5(std::uint64_t total_ops);

/**
 * Figure 6: cumulative distribution of the cycles between first- and
 * second-operand availability, for one benchmark (turb3d in the
 * paper). Rows are cycle values 0..64; one column per workload given.
 */
FigureData figure6(std::uint64_t total_ops,
                   const std::vector<std::string> &workloads = {"turb3d"});

/**
 * Figure 8: DRA vs base speedups for register-file latencies 3, 5, 7
 * (DRA:5_3 vs Base:5_5, DRA:7_3 vs Base:5_7, DRA:9_3 vs Base:5_9).
 */
FigureData figure8(std::uint64_t total_ops);

/**
 * Figure 9: operand-location breakdown (pre-read / forwarding buffer /
 * CRC / miss) for the 7_3 DRA machine (5-cycle register file).
 */
FigureData figure9(std::uint64_t total_ops);

/** @name Ablations called out in DESIGN.md §5 */
/// @{
/** CRC capacity sweep (4..64 entries) on the 7_3 DRA machine. */
FigureData ablationCrcSize(std::uint64_t total_ops,
                           const std::vector<std::string> &workloads);
/** CRC replacement (fifo vs lru) on the 7_3 DRA machine. */
FigureData ablationCrcRepl(std::uint64_t total_ops,
                           const std::vector<std::string> &workloads);
/** Insertion-table counter width (1..3 bits). */
FigureData ablationInsertionBits(std::uint64_t total_ops,
                                 const std::vector<std::string> &workloads);
/** Load recovery policy: reissue vs refetch vs stall (§2.2.2). */
FigureData ablationLoadRecovery(std::uint64_t total_ops,
                                const std::vector<std::string> &workloads);
/** Dependence-tree reissue vs 21264 kill-all-in-shadow. */
FigureData ablationKillShadow(std::uint64_t total_ops,
                              const std::vector<std::string> &workloads);
/** Forwarding-buffer depth sweep on the base machine. */
FigureData ablationFwdDepth(std::uint64_t total_ops,
                            const std::vector<std::string> &workloads);
/** Memory trap loop: reorder traps + wait table on vs off. */
FigureData ablationMemDep(std::uint64_t total_ops,
                          const std::vector<std::string> &workloads);
/** §5.5 CRC stale-entry handling: invalidate-only vs timeouts. */
FigureData ablationCrcTimeout(std::uint64_t total_ops,
                              const std::vector<std::string> &workloads);
/// @}

/**
 * Execute @p plan on the campaign thread pool (harness/campaign.hh)
 * and append a failure-footer line to @p fig for every fail-soft cell.
 * Results and footer lines are in plan order regardless of job count,
 * so assembled figures are byte-identical to a serial sweep. All the
 * figure drivers above run through this; it is exposed for bench
 * binaries and tests that assemble their own FigureData.
 */
std::vector<RunResult> runPlan(FigureData &fig, const CampaignPlan &plan);

/**
 * Generic sweep: one row per workload, one labelled configuration per
 * column, raw IPC as the value. Runs fail-soft: a configuration that
 * cannot finish (even after retries) yields a NaN point and an entry
 * in FigureData::failures instead of aborting the sweep.
 */
FigureData sweepConfigs(
    const std::string &title,
    const std::vector<std::string> &workloads,
    const std::vector<std::pair<std::string, Config>> &configs,
    std::uint64_t total_ops);

} // namespace loopsim

#endif // LOOPSIM_HARNESS_FIGURES_HH
