#include "serve/client.hh"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include "base/annotations.hh"
#include "base/logging.hh"
#include "harness/campaign.hh"

namespace loopsim::serve
{

namespace
{

std::mutex &
clientMutex()
{
    static std::mutex m;
    return m;
}

/** --server override; "" = unset. */
LOOPSIM_CAMPAIGN_GUARDED("clientMutex")
std::string endpointOverride;
LOOPSIM_CAMPAIGN_GUARDED("clientMutex")
bool endpointOverridden = false;

LOOPSIM_CAMPAIGN_GUARDED("clientMutex")
ServeTelemetry lastTelemetry;

std::string
envEndpoint()
{
    const char *env = std::getenv("LOOPSIM_SERVER"); // NOLINT(concurrency-mt-unsafe)
    return env != nullptr ? std::string(env) : std::string();
}

std::string
resolveTenant(const std::string &requested)
{
    if (!requested.empty())
        return requested;
    const char *env = std::getenv("LOOPSIM_TENANT"); // NOLINT(concurrency-mt-unsafe)
    if (env != nullptr && *env != '\0')
        return env;
    return "anonymous";
}

/** Split "host:port"; false on anything unusable. */
bool
splitEndpoint(const std::string &endpoint, std::string &host,
              std::string &port)
{
    const std::size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= endpoint.size()) {
        return false;
    }
    host = endpoint.substr(0, colon);
    port = endpoint.substr(colon + 1);
    return true;
}

/** Connect a TCP socket to @p endpoint; -1 (with @p error) on failure. */
int
connectTo(const std::string &endpoint, std::string &error)
{
    std::string host;
    std::string port;
    if (!splitEndpoint(endpoint, host, port)) {
        error = "unusable server endpoint \"" + endpoint +
                "\" (want host:port)";
        return -1;
    }

    struct addrinfo hints = {};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_NUMERICSERV;
    struct addrinfo *list = nullptr;
    int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &list);
    if (gai != 0) {
        error = "cannot resolve " + endpoint + ": " + gai_strerror(gai);
        return -1;
    }
    int fd = -1;
    for (struct addrinfo *ai = list; ai != nullptr; ai = ai->ai_next) {
        fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0)
            continue;
        if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0)
            break;
        ::close(fd);
        fd = -1;
    }
    ::freeaddrinfo(list);
    if (fd < 0)
        error = "cannot connect to " + endpoint;
    return fd;
}

/** Hello/HelloOk handshake on a fresh connection. */
bool
handshake(int fd, const std::string &tenant, std::string &error)
{
    if (!writeFrame(fd, FrameType::Hello, encodeHello(tenant))) {
        error = "server closed the connection during handshake";
        return false;
    }
    Frame frame;
    if (readFrame(fd, frame) != ReadStatus::Ok) {
        error = "unreadable handshake reply";
        return false;
    }
    if (frame.type == FrameType::Error) {
        std::string msg;
        decodeError(frame.payload, msg);
        error = "server refused: " + msg;
        return false;
    }
    std::uint32_t version = 0;
    if (frame.type != FrameType::HelloOk ||
        !decodeHelloOk(frame.payload, version) ||
        version != kProtocolVersion) {
        error = "protocol version mismatch";
        return false;
    }
    return true;
}

/**
 * One connection's worth of submit + stream. Results land by index
 * into @p results / @p have; true only when Done arrived with every
 * cell assembled. @p drop_after (single-shot, zeroed when taken)
 * injects a client-side disconnect for the resume tests.
 */
bool
attemptPlan(int fd, const std::string &submit_payload, std::size_t cells,
            std::vector<RunResult> &results, std::vector<bool> &have,
            ServeTelemetry &telemetry, std::size_t &drop_after,
            std::string &error)
{
    if (!writeFrame(fd, FrameType::Submit, submit_payload)) {
        error = "connection lost while submitting the plan";
        return false;
    }
    std::size_t received = 0;
    for (;;) {
        Frame frame;
        ReadStatus rs = readFrame(fd, frame);
        if (rs != ReadStatus::Ok) {
            // Corrupt and Eof alike: drop the connection and let the
            // reconnect resubmit. A torn frame is never patched up.
            error = rs == ReadStatus::Corrupt
                        ? "corrupt frame from server"
                        : "connection lost mid-stream";
            return false;
        }
        switch (frame.type) {
          case FrameType::Result: {
            std::uint64_t index = 0;
            RunResult res;
            if (!decodeResult(frame.payload, index, res) ||
                index >= cells) {
                error = "corrupt result record from server";
                return false;
            }
            results[index] = std::move(res);
            have[index] = true;
            ++received;
            if (drop_after != 0 && received >= drop_after) {
                drop_after = 0;
                error = "connection dropped (injected)";
                return false;
            }
            break;
          }
          case FrameType::Done: {
            ServeTelemetry done;
            if (decodeTelemetry(frame.payload, done))
                telemetry.accumulate(done);
            for (std::size_t i = 0; i < cells; ++i) {
                if (!have[i]) {
                    error = "server finished without every cell";
                    return false;
                }
            }
            return true;
          }
          case FrameType::Error: {
            std::string msg;
            decodeError(frame.payload, msg);
            error = "server error: " + msg;
            return false;
          }
          default:
            error = "unexpected frame from server";
            return false;
        }
    }
}

} // anonymous namespace

void
setServeEndpoint(const std::string &endpoint)
{
    std::lock_guard<std::mutex> lock(clientMutex());
    endpointOverride = endpoint;
    endpointOverridden = true;
}

std::string
serveEndpoint()
{
    {
        std::lock_guard<std::mutex> lock(clientMutex());
        if (endpointOverridden)
            return endpointOverride;
    }
    return envEndpoint();
}

bool
serveConfigured()
{
    return !serveEndpoint().empty();
}

ServeTelemetry
lastClientTelemetry()
{
    std::lock_guard<std::mutex> lock(clientMutex());
    return lastTelemetry;
}

bool
submitPlanRemote(const CampaignPlan &plan, const RetryPolicy &policy,
                 const SubmitOptions &opts, std::vector<RunResult> &results,
                 ServeTelemetry &telemetry, std::string &error)
{
    const std::string endpoint =
        !opts.endpoint.empty() ? opts.endpoint : serveEndpoint();
    if (endpoint.empty()) {
        error = "no server endpoint configured";
        return false;
    }
    const std::string tenant = resolveTenant(opts.tenant);

    // Flatten every cell to its effective configuration *here*: the
    // client's overlays (LOOPSIM_OVERLAY, setRunOverlay()) must be
    // what the server simulates, and the server never sees them
    // directly. See DESIGN.md §16 for the matching daemon-side rule.
    CampaignPlan flat;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        RunSpec spec = plan.at(i).spec;
        spec.overrides = effectiveRunConfig(spec);
        flat.add(std::move(spec), plan.at(i).label);
    }
    const std::string submit_payload = encodePlan(flat, policy);

    const std::size_t n = plan.size();
    results.assign(n, RunResult{});
    std::vector<bool> have(n, false);
    telemetry = ServeTelemetry{};
    telemetry.tenant = tenant;
    std::size_t drop_after = opts.dropAfterResults;

    const unsigned attempts = std::max(opts.reconnectAttempts, 1u);
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0) {
            ++telemetry.reconnects;
            warn("serve: reconnecting to ", endpoint, " (attempt ",
                 attempt + 1, " of ", attempts, "): ", error);
            if (opts.reconnectBackoffMs > 0) {
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    opts.reconnectBackoffMs * attempt));
            }
        }
        int fd = connectTo(endpoint, error);
        if (fd < 0)
            continue;
        bool done = handshake(fd, tenant, error) &&
                    attemptPlan(fd, submit_payload, n, results, have,
                                telemetry, drop_after, error);
        ::close(fd);
        if (done) {
            telemetry.cells = n;
            return true;
        }
    }
    return false;
}

bool
runCampaignRemote(const CampaignPlan &plan, const RetryPolicy &policy,
                  std::vector<RunResult> &results, std::string &error)
{
    // loop:exempt(analyze: wall-clock client telemetry only)
    const auto started = std::chrono::steady_clock::now();
    ServeTelemetry tele;
    if (!submitPlanRemote(plan, policy, SubmitOptions{}, results, tele,
                          error)) {
        return false;
    }
    // loop:exempt(analyze: wall-clock client telemetry only)
    const auto finished = std::chrono::steady_clock::now();

    {
        std::lock_guard<std::mutex> lock(clientMutex());
        lastTelemetry = tele;
    }

    // Surface the service telemetry through the standard campaign
    // counters so BENCH_campaign.json keeps one schema: simulated
    // stays "cells that actually ran a simulator" (0 on a warm or
    // fully resumed plan), cache and dedup hits fold into memoHits.
    CampaignTelemetry t;
    t.jobs = 1;
    t.hostCpus = hostCpus();
    t.runs = tele.cells;
    t.failures = tele.failures;
    t.simulated = tele.simulated;
    t.memoHits = tele.cacheHits + tele.dedupHits;
    t.resumed = tele.resumed;
    t.isolatedRuns = tele.simulated;
    t.crashes = tele.crashes;
    t.timeouts = tele.timeouts;
    t.wallSeconds =
        std::chrono::duration<double>(finished - started).count();
    recordCampaignTelemetry(t);
    return true;
}

bool
pingServer(const std::string &endpoint, std::string &error)
{
    const std::string target =
        !endpoint.empty() ? endpoint : serveEndpoint();
    if (target.empty()) {
        error = "no server endpoint configured";
        return false;
    }
    int fd = connectTo(target, error);
    if (fd < 0)
        return false;
    const bool ok = handshake(fd, resolveTenant(""), error);
    ::close(fd);
    return ok;
}

} // namespace loopsim::serve
