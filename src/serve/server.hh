/**
 * @file
 * Multi-tenant campaign service: the library behind loopsim-serve.
 *
 * A CampaignServer accepts serialized CampaignPlans from concurrent
 * clients over TCP (serve/protocol.hh), shards their cells across a
 * pool of executor threads that each run cells in fork-isolated
 * supervised workers (harness/supervisor.hh: wall-clock deadlines,
 * crash classification, backoff respawns), and streams per-cell
 * results back strictly in plan order — a client-assembled figure is
 * byte-identical to a local `--jobs N` run.
 *
 * Cache tier: before anything simulates, every cell is resolved
 * against (in order) the plan's campaign journal (when --journal is
 * configured: recorded verdicts included, so a reconnecting client
 * resumes instead of re-crashing workers), the process-wide result
 * memo, the persistent content-addressed store (--store), and the set
 * of *in-flight* executions — a cell another tenant is simulating
 * right now is subscribed to, not re-run. Concurrent tenants with
 * overlapping plans therefore dedupe each other's work; each
 * fingerprint executes at most once per server lifetime.
 *
 * Shutdown: beginDrain() (the daemon's SIGTERM path) stops accepting
 * connections and new plans; in-flight plans finish streaming, queued
 * cells complete and are journaled, then stop() joins everything.
 * Sessions waiting for a next request while draining get
 * Error("draining") and an orderly close.
 */

#ifndef LOOPSIM_SERVE_SERVER_HH
#define LOOPSIM_SERVE_SERVER_HH

#include <memory>
#include <string>

#include "serve/protocol.hh"

namespace loopsim::serve
{

struct ServerOptions
{
    /** Bind address; the daemon default stays loopback-only. */
    std::string host = "127.0.0.1";
    /** TCP port; 0 binds an ephemeral port (read it via port()). */
    unsigned short port = 0;
    /** Executor threads (each running fork-isolated workers);
     *  0 resolves via campaignJobs() — --jobs auto = host_cpus. */
    unsigned jobs = 0;
    /** Per-call socket I/O deadline (SO_RCVTIMEO/SO_SNDTIMEO) on
     *  accepted connections: a client that stalls mid-frame or stops
     *  draining results is treated as gone after this long, instead of
     *  pinning a session thread (and with it SIGTERM drain) forever.
     *  0 disables the deadline. */
    unsigned ioTimeoutMs = 30000;
};

class CampaignServer
{
  public:
    explicit CampaignServer(ServerOptions options = {});
    ~CampaignServer(); ///< stop()s if still running

    CampaignServer(const CampaignServer &) = delete;
    CampaignServer &operator=(const CampaignServer &) = delete;

    /** Bind, listen and spawn the accept loop + executor pool.
     *  False (with @p error filled) when the socket setup fails. */
    bool start(std::string &error);

    /** Stop accepting connections and new plans; in-flight plans and
     *  queued cells still complete. Idempotent, signal-driven safe to
     *  call from any thread (not from a handler — see requestDrain). */
    void beginDrain();
    bool draining() const;

    /** Drain, wait for sessions to finish, run down the executor
     *  queue, join every thread. Idempotent. */
    void stop();

    /** The bound port (after start()); 0 before. */
    unsigned short port() const;
    /** Resolved executor-pool width (after start()). */
    unsigned jobs() const;

    /** Telemetry accumulated across every plan served so far. */
    ServeTelemetry totals() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

/** @name Daemon drain plumbing
 * A SIGTERM/SIGINT handler may only set a flag; the daemon's main
 * loop polls drainRequested() and calls stop() itself. */
/// @{
void requestDrain(); ///< async-signal-safe
bool drainRequested();
void clearDrainRequest(); ///< tests
/** Install SIGTERM/SIGINT handlers that call requestDrain(). */
void installDrainSignalHandlers();
/// @}

} // namespace loopsim::serve

#endif // LOOPSIM_SERVE_SERVER_HH
