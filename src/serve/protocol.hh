/**
 * @file
 * Wire protocol of the campaign service (loopsim-serve).
 *
 * Everything on the socket is a *frame* (integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "LSV1"
 *   4       4     frame type (FrameType)
 *   8       4     payload size in bytes
 *   12      4     CRC-32 (ISO-HDLC) of the payload bytes
 *   16      ...   payload
 *
 * The CRC reuses the store record codec's polynomial (store/record.hh),
 * and result payloads embed a complete store record, so a result frame
 * is double-guarded: a frame torn by the network reads as Corrupt and a
 * record torn inside a valid frame fails its own CRC. Either way the
 * client treats the connection as lost and resubmits — corruption can
 * cost a reconnect, never a wrong figure cell.
 *
 * Conversation:
 *
 *   client                         server
 *   Hello(version, tenant)   ->
 *                            <-   HelloOk(version)
 *   Submit(plan, policy)     ->
 *                            <-   Result(0, record)    in plan order
 *                            <-   Result(1, record)
 *                            <-   ...
 *                            <-   Done(telemetry)
 *
 * Either side may send Error(message) instead and close. A client may
 * send further Submit frames on the same connection; a draining server
 * answers them with Error("draining").
 *
 * The Submit payload carries each cell's *fully resolved* configuration
 * (effectiveRunConfig(): defaults, spec overrides and the client's
 * overlays, flattened to one sorted key/value map) plus every field of
 * every thread's BenchmarkProfile — the exact inputs the store
 * fingerprint hashes (store/fingerprint.cc). The server re-resolves and
 * re-fingerprints with the standard path, so client and server agree on
 * cache keys and a served figure is byte-identical to a local run,
 * provided the daemon runs without overlays of its own (see DESIGN.md
 * §16).
 */

#ifndef LOOPSIM_SERVE_PROTOCOL_HH
#define LOOPSIM_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "harness/campaign.hh"
#include "harness/experiment.hh"

namespace loopsim::serve
{

constexpr std::uint32_t kFrameMagic = 0x3156534cu; // "LSV1"
constexpr std::uint32_t kProtocolVersion = 1;
constexpr std::size_t kFrameHeaderBytes = 16;
/** Upper bound on one frame's payload; a header announcing more is
 *  treated as corruption, bounding a garbage length prefix. */
constexpr std::uint32_t kMaxFramePayload = 256u << 20;

enum class FrameType : std::uint32_t
{
    Hello = 1,   ///< client -> server: version + tenant label
    HelloOk = 2, ///< server -> client: version
    Submit = 3,  ///< client -> server: plan + retry policy
    Result = 4,  ///< server -> client: plan index + store record
    Done = 5,    ///< server -> client: per-plan telemetry
    Error = 6,   ///< either direction: diagnostic, then close
};

struct Frame
{
    FrameType type = FrameType::Error;
    std::string payload;
};

enum class ReadStatus
{
    Ok,      ///< frame read and CRC-verified
    Eof,     ///< orderly close before a header
    Corrupt, ///< bad magic/type/length/CRC — treat the peer as lost
    Failed,  ///< read error on the descriptor
};

/** Serialize a frame (header + payload) to bytes. */
std::string encodeFrame(FrameType type, const std::string &payload);

/** Write one whole frame to @p fd (EINTR-safe; MSG_NOSIGNAL on
 *  sockets so a vanished peer reports an error instead of SIGPIPE). */
bool writeFrame(int fd, FrameType type, const std::string &payload);

/** Read one whole frame from @p fd, verifying magic, bounds and CRC. */
ReadStatus readFrame(int fd, Frame &out);

/** @name Payload codecs
 * All decoders are strictly bounds-checked and return false on any
 * mismatch, leaving the outputs unspecified. */
/// @{

std::string encodeHello(const std::string &tenant);
bool decodeHello(const std::string &payload, std::uint32_t &version,
                 std::string &tenant);

std::string encodeHelloOk();
bool decodeHelloOk(const std::string &payload, std::uint32_t &version);

/** Submit payload: retry policy + every cell (label, workload,
 *  resolved config entries, op/warmup/cycle budgets). */
std::string encodePlan(const CampaignPlan &plan, const RetryPolicy &policy);
bool decodePlan(const std::string &payload, CampaignPlan &plan,
                RetryPolicy &policy);

/** Result payload: plan index + the cell's RunResult as a store
 *  record under a fixed sentinel fingerprint (CRC-guarded). */
std::string encodeResult(std::uint64_t index, const RunResult &result);
bool decodeResult(const std::string &payload, std::uint64_t &index,
                  RunResult &result);

/** Per-plan, per-tenant service telemetry (the Done payload). */
struct ServeTelemetry
{
    std::string tenant;
    /** Plan cells answered. */
    std::uint64_t cells = 0;
    /** Cells this session enqueued for execution (== simulated on the
     *  server; kept distinct so a client summing over reconnects can
     *  tell queueing from completion). */
    std::uint64_t queued = 0;
    /** Cells executed by the worker pool on this session's behalf. */
    std::uint64_t simulated = 0;
    /** Cells answered by the shared memo / persistent store. */
    std::uint64_t cacheHits = 0;
    /** Cells answered by subscribing to another tenant's in-flight
     *  execution of the same fingerprint. */
    std::uint64_t dedupHits = 0;
    /** Cells replayed from this plan's campaign journal. */
    std::uint64_t resumed = 0;
    /** Failed (fail/crash/timeout) cells among the results. */
    std::uint64_t failures = 0;
    /** Worker-process deaths / deadline overruns attributed to cells
     *  this session enqueued. */
    std::uint64_t crashes = 0;
    std::uint64_t timeouts = 0;
    /** Client-side only: reconnect attempts consumed (always 0 in a
     *  server-emitted Done frame). */
    std::uint64_t reconnects = 0;
    double wallSeconds = 0.0;

    void accumulate(const ServeTelemetry &other);
};

std::string encodeTelemetry(const ServeTelemetry &t);
bool decodeTelemetry(const std::string &payload, ServeTelemetry &t);

std::string encodeError(const std::string &message);
bool decodeError(const std::string &payload, std::string &message);
/// @}

} // namespace loopsim::serve

#endif // LOOPSIM_SERVE_PROTOCOL_HH
