#include "serve/protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "store/record.hh"
#include "workload/profile.hh"

namespace loopsim::serve
{

namespace
{

/**
 * A result frame's embedded store record travels between processes of
 * the same build, so the codec's fingerprint check only needs a fixed
 * sentinel (the supervisor pipe uses the same trick); the record CRC is
 * what catches bytes torn inside a CRC-valid frame.
 */
const store::Fingerprint kServeWireFp{0x6c6f6f7073696d00ull,
                                      0x7365727665ull};

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

void
putStr(std::string &out, const std::string &s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

bool
getU32(const std::string &in, std::size_t &at, std::uint32_t &v)
{
    if (in.size() < at + 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 4;
    return true;
}

bool
getU64(const std::string &in, std::size_t &at, std::uint64_t &v)
{
    if (in.size() < at + 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    at += 8;
    return true;
}

bool
getF64(const std::string &in, std::size_t &at, double &v)
{
    std::uint64_t bits = 0;
    if (!getU64(in, at, bits))
        return false;
    std::memcpy(&v, &bits, sizeof(v));
    return true;
}

bool
getStr(const std::string &in, std::size_t &at, std::string &s)
{
    std::uint32_t len = 0;
    if (!getU32(in, at, len) || in.size() - at < len)
        return false;
    s.assign(in, at, len);
    at += len;
    return true;
}

/**
 * Smallest possible wire footprint of one encoded profile (empty name,
 * no dep-distance weights): every fixed-width field putProfile() emits
 * plus the two length prefixes. Decoders use it to bound an announced
 * element count against the bytes actually present before allocating.
 */
constexpr std::uint64_t kMinProfileWireBytes = 228;

/**
 * Every result-shaping field of one thread's profile, mirroring
 * hashProfile() in store/fingerprint.cc — the wire must carry exactly
 * what the fingerprint hashes, or client and server could disagree on
 * a cache key without disagreeing on bytes sent.
 */
void
putProfile(std::string &out, const BenchmarkProfile &p)
{
    putStr(out, p.name);
    putU32(out, p.floatingPoint ? 1 : 0);

    putF64(out, p.condBranchFrac);
    putF64(out, p.uncondBranchFrac);
    putF64(out, p.loadFrac);
    putF64(out, p.storeFrac);
    putF64(out, p.intMultFrac);
    putF64(out, p.fpAddFrac);
    putF64(out, p.fpMultFrac);
    putF64(out, p.fpDivFrac);
    putF64(out, p.nopFrac);
    putF64(out, p.barrierFrac);

    putF64(out, p.mispredictRate);
    putF64(out, p.uncondMispredictRate);
    putU64(out, p.numStaticBranches);
    putF64(out, p.takenBias);

    putU64(out, p.hotBytes);
    putU64(out, p.l2Bytes);
    putF64(out, p.l2ResidentFrac);
    putF64(out, p.farFrac);
    putU64(out, p.farStrideBytes);

    putU32(out, static_cast<std::uint32_t>(p.depDistWeights.size()));
    for (double w : p.depDistWeights)
        putF64(out, w);
    putF64(out, p.serialChainFrac);
    putF64(out, p.longLivedSrcFrac);
    putF64(out, p.hotSrcFrac);
    putU64(out, p.hotRegCount);
    putU64(out, p.hotWritePeriod);
    putF64(out, p.secondSrcFrac);

    putU64(out, p.codeLoopLength);
    putU64(out, p.seed);
}

bool
getProfile(const std::string &in, std::size_t &at, BenchmarkProfile &p)
{
    std::uint32_t flag = 0;
    if (!getStr(in, at, p.name) || !getU32(in, at, flag))
        return false;
    p.floatingPoint = flag != 0;

    if (!getF64(in, at, p.condBranchFrac) ||
        !getF64(in, at, p.uncondBranchFrac) ||
        !getF64(in, at, p.loadFrac) || !getF64(in, at, p.storeFrac) ||
        !getF64(in, at, p.intMultFrac) || !getF64(in, at, p.fpAddFrac) ||
        !getF64(in, at, p.fpMultFrac) || !getF64(in, at, p.fpDivFrac) ||
        !getF64(in, at, p.nopFrac) || !getF64(in, at, p.barrierFrac)) {
        return false;
    }

    std::uint64_t u = 0;
    if (!getF64(in, at, p.mispredictRate) ||
        !getF64(in, at, p.uncondMispredictRate) || !getU64(in, at, u)) {
        return false;
    }
    p.numStaticBranches = static_cast<unsigned>(u);
    if (!getF64(in, at, p.takenBias))
        return false;

    if (!getU64(in, at, p.hotBytes) || !getU64(in, at, p.l2Bytes) ||
        !getF64(in, at, p.l2ResidentFrac) ||
        !getF64(in, at, p.farFrac) || !getU64(in, at, p.farStrideBytes)) {
        return false;
    }

    std::uint32_t weights = 0;
    if (!getU32(in, at, weights) || in.size() - at < weights * 8ull)
        return false;
    p.depDistWeights.resize(weights);
    for (std::uint32_t i = 0; i < weights; ++i) {
        if (!getF64(in, at, p.depDistWeights[i]))
            return false;
    }
    if (!getF64(in, at, p.serialChainFrac) ||
        !getF64(in, at, p.longLivedSrcFrac) ||
        !getF64(in, at, p.hotSrcFrac) || !getU64(in, at, u)) {
        return false;
    }
    p.hotRegCount = static_cast<unsigned>(u);
    if (!getU64(in, at, u))
        return false;
    p.hotWritePeriod = static_cast<unsigned>(u);
    if (!getF64(in, at, p.secondSrcFrac) || !getU64(in, at, u))
        return false;
    p.codeLoopLength = static_cast<unsigned>(u);
    return getU64(in, at, p.seed);
}

} // anonymous namespace

void
ServeTelemetry::accumulate(const ServeTelemetry &other)
{
    if (tenant.empty())
        tenant = other.tenant;
    cells += other.cells;
    queued += other.queued;
    simulated += other.simulated;
    cacheHits += other.cacheHits;
    dedupHits += other.dedupHits;
    resumed += other.resumed;
    failures += other.failures;
    crashes += other.crashes;
    timeouts += other.timeouts;
    reconnects += other.reconnects;
    wallSeconds += other.wallSeconds;
}

std::string
encodeFrame(FrameType type, const std::string &payload)
{
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size());
    putU32(out, kFrameMagic);
    putU32(out, static_cast<std::uint32_t>(type));
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    putU32(out, store::crc32(payload.data(), payload.size()));
    out.append(payload);
    return out;
}

bool
writeFrame(int fd, FrameType type, const std::string &payload)
{
    const std::string bytes = encodeFrame(type, payload);
    const char *data = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        // MSG_NOSIGNAL: a peer that vanished mid-stream must surface
        // as EPIPE, not kill the server. Pipes (tests) lack send();
        // fall back to write() for them.
        ssize_t w = ::send(fd, data, left, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, data, left);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        left -= static_cast<std::size_t>(w);
    }
    return true;
}

namespace
{

/** Read exactly @p n bytes; Ok / Eof (nothing read) / Failed. A
 *  receive deadline expiring mid-read (SO_RCVTIMEO -> EAGAIN) reads
 *  as Failed: the peer is treated as gone, never as short data. */
ReadStatus
readExact(int fd, std::string &out, std::size_t n)
{
    out.clear();
    out.reserve(n);
    char buf[4096];
    while (out.size() < n) {
        std::size_t want = std::min(sizeof(buf), n - out.size());
        ssize_t r = ::read(fd, buf, want);
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Failed;
        }
        if (r == 0)
            return out.empty() ? ReadStatus::Eof : ReadStatus::Corrupt;
        out.append(buf, static_cast<std::size_t>(r));
    }
    return ReadStatus::Ok;
}

} // anonymous namespace

ReadStatus
readFrame(int fd, Frame &out)
{
    std::string header;
    ReadStatus hs = readExact(fd, header, kFrameHeaderBytes);
    if (hs != ReadStatus::Ok)
        return hs;

    std::size_t at = 0;
    std::uint32_t magic = 0;
    std::uint32_t type = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    getU32(header, at, magic);
    getU32(header, at, type);
    getU32(header, at, len);
    getU32(header, at, crc);
    if (magic != kFrameMagic || len > kMaxFramePayload ||
        type < static_cast<std::uint32_t>(FrameType::Hello) ||
        type > static_cast<std::uint32_t>(FrameType::Error)) {
        return ReadStatus::Corrupt;
    }

    ReadStatus ps = readExact(fd, out.payload, len);
    if (ps == ReadStatus::Eof)
        return ReadStatus::Corrupt; // header without its payload
    if (ps != ReadStatus::Ok)
        return ps;
    if (store::crc32(out.payload.data(), out.payload.size()) != crc)
        return ReadStatus::Corrupt;
    out.type = static_cast<FrameType>(type);
    return ReadStatus::Ok;
}

std::string
encodeHello(const std::string &tenant)
{
    std::string out;
    putU32(out, kProtocolVersion);
    putStr(out, tenant);
    return out;
}

bool
decodeHello(const std::string &payload, std::uint32_t &version,
            std::string &tenant)
{
    std::size_t at = 0;
    return getU32(payload, at, version) && getStr(payload, at, tenant) &&
           at == payload.size();
}

std::string
encodeHelloOk()
{
    std::string out;
    putU32(out, kProtocolVersion);
    return out;
}

bool
decodeHelloOk(const std::string &payload, std::uint32_t &version)
{
    std::size_t at = 0;
    return getU32(payload, at, version) && at == payload.size();
}

std::string
encodePlan(const CampaignPlan &plan, const RetryPolicy &policy)
{
    std::string out;
    putU32(out, policy.attempts);
    putF64(out, policy.budgetGrowth);
    putU64(out, policy.seedStride);
    putU32(out, policy.failSoft ? 1 : 0);

    putU64(out, plan.size());
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const PlannedRun &cell = plan.at(i);
        putStr(out, cell.label);
        putStr(out, cell.spec.workload.label);
        putU32(out,
               static_cast<std::uint32_t>(cell.spec.workload.threads.size()));
        for (const BenchmarkProfile &p : cell.spec.workload.threads)
            putProfile(out, p);
        const auto &entries = cell.spec.overrides.entries();
        putU32(out, static_cast<std::uint32_t>(entries.size()));
        for (const auto &[key, value] : entries) {
            putStr(out, key);
            putStr(out, value);
        }
        putU64(out, cell.spec.totalOps);
        putU64(out, cell.spec.warmupOps);
        putU64(out, cell.spec.maxCycles);
    }
    return out;
}

bool
decodePlan(const std::string &payload, CampaignPlan &plan,
           RetryPolicy &policy)
{
    std::size_t at = 0;
    std::uint32_t flag = 0;
    if (!getU32(payload, at, policy.attempts) ||
        !getF64(payload, at, policy.budgetGrowth) ||
        !getU64(payload, at, policy.seedStride) ||
        !getU32(payload, at, flag)) {
        return false;
    }
    policy.failSoft = flag != 0;

    std::uint64_t cells = 0;
    if (!getU64(payload, at, cells))
        return false;
    for (std::uint64_t c = 0; c < cells; ++c) {
        PlannedRun cell;
        std::uint32_t threads = 0;
        if (!getStr(payload, at, cell.label) ||
            !getStr(payload, at, cell.spec.workload.label) ||
            !getU32(payload, at, threads)) {
            return false;
        }
        // Bound the announced count against the bytes actually present
        // (cf. the depDistWeights guard in getProfile): CRC32 is not a
        // security boundary, and a garbage count must read as a
        // malformed plan, never drive resize() into a huge allocation.
        if (payload.size() - at < threads * kMinProfileWireBytes)
            return false;
        cell.spec.workload.threads.resize(threads);
        for (std::uint32_t t = 0; t < threads; ++t) {
            if (!getProfile(payload, at, cell.spec.workload.threads[t]))
                return false;
        }
        std::uint32_t entries = 0;
        if (!getU32(payload, at, entries))
            return false;
        for (std::uint32_t e = 0; e < entries; ++e) {
            std::string key;
            std::string value;
            if (!getStr(payload, at, key) || !getStr(payload, at, value))
                return false;
            cell.spec.overrides.set(key, value);
        }
        std::uint64_t max_cycles = 0;
        if (!getU64(payload, at, cell.spec.totalOps) ||
            !getU64(payload, at, cell.spec.warmupOps) ||
            !getU64(payload, at, max_cycles)) {
            return false;
        }
        cell.spec.maxCycles = max_cycles;
        plan.add(std::move(cell.spec), std::move(cell.label));
    }
    return at == payload.size();
}

std::string
encodeResult(std::uint64_t index, const RunResult &result)
{
    std::string out;
    putU64(out, index);
    out.append(store::encodeRecord(kServeWireFp, result));
    return out;
}

bool
decodeResult(const std::string &payload, std::uint64_t &index,
             RunResult &result)
{
    std::size_t at = 0;
    if (!getU64(payload, at, index))
        return false;
    return store::decodeRecord(payload.substr(at), kServeWireFp, result);
}

std::string
encodeTelemetry(const ServeTelemetry &t)
{
    std::string out;
    putStr(out, t.tenant);
    putU64(out, t.cells);
    putU64(out, t.queued);
    putU64(out, t.simulated);
    putU64(out, t.cacheHits);
    putU64(out, t.dedupHits);
    putU64(out, t.resumed);
    putU64(out, t.failures);
    putU64(out, t.crashes);
    putU64(out, t.timeouts);
    putU64(out, t.reconnects);
    putF64(out, t.wallSeconds);
    return out;
}

bool
decodeTelemetry(const std::string &payload, ServeTelemetry &t)
{
    std::size_t at = 0;
    return getStr(payload, at, t.tenant) && getU64(payload, at, t.cells) &&
           getU64(payload, at, t.queued) &&
           getU64(payload, at, t.simulated) &&
           getU64(payload, at, t.cacheHits) &&
           getU64(payload, at, t.dedupHits) &&
           getU64(payload, at, t.resumed) &&
           getU64(payload, at, t.failures) &&
           getU64(payload, at, t.crashes) &&
           getU64(payload, at, t.timeouts) &&
           getU64(payload, at, t.reconnects) &&
           getF64(payload, at, t.wallSeconds) && at == payload.size();
}

std::string
encodeError(const std::string &message)
{
    std::string out;
    putStr(out, message);
    return out;
}

bool
decodeError(const std::string &payload, std::string &message)
{
    std::size_t at = 0;
    return getStr(payload, at, message) && at == payload.size();
}

} // namespace loopsim::serve
