#include "serve/server.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "base/logging.hh"
#include "core/machine_config.hh"
#include "harness/supervisor.hh"
#include "store/fingerprint.hh"
#include "store/journal.hh"
#include "store/result_store.hh"

namespace loopsim::serve
{

namespace
{

/** Daemon drain flag, set from the SIGTERM/SIGINT handler. */
std::atomic<bool> drainFlag{false};

void
onDrainSignal(int)
{
    drainFlag.store(true, std::memory_order_release);
}

/**
 * One unit of work: a unique fingerprint some session needs simulated.
 * Sessions needing the same fingerprint (the same cell submitted by a
 * concurrent tenant, or a duplicate plan point) all wait on the one
 * task instead of enqueuing it again.
 */
struct CellTask
{
    store::Fingerprint fp;
    RunSpec spec;
    RetryPolicy policy;
    std::string label;

    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    RunResult result;
    unsigned crashes = 0;
    unsigned timeouts = 0;

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return done; });
    }
};

using TaskPtr = std::shared_ptr<CellTask>;

/** Fail-soft shape for anything that escapes the supervisor (fatal()
 *  on a malformed spec, fork resource exhaustion, ...), mirroring the
 *  campaign executor's degradation: a labeled failed cell, never a
 *  torn session. */
RunResult
failSoftResult(const RunSpec &spec, const std::string &label,
               const char *what)
{
    RunResult res;
    res.failed = true;
    res.failKind = FailKind::Sim;
    res.error = what;
    res.ipc = failPoint(FailKind::Sim);
    try {
        res.workloadLabel = spec.workload.threads.empty()
                                ? spec.workload.label
                                : figureLabel(spec.workload);
        res.pipeLabel =
            MachineConfig::fromConfig(spec.overrides).pipeLabel();
    } catch (const std::exception &) {
        // The spec itself is unprintable; keep whatever stuck.
    }
    if (res.workloadLabel.empty())
        res.workloadLabel = label.empty() ? "?" : label;
    if (res.pipeLabel.empty())
        res.pipeLabel = "?";
    return res;
}

} // anonymous namespace

void
requestDrain()
{
    drainFlag.store(true, std::memory_order_release);
}

bool
drainRequested()
{
    return drainFlag.load(std::memory_order_acquire);
}

void
clearDrainRequest()
{
    drainFlag.store(false, std::memory_order_release);
}

void
installDrainSignalHandlers()
{
    struct sigaction sa = {};
    sa.sa_handler = onDrainSignal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

struct CampaignServer::Impl
{
    ServerOptions opts;
    int listenFd = -1;
    unsigned short boundPort = 0;
    unsigned poolJobs = 1;

    std::atomic<bool> started{false};
    std::atomic<bool> draining{false};
    std::atomic<bool> stopping{false};
    std::atomic<bool> stopped{false};

    std::thread acceptThread;
    std::mutex sessionMutex;
    std::vector<std::thread> sessions;

    std::mutex queueMutex;
    std::condition_variable queueCv;
    std::deque<TaskPtr> queue;
    std::vector<std::thread> executors;

    /** In-flight dedup: fingerprint -> the task computing it. Entries
     *  are erased only after the result is published to the memo, so
     *  a resolver holding this mutex that misses both the memo and
     *  this map knows nobody is (or was) computing the cell. */
    std::mutex inflightMutex;
    std::map<store::Fingerprint, TaskPtr> inflight;

    /** Open journals by plan fingerprint: concurrent sessions of the
     *  same plan must share one CampaignJournal (its appends are
     *  internally locked; two file handles would interleave). */
    std::mutex journalMutex;
    std::map<store::Fingerprint, std::weak_ptr<store::CampaignJournal>>
        journals;

    mutable std::mutex totalsMutex;
    ServeTelemetry totalsTele;

    void acceptLoop();
    void sessionLoop(int fd);
    void executorLoop();
    void servePlan(int fd, const std::string &tenant,
                   const CampaignPlan &plan, const RetryPolicy &policy,
                   bool &client_gone);
    std::shared_ptr<store::CampaignJournal>
    journalFor(const store::Fingerprint &plan_fp, std::uint64_t cells);
};

CampaignServer::CampaignServer(ServerOptions options)
    : impl(std::make_unique<Impl>())
{
    impl->opts = std::move(options);
}

CampaignServer::~CampaignServer()
{
    stop();
}

bool
CampaignServer::start(std::string &error)
{
    Impl &s = *impl;
    if (s.started.load(std::memory_order_acquire)) {
        error = "server already started";
        return false;
    }

    s.listenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s.listenFd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(s.listenFd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    // Resolve the bind address the way the client resolves endpoints
    // (getaddrinfo), so "--host localhost" works on both sides; the
    // listener stays IPv4 to match the sockaddr_in plumbing below.
    struct addrinfo hints = {};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    hints.ai_flags = AI_PASSIVE;
    struct addrinfo *resolved = nullptr;
    const int gai =
        ::getaddrinfo(s.opts.host.c_str(), nullptr, &hints, &resolved);
    if (gai != 0 || resolved == nullptr) {
        error = "unusable bind address " + s.opts.host + ": " +
                (gai != 0 ? gai_strerror(gai) : "no IPv4 address");
        if (resolved != nullptr)
            ::freeaddrinfo(resolved);
        ::close(s.listenFd);
        s.listenFd = -1;
        return false;
    }
    struct sockaddr_in addr = {};
    std::memcpy(&addr, resolved->ai_addr,
                std::min(sizeof(addr),
                         static_cast<std::size_t>(resolved->ai_addrlen)));
    ::freeaddrinfo(resolved);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(s.opts.port);
    if (::bind(s.listenFd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(s.listenFd, 16) != 0) {
        error = std::string("bind/listen on ") + s.opts.host + ": " +
                std::strerror(errno);
        ::close(s.listenFd);
        s.listenFd = -1;
        return false;
    }

    struct sockaddr_in bound = {};
    socklen_t bound_len = sizeof(bound);
    ::getsockname(s.listenFd, reinterpret_cast<struct sockaddr *>(&bound),
                  &bound_len);
    s.boundPort = ntohs(bound.sin_port);

    s.poolJobs = s.opts.jobs != 0 ? s.opts.jobs : campaignJobs();
    s.poolJobs = std::max(s.poolJobs, 1u);

    s.started.store(true, std::memory_order_release);
    for (unsigned i = 0; i < s.poolJobs; ++i)
        s.executors.emplace_back([&s] { s.executorLoop(); });
    s.acceptThread = std::thread([&s] { s.acceptLoop(); });
    return true;
}

void
CampaignServer::beginDrain()
{
    impl->draining.store(true, std::memory_order_release);
}

bool
CampaignServer::draining() const
{
    return impl->draining.load(std::memory_order_acquire);
}

void
CampaignServer::stop()
{
    Impl &s = *impl;
    if (!s.started.load(std::memory_order_acquire) ||
        s.stopped.exchange(true)) {
        return;
    }
    beginDrain();

    // Sessions first (they may still be waiting on queued tasks, so
    // the executors must keep running underneath them), then the pool.
    if (s.acceptThread.joinable())
        s.acceptThread.join();
    if (s.listenFd >= 0) {
        ::close(s.listenFd);
        s.listenFd = -1;
    }
    for (;;) {
        std::vector<std::thread> taken;
        {
            std::lock_guard<std::mutex> lock(s.sessionMutex);
            taken.swap(s.sessions);
        }
        if (taken.empty())
            break;
        for (std::thread &t : taken) {
            if (t.joinable())
                t.join();
        }
    }
    {
        std::lock_guard<std::mutex> lock(s.queueMutex);
        s.stopping.store(true, std::memory_order_release);
    }
    s.queueCv.notify_all();
    for (std::thread &t : s.executors) {
        if (t.joinable())
            t.join();
    }
    s.executors.clear();
}

unsigned short
CampaignServer::port() const
{
    return impl->boundPort;
}

unsigned
CampaignServer::jobs() const
{
    return impl->poolJobs;
}

ServeTelemetry
CampaignServer::totals() const
{
    std::lock_guard<std::mutex> lock(impl->totalsMutex);
    return impl->totalsTele;
}

void
CampaignServer::Impl::acceptLoop()
{
    // On drain, close the listen socket from here (this thread owns it
    // while running; stop() only touches it after the join). Closing
    // resets any backlog connections and makes new connects fail fast
    // instead of parking clients behind a handshake that never comes.
    for (;;) {
        if (draining.load(std::memory_order_acquire)) {
            ::close(listenFd);
            listenFd = -1;
            return;
        }
        struct pollfd pfd = {listenFd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, 100);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            warn("serve: accept poll failed: ", std::strerror(errno));
            return;
        }
        if (pr == 0)
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            warn("serve: accept failed: ", std::strerror(errno));
            return;
        }
        // The drain-aware poll in sessionLoop only covers the gap
        // *between* frames; these deadlines cover blocking inside one:
        // a client stalled mid-frame (partial header/payload) or not
        // draining its receive buffer reads/writes as client_gone
        // after ioTimeoutMs instead of pinning this session — and
        // stop()'s session join — forever.
        if (opts.ioTimeoutMs > 0) {
            struct timeval tv = {};
            tv.tv_sec = opts.ioTimeoutMs / 1000;
            tv.tv_usec =
                static_cast<long>(opts.ioTimeoutMs % 1000) * 1000;
            ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        }
        std::lock_guard<std::mutex> lock(sessionMutex);
        sessions.emplace_back([this, fd] { sessionLoop(fd); });
    }
}

void
CampaignServer::Impl::executorLoop()
{
    for (;;) {
        TaskPtr task;
        {
            std::unique_lock<std::mutex> lock(queueMutex);
            queueCv.wait(lock, [this] {
                return !queue.empty() ||
                       stopping.load(std::memory_order_acquire);
            });
            // A drain still runs the queue down: queued cells are owed
            // to sessions blocked on them (and to the journal).
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
        }

        SupervisedOutcome so;
        try {
            so = runCellSupervised(task->spec, task->policy, task->label);
        } catch (const std::exception &err) {
            so.result =
                failSoftResult(task->spec, task->label, err.what());
        }

        // Publish to the shared cache tier *before* dropping the
        // in-flight entry, so a concurrent resolver can never miss
        // both (see the inflight comment above). Failures enter the
        // memo only — the persistent store keeps failures out so a
        // later epoch or widened budget gets to retry them.
        store::processMemo().insert(task->fp, so.result);
        if (!so.result.failed) {
            if (store::ResultStore *ps = store::processStore())
                ps->insert(task->fp, so.result);
        }
        {
            std::lock_guard<std::mutex> lock(task->mutex);
            task->result = std::move(so.result);
            task->crashes = so.crashes;
            task->timeouts = so.timeouts;
            task->done = true;
        }
        task->cv.notify_all();
        {
            std::lock_guard<std::mutex> lock(inflightMutex);
            auto it = inflight.find(task->fp);
            if (it != inflight.end() && it->second == task)
                inflight.erase(it);
        }
    }
}

std::shared_ptr<store::CampaignJournal>
CampaignServer::Impl::journalFor(const store::Fingerprint &plan_fp,
                                 std::uint64_t cells)
{
    if (!store::journalConfigured())
        return nullptr;
    std::lock_guard<std::mutex> lock(journalMutex);
    auto it = journals.find(plan_fp);
    if (it != journals.end()) {
        if (auto open = it->second.lock())
            return open;
    }
    auto journal = std::make_shared<store::CampaignJournal>(
        store::journalPath(), plan_fp, cells);
    if (!journal->ok())
        return nullptr;
    journals[plan_fp] = journal;
    return journal;
}

void
CampaignServer::Impl::servePlan(int fd, const std::string &tenant,
                                const CampaignPlan &plan,
                                const RetryPolicy &policy,
                                bool &client_gone)
{
    // loop:exempt(analyze: wall-clock service telemetry only)
    const auto started = std::chrono::steady_clock::now();
    const std::size_t n = plan.size();

    ServeTelemetry tele;
    tele.tenant = tenant;
    tele.cells = n;

    std::vector<store::Fingerprint> fps(n);
    std::vector<RunResult> ready(n);
    std::vector<bool> have(n, false);
    std::vector<bool> replayed(n, false);
    std::vector<TaskPtr> tasks(n);
    std::vector<bool> created(n, false);

    for (std::size_t i = 0; i < n; ++i)
        fps[i] = store::fingerprintRun(plan.at(i).spec, policy);

    // Keyed exactly like the local executor's journal, so a plan
    // journaled by a server resumes locally and vice versa.
    std::shared_ptr<store::CampaignJournal> journal;
    if (n > 0)
        journal = journalFor(fingerprintPlan(plan, policy), n);

    store::ResultStore *pstore = store::processStore();
    for (std::size_t i = 0; i < n; ++i) {
        // Journal replay outranks the caches: it carries recorded
        // fail/crash/timeout verdicts, and a resumed plan must not
        // send a known-poison cell back to crash another worker.
        if (journal) {
            auto it = journal->replayed().find(fps[i]);
            if (it != journal->replayed().end()) {
                ready[i] = it->second;
                have[i] = true;
                replayed[i] = true;
                ++tele.resumed;
                continue;
            }
        }
        if (auto hit = store::processMemo().lookup(fps[i])) {
            ready[i] = std::move(*hit);
            have[i] = true;
            ++tele.cacheHits;
            continue;
        }
        if (pstore) {
            if (auto hit = pstore->lookup(fps[i])) {
                store::processMemo().insert(fps[i], *hit);
                ready[i] = std::move(*hit);
                have[i] = true;
                ++tele.cacheHits;
                continue;
            }
        }
        // Neither cache has it: subscribe to an in-flight execution or
        // become the one. The memo re-check under the in-flight mutex
        // closes the race with an executor that published and erased
        // between our memo miss and here.
        std::lock_guard<std::mutex> lock(inflightMutex);
        auto it = inflight.find(fps[i]);
        if (it != inflight.end()) {
            tasks[i] = it->second;
            ++tele.dedupHits;
            continue;
        }
        if (auto hit = store::processMemo().lookup(fps[i])) {
            ready[i] = std::move(*hit);
            have[i] = true;
            ++tele.cacheHits;
            continue;
        }
        auto task = std::make_shared<CellTask>();
        task->fp = fps[i];
        task->spec = plan.at(i).spec;
        task->policy = policy;
        task->label = plan.at(i).label;
        inflight[fps[i]] = task;
        tasks[i] = task;
        created[i] = true;
        ++tele.queued;
        {
            std::lock_guard<std::mutex> qlock(queueMutex);
            queue.push_back(task);
        }
        queueCv.notify_one();
    }

    // Stream strictly in plan order; a completion order different from
    // plan order waits here, exactly like the local executor's
    // index-addressed result slots. A client that vanished mid-stream
    // stops receiving but this loop keeps consuming tasks: the cells
    // are journaled and published, so the reconnect resumes for free.
    for (std::size_t i = 0; i < n; ++i) {
        if (!have[i]) {
            tasks[i]->wait();
            {
                std::lock_guard<std::mutex> lock(tasks[i]->mutex);
                ready[i] = tasks[i]->result;
            }
            have[i] = true;
            if (created[i]) {
                ++tele.simulated;
                tele.crashes += tasks[i]->crashes;
                tele.timeouts += tasks[i]->timeouts;
            }
        }
        if (ready[i].failed)
            ++tele.failures;
        if (journal && !replayed[i])
            journal->append(fps[i], ready[i]);
        if (!client_gone &&
            !writeFrame(fd, FrameType::Result,
                        encodeResult(i, ready[i]))) {
            client_gone = true;
            warn("serve: client \"", tenant, "\" lost mid-plan at cell ",
                 i, " of ", n, "; finishing and journaling the rest");
        }
    }

    // loop:exempt(analyze: wall-clock service telemetry only)
    const auto finished = std::chrono::steady_clock::now();
    tele.wallSeconds =
        std::chrono::duration<double>(finished - started).count();

    if (!client_gone &&
        !writeFrame(fd, FrameType::Done, encodeTelemetry(tele))) {
        client_gone = true;
    }

    std::lock_guard<std::mutex> lock(totalsMutex);
    totalsTele.accumulate(tele);
}

void
CampaignServer::Impl::sessionLoop(int fd)
{
    std::string tenant = "?";
    bool client_gone = false;
    bool greeted = false;

    while (!client_gone) {
        // Wait for the next request in drain-aware slices: an idle
        // session on a draining server is told so and closed; a
        // session mid-plan never reaches this loop until its plan has
        // fully streamed.
        bool drained_out = false;
        for (;;) {
            if (draining.load(std::memory_order_acquire)) {
                drained_out = true;
                break;
            }
            struct pollfd pfd = {fd, POLLIN, 0};
            int pr = ::poll(&pfd, 1, 100);
            if (pr < 0 && errno != EINTR) {
                client_gone = true;
                break;
            }
            if (pr > 0)
                break;
        }
        if (client_gone)
            break;
        if (drained_out) {
            writeFrame(fd, FrameType::Error, encodeError("draining"));
            break;
        }

        Frame frame;
        ReadStatus rs = readFrame(fd, frame);
        if (rs == ReadStatus::Eof)
            break;
        if (rs != ReadStatus::Ok) {
            // Corruption never silently degrades to wrong bytes: the
            // client is told and the connection dropped; its retry
            // resubmits and the cache tier answers what completed.
            writeFrame(fd, FrameType::Error,
                       encodeError("unreadable frame"));
            break;
        }

        if (frame.type == FrameType::Hello) {
            std::uint32_t version = 0;
            if (!decodeHello(frame.payload, version, tenant) ||
                version != kProtocolVersion) {
                writeFrame(fd, FrameType::Error,
                           encodeError("protocol version mismatch"));
                break;
            }
            greeted = true;
            if (!writeFrame(fd, FrameType::HelloOk, encodeHelloOk()))
                break;
            continue;
        }
        if (frame.type == FrameType::Submit) {
            if (!greeted) {
                writeFrame(fd, FrameType::Error,
                           encodeError("submit before hello"));
                break;
            }
            CampaignPlan plan;
            RetryPolicy policy;
            // Decoding inside the try: the decoder bound-checks every
            // count it allocates for, but one tenant's plan must never
            // be able to escalate past its own session either way.
            try {
                if (!decodePlan(frame.payload, plan, policy)) {
                    writeFrame(fd, FrameType::Error,
                               encodeError("unreadable plan"));
                    break;
                }
                servePlan(fd, tenant, plan, policy, client_gone);
            } catch (const std::exception &err) {
                warn("serve: plan from \"", tenant,
                     "\" failed: ", err.what());
                writeFrame(fd, FrameType::Error, encodeError(err.what()));
                break;
            }
            continue;
        }
        writeFrame(fd, FrameType::Error,
                   encodeError("unexpected frame type"));
        break;
    }
    ::close(fd);
}

} // namespace loopsim::serve
