/**
 * @file
 * Client side of the campaign service: loopsim-submit and the bench
 * binaries' `--server host:port` mode.
 *
 * submitPlanRemote() ships a CampaignPlan to a loopsim-serve daemon
 * and assembles the streamed results by plan index — byte-identical to
 * runCampaign() on the same plan against the same store. The client
 * flattens each cell's configuration to effectiveRunConfig() before
 * encoding, so the overlays in force on the *client* (LOOPSIM_OVERLAY,
 * setRunOverlay()) are what the server simulates and fingerprints.
 *
 * Disconnect handling: any framing corruption or lost connection
 * triggers a reconnect that resubmits the whole plan. The server's
 * journal and cache tier answer every cell that already completed
 * (resumed/cacheHits in telemetry, simulated == 0 for them), so a
 * retry costs a round-trip, never duplicate simulation — and never
 * wrong bytes, because a torn frame is dropped, not repaired.
 */

#ifndef LOOPSIM_SERVE_CLIENT_HH
#define LOOPSIM_SERVE_CLIENT_HH

#include <string>
#include <vector>

#include "serve/protocol.hh"

namespace loopsim::serve
{

/** @name Process-wide endpoint configuration
 * Precedence: setServeEndpoint() (the bench binaries' --server flag) >
 * the LOOPSIM_SERVER environment variable > disabled. An endpoint is
 * "host:port"; "" disables. */
/// @{
void setServeEndpoint(const std::string &endpoint);
std::string serveEndpoint();
bool serveConfigured();
/// @}

struct SubmitOptions
{
    /** "host:port"; empty resolves via serveEndpoint(). */
    std::string endpoint;
    /** Tenant label for server-side telemetry; empty resolves via
     *  LOOPSIM_TENANT, then "anonymous". */
    std::string tenant;
    /** Total connection attempts (first connect included). */
    unsigned reconnectAttempts = 3;
    /** Wait between reconnects, in ms. */
    std::uint64_t reconnectBackoffMs = 200;
    /** Test hook: deliberately drop the connection after this many
     *  Result frames (once, on the first attempt); 0 = never. The
     *  reconnect path then exercises journal-backed resume. */
    std::size_t dropAfterResults = 0;
};

/**
 * Submit @p plan and assemble one result per cell in plan order.
 * Telemetry accumulates over reconnects (simulated/crash/timeout
 * counts sum; reconnects counts the extra connection attempts used).
 * False (with @p error filled) when the plan could not be completed
 * within opts.reconnectAttempts connections.
 */
bool submitPlanRemote(const CampaignPlan &plan, const RetryPolicy &policy,
                      const SubmitOptions &opts,
                      std::vector<RunResult> &results,
                      ServeTelemetry &telemetry, std::string &error);

/**
 * runCampaign()-shaped wrapper used by the executor's delegation path:
 * submits to serveEndpoint(), records CampaignTelemetry (mapped from
 * the service telemetry) exactly like a local campaign, and keeps the
 * raw service telemetry readable via lastClientTelemetry(). False when
 * the submission failed — the caller falls back to local execution.
 */
bool runCampaignRemote(const CampaignPlan &plan, const RetryPolicy &policy,
                       std::vector<RunResult> &results, std::string &error);

/** Connect + Hello/HelloOk round-trip only (loopsim-submit --ping). */
bool pingServer(const std::string &endpoint, std::string &error);

/** Service telemetry of the most recent successful remote campaign. */
ServeTelemetry lastClientTelemetry();

} // namespace loopsim::serve

#endif // LOOPSIM_SERVE_CLIENT_HH
