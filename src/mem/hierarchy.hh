/**
 * @file
 * The data-memory hierarchy: banked L1D, unified L2, main memory, and
 * the data TLB. Resolves each access to a data-ready latency plus trap
 * annotations; the core turns those into load-resolution-loop events.
 */

#ifndef LOOPSIM_MEM_HIERARCHY_HH
#define LOOPSIM_MEM_HIERARCHY_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "mem/cache.hh"
#include "mem/tlb.hh"

namespace loopsim
{

class Config;

/** Where an access was satisfied. */
enum class MemLevel : std::uint8_t { L1, L2, Memory };

const char *memLevelName(MemLevel level);

/** Outcome of one data access. */
struct MemAccessResult
{
    /** Cycles from cache access start until data is ready. */
    unsigned latency = 0;
    MemLevel level = MemLevel::L1;
    /** The access missed the dTLB (memory trap; refetch recovery). */
    bool tlbMiss = false;
    /** The access lost a same-cycle bank arbitration. */
    bool bankConflict = false;

    /** A load "hit" for hit-speculation purposes: L1 and no hazards. */
    bool
    isPredictableHit() const
    {
        return level == MemLevel::L1 && !tlbMiss && !bankConflict;
    }
};

class MemoryHierarchy
{
  public:
    /** Parameters are read from "mem.*" keys of @p cfg. */
    explicit MemoryHierarchy(const Config &cfg);

    /**
     * Perform the access for @p addr at cycle @p now.
     * Stores update cache state but their latency result is only used
     * for statistics (stores have no register consumers).
     */
    MemAccessResult access(Addr addr, ThreadId tid, bool is_store,
                           Cycle now);

    /**
     * Instruction fetch probe for the line holding @p pc. When the
     * I-cache model is disabled (the default; see DESIGN.md) fetch
     * always hits. On a miss the returned latency is the refill time
     * the fetch stage must stall for.
     */
    MemAccessResult fetchAccess(Addr pc, ThreadId tid);

    bool icacheEnabled() const { return icache != nullptr; }

    /** L1 hit latency (the speculative load-to-use assumption). */
    unsigned l1Latency() const { return l1Lat; }

    const Cache &l1() const { return *l1d; }
    const Cache &l2() const { return *l2u; }
    const Tlb &tlb() const { return *dtlb; }
    const Cache *l1i() const { return icache.get(); }

    std::uint64_t accesses() const { return accessCount; }
    std::uint64_t bankConflicts() const { return bankConflictCount; }
    /** Cycles added to misses because all MSHRs were busy. */
    std::uint64_t mshrStallCycles() const { return mshrStalls; }

    void reset();

  private:
    std::unique_ptr<Cache> l1d;
    std::unique_ptr<Cache> l2u;
    std::unique_ptr<Tlb> dtlb;
    std::unique_ptr<Cache> icache;

    unsigned l1Lat;
    unsigned l2Lat;  ///< additional cycles beyond the L1 latency
    unsigned memLat; ///< additional cycles beyond the L2 latency

    /** Per-bank arbitration state for the current cycle. */
    Cycle bankCycle = invalidCycle;
    std::vector<unsigned> bankUse;

    /** Outstanding-miss slots: busy-until cycles (MSHR model). */
    std::vector<Cycle> mshrBusyUntil;
    std::uint64_t mshrStalls = 0;

    std::uint64_t accessCount = 0;
    std::uint64_t bankConflictCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_MEM_HIERARCHY_HH
