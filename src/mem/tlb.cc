#include "mem/tlb.hh"

#include "base/intmath.hh"
#include "base/logging.hh"

namespace loopsim
{

Tlb::Tlb(std::size_t num_entries, std::uint64_t page_bytes)
    : entries(num_entries), pageSize(page_bytes)
{
    fatal_if(num_entries == 0, "TLB must have entries");
    fatal_if(!isPowerOf2(page_bytes), "page size must be 2^n");
}

bool
Tlb::access(Addr addr, ThreadId tid)
{
    Addr vpn = vpnOf(addr);
    Entry *lru = &entries[0];
    for (auto &e : entries) {
        if (e.valid && e.vpn == vpn && e.tid == tid) {
            e.stamp = ++stamp;
            ++hitCount;
            return true;
        }
        if (!e.valid || e.stamp < lru->stamp)
            lru = &e;
    }
    ++missCount;
    lru->valid = true;
    lru->vpn = vpn;
    lru->tid = tid;
    lru->stamp = ++stamp;
    return false;
}

bool
Tlb::probe(Addr addr, ThreadId tid) const
{
    Addr vpn = vpnOf(addr);
    for (const auto &e : entries) {
        if (e.valid && e.vpn == vpn && e.tid == tid)
            return true;
    }
    return false;
}

void
Tlb::reset()
{
    for (auto &e : entries)
        e = Entry{};
    stamp = 0;
    hitCount = 0;
    missCount = 0;
}

} // namespace loopsim
