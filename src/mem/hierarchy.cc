#include "mem/hierarchy.hh"

#include "base/logging.hh"
#include "sim/config.hh"

namespace loopsim
{

const char *
memLevelName(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return "L1";
      case MemLevel::L2: return "L2";
      case MemLevel::Memory: return "Memory";
      default: panic("unknown memory level");
    }
}

MemoryHierarchy::MemoryHierarchy(const Config &cfg)
{
    unsigned line = static_cast<unsigned>(cfg.getUint("mem.line", 64));
    l1d = std::make_unique<Cache>(
        cfg.getUint("mem.l1.size", 64 * 1024),
        static_cast<unsigned>(cfg.getUint("mem.l1.assoc", 2)), line,
        parseReplPolicy(cfg.getString("mem.l1.repl", "lru")),
        static_cast<unsigned>(cfg.getUint("mem.l1.banks", 32)));
    l2u = std::make_unique<Cache>(
        cfg.getUint("mem.l2.size", 1024 * 1024),
        static_cast<unsigned>(cfg.getUint("mem.l2.assoc", 8)), line,
        parseReplPolicy(cfg.getString("mem.l2.repl", "lru")), 1);
    dtlb = std::make_unique<Tlb>(cfg.getUint("mem.tlb.entries", 128),
                                 cfg.getUint("mem.tlb.page", 8192));
    if (cfg.getBool("mem.icache.enable", false)) {
        icache = std::make_unique<Cache>(
            cfg.getUint("mem.icache.size", 64 * 1024),
            static_cast<unsigned>(cfg.getUint("mem.icache.assoc", 2)),
            line, parseReplPolicy(cfg.getString("mem.icache.repl", "lru")),
            1);
    }
    mshrBusyUntil.assign(cfg.getUint("mem.mshrs", 16), 0);

    l1Lat = static_cast<unsigned>(cfg.getUint("mem.l1.latency", 3));
    l2Lat = static_cast<unsigned>(cfg.getUint("mem.l2.latency", 12));
    memLat = static_cast<unsigned>(cfg.getUint("mem.latency", 150));

    fatal_if(l1Lat == 0, "L1 latency must be >= 1");
    bankUse.assign(l1d->numBanks(), 0);
}

MemAccessResult
MemoryHierarchy::access(Addr addr, ThreadId tid, bool is_store, Cycle now)
{
    ++accessCount;
    MemAccessResult res;

    // Bank arbitration: reset the per-bank counters at each new cycle;
    // every same-cycle load to an already-claimed bank replays one
    // cycle later (counted as extra latency on the loser). Stores do
    // not contend for the load ports.
    unsigned queued = 0;
    if (!is_store) {
        if (bankCycle != now) {
            bankCycle = now;
            for (auto &u : bankUse)
                u = 0;
        }
        unsigned bank = l1d->bank(addr);
        queued = bankUse[bank]++;
        if (queued > 0) {
            res.bankConflict = true;
            ++bankConflictCount;
        }
    }

    res.tlbMiss = !dtlb->access(addr, tid);

    bool l1_hit = l1d->access(addr);
    if (l1_hit) {
        res.level = MemLevel::L1;
        res.latency = l1Lat + queued;
        return res;
    }

    // An L1 miss needs a free miss-status register; when all are busy
    // the refill waits for the oldest to retire (finite MLP).
    Cycle start = now + l1Lat;
    std::size_t slot = 0;
    Cycle earliest = mshrBusyUntil[0];
    for (std::size_t i = 0; i < mshrBusyUntil.size(); ++i) {
        if (mshrBusyUntil[i] < earliest) {
            earliest = mshrBusyUntil[i];
            slot = i;
        }
        if (mshrBusyUntil[i] <= start) {
            slot = i;
            earliest = mshrBusyUntil[i];
            break;
        }
    }
    unsigned mshr_wait = 0;
    if (earliest > start) {
        mshr_wait = static_cast<unsigned>(earliest - start);
        mshrStalls += mshr_wait;
    }

    bool l2_hit = l2u->access(addr);
    if (l2_hit) {
        res.level = MemLevel::L2;
        res.latency = l1Lat + mshr_wait + l2Lat + queued;
    } else {
        res.level = MemLevel::Memory;
        res.latency = l1Lat + mshr_wait + l2Lat + memLat + queued;
    }
    mshrBusyUntil[slot] = now + res.latency;
    (void)is_store;
    return res;
}

MemAccessResult
MemoryHierarchy::fetchAccess(Addr pc, ThreadId tid)
{
    MemAccessResult res;
    res.level = MemLevel::L1;
    res.latency = 0;
    if (!icache)
        return res;
    (void)tid;
    if (icache->access(pc))
        return res;
    // Refill from the unified L2 (or memory); fetch stalls meanwhile.
    res.level = l2u->access(pc) ? MemLevel::L2 : MemLevel::Memory;
    res.latency = res.level == MemLevel::L2 ? l2Lat
                                            : l2Lat + memLat;
    return res;
}

void
MemoryHierarchy::reset()
{
    l1d->reset();
    l2u->reset();
    dtlb->reset();
    if (icache)
        icache->reset();
    for (auto &m : mshrBusyUntil)
        m = 0;
    mshrStalls = 0;
    bankCycle = invalidCycle;
    for (auto &u : bankUse)
        u = 0;
    accessCount = 0;
    bankConflictCount = 0;
}

} // namespace loopsim
