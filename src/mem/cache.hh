/**
 * @file
 * Set-associative cache tag model.
 *
 * The simulator is timing-only, so caches track tags and replacement
 * state, not data. Banking is modelled for the L1D: simultaneous
 * same-cycle accesses to one bank conflict and the loser is delayed.
 */

#ifndef LOOPSIM_MEM_CACHE_HH
#define LOOPSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/random.hh"
#include "base/types.hh"

namespace loopsim
{

/** Replacement policies supported by Cache. */
enum class ReplPolicy : std::uint8_t { LRU, FIFO, Random };

/** Parse "lru" / "fifo" / "random"; fatal() otherwise. */
ReplPolicy parseReplPolicy(const std::string &name);

class Cache
{
  public:
    /**
     * @param size_bytes total capacity
     * @param assoc      ways per set
     * @param line_bytes line size (power of two)
     * @param policy     replacement policy
     * @param banks      number of banks (power of two, >= 1)
     */
    Cache(std::uint64_t size_bytes, unsigned assoc, unsigned line_bytes,
          ReplPolicy policy = ReplPolicy::LRU, unsigned banks = 1);

    /**
     * Access the line containing @p addr; allocate it on a miss.
     * @return true on hit.
     */
    bool access(Addr addr);

    /** Tag-check only: would @p addr hit? No state change. */
    bool probe(Addr addr) const;

    /** Invalidate the line containing @p addr if present. */
    void invalidate(Addr addr);

    /** Drop all contents. */
    void reset();

    /** Bank servicing @p addr. */
    unsigned bank(Addr addr) const;
    unsigned numBanks() const { return banks; }

    std::uint64_t sizeBytes() const { return bytes; }
    unsigned associativity() const { return assoc; }
    unsigned lineBytes() const { return line; }
    std::size_t numSets() const { return sets; }

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    double
    missRate() const
    {
        std::uint64_t total = hitCount + missCount;
        return total ? double(missCount) / double(total) : 0.0;
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t stamp = 0; ///< LRU: last use; FIFO: fill time
    };

    std::size_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    const Line *findLine(Addr addr) const;
    Line *victim(std::size_t set);

    std::uint64_t bytes;
    unsigned assoc;
    unsigned line;
    unsigned lineShift;
    std::size_t sets;
    ReplPolicy policy;
    unsigned banks;

    std::vector<Line> lines;
    std::uint64_t stamp = 0;
    Pcg32 rng;

    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_MEM_CACHE_HH
