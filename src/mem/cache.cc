#include "mem/cache.hh"

#include <utility>

#include "base/intmath.hh"
#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim
{

ReplPolicy
parseReplPolicy(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "lru")
        return ReplPolicy::LRU;
    if (n == "fifo")
        return ReplPolicy::FIFO;
    if (n == "random")
        return ReplPolicy::Random;
    fatal("unknown replacement policy: ", name);
}

Cache::Cache(std::uint64_t size_bytes, unsigned ways, unsigned line_bytes,
             ReplPolicy repl_policy, unsigned num_banks)
    : bytes(size_bytes), assoc(ways), line(line_bytes),
      lineShift(floorLog2(line_bytes)),
      sets(ways && line_bytes
               ? size_bytes / (std::uint64_t(ways) * line_bytes) : 0),
      policy(repl_policy), banks(num_banks), lines(sets * ways),
      rng(size_bytes ^ 0xcafef00dULL)
{
    fatal_if(assoc == 0, "cache associativity must be > 0");
    fatal_if(!isPowerOf2(line_bytes), "cache line size must be 2^n");
    fatal_if(sets == 0, "cache smaller than one set");
    fatal_if(!isPowerOf2(sets), "cache set count must be 2^n");
    fatal_if(!isPowerOf2(banks), "cache bank count must be 2^n");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (sets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr >> lineShift;
}

unsigned
Cache::bank(Addr addr) const
{
    return (addr >> lineShift) & (banks - 1);
}

Cache::Line *
Cache::findLine(Addr addr)
{
    return const_cast<Line *>(std::as_const(*this).findLine(addr));
}

const Cache::Line *
Cache::findLine(Addr addr) const
{
    std::size_t base = setIndex(addr) * assoc;
    Addr tag = tagOf(addr);
    for (unsigned w = 0; w < assoc; ++w) {
        const Line &l = lines[base + w];
        if (l.valid && l.tag == tag)
            return &l;
    }
    return nullptr;
}

Cache::Line *
Cache::victim(std::size_t set)
{
    std::size_t base = set * assoc;
    for (unsigned w = 0; w < assoc; ++w) {
        if (!lines[base + w].valid)
            return &lines[base + w];
    }
    if (policy == ReplPolicy::Random)
        return &lines[base + rng.nextBounded(assoc)];

    // LRU and FIFO both evict the smallest stamp; they differ in
    // whether access() refreshes it.
    Line *v = &lines[base];
    for (unsigned w = 1; w < assoc; ++w) {
        if (lines[base + w].stamp < v->stamp)
            v = &lines[base + w];
    }
    return v;
}

bool
Cache::access(Addr addr)
{
    Line *l = findLine(addr);
    if (l) {
        ++hitCount;
        if (policy == ReplPolicy::LRU)
            l->stamp = ++stamp;
        return true;
    }
    ++missCount;
    Line *v = victim(setIndex(addr));
    v->valid = true;
    v->tag = tagOf(addr);
    v->stamp = ++stamp;
    return false;
}

bool
Cache::probe(Addr addr) const
{
    return findLine(addr) != nullptr;
}

void
Cache::invalidate(Addr addr)
{
    Line *l = findLine(addr);
    if (l)
        l->valid = false;
}

void
Cache::reset()
{
    for (auto &l : lines)
        l = Line{};
    stamp = 0;
    hitCount = 0;
    missCount = 0;
}

} // namespace loopsim
