/**
 * @file
 * Fully-associative data TLB with LRU replacement. A dTLB miss in the
 * base machine is a memory trap recovered from the front of the pipe
 * (paper §3.1, turb3d discussion).
 */

#ifndef LOOPSIM_MEM_TLB_HH
#define LOOPSIM_MEM_TLB_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class Tlb
{
  public:
    /**
     * @param entries    number of TLB entries
     * @param page_bytes page size (power of two)
     */
    explicit Tlb(std::size_t entries = 128,
                 std::uint64_t page_bytes = 8192);

    /**
     * Translate @p addr for thread @p tid; fills the entry on a miss.
     * @return true on hit.
     */
    bool access(Addr addr, ThreadId tid);

    /** Tag-check only, no fill or LRU update. */
    bool probe(Addr addr, ThreadId tid) const;

    void reset();

    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t pageBytes() const { return pageSize; }
    std::size_t size() const { return entries.size(); }

  private:
    struct Entry
    {
        bool valid = false;
        Addr vpn = 0;
        ThreadId tid = 0;
        std::uint64_t stamp = 0;
    };

    Addr vpnOf(Addr addr) const { return addr / pageSize; }

    std::vector<Entry> entries;
    std::uint64_t pageSize;
    std::uint64_t stamp = 0;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_MEM_TLB_HH
