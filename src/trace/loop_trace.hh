/**
 * @file
 * Structured loop-event tracing: the observability layer next to the
 * integrity (watchdog/fault) and campaign (parallel executor) layers.
 *
 * The paper's argument is about loops — how many cycles feedback
 * spends in flight and what work sits speculatively exposed inside
 * each open loop. End-of-run stats show this only in aggregate; this
 * layer records every feedback delivery as a typed event carrying the
 * full loop geometry:
 *
 *   write cycle   when the producing stage resolved the outcome
 *   loop delay    the feedback-path length the writer declared
 *   consume cycle when the initiation stage acted on it
 *
 * so `write + delay == consume` holds for every honestly-delivered
 * signal (fault injection may deliver early; the stamp keeps the
 * honest value, making cheats visible in the trace exactly as the
 * audit mode sees them).
 *
 * Recording is two-tier:
 *
 *  - a per-run RunRecorder owned by the Core (nullptr when tracing is
 *    off, so the hot path pays one pointer test per loop event — and
 *    nothing per cycle); events land in simulation order, which is
 *    deterministic per RunSpec.
 *  - a process-wide Collector the campaign executor feeds strictly in
 *    plan order after each campaign drains, so an assembled trace is
 *    byte-identical at any --jobs count, like the figures themselves.
 *
 * Sinks serialize a collected trace: ChromeTraceSink writes the Chrome
 * trace-event JSON that chrome://tracing and Perfetto open directly
 * (each run is a "process", each loop a track, each event a span from
 * write cycle to consume cycle); CsvTraceSink writes one row per event
 * for ad-hoc analysis. Schema details in DESIGN.md §11.
 *
 * Configuring with -DLOOPSIM_TRACE_DISABLED=ON compiles the recording
 * macro to nothing: the layer then costs literally zero instructions
 * in the simulation path.
 */

#ifndef LOOPSIM_TRACE_LOOP_TRACE_HH
#define LOOPSIM_TRACE_LOOP_TRACE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "base/types.hh"

namespace loopsim::trace
{

/** Which of the paper's feedback loops an event belongs to. */
enum class LoopKind : std::uint8_t
{
    Branch,  ///< branch resolution -> fetch
    Load,    ///< load resolution (kills and traps) -> issue/fetch
    Operand, ///< DRA operand miss (kill + payload) -> issue
};

const char *loopKindName(LoopKind kind);

/** The concrete feedback delivery recorded. */
enum class LoopEventType : std::uint8_t
{
    BranchResolution, ///< mispredict redirect consumed at fetch
    LoadKill,         ///< load-loop mis-speculation kill at the IQ
    TlbTrap,          ///< memory trap recovered from the pipe front
    OrderTrap,        ///< load/store reorder trap refetch
    OperandKill,      ///< DRA operand-loop kill at the IQ (§5.4)
    OperandPayload,   ///< recovered operands reach the IQ payload
};

const char *loopEventName(LoopEventType type);
LoopKind loopKindOf(LoopEventType type);

/** One feedback delivery, with the full loop geometry. */
struct LoopEvent
{
    LoopEventType type = LoopEventType::BranchResolution;
    ThreadId tid = 0;
    /** Cycle the producing stage resolved the outcome. */
    Cycle writeCycle = 0;
    /** Feedback-loop length the writer declared. */
    Cycle loopDelay = 0;
    /** Cycle the initiation stage consumed the signal. */
    Cycle consumeCycle = 0;
    /** Fetch stamp of the instruction the loop repairs (0 if gone). */
    std::uint64_t fetchStamp = 0;

    bool operator==(const LoopEvent &o) const = default;
};

/**
 * Per-run event buffer, owned by the Core of a traced run. Appends
 * are O(1) amortized and happen only at feedback deliveries (a few
 * per mis-speculation), never per cycle.
 */
class RunRecorder
{
  public:
    void
    record(LoopEventType type, ThreadId tid, Cycle write_cycle,
           Cycle loop_delay, Cycle consume_cycle,
           std::uint64_t fetch_stamp)
    {
        events.push_back(LoopEvent{type, tid, write_cycle, loop_delay,
                                   consume_cycle, fetch_stamp});
    }

    const std::vector<LoopEvent> &all() const { return events; }
    std::vector<LoopEvent> take() { return std::move(events); }

  private:
    std::vector<LoopEvent> events;
};

/** One finished run's events, labelled for the trace reader. */
struct RunTrace
{
    std::string label;
    std::vector<LoopEvent> events;
};

/**
 * Serialization interface. begin()/end() bracket a whole trace; run()
 * is called once per traced run, in deterministic (plan) order.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void begin() {}
    virtual void run(const RunTrace &run) = 0;
    virtual void end() {}
};

/**
 * Chrome trace-event JSON (the format chrome://tracing and Perfetto
 * load natively). Every run is a "process" (pid = run index), every
 * loop kind a named track, every event a complete span ("ph":"X")
 * from its write cycle lasting its loop delay; the full geometry
 * rides in args. All values are integers, so output is byte-stable.
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os) : out(os) {}

    void begin() override;
    void run(const RunTrace &run) override;
    void end() override;

  private:
    std::ostream &out;
    int nextPid = 0;
    bool firstEvent = true;
};

/** One CSV row per event; header matches DESIGN.md §11. */
class CsvTraceSink : public TraceSink
{
  public:
    explicit CsvTraceSink(std::ostream &os) : out(os) {}

    void begin() override;
    void run(const RunTrace &run) override;

  private:
    std::ostream &out;
    int nextRun = 0;
};

/**
 * Process-wide trace collection toggle + buffer.
 *
 * collectionActive() is the gate the Core consults at construction
 * (one relaxed atomic load, construction-time only). It defaults to
 * whether LOOPSIM_TRACE names a path, and is forced by
 * setCollection() (the bench binaries' --trace flag, tests).
 */
bool collectionActive();
void setCollection(bool on);

/** Append a finished run's trace. Thread-safe, but the campaign
 *  executor calls it from one thread, in plan order, after the pool
 *  drains — that ordering is what makes assembled traces
 *  byte-identical at any worker count. */
void collectRun(RunTrace run);

/** Drain everything collected so far (in collection order). */
std::vector<RunTrace> takeCollectedRuns();

/** Number of runs currently buffered (tests, telemetry). */
std::size_t collectedRunCount();

/** Serialize @p runs through @p sink (begin / run... / end). */
void writeTrace(TraceSink &sink, const std::vector<RunTrace> &runs);

/**
 * Serialize @p runs to @p path, choosing the sink by extension:
 * ".csv" writes CSV, anything else Chrome trace JSON.
 * @return false when the file could not be opened.
 */
bool writeTraceFile(const std::string &path,
                    const std::vector<RunTrace> &runs);

/**
 * The trace output path: the LOOPSIM_TRACE environment variable,
 * latched once; overridden by setTracePath() (the --trace flag).
 * Empty means tracing is off.
 */
std::string tracePath();
void setTracePath(const std::string &path);

/**
 * The recording hook the Core's feedback read sites use. Compiles to
 * nothing under LOOPSIM_TRACE_DISABLED; otherwise costs one pointer
 * test when tracing is off.
 */
#ifdef LOOPSIM_TRACE_DISABLED
#define LOOPSIM_TRACE_LOOP_EVENT(recorder, ...)                           \
    do {                                                                  \
    } while (false)
#else
#define LOOPSIM_TRACE_LOOP_EVENT(recorder, ...)                           \
    do {                                                                  \
        if (recorder)                                                     \
            (recorder)->record(__VA_ARGS__);                              \
    } while (false)
#endif

} // namespace loopsim::trace

#endif // LOOPSIM_TRACE_LOOP_TRACE_HH
