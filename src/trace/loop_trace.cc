/**
 * @file
 * Loop-event trace layer: sinks, the process-wide collector, and the
 * LOOPSIM_TRACE knob. See loop_trace.hh for the design overview.
 */

#include "trace/loop_trace.hh"

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "base/annotations.hh"

namespace loopsim::trace
{

const char *
loopKindName(LoopKind kind)
{
    switch (kind) {
      case LoopKind::Branch: return "branch-loop";
      case LoopKind::Load: return "load-loop";
      case LoopKind::Operand: return "operand-loop";
    }
    return "unknown-loop";
}

const char *
loopEventName(LoopEventType type)
{
    switch (type) {
      case LoopEventType::BranchResolution: return "branch-resolution";
      case LoopEventType::LoadKill: return "load-kill";
      case LoopEventType::TlbTrap: return "tlb-trap";
      case LoopEventType::OrderTrap: return "order-trap";
      case LoopEventType::OperandKill: return "operand-kill";
      case LoopEventType::OperandPayload: return "operand-payload";
    }
    return "unknown-event";
}

LoopKind
loopKindOf(LoopEventType type)
{
    switch (type) {
      case LoopEventType::BranchResolution:
        return LoopKind::Branch;
      case LoopEventType::LoadKill:
      case LoopEventType::TlbTrap:
      case LoopEventType::OrderTrap:
        return LoopKind::Load;
      case LoopEventType::OperandKill:
      case LoopEventType::OperandPayload:
        return LoopKind::Operand;
    }
    return LoopKind::Branch;
}

namespace
{

/** JSON string escaping for run labels (workload names are tame, but
 *  a quote or backslash must not corrupt the file). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += ' ';
            else
                out += c;
        }
    }
    return out;
}

/** CSV fields are quoted iff they contain a comma or quote. */
std::string
csvField(const std::string &s)
{
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += "\"\"";
        else
            out += c;
    }
    out += '"';
    return out;
}

} // anonymous namespace

void
ChromeTraceSink::begin()
{
    out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    nextPid = 0;
    firstEvent = true;
}

void
ChromeTraceSink::run(const RunTrace &run)
{
    const int pid = nextPid++;
    auto emit = [&](const std::string &json) {
        if (!firstEvent)
            out << ",";
        firstEvent = false;
        out << "\n" << json;
    };

    // Metadata: name the "process" after the run, and one named
    // "thread" (track) per loop kind so Perfetto groups events by
    // loop rather than by SMT thread.
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         jsonEscape(run.label) + "\"}}");
    for (int kind = 0; kind < 3; ++kind) {
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(kind) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
             std::string(loopKindName(static_cast<LoopKind>(kind))) +
             "\"}}");
    }

    // Complete ("X") spans: ts = write cycle, dur = loop delay, so
    // the span visually covers the feedback's time in flight and its
    // right edge is the consume cycle. All integers -> byte-stable.
    for (const LoopEvent &ev : run.events) {
        const auto kind = static_cast<int>(loopKindOf(ev.type));
        emit("{\"ph\":\"X\",\"pid\":" + std::to_string(pid) +
             ",\"tid\":" + std::to_string(kind) + ",\"name\":\"" +
             loopEventName(ev.type) +
             "\",\"cat\":\"" +
             loopKindName(loopKindOf(ev.type)) +
             "\",\"ts\":" + std::to_string(ev.writeCycle) +
             ",\"dur\":" + std::to_string(ev.loopDelay) +
             ",\"args\":{\"write_cycle\":" +
             std::to_string(ev.writeCycle) +
             ",\"loop_delay\":" + std::to_string(ev.loopDelay) +
             ",\"consume_cycle\":" + std::to_string(ev.consumeCycle) +
             ",\"tid\":" + std::to_string(ev.tid) +
             ",\"fetch_stamp\":" + std::to_string(ev.fetchStamp) +
             "}}");
    }
}

void
ChromeTraceSink::end()
{
    out << "\n]}\n";
}

void
CsvTraceSink::begin()
{
    out << "run,label,loop,event,tid,write_cycle,loop_delay,"
           "consume_cycle,fetch_stamp\n";
    nextRun = 0;
}

void
CsvTraceSink::run(const RunTrace &run)
{
    const int idx = nextRun++;
    for (const LoopEvent &ev : run.events) {
        out << idx << ',' << csvField(run.label) << ','
            << loopKindName(loopKindOf(ev.type)) << ','
            << loopEventName(ev.type) << ','
            << static_cast<unsigned>(ev.tid) << ','
            << ev.writeCycle << ',' << ev.loopDelay << ','
            << ev.consumeCycle << ',' << ev.fetchStamp << '\n';
    }
}

void
writeTrace(TraceSink &sink, const std::vector<RunTrace> &runs)
{
    sink.begin();
    for (const RunTrace &run : runs)
        sink.run(run);
    sink.end();
}

bool
writeTraceFile(const std::string &path,
               const std::vector<RunTrace> &runs)
{
    std::ofstream out(path, std::ios::trunc);
    if (!out)
        return false;
    const bool csv =
        path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
    if (csv) {
        CsvTraceSink sink(out);
        writeTrace(sink, runs);
    } else {
        ChromeTraceSink sink(out);
        writeTrace(sink, runs);
    }
    return static_cast<bool>(out);
}

namespace
{

/** Trace path state: env default, overridable by --trace. Guarded by
 *  pathMutex because bench binaries set it before spawning workers,
 *  but tests may toggle it around campaigns. */
std::mutex pathMutex;

std::string &
pathStorage()
{
    LOOPSIM_CAMPAIGN_GUARDED("pathMutex; latched before workers spawn")
    static std::string path = [] {
        // Latched once at startup, same pattern as base/debug.cc.
        const char *env = std::getenv("LOOPSIM_TRACE"); // NOLINT(concurrency-mt-unsafe)
        return std::string(env ? env : "");
    }();
    return path;
}

/** Collection gate: relaxed atomic, read by every Core constructor. */
std::atomic<bool> collectFlag{false};
std::atomic<bool> collectInitialized{false};

/** Collected run traces, appended in plan order by the campaign
 *  executor. loop:exempt(host-side trace buffer; never feeds
 *  simulated time) */
std::mutex collectMutex;

std::vector<RunTrace> &
collected()
{
    LOOPSIM_CAMPAIGN_GUARDED("collectMutex; appended in plan order")
    static std::vector<RunTrace> runs;
    return runs;
}

} // anonymous namespace

std::string
tracePath()
{
    std::lock_guard<std::mutex> lock(pathMutex);
    return pathStorage();
}

void
setTracePath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(pathMutex);
    pathStorage() = path;
}

bool
collectionActive()
{
    if (!collectInitialized.load(std::memory_order_acquire)) {
        // First query decides the default from LOOPSIM_TRACE; benign
        // race — both racers compute the same value.
        collectFlag.store(!tracePath().empty(),
                          std::memory_order_relaxed);
        collectInitialized.store(true, std::memory_order_release);
    }
    return collectFlag.load(std::memory_order_relaxed);
}

void
setCollection(bool on)
{
    collectInitialized.store(true, std::memory_order_release);
    collectFlag.store(on, std::memory_order_relaxed);
}

void
collectRun(RunTrace run)
{
    std::lock_guard<std::mutex> lock(collectMutex);
    collected().push_back(std::move(run));
}

std::vector<RunTrace>
takeCollectedRuns()
{
    std::lock_guard<std::mutex> lock(collectMutex);
    return std::exchange(collected(), {});
}

std::size_t
collectedRunCount()
{
    std::lock_guard<std::mutex> lock(collectMutex);
    return collected().size();
}

} // namespace loopsim::trace
