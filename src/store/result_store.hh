/**
 * @file
 * Persistent, content-addressed campaign result store.
 *
 * The store is a directory of records named by fingerprint — git
 * object style, two hex digits of fan-out then the remaining thirty
 * (`<dir>/ab/cdef...0123.lsr`) — so the filesystem *is* the index and
 * two stores can be merged with `cp -r`. Writes are atomic: the
 * record is written to a temp file in the same directory and
 * rename()d into place, so readers (including concurrent campaigns
 * sharing a store) only ever see whole records. A record that fails
 * any validation — magic, schema version, fingerprint, size, CRC —
 * reads as a miss and is re-simulated; corruption can cost time,
 * never correctness.
 *
 * Interaction contracts:
 *  - trace collection (--trace): a cached hit has no loop events to
 *    contribute, so the campaign executor bypasses both the store and
 *    the in-process memo while collection is on — traces always come
 *    from real simulations. Traced results are not inserted either,
 *    keeping the traced path completely inert.
 *  - tick profiling (--profile): hits legitimately cost zero kernel
 *    time, so profiling stays usable with a warm store (the profile
 *    covers only the runs that actually simulated).
 *  - failed (fail-soft) results are memoized in-process but never
 *    persisted: a wedge is deterministic within one binary, but
 *    keeping failures out of the store means a later model epoch or
 *    wider budget always gets to retry them.
 *
 * The in-process memo (ResultMemo) is the store's RAM tier and also
 * stands alone: with no store directory configured it still
 * deduplicates identical plan points across every campaign a binary
 * runs (figure + ablation suites share many cells).
 */

#ifndef LOOPSIM_STORE_RESULT_STORE_HH
#define LOOPSIM_STORE_RESULT_STORE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "store/fingerprint.hh"

namespace loopsim::store
{

/** Store activity counters (all cumulative since construction). */
struct StoreStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    /** Records rejected by validation: bad magic/schema/fingerprint,
     *  short file, or CRC mismatch. Each also counts as a miss. */
    std::uint64_t crcRejects = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    void accumulate(const StoreStats &other);
};

/** A directory-backed record store. Thread-safe. */
class ResultStore
{
  public:
    /** Opens (and creates, if needed) the store at @p directory.
     *  fatal() when the directory cannot be created. */
    explicit ResultStore(std::string directory);

    /** Fetch the record for @p fp; nullopt on miss or any validation
     *  failure (counted in stats().crcRejects). */
    std::optional<RunResult> lookup(const Fingerprint &fp);

    /** Atomically persist @p result under @p fp (temp file + rename).
     *  Returns false — without throwing — when the write fails. */
    bool insert(const Fingerprint &fp, const RunResult &result);

    const std::string &dir() const { return root; }
    StoreStats stats() const;

    /** Record file path for @p fp (exposed for tests and the CLI). */
    std::string recordPath(const Fingerprint &fp) const;

  private:
    std::string root;
    mutable std::mutex mutex;
    StoreStats counters;
};

/**
 * In-process memo: fingerprint -> result, shared by every campaign in
 * the binary. Cached copies are stripped of loopEvents/tickProfile
 * (observability products of an actual run).
 */
class ResultMemo
{
  public:
    std::optional<RunResult> lookup(const Fingerprint &fp);
    void insert(const Fingerprint &fp, const RunResult &result);
    std::size_t size() const;
    void clear();

  private:
    mutable std::mutex mutex;
    std::map<Fingerprint, RunResult> entries;
};

/** @name Process-wide store configuration
 * The campaign executor consults these. Precedence for the directory:
 * setStorePath() (the bench binaries' --store flag) > the
 * LOOPSIM_STORE environment variable > disabled. */
/// @{
void setStorePath(const std::string &dir); ///< "" disables
std::string storePath();
bool storeConfigured();
/** The process store, opened on first use; nullptr when disabled. */
ResultStore *processStore();
/** The process-wide memo (always available). */
ResultMemo &processMemo();
/** Drop the open store handle and clear the memo (tests; also lets a
 *  binary re-point LOOPSIM_STORE after setStorePath("")). */
void resetProcessStore();
/// @}

/** @name Maintenance (the loopsim-store CLI and tests) */
/// @{

/** One record file as seen by a maintenance scan. */
struct StoreEntry
{
    Fingerprint fp;
    std::string path;
    std::uint64_t bytes = 0;
    /** Schema version from the header (0 when unreadable). */
    std::uint32_t schema = 0;
    /** Fully validated (decode succeeded against the name's
     *  fingerprint). */
    bool valid = false;
    /** Decoded payload; meaningful only when valid. */
    RunResult result;
    /** Modification time (filesystem clock, seconds granularity) used
     *  only for gc eviction ordering. */
    std::int64_t mtimeSeconds = 0;
};

/** Scan every *.lsr file under @p dir, sorted by fingerprint hex.
 *  When @p decode is false only the header is inspected. */
std::vector<StoreEntry> scanStore(const std::string &dir, bool decode);

struct VerifyReport
{
    std::size_t records = 0;
    std::size_t corrupt = 0;
    std::vector<std::string> corruptPaths;
};

/** Fully validate every record (CRC included). */
VerifyReport verifyStore(const std::string &dir);

struct GcReport
{
    std::size_t scanned = 0;
    std::size_t removed = 0;
    std::uint64_t bytesBefore = 0;
    std::uint64_t bytesAfter = 0;
};

/**
 * Evict records — invalid ones first, then oldest mtime first — until
 * the store's record bytes fit in @p max_bytes. Empty fan-out
 * subdirectories are removed afterwards. Takes the store's advisory
 * lock exclusively, so it is safe to run against a store a live
 * server (or local campaign) is concurrently inserting into.
 */
GcReport gcStore(const std::string &dir, std::uint64_t max_bytes);

/** What a store directory holds (header-level scan; no CRC pass). */
struct StoreSummary
{
    std::string dir;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    /** Records whose header already disqualifies them (bad name,
     *  magic, schema, or fingerprint mismatch). */
    std::uint64_t invalid = 0;
};

StoreSummary summarizeStore(const std::string &dir);

/**
 * The one cache-tier JSON schema shared by `loopsim-store stat --json`
 * and the daemon's --stats-json: directory summary plus (optionally)
 * live StoreStats counters — pass nullptr for @p stats when there is
 * no open store handle (the CLI) and the "stats" object is omitted.
 */
std::string storeSummaryJson(const StoreSummary &summary,
                             const StoreStats *stats);
/// @}

} // namespace loopsim::store

#endif // LOOPSIM_STORE_RESULT_STORE_HH
