/**
 * @file
 * Canonical run fingerprints for the persistent result store.
 *
 * A fingerprint is a 128-bit content hash over *everything a run's
 * results are a function of*: the fully-resolved configuration
 * (defaults, spec overrides, LOOPSIM_OVERLAY and the programmatic
 * overlay, all already merged — so it is permutation-independent by
 * construction), every field of every thread's BenchmarkProfile
 * (seeds included), the op/warmup/cycle budgets, the effective retry
 * policy (retries perturb seeds, so they shape results), and two
 * constants: the record schema version and a model epoch that is
 * bumped whenever a simulator change alters results without any
 * configuration key changing. PR 2 made runs byte-identical functions
 * of exactly these inputs, which is what makes the fingerprint a
 * sound memoization key.
 *
 * Doubles are hashed by bit pattern, never by formatting, so a
 * fingerprint is stable across locales and print precision.
 */

#ifndef LOOPSIM_STORE_FINGERPRINT_HH
#define LOOPSIM_STORE_FINGERPRINT_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace loopsim
{

struct RunSpec;
struct RetryPolicy;

namespace store
{

/**
 * Record-format version: bumping it invalidates every existing record
 * (it is hashed into the fingerprint *and* checked in the record
 * header, so stale files simply read as misses).
 *
 * v2: RunResult::failKind joined the payload (crash/timeout verdicts
 * must replay from journals byte-identically).
 */
constexpr std::uint32_t kSchemaVersion = 2;

/**
 * Model epoch: bump when a simulator change alters results for
 * unchanged configurations (new stat semantics, changed tie-breaking,
 * recalibrated profiles). Hashing it into the fingerprint retires the
 * whole store without deleting a file.
 */
constexpr std::uint64_t kModelEpoch = 1;

/** A 128-bit content hash (two FNV-1a lanes over the same bytes). */
struct Fingerprint
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const Fingerprint &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool operator!=(const Fingerprint &o) const { return !(*this == o); }
    bool operator<(const Fingerprint &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }

    /** 32 lowercase hex digits (hi then lo); the store's file name. */
    std::string hex() const;

    /** Parse hex(); returns false on malformed input. */
    static bool parse(std::string_view text, Fingerprint &out);
};

/**
 * Incremental canonical hasher. Every value goes in behind a short
 * field tag, so "" + "ab" can never collide with "a" + "b" and field
 * reordering in a future refactor shows up as an (intended) rehash.
 */
class Hasher
{
  public:
    Hasher();

    void bytes(const void *data, std::size_t n);
    void tag(std::string_view name);
    void str(std::string_view name, std::string_view v);
    void u64(std::string_view name, std::uint64_t v);
    void f64(std::string_view name, double v); ///< by bit pattern
    void flag(std::string_view name, bool v);

    Fingerprint digest() const;

  private:
    std::uint64_t a;
    std::uint64_t b;
};

/**
 * Fingerprint one planned run: @p spec resolved against the current
 * defaults + environment + programmatic overlays (the same resolution
 * runOnce() performs), plus @p policy and the schema/epoch constants.
 */
Fingerprint fingerprintRun(const RunSpec &spec, const RetryPolicy &policy);

} // namespace store
} // namespace loopsim

#endif // LOOPSIM_STORE_FINGERPRINT_HH
