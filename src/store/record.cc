#include "store/record.hh"

#include <array>
#include <bit>
#include <cstring>

#include "harness/experiment.hh"

namespace loopsim::store
{

namespace
{

/** Byte-wise CRC-32 table for polynomial 0xEDB88320, built once. */
const std::array<std::uint32_t, 256> &
crcTable()
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    return table;
}

/** Append little-endian scalars / length-prefixed blobs to a string. */
class Encoder
{
  public:
    explicit Encoder(std::string &sink) : out(sink) {}

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void boolean(bool v) { out.push_back(v ? 1 : 0); }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        out.append(s);
    }

    void
    doubles(const std::vector<double> &v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (double d : v)
            f64(d);
    }

  private:
    std::string &out;
};

/** Bounds-checked little-endian reader; every getter reports failure
 *  instead of reading past the end, so truncation can never fabricate
 *  a value. */
class Decoder
{
  public:
    Decoder(const char *data, std::size_t n) : p(data), end(data + n) {}

    bool
    u32(std::uint32_t &v)
    {
        if (remaining() < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
        p += 4;
        return true;
    }

    bool
    u64(std::uint64_t &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(p[i]))
                 << (8 * i);
        p += 8;
        return true;
    }

    bool
    f64(double &v)
    {
        std::uint64_t bits = 0;
        if (!u64(bits))
            return false;
        v = std::bit_cast<double>(bits);
        return true;
    }

    bool
    boolean(bool &v)
    {
        if (remaining() < 1)
            return false;
        v = *p++ != 0;
        return true;
    }

    bool
    str(std::string &s)
    {
        std::uint32_t len = 0;
        if (!u32(len) || remaining() < len)
            return false;
        s.assign(p, len);
        p += len;
        return true;
    }

    bool
    doubles(std::vector<double> &v)
    {
        std::uint32_t count = 0;
        if (!u32(count) || remaining() < 8ull * count)
            return false;
        v.resize(count);
        for (std::uint32_t i = 0; i < count; ++i) {
            if (!f64(v[i]))
                return false;
        }
        return true;
    }

    bool done() const { return p == end; }

  private:
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

    const char *p;
    const char *end;
};

} // anonymous namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    const auto &table = crcTable();
    std::uint32_t c = 0xffffffffu;
    for (std::size_t i = 0; i < n; ++i)
        c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

std::string
encodeRecord(const Fingerprint &fp, const RunResult &result)
{
    std::string payload;
    Encoder enc(payload);
    enc.str(result.workloadLabel);
    enc.str(result.pipeLabel);
    enc.u64(result.cycles);
    enc.u64(result.retired);
    enc.f64(result.ipc);
    enc.boolean(result.failed);
    enc.u32(static_cast<std::uint32_t>(result.failKind));
    enc.str(result.error);
    enc.doubles(result.operandSourceFractions);
    enc.doubles(result.operandSourceCounts);
    enc.doubles(result.gapCdf);
    enc.u32(static_cast<std::uint32_t>(result.scalars.size()));
    for (const auto &[name, value] : result.scalars) {
        enc.str(name);
        enc.f64(value);
    }

    std::string record;
    record.reserve(kRecordHeaderBytes + payload.size());
    Encoder hdr(record);
    hdr.u32(kRecordMagic);
    hdr.u32(kSchemaVersion);
    hdr.u64(fp.hi);
    hdr.u64(fp.lo);
    hdr.u32(static_cast<std::uint32_t>(payload.size()));
    hdr.u32(crc32(payload.data(), payload.size()));
    record.append(payload);
    return record;
}

bool
decodeRecord(const std::string &bytes, const Fingerprint &expect,
             RunResult &result)
{
    Decoder hdr(bytes.data(), bytes.size());
    std::uint32_t magic = 0;
    std::uint32_t schema = 0;
    Fingerprint fp;
    std::uint32_t payload_size = 0;
    std::uint32_t payload_crc = 0;
    if (!hdr.u32(magic) || !hdr.u32(schema) || !hdr.u64(fp.hi) ||
        !hdr.u64(fp.lo) || !hdr.u32(payload_size) ||
        !hdr.u32(payload_crc)) {
        return false;
    }
    if (magic != kRecordMagic || schema != kSchemaVersion ||
        fp != expect) {
        return false;
    }
    if (bytes.size() != kRecordHeaderBytes + payload_size)
        return false;
    const char *payload = bytes.data() + kRecordHeaderBytes;
    if (crc32(payload, payload_size) != payload_crc)
        return false;

    RunResult out;
    Decoder dec(payload, payload_size);
    std::uint64_t cycles = 0;
    std::uint32_t fail_kind = 0;
    std::uint32_t scalar_count = 0;
    if (!dec.str(out.workloadLabel) || !dec.str(out.pipeLabel) ||
        !dec.u64(cycles) || !dec.u64(out.retired) || !dec.f64(out.ipc) ||
        !dec.boolean(out.failed) || !dec.u32(fail_kind) ||
        !dec.str(out.error) ||
        !dec.doubles(out.operandSourceFractions) ||
        !dec.doubles(out.operandSourceCounts) ||
        !dec.doubles(out.gapCdf) || !dec.u32(scalar_count)) {
        return false;
    }
    if (fail_kind > static_cast<std::uint32_t>(FailKind::Timeout))
        return false;
    out.failKind = static_cast<FailKind>(fail_kind);
    out.cycles = cycles;
    for (std::uint32_t i = 0; i < scalar_count; ++i) {
        std::string name;
        double value = 0.0;
        if (!dec.str(name) || !dec.f64(value))
            return false;
        out.scalars.emplace(std::move(name), value);
    }
    if (!dec.done())
        return false;

    result = std::move(out);
    return true;
}

bool
peekRecord(const std::string &bytes, Fingerprint &fp,
           std::uint32_t &schema)
{
    Decoder hdr(bytes.data(), bytes.size());
    std::uint32_t magic = 0;
    if (!hdr.u32(magic) || magic != kRecordMagic)
        return false;
    return hdr.u32(schema) && hdr.u64(fp.hi) && hdr.u64(fp.lo);
}

} // namespace loopsim::store
