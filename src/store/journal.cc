#include "store/journal.hh"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "base/logging.hh"
#include "harness/experiment.hh"
#include "store/record.hh"

namespace fs = std::filesystem;

namespace loopsim::store
{

namespace
{

bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    out = buf.str();
    return true;
}

std::uint32_t
getU32(const std::string &in, std::size_t at)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::string &in, std::size_t at)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    return v;
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
writeAll(int fd, const char *data, std::size_t n)
{
    while (n > 0) {
        ssize_t w = ::write(fd, data, n);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        data += w;
        n -= static_cast<std::size_t>(w);
    }
    return true;
}

struct ParsedHeader
{
    std::uint32_t schema = 0;
    Fingerprint planFp;
    std::uint64_t planCells = 0;
};

bool
parseHeader(const std::string &bytes, ParsedHeader &hdr)
{
    if (bytes.size() < kJournalHeaderBytes)
        return false;
    if (getU32(bytes, 0) != kJournalMagic)
        return false;
    hdr.schema = getU32(bytes, 4);
    hdr.planFp.hi = getU64(bytes, 8);
    hdr.planFp.lo = getU64(bytes, 16);
    hdr.planCells = getU64(bytes, 24);
    return true;
}

/**
 * Walk the entry region, decoding each self-validating record into
 * @p replay (latest duplicate wins). Returns the byte length of the
 * valid prefix (header included); anything past it is a torn tail.
 */
std::size_t
replayEntries(const std::string &bytes,
              std::map<Fingerprint, RunResult> &replay)
{
    std::size_t at = kJournalHeaderBytes;
    while (bytes.size() - at >= 4) {
        std::uint32_t len = getU32(bytes, at);
        if (bytes.size() - at - 4 < len)
            break;
        std::string record = bytes.substr(at + 4, len);
        Fingerprint fp;
        std::uint32_t schema = 0;
        RunResult result;
        if (!peekRecord(record, fp, schema) ||
            !decodeRecord(record, fp, result)) {
            break;
        }
        replay[fp] = std::move(result);
        at += 4 + len;
    }
    return at;
}

std::mutex journalPathMutex;
std::string explicitJournalPath;
bool explicitJournalPathSet = false;

} // anonymous namespace

CampaignJournal::CampaignJournal(const std::string &dir,
                                 const Fingerprint &plan_fp,
                                 std::uint64_t plan_cells)
{
    fatal_if(dir.empty(), "campaign journal needs a directory path");
    std::error_code ec;
    fs::create_directories(dir, ec);
    fatal_if(ec && !fs::is_directory(dir),
             "cannot create journal directory ", dir, ": ", ec.message());
    file = (fs::path(dir) / (plan_fp.hex() + ".lsj")).string();

    // Replay whatever a previous campaign left, then truncate the torn
    // tail so fresh appends never land after garbled framing.
    std::size_t keep = 0;
    std::string bytes;
    if (readFile(file, bytes)) {
        ParsedHeader hdr;
        if (parseHeader(bytes, hdr) && hdr.schema == kSchemaVersion &&
            hdr.planFp == plan_fp && hdr.planCells == plan_cells) {
            keep = replayEntries(bytes, replay);
        } else if (!bytes.empty()) {
            warn("journal ", file,
                 " does not match this plan; starting it over");
        }
    }

    fd = ::open(file.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd < 0) {
        warn("cannot open journal ", file, ": ", std::strerror(errno),
             " (campaign will run un-resumable)");
        replay.clear();
        return;
    }
    if (::ftruncate(fd, static_cast<off_t>(keep)) != 0 ||
        ::lseek(fd, 0, SEEK_END) < 0) {
        warn("cannot position journal ", file, ": ",
             std::strerror(errno), " (campaign will run un-resumable)");
        ::close(fd);
        fd = -1;
        replay.clear();
        return;
    }
    if (keep == 0) {
        std::string hdr;
        hdr.reserve(kJournalHeaderBytes);
        putU32(hdr, kJournalMagic);
        putU32(hdr, kSchemaVersion);
        putU64(hdr, plan_fp.hi);
        putU64(hdr, plan_fp.lo);
        putU64(hdr, plan_cells);
        if (!writeAll(fd, hdr.data(), hdr.size())) {
            warn("cannot write journal header ", file, ": ",
                 std::strerror(errno));
            ::close(fd);
            fd = -1;
            return;
        }
        ::fsync(fd);
    }
}

CampaignJournal::~CampaignJournal()
{
    if (fd >= 0)
        ::close(fd);
}

void
CampaignJournal::append(const Fingerprint &fp, const RunResult &result)
{
    if (fd < 0)
        return;
    // The record codec never serializes loopEvents/tickProfile, so the
    // journal naturally stores only replayable measurement state.
    std::string record = encodeRecord(fp, result);
    std::string entry;
    entry.reserve(4 + record.size());
    putU32(entry, static_cast<std::uint32_t>(record.size()));
    entry.append(record);

    std::lock_guard<std::mutex> lock(mutex);
    if (!writeAll(fd, entry.data(), entry.size())) {
        if (!writeFailed) {
            warn("journal append to ", file, " failed: ",
                 std::strerror(errno),
                 " (resume coverage stops here; results unaffected)");
        }
        writeFailed = true;
        return;
    }
    // fsync per cell: a cell is minutes of simulation, the sync is
    // microseconds, and it is what makes a SIGKILL lose at most the
    // entry being appended.
    ::fsync(fd);
}

void
setJournalPath(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(journalPathMutex);
    explicitJournalPath = dir;
    explicitJournalPathSet = true;
}

std::string
journalPath()
{
    {
        std::lock_guard<std::mutex> lock(journalPathMutex);
        if (explicitJournalPathSet)
            return explicitJournalPath;
    }
    const char *env = std::getenv("LOOPSIM_JOURNAL");
    return env ? std::string(env) : std::string();
}

bool
journalConfigured()
{
    return !journalPath().empty();
}

std::vector<JournalInfo>
scanJournals(const std::string &dir)
{
    std::vector<JournalInfo> out;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;

    for (fs::directory_iterator
             it(dir, fs::directory_options::skip_permission_denied, ec),
         end;
         it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec) || it->path().extension() != ".lsj")
            continue;

        JournalInfo info;
        info.path = it->path().string();
        info.bytes = static_cast<std::uint64_t>(it->file_size(ec));
        auto mtime = fs::last_write_time(it->path(), ec);
        if (!ec) {
            info.mtimeSeconds =
                std::chrono::duration_cast<std::chrono::seconds>(
                    mtime.time_since_epoch())
                    .count();
        }

        bool named_ok =
            Fingerprint::parse(it->path().stem().string(), info.planFp);

        std::string bytes;
        if (readFile(it->path(), bytes)) {
            ParsedHeader hdr;
            if (parseHeader(bytes, hdr)) {
                info.schema = hdr.schema;
                info.planCells = hdr.planCells;
                info.headerOk = named_ok &&
                                hdr.schema == kSchemaVersion &&
                                hdr.planFp == info.planFp;
            }
            if (info.headerOk) {
                std::map<Fingerprint, RunResult> replay;
                info.validBytes = replayEntries(bytes, replay);
                info.entries = replay.size();
                for (const auto &[fp, result] : replay) {
                    if (result.failed)
                        ++info.poison;
                }
            }
        }
        out.push_back(std::move(info));
    }

    std::sort(out.begin(), out.end(),
              [](const JournalInfo &a, const JournalInfo &b) {
                  return a.planFp < b.planFp;
              });
    return out;
}

std::size_t
pruneJournals(const std::string &dir)
{
    std::size_t removed = 0;
    std::error_code ec;
    for (const JournalInfo &info : scanJournals(dir)) {
        if (info.headerOk && !info.complete())
            continue; // resumable in-progress journal: keep
        if (fs::remove(info.path, ec) && !ec)
            ++removed;
    }
    return removed;
}

} // namespace loopsim::store
