/**
 * @file
 * On-disk record format for the result store.
 *
 * One record holds one RunResult. Layout (all integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "LSR1"
 *   4       4     schema version (kSchemaVersion)
 *   8       8     fingerprint hi
 *   16      8     fingerprint lo
 *   24      4     payload size in bytes
 *   28      4     CRC-32 (ISO-HDLC) of the payload bytes
 *   32      ...   payload
 *
 * The payload is the RunResult serialized with length-prefixed strings
 * and bit-pattern doubles — everything the figure assemblers consume
 * (labels, cycles/retired/ipc, failure marker + kind + error, operand
 * source vectors, the gap CDF, exported scalars). Deliberately excluded:
 * loopEvents (trace collection forces real simulation, see
 * result_store.hh) and tickProfile (host wall clock; replaying it
 * would fabricate telemetry).
 *
 * Decoding is strictly bounds-checked and verifies magic, schema,
 * fingerprint and CRC; any mismatch or truncation makes the record
 * unreadable, which the store reports as a miss — a damaged store can
 * cost re-simulation, never a wrong figure.
 */

#ifndef LOOPSIM_STORE_RECORD_HH
#define LOOPSIM_STORE_RECORD_HH

#include <cstdint>
#include <string>

#include "store/fingerprint.hh"

namespace loopsim
{

struct RunResult;

namespace store
{

constexpr std::uint32_t kRecordMagic = 0x3152534cu; // "LSR1"
constexpr std::size_t kRecordHeaderBytes = 32;

/** CRC-32 (ISO-HDLC, the zlib polynomial) of @p n bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t n);

/** Serialize @p result into a complete record (header + payload). */
std::string encodeRecord(const Fingerprint &fp, const RunResult &result);

/**
 * Decode a complete record. Returns true and fills @p result only if
 * the magic, schema version, fingerprint, size and CRC all check out
 * and the payload parses without running off the end.
 */
bool decodeRecord(const std::string &bytes, const Fingerprint &expect,
                  RunResult &result);

/**
 * Header-only peek used by the CLI: extracts the stored fingerprint
 * and schema without validating the payload. Returns false when the
 * buffer is shorter than a header or the magic is wrong.
 */
bool peekRecord(const std::string &bytes, Fingerprint &fp,
                std::uint32_t &schema);

} // namespace store
} // namespace loopsim

#endif // LOOPSIM_STORE_RECORD_HH
