#include "store/result_store.hh"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <system_error>

#include "base/annotations.hh"
#include "base/logging.hh"
#include "store/record.hh"

namespace fs = std::filesystem;

namespace loopsim::store
{

namespace
{

/** Read a whole file into @p out; false on any error. */
bool
readFile(const fs::path &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad())
        return false;
    out = buf.str();
    return true;
}

/** Strip the per-run observability payloads before caching: loop
 *  events and tick profiles describe an *execution*, and a replayed
 *  result has none. */
RunResult
cacheable(const RunResult &result)
{
    RunResult out = result;
    out.loopEvents.clear();
    out.tickProfile.clear();
    return out;
}

/** File-scope unique suffix counter for temp names. */
std::atomic<std::uint64_t> tempCounter{0};

/**
 * Advisory cross-process lock on `<root>/.lock`, flock(2)-based.
 * Writers take it shared — any number of processes (a live server
 * plus local campaigns) insert concurrently, each write already
 * atomic via temp + rename. gcStore() takes it exclusive, because
 * eviction removes *emptied fan-out directories*: without the lock a
 * gc running beside a live server could remove a directory between a
 * writer's create_directories() and its rename(), tearing the insert.
 * A root where the lock file cannot be opened degrades to unlocked
 * (held() == false) — the store stays usable, only the gc-vs-writer
 * guarantee is lost.
 */
class StoreLock
{
  public:
    StoreLock(const std::string &root, bool exclusive)
    {
        const std::string path =
            (fs::path(root) / ".lock").string();
        fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
        if (fd < 0)
            return;
        int rc;
        do {
            rc = ::flock(fd, exclusive ? LOCK_EX : LOCK_SH);
        } while (rc != 0 && errno == EINTR);
        if (rc != 0) {
            ::close(fd);
            fd = -1;
        }
    }

    ~StoreLock()
    {
        if (fd >= 0) {
            ::flock(fd, LOCK_UN);
            ::close(fd);
        }
    }

    StoreLock(const StoreLock &) = delete;
    StoreLock &operator=(const StoreLock &) = delete;

    bool held() const { return fd >= 0; }

  private:
    int fd = -1;
};

std::mutex processMutex;
LOOPSIM_CAMPAIGN_GUARDED("processMutex") std::string explicitPath;
LOOPSIM_CAMPAIGN_GUARDED("processMutex") bool explicitPathSet = false;
LOOPSIM_CAMPAIGN_GUARDED("processMutex")
std::unique_ptr<ResultStore> openedStore;
LOOPSIM_CAMPAIGN_GUARDED("processMutex") std::string openedPath;

/** mtime in whole seconds of the filesystem clock epoch — only ever
 *  compared against other mtimes, never against simulated time. */
std::int64_t
mtimeSeconds(const fs::path &path, std::error_code &ec)
{
    auto t = fs::last_write_time(path, ec);
    if (ec)
        return 0;
    return std::chrono::duration_cast<std::chrono::seconds>(
               t.time_since_epoch())
        .count();
}

} // anonymous namespace

void
StoreStats::accumulate(const StoreStats &other)
{
    hits += other.hits;
    misses += other.misses;
    inserts += other.inserts;
    crcRejects += other.crcRejects;
    bytesRead += other.bytesRead;
    bytesWritten += other.bytesWritten;
}

ResultStore::ResultStore(std::string directory) : root(std::move(directory))
{
    fatal_if(root.empty(), "result store needs a directory path");
    std::error_code ec;
    fs::create_directories(root, ec);
    fatal_if(ec && !fs::is_directory(root),
             "cannot create result store directory ", root, ": ",
             ec.message());
}

std::string
ResultStore::recordPath(const Fingerprint &fp) const
{
    std::string hex = fp.hex();
    return (fs::path(root) / hex.substr(0, 2) / (hex.substr(2) + ".lsr"))
        .string();
}

std::optional<RunResult>
ResultStore::lookup(const Fingerprint &fp)
{
    const fs::path path = recordPath(fp);
    std::string bytes;
    if (!readFile(path, bytes)) {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.misses;
        return std::nullopt;
    }

    RunResult result;
    if (!decodeRecord(bytes, fp, result)) {
        std::lock_guard<std::mutex> lock(mutex);
        ++counters.misses;
        ++counters.crcRejects;
        counters.bytesRead += bytes.size();
        return std::nullopt;
    }

    std::lock_guard<std::mutex> lock(mutex);
    ++counters.hits;
    counters.bytesRead += bytes.size();
    return result;
}

bool
ResultStore::insert(const Fingerprint &fp, const RunResult &result)
{
    const std::string record = encodeRecord(fp, cacheable(result));
    const fs::path path = recordPath(fp);

    // Shared writer lock: holds off a concurrent gcStore() (exclusive)
    // whose empty-directory sweep could otherwise remove the fan-out
    // directory between create_directories() and rename().
    StoreLock write_lock(root, /*exclusive=*/false);

    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec && !fs::is_directory(path.parent_path()))
        return false;

    // Unique temp name in the same directory, so the final rename is
    // an atomic same-filesystem move and readers never see a partial
    // record. Two processes racing on the same fingerprint both write
    // identical bytes; last rename wins harmlessly.
    const std::string tmp_name =
        path.filename().string() + ".tmp-" + std::to_string(::getpid()) +
        "-" +
        std::to_string(
            tempCounter.fetch_add(1, std::memory_order_relaxed));
    const fs::path tmp = path.parent_path() / tmp_name;

    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            return false;
        }
        out.write(record.data(),
                  static_cast<std::streamsize>(record.size()));
        out.flush();
        if (!out) {
            out.close();
            fs::remove(tmp, ec);
            return false;
        }
    }

    fs::rename(tmp, path, ec);
    if (ec) {
        // Belt and braces for an unlockable root: if something swept
        // the fan-out directory away, re-create it and retry once.
        std::error_code ec2;
        fs::create_directories(path.parent_path(), ec2);
        fs::rename(tmp, path, ec2);
        if (ec2) {
            fs::remove(tmp, ec);
            return false;
        }
    }

    std::lock_guard<std::mutex> lock(mutex);
    ++counters.inserts;
    counters.bytesWritten += record.size();
    return true;
}

StoreStats
ResultStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return counters;
}

std::optional<RunResult>
ResultMemo::lookup(const Fingerprint &fp)
{
    std::lock_guard<std::mutex> lock(mutex);
    auto it = entries.find(fp);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ResultMemo::insert(const Fingerprint &fp, const RunResult &result)
{
    // Strip-and-copy outside the lock: the cacheable copy duplicates
    // the whole scalar/distribution payload, and building it under
    // the mutex made every concurrent lookup wait out a deep copy
    // (measurable on the --jobs scaling audit; the hold time should
    // be one hash-map move, nothing more).
    RunResult stripped = cacheable(result);
    std::lock_guard<std::mutex> lock(mutex);
    entries.emplace(fp, std::move(stripped));
}

std::size_t
ResultMemo::size() const
{
    std::lock_guard<std::mutex> lock(mutex);
    return entries.size();
}

void
ResultMemo::clear()
{
    std::lock_guard<std::mutex> lock(mutex);
    entries.clear();
}

void
setStorePath(const std::string &dir)
{
    std::lock_guard<std::mutex> lock(processMutex);
    explicitPath = dir;
    explicitPathSet = true;
    // Re-resolve (and possibly re-open) on next processStore() call.
    openedStore.reset();
    openedPath.clear();
}

std::string
storePath()
{
    {
        std::lock_guard<std::mutex> lock(processMutex);
        if (explicitPathSet)
            return explicitPath;
    }
    const char *env = std::getenv("LOOPSIM_STORE");
    return env ? std::string(env) : std::string();
}

bool
storeConfigured()
{
    return !storePath().empty();
}

ResultStore *
processStore()
{
    std::string path = storePath();
    if (path.empty())
        return nullptr;
    std::lock_guard<std::mutex> lock(processMutex);
    if (!openedStore || openedPath != path) {
        openedStore = std::make_unique<ResultStore>(path);
        openedPath = path;
    }
    return openedStore.get();
}

ResultMemo &
processMemo()
{
    // The memo locks its own mutex around every lookup/insert.
    LOOPSIM_CAMPAIGN_GUARDED("ResultMemo internal mutex")
    static ResultMemo memo;
    return memo;
}

void
resetProcessStore()
{
    {
        std::lock_guard<std::mutex> lock(processMutex);
        explicitPath.clear();
        explicitPathSet = false;
        openedStore.reset();
        openedPath.clear();
    }
    processMemo().clear();
}

std::vector<StoreEntry>
scanStore(const std::string &dir, bool decode)
{
    std::vector<StoreEntry> out;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return out;

    for (fs::recursive_directory_iterator
             it(dir, fs::directory_options::skip_permission_denied, ec),
         end;
         it != end; it.increment(ec)) {
        if (ec)
            break;
        if (!it->is_regular_file(ec) || it->path().extension() != ".lsr")
            continue;

        StoreEntry entry;
        entry.path = it->path().string();
        entry.bytes = static_cast<std::uint64_t>(it->file_size(ec));
        entry.mtimeSeconds = mtimeSeconds(it->path(), ec);

        // The fingerprint is the fan-out directory name plus the file
        // stem; a record that does not live under its own fingerprint
        // is treated like any other damage.
        std::string hex = it->path().parent_path().filename().string() +
                          it->path().stem().string();
        bool named_ok = Fingerprint::parse(hex, entry.fp);

        std::string bytes;
        if (named_ok && readFile(it->path(), bytes)) {
            std::uint32_t schema = 0;
            Fingerprint stored;
            if (peekRecord(bytes, stored, schema))
                entry.schema = schema;
            if (decode) {
                entry.valid =
                    decodeRecord(bytes, entry.fp, entry.result);
            } else {
                entry.valid = stored == entry.fp &&
                              schema == kSchemaVersion &&
                              bytes.size() >= kRecordHeaderBytes;
            }
        }
        out.push_back(std::move(entry));
    }

    std::sort(out.begin(), out.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  return a.fp < b.fp;
              });
    return out;
}

VerifyReport
verifyStore(const std::string &dir)
{
    VerifyReport report;
    for (const StoreEntry &entry : scanStore(dir, /*decode=*/true)) {
        ++report.records;
        if (!entry.valid) {
            ++report.corrupt;
            report.corruptPaths.push_back(entry.path);
        }
    }
    return report;
}

GcReport
gcStore(const std::string &dir, std::uint64_t max_bytes)
{
    GcReport report;
    std::error_code dir_ec;
    if (!fs::is_directory(dir, dir_ec))
        return report;

    // Exclusive: waits out in-flight writers (shared holders in
    // insert()) and holds new ones off while records and emptied
    // fan-out directories are removed, so gc is safe to run against a
    // store a live server is inserting into.
    StoreLock lock(dir, /*exclusive=*/true);

    std::vector<StoreEntry> entries = scanStore(dir, /*decode=*/true);
    report.scanned = entries.size();
    for (const StoreEntry &e : entries)
        report.bytesBefore += e.bytes;
    report.bytesAfter = report.bytesBefore;

    // Eviction order: invalid records first (they are dead weight),
    // then oldest modification time; fingerprint as the final tie
    // break keeps gc deterministic for same-mtime records.
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntry &a, const StoreEntry &b) {
                  if (a.valid != b.valid)
                      return !a.valid;
                  if (a.mtimeSeconds != b.mtimeSeconds)
                      return a.mtimeSeconds < b.mtimeSeconds;
                  return a.fp < b.fp;
              });

    std::error_code ec;
    for (const StoreEntry &entry : entries) {
        if (report.bytesAfter <= max_bytes)
            break;
        if (fs::remove(entry.path, ec) && !ec) {
            ++report.removed;
            report.bytesAfter -= entry.bytes;
        }
    }

    // Drop fan-out directories emptied by the eviction pass.
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
        if (it->is_directory(ec) && fs::is_empty(it->path(), ec))
            fs::remove(it->path(), ec);
    }
    return report;
}

StoreSummary
summarizeStore(const std::string &dir)
{
    StoreSummary summary;
    summary.dir = dir;
    for (const StoreEntry &entry : scanStore(dir, /*decode=*/false)) {
        ++summary.records;
        summary.bytes += entry.bytes;
        if (!entry.valid)
            ++summary.invalid;
    }
    return summary;
}

std::string
storeSummaryJson(const StoreSummary &summary, const StoreStats *stats)
{
    std::ostringstream out;
    out << "{\n";
    out << "  \"dir\": \"" << summary.dir << "\",\n";
    out << "  \"records\": " << summary.records << ",\n";
    out << "  \"bytes\": " << summary.bytes << ",\n";
    out << "  \"invalid\": " << summary.invalid;
    if (stats != nullptr) {
        out << ",\n  \"stats\": {\n";
        out << "    \"hits\": " << stats->hits << ",\n";
        out << "    \"misses\": " << stats->misses << ",\n";
        out << "    \"inserts\": " << stats->inserts << ",\n";
        out << "    \"crc_rejects\": " << stats->crcRejects << ",\n";
        out << "    \"bytes_read\": " << stats->bytesRead << ",\n";
        out << "    \"bytes_written\": " << stats->bytesWritten << "\n";
        out << "  }";
    }
    out << "\n}\n";
    return out.str();
}

} // namespace loopsim::store
