#include "store/fingerprint.hh"

#include <bit>
#include <cstddef>

#include "harness/experiment.hh"
#include "sim/config.hh"
#include "workload/profile.hh"
#include "workload/workload_set.hh"

namespace loopsim::store
{

namespace
{

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;
/** Lane seeds: the standard FNV-1a offset basis and a second basis
 *  (the first, remixed) so the two 64-bit lanes are independent. */
constexpr std::uint64_t kBasisA = 0xcbf29ce484222325ull;
constexpr std::uint64_t kBasisB = 0x9ae16a3b2f90404full;

std::uint64_t
fnv1a(std::uint64_t h, const unsigned char *p, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

constexpr char kHexDigits[] = "0123456789abcdef";

void
hexU64(std::uint64_t v, std::string &out)
{
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(kHexDigits[(v >> shift) & 0xf]);
}

/** Hash every result-shaping field of one thread's profile. */
void
hashProfile(Hasher &h, const BenchmarkProfile &p)
{
    h.str("prof.name", p.name);
    h.flag("prof.fp", p.floatingPoint);

    h.f64("mix.cond_branch", p.condBranchFrac);
    h.f64("mix.uncond_branch", p.uncondBranchFrac);
    h.f64("mix.load", p.loadFrac);
    h.f64("mix.store", p.storeFrac);
    h.f64("mix.int_mult", p.intMultFrac);
    h.f64("mix.fp_add", p.fpAddFrac);
    h.f64("mix.fp_mult", p.fpMultFrac);
    h.f64("mix.fp_div", p.fpDivFrac);
    h.f64("mix.nop", p.nopFrac);
    h.f64("mix.barrier", p.barrierFrac);

    h.f64("ctl.mispredict", p.mispredictRate);
    h.f64("ctl.uncond_mispredict", p.uncondMispredictRate);
    h.u64("ctl.static_branches", p.numStaticBranches);
    h.f64("ctl.taken_bias", p.takenBias);

    h.u64("mem.hot_bytes", p.hotBytes);
    h.u64("mem.l2_bytes", p.l2Bytes);
    h.f64("mem.l2_frac", p.l2ResidentFrac);
    h.f64("mem.far_frac", p.farFrac);
    h.u64("mem.far_stride", p.farStrideBytes);

    h.u64("dep.weights", p.depDistWeights.size());
    for (double w : p.depDistWeights)
        h.f64("dep.w", w);
    h.f64("dep.serial_chain", p.serialChainFrac);
    h.f64("dep.long_lived", p.longLivedSrcFrac);
    h.f64("dep.hot_src", p.hotSrcFrac);
    h.u64("dep.hot_regs", p.hotRegCount);
    h.u64("dep.hot_period", p.hotWritePeriod);
    h.f64("dep.second_src", p.secondSrcFrac);

    h.u64("prof.code_loop", p.codeLoopLength);
    h.u64("prof.seed", p.seed);
}

} // anonymous namespace

std::string
Fingerprint::hex() const
{
    std::string out;
    out.reserve(32);
    hexU64(hi, out);
    hexU64(lo, out);
    return out;
}

bool
Fingerprint::parse(std::string_view text, Fingerprint &out)
{
    if (text.size() != 32)
        return false;
    std::uint64_t parts[2] = {0, 0};
    for (std::size_t i = 0; i < 32; ++i) {
        char c = text[i];
        std::uint64_t nibble = 0;
        if (c >= '0' && c <= '9')
            nibble = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            nibble = static_cast<std::uint64_t>(c - 'a') + 10;
        else
            return false;
        parts[i / 16] = (parts[i / 16] << 4) | nibble;
    }
    out.hi = parts[0];
    out.lo = parts[1];
    return true;
}

Hasher::Hasher() : a(kBasisA), b(kBasisB) {}

void
Hasher::bytes(const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    a = fnv1a(a, p, n);
    b = fnv1a(b, p, n);
}

void
Hasher::tag(std::string_view name)
{
    // Length-prefix the tag so adjacent fields can never alias.
    std::uint64_t len = name.size();
    bytes(&len, sizeof(len));
    bytes(name.data(), name.size());
}

void
Hasher::str(std::string_view name, std::string_view v)
{
    tag(name);
    std::uint64_t len = v.size();
    bytes(&len, sizeof(len));
    bytes(v.data(), v.size());
}

void
Hasher::u64(std::string_view name, std::uint64_t v)
{
    tag(name);
    bytes(&v, sizeof(v));
}

void
Hasher::f64(std::string_view name, double v)
{
    u64(name, std::bit_cast<std::uint64_t>(v));
}

void
Hasher::flag(std::string_view name, bool v)
{
    u64(name, v ? 1 : 0);
}

Fingerprint
Hasher::digest() const
{
    // Final avalanche (splitmix64) so short inputs still spread over
    // the whole 128 bits; the raw FNV state is weak in its low bits.
    auto mix = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ull;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
        return x ^ (x >> 31);
    };
    return Fingerprint{mix(a), mix(b ^ a)};
}

Fingerprint
fingerprintRun(const RunSpec &spec, const RetryPolicy &policy)
{
    Hasher h;
    h.u64("store.schema", kSchemaVersion);
    h.u64("store.epoch", kModelEpoch);

    // The fully-resolved configuration: defaults < spec overrides <
    // env overlay < programmatic overlay, exactly what runOnce() will
    // see. Config stores keys sorted, so how the caller spread the
    // same assignments across overrides and overlays cannot change
    // the hash.
    const Config cfg = effectiveRunConfig(spec);
    const auto &entries = cfg.entries();
    h.u64("cfg.count", entries.size());
    for (const auto &[key, value] : entries)
        h.str(key, value);

    h.str("workload.label", spec.workload.label);
    h.u64("workload.threads", spec.workload.threads.size());
    for (const BenchmarkProfile &p : spec.workload.threads)
        hashProfile(h, p);

    h.u64("spec.total_ops", spec.totalOps);
    h.u64("spec.warmup_ops", spec.warmupOps);
    h.u64("spec.max_cycles", spec.maxCycles);

    // The retry policy perturbs seeds and budgets on failure, so two
    // campaigns with different policies can legitimately disagree on
    // a wedge-prone cell. (Per-run integrity.retry.* keys are already
    // in the config hash above.)
    h.u64("retry.attempts", policy.attempts);
    h.f64("retry.budget_growth", policy.budgetGrowth);
    h.u64("retry.seed_stride", policy.seedStride);
    h.flag("retry.fail_soft", policy.failSoft);

    return h.digest();
}

} // namespace loopsim::store
