/**
 * @file
 * Crash-consistent, append-only campaign journals.
 *
 * The result store (result_store.hh) remembers *healthy* results
 * across binaries and machines; the journal remembers *how far one
 * specific campaign got*, verdicts included. One journal file covers
 * one campaign plan, named by the plan fingerprint (a hash over every
 * cell's run fingerprint in plan order), so a resumed campaign can
 * only ever replay a journal that describes byte-for-byte the same
 * plan under the same overlays — change one knob and the journal
 * silently stops applying.
 *
 * Layout (`<dir>/<plan-fp-hex>.lsj`, integers little-endian):
 *
 *   offset  size  field
 *   0       4     magic "LSJ1"
 *   4       4     record schema version (kSchemaVersion)
 *   8       8     plan fingerprint hi
 *   16      8     plan fingerprint lo
 *   24      8     plan size in cells
 *   32      ...   entries: [u32 length][store record] ...
 *
 * Each entry is one finished cell, serialized with the store's record
 * codec under the *cell's* fingerprint — self-validating (magic,
 * schema, fingerprint, CRC), so replay trusts nothing it cannot
 * verify. Unlike the store, the journal does record failed cells:
 * a fail/crash/timeout verdict is campaign progress (re-running a
 * known-poison cell on resume would re-crash a worker per attempt),
 * while the store keeps failures out so a later epoch gets to retry.
 *
 * Crash consistency is the whole point: appends are length-prefixed
 * and fsync()ed, and a write torn by a crash or SIGKILL leaves a
 * recognisably short or CRC-broken tail. Replay accepts the longest
 * valid prefix and the writer truncates the torn tail before
 * appending again, so an interrupted campaign loses at most the cell
 * that was mid-append — never the file.
 */

#ifndef LOOPSIM_STORE_JOURNAL_HH
#define LOOPSIM_STORE_JOURNAL_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "store/fingerprint.hh"

namespace loopsim
{

struct RunResult;

namespace store
{

constexpr std::uint32_t kJournalMagic = 0x314a534cu; // "LSJ1"
constexpr std::size_t kJournalHeaderBytes = 32;

/** One plan's append-only progress file. Thread-safe appends. */
class CampaignJournal
{
  public:
    /**
     * Open (or create) the journal for @p plan_fp under @p dir. An
     * existing file is replayed: its longest valid entry prefix fills
     * replayed() and any torn tail is truncated away; a file whose
     * header disagrees (schema bump, foreign plan) is started over.
     * fatal() when the directory cannot be created; an unwritable
     * file degrades to ok() == false with a warning (a campaign
     * without a journal is merely un-resumable, not broken).
     */
    CampaignJournal(const std::string &dir, const Fingerprint &plan_fp,
                    std::uint64_t plan_cells);
    ~CampaignJournal();

    CampaignJournal(const CampaignJournal &) = delete;
    CampaignJournal &operator=(const CampaignJournal &) = delete;

    /** False when the journal file could not be opened for append. */
    bool ok() const { return fd >= 0; }

    /** Cells already completed by a previous (interrupted) campaign,
     *  verdicts included. Latest entry wins on duplicates. */
    const std::map<Fingerprint, RunResult> &replayed() const
    {
        return replay;
    }

    /**
     * Append one finished cell and fsync. Thread-safe; silently drops
     * the entry (with one warning) when the write fails — journal
     * damage may cost resume coverage, never campaign results.
     */
    void append(const Fingerprint &fp, const RunResult &result);

    const std::string &path() const { return file; }

  private:
    std::string file;
    int fd = -1;
    std::mutex mutex;
    std::map<Fingerprint, RunResult> replay;
    bool writeFailed = false;
};

/** @name Process-wide journal configuration
 * Precedence for the directory: setJournalPath() (the bench binaries'
 * --journal flag) > the LOOPSIM_JOURNAL environment variable >
 * disabled. */
/// @{
void setJournalPath(const std::string &dir); ///< "" disables
std::string journalPath();
bool journalConfigured();
/// @}

/** @name Maintenance (the loopsim-store CLI and tests) */
/// @{

/** One journal file as seen by a maintenance scan. */
struct JournalInfo
{
    std::string path;
    /** Plan fingerprint from the file name. */
    Fingerprint planFp;
    std::uint32_t schema = 0;
    std::uint64_t planCells = 0;
    /** Distinct cells in the valid entry prefix. */
    std::size_t entries = 0;
    /** Failed (fail/crash/timeout) cells among them. */
    std::size_t poison = 0;
    std::uint64_t bytes = 0;
    /** Bytes of header + valid entry prefix. */
    std::uint64_t validBytes = 0;
    /** Header parsed, matches the file name and current schema. */
    bool headerOk = false;
    /** Modification time (filesystem clock) for pruning order. */
    std::int64_t mtimeSeconds = 0;

    bool complete() const { return headerOk && entries >= planCells; }
    /** Trailing bytes that replay could not validate. A torn tail is
     *  expected after a crash; `journal verify` still reports it so
     *  CI can distinguish a clean stop from an interrupted one. */
    bool truncatedTail() const { return bytes != validBytes; }
};

/** Scan every *.lsj file under @p dir, sorted by plan fingerprint. */
std::vector<JournalInfo> scanJournals(const std::string &dir);

/** Remove completed and unreadable journals, keeping resumable
 *  in-progress ones. Returns the number of files removed. */
std::size_t pruneJournals(const std::string &dir);
/// @}

} // namespace store
} // namespace loopsim

#endif // LOOPSIM_STORE_JOURNAL_HH
