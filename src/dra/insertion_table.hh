/**
 * @file
 * Per-cluster insertion table (paper §5.3): a saturating consumer
 * count per physical register. Incremented when a renamed source
 * (whose RPFT bit was clear) is routed to this cluster; decremented on
 * each forwarding-buffer hit; consulted and cleared at writeback to
 * decide whether the value enters this cluster's CRC.
 *
 * The 2-bit width (saturation at 3 consumers) is the paper's design
 * point; width is parameterised for the ablation study.
 */

#ifndef LOOPSIM_DRA_INSERTION_TABLE_HH
#define LOOPSIM_DRA_INSERTION_TABLE_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class InsertionTable
{
  public:
    /**
     * @param num_phys_regs entries (one per physical register)
     * @param bits          counter width; saturates at 2^bits - 1
     */
    InsertionTable(unsigned num_phys_regs, unsigned bits = 2);

    /** A consumer of @p reg was slotted to this cluster. */
    void increment(PhysReg reg);

    /** A consumer of @p reg got the value from the forwarding buffer. */
    void decrement(PhysReg reg);

    /** Outstanding consumer count for @p reg. */
    unsigned count(PhysReg reg) const;

    /** Register reallocated / value consumed into the CRC. */
    void clear(PhysReg reg);

    void reset();

    unsigned maxCount() const { return maxVal; }

    /** Increments lost to saturation (ablation statistic). */
    std::uint64_t saturationDrops() const { return satDrops; }

  private:
    std::vector<std::uint8_t> counts;
    unsigned maxVal;
    std::uint64_t satDrops = 0;
};

} // namespace loopsim

#endif // LOOPSIM_DRA_INSERTION_TABLE_HH
