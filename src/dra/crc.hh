/**
 * @file
 * Cluster register cache (paper §5.1): a small fully-associative cache
 * of register values placed next to one functional-unit cluster. The
 * paper's design point is 16 entries with FIFO replacement; LRU and an
 * LRU-on-read variant are provided for the ablation study.
 */

#ifndef LOOPSIM_DRA_CRC_HH
#define LOOPSIM_DRA_CRC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

/** CRC replacement policies (ablation: §5.1 says FIFO is enough). */
enum class CrcRepl : std::uint8_t
{
    Fifo, ///< overwrite the oldest insertion (the paper's choice)
    Lru,  ///< reads refresh recency
};

/** Parse "fifo" / "lru"; fatal() otherwise. */
CrcRepl parseCrcRepl(const std::string &name);

class ClusterRegisterCache
{
  public:
    /**
     * @param num_entries CRC capacity
     * @param repl        replacement policy
     * @param timeout     age in cycles after which an entry expires
     *                    (the paper's §5.5 alternative to explicit
     *                    invalidation); 0 disables the timeout
     */
    ClusterRegisterCache(unsigned num_entries, CrcRepl repl,
                         Cycle timeout = 0);

    /**
     * Is @p reg's value present (and not timed out at @p now)? Hits do
     * not remove the entry (values may have multiple consumers in this
     * cluster).
     */
    bool lookup(PhysReg reg, Cycle now = 0);

    /** Insert @p reg's value at @p now, evicting per policy if full. */
    void insert(PhysReg reg, Cycle now = 0);

    /** Invalidate @p reg if present (register reallocation, §5.5). */
    void invalidate(PhysReg reg);

    void reset();

    unsigned capacity() const { return entriesMax; }
    std::size_t occupancy() const;

    /** @name Structure statistics */
    /// @{
    std::uint64_t hits() const { return hitCount; }
    std::uint64_t misses() const { return missCount; }
    std::uint64_t insertions() const { return insertCount; }
    std::uint64_t evictions() const { return evictCount; }
    std::uint64_t invalidations() const { return invalidateCount; }
    std::uint64_t timeouts() const { return timeoutCount; }
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        PhysReg reg = invalidPhysReg;
        std::uint64_t stamp = 0;
        Cycle insertedAt = 0;
    };

    Entry *find(PhysReg reg);

    unsigned entriesMax;
    CrcRepl repl;
    Cycle timeout;
    std::vector<Entry> store;
    std::uint64_t stamp = 0;

    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::uint64_t insertCount = 0;
    std::uint64_t evictCount = 0;
    std::uint64_t invalidateCount = 0;
    std::uint64_t timeoutCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_DRA_CRC_HH
