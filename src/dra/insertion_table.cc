#include "dra/insertion_table.hh"

#include <algorithm>

#include "base/logging.hh"

namespace loopsim
{

InsertionTable::InsertionTable(unsigned num_phys_regs, unsigned bits)
    : counts(num_phys_regs, 0), maxVal((1u << bits) - 1)
{
    fatal_if(num_phys_regs == 0, "insertion table needs registers");
    fatal_if(bits == 0 || bits > 8, "insertion table width out of range");
}

void
InsertionTable::increment(PhysReg reg)
{
    panic_if(reg >= counts.size(), "insertion table reg out of range");
    if (counts[reg] < maxVal)
        ++counts[reg];
    else
        ++satDrops;
}

void
InsertionTable::decrement(PhysReg reg)
{
    panic_if(reg >= counts.size(), "insertion table reg out of range");
    if (counts[reg] > 0)
        --counts[reg];
}

unsigned
InsertionTable::count(PhysReg reg) const
{
    panic_if(reg >= counts.size(), "insertion table reg out of range");
    return counts[reg];
}

void
InsertionTable::clear(PhysReg reg)
{
    panic_if(reg >= counts.size(), "insertion table reg out of range");
    counts[reg] = 0;
}

void
InsertionTable::reset()
{
    std::fill(counts.begin(), counts.end(), 0);
    satDrops = 0;
}

} // namespace loopsim
