#include "dra/crc.hh"

#include "base/logging.hh"
#include "base/str.hh"

namespace loopsim
{

CrcRepl
parseCrcRepl(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "fifo")
        return CrcRepl::Fifo;
    if (n == "lru")
        return CrcRepl::Lru;
    fatal("unknown CRC replacement policy: ", name);
}

ClusterRegisterCache::ClusterRegisterCache(unsigned num_entries,
                                           CrcRepl repl_policy,
                                           Cycle timeout_cycles)
    : entriesMax(num_entries), repl(repl_policy), timeout(timeout_cycles),
      store(num_entries)
{
    fatal_if(num_entries == 0, "CRC needs entries");
}

ClusterRegisterCache::Entry *
ClusterRegisterCache::find(PhysReg reg)
{
    for (auto &e : store) {
        if (e.valid && e.reg == reg)
            return &e;
    }
    return nullptr;
}

bool
ClusterRegisterCache::lookup(PhysReg reg, Cycle now)
{
    Entry *e = find(reg);
    if (e && timeout > 0 && now > e->insertedAt + timeout) {
        // §5.5 alternative: age out stale entries instead of relying
        // solely on reallocation invalidates.
        e->valid = false;
        ++timeoutCount;
        e = nullptr;
    }
    if (e) {
        ++hitCount;
        if (repl == CrcRepl::Lru)
            e->stamp = ++stamp;
        return true;
    }
    ++missCount;
    return false;
}

void
ClusterRegisterCache::insert(PhysReg reg, Cycle now)
{
    ++insertCount;
    Entry *e = find(reg);
    if (e) {
        // Refreshing an existing entry (a re-writeback after reissue).
        e->stamp = ++stamp;
        e->insertedAt = now;
        return;
    }
    Entry *victim = nullptr;
    for (auto &cand : store) {
        if (!cand.valid) {
            victim = &cand;
            break;
        }
        if (!victim || cand.stamp < victim->stamp)
            victim = &cand;
    }
    if (victim->valid)
        ++evictCount;
    victim->valid = true;
    victim->reg = reg;
    victim->stamp = ++stamp;
    victim->insertedAt = now;
}

void
ClusterRegisterCache::invalidate(PhysReg reg)
{
    Entry *e = find(reg);
    if (e) {
        e->valid = false;
        ++invalidateCount;
    }
}

std::size_t
ClusterRegisterCache::occupancy() const
{
    std::size_t n = 0;
    for (const auto &e : store)
        n += e.valid ? 1 : 0;
    return n;
}

void
ClusterRegisterCache::reset()
{
    for (auto &e : store)
        e = Entry{};
    stamp = 0;
    hitCount = 0;
    missCount = 0;
    insertCount = 0;
    evictCount = 0;
    invalidateCount = 0;
    timeoutCount = 0;
}

} // namespace loopsim
