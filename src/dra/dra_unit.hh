/**
 * @file
 * The Distributed Register Algorithm, assembled (paper §4, §5 and
 * Figure 7): the RPFT, one insertion table and one CRC per functional
 * unit cluster, plus the event hooks the pipeline drives them with.
 *
 * Operand delivery under the DRA (§5): a source is (1) pre-read from
 * the RF when its RPFT bit is set at rename; else (2) read from the
 * forwarding buffer at execute; else (3) read from the slotted
 * cluster's CRC; else (4) it *misses* — the operand-resolution-loop
 * mis-speculation — and is recovered from the RF into the IQ payload
 * while the instruction and its issued dependents reissue.
 */

#ifndef LOOPSIM_DRA_DRA_UNIT_HH
#define LOOPSIM_DRA_DRA_UNIT_HH

#include <memory>
#include <vector>

#include "base/types.hh"
#include "dra/crc.hh"
#include "dra/insertion_table.hh"
#include "dra/rpft.hh"

namespace loopsim
{

class DraUnit
{
  public:
    /**
     * @param num_phys_regs size of the RPFT / insertion tables
     * @param num_clusters  functional unit clusters (one CRC each)
     * @param crc_entries   entries per CRC
     * @param crc_repl      CRC replacement policy
     * @param table_bits    insertion-table counter width
     */
    DraUnit(unsigned num_phys_regs, unsigned num_clusters,
            unsigned crc_entries, CrcRepl crc_repl, unsigned table_bits,
            Cycle crc_timeout = 0);

    /**
     * Rename-time handling of one source routed to @p cluster.
     * @return true when the RPFT bit is set and the operand will be
     *         pre-read into the payload (completed operand); false
     *         when the source was registered in the insertion table.
     */
    bool renameSource(PhysReg reg, ClusterId cluster);

    /** Rename-time handling of a (re)allocated destination (§5.5). */
    void renameDest(PhysReg reg);

    /** A consumer in @p cluster got @p reg from the forwarding buffer. */
    void forwardHit(PhysReg reg, ClusterId cluster);

    /** CRC probe for a consumer executing in @p cluster at @p now. */
    bool lookupCached(PhysReg reg, ClusterId cluster, Cycle now = 0);

    /**
     * The value of @p reg left the forwarding buffer and was written to
     * the RF: set its RPFT bit and insert it into every CRC whose
     * insertion table still counts outstanding consumers.
     */
    void writeback(PhysReg reg, Cycle now = 0);

    /** A physical register returned to the free list. */
    void regFreed(PhysReg reg);

    const Rpft &rpft() const { return filter; }
    const ClusterRegisterCache &crc(ClusterId cluster) const;
    const InsertionTable &insertionTable(ClusterId cluster) const;

    /** @name Aggregate statistics */
    /// @{
    std::uint64_t preReads() const { return preReadCount; }
    std::uint64_t crcInsertions() const;
    std::uint64_t crcEvictions() const;
    std::uint64_t saturationDrops() const;
    /// @}

    void reset();

  private:
    Rpft filter;
    std::vector<InsertionTable> tables;
    std::vector<ClusterRegisterCache> caches;
    std::uint64_t preReadCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_DRA_DRA_UNIT_HH
