#include "dra/dra_unit.hh"

#include "base/logging.hh"

namespace loopsim
{

DraUnit::DraUnit(unsigned num_phys_regs, unsigned num_clusters,
                 unsigned crc_entries, CrcRepl crc_repl,
                 unsigned table_bits, Cycle crc_timeout)
    : filter(num_phys_regs)
{
    fatal_if(num_clusters == 0, "DRA needs clusters");
    tables.reserve(num_clusters);
    caches.reserve(num_clusters);
    for (unsigned c = 0; c < num_clusters; ++c) {
        tables.emplace_back(num_phys_regs, table_bits);
        caches.emplace_back(crc_entries, crc_repl, crc_timeout);
    }
}

bool
DraUnit::renameSource(PhysReg reg, ClusterId cluster)
{
    panic_if(cluster >= tables.size(), "cluster out of range");
    if (filter.test(reg)) {
        ++preReadCount;
        return true;
    }
    tables[cluster].increment(reg);
    return false;
}

void
DraUnit::renameDest(PhysReg reg)
{
    // The renamer broadcasts reallocated register numbers to the RPFT
    // and all CRCs (stale-value invalidation, §5.5) and the insertion
    // tables forget any stale consumer counts.
    filter.clear(reg);
    for (auto &t : tables)
        t.clear(reg);
    for (auto &c : caches)
        c.invalidate(reg);
}

void
DraUnit::forwardHit(PhysReg reg, ClusterId cluster)
{
    panic_if(cluster >= tables.size(), "cluster out of range");
    tables[cluster].decrement(reg);
}

bool
DraUnit::lookupCached(PhysReg reg, ClusterId cluster, Cycle now)
{
    panic_if(cluster >= caches.size(), "cluster out of range");
    return caches[cluster].lookup(reg, now);
}

void
DraUnit::writeback(PhysReg reg, Cycle now)
{
    filter.set(reg);
    for (std::size_t c = 0; c < tables.size(); ++c) {
        if (tables[c].count(reg) > 0) {
            caches[c].insert(reg, now);
            tables[c].clear(reg);
        }
    }
}

void
DraUnit::regFreed(PhysReg reg)
{
    filter.clear(reg);
    for (auto &t : tables)
        t.clear(reg);
    for (auto &c : caches)
        c.invalidate(reg);
}

const ClusterRegisterCache &
DraUnit::crc(ClusterId cluster) const
{
    panic_if(cluster >= caches.size(), "cluster out of range");
    return caches[cluster];
}

const InsertionTable &
DraUnit::insertionTable(ClusterId cluster) const
{
    panic_if(cluster >= tables.size(), "cluster out of range");
    return tables[cluster];
}

std::uint64_t
DraUnit::crcInsertions() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches)
        n += c.insertions();
    return n;
}

std::uint64_t
DraUnit::crcEvictions() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches)
        n += c.evictions();
    return n;
}

std::uint64_t
DraUnit::saturationDrops() const
{
    std::uint64_t n = 0;
    for (const auto &t : tables)
        n += t.saturationDrops();
    return n;
}

void
DraUnit::reset()
{
    filter.reset();
    for (auto &t : tables)
        t.reset();
    for (auto &c : caches)
        c.reset();
    preReadCount = 0;
}

} // namespace loopsim
