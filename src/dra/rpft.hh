/**
 * @file
 * Register pre-read filtering table (paper §5.2): one bit per physical
 * register, set while the register's value is present in the register
 * file. A set bit at rename time classifies the operand as "completed"
 * and allows it to be pre-read into the IQ payload; a clear bit routes
 * the source register number to the slotted cluster's insertion table.
 */

#ifndef LOOPSIM_DRA_RPFT_HH
#define LOOPSIM_DRA_RPFT_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class Rpft
{
  public:
    explicit Rpft(unsigned num_phys_regs);

    /** Value written back to the RF: mark it pre-readable. */
    void set(PhysReg reg);

    /** Register (re)allocated by the renamer: value is in flight. */
    void clear(PhysReg reg);

    /** Is the operand in @p reg a completed operand? */
    bool test(PhysReg reg) const;

    /** Number of set bits (structure occupancy, for tests/stats). */
    std::size_t popcount() const;

    void reset();

    unsigned size() const { return numRegs; }

  private:
    unsigned numRegs;
    std::vector<bool> bits;
};

} // namespace loopsim

#endif // LOOPSIM_DRA_RPFT_HH
