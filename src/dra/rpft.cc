#include "dra/rpft.hh"

#include <algorithm>

#include "base/logging.hh"

namespace loopsim
{

Rpft::Rpft(unsigned num_phys_regs)
    : numRegs(num_phys_regs), bits(num_phys_regs, false)
{
    fatal_if(num_phys_regs == 0, "RPFT needs registers");
}

void
Rpft::set(PhysReg reg)
{
    panic_if(reg >= numRegs, "RPFT register out of range");
    bits[reg] = true;
}

void
Rpft::clear(PhysReg reg)
{
    panic_if(reg >= numRegs, "RPFT register out of range");
    bits[reg] = false;
}

bool
Rpft::test(PhysReg reg) const
{
    panic_if(reg >= numRegs, "RPFT register out of range");
    return bits[reg];
}

std::size_t
Rpft::popcount() const
{
    return static_cast<std::size_t>(
        std::count(bits.begin(), bits.end(), true));
}

void
Rpft::reset()
{
    std::fill(bits.begin(), bits.end(), false);
}

} // namespace loopsim
