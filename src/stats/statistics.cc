#include "stats/statistics.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "base/logging.hh"

namespace loopsim::stats
{

namespace
{

void
printLine(std::ostream &os, const std::string &name, double value,
          const std::string &desc)
{
    os << std::left << std::setw(44) << name << std::right << std::setw(16)
       << value << "  # " << desc << "\n";
}

} // anonymous namespace

void
Scalar::print(std::ostream &os) const
{
    printLine(os, name(), total, desc());
}

void
Average::print(std::ostream &os) const
{
    printLine(os, name(), value(), desc());
    printLine(os, name() + "::samples", static_cast<double>(count), desc());
}

Vector::Vector(std::string name, std::string desc,
               std::vector<std::string> bin_names)
    : Stat(std::move(name), std::move(desc)), names(std::move(bin_names)),
      bins(names.size(), 0.0)
{
    panic_if(names.empty(), "stats::Vector needs at least one bin");
}

void
Vector::add(std::size_t bin, double v)
{
    panic_if(bin >= bins.size(), "stats::Vector bin out of range");
    bins[bin] += v;
}

double
Vector::bin(std::size_t i) const
{
    panic_if(i >= bins.size(), "stats::Vector bin out of range");
    return bins[i];
}

const std::string &
Vector::binName(std::size_t i) const
{
    panic_if(i >= names.size(), "stats::Vector bin out of range");
    return names[i];
}

double
Vector::value() const
{
    double sum = 0.0;
    for (double b : bins)
        sum += b;
    return sum;
}

double
Vector::fraction(std::size_t i) const
{
    double total = value();
    return total > 0.0 ? bin(i) / total : 0.0;
}

void
Vector::reset()
{
    std::fill(bins.begin(), bins.end(), 0.0);
}

void
Vector::print(std::ostream &os) const
{
    for (std::size_t i = 0; i < bins.size(); ++i)
        printLine(os, name() + "::" + names[i], bins[i], desc());
    printLine(os, name() + "::total", value(), desc());
}

Distribution::Distribution(std::string name, std::string desc, double min,
                           double max, double bucket_width)
    : Stat(std::move(name), std::move(desc)), lo(min), hi(max),
      width(bucket_width)
{
    panic_if(width <= 0.0, "Distribution bucket width must be positive");
    panic_if(hi <= lo, "Distribution range must be non-empty");
    auto n = static_cast<std::size_t>(std::ceil((hi - lo) / width));
    buckets.assign(n, 0);
}

void
Distribution::sample(double v, std::uint64_t n)
{
    if (count == 0) {
        minSeen = v;
        maxSeen = v;
    } else {
        minSeen = std::min(minSeen, v);
        maxSeen = std::max(maxSeen, v);
    }
    count += n;
    sum += v * n;

    if (v < lo) {
        underflow += n;
    } else if (v >= hi) {
        overflow += n;
    } else {
        auto idx = static_cast<std::size_t>((v - lo) / width);
        if (idx >= buckets.size())
            idx = buckets.size() - 1;
        buckets[idx] += n;
    }
}

std::uint64_t
Distribution::bucketCount(std::size_t i) const
{
    panic_if(i >= buckets.size(), "Distribution bucket out of range");
    return buckets[i];
}

double
Distribution::bucketLow(std::size_t i) const
{
    panic_if(i >= buckets.size(), "Distribution bucket out of range");
    return lo + i * width;
}

double
Distribution::cdf(double x) const
{
    if (count == 0)
        return 0.0;
    if (x < lo)
        return 0.0;
    std::uint64_t acc = underflow;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        // Bucket i covers [lo + i*width, lo + (i+1)*width); the bucket
        // containing x is included, which makes the CDF exact for
        // integer-valued samples in unit-width buckets (Figure 6).
        if (bucketLow(i) <= x + 1e-12)
            acc += buckets[i];
        else
            break;
    }
    if (x >= hi)
        acc = count;
    return static_cast<double>(acc) / static_cast<double>(count);
}

void
Distribution::reset()
{
    std::fill(buckets.begin(), buckets.end(), 0);
    underflow = 0;
    overflow = 0;
    count = 0;
    sum = 0.0;
    minSeen = 0.0;
    maxSeen = 0.0;
}

void
Distribution::print(std::ostream &os) const
{
    printLine(os, name() + "::samples", static_cast<double>(count), desc());
    printLine(os, name() + "::mean", mean(), desc());
    printLine(os, name() + "::min", minSeen, desc());
    printLine(os, name() + "::max", maxSeen, desc());
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        if (buckets[i] == 0)
            continue;
        std::ostringstream bin;
        bin << name() << "::" << bucketLow(i) << "-"
            << (bucketLow(i) + width);
        printLine(os, bin.str(), static_cast<double>(buckets[i]), desc());
    }
    if (underflow)
        printLine(os, name() + "::underflow",
                  static_cast<double>(underflow), desc());
    if (overflow)
        printLine(os, name() + "::overflow",
                  static_cast<double>(overflow), desc());
}

void
Formula::print(std::ostream &os) const
{
    printLine(os, name(), value(), desc());
}

template <typename T, typename... Args>
T &
StatGroup::emplace(const std::string &name, Args &&...args)
{
    std::string full = groupName.empty() ? name : groupName + "." + name;
    fatal_if(statsByName.count(full),
             "duplicate stat registration: ", full);
    auto stat = std::make_unique<T>(full, std::forward<Args>(args)...);
    T &ref = *stat;
    order.push_back(stat.get());
    statsByName.emplace(full, std::move(stat));
    return ref;
}

Scalar &
StatGroup::newScalar(const std::string &name, const std::string &desc)
{
    return emplace<Scalar>(name, desc);
}

Average &
StatGroup::newAverage(const std::string &name, const std::string &desc)
{
    return emplace<Average>(name, desc);
}

Vector &
StatGroup::newVector(const std::string &name, const std::string &desc,
                     std::vector<std::string> bin_names)
{
    return emplace<Vector>(name, desc, std::move(bin_names));
}

Distribution &
StatGroup::newDistribution(const std::string &name, const std::string &desc,
                           double min, double max, double bucket_width)
{
    return emplace<Distribution>(name, desc, min, max, bucket_width);
}

Formula &
StatGroup::newFormula(const std::string &name, const std::string &desc,
                      std::function<double()> fn)
{
    return emplace<Formula>(name, desc, std::move(fn));
}

const Stat *
StatGroup::find(const std::string &name) const
{
    if (!groupName.empty()) {
        auto it = statsByName.find(groupName + "." + name);
        if (it != statsByName.end())
            return it->second.get();
    }
    // Also accept fully-qualified names.
    auto it = statsByName.find(name);
    return it == statsByName.end() ? nullptr : it->second.get();
}

double
StatGroup::lookupValue(const std::string &name) const
{
    const Stat *s = find(name);
    fatal_if(!s, "unknown stat: ", name);
    return s->value();
}

void
StatGroup::resetAll()
{
    for (Stat *s : order)
        s->reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const Stat *s : order)
        s->print(os);
}

} // namespace loopsim::stats
