/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Stats are registered with a StatGroup under a dotted name, accumulate
 * during simulation, and can be dumped as text or queried numerically by
 * the harness. Supported kinds:
 *
 *  - Scalar: a plain counter / accumulator.
 *  - Average: mean of samples (sum and count tracked).
 *  - Vector: fixed number of named scalar bins.
 *  - Distribution: bucketed distribution over a numeric range with
 *    min/max/mean and a CDF query (used for Figure 6).
 *  - Formula: a derived value computed on demand from other stats.
 */

#ifndef LOOPSIM_STATS_STATISTICS_HH
#define LOOPSIM_STATS_STATISTICS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace loopsim::stats
{

/** Common interface for every statistic. */
class Stat
{
  public:
    Stat(std::string name, std::string desc)
        : _name(std::move(name)), _desc(std::move(desc))
    {}
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Primary numeric value (total for scalars, mean for averages). */
    virtual double value() const = 0;

    /** Reset to the post-construction state. */
    virtual void reset() = 0;

    /** Append a text rendering, one or more lines. */
    virtual void print(std::ostream &os) const = 0;

  private:
    std::string _name;
    std::string _desc;
};

/** A counter/accumulator. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator++() { ++total; return *this; }
    Scalar &operator+=(double v) { total += v; return *this; }

    double value() const override { return total; }
    void reset() override { total = 0.0; }
    void print(std::ostream &os) const override;

  private:
    double total = 0.0;
};

/** Mean over explicit samples. */
class Average : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        sum += v;
        ++count;
    }

    /**
     * Span-weighted sampling: @p n repeats of the same value in one
     * call. For integer-valued @p v (every per-cycle occupancy this
     * stat records) `sum += v * n` is bit-identical to @p n repeated
     * additions — both are exact up to 2^53 — which is what keeps the
     * sparse kernel's statistics byte-equal to the dense kernel's.
     */
    void
    sample(double v, std::uint64_t n)
    {
        sum += v * static_cast<double>(n);
        count += n;
    }

    double value() const override { return count ? sum / count : 0.0; }
    double total() const { return sum; }
    std::uint64_t samples() const { return count; }
    void reset() override { sum = 0.0; count = 0; }
    void print(std::ostream &os) const override;

  private:
    double sum = 0.0;
    std::uint64_t count = 0;
};

/** A fixed set of named scalar bins. */
class Vector : public Stat
{
  public:
    Vector(std::string name, std::string desc,
           std::vector<std::string> bin_names);

    void add(std::size_t bin, double v = 1.0);

    std::size_t size() const { return bins.size(); }
    double bin(std::size_t i) const;
    const std::string &binName(std::size_t i) const;

    /** Sum over all bins. */
    double value() const override;
    /** bin(i) / value(), or 0 when the total is 0. */
    double fraction(std::size_t i) const;

    void reset() override;
    void print(std::ostream &os) const override;

  private:
    std::vector<std::string> names;
    std::vector<double> bins;
};

/**
 * Bucketed distribution over [min, max] with fixed bucket width.
 * Samples outside the range land in underflow/overflow.
 */
class Distribution : public Stat
{
  public:
    Distribution(std::string name, std::string desc, double min, double max,
                 double bucket_width);

    void sample(double v, std::uint64_t n = 1);

    std::uint64_t samples() const { return count; }
    double mean() const { return count ? sum / count : 0.0; }
    double minSample() const { return minSeen; }
    double maxSample() const { return maxSeen; }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t bucketCount(std::size_t i) const;
    /** Inclusive lower edge of bucket @p i. */
    double bucketLow(std::size_t i) const;
    std::uint64_t underflows() const { return underflow; }
    std::uint64_t overflows() const { return overflow; }

    /** Fraction of samples with value <= x (empirical CDF; the bucket
     *  containing x counts fully, exact for unit integer buckets). */
    double cdf(double x) const;

    double value() const override { return mean(); }
    void reset() override;
    void print(std::ostream &os) const override;

  private:
    double lo;
    double hi;
    double width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t underflow = 0;
    std::uint64_t overflow = 0;
    std::uint64_t count = 0;
    double sum = 0.0;
    double minSeen = 0.0;
    double maxSeen = 0.0;
};

/** A derived value computed on demand. */
class Formula : public Stat
{
  public:
    Formula(std::string name, std::string desc,
            std::function<double()> fn)
        : Stat(std::move(name), std::move(desc)), compute(std::move(fn))
    {}

    double value() const override { return compute ? compute() : 0.0; }
    void reset() override {}
    void print(std::ostream &os) const override;

  private:
    std::function<double()> compute;
};

/**
 * Owner/registry of statistics. Components create their stats through a
 * group; the simulator dumps or resets the whole group at once.
 *
 * The registration methods return references the owner is expected to
 * cache: simulation hot paths bump stats only through those handles.
 * The by-name index (a hash map; dump order comes from the separate
 * registration-order list) backs find()/lookupValue() for harness and
 * test queries, never per-cycle work. Groups are confined to the run
 * that built them — one StatGroup per Core — so they need no internal
 * locking under the parallel campaign executor.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : groupName(std::move(name)) {}

    Scalar &newScalar(const std::string &name, const std::string &desc);
    Average &newAverage(const std::string &name, const std::string &desc);
    Vector &newVector(const std::string &name, const std::string &desc,
                      std::vector<std::string> bin_names);
    Distribution &newDistribution(const std::string &name,
                                  const std::string &desc, double min,
                                  double max, double bucket_width);
    Formula &newFormula(const std::string &name, const std::string &desc,
                        std::function<double()> fn);

    /** Look up a stat by exact name; nullptr when absent. */
    const Stat *find(const std::string &name) const;
    /** Value of a named stat; fatal() when the stat does not exist. */
    double lookupValue(const std::string &name) const;

    void resetAll();
    void dump(std::ostream &os) const;

    const std::string &name() const { return groupName; }
    std::size_t size() const { return order.size(); }

  private:
    template <typename T, typename... Args>
    T &emplace(const std::string &name, Args &&...args);

    std::string groupName;
    std::unordered_map<std::string, std::unique_ptr<Stat>> statsByName;
    std::vector<Stat *> order;
};

} // namespace loopsim::stats

#endif // LOOPSIM_STATS_STATISTICS_HH
