/**
 * @file
 * Per-thread register rename map (architectural to physical), with the
 * inverse operations needed for ROB-walk squash recovery.
 */

#ifndef LOOPSIM_CORE_RENAME_HH
#define LOOPSIM_CORE_RENAME_HH

#include <vector>

#include "base/types.hh"

namespace loopsim
{

class PhysRegFile;

class RenameMap
{
  public:
    /**
     * @param num_arch_regs architectural registers in this thread
     * @param prf           backing physical register file; the map
     *                      allocates one live register per arch reg at
     *                      construction (the architectural state).
     */
    RenameMap(unsigned num_arch_regs, PhysRegFile &prf);

    /** Current mapping of @p reg. */
    PhysReg lookup(ArchReg reg) const;

    /**
     * Redirect @p reg to @p new_reg.
     * @return the previous mapping (freed when the renaming
     *         instruction retires).
     */
    PhysReg rename(ArchReg reg, PhysReg new_reg);

    /** Squash recovery: restore @p reg to @p old_reg. */
    void restore(ArchReg reg, PhysReg old_reg);

    unsigned size() const { return static_cast<unsigned>(map.size()); }

  private:
    std::vector<PhysReg> map;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_RENAME_HH
