/**
 * @file
 * The simulated processor core: an 8-wide, clustered, SMT, out-of-order
 * pipeline modelled at cycle granularity, reproducing the base machine
 * of "Loose Loops Sink Chips" (HPCA 2002) §2 and, when enabled, the
 * Distributed Register Algorithm of §4-§5.
 *
 * Loop discipline: every feedback signal — load hit/miss, branch
 * resolution, DRA operand miss — becomes visible to its initiation
 * stage only after the configured loop delay, mirroring the paper's
 * (ASIM-enforced) no-global-knowledge rule. Speculation is repaired by
 * issue-stage reissue (load/operand loops) or fetch-stage squash
 * (branch loop, memory traps), with rename-map rollback by ROB walk.
 */

#ifndef LOOPSIM_CORE_CORE_HH
#define LOOPSIM_CORE_CORE_HH

#include <algorithm>
#include <array>
#include <bit>
#include <deque>
#include <set>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "base/annotations.hh"
#include "base/types.hh"
#include "branch/btb.hh"
#include "branch/predictor.hh"
#include "core/dyn_inst.hh"
#include "core/forwarding_buffer.hh"
#include "core/instruction_queue.hh"
#include "core/machine_config.hh"
#include "core/mem_dep.hh"
#include "core/register_file.hh"
#include "core/rename.hh"
#include "core/rob.hh"
#include "core/timeline.hh"
#include "dra/dra_unit.hh"
#include "integrity/probe.hh"
#include "mem/hierarchy.hh"
#include "sim/feedback_port.hh"
#include "sim/simulator.hh"
#include "stats/statistics.hh"
#include "trace/loop_trace.hh"
#include "workload/generator.hh"

namespace loopsim
{

class Config;
class FaultInjector;

/** @name Feedback-loop messages (see sim/feedback_port.hh)
 *
 * The payloads carried by the three paper loops. They travel only
 * through a FeedbackPort: writers stamp them with the resolution cycle
 * and the configured loop delay, readers unwrap them with read(now),
 * and audit builds verify the discipline. tools/loop_lint.py rejects
 * constructions of these types outside a port send.
 */
/// @{
/** Branch resolution into fetch: squash parameters for the redirect. */
struct BranchResolveMsg
{
    ThreadId tid = 0;
    /** Squash everything younger than this fetch stamp. */
    std::uint64_t squashStamp = 0;
};

/** Load hit/miss resolution into issue (and memory traps into fetch). */
struct LoadResolveMsg
{
    ThreadId tid = 0;
    /** Traps: squash everything younger than this fetch stamp. */
    std::uint64_t squashStamp = 0;
};

/** DRA operand-miss resolution into issue (§5.4). */
struct OperandMissMsg
{
    /** Bit i set: source operand i missed and is being recovered. */
    unsigned missMask = 0;
};
/// @}

class Core : public Clocked, public IntegrityProbe
{
  public:
    /**
     * @param cfg     raw configuration ("core.*", "dra.*", "mem.*",
     *                "branch.*" keys)
     * @param sources one trace source per hardware thread (not owned;
     *                must outlive the core)
     */
    Core(const Config &cfg, std::vector<TraceSource *> sources);
    ~Core() override;

    void tick(Cycle now) override;
    bool done() const override;
    /**
     * Sparse-kernel wake cycle: the min over the per-stage wake cycles
     * computed at the end of the previous tick (core_wake.cc). Every
     * cycle the dense kernel would have *acted* on is covered; cycles
     * where every stage only re-evaluates frozen state and declines
     * are skipped and reconstructed by span accounting.
     */
    Cycle nextActivity(Cycle now) const override;
    std::string name() const override { return "core"; }
    /** Under the dense reference kernel the issue-stage gate, the
     *  post-tick wake computation and the incremental ready tracking
     *  are switched off entirely, keeping the baseline a pure
     *  tick-every-cycle machine. Under the sparse kernel the ready
     *  structures are rebuilt from the current IQ contents — run() may
     *  be called repeatedly on a warm core (warmup loops), so the
     *  rebuild is idempotent. Defined in core_wake.cc. */
    void prepareKernel(KernelMode mode) override;

    /** Ticks whose issue stage ran the reference O(IQ) fused scan
     *  (every dense tick; zero under the incremental sparse path). */
    std::uint64_t fullScanTicks() const override { return scanTicks; }

    /** @name Results */
    /// @{
    std::uint64_t retiredOps() const;
    std::uint64_t retiredOps(ThreadId tid) const;
    Cycle cyclesRun() const { return lastCycle - measureStartCycle; }
    double ipc() const;

    /**
     * End the warmup phase: reset all statistics and measure IPC from
     * this point on (the caches, predictors and pipeline keep their
     * state, like the paper's warmed measurement runs).
     */
    void beginMeasurement();
    /// @}

    const MachineConfig &machine() const { return cfg; }
    stats::StatGroup &statGroup() { return sg; }
    const stats::StatGroup &statGroup() const { return sg; }

    /**
     * Unqualified name → handle for every scalar-valued stat the
     * harness exports into RunResult::scalars. Cached at construction
     * so result extraction never goes through the registry's by-name
     * map (statGroup().lookupValue() stays available for ad-hoc and
     * test queries).
     */
    const std::vector<std::pair<const char *, const stats::Stat *>> &
    exportedStats() const
    {
        return exported;
    }
    const MemoryHierarchy &memory() const { return *mem; }
    const DraUnit *dra() const { return draUnit.get(); }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Diagnostic dump of pipeline state (stuck-pipeline debugging). */
    void debugDump(std::ostream &os) const;

    /** @name IntegrityProbe (watchdog observation surface) */
    /// @{
    IntegritySample integritySample(Cycle now) const override;
    /**
     * Structural invariant sweep: ROB program-order monotonicity,
     * IQ/ROB occupancy accounting, per-thread stage counters,
     * forwarding-buffer window arithmetic, and physical-register
     * free-list conservation. O(in-flight); called by the watchdog
     * behind its debug gate, or directly by tests.
     */
    std::vector<std::string> structuralViolations() const override;
    void dumpState(std::ostream &os) const override { debugDump(os); }
    std::string probeName() const override { return name(); }
    /// @}

    /** The fault injector, or nullptr when fault injection is off. */
    const FaultInjector *faultInjector() const { return injector.get(); }

    /** @name Feedback ports (loop-discipline enforcement surface)
     *
     * Exposed read-only so tests can assert that the three paper loops
     * actually flow through the ports (delivered() > 0) and that audit
     * runs drained every in-flight signal they read.
     */
    /// @{
    const FeedbackPort<BranchResolveMsg> &branchResolvePort() const
    {
        return branchPort;
    }
    const FeedbackPort<LoadResolveMsg> &loadResolvePort() const
    {
        return loadPort;
    }
    const FeedbackPort<OperandMissMsg> &operandMissPort() const
    {
        return operandPort;
    }
    /// @}

    /**
     * Panic unless the machine has fully drained: no instructions in
     * flight, every IQ slot free, and every physical register either
     * architecturally mapped or on the free list. Call after done();
     * catches resource leaks in recovery paths.
     */
    void checkQuiescent() const;

    /** Empirical CDF source for Figure 6. */
    const stats::Distribution &operandGapStat() const
    {
        return *operandGap;
    }
    /** Operand-location breakdown for Figure 9. */
    const stats::Vector &operandSourceStat() const
    {
        return *operandSources;
    }

    /** Retired-instruction timeline (nullptr unless core.timeline>0). */
    const TimelineRecorder *timeline() const { return timelineRec.get(); }

    /**
     * Drain this run's loop-event trace (empty when trace collection
     * is off). Events are in simulation order: every feedback delivery
     * the port read sites observed, with its write-cycle / loop-delay /
     * consume-cycle stamps.
     */
    std::vector<trace::LoopEvent> takeLoopTrace();

    /** Is this core recording loop events? (tests) */
    bool loopTraceActive() const { return loopTrace != nullptr; }

  private:
    /** @name Pipeline event machinery */
    /// @{
    enum class EventType : std::uint8_t
    {
        Writeback,       ///< value leaves fwd buffer, lands in RF
        LoadMissKill,    ///< load-resolution-loop mis-speculation at IQ
        OperandMissKill, ///< DRA operand-loop mis-speculation at IQ
        TlbTrap,         ///< memory trap: front-of-pipe recovery
        OrderTrap,       ///< load/store reorder trap: refetch the load
        BranchRedirect,  ///< branch-resolution-loop repair at fetch
        ExecStart,       ///< instruction reaches the functional unit
        PayloadDelivery  ///< operand-miss recovery reaches the payload
    };

    struct Event
    {
        Cycle cycle;
        EventType type;
        std::uint64_t order; ///< FIFO tie-break within a cycle
        InstRef ref;
        Cycle issueStamp = invalidCycle; ///< staleness check
        PhysReg reg = invalidPhysReg;    ///< Writeback payload
        Cycle expect = invalidCycle;     ///< Writeback produce check
        /** Feedback-port signal id (0 for non-feedback events). */
        std::uint64_t signalId = 0;

        bool
        operator>(const Event &o) const
        {
            if (cycle != o.cycle)
                return cycle > o.cycle;
            if (type != o.type)
                return type > o.type;
            return order > o.order;
        }
    };

    /** Scheduling a waking event is itself a wake declaration: the
     *  event's cycle feeds nextActivity() through the waking queue
     *  (lazy events opt out of that, see `lazyEvents`). */
    LOOPSIM_WAKE_HOOK void schedule(Event ev, bool lazy = false);
    void processEvents(Cycle now);

    /** Can this op's ExecStart ride the lazy queue? True for plain
     *  functional-unit ops on non-DRA machines: their execution only
     *  writes timestamps, flips the entry to Done and schedules a lazy
     *  Writeback — no port message, no squash, no same-cycle effect on
     *  any stage except retire eligibility, which computeWake()'s
     *  retire clause reconstructs from the issue cycle. Branches
     *  qualify too when they are statically known to neither redirect
     *  (forceMispredict is resolved at fetch; wrong-path branches
     *  never redirect) nor write a link register. Loads (kill/trap
     *  scheduling at resolve), stores (held-load release, trap
     *  scheduling), redirecting branches and every DRA execution
     *  (operand-miss recovery) must keep waking the wheel. */
    bool
    lazyExecEligible(const MicroOp &op) const
    {
        if (draUnit || op.isLoad() || op.isStore())
            return false;
        if (op.isBranch())
            return !op.forceMispredict && !op.hasDest();
        return true;
    }

    /** Record that the issue stage might act at cycle @p c (it can
     *  only lower the cached iqWakeAt). Every mutation that can make
     *  an IQ entry confirm-free or issueable earlier must pass
     *  through here — see issueStage()'s gate. */
    LOOPSIM_WAKE_HOOK void
    noteIqWake(Cycle c)
    {
        if (c < iqWakeAt)
            iqWakeAt = c;
    }

    /** setIssueReady plus the issue-stage wake note: every scoreboard
     *  wakeup is a potential issue at @p at. Under the sparse kernel
     *  it also walks the producer's consumer list and arms wake
     *  timers for entries whose gate cycles just became fully known
     *  (the incremental ready tracking's only entry point for
     *  "producer scheduled after the consumer was inserted"). */
    LOOPSIM_WAKE_HOOK void
    wakeReg(PhysReg reg, Cycle at)
    {
        prf.setIssueReady(reg, at);
        noteIqWake(at);
        if (sparseKernel)
            armWokenConsumers(reg);
    }

    /** @name Incremental per-cluster ready tracking (sparse kernel)
     *
     * The sparse issue stage never rescans the IQ; instead every
     * mutation that can advance an entry's eligibility arms one of
     * these structures (DESIGN.md §14):
     *
     *  - wakeTimer: calendar ring of (cycle, ref) — "this InIq
     *    entry's gates may all be satisfied at `cycle`". Drained
     *    entries join clusterReady.
     *  - clusterReady: per-cluster map keyed by fetchStamp — the
     *    oldest-first candidate sets the select loop arbitrates over.
     *    Entries are re-validated against the full reference
     *    predicate at every evaluation, so stale refs are erased, not
     *    trusted.
     *  - confirmTimer: calendar ring of (cycle, ref) — "this
     *    Issued/Done entry may confirm-free at `cycle`".
     *  - readyRecheck: kill victims reverted to InIq this cycle; the
     *    next issue pass re-inserts them (reissue can happen in the
     *    kill cycle, like the dense scan would).
     *
     * The arm helpers self-note iqWakeAt, so "every pending timer key
     * is >= iqWakeAt" is a local invariant and the issue-stage gate
     * can never sleep through an armed cycle.
     */
    /// @{
    LOOPSIM_WAKE_HOOK void
    armWakeTimer(Cycle at, InstRef ref)
    {
        wakeTimer.push(at, ref);
        noteIqWake(at);
    }

    LOOPSIM_WAKE_HOOK void
    armConfirmTimer(Cycle at, InstRef ref)
    {
        confirmTimer.push(at, ref);
        noteIqWake(at);
    }

    /** Queue a kill victim for re-evaluation at the next issue pass.
     *  The note's cycle 0 only means "the gate must not skip the next
     *  tick" — the pass itself recomputes the exact wake. */
    LOOPSIM_WAKE_HOOK void
    queueReadyRecheck(InstRef ref)
    {
        readyRecheck.push_back(ref);
        noteIqWake(0);
    }

    /** Arm wake timers for @p reg's producer's consumers (see
     *  wakeReg). Defined in core_wake.cc. */
    LOOPSIM_WAKE_HOOK void armWokenConsumers(PhysReg reg);

    /** Sorted-insert @p ref into its cluster's candidate set; a
     *  duplicate stamp is a no-op. Membership alone never issues
     *  anything — candidates are re-validated against the reference
     *  predicate every pass — so inserting early or redundantly is
     *  safe. */
    void
    insertReadyCand(const DynInst &inst, InstRef ref)
    {
        auto &cands = clusterReady[inst.cluster];
        auto it = std::lower_bound(
            cands.begin(), cands.end(), inst.fetchStamp,
            [](const ReadyCand &a, std::uint64_t s) {
                return a.stamp < s;
            });
        if (it != cands.end() && it->stamp == inst.fetchStamp)
            return;
        cands.insert(it, ReadyCand{inst.fetchStamp, ref});
    }

    /** True when @p inst is already in its cluster's candidate set
     *  (arm sites skip the timer then: membership guarantees
     *  evaluation at every pass the gate lets through). */
    bool
    isReadyCand(const DynInst &inst) const
    {
        const auto &cands = clusterReady[inst.cluster];
        auto it = std::lower_bound(
            cands.begin(), cands.end(), inst.fetchStamp,
            [](const ReadyCand &a, std::uint64_t s) {
                return a.stamp < s;
            });
        return it != cands.end() && it->stamp == inst.fetchStamp;
    }
    /// @}

    /** An op waiting to reach the rename point. */
    struct FetchedOp
    {
        MicroOp op;
        Cycle renameReadyAt;
    };

    /** A renamed op traversing the rest of the DEC-IQ pipe. */
    struct PendingInsert
    {
        InstRef ref;
        Cycle insertAt;
        ThreadId tid;
    };

    struct ThreadState
    {
        TraceSource *src = nullptr;
        std::unique_ptr<RenameMap> map;
        ReorderBuffer rob;
        std::deque<FetchedOp> fetchBuffer;
        std::deque<MicroOp> replayQueue;
        bool exhausted = false;
        bool onWrongPath = false;
        SeqNum wrongPathResume = invalidSeqNum;
        Cycle fetchResumeAt = 0;
        unsigned pipeCount = 0; ///< this thread's PendingInsert entries
        unsigned iqCount = 0;
        std::uint64_t fetched = 0;
        std::uint64_t retired = 0;
        /** Memory-ordering state: store sequence numbering and the
         *  set of renamed-but-unexecuted store sequence numbers. */
        std::uint64_t storeRenameCount = 0;
        std::set<std::uint64_t> unexecStoreSeqs;
    };

    /** @name Stage logic (one call per cycle each) */
    /// @{
    void fetchStage(Cycle now);
    void renameStage(Cycle now);
    void insertStage(Cycle now);
    void issueStage(Cycle now);
    void retireStage(Cycle now);
    /// @}

    /** Fetch helpers. */
    ThreadId pickFetchThread(Cycle now);
    bool fetchOne(ThreadState &t, ThreadId tid, Cycle now);
    void resolvePrediction(MicroOp &op, ThreadId tid);

    /** Rename one op; returns false when resources stall it. */
    bool renameOne(ThreadState &t, ThreadId tid, FetchedOp &fop,
                   Cycle now);

    /** Execution. */
    void startExecution(InstRef ref, Cycle exec_start, Cycle issue_stamp);
    void executeValid(DynInst &inst, InstRef ref, Cycle exec_start);
    void handleLoadExec(DynInst &inst, InstRef ref, Cycle exec_start);
    void handleBranchExec(DynInst &inst, InstRef ref, Cycle exec_start);
    void handleOperandMiss(DynInst &inst, InstRef ref, Cycle exec_start,
                           unsigned miss_mask);

    /** Revert an issued instruction to waiting state. Reverting to
     *  InIq re-arms issue eligibility, so the victim is queued for a
     *  ready recheck (sparse) and callers owe a wake note
     *  (loopsim::wake_state propagates the obligation to them). */
    LOOPSIM_WAKE_STATE void killInstruction(InstRef ref);
    /** Kill the issued dependency tree rooted at @p root (§2.2.2). */
    LOOPSIM_WAKE_STATE void killDependencyTree(InstRef root, Cycle now);
    /** 21264 mode: kill everything issued in the load shadow. */
    LOOPSIM_WAKE_STATE void killLoadShadow(const DynInst &load,
                                           Cycle now);

    /** Squash all ops of @p tid younger than @p stamp (fetch-stage
     *  recovery); correct-path victims go to the replay queue. */
    LOOPSIM_WAKE_STATE void squashYounger(ThreadId tid,
                                          std::uint64_t stamp, Cycle now);

    /** Memory-ordering bookkeeping for a store's first valid
     *  execution: mark it executed and detect reorder traps. */
    void handleStoreOrdering(DynInst &inst, InstRef ref,
                             Cycle exec_start);

    /** Operand classification at execute (Figure 9 accounting). */
    OperandSource classifyOperand(const DynInst &inst, unsigned idx,
                                  Cycle exec_start);

    void buildStats();
    bool backendDrained() const;

    /** @name Issue-stage internals (core_backend.cc) */
    /// @{
    /** The reference fused O(IQ) confirm-free + wakeup/select scan:
     *  the dense kernel's issue stage, and the semantics the sparse
     *  incremental path must reproduce byte-identically. */
    void issueScanReference(Cycle now);
    /** The sparse path: drain timers, re-validate the per-cluster
     *  ready sets, select. */
    void issueIncremental(Cycle now);
    /** Issue one select winner: state/stat bookkeeping, confirm note,
     *  speculative consumer wakeup, ExecStart scheduling. Shared by
     *  both paths so event and wakeup order are identical. */
    LOOPSIM_WAKE_STATE void issueWinner(InstRef ref, Cycle now);
    /// @}

    /** Per-cycle loop-occupancy sampling (see DESIGN.md §11): for each
     *  loop with feedback in flight, how much work sits speculatively
     *  exposed to its repair. */
    void sampleLoopOccupancy();

    /** @name Sparse-kernel support (core_wake.cc, DESIGN.md §14) */
    /// @{
    /** Replay the per-cycle accounting the dense kernel would have
     *  done over the skipped span [lastCycle, @p now): cycle counts,
     *  occupancy averages, loop-open scalars/distributions, the
     *  recovery-stall counter and the fetch round-robin cursor. All
     *  sampled values are frozen across the span (no tick, no event),
     *  so weighted samples are bit-identical to per-cycle ones. */
    void accountIdleSpan(Cycle now);
    /** Recompute wakeCycle from post-tick state: the earliest future
     *  cycle at which any stage could act. */
    LOOPSIM_WAKE_HOOK void computeWake(Cycle now);
    /// @}

    /** One-line timeline of @p ref for discipline-violation reports
     *  (empty when the instruction is no longer live). */
    std::string instTimeline(InstRef ref) const;

    MachineConfig cfg;
    std::unique_ptr<MemoryHierarchy> mem;
    std::unique_ptr<DraUnit> draUnit;
    std::unique_ptr<DirectionPredictor> predictor;
    std::unique_ptr<Btb> btb;
    std::unique_ptr<MemDepPredictor> memDep;
    std::unique_ptr<TimelineRecorder> timelineRec;
    std::unique_ptr<FaultInjector> injector;

    InstPool pool;
    PhysRegFile prf;
    InstructionQueue iq;
    ForwardingBuffer fwd;

    std::vector<ThreadState> threads;
    std::deque<PendingInsert> renamePipe;

    /** Waking events: their cycles feed nextActivity(), so the wheel
     *  always ticks the core when one is due. */
    LOOPSIM_WAKE_STATE
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events;
    /** Lazy events (Writebacks, plus ExecStarts that pass
     *  lazyExecEligible()): updates whose effects are unobservable
     *  until the next read, which can only happen inside a tick.
     *  They do NOT wake the wheel; instead
     *  processEvents() drains both queues in exact dense heap order
     *  at whatever tick comes next, passing each event its own cycle.
     *  Since no tick ran between a lazy event's cycle and its drain,
     *  the state its handler inspects (liveness, expected produce
     *  cycle) is frozen at the value the dense kernel saw — so the
     *  late application is bit-identical, and a Writeback-only cycle
     *  costs no tick at all. */
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        lazyEvents;
    std::uint64_t eventOrder = 0;

    /** @name The three paper feedback loops, as checked ports */
    /// @{
    FeedbackPort<BranchResolveMsg> branchPort{"core.fetch",
                                              "branch-resolution"};
    FeedbackPort<LoadResolveMsg> loadPort{"core.issue",
                                          "load-resolution"};
    FeedbackPort<OperandMissMsg> operandPort{"core.issue",
                                             "dra-operand-miss"};
    /// @}

    /** Loop-event recorder; nullptr unless trace collection is on, so
     *  untraced runs pay one pointer test per feedback delivery. */
    std::unique_ptr<trace::RunRecorder> loopTrace;

    std::uint64_t fetchStampCounter = 0;
    unsigned clusterCursor = 0;
    unsigned rrFetchCursor = 0;
    Cycle renameStallUntil = 0; ///< DRA recovery borrows the RF ports
    /** Earliest future cycle any stage could act (invalidCycle: only
     *  another component's activity can change this core's state).
     *  Starts at 0 so a fresh core's first tick is immediate. */
    LOOPSIM_WAKE_STATE Cycle wakeCycle = 0;
    /** Cached earliest cycle at which the issue stage could free a
     *  Done entry or issue an InIq entry (invalidCycle: only a hook —
     *  noteIqWake()/wakeReg() — can make it act). issueStage() skips
     *  its O(IQ) scan entirely while this is in the future and
     *  recomputes it exactly whenever it does scan; computeWake()
     *  folds it in instead of rescanning the IQ. Starts at 0 so the
     *  first tick always scans. */
    /** @name issueStage() scratch (allocated once, reused per tick) */
    /// @{
    std::vector<InstRef> scratchFree;
    std::vector<InstRef> scratchWinner;
    std::vector<std::uint64_t> scratchWinnerAge;
    std::vector<std::uint8_t> scratchReady;
    /// @}

    /** A timer entry: @p ref may act at cycle @p at. Drain order
     *  among equal cycles is immaterial because drained refs are
     *  re-validated (wake) or independent (confirm frees commute). */
    struct ReadyTimer
    {
        Cycle at;
        InstRef ref;
        bool operator>(const ReadyTimer &o) const { return at > o.at; }
    };

    /** A calendar ring of pending (cycle, ref) timers: 64 one-cycle
     *  buckets over the near horizon plus a min-heap for the rare
     *  far-future arm (a load wakeup in Stall mode can sit a full
     *  memory latency out; confirm and ALU wakeups are all within a
     *  few pipeline latencies). The timers carry roughly one push and
     *  one pop per issued instruction, which made global-heap
     *  maintenance the largest single overhead of the sparse issue
     *  stage; the ring makes both ends O(1).
     *
     *  The timing contract is exact, not amortised: drain(now) hands
     *  over every entry with at <= now and never an entry with
     *  at > now. The confirm pop rules rely on the second half —
     *  an early pop would misread a still-pending free as superseded
     *  and leak the IQ slot. Buckets therefore store the armed cycle
     *  and flush re-files anything a bucket collision filed early
     *  (possible only for arms issued from inside a drain callback
     *  while a >= 64-cycle backlog flushes). */
    class TimerRing
    {
      public:
        /** Arm @p ref for cycle @p at. A past-due @p at is clamped up
         *  to the next undrained cycle: it fires at the next drain,
         *  exactly as a past-due key in a min-heap would. */
        void
        push(Cycle at, InstRef ref)
        {
            if (at < head)
                at = head;
            if (at - head >= size) {
                overflow.push({at, ref});
                return;
            }
            const unsigned b = static_cast<unsigned>(at) & mask;
            slots[b].push_back({at, ref});
            occupied |= std::uint64_t{1} << b;
        }

        /** Invoke @p f on every ref armed for a cycle <= @p now.
         *  @p f may push() (a confirm drain can re-arm itself). */
        template <typename F>
        void
        drain(Cycle now, F &&f)
        {
            while (!overflow.empty() && overflow.top().at <= now) {
                const InstRef ref = overflow.top().ref;
                overflow.pop();
                f(ref);
            }
            if (now < head)
                return;
            const Cycle from = head;
            head = now + 1;
            if (!occupied)
                return;
            if (now - from >= size - 1) {
                // Every bucket's cycle is due; flush the snapshot
                // (callback pushes re-set bits for future cycles).
                std::uint64_t due = occupied;
                occupied = 0;
                while (due) {
                    const unsigned b = static_cast<unsigned>(
                        std::countr_zero(due));
                    due &= due - 1;
                    flush(b, now, f);
                }
                return;
            }
            for (Cycle c = from; c <= now; ++c) {
                const unsigned b = static_cast<unsigned>(c) & mask;
                if (occupied & (std::uint64_t{1} << b)) {
                    occupied &= ~(std::uint64_t{1} << b);
                    flush(b, now, f);
                }
            }
        }

        /** Earliest armed cycle (>= the next undrained cycle), or
         *  invalidCycle when nothing is armed. */
        Cycle
        nextDue() const
        {
            Cycle best =
                overflow.empty() ? invalidCycle : overflow.top().at;
            if (occupied) {
                const unsigned idx = static_cast<unsigned>(head) & mask;
                const Cycle ring_due =
                    head + static_cast<unsigned>(std::countr_zero(
                               std::rotr(occupied, idx)));
                best = std::min(best, ring_due);
            }
            return best;
        }

        /** Forget everything; bucket capacity is kept. */
        void
        reset()
        {
            for (auto &s : slots)
                s.clear();
            scratch.clear();
            occupied = 0;
            head = 0;
            overflow = {};
        }

      private:
        template <typename F>
        void
        flush(unsigned b, Cycle now, F &&f)
        {
            scratch.clear();
            scratch.swap(slots[b]);
            for (const ReadyTimer &t : scratch) {
                if (t.at <= now)
                    f(t.ref);
                else
                    push(t.at, t.ref); // filed early by a collision
            }
        }

        static constexpr unsigned size = 64;
        static constexpr unsigned mask = size - 1;
        std::array<std::vector<ReadyTimer>, size> slots;
        std::vector<ReadyTimer> scratch;
        std::uint64_t occupied = 0;
        Cycle head = 0; ///< everything below has been drained
        std::priority_queue<ReadyTimer, std::vector<ReadyTimer>,
                            std::greater<ReadyTimer>>
            overflow;
    };

    /** @name Incremental ready tracking (sparse kernel only; empty
     *  and unread under the dense reference). See the arm helpers
     *  above and DESIGN.md §14. */
    /// @{
    LOOPSIM_WAKE_STATE TimerRing wakeTimer;
    LOOPSIM_WAKE_STATE TimerRing confirmTimer;
    /** A select candidate: fetchStamp plus ref. fetchStamps are
     *  unique and stable across reissue, so the stamp doubles as the
     *  dedup identity. */
    struct ReadyCand
    {
        std::uint64_t stamp;
        InstRef ref;
    };
    /** Per-cluster select candidates, sorted by fetchStamp so
     *  iteration is oldest-first (the §2 arbiter order). Flat sorted
     *  vectors, not maps: the sets are arbiter-sized (a handful of
     *  entries), evaluation compacts them in place, and the reused
     *  capacity keeps the hot path allocation-free. */
    std::vector<std::vector<ReadyCand>> clusterReady;
    /** Kill victims reverted to InIq since the last issue pass. */
    std::vector<InstRef> readyRecheck;
    /// @}

    /** Ticks whose issue stage ran the full O(IQ) reference scan
     *  (kernel scan-fraction telemetry; see Clocked::fullScanTicks). */
    std::uint64_t scanTicks = 0;
    LOOPSIM_WAKE_STATE Cycle iqWakeAt = 0;
    /** Set from prepareKernel(): true under the sparse event wheel
     *  (also the construction default, so a bare core outside any
     *  Simulator gets the production code paths). The dense reference
     *  kernel clears it, disabling the issue-stage gate and the wake
     *  computation. */
    bool sparseKernel = true;
    bool tickedOnce = false; ///< span accounting starts at first tick
    Cycle lastCycle = 0;
    Cycle measureStartCycle = 0;
    std::uint64_t measureStartRetired = 0;

    /** @name Statistics */
    /// @{
    stats::StatGroup sg;
    stats::Scalar *cycles = nullptr;
    stats::Scalar *fetchedOps = nullptr;
    stats::Scalar *wrongPathOps = nullptr;
    stats::Scalar *renamedOps = nullptr;
    stats::Scalar *issuedOps = nullptr;
    stats::Scalar *reissuedOps = nullptr;
    stats::Scalar *retiredTotal = nullptr;
    stats::Scalar *squashedOps = nullptr;
    stats::Scalar *branchesRetired = nullptr;
    stats::Scalar *branchMispredicts = nullptr;
    stats::Scalar *loadMissEvents = nullptr;
    stats::Scalar *loadKilledOps = nullptr;
    stats::Scalar *tlbTraps = nullptr;
    stats::Scalar *memOrderTrapCount = nullptr;
    stats::Scalar *operandMissEvents = nullptr;
    stats::Scalar *recoveryStallCycles = nullptr;
    stats::Vector *loadLevels = nullptr;
    stats::Vector *operandSources = nullptr;
    stats::Average *iqOccupancy = nullptr;
    stats::Average *robOccupancy = nullptr;
    stats::Scalar *branchLoopOpenCycles = nullptr;
    stats::Scalar *loadLoopOpenCycles = nullptr;
    stats::Scalar *operandLoopOpenCycles = nullptr;
    stats::Distribution *operandGap = nullptr;
    stats::Distribution *loadLatency = nullptr;
    stats::Distribution *branchLoopOcc = nullptr;
    stats::Distribution *loadLoopOcc = nullptr;
    stats::Distribution *operandLoopOcc = nullptr;
    std::vector<std::pair<const char *, const stats::Stat *>> exported;
    /// @}
};

} // namespace loopsim

#endif // LOOPSIM_CORE_CORE_HH
