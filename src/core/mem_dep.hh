/**
 * @file
 * Memory dependence prediction for the load/store reorder trap loop.
 *
 * The paper's Figure 2 shows the Alpha 21264's "memory trap loop":
 * a load that issues before an older store to the same address reads
 * stale data; the conflict is detected when the store executes, and
 * recovery restarts the load from the *fetch* stage (initiation at
 * issue, recovery at fetch). To keep the trap rare the 21264 trains a
 * PC-indexed wait table: a load that trapped once is subsequently held
 * at issue until older stores have executed.
 *
 * This class is that wait table: one sticky bit per load PC hash,
 * periodically cleared so stale conservatism decays.
 */

#ifndef LOOPSIM_CORE_MEM_DEP_HH
#define LOOPSIM_CORE_MEM_DEP_HH

#include <cstdint>
#include <vector>

#include "base/types.hh"

namespace loopsim
{

class MemDepPredictor
{
  public:
    /**
     * @param entries        wait-table size (power of two)
     * @param clear_interval cycles between table clears (0 = never)
     */
    explicit MemDepPredictor(std::size_t entries = 2048,
                             std::uint64_t clear_interval = 32768);

    /** Should the load at @p pc wait for older stores? */
    bool shouldWait(Addr pc, Cycle now);

    /**
     * Const peek at the wait bit as it stands *now*, for the sparse
     * kernel: no lazy table clear, no waitCount bump. A load held by
     * this bit unblocks no earlier than nextClearAt() (the bit only
     * changes via trainTrap or the clear), so when the incremental
     * issue pass (core_backend.cc) holds such a load it notes the
     * issue-stage gate at exactly nextClearAt() — the table clear is a
     * first-class ready-structure mutation point, exercised by the
     * KernelDifferential.ReadyTrackingStress reissue-storm test with
     * clear intervals far below the default.
     */
    bool
    wouldWait(Addr pc) const
    {
        return bits[(pc >> 2) & (bits.size() - 1)];
    }

    /** The cycle of the next lazy table clear (invalidCycle: never). */
    Cycle nextClearAt() const { return nextClear; }

    /** The load at @p pc suffered a reorder trap: set its wait bit. */
    void trainTrap(Addr pc);

    void reset();

    std::size_t size() const { return bits.size(); }
    std::uint64_t traps() const { return trapCount; }
    std::uint64_t waits() const { return waitCount; }

  private:
    void maybeClear(Cycle now);

    std::vector<bool> bits;
    std::uint64_t clearInterval;
    Cycle nextClear;
    std::uint64_t trapCount = 0;
    std::uint64_t waitCount = 0;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_MEM_DEP_HH
