/**
 * @file
 * Core back end: wakeup/select and issue, execution with operand
 * delivery (base RF path or DRA), the load/operand/branch resolution
 * loops, and in-order retire.
 */

#include <algorithm>
#include <cstdlib>
#include <sstream>

#ifdef LOOPSIM_WAKE_DIAG
#include <cstdio>
#endif

#include "base/debug.hh"
#include "base/logging.hh"
#include "core/core.hh"
#include "integrity/fault_injector.hh"

namespace loopsim
{

namespace
{

/** Bins of the loadLevel stat vector. */
std::size_t
levelBin(MemLevel level)
{
    switch (level) {
      case MemLevel::L1: return 0;
      case MemLevel::L2: return 1;
      case MemLevel::Memory: return 2;
      default: panic("unknown memory level");
    }
}

/** Bins of the operandSource stat vector. */
std::size_t
sourceBin(OperandSource src)
{
    switch (src) {
      case OperandSource::PreRead: return 0;
      case OperandSource::Forward: return 1;
      case OperandSource::Crc: return 2;
      case OperandSource::RegFile: return 3;
      case OperandSource::Payload: return 4;
      case OperandSource::Miss: return 5;
      default: panic("operand source without a stat bin");
    }
}

} // anonymous namespace

void
Core::issueStage(Cycle now)
{
    // Sparse kernel: iqWakeAt is a conservative lower bound on the
    // next cycle at which this stage could free or issue anything
    // (every pending timer key is >= it; see the arm helpers). While
    // it is in the future the stage is provably a no-op; when it is
    // due, the incremental path evaluates only the armed candidates.
    // The dense reference kernel runs the full O(IQ) scan every cycle
    // unconditionally.
    if (sparseKernel) {
        if (now < iqWakeAt)
            return;
        iqWakeAt = invalidCycle;
        issueIncremental(now);
        return;
    }
    issueScanReference(now);
}

void
Core::issueScanReference(Cycle now)
{
    ++scanTicks;
    iqWakeAt = invalidCycle;

    // One fused pass over the occupants does both jobs — confirm-free
    // and wakeup/select — touching each DynInst once:
    //
    //  * Done entries leave the IQ at their confirm cycle, once the
    //    execute stage has had time to notify that no reissue is
    //    needed (loop delay) plus the clear delay (§2.2.2).
    //  * Issued entries (IQ-EX transit) keep their confirm note
    //    alive: they turn Done inside their ExecStart event (which
    //    has no wake hook of its own), so a scan between issue and
    //    Done must not drop the note made at issue.
    //  * InIq entries go through wakeup/select: one instruction per
    //    cluster per cycle, oldest ready first (§2: 8 x 1-wide
    //    arbiters over the unified queue). The same evaluation yields
    //    the entry's next wake cycle; entries whose gate cycles are
    //    unknown (producer unscheduled, recovery wait, never-clearing
    //    wait bit) contribute nothing here and are woken by the hook
    //    at the mutation that schedules them.
    //
    // The scratch buffers are members so the per-tick cost is a
    // clear, not an allocation.
    scratchFree.clear();
    scratchWinner.assign(cfg.numClusters, InstRef{});
    scratchWinnerAge.assign(cfg.numClusters, 0);
    scratchReady.assign(cfg.numClusters, 0);

    for (InstRef ref : iq.occupants()) {
        const DynInst &inst = pool.get(ref);
        if (inst.state == InstState::Done) {
            if (inst.confirmCycle != invalidCycle &&
                inst.pendingEvents == 0) {
                if (now >= inst.confirmCycle)
                    scratchFree.push_back(ref);
                else
                    noteIqWake(inst.confirmCycle);
            }
            continue;
        }
        if (inst.state == InstState::Issued) {
            if (inst.confirmCycle != invalidCycle)
                noteIqWake(inst.confirmCycle);
            continue;
        }
        if (inst.state != InstState::InIq || inst.waitingRecovery)
            continue;
        if (inst.insertCycle == invalidCycle)
            continue;
        if (inst.insertCycle >= now) {
            // Cannot issue in the insertion cycle.
            noteIqWake(inst.insertCycle + 1);
            continue;
        }
        const Cycle r0 = wakeupGateCycle(prf, inst, 0);
        const Cycle r1 = wakeupGateCycle(prf, inst, 1);
        const bool ready = (r0 <= now) & (r1 <= now);
        if (!ready) {
            if (r0 != invalidCycle && r1 != invalidCycle) {
                Cycle c = std::max({r0, r1, now + 1});
                // A load held by the wait bit stays until the table's
                // lazy clear (or until the older stores execute — a
                // hooked mutation).
                if (memDep && inst.op.isLoad()) {
                    const auto &seqs =
                        threads[inst.op.tid].unexecStoreSeqs;
                    if (!seqs.empty() &&
                        *seqs.begin() <= inst.olderStores &&
                        memDep->wouldWait(inst.op.pc)) {
                        const Cycle clear = memDep->nextClearAt();
                        if (clear == invalidCycle)
                            continue; // clears via hooks only
                        c = std::max(c, clear);
                    }
                }
                noteIqWake(c);
            }
            continue;
        }
        // A load whose wait bit is set holds at issue until every
        // older same-thread store has executed (memory trap loop).
        if (memDep && inst.op.isLoad()) {
            const auto &seqs =
                threads[inst.op.tid].unexecStoreSeqs;
            if (!seqs.empty() && *seqs.begin() <= inst.olderStores &&
                memDep->shouldWait(inst.op.pc, now)) {
                const Cycle clear = memDep->nextClearAt();
                if (clear != invalidCycle)
                    noteIqWake(std::max(clear, now + 1));
                continue;
            }
        }
        // Ready: it either wins below (and leaves the scan's concern,
        // becoming Issued) or loses its cluster's arbiter and must be
        // reconsidered next cycle. Only the losers force that revisit,
        // so the wake note is deferred until the winners are known.
        ClusterId c = inst.cluster;
        if (scratchReady[c] < 2)
            ++scratchReady[c];
        if (!scratchWinner[c].valid() ||
            inst.fetchStamp < scratchWinnerAge[c]) {
            scratchWinner[c] = ref;
            scratchWinnerAge[c] = inst.fetchStamp;
        }
    }

    for (InstRef ref : scratchFree) {
        DynInst &inst = pool.get(ref);
        iq.remove(pool, ref);
        ThreadState &t = threads[inst.op.tid];
        panic_if(t.iqCount == 0, "iq count underflow");
        --t.iqCount;
    }

    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        if (scratchReady[c] > 1) {
            // At least one ready entry loses this cluster's arbiter
            // and stays ready in the IQ.
            noteIqWake(now + 1);
            break;
        }
    }

    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        if (scratchWinner[c].valid())
            issueWinner(scratchWinner[c], now);
    }
}

void
Core::issueWinner(InstRef ref, Cycle now)
{
    DynInst &inst = pool.get(ref);
    inst.state = InstState::Issued;
    inst.issueCycle = now;
    if (inst.firstIssueCycle == invalidCycle)
        inst.firstIssueCycle = now;
    ++inst.timesIssued;
    LTRACE(Issue, now, inst.op.toString() << " (issue #"
           << inst.timesIssued << ")");
    *issuedOps += 1;
    if (inst.timesIssued > 1)
        *reissuedOps += 1;
    inst.confirmCycle =
        now + cfg.iqExLatency + cfg.loadFeedback + cfg.iqClearDelay;
    // 21264-style recovery kills *everything* issued in a load
    // shadow, so entries must be retained until any load issued up
    // to a hit-latency earlier has resolved.
    if (cfg.killAllInShadow)
        inst.confirmCycle += mem->l1Latency();
    // The entry sits Done in the IQ until its confirm cycle; a
    // later kill reverts it to InIq and re-hooks at reissue.
    noteIqWake(inst.confirmCycle);
    if (sparseKernel)
        armConfirmTimer(inst.confirmCycle, ref);

    // Speculative wakeup of consumers. Loads assume an L1 hit; in
    // Stall mode load consumers wait for the resolved outcome
    // instead (set in handleLoadExec). Fault injection can delay
    // the wakeup (consumers issue late but converge) or drop it
    // outright (consumers never wake: a deliberate wedge the
    // watchdog must catch).
    if (inst.op.hasDest()) {
        bool drop = injector && injector->dropWakeup();
        Cycle delay = injector ? injector->wakeupDelay() : 0;
        if (drop) {
            LTRACE(Issue, now, inst.op.toString()
                   << " wakeup dropped (fault injection)");
        } else if (inst.op.isLoad()) {
            if (cfg.loadRecovery != LoadRecovery::Stall) {
                wakeReg(inst.physDest,
                        now + mem->l1Latency() + delay);
            }
        } else {
            wakeReg(inst.physDest,
                    now + inst.op.execLatency() + delay);
        }
    }

    // Plain FU ops execute lazily: their ExecStart only stamps
    // timestamps and flips the entry Done, so it can drain at
    // whatever tick comes next (the confirm note above and the
    // wake computation's retire clause cover the cycles at which
    // that Done becomes stage-visible). Loads, stores, branches
    // and DRA executions wake the wheel at the exact cycle.
    schedule(Event{now + cfg.iqExLatency, EventType::ExecStart, 0,
                   ref, now, invalidPhysReg, invalidCycle},
             lazyExecEligible(inst.op));
}

#ifdef LOOPSIM_WAKE_DIAG
namespace
{
unsigned long long diagIncrCalls, diagIncrEvals, diagIncrIssued,
    diagIncrHeld, diagIncrConfirmPops, diagIncrWakePops,
    diagIncrBarren;
struct IncrDump
{
    ~IncrDump()
    {
        std::fprintf(stderr,
                     "INCR_DIAG calls=%llu evals=%llu issued=%llu "
                     "held=%llu confpops=%llu wakepops=%llu "
                     "barren=%llu\n",
                     diagIncrCalls, diagIncrEvals, diagIncrIssued,
                     diagIncrHeld, diagIncrConfirmPops,
                     diagIncrWakePops, diagIncrBarren);
    }
} incrDump;
} // namespace
#endif

void
Core::issueIncremental(Cycle now)
{
#ifdef LOOPSIM_WAKE_DIAG
    ++diagIncrCalls;
    const unsigned long long diagWork0 =
        diagIncrIssued + diagIncrConfirmPops + diagIncrWakePops +
        diagIncrHeld;
#endif
    // The sparse issue stage: same confirm-free + wakeup/select
    // semantics as issueScanReference(), but over incrementally
    // maintained candidate sets instead of the whole IQ. Every
    // candidate is re-validated here against the reference predicate
    // before it can act, so timers and candidate sets may safely hold
    // stale refs (killed, squashed, retired, regressed gates) — the
    // worst a stale entry can cost is a wasted evaluation, never a
    // wrong issue. What the structures must NOT do is miss a cycle at
    // which the reference scan would have acted; the arm sites
    // (DESIGN.md §14 hook catalog) carry that obligation.

    // Kill victims reverted to InIq since the last pass rejoin the
    // candidate sets first: the reference scan can reissue a killed
    // instruction in the very cycle of the kill.
    for (InstRef ref : readyRecheck) {
        if (!pool.live(ref))
            continue;
        const DynInst &inst = pool.get(ref);
        if (inst.state != InstState::InIq || inst.waitingRecovery)
            continue;
        insertReadyCand(inst, ref);
    }
    readyRecheck.clear();

    // Confirm-free: drain due timers. Each drained entry either
    // frees (exactly the reference conditions), drops as superseded
    // (a reissue armed a later one), or defers to the hook that owns
    // the next transition (pending events re-arm at their last
    // decrement, InIq reverts re-enter via readyRecheck).
    confirmTimer.drain(now, [this, now](InstRef ref) {
#ifdef LOOPSIM_WAKE_DIAG
        ++diagIncrConfirmPops;
#endif
        if (!pool.live(ref))
            return; // retired or squashed since arming
        DynInst &inst = pool.get(ref);
        if (inst.iqSlot == 0xffff)
            return; // already freed
        if (inst.state == InstState::Issued) {
            // Issued past its confirm cycle: a poisoned execution
            // whose ExecStart never turned it Done. The reference
            // scan stays hot on such an entry (re-noting the stale
            // confirm every cycle) until its kill event lands;
            // mirror that so the wedge stays equally visible to the
            // watchdog.
            if (inst.confirmCycle != invalidCycle &&
                inst.confirmCycle <= now) {
                armConfirmTimer(now + 1, ref);
            }
            return;
        }
        if (inst.state != InstState::Done)
            return;
        if (inst.confirmCycle == invalidCycle ||
            inst.confirmCycle > now) {
            return; // superseded: a newer timer carries the free
        }
        if (inst.pendingEvents != 0)
            return; // the handler re-arms at the last decrement
        iq.remove(pool, ref);
        ThreadState &t = threads[inst.op.tid];
        panic_if(t.iqCount == 0, "iq count underflow");
        --t.iqCount;
    });

    // Wakeup: entries whose gate cycles were all known when armed
    // join their cluster's candidate set at the armed cycle. The set
    // keys by fetchStamp, so duplicates collapse and iteration is
    // oldest-first — the reference arbiter's order.
    wakeTimer.drain(now, [this](InstRef ref) {
#ifdef LOOPSIM_WAKE_DIAG
        ++diagIncrWakePops;
#endif
        if (!pool.live(ref))
            return;
        const DynInst &inst = pool.get(ref);
        if (inst.state != InstState::InIq || inst.waitingRecovery)
            return;
        insertReadyCand(inst, ref);
    });

    // Select: re-validate every candidate with the reference
    // predicate; the first surviving entry per cluster (oldest
    // fetchStamp) wins its arbiter.
    scratchWinner.assign(cfg.numClusters, InstRef{});
    scratchReady.assign(cfg.numClusters, 0);

    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        auto &cands = clusterReady[c];
        std::size_t out = 0;
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const InstRef ref = cands[i].ref;
            bool keep = false;
#ifdef LOOPSIM_WAKE_DIAG
            ++diagIncrEvals;
#endif
            do {
                if (!pool.live(ref))
                    break;
                const DynInst &inst = pool.get(ref);
                if (inst.state != InstState::InIq ||
                    inst.waitingRecovery) {
                    // Issued/Done since arming, or back in recovery
                    // wait: the owning mutation (kill recheck,
                    // payload delivery) re-enters it when
                    // eligibility returns.
                    break;
                }
                keep = true;
                if (inst.insertCycle == invalidCycle)
                    break; // the reference scan skips these, noteless
                if (inst.insertCycle >= now) {
                    // Cannot issue in the insertion cycle.
                    noteIqWake(inst.insertCycle + 1);
                    break;
                }
                const Cycle r0 = wakeupGateCycle(prf, inst, 0);
                const Cycle r1 = wakeupGateCycle(prf, inst, 1);
                if (!((r0 <= now) & (r1 <= now))) {
                    // Gates regressed since arming (producer killed)
                    // or the timer fired early: drop the candidate.
                    // With both gates known the re-arm is immediate;
                    // an unknown gate re-arms via wakeReg when its
                    // producer schedules. No memDep clamp here —
                    // unlike the reference's note, a timer is not
                    // re-evaluated every cycle, and clamping past the
                    // store-execution release would sleep through it.
                    if (r0 != invalidCycle && r1 != invalidCycle)
                        armWakeTimer(std::max({r0, r1, now + 1}), ref);
                    keep = false;
                    break;
                }
                // A load whose wait bit is set holds at issue until
                // every older same-thread store has executed (memory
                // trap loop). It stays a candidate: held loads are
                // re-checked at every pass, which (with the
                // clear-cycle note below) reproduces the reference's
                // per-cycle shouldWait timing at every cycle where
                // that call can observably act.
                if (memDep && inst.op.isLoad()) {
                    const auto &seqs =
                        threads[inst.op.tid].unexecStoreSeqs;
                    if (!seqs.empty() &&
                        *seqs.begin() <= inst.olderStores &&
                        memDep->shouldWait(inst.op.pc, now)) {
                        const Cycle clear = memDep->nextClearAt();
                        if (clear != invalidCycle)
                            noteIqWake(std::max(clear, now + 1));
#ifdef LOOPSIM_WAKE_DIAG
                        ++diagIncrHeld;
#endif
                        break;
                    }
                }
                if (scratchReady[c] < 2)
                    ++scratchReady[c];
                if (!scratchWinner[c].valid()) {
                    // Oldest stamp: the set is sorted.
                    scratchWinner[c] = ref;
                }
            } while (false);
            if (keep)
                cands[out++] = cands[i];
        }
        cands.resize(out);
    }

    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        if (scratchReady[c] > 1) {
            // At least one ready entry loses this cluster's arbiter
            // and stays ready in the IQ.
            noteIqWake(now + 1);
            break;
        }
    }

    for (ClusterId c = 0; c < cfg.numClusters; ++c) {
        if (!scratchWinner[c].valid())
            continue;
        auto &cands = clusterReady[c];
        const std::uint64_t stamp =
            pool.get(scratchWinner[c]).fetchStamp;
        auto it = std::lower_bound(
            cands.begin(), cands.end(), stamp,
            [](const ReadyCand &a, std::uint64_t s) {
                return a.stamp < s;
            });
        if (it != cands.end() && it->stamp == stamp)
            cands.erase(it);
#ifdef LOOPSIM_WAKE_DIAG
        ++diagIncrIssued;
#endif
        issueWinner(scratchWinner[c], now);
    }

    // Everything still tracked keeps the gate honest: candidates
    // were noted above (losers via the contention note, held loads
    // via their clear cycle, late inserts via insert+1), and the
    // timer heads arm the next confirm/wake cycles.
    noteIqWake(confirmTimer.nextDue());
    noteIqWake(wakeTimer.nextDue());
#ifdef LOOPSIM_WAKE_DIAG
    if (diagIncrIssued + diagIncrConfirmPops + diagIncrWakePops +
            diagIncrHeld ==
        diagWork0) {
        ++diagIncrBarren;
    }
#endif
}

OperandSource
Core::classifyOperand(const DynInst &inst, unsigned idx, Cycle exec_start)
{
    PhysReg reg = inst.physSrc[idx];
    Cycle produced_at = prf.actualReadyAt(reg);

    if (!cfg.dra) {
        // Base machine: operands come from the forwarding buffer or
        // the in-path RF read; by construction there is no gap.
        if (fwd.lookup(produced_at, exec_start))
            return OperandSource::Forward;
        panic_if(!prf.writtenBack(reg, exec_start),
                 "base-machine operand neither forwardable nor written "
                 "back");
        return OperandSource::RegFile;
    }

    if (fwd.lookup(produced_at, exec_start)) {
        draUnit->forwardHit(reg, inst.cluster);
        return OperandSource::Forward;
    }
    if (draUnit->lookupCached(reg, inst.cluster, exec_start))
        return OperandSource::Crc;
    return OperandSource::Miss;
}

void
Core::handleOperandMiss(DynInst &inst, InstRef ref, Cycle exec_start,
                        unsigned miss_mask)
{
    // Operand resolution loop mis-speculation (§5.4): the missing
    // operands are read from the RF and delivered to the IQ payload;
    // the instruction reissues once they arrive, its issued dependents
    // reissue when the IQ hears of the fault, and the front end stalls
    // while the recovery borrows the RF read ports.
    *operandMissEvents += 1;
    for (unsigned i = 0; i < 2; ++i) {
        if (miss_mask & (1u << i))
            operandSources->add(sourceBin(OperandSource::Miss));
    }
    // LOOPSIM_DEBUG_MISS is latched once (this runs per miss, and
    // getenv is neither cheap nor thread-safe against concurrent
    // setenv); output goes through debug::emit so parallel campaign
    // workers cannot interleave mid-line.
    static const bool debug_miss = [] {
        return std::getenv("LOOPSIM_DEBUG_MISS") != nullptr; // NOLINT(concurrency-mt-unsafe)
    }();
    if (debug_miss) {
        for (unsigned i = 0; i < 2; ++i) {
            if (!(miss_mask & (1u << i)))
                continue;
            std::ostringstream os;
            os << "[miss] src r" << inst.op.src[i] << " preg "
               << inst.physSrc[i] << " produced "
               << prf.actualReadyAt(inst.physSrc[i]) << " exec "
               << exec_start << " wb "
               << prf.writebackAt(inst.physSrc[i]) << " inst "
               << inst.op.toString();
            debug::emit(debug::Flag::Dra, exec_start, os.str());
        }
    }

    LTRACE(Dra, exec_start, inst.op.toString()
           << " operand miss, mask " << miss_mask);
    killInstruction(ref);
    // waitingRecovery makes the queued recheck drop the faulter; the
    // PayloadDelivery handler re-arms it when the wait ends.
    inst.waitingRecovery = true;

    // The fault is detected one cycle into execution and loops back to
    // the IQ: the kill arrives after the loop delay, the recovered
    // operands a register-file read later. Both travel through the
    // operand port; fault injection may deliver the kill early (the
    // stamp keeps the honest delay, so audit reads catch the cheat).
    Cycle detect = exec_start + 1;
    Cycle signal = detect + cfg.loadFeedback;
    std::uint64_t payload_sid =
        operandPort.send(detect, cfg.loadFeedback + cfg.regfileLatency,
                         OperandMissMsg{miss_mask});
    schedule(Event{signal + cfg.regfileLatency,
                   EventType::PayloadDelivery, 0, ref, invalidCycle,
                   invalidPhysReg, invalidCycle, payload_sid});

    std::uint64_t kill_sid =
        operandPort.send(detect, cfg.loadFeedback,
                         OperandMissMsg{miss_mask});
    Cycle kill_at = signal;
    if (injector) {
        kill_at -= std::min<Cycle>(injector->earlyOperandRead(),
                                   cfg.loadFeedback);
    }
    ++inst.pendingEvents;
    schedule(Event{kill_at, EventType::OperandMissKill, 0, ref,
                   invalidCycle, invalidPhysReg, invalidCycle, kill_sid});

    // §5.4: the front end stalls while the missing operands are read
    // from the register file and forwarded to the instruction payload.
    Cycle stall_end = signal + cfg.regfileLatency;
    renameStallUntil = std::max(renameStallUntil, stall_end);
}

void
Core::handleLoadExec(DynInst &inst, InstRef ref, Cycle exec_start)
{
    MemAccessResult res =
        mem->access(inst.op.effAddr, inst.op.tid, false, exec_start);
    // Fault injection: a stalled cache port or a delayed hit return
    // makes the data late. Marking the access a bank conflict routes
    // it through the model's own load-loop mis-speculation recovery,
    // so the perturbation converges by construction.
    if (injector) {
        Cycle extra = injector->loadDelay() + injector->portStall();
        if (extra > 0) {
            res.latency += static_cast<unsigned>(extra);
            res.bankConflict = true;
        }
    }
    inst.memResult = res;
    inst.memDone = true;
    loadLevels->add(levelBin(res.level));
    loadLatency->sample(static_cast<double>(res.latency));

    PhysReg dest = inst.physDest;
    unsigned l1_lat = mem->l1Latency();

    LTRACE(Mem, exec_start, inst.op.toString() << " -> "
           << memLevelName(res.level) << " lat " << res.latency
           << (res.tlbMiss ? " TLB-MISS" : "")
           << (res.bankConflict ? " BANK-CONFLICT" : ""));
    if (res.isPredictableHit()) {
        // The hit speculation was right: data arrives exactly when the
        // speculative wakeup promised.
        Cycle produce = exec_start + res.latency;
        inst.produceCycle = produce;
        prf.setActualReady(dest, produce);
        if (cfg.loadRecovery == LoadRecovery::Stall) {
            Cycle notify = exec_start + l1_lat + cfg.loadFeedback;
            wakeReg(dest, std::max(notify,
                                   produce - cfg.iqExLatency));
        }
        schedule(Event{fwd.writebackCycle(produce), EventType::Writeback,
                       0, InstRef{}, invalidCycle, dest, produce});
        inst.state = InstState::Done;
        return;
    }

    // Mis-speculation on the load resolution loop: a cache miss, a
    // bank conflict, or a TLB trap. Data arrives late; the IQ finds
    // out one loop-feedback later and reverts the issued tree.
    *loadMissEvents += 1;
    Cycle produce = exec_start + res.latency +
                    (res.tlbMiss ? cfg.tlbWalkPenalty : 0);
    inst.produceCycle = produce;
    prf.setActualReady(dest, produce);

    // The fill's arrival is announced only missNotice cycles ahead, so
    // consumers issue late and pay (IQ-EX - notice) beyond the data
    // latency itself; a shorter IQ-EX path shrinks this loop (§3.2).
    Cycle advance = std::min<Cycle>(cfg.missNotice, cfg.iqExLatency);
    Cycle notify = exec_start + l1_lat + cfg.loadFeedback;
    if (cfg.loadRecovery == LoadRecovery::Stall) {
        wakeReg(dest, std::max(notify, produce - advance));
    } else {
        // Consumers reissue after the kill; they cannot issue before
        // the IQ has processed the mis-speculation.
        wakeReg(dest, std::max(notify + 1, produce - advance));
    }
    schedule(Event{fwd.writebackCycle(produce), EventType::Writeback, 0,
                   InstRef{}, invalidCycle, dest, produce});

    // The hit/miss outcome exists at the end of the L1 probe and loops
    // back to the IQ after the load feedback delay: stamp the signal
    // accordingly so audit builds can verify no stage saw it earlier.
    Cycle resolved_at = exec_start + l1_lat;
    if (res.tlbMiss) {
        // Memory trap: recovered from the front of the pipe (§2, the
        // Alpha memory trap loop; §3.1, turb3d).
        *tlbTraps += 1;
        ++inst.pendingEvents;
        std::uint64_t sid =
            loadPort.send(resolved_at, cfg.loadFeedback,
                          LoadResolveMsg{inst.op.tid, inst.fetchStamp});
        schedule(Event{notify, EventType::TlbTrap, 0, ref,
                       inst.issueCycle, invalidPhysReg, invalidCycle,
                       sid});
    } else if (cfg.loadRecovery == LoadRecovery::Reissue) {
        ++inst.pendingEvents;
        std::uint64_t sid =
            loadPort.send(resolved_at, cfg.loadFeedback,
                          LoadResolveMsg{inst.op.tid, inst.fetchStamp});
        schedule(Event{notify, EventType::LoadMissKill, 0, ref,
                       inst.issueCycle, invalidPhysReg, invalidCycle,
                       sid});
    } else if (cfg.loadRecovery == LoadRecovery::Refetch) {
        // §2.2.2: the alternative of squashing and refetching from the
        // first instruction after the load.
        ++inst.pendingEvents;
        std::uint64_t sid =
            loadPort.send(resolved_at, cfg.loadFeedback,
                          LoadResolveMsg{inst.op.tid, inst.fetchStamp});
        schedule(Event{notify, EventType::TlbTrap, 0, ref,
                       inst.issueCycle, invalidPhysReg, invalidCycle,
                       sid});
    }
    // Stall mode needs no recovery: nothing issued speculatively.

    inst.state = InstState::Done;
}

void
Core::handleBranchExec(DynInst &inst, InstRef ref, Cycle exec_start)
{
    Cycle resolve = exec_start + inst.op.execLatency();
    inst.produceCycle = resolve;
    inst.state = InstState::Done;

    // Calls write the link register.
    if (inst.op.hasDest()) {
        prf.setActualReady(inst.physDest, resolve);
        schedule(Event{fwd.writebackCycle(resolve), EventType::Writeback,
                       0, InstRef{}, invalidCycle, inst.physDest,
                       resolve});
    }

    if (inst.branchResolved)
        return; // a reissued branch resolves only once
    inst.branchResolved = true;

    if (inst.op.wrongPath)
        return; // wrong-path branches never redirect

    if (inst.op.forceMispredict) {
        inst.mispredicted = true;
        *branchMispredicts += 1;
        ++inst.pendingEvents;
        // The resolution travels back to fetch through the branch
        // port. Fault injection may schedule the redirect early; the
        // stamp keeps the honest delay, so an audit read catches it.
        std::uint64_t sid = branchPort.send(
            resolve, cfg.branchFeedback,
            BranchResolveMsg{inst.op.tid, inst.fetchStamp});
        Cycle redirect_at = resolve + cfg.branchFeedback;
        if (injector) {
            redirect_at -= std::min<Cycle>(injector->earlyBranchRead(),
                                           cfg.branchFeedback);
        }
        schedule(Event{redirect_at, EventType::BranchRedirect, 0, ref,
                       inst.issueCycle, invalidPhysReg, invalidCycle,
                       sid});
    }
}

void
Core::executeValid(DynInst &inst, InstRef ref, Cycle exec_start)
{
    inst.execValid = true;

    // Figure 6: distribution of the gap between the availability times
    // of the two source operands (0 for fewer than two sources).
    if (!inst.gapSampled && !inst.op.wrongPath) {
        inst.gapSampled = true;
        if (inst.physSrc[0] != invalidPhysReg &&
            inst.physSrc[1] != invalidPhysReg) {
            Cycle a = prf.actualReadyAt(inst.physSrc[0]);
            Cycle b = prf.actualReadyAt(inst.physSrc[1]);
            double gap = a > b ? double(a - b) : double(b - a);
            operandGap->sample(std::min(gap, 255.0));
        } else {
            operandGap->sample(0.0);
        }
    }

    switch (inst.op.opClass) {
      case OpClass::Load:
        handleLoadExec(inst, ref, exec_start);
        break;
      case OpClass::Store: {
        MemAccessResult res = mem->access(inst.op.effAddr, inst.op.tid,
                                          true, exec_start);
        inst.memResult = res;
        inst.memDone = true;
        inst.produceCycle = exec_start + 1;
        inst.state = InstState::Done;
        handleStoreOrdering(inst, ref, exec_start);
        if (res.tlbMiss) {
            // Stores trap on dTLB misses too.
            *tlbTraps += 1;
            ++inst.pendingEvents;
            std::uint64_t sid = loadPort.send(
                exec_start + mem->l1Latency(), cfg.loadFeedback,
                LoadResolveMsg{inst.op.tid, inst.fetchStamp});
            schedule(Event{exec_start + mem->l1Latency() +
                               cfg.loadFeedback,
                           EventType::TlbTrap, 0, ref, inst.issueCycle,
                           invalidPhysReg, invalidCycle, sid});
        }
        break;
      }
      case OpClass::BranchCond:
      case OpClass::BranchUncond:
        handleBranchExec(inst, ref, exec_start);
        break;
      default: {
        Cycle produce = exec_start + inst.op.execLatency();
        inst.produceCycle = produce;
        inst.state = InstState::Done;
        if (inst.op.hasDest()) {
            prf.setActualReady(inst.physDest, produce);
            schedule(Event{fwd.writebackCycle(produce),
                           EventType::Writeback, 0, InstRef{},
                           invalidCycle, inst.physDest, produce});
        }
        break;
      }
    }
}

void
Core::startExecution(InstRef ref, Cycle exec_start, Cycle issue_stamp)
{
    if (!pool.live(ref))
        return; // squashed while in IQ-EX
    DynInst &inst = pool.get(ref);
    if (inst.state != InstState::Issued)
        return; // killed (and possibly reissued: that has its own event)
    if (inst.issueCycle != issue_stamp)
        return; // stale event from an issue that was killed meanwhile

    inst.execStartCycle = exec_start;

    // Resolve each register source. Payload operands (pre-read or
    // recovered) are already at hand. Others are looked up in the
    // forwarding buffer / CRC / RF; an operand whose producer has not
    // actually delivered (a mis-speculated load shadow) is invalid and
    // the instruction will be reverted by the in-flight kill.
    bool any_invalid = false;
    unsigned miss_mask = 0;
    std::array<OperandSource, 2> srcs{OperandSource::None,
                                      OperandSource::None};

    for (unsigned i = 0; i < 2; ++i) {
        if (inst.physSrc[i] == invalidPhysReg)
            continue;
        if (inst.operandInPayload[i]) {
            srcs[i] = inst.payloadFromRecovery[i] ? OperandSource::Payload
                                                  : OperandSource::PreRead;
            continue;
        }
        if (!prf.actualReady(inst.physSrc[i], exec_start)) {
            any_invalid = true;
            continue;
        }
        srcs[i] = classifyOperand(inst, i, exec_start);
        if (srcs[i] == OperandSource::Miss)
            miss_mask |= 1u << i;
    }

    if (any_invalid) {
        // Poisoned input: no side effects; the load (or operand)
        // resolution loop's kill will revert this instruction.
        LTRACE(Exec, exec_start, inst.op.toString()
               << " executes with poisoned operands");
        inst.execValid = false;
        return;
    }
    LTRACE(Exec, exec_start, inst.op.toString());
    if (miss_mask != 0) {
        handleOperandMiss(inst, ref, exec_start, miss_mask);
        return;
    }

    // Account operand delivery (Figure 9). Recovered payload operands
    // were already counted as misses at the faulting execution.
    for (unsigned i = 0; i < 2; ++i) {
        if (srcs[i] == OperandSource::None ||
            srcs[i] == OperandSource::Payload) {
            continue;
        }
        operandSources->add(sourceBin(srcs[i]));
    }

    executeValid(inst, ref, exec_start);
}

void
Core::handleStoreOrdering(DynInst &inst, InstRef ref, Cycle exec_start)
{
    ThreadState &t = threads[inst.op.tid];
    if (!inst.storeExecCounted) {
        inst.storeExecCounted = true;
        t.unexecStoreSeqs.erase(inst.storeSeq);
        // A held load waiting on this store can issue this very cycle
        // (ExecStart events drain before the issue stage runs). Loads
        // only hold on stores through the wait table, so without one
        // no wake is needed.
        if (memDep)
            noteIqWake(exec_start);
    }
    if (!memDep)
        return;

    // Load/store reorder trap detection (the paper's memory trap
    // loop): a *younger* load to the same dword that already performed
    // its access read stale data. The oldest such load restarts from
    // fetch; the wait table learns its PC.
    Addr dword = inst.op.effAddr >> 3;
    InstRef victim{};
    std::uint64_t victim_stamp = 0;
    for (std::size_t i = 0; i < t.rob.size(); ++i) {
        InstRef r = t.rob.at(i);
        const DynInst &cand = pool.get(r);
        if (cand.fetchStamp <= inst.fetchStamp)
            continue;
        if (!cand.op.isLoad() || !cand.memDone || !cand.execValid)
            continue;
        if ((cand.op.effAddr >> 3) != dword)
            continue;
        if (!victim.valid() || cand.fetchStamp < victim_stamp) {
            victim = r;
            victim_stamp = cand.fetchStamp;
        }
    }
    if (!victim.valid())
        return;

    DynInst &load = pool.get(victim);
    *memOrderTrapCount += 1;
    memDep->trainTrap(load.op.pc);
    ++load.pendingEvents;
    // The trap restarts the load itself, so the squash stamp is one
    // below its own fetch stamp.
    std::uint64_t sid = loadPort.send(
        exec_start + mem->l1Latency(), cfg.loadFeedback,
        LoadResolveMsg{load.op.tid, load.fetchStamp - 1});
    schedule(Event{exec_start + mem->l1Latency() + cfg.loadFeedback,
                   EventType::OrderTrap, 0, victim, invalidCycle,
                   invalidPhysReg, invalidCycle, sid});
    (void)ref;
}

void
Core::retireStage(Cycle now)
{
    unsigned budget = cfg.width;
    bool progress = true;
    while (budget > 0 && progress) {
        progress = false;
        for (std::size_t i = 0; i < threads.size() && budget > 0; ++i) {
            ThreadId tid = static_cast<ThreadId>(
                (now + i) % threads.size());
            ThreadState &t = threads[tid];
            if (t.rob.empty())
                continue;
            InstRef ref = t.rob.head();
            DynInst &inst = pool.get(ref);
            if (inst.state != InstState::Done || !inst.execValid)
                continue;
            if (inst.confirmCycle == invalidCycle ||
                now < inst.confirmCycle) {
                continue;
            }
            if (inst.produceCycle == invalidCycle ||
                now < inst.produceCycle) {
                continue;
            }
            if (inst.pendingEvents != 0)
                continue;
            if (inst.mispredicted && !inst.redirectDone)
                continue;
            panic_if(inst.op.wrongPath,
                     "retiring a wrong-path instruction");

            if (inst.iqSlot != 0xffff) {
                iq.remove(pool, ref);
                panic_if(t.iqCount == 0, "iq count underflow");
                --t.iqCount;
            }
            if (inst.op.hasDest() &&
                inst.prevPhysDest != invalidPhysReg) {
                prf.free(inst.prevPhysDest);
                if (draUnit)
                    draUnit->regFreed(inst.prevPhysDest);
            }
            if (inst.op.isBranch()) {
                *branchesRetired += 1;
            }
            panic_if(inst.op.hasDest() &&
                         prf.actualReadyAt(inst.physDest) == invalidCycle,
                     "retiring producer of an unproduced register: ",
                     inst.op.toString());
            LTRACE(Retire, now, inst.op.toString());
            if (timelineRec)
                timelineRec->record(inst, now);
            t.rob.popHead();
            pool.release(ref);
            ++t.retired;
            *retiredTotal += 1;
            // Process-level fault injection (crash_at_op/hang_at_op):
            // kills or hangs the host process at an exact retired-op
            // count to prove the supervision layer end-to-end.
            if (injector && injector->processFaultsArmed())
                injector->opRetired(retiredOps());
            --budget;
            progress = true;
        }
    }
}

} // namespace loopsim
