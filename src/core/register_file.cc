#include "core/register_file.hh"

#include <cstdlib>
#include <sstream>

#include "base/debug.hh"
#include "base/logging.hh"

namespace loopsim
{

namespace
{

/**
 * Debug aid: set LOOPSIM_TRACE_REG=<n> to log every state transition
 * of physical register n to stderr.
 */
int
tracedReg()
{
    static int reg = [] {
        const char *env = std::getenv("LOOPSIM_TRACE_REG");
        return env ? std::atoi(env) : -1;
    }();
    return reg;
}

void
traceReg(PhysReg reg, const char *what, std::uint64_t value)
{
    if (static_cast<int>(reg) != tracedReg())
        return;
    // Through debug::emit: one write per line, so traces stay
    // unscrambled under parallel campaigns.
    std::ostringstream os;
    os << "[preg " << reg << "] " << what << " " << value;
    debug::emit(debug::Flag::Reg, os.str());
}

} // anonymous namespace

const char *
operandSourceName(OperandSource src)
{
    switch (src) {
      case OperandSource::None: return "none";
      case OperandSource::PreRead: return "preread";
      case OperandSource::Forward: return "forward";
      case OperandSource::Crc: return "crc";
      case OperandSource::RegFile: return "regfile";
      case OperandSource::Payload: return "payload";
      case OperandSource::Miss: return "miss";
      default: panic("unknown operand source");
    }
}

PhysRegFile::PhysRegFile(unsigned num_regs)
    : numRegs(num_regs), regs(num_regs)
{
    fatal_if(num_regs == 0 || num_regs >= invalidPhysReg,
             "physical register count out of range");
    freeList.reserve(num_regs);
    for (unsigned i = num_regs; i-- > 0;)
        freeList.push_back(static_cast<PhysReg>(i));
}

PhysRegFile::RegState &
PhysRegFile::state(PhysReg reg)
{
    panic_if(reg >= numRegs, "physical register out of range");
    return regs[reg];
}

const PhysRegFile::RegState &
PhysRegFile::state(PhysReg reg) const
{
    panic_if(reg >= numRegs, "physical register out of range");
    return regs[reg];
}

PhysReg
PhysRegFile::alloc(InstRef producer)
{
    panic_if(freeList.empty(), "allocating from an empty free list");
    PhysReg reg = freeList.back();
    freeList.pop_back();
    RegState &s = state(reg);
    panic_if(s.live, "allocating a live register");
    s = RegState{};
    s.live = true;
    s.producerRef = producer;
    traceReg(reg, "alloc producerIdx", producer.idx);
    return reg;
}

PhysReg
PhysRegFile::allocArch()
{
    PhysReg reg = alloc(InstRef{});
    RegState &s = state(reg);
    // Architectural state exists "since forever".
    s.issueReadyCycle = 0;
    s.actualReadyCycle = 0;
    s.writebackCycle = 0;
    return reg;
}

void
PhysRegFile::free(PhysReg reg)
{
    RegState &s = state(reg);
    panic_if(!s.live, "freeing a register that is not live");
    traceReg(reg, "free", 0);
    s.live = false;
    freeList.push_back(reg);
}

void
PhysRegFile::setIssueReady(PhysReg reg, Cycle cycle)
{
    traceReg(reg, "setIssueReady", cycle);
    state(reg).issueReadyCycle = cycle;
}

void
PhysRegFile::clearIssueReady(PhysReg reg)
{
    traceReg(reg, "clearIssueReady", 0);
    state(reg).issueReadyCycle = invalidCycle;
}

Cycle
PhysRegFile::issueReadyAt(PhysReg reg) const
{
    return state(reg).issueReadyCycle;
}

bool
PhysRegFile::issueReady(PhysReg reg, Cycle now) const
{
    return state(reg).issueReadyCycle <= now;
}

void
PhysRegFile::setActualReady(PhysReg reg, Cycle cycle)
{
    traceReg(reg, "setActualReady", cycle);
    state(reg).actualReadyCycle = cycle;
}

void
PhysRegFile::clearActualReady(PhysReg reg)
{
    traceReg(reg, "clearActualReady", 0);
    state(reg).actualReadyCycle = invalidCycle;
}

Cycle
PhysRegFile::actualReadyAt(PhysReg reg) const
{
    return state(reg).actualReadyCycle;
}

bool
PhysRegFile::actualReady(PhysReg reg, Cycle now) const
{
    return state(reg).actualReadyCycle <= now;
}

void
PhysRegFile::setWriteback(PhysReg reg, Cycle cycle)
{
    state(reg).writebackCycle = cycle;
}

Cycle
PhysRegFile::writebackAt(PhysReg reg) const
{
    return state(reg).writebackCycle;
}

bool
PhysRegFile::writtenBack(PhysReg reg, Cycle now) const
{
    return state(reg).writebackCycle <= now;
}

InstRef
PhysRegFile::producer(PhysReg reg) const
{
    return state(reg).producerRef;
}

bool
PhysRegFile::live(PhysReg reg) const
{
    return state(reg).live;
}

void
PhysRegFile::reset()
{
    for (auto &s : regs)
        s = RegState{};
    freeList.clear();
    for (unsigned i = numRegs; i-- > 0;)
        freeList.push_back(static_cast<PhysReg>(i));
}

} // namespace loopsim
