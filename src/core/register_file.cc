#include "core/register_file.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "base/debug.hh"
#include "base/logging.hh"

namespace loopsim
{

namespace
{

/**
 * Debug aid: set LOOPSIM_TRACE_REG=<n> to log every state transition
 * of physical register n to stderr.
 */
int
tracedReg()
{
    static const int reg = [] {
        const char *env = std::getenv("LOOPSIM_TRACE_REG");
        return env ? std::atoi(env) : -1;
    }();
    return reg;
}

void
traceReg(PhysReg reg, const char *what, std::uint64_t value)
{
    if (static_cast<int>(reg) != tracedReg())
        return;
    // Through debug::emit: one write per line, so traces stay
    // unscrambled under parallel campaigns.
    std::ostringstream os;
    os << "[preg " << reg << "] " << what << " " << value;
    debug::emit(debug::Flag::Reg, os.str());
}

} // anonymous namespace

const char *
operandSourceName(OperandSource src)
{
    switch (src) {
      case OperandSource::None: return "none";
      case OperandSource::PreRead: return "preread";
      case OperandSource::Forward: return "forward";
      case OperandSource::Crc: return "crc";
      case OperandSource::RegFile: return "regfile";
      case OperandSource::Payload: return "payload";
      case OperandSource::Miss: return "miss";
      default: panic("unknown operand source");
    }
}

PhysRegFile::PhysRegFile(unsigned num_regs)
    : numRegs(num_regs), issueReadyCycles(num_regs, invalidCycle),
      actualReadyCycles(num_regs, invalidCycle),
      writebackCycles(num_regs, invalidCycle), liveFlags(num_regs, 0),
      producers(num_regs)
{
    fatal_if(num_regs == 0 || num_regs >= invalidPhysReg,
             "physical register count out of range");
    freeList.reserve(num_regs);
    for (unsigned i = num_regs; i-- > 0;)
        freeList.push_back(static_cast<PhysReg>(i));
}

void
PhysRegFile::checkRange(PhysReg reg) const
{
    panic_if(reg >= numRegs, "physical register out of range");
}

PhysReg
PhysRegFile::alloc(InstRef producer)
{
    panic_if(freeList.empty(), "allocating from an empty free list");
    PhysReg reg = freeList.back();
    freeList.pop_back();
    panic_if(liveFlags[reg], "allocating a live register");
    liveFlags[reg] = 1;
    issueReadyCycles[reg] = invalidCycle;
    actualReadyCycles[reg] = invalidCycle;
    writebackCycles[reg] = invalidCycle;
    producers[reg] = producer;
    traceReg(reg, "alloc producerIdx", producer.idx);
    return reg;
}

PhysReg
PhysRegFile::allocArch()
{
    PhysReg reg = alloc(InstRef{});
    // Architectural state exists "since forever".
    issueReadyCycles[reg] = 0;
    actualReadyCycles[reg] = 0;
    writebackCycles[reg] = 0;
    return reg;
}

void
PhysRegFile::free(PhysReg reg)
{
    checkRange(reg);
    panic_if(!liveFlags[reg], "freeing a register that is not live");
    traceReg(reg, "free", 0);
    liveFlags[reg] = 0;
    freeList.push_back(reg);
}

void
PhysRegFile::setIssueReady(PhysReg reg, Cycle cycle)
{
    checkRange(reg);
    traceReg(reg, "setIssueReady", cycle);
    issueReadyCycles[reg] = cycle;
}

void
PhysRegFile::clearIssueReady(PhysReg reg)
{
    checkRange(reg);
    traceReg(reg, "clearIssueReady", 0);
    issueReadyCycles[reg] = invalidCycle;
}

void
PhysRegFile::setActualReady(PhysReg reg, Cycle cycle)
{
    checkRange(reg);
    traceReg(reg, "setActualReady", cycle);
    actualReadyCycles[reg] = cycle;
}

void
PhysRegFile::clearActualReady(PhysReg reg)
{
    checkRange(reg);
    traceReg(reg, "clearActualReady", 0);
    actualReadyCycles[reg] = invalidCycle;
}

Cycle
PhysRegFile::actualReadyAt(PhysReg reg) const
{
    checkRange(reg);
    return actualReadyCycles[reg];
}

bool
PhysRegFile::actualReady(PhysReg reg, Cycle now) const
{
    checkRange(reg);
    return actualReadyCycles[reg] <= now;
}

void
PhysRegFile::setWriteback(PhysReg reg, Cycle cycle)
{
    checkRange(reg);
    writebackCycles[reg] = cycle;
}

Cycle
PhysRegFile::writebackAt(PhysReg reg) const
{
    checkRange(reg);
    return writebackCycles[reg];
}

bool
PhysRegFile::writtenBack(PhysReg reg, Cycle now) const
{
    checkRange(reg);
    return writebackCycles[reg] <= now;
}

InstRef
PhysRegFile::producer(PhysReg reg) const
{
    checkRange(reg);
    return producers[reg];
}

bool
PhysRegFile::live(PhysReg reg) const
{
    checkRange(reg);
    return liveFlags[reg] != 0;
}

void
PhysRegFile::reset()
{
    std::fill(issueReadyCycles.begin(), issueReadyCycles.end(),
              invalidCycle);
    std::fill(actualReadyCycles.begin(), actualReadyCycles.end(),
              invalidCycle);
    std::fill(writebackCycles.begin(), writebackCycles.end(),
              invalidCycle);
    std::fill(liveFlags.begin(), liveFlags.end(), 0);
    std::fill(producers.begin(), producers.end(), InstRef{});
    freeList.clear();
    for (unsigned i = numRegs; i-- > 0;)
        freeList.push_back(static_cast<PhysReg>(i));
}

} // namespace loopsim
