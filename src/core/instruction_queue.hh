/**
 * @file
 * The unified instruction queue (128 entries in the base machine).
 *
 * The IQ is a capacity-tracked container of in-flight references; the
 * scheduling *policy* (wakeup/select, speculative issue, reissue) lives
 * in the Core, which owns the scoreboard. What the IQ enforces here is
 * the paper's capacity pressure: entries are held from insertion until
 * the Core confirms the instruction cannot reissue (§2.2.2, "IQ
 * Pressure"), so issued-but-unconfirmed instructions shrink the
 * effective window.
 */

#ifndef LOOPSIM_CORE_INSTRUCTION_QUEUE_HH
#define LOOPSIM_CORE_INSTRUCTION_QUEUE_HH

#include <vector>

#include "base/annotations.hh"
#include "core/dyn_inst.hh"
#include "core/register_file.hh"

namespace loopsim
{

/**
 * Wakeup-scan source gate: the scoreboard cycle that keeps IQ occupant
 * @p inst from issuing on source @p i, or 0 when that source does not
 * gate issue (absent operand, or already in the IQ payload). Written
 * so both selects compile to conditional moves: the dense reference
 * scan evaluates both sources of every occupant every cycle, and
 * mispredicted per-source branches were measurable there. Also the
 * single predicate every sparse-kernel consumer shares — the wake
 * computation (core_wake.cc), the wake-timer arming at insert and
 * producer issue, and the incremental issue pass's candidate
 * re-validation (core_backend.cc) — so the reference scan and the
 * incremental structures cannot drift apart.
 */
inline Cycle
wakeupGateCycle(const PhysRegFile &prf, const DynInst &inst, unsigned i)
{
    const bool gated = inst.physSrc[i] != invalidPhysReg &&
                       !inst.operandInPayload[i];
    const Cycle at = prf.issueReadyAt(gated ? inst.physSrc[i] : 0);
    return gated ? at : 0;
}

class InstructionQueue
{
  public:
    explicit InstructionQueue(unsigned num_entries);

    bool full() const { return slots.size() >= capacity; }
    std::size_t size() const { return slots.size(); }
    std::size_t freeSlots() const { return capacity - slots.size(); }
    unsigned entries() const { return capacity; }

    /** Claim a slot for @p ref; panics when full. */
    /** Inserting makes @p ref issue-eligible from the next cycle:
     *  callers owe a wake note (base/annotations.hh). */
    LOOPSIM_WAKE_STATE void insert(InstPool &pool, InstRef ref);

    /** Release @p ref's slot (confirm-free or squash). */
    void remove(InstPool &pool, InstRef ref);

    /** True iff @p ref currently holds a slot. */
    bool contains(const InstPool &pool, InstRef ref) const;

    /** Dense snapshot of current occupants (order is not age). Hot
     *  only under the dense kernel's reference scan; the sparse
     *  kernel walks it just to rebuild its ready structures on a
     *  kernel swap (Core::prepareKernel). */
    const std::vector<InstRef> &occupants() const { return slots; }

    void clear() { slots.clear(); }

  private:
    unsigned capacity;
    std::vector<InstRef> slots;
};

} // namespace loopsim

#endif // LOOPSIM_CORE_INSTRUCTION_QUEUE_HH
