#include "core/machine_config.hh"

#include <algorithm>

#include "base/logging.hh"
#include "base/str.hh"
#include "sim/config.hh"

namespace loopsim
{

namespace
{

LoadRecovery
parseLoadRecovery(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "reissue")
        return LoadRecovery::Reissue;
    if (n == "refetch")
        return LoadRecovery::Refetch;
    if (n == "stall")
        return LoadRecovery::Stall;
    fatal("unknown load recovery mode: ", name);
}

BranchMode
parseBranchMode(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "profile")
        return BranchMode::Profile;
    if (n == "predictor")
        return BranchMode::Predictor;
    fatal("unknown branch mode: ", name);
}

FetchPolicy
parseFetchPolicy(const std::string &name)
{
    std::string n = toLower(trim(name));
    if (n == "icount")
        return FetchPolicy::ICount;
    if (n == "roundrobin" || n == "rr")
        return FetchPolicy::RoundRobin;
    fatal("unknown fetch policy: ", name);
}

const char *
loadRecoveryName(LoadRecovery r)
{
    switch (r) {
      case LoadRecovery::Reissue: return "reissue";
      case LoadRecovery::Refetch: return "refetch";
      case LoadRecovery::Stall: return "stall";
      default: panic("unknown load recovery");
    }
}

} // anonymous namespace

MachineConfig
MachineConfig::fromConfig(const Config &cfg)
{
    MachineConfig m;
    m.width = static_cast<unsigned>(cfg.getUint("core.width", m.width));
    m.iqEntries = static_cast<unsigned>(
        cfg.getUint("core.iq.entries", m.iqEntries));
    m.robEntries = static_cast<unsigned>(
        cfg.getUint("core.rob.entries", m.robEntries));
    m.numPhysRegs = static_cast<unsigned>(
        cfg.getUint("core.phys_regs", m.numPhysRegs));
    m.numClusters = static_cast<unsigned>(
        cfg.getUint("core.clusters", m.numClusters));

    m.frontLatency = static_cast<unsigned>(
        cfg.getUint("core.front_latency", m.frontLatency));
    m.decIqLatency = static_cast<unsigned>(
        cfg.getUint("core.dec_iq", m.decIqLatency));
    m.iqExLatency = static_cast<unsigned>(
        cfg.getUint("core.iq_ex", m.iqExLatency));
    m.regfileLatency = static_cast<unsigned>(
        cfg.getUint("core.regfile_latency", m.regfileLatency));
    m.loadFeedback = static_cast<unsigned>(
        cfg.getUint("core.load_feedback", m.loadFeedback));
    m.branchFeedback = static_cast<unsigned>(
        cfg.getUint("core.branch_feedback", m.branchFeedback));
    m.iqClearDelay = static_cast<unsigned>(
        cfg.getUint("core.iq_clear_delay", m.iqClearDelay));
    m.fwdBufferDepth = static_cast<unsigned>(
        cfg.getUint("core.fwd_depth", m.fwdBufferDepth));
    m.tlbWalkPenalty = static_cast<unsigned>(
        cfg.getUint("mem.tlb.walk", m.tlbWalkPenalty));
    m.missNotice = static_cast<unsigned>(
        cfg.getUint("core.miss_notice", m.missNotice));

    m.loadRecovery =
        parseLoadRecovery(cfg.getString("core.load_recovery", "reissue"));
    m.memOrderTraps = cfg.getBool("core.memdep.enable", m.memOrderTraps);
    m.memDepEntries = static_cast<unsigned>(
        cfg.getUint("core.memdep.entries", m.memDepEntries));
    m.memDepClear = cfg.getUint("core.memdep.clear", m.memDepClear);
    m.killAllInShadow =
        cfg.getBool("core.kill_all_in_shadow", m.killAllInShadow);
    m.wrongPathFetch = cfg.getBool("core.wrong_path", m.wrongPathFetch);
    m.branchMode = parseBranchMode(cfg.getString("branch.mode", "profile"));
    m.predictorKind = cfg.getString("branch.predictor", "tournament");

    m.dra = cfg.getBool("dra.enable", false);
    m.crcEntries = static_cast<unsigned>(
        cfg.getUint("dra.crc.entries", m.crcEntries));
    m.crcRepl = cfg.getString("dra.crc.repl", "fifo");
    m.insertionTableBits = static_cast<unsigned>(
        cfg.getUint("dra.insertion_bits", m.insertionTableBits));
    m.crcTimeout = cfg.getUint("dra.crc.timeout", m.crcTimeout);

    m.fetchPolicy =
        parseFetchPolicy(cfg.getString("core.fetch_policy", "icount"));
    m.timelineDepth = static_cast<unsigned>(
        cfg.getUint("core.timeline", m.timelineDepth));

    if (m.dra)
        m.applyDra();
    m.validate();
    return m;
}

void
MachineConfig::applyDra()
{
    dra = true;
    // §6: the RF read leaves the IQ-EX path; one of its cycles remains
    // for the forwarding-buffer/CRC lookup. The DEC-IQ path must cover
    // rename (2 cycles) plus the RF pre-read.
    fatal_if(iqExLatency < regfileLatency + 2,
             "base IQ-EX latency (", iqExLatency,
             ") must include the RF access (", regfileLatency,
             ") plus issue/payload cycles");
    iqExLatency = iqExLatency - regfileLatency + 1;
    decIqLatency = std::max(decIqLatency, 2 + regfileLatency);
}

void
MachineConfig::validate() const
{
    fatal_if(width == 0 || width > 16, "core width out of range");
    fatal_if(numClusters == 0 || numClusters > width * 2,
             "cluster count out of range");
    fatal_if(iqEntries < width, "IQ smaller than issue width");
    fatal_if(robEntries < iqEntries,
             "in-flight window smaller than the IQ");
    fatal_if(numPhysRegs < 2 * 64 + robEntries,
             "too few physical registers for the architectural state "
             "of two threads plus ", robEntries, " in flight");
    fatal_if(decIqLatency < 3, "DEC-IQ latency must be >= 3");
    fatal_if(iqExLatency < 2, "IQ-EX latency must be >= 2");
    fatal_if(!dra && iqExLatency < regfileLatency + 2,
             "base IQ-EX latency must cover the register file access");
    fatal_if(fwdBufferDepth == 0, "forwarding buffer depth must be >= 1");
    fatal_if(dra && crcEntries == 0, "CRC must have entries");
    fatal_if(dra && (insertionTableBits == 0 || insertionTableBits > 8),
             "insertion table width out of range");
}

void
MachineConfig::print(std::ostream &os) const
{
    os << "width                 " << width << "\n"
       << "iq entries            " << iqEntries << "\n"
       << "rob entries           " << robEntries << "\n"
       << "phys regs             " << numPhysRegs << "\n"
       << "clusters              " << numClusters << "\n"
       << "front latency         " << frontLatency << "\n"
       << "dec-iq latency        " << decIqLatency << "\n"
       << "iq-ex latency         " << iqExLatency << "\n"
       << "regfile latency       " << regfileLatency << "\n"
       << "load feedback         " << loadFeedback << "\n"
       << "branch feedback       " << branchFeedback << "\n"
       << "iq clear delay        " << iqClearDelay << "\n"
       << "fwd buffer depth      " << fwdBufferDepth << "\n"
       << "load recovery         " << loadRecoveryName(loadRecovery)
       << "\n"
       << "mem order traps       " << (memOrderTraps ? "yes" : "no")
       << "\n"
       << "kill all in shadow    " << (killAllInShadow ? "yes" : "no")
       << "\n"
       << "wrong-path fetch      " << (wrongPathFetch ? "yes" : "no")
       << "\n"
       << "branch mode           "
       << (branchMode == BranchMode::Profile ? "profile" : "predictor")
       << "\n"
       << "dra                   " << (dra ? "yes" : "no") << "\n";
    if (dra) {
        os << "crc entries/cluster   " << crcEntries << "\n"
           << "crc replacement       " << crcRepl << "\n"
           << "insertion table bits  " << insertionTableBits << "\n";
    }
}

std::string
MachineConfig::pipeLabel() const
{
    return std::to_string(decIqLatency) + "_" + std::to_string(iqExLatency);
}

} // namespace loopsim
