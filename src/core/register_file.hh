/**
 * @file
 * Physical register file state: the free list and the scoreboard the
 * issue logic schedules against.
 *
 * Two notions of readiness are tracked per register, mirroring the
 * paper's distinction between speculative wakeup and real data:
 *
 *  - issueReadyAt: the earliest cycle a consumer may *issue*, set
 *    speculatively when the producer issues (loads assume an L1 hit).
 *    Load misses retime it.
 *  - actualReadyAt: the cycle the real value exists at the functional
 *    units (set only by a valid execution). Consumers that begin
 *    executing before this hold garbage and must reissue.
 *  - writebackAt: the cycle the value lands in the register file
 *    proper (actualReadyAt + forwarding window), which is when the
 *    DRA's RPFT bit is set.
 */

#ifndef LOOPSIM_CORE_REGISTER_FILE_HH
#define LOOPSIM_CORE_REGISTER_FILE_HH

#include <vector>

#include "base/annotations.hh"
#include "base/logging.hh"
#include "base/types.hh"
#include "core/dyn_inst.hh"

namespace loopsim
{

class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs);

    /** @name Allocation */
    /// @{
    bool hasFree() const { return !freeList.empty(); }
    std::size_t numFree() const { return freeList.size(); }
    unsigned size() const { return numRegs; }

    /** Allocate a register for @p producer; it starts not-ready. */
    PhysReg alloc(InstRef producer);
    /** Return a register to the free list (retire of the overwriter,
     *  or squash of the allocator). */
    void free(PhysReg reg);
    /** Architectural bootstrap: mark @p reg live and ready forever. */
    PhysReg allocArch();
    /// @}

    /** @name Scoreboard */
    /// @{
    /** Speculative wakeup: a consumer may issue at @p cycle. A
     *  scoreboard wakeup is wake-relevant state: callers owe a wake
     *  note — in core code, call wakeReg() instead. */
    LOOPSIM_WAKE_STATE void setIssueReady(PhysReg reg, Cycle cycle);
    /** Revoke readiness (producer killed / retimed). */
    void clearIssueReady(PhysReg reg);
    Cycle issueReadyAt(PhysReg reg) const;
    bool issueReady(PhysReg reg, Cycle now) const;

    /** The real value exists at the FUs from @p cycle on. */
    void setActualReady(PhysReg reg, Cycle cycle);
    void clearActualReady(PhysReg reg);
    Cycle actualReadyAt(PhysReg reg) const;
    /** True if a consumer starting execution at @p now reads real
     *  data (from forward path or the RF). */
    bool actualReady(PhysReg reg, Cycle now) const;

    /** The value is in the RF array itself from @p cycle on. */
    void setWriteback(PhysReg reg, Cycle cycle);
    Cycle writebackAt(PhysReg reg) const;
    bool writtenBack(PhysReg reg, Cycle now) const;

    /** The in-flight producer of @p reg, if any. */
    InstRef producer(PhysReg reg) const;

    /** Is @p reg currently allocated? */
    bool live(PhysReg reg) const;
    /// @}

    void reset();

  private:
    void checkRange(PhysReg reg) const;

    unsigned numRegs;
    /**
     * SoA layout: the wakeup scan in issueStage reads issueReadyCycle
     * for both sources of every IQ occupant every active cycle, and
     * nothing else. Keeping each scoreboard field in its own dense
     * array means that scan pulls 8-byte cache lines of exactly the
     * field it needs instead of dragging the whole per-register record
     * (flags, producer ref, writeback cycle) through the cache.
     */
    std::vector<Cycle> issueReadyCycles;
    std::vector<Cycle> actualReadyCycles;
    std::vector<Cycle> writebackCycles;
    std::vector<std::uint8_t> liveFlags;
    std::vector<InstRef> producers;
    std::vector<PhysReg> freeList;
};

inline bool
PhysRegFile::issueReady(PhysReg reg, Cycle now) const
{
    panic_if(reg >= numRegs, "physical register out of range");
    return issueReadyCycles[reg] <= now;
}

/**
 * Unchecked hot-path accessor: the wakeup scan reads the gate cycle
 * for every occupant source every scan, and its callers index with
 * registers that were range-checked at rename.
 */
inline Cycle
PhysRegFile::issueReadyAt(PhysReg reg) const
{
    return issueReadyCycles[reg];
}

} // namespace loopsim

#endif // LOOPSIM_CORE_REGISTER_FILE_HH
